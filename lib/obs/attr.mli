(** Attributes (typed key/value pairs) and severity levels carried by
    spans and events. *)

type value =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string

type t = string * value

val int : string -> int -> t
val float : string -> float -> t
val bool : string -> bool -> t
val str : string -> string -> t

val to_json : t list -> Jsonx.t
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
val level_of_string : string -> level option

(** [level_geq a b]: is [a] at least as severe as [b]? *)
val level_geq : level -> level -> bool

val pp_level : Format.formatter -> level -> unit
