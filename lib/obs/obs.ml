(* The tracing façade: contexts, spans and events.

   A context is a recording flag plus a sink.  The default context is
   disabled, and every instrumentation site in the toolkit guards itself
   with [on ()] — a plain ref read and one branch — so a build with
   observability off pays nothing beyond that branch (the E11 bench claim
   holds the packed-engine numbers to the PR 1 baseline).

   Spans nest per domain: each domain keeps its own stack in domain-local
   storage, so worker domains of the packed engine can open spans without
   locking.  [annotate] attaches attributes to the innermost open span of
   the calling domain — used to report results (state counts, verdicts)
   discovered only at the end of the work. *)

type ctx = { recording : bool; sink : Sink.t }

let disabled = { recording = false; sink = Sink.null }

let current_ctx = ref disabled

let current () = !current_ctx

let set_current ctx = current_ctx := ctx

let on () = !current_ctx.recording

let with_ctx ctx f =
  let saved = !current_ctx in
  current_ctx := ctx;
  Fun.protect ~finally:(fun () -> current_ctx := saved) f

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let t0 = Monotonic_clock.now ()

(* Monotonic nanoseconds since process start. *)
let now_ns () = Int64.sub (Monotonic_clock.now ()) t0

(* A fresh recording context leads its trace with a wall-clock anchor, so
   the monotonic timeline can be placed on the calendar after the fact
   (and traces from separate processes correlated). *)
let make ~sinks () =
  let sink = Sink.multiplex sinks in
  sink.Sink.emit
    (Sink.Anchor
       { wall_epoch_ms = Unix.gettimeofday () *. 1e3; ts = now_ns () });
  { recording = true; sink }

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type frame = { f_name : string; start : int64; mutable extra : Attr.t list }

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let tid () = (Domain.self () :> int)

let span ?(attrs = []) name f =
  let ctx = !current_ctx in
  if not ctx.recording then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let start = now_ns () in
    let tid = tid () in
    ctx.sink.emit (Sink.Begin { name; ts = start; tid; attrs });
    let fr = { f_name = name; start; extra = [] } in
    stack := fr :: !stack;
    (* GC attribution: [quick_stat] reads counters without walking the
       heap, so two reads per span are cheap enough for recording mode.
       Allocation is everything the mutator allocated inside the span
       (minor + direct-major, promotions excluded to avoid double
       counting); both deltas ride the End record as ordinary integer
       attrs, which [Profile] already sums per span name. *)
    let gc0 = Gc.quick_stat () in
    Fun.protect
      ~finally:(fun () ->
        (match !stack with
        | top :: rest when top == fr -> stack := rest
        | _ -> () (* unbalanced exit: keep going, the trace stays readable *));
        let gc1 = Gc.quick_stat () in
        let alloc_words =
          gc1.Gc.minor_words -. gc0.Gc.minor_words
          +. (gc1.Gc.major_words -. gc0.Gc.major_words)
          -. (gc1.Gc.promoted_words -. gc0.Gc.promoted_words)
        in
        let gc_attrs =
          [
            Attr.int "alloc_words" (int_of_float alloc_words);
            Attr.int "major_gcs"
              (gc1.Gc.major_collections - gc0.Gc.major_collections);
          ]
        in
        let stop = now_ns () in
        ctx.sink.emit
          (Sink.End
             {
               name;
               ts = stop;
               dur = Int64.sub stop start;
               tid;
               attrs = attrs @ List.rev fr.extra @ gc_attrs;
             }))
      f
  end

let annotate attrs =
  let ctx = !current_ctx in
  if ctx.recording then
    match !(Domain.DLS.get stack_key) with
    | fr :: _ -> fr.extra <- List.rev_append attrs fr.extra
    | [] -> ()

let event ?(level = Attr.Info) ?(attrs = []) name =
  let ctx = !current_ctx in
  if ctx.recording then
    ctx.sink.emit
      (Sink.Instant { name; ts = now_ns (); tid = tid (); level; attrs })

let flush () = !current_ctx.sink.flush ()

(* Close the current context's sink and fall back to [disabled]. *)
let close () =
  let ctx = !current_ctx in
  current_ctx := disabled;
  if ctx.recording then ctx.sink.close ()
