(* A minimal threads-based HTTP listener serving the Prometheus
   exposition.

   One systhread blocks in [accept]; OCaml 5 releases the runtime lock
   around blocking syscalls, so an idle listener costs nothing to the
   compute domain beyond the 50 ms tick-thread preemption all
   systhreads share.  Each request is answered serially on the listener
   thread — scrapes are rare and the exposition is a few KiB, so there
   is no connection pool to manage.  Rendering reads only atomics and
   callback gauges, never compute-domain state, so a scrape observes
   whatever the heartbeats last published.

   [stop] closes the listening socket, which fails the blocked [accept]
   and lets the thread exit; the [stopping] flag keeps that expected
   failure quiet. *)

let c_scrapes = Metrics.counter "obs.scrapes"

type t = {
  sock : Unix.file_descr;
  port : int;
  host : string;
  stopping : bool Atomic.t;
}

let port t = t.port

let address t = Printf.sprintf "%s:%d" t.host t.port

(* ADDR forms: "HOST:PORT", ":PORT", "PORT".  Numeric hosts plus
   "localhost"; the default host binds loopback only — the exposition
   is not meant for the open network. *)
let parse_addr addr =
  let host, port_str =
    match String.rindex_opt addr ':' with
    | None -> ("127.0.0.1", addr)
    | Some i ->
      ( (match String.sub addr 0 i with "" -> "127.0.0.1" | h -> h),
        String.sub addr (i + 1) (String.length addr - i - 1) )
  in
  let host = if host = "localhost" then "127.0.0.1" else host in
  match int_of_string_opt port_str with
  | Some p when p >= 0 && p < 65536 -> (
    match Unix.inet_addr_of_string host with
    | ip -> Ok (host, ip, p)
    | exception Failure _ -> Error (Printf.sprintf "invalid host %S" host))
  | _ -> Error (Printf.sprintf "invalid port %S" port_str)

let http_response ~status ~body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: text/plain; version=0.0.4; \
     charset=utf-8\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status (String.length body) body

let handle_client fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (* One read is enough for any scrape request line + headers; the
         request body, if any, is ignored. *)
      let buf = Bytes.create 4096 in
      let n = try Unix.read fd buf 0 4096 with Unix.Unix_error _ -> 0 in
      if n > 0 then begin
        let req = Bytes.sub_string buf 0 n in
        let path =
          match String.split_on_char ' ' req with
          | _meth :: path :: _ -> path
          | _ -> "/"
        in
        let resp =
          match path with
          | "/" | "/metrics" ->
            Metrics.incr c_scrapes;
            http_response ~status:"200 OK" ~body:(Expose.render ())
          | _ -> http_response ~status:"404 Not Found" ~body:"not found\n"
        in
        let rec write_all off =
          if off < String.length resp then
            let w =
              try Unix.write_substring fd resp off (String.length resp - off)
              with Unix.Unix_error _ -> 0
            in
            if w > 0 then write_all (off + w)
        in
        write_all 0
      end)

let rec serve t =
  match Unix.accept t.sock with
  | client, _ ->
    (try handle_client client with _ -> ());
    serve t
  | exception Unix.Unix_error _ when Atomic.get t.stopping -> ()
  | exception Unix.Unix_error _ -> serve t

(* Delay before the one bind retry on a contended port: long enough for
   a just-exited previous owner's socket to clear, short enough not to
   stall startup noticeably. *)
let bind_retry_delay = 0.25

(* A failed start, classified: [`Addr_in_use port] is the retried-and-
   still-contended case the front end maps to its typed resource error;
   everything else stays a plain message. *)
let start_err addr =
  match parse_addr addr with
  | Error m -> Error (`Invalid m)
  | Ok (host, ip, port) ->
    let attempt () =
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.setsockopt sock Unix.SO_REUSEADDR true;
        Unix.bind sock (Unix.ADDR_INET (ip, port));
        Unix.listen sock 16;
        let port =
          match Unix.getsockname sock with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> port
        in
        let t = { sock; port; host; stopping = Atomic.make false } in
        ignore (Thread.create serve t);
        Ok t
      with Unix.Unix_error (err, _, _) ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        Error err
    in
    (match attempt () with
    | Ok t -> Ok t
    | Error Unix.EADDRINUSE ->
      (* The port may belong to a run that is just exiting: wait once
         and retry before reporting the conflict. *)
      Unix.sleepf bind_retry_delay;
      (match attempt () with
      | Ok t -> Ok t
      | Error Unix.EADDRINUSE -> Error (`Addr_in_use port)
      | Error err ->
        Error
          (`Failed
            (Printf.sprintf "cannot listen on %s: %s" addr
               (Unix.error_message err))))
    | Error err ->
      Error
        (`Failed
          (Printf.sprintf "cannot listen on %s: %s" addr
             (Unix.error_message err))))

let start addr =
  match start_err addr with
  | Ok t -> Ok t
  | Error (`Invalid m) | Error (`Failed m) -> Error m
  | Error (`Addr_in_use port) ->
    Error
      (Printf.sprintf "cannot listen on %s: port %d already in use" addr port)

let stop t =
  Atomic.set t.stopping true;
  try Unix.close t.sock with Unix.Unix_error _ -> ()
