(** Persistent run ledger: one JSONL record per dcheck invocation,
    appended crash-safely (single [write] on an O_APPEND descriptor, so
    concurrent writers interleave whole lines). *)

type entry = {
  timestamp : float;  (** unix epoch seconds at process exit *)
  session : string;  (** fingerprint of program source + command line *)
  subcommand : string;
  file : string;  (** the .dc argument; ["-"] when the command has none *)
  verdict : string;
  exit_code : int;
  duration_s : float;
  peak_rss_bytes : int;
  states : int;  (** engine states interned during the run *)
  budget_trip : string option;  (** exhausted dimension, when exit 3 *)
  telemetry_port : int option;
      (** the port the [--telemetry] listener actually bound (resolved
          when 0 was requested), when telemetry was armed *)
}

val to_json : entry -> Jsonx.t

(** [None] when the object lacks the required fields (sub, verdict,
    exit); optional fields default. *)
val of_json : Jsonx.t -> entry option

(** Append one record.  @raise Unix.Unix_error on an unwritable path. *)
val append : path:string -> entry -> unit

(** All well-formed entries in file order, plus the count of malformed
    lines skipped.  @raise Sys_error on an unreadable path. *)
val load : path:string -> entry list * int
