(* Trace sinks: where span/event records go.

   A sink is three callbacks (emit / flush / close).  Emission can happen
   from any domain (the packed engine's workers run instrumented code), so
   every writing sink serializes through its own mutex.  Timestamps are
   nanoseconds of monotonic clock relative to process start; the Chrome
   sink converts to the microseconds Perfetto / about://tracing expect. *)

type record =
  | Begin of { name : string; ts : int64; tid : int; attrs : Attr.t list }
  | End of {
      name : string;
      ts : int64; (* end timestamp *)
      dur : int64; (* span duration, ns *)
      tid : int;
      attrs : Attr.t list;
    }
  | Instant of {
      name : string;
      ts : int64;
      tid : int;
      level : Attr.level;
      attrs : Attr.t list;
    }
  | Anchor of { wall_epoch_ms : float; ts : int64 }

type t = {
  emit : record -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

let null = { emit = ignore; flush = ignore; close = ignore }

let multiplex sinks =
  match sinks with
  | [] -> null
  | [ s ] -> s
  | sinks ->
    {
      emit = (fun r -> List.iter (fun s -> s.emit r) sinks);
      flush = (fun () -> List.iter (fun s -> s.flush ()) sinks);
      close = (fun () -> List.iter (fun s -> s.close ()) sinks);
    }

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ------------------------------------------------------------------ *)
(* Human-readable stderr log.                                          *)
(* ------------------------------------------------------------------ *)

let ms_of_ns ns = Int64.to_float ns /. 1e6

(* Spans log at Debug (begin and end), instants at their own level. *)
let stderr_log ?(min_level = Attr.Info) () =
  let m = Mutex.create () in
  let line ts tid level name attrs =
    if Attr.level_geq level min_level then
      locked m (fun () ->
          Fmt.epr "[detcor %8.2fms d%d %-5s] %s%s%a@." (ms_of_ns ts) tid
            (Attr.level_to_string level)
            name
            (if attrs = [] then "" else " ")
            Attr.pp_list attrs)
  in
  {
    emit =
      (fun r ->
        match r with
        | Begin { name; ts; tid; attrs } ->
          line ts tid Attr.Debug (name ^ " {") attrs
        | End { name; ts; dur; tid; attrs } ->
          line ts tid Attr.Debug
            (Fmt.str "} %s (%.2fms)" name (ms_of_ns dur))
            attrs
        | Instant { name; ts; tid; level; attrs } -> line ts tid level name attrs
        | Anchor _ -> ());
    flush = (fun () -> locked m (fun () -> Format.pp_print_flush Format.err_formatter ()));
    close = ignore;
  }

(* ------------------------------------------------------------------ *)
(* JSONL: one self-contained JSON object per line.                     *)
(* ------------------------------------------------------------------ *)

let jsonl oc =
  let m = Mutex.create () in
  let write fields =
    locked m (fun () ->
        output_string oc (Jsonx.to_string (Jsonx.Obj fields));
        output_char oc '\n')
  in
  let base kind name ts tid attrs =
    [
      ("type", Jsonx.Str kind);
      ("name", Jsonx.Str name);
      ("ts_ns", Jsonx.Int (Int64.to_int ts));
      ("tid", Jsonx.Int tid);
      ("attrs", Attr.to_json attrs);
    ]
  in
  {
    emit =
      (fun r ->
        match r with
        | Begin { name; ts; tid; attrs } -> write (base "begin" name ts tid attrs)
        | End { name; ts; dur; tid; attrs } ->
          write
            (base "end" name ts tid attrs
            @ [ ("dur_ns", Jsonx.Int (Int64.to_int dur)) ])
        | Instant { name; ts; tid; level; attrs } ->
          write
            (base "event" name ts tid attrs
            @ [ ("level", Jsonx.Str (Attr.level_to_string level)) ])
        | Anchor { wall_epoch_ms; ts } ->
          (* Header line correlating the monotonic timeline with the wall
             clock; keeps the common per-line fields so line-oriented
             consumers need no special case. *)
          write
            (base "anchor" "clock" ts 0 []
            @ [ ("wall_epoch_ms", Jsonx.Float wall_epoch_ms) ]));
    flush = (fun () -> locked m (fun () -> flush oc));
    close = (fun () -> locked m (fun () -> close_out oc));
  }

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON array (Perfetto / about://tracing).         *)
(* ------------------------------------------------------------------ *)

let chrome oc =
  let m = Mutex.create () in
  let first = ref true in
  output_string oc "[\n";
  let write fields =
    locked m (fun () ->
        if !first then first := false else output_string oc ",\n";
        output_string oc (Jsonx.to_string (Jsonx.Obj fields)))
  in
  let us_of_ns ns = Int64.to_float ns /. 1e3 in
  let common name ph ts tid attrs =
    [
      ("name", Jsonx.Str name);
      ("cat", Jsonx.Str "detcor");
      ("ph", Jsonx.Str ph);
      ("ts", Jsonx.Float (us_of_ns ts));
      ("pid", Jsonx.Int 1);
      ("tid", Jsonx.Int tid);
      ("args", Attr.to_json attrs);
    ]
  in
  {
    emit =
      (fun r ->
        match r with
        | Begin { name; ts; tid; attrs } -> write (common name "B" ts tid attrs)
        | End { name; ts; dur = _; tid; attrs } ->
          write (common name "E" ts tid attrs)
        | Instant { name; ts; tid; level; attrs } ->
          (* "severity" rather than "level": event attrs own the args
             namespace and must not collide. *)
          let attrs =
            Attr.str "severity" (Attr.level_to_string level) :: attrs
          in
          write (common name "i" ts tid attrs @ [ ("s", Jsonx.Str "t") ])
        | Anchor { wall_epoch_ms; ts } ->
          (* Metadata record; Perfetto ignores unknown metadata names. *)
          write
            [
              ("name", Jsonx.Str "clock_anchor");
              ("cat", Jsonx.Str "detcor");
              ("ph", Jsonx.Str "M");
              ("ts", Jsonx.Float (us_of_ns ts));
              ("pid", Jsonx.Int 1);
              ("tid", Jsonx.Int 0);
              ( "args",
                Jsonx.Obj [ ("wall_epoch_ms", Jsonx.Float wall_epoch_ms) ] );
            ]);
    flush = (fun () -> locked m (fun () -> flush oc));
    close =
      (fun () ->
        locked m (fun () ->
            output_string oc "\n]\n";
            close_out oc));
  }

(* ------------------------------------------------------------------ *)
(* In-memory sink (tests, dcheck profile).                             *)
(* ------------------------------------------------------------------ *)

let memory () =
  let m = Mutex.create () in
  let records = ref [] in
  let sink =
    {
      emit = (fun r -> locked m (fun () -> records := r :: !records));
      flush = ignore;
      close = ignore;
    }
  in
  (sink, fun () -> locked m (fun () -> List.rev !records))

(* [to_file make path]: open [path], wrap it in [make] (jsonl or chrome);
   closing the sink closes the channel. *)
let to_file make path = make (open_out path)
