(** Minimal threads-based HTTP listener serving the Prometheus text
    exposition of the metrics registry ([/metrics], also [/]).

    The listener thread blocks in [accept] — free while idle on
    OCaml 5 — and answers each scrape serially from atomics and
    callback gauges, never from compute-domain state. *)

type t

(** Parse an ADDR argument — ["HOST:PORT"], [":PORT"] or ["PORT"] —
    into (host, resolved IP, port) without binding anything.  Shared
    with clients (dcheck top) so both ends accept the same spellings. *)
val parse_addr : string -> (string * Unix.inet_addr * int, string) result

(** [start addr] binds and serves.  [addr] is ["HOST:PORT"],
    [":PORT"] or ["PORT"]; the default host is loopback, and port 0
    asks the kernel for a free port (read it back with {!port}).  A
    contended port is retried once after a short delay before it
    reports failure. *)
val start : string -> (t, string) result

(** Like {!start} but with the failure classified, so front ends can
    map a still-contended port ([`Addr_in_use port], reported only
    after the one retry) to a typed resource error. *)
val start_err :
  string ->
  (t, [ `Invalid of string | `Failed of string | `Addr_in_use of int ]) result

(** The bound port (resolved when 0 was requested). *)
val port : t -> int

(** ["host:port"] actually bound. *)
val address : t -> string

(** Close the listening socket and let the thread exit. *)
val stop : t -> unit
