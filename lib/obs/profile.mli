(** Per-phase aggregation of trace records for [dcheck profile]: one row
    per span name with call count, total inclusive time and summed integer
    attributes (space: states, edges, ...). *)

type entry = {
  name : string;
  calls : int;
  total_ns : int;
  max_ns : int;
  attrs : (string * int) list;
}

(** Aggregate span [End] records by name, sorted by descending total. *)
val of_records : Sink.record list -> entry list

(** Wall-clock span of a recording (first to last record), ns. *)
val wall_ns : Sink.record list -> int

(** Render the per-phase time/space breakdown table. *)
val pp_table : Format.formatter -> Sink.record list -> unit
