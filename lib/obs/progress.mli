(** Live progress heartbeats, riding the Budget cooperative checkpoints.

    A long-running phase registers a cheap sampler with {!enter} (or
    {!with_phase}); {!pulse} — called from the budget checkpoint slow
    path on the owning domain — publishes the sampler's readings as
    gauges plus a derived items/sec rate ([obs.phase_items],
    [obs.phase_rate]), rate-limited to 10 Hz.  Pulses from worker
    domains and pulses while disarmed are no-ops, mirroring
    [Checkpoint]. *)

(** Hot-path guard: one ref read.  Armed between {!start}/{!stop}. *)
val armed : unit -> bool

(** Per-tick heartbeat poll for the Budget fast path: true at most
    ~20 times a second (a ticker thread raises the flag), and only on
    the owner domain, which consumes it.  The common case is a single
    ref load returning false, so arming heartbeats adds no measurable
    per-tick cost. *)
val due_now : unit -> bool

(** Arm heartbeats; the calling domain becomes the owner (only its
    pulses publish).  Registers the [obs.phase_eta_seconds] callback
    gauge and the [obs_phase_info{phase=...}] exposition sample. *)
val start : unit -> unit

val stop : unit -> unit

type phase

(** [enter name sampler]: open a phase.  [sampler] must be cheap (it
    runs at 10 Hz on the compute domain) and returns gauge readings;
    the first entry is the phase's primary item count, from which the
    rate is derived.  Returns an inert token when disarmed or
    off-owner. *)
val enter : string -> (unit -> (string * int) list) -> phase

(** Close a phase and publish its final readings. *)
val leave : phase -> unit

(** Scoped {!enter}/{!leave}. *)
val with_phase : string -> (unit -> (string * int) list) -> (unit -> 'a) -> 'a

(** Publish the innermost phase's readings if armed, on-owner and at
    least 100 ms since that phase's last publication. *)
val pulse : unit -> unit

(** ETA pushed by the budget layer from its active ceilings; negative
    means unknown.  Exposed as the [obs.phase_eta_seconds] gauge. *)
val set_eta_seconds : float -> unit
