(** Trace sinks.  Emission is domain-safe: each writing sink serializes
    through its own mutex, so instrumented code may emit from worker
    domains.  Timestamps are monotonic nanoseconds since process start. *)

type record =
  | Begin of { name : string; ts : int64; tid : int; attrs : Attr.t list }
  | End of {
      name : string;
      ts : int64;
      dur : int64;
      tid : int;
      attrs : Attr.t list;
    }
  | Instant of {
      name : string;
      ts : int64;
      tid : int;
      level : Attr.level;
      attrs : Attr.t list;
    }
  | Anchor of { wall_epoch_ms : float; ts : int64 }
      (** Wall-clock anchor: the epoch time observed at monotonic [ts].
          Emitted once when a recording context is created, so traces
          from separate processes correlate on the wall clock.  The
          JSONL sink writes it as a ["type":"anchor"] header line, the
          Chrome sink as a ["ph":"M"] metadata record. *)

type t = {
  emit : record -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

(** Discards everything; the disabled context's sink. *)
val null : t

val multiplex : t list -> t

(** Human-readable log on stderr.  Spans log at [Debug]; instants at their
    own level; records below [min_level] (default [Info]) are dropped. *)
val stderr_log : ?min_level:Attr.level -> unit -> t

(** One JSON object per line: type/name/ts_ns/tid/attrs (+dur_ns, +level). *)
val jsonl : out_channel -> t

(** Chrome [trace_event] JSON array, loadable in Perfetto or
    about://tracing: B/E duration pairs and "i" instants. *)
val chrome : out_channel -> t

(** In-memory sink plus an accessor for the records collected so far, in
    emission order. *)
val memory : unit -> t * (unit -> record list)

(** [to_file jsonl path] / [to_file chrome path]: file-backed sink whose
    [close] closes the channel. *)
val to_file : (out_channel -> t) -> string -> t
