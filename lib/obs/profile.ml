(* Per-phase aggregation of trace records, for `dcheck profile`.

   Folds the span [End] records of an in-memory sink into one row per span
   name: call count, total inclusive time, and the sums of integer
   attributes (the instrumented layers annotate spans with their space
   usage — states, edges — so the table shows time and space per phase). *)

type entry = {
  name : string;
  calls : int;
  total_ns : int;
  max_ns : int;
  attrs : (string * int) list; (* integer attributes, summed over calls *)
}

let add_attr acc (k, v) =
  match v with
  | Attr.Int n -> (
    match List.assoc_opt k acc with
    | Some prev -> (k, prev + n) :: List.remove_assoc k acc
    | None -> (k, n) :: acc)
  | _ -> acc

let of_records records =
  let tbl : (string, entry) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun r ->
      match r with
      | Sink.End { name; dur; attrs; _ } ->
        let dur = Int64.to_int dur in
        let prev =
          match Hashtbl.find_opt tbl name with
          | Some e -> e
          | None -> { name; calls = 0; total_ns = 0; max_ns = 0; attrs = [] }
        in
        Hashtbl.replace tbl name
          {
            prev with
            calls = prev.calls + 1;
            total_ns = prev.total_ns + dur;
            max_ns = max prev.max_ns dur;
            attrs = List.fold_left add_attr prev.attrs attrs;
          }
      | Sink.Begin _ | Sink.Instant _ | Sink.Anchor _ -> ())
    records;
  let entries = Hashtbl.fold (fun _ e acc -> e :: acc) tbl [] in
  List.sort (fun a b -> compare b.total_ns a.total_ns) entries

(* Wall time spanned by the recording: first Begin to last End. *)
let wall_ns records =
  let lo = ref Int64.max_int and hi = ref Int64.min_int in
  List.iter
    (fun r ->
      match r with
      | Sink.Begin { ts; _ } | Sink.End { ts; _ } | Sink.Instant { ts; _ } ->
        if ts < !lo then lo := ts;
        if ts > !hi then hi := ts
      | Sink.Anchor _ -> () (* pre-span header, not part of the workload *))
    records;
  if !hi < !lo then 0 else Int64.to_int (Int64.sub !hi !lo)

let ms ns = float_of_int ns /. 1e6

let pp_attrs ppf attrs =
  let attrs = List.sort (fun (a, _) (b, _) -> String.compare a b) attrs in
  Fmt.(list ~sep:(any " ") (fun ppf (k, v) -> Fmt.pf ppf "%s=%d" k v)) ppf attrs

let pp_table ppf records =
  let entries = of_records records in
  let wall = wall_ns records in
  Fmt.pf ppf "%-34s %6s %10s %9s %6s  %s@." "phase" "calls" "total" "avg"
    "%wall" "space";
  Fmt.pf ppf "%s@." (String.make 90 '-');
  List.iter
    (fun e ->
      let pct =
        if wall = 0 then 0.0
        else 100.0 *. float_of_int e.total_ns /. float_of_int wall
      in
      Fmt.pf ppf "%-34s %6d %8.2fms %7.2fms %5.1f%%  %a@." e.name e.calls
        (ms e.total_ns)
        (ms e.total_ns /. float_of_int (max 1 e.calls))
        pct pp_attrs e.attrs)
    entries;
  Fmt.pf ppf "%s@." (String.make 90 '-');
  Fmt.pf ppf "wall time: %.2fms   (inclusive per-phase times; nested phases overlap)@."
    (ms wall)
