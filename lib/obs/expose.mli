(** Prometheus text exposition over the {!Metrics} registry.

    Dotted registry names map to exposition names ([engine.states] →
    [engine_states]); counters gain the [_total] suffix, histograms
    expand to cumulative [_bucket{le=...}]/[_sum]/[_count] series, and
    callback gauges are sampled at render time so every scrape sees
    live process state. *)

(** One exposition sample: [metric{labels} value]. *)
type sample = {
  metric : string;
  labels : (string * string) list;
  value : float;
}

(** Map an arbitrary registry name to a valid exposition metric name
    ([[a-zA-Z_:][a-zA-Z0-9_:]*]). *)
val metric_name : string -> string

(** Render the whole registry (plus registered extra sample sources) in
    the Prometheus text format, one [# TYPE] comment per family. *)
val render : unit -> string

(** Register an extra sample source appended after the registry on
    every render — used by {!Progress} for its labelled phase-info
    sample. *)
val add_extra : (unit -> sample list) -> unit

(** Parse one exposition line: [Ok None] for comments and blank lines,
    [Ok (Some sample)] for well-formed samples, [Error _] otherwise.
    Inverse of the encoder; used by the tests and [dcheck top]. *)
val parse_line : string -> (sample option, string) result

(** Peak resident set size (VmHWM) in bytes; 0 where /proc is absent. *)
val peak_rss_bytes : unit -> int

(** Register the process-level callback gauges (GC minor/major words,
    major collections, heap bytes, peak RSS).  Idempotent. *)
val register_process_gauges : unit -> unit
