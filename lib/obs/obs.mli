(** Tracing façade: contexts, nestable spans, instant events.

    The default context is disabled and every instrumentation site guards
    itself with [on ()] (a ref read and one branch), so observability costs
    nothing when off.  Spans nest per domain (domain-local stacks): worker
    domains can open spans and emit events concurrently; sinks serialize
    internally. *)

type ctx

(** The inert context: recording off, null sink. *)
val disabled : ctx

(** A recording context over the given sinks. *)
val make : sinks:Sink.t list -> unit -> ctx

val current : unit -> ctx
val set_current : ctx -> unit

(** Run [f] with [ctx] installed; restores the previous context after. *)
val with_ctx : ctx -> (unit -> 'a) -> 'a

(** Is the current context recording?  The hot-path guard. *)
val on : unit -> bool

(** Monotonic nanoseconds since process start. *)
val now_ns : unit -> int64

(** [span ?attrs name f]: time [f] inside a named span.  Emits a [Begin]
    and, via [Fun.protect], an [End] even on exceptions.  No-op (just runs
    [f]) when recording is off. *)
val span : ?attrs:Attr.t list -> string -> (unit -> 'a) -> 'a

(** Attach attributes to the calling domain's innermost open span; they are
    reported on the span's [End] record. *)
val annotate : Attr.t list -> unit

(** Emit an instant event (default level [Info]). *)
val event : ?level:Attr.level -> ?attrs:Attr.t list -> string -> unit

val flush : unit -> unit

(** Flush and close the current context's sink, then fall back to
    [disabled]. *)
val close : unit -> unit
