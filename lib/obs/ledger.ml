(* The persistent run ledger: one JSONL record per dcheck invocation.

   Appends are crash-safe by construction: the record is rendered to one
   buffer and written with a single [write] on an O_APPEND descriptor,
   so concurrent invocations interleave whole lines and a crash mid-run
   loses at most the crashing run's own record — never a previously
   written one.  The reader is correspondingly tolerant: malformed lines
   (a torn tail from a power cut, a hand edit) are counted and skipped,
   not fatal. *)

type entry = {
  timestamp : float; (* unix epoch seconds at process exit *)
  session : string; (* checkpoint-style fingerprint of the command line *)
  subcommand : string;
  file : string; (* the .dc argument; "-" when the command has none *)
  verdict : string;
  exit_code : int;
  duration_s : float;
  peak_rss_bytes : int;
  states : int; (* engine states interned during the run *)
  budget_trip : string option; (* exhausted dimension, when exit 3 *)
  telemetry_port : int option; (* bound --telemetry port, when armed *)
}

let to_json e =
  Jsonx.Obj
    ([
       ("ts", Jsonx.Float e.timestamp);
       ("session", Jsonx.Str e.session);
       ("sub", Jsonx.Str e.subcommand);
       ("file", Jsonx.Str e.file);
       ("verdict", Jsonx.Str e.verdict);
       ("exit", Jsonx.Int e.exit_code);
       ("duration_s", Jsonx.Float e.duration_s);
       ("peak_rss_bytes", Jsonx.Int e.peak_rss_bytes);
       ("states", Jsonx.Int e.states);
     ]
    @ (match e.budget_trip with
      | None -> []
      | Some k -> [ ("budget_trip", Jsonx.Str k) ])
    @ match e.telemetry_port with
      | None -> []
      | Some p -> [ ("port", Jsonx.Int p) ])

let of_json j =
  let str k = Option.bind (Jsonx.member k j) Jsonx.to_str in
  let int k = Option.bind (Jsonx.member k j) Jsonx.to_int in
  let flt k = Option.bind (Jsonx.member k j) Jsonx.to_float in
  match (str "sub", str "verdict", int "exit") with
  | Some subcommand, Some verdict, Some exit_code ->
    Some
      {
        timestamp = Option.value ~default:0.0 (flt "ts");
        session = Option.value ~default:"" (str "session");
        subcommand;
        file = Option.value ~default:"-" (str "file");
        verdict;
        exit_code;
        duration_s = Option.value ~default:0.0 (flt "duration_s");
        peak_rss_bytes = Option.value ~default:0 (int "peak_rss_bytes");
        states = Option.value ~default:0 (int "states");
        budget_trip = str "budget_trip";
        telemetry_port = int "port";
      }
  | _ -> None

let append ~path e =
  let line = Jsonx.to_string (to_json e) ^ "\n" in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> ignore (Unix.write_substring fd line 0 (String.length line)))

(* All well-formed entries in file order, plus the count of skipped
   lines. *)
let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let entries = ref [] and bad = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match Jsonx.of_string line with
             | Ok j -> (
               match of_json j with
               | Some e -> entries := e :: !entries
               | None -> incr bad)
             | Error _ -> incr bad
         done
       with End_of_file -> ());
      (List.rev !entries, !bad))
