(** Minimal JSON tree shared by every observability sink: compact writer
    (standard-parser-compatible output) plus a strict reader used by the
    tests to parse emitted files back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Parse a complete JSON document (trailing whitespace allowed). *)
val of_string : string -> (t, string) result

(** Field lookup on [Obj]; [None] on other constructors. *)
val member : string -> t -> t option

val to_int : t -> int option
val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
