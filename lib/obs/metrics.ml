(* Process-wide metrics: counters, gauges and histograms.

   The registry is global (one process, one toolkit run) and get-or-create
   by name, so instrumented modules can declare their instruments at
   initialization without threading handles around.  All cells are
   [Atomic]: the packed engine increments from worker domains.  [reset]
   zeroes the cells in place, keeping every handle valid — tests rely on
   this for isolation. *)

type counter = { c_name : string; cell : int Atomic.t }

type gauge = { g_name : string; g_cell : int Atomic.t }

type histogram = {
  h_name : string;
  bounds : int array; (* inclusive upper bounds, ascending; last = overflow *)
  counts : int Atomic.t array; (* length = length bounds + 1 *)
  sum : int Atomic.t;
  total : int Atomic.t;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Callback of (unit -> float)
      (* sampled at snapshot/exposition time: GC statistics, RSS, ETA —
         values owned by the process, not accumulated by instrumented
         code.  Unaffected by [reset]. *)

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let intern name make select =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some existing -> (
        match select existing with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered with another type"
               name))
      | None ->
        let v, inst = make () in
        Hashtbl.replace registry name inst;
        v)

let counter name =
  intern name
    (fun () ->
      let c = { c_name = name; cell = Atomic.make 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.cell by)

let counter_value c = Atomic.get c.cell

let gauge name =
  intern name
    (fun () ->
      let g = { g_name = name; g_cell = Atomic.make 0 } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let set_gauge g v = Atomic.set g.g_cell v

let max_gauge g v =
  (* Lock-free max: retry while we hold a smaller value. *)
  let rec go () =
    let cur = Atomic.get g.g_cell in
    if v > cur && not (Atomic.compare_and_set g.g_cell cur v) then go ()
  in
  go ()

let gauge_value g = Atomic.get g.g_cell

(* Default buckets: 1-2-5 decades, wide enough for ns timings and for
   state counts alike. *)
let default_buckets =
  [|
    1; 2; 5; 10; 20; 50; 100; 200; 500; 1_000; 2_000; 5_000; 10_000; 20_000;
    50_000; 100_000; 200_000; 500_000; 1_000_000; 2_000_000; 5_000_000;
    10_000_000; 100_000_000; 1_000_000_000;
  |]

let histogram ?(buckets = default_buckets) name =
  intern name
    (fun () ->
      let h =
        {
          h_name = name;
          bounds = Array.copy buckets;
          counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
          sum = Atomic.make 0;
          total = Atomic.make 0;
        }
      in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

(* Callback gauges are replace-on-register (re-registering the same name
   swaps the sampler — module initialization order must not matter), but
   colliding with an accumulating instrument is still a programming
   error.  Samplers run under the registry mutex and must not touch the
   registry themselves; a raising sampler reads as 0. *)
let set_callback name fn =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | None | Some (Callback _) -> Hashtbl.replace registry name (Callback fn)
      | Some _ ->
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered with another type"
             name))

let sample_callback fn = try fn () with _ -> 0.0

let observe h v =
  let n = Array.length h.bounds in
  (* Binary search for the first bound >= v; linear tail is fine for the
     default 24-bucket layout but binary keeps custom layouts cheap too. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if h.bounds.(mid) >= v then search lo mid else search (mid + 1) hi
  in
  let idx = search 0 n in
  ignore (Atomic.fetch_and_add h.counts.(idx) 1);
  ignore (Atomic.fetch_and_add h.sum v);
  ignore (Atomic.fetch_and_add h.total 1)

let histogram_count h = Atomic.get h.total

let histogram_sum h = Atomic.get h.sum

let histogram_buckets h =
  Array.to_list
    (Array.mapi
       (fun i cell ->
         let le = if i < Array.length h.bounds then Some h.bounds.(i) else None in
         (le, Atomic.get cell))
       h.counts)

(* ------------------------------------------------------------------ *)
(* Snapshot and reset                                                  *)
(* ------------------------------------------------------------------ *)

let snapshot () =
  with_registry (fun () ->
      let counters = ref [] and gauges = ref [] and histograms = ref [] in
      Hashtbl.iter
        (fun name inst ->
          match inst with
          | Counter c -> counters := (name, Jsonx.Int (Atomic.get c.cell)) :: !counters
          | Gauge g -> gauges := (name, Jsonx.Int (Atomic.get g.g_cell)) :: !gauges
          | Callback fn ->
            gauges := (name, Jsonx.Float (sample_callback fn)) :: !gauges
          | Histogram h ->
            let buckets =
              List.filter_map
                (fun (le, count) ->
                  if count = 0 then None
                  else
                    Some
                      (Jsonx.Obj
                         [
                           ( "le",
                             match le with
                             | Some b -> Jsonx.Int b
                             | None -> Jsonx.Str "+inf" );
                           ("count", Jsonx.Int count);
                         ]))
                (histogram_buckets h)
            in
            histograms :=
              ( name,
                Jsonx.Obj
                  [
                    ("count", Jsonx.Int (Atomic.get h.total));
                    ("sum", Jsonx.Int (Atomic.get h.sum));
                    ("buckets", Jsonx.List buckets);
                  ] )
              :: !histograms)
        registry;
      let sorted l = List.sort (fun (a, _) (b, _) -> String.compare a b) !l in
      Jsonx.Obj
        [
          ("counters", Jsonx.Obj (sorted counters));
          ("gauges", Jsonx.Obj (sorted gauges));
          ("histograms", Jsonx.Obj (sorted histograms));
        ])

let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ inst ->
          match inst with
          | Counter c -> Atomic.set c.cell 0
          | Gauge g -> Atomic.set g.g_cell 0
          | Callback _ -> ()
          | Histogram h ->
            Array.iter (fun cell -> Atomic.set cell 0) h.counts;
            Atomic.set h.sum 0;
            Atomic.set h.total 0)
        registry)

(* ------------------------------------------------------------------ *)
(* Readings: one consistent pass over the registry for the exposition   *)
(* encoder (Expose) and anything else that renders all instruments.     *)
(* ------------------------------------------------------------------ *)

type reading =
  | Counter_reading of string * int
  | Gauge_reading of string * int
  | Float_reading of string * float
  | Histogram_reading of {
      r_name : string;
      buckets : (int option * int) list;
      r_sum : int;
      r_count : int;
    }

let reading_name = function
  | Counter_reading (n, _) | Gauge_reading (n, _) | Float_reading (n, _) -> n
  | Histogram_reading { r_name; _ } -> r_name

let readings () =
  with_registry (fun () ->
      let acc = ref [] in
      Hashtbl.iter
        (fun name inst ->
          let r =
            match inst with
            | Counter c -> Counter_reading (name, Atomic.get c.cell)
            | Gauge g -> Gauge_reading (name, Atomic.get g.g_cell)
            | Callback fn -> Float_reading (name, sample_callback fn)
            | Histogram h ->
              Histogram_reading
                {
                  r_name = name;
                  buckets = histogram_buckets h;
                  r_sum = Atomic.get h.sum;
                  r_count = Atomic.get h.total;
                }
          in
          acc := r :: !acc)
        registry;
      List.sort
        (fun a b -> String.compare (reading_name a) (reading_name b))
        !acc)

(* Value of a counter by name; 0 when absent.  For tests and reports. *)
let counter_value_by_name name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Counter c) -> Atomic.get c.cell
      | _ -> 0)
