(** Process-wide metrics registry: atomic counters, gauges and histograms,
    get-or-create by name, snapshot-able as JSON.  All cells are [Atomic]
    (the packed engine increments from worker domains); [reset] zeroes the
    cells in place so existing handles stay valid. *)

type counter
type gauge
type histogram

(** Get or create.  @raise Invalid_argument if [name] is already registered
    as a different instrument type. *)
val counter : string -> counter

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set_gauge : gauge -> int -> unit

(** Raise the gauge to [v] if larger (lock-free compare-and-set loop). *)
val max_gauge : gauge -> int -> unit

val gauge_value : gauge -> int

(** Register (or replace) a sampled gauge: [fn] runs at snapshot and
    exposition time, under the registry lock — it must not touch the
    registry itself.  A raising sampler reads as 0.  Unaffected by
    {!reset}.  @raise Invalid_argument if [name] is an accumulating
    instrument. *)
val set_callback : string -> (unit -> float) -> unit

(** [histogram ?buckets name]: bucket bounds are inclusive upper bounds in
    ascending order; an overflow bucket is added.  Default: 1-2-5 decades
    from 1 to 1e9. *)
val histogram : ?buckets:int array -> string -> histogram

val observe : histogram -> int -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> int

(** Per-bucket (upper bound, count); [None] bound = overflow bucket. *)
val histogram_buckets : histogram -> (int option * int) list

(** JSON snapshot: {counters, gauges, histograms} with names sorted. *)
val snapshot : unit -> Jsonx.t

(** Zero every instrument in place. *)
val reset : unit -> unit

(** Counter value by name; 0 when the counter does not exist. *)
val counter_value_by_name : string -> int

(** One consistent pass over every registered instrument, sorted by
    name — the input to the Prometheus exposition encoder. *)
type reading =
  | Counter_reading of string * int
  | Gauge_reading of string * int
  | Float_reading of string * float  (** callback gauges *)
  | Histogram_reading of {
      r_name : string;
      buckets : (int option * int) list;  (** [None] bound = overflow *)
      r_sum : int;
      r_count : int;
    }

val readings : unit -> reading list
