(* Live progress heartbeats.

   Long-running phases (engine BFS, synthesis fixpoints, the monitor's
   stream sweep) register a cheap sampler; [pulse] — called from the
   Budget cooperative checkpoints' slow path, the same mechanism that
   drives crash-safe snapshots — publishes the sampler's readings as
   gauges, plus a derived items/sec rate, at most once per
   [min_interval_ns].  Publication is owner-domain-gated exactly like
   Checkpoint captures: only the domain that called [start] samples, so
   worker-domain pulses are a flag read and a compare.

   The armed flag mirrors Checkpoint.armed: a plain ref read from
   Budget's fast path, racy reads benign because [pulse] re-checks. *)

let armed_flag = ref false

let armed () = !armed_flag

type phase_data = {
  ph_name : string;
  sampler : unit -> (string * int) list;
  mutable last_ns : int64;
  mutable last_items : int;
}

type phase = phase_data option

let owner = ref (-1)

(* Innermost first; mutated by the owner domain only, read (as an
   immutable list snapshot) by the scrape thread for the phase-info
   sample. *)
let stack : phase_data list ref = ref []

let min_interval_ns = 100_000_000L (* 10 Hz: invisible next to real work *)

(* ETA pushed by Budget from its ceilings; negative = unknown. *)
let eta_seconds = ref (-1.0)

let set_eta_seconds v = eta_seconds := v

let g_items = Metrics.gauge "obs.phase_items"
let g_rate = Metrics.gauge "obs.phase_rate"

(* Sampler keys resolve to gauges through this cache so a pulse does not
   take the registry lock per key. *)
let gauge_cache : (string, Metrics.gauge) Hashtbl.t = Hashtbl.create 16

let gauge_for name =
  match Hashtbl.find_opt gauge_cache name with
  | Some g -> g
  | None ->
    let g = Metrics.gauge name in
    Hashtbl.add gauge_cache name g;
    g

let exposed = ref false

(* Heartbeat scheduling.  A 20 Hz ticker systhread raises [due]; the
   Budget fast path polls it with [due_now], so per-tick work while
   armed is one ref load and a branch — identical to the disarmed
   path.  (The earlier countdown-per-tick scheme cost >10% on
   per-edge-tick workloads.)  The flag is a plain ref: the ticker
   shares domain 0 with the owner, and a stale read on a worker domain
   merely shifts one heartbeat. *)
let due = ref false

(* Stop cell of the current ticker thread; [start] retires any
   previous ticker by flipping its cell. *)
let ticker_stop : bool ref ref = ref (ref true)

let due_now () =
  !due && !armed_flag
  && (Stdlib.Domain.self () :> int) = !owner
  &&
  (due := false;
   true)

let start () =
  owner := (Stdlib.Domain.self () :> int);
  stack := [];
  eta_seconds := -1.0;
  due := false;
  !ticker_stop := true;
  let stop_cell = ref false in
  ticker_stop := stop_cell;
  ignore
    (Thread.create
       (fun () ->
         while not !stop_cell do
           Thread.delay 0.05;
           if not !stop_cell then due := true
         done)
       ());
  Metrics.set_callback "obs.phase_eta_seconds" (fun () -> !eta_seconds);
  if not !exposed then begin
    exposed := true;
    Expose.add_extra (fun () ->
        match !stack with
        | [] -> []
        | p :: _ ->
          [
            {
              Expose.metric = "obs_phase_info";
              labels = [ ("phase", p.ph_name) ];
              value = 1.0;
            };
          ])
  end;
  armed_flag := true

let stop () =
  armed_flag := false;
  !ticker_stop := true;
  due := false;
  stack := [];
  eta_seconds := -1.0

let on_owner () = (Stdlib.Domain.self () :> int) = !owner

let enter name sampler : phase =
  if not (!armed_flag && on_owner ()) then None
  else begin
    let p =
      { ph_name = name; sampler; last_ns = Obs.now_ns (); last_items = 0 }
    in
    stack := p :: !stack;
    Some p
  end

let leave (p : phase) =
  match p with
  | None -> ()
  | Some p ->
    stack := List.filter (fun q -> q != p) !stack;
    (* Publish the phase's final readings so short phases are visible
       and gauges do not freeze at a stale mid-phase value. *)
    if !armed_flag && on_owner () then
      List.iter (fun (k, v) -> Metrics.set_gauge (gauge_for k) v) (p.sampler ())

let pulse () =
  if !armed_flag && on_owner () then
    match !stack with
    | [] -> ()
    | p :: _ ->
      let now = Obs.now_ns () in
      let dt = Int64.sub now p.last_ns in
      if dt >= min_interval_ns then begin
        let kv = p.sampler () in
        List.iter (fun (k, v) -> Metrics.set_gauge (gauge_for k) v) kv;
        let items = match kv with (_, v) :: _ -> v | [] -> 0 in
        let rate =
          let d = items - p.last_items in
          if d <= 0 then 0
          else
            int_of_float (float_of_int d /. (Int64.to_float dt /. 1e9))
        in
        Metrics.set_gauge g_items items;
        Metrics.set_gauge g_rate rate;
        p.last_ns <- now;
        p.last_items <- items
      end

(* [with_phase name sampler f]: scoped enter/leave for straight-line
   callers. *)
let with_phase name sampler f =
  let p = enter name sampler in
  Fun.protect ~finally:(fun () -> leave p) f
