(* Attributes and severity levels carried by spans and events. *)

type value =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string

type t = string * value

let int k v : t = (k, Int v)
let float k v : t = (k, Float v)
let bool k v : t = (k, Bool v)
let str k v : t = (k, Str v)

let value_to_json = function
  | Int i -> Jsonx.Int i
  | Float f -> Jsonx.Float f
  | Bool b -> Jsonx.Bool b
  | Str s -> Jsonx.Str s

let to_json attrs =
  Jsonx.Obj (List.map (fun (k, v) -> (k, value_to_json v)) attrs)

let pp_value ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%g" f
  | Bool b -> Fmt.bool ppf b
  | Str s -> Fmt.string ppf s

let pp ppf (k, v) = Fmt.pf ppf "%s=%a" k pp_value v

let pp_list ppf attrs = Fmt.(list ~sep:sp pp) ppf attrs

(* ------------------------------------------------------------------ *)
(* Severity levels (for events and the stderr log sink).               *)
(* ------------------------------------------------------------------ *)

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let level_int = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

(* [level_geq a b]: is [a] at least as severe as [b]? *)
let level_geq a b = level_int a >= level_int b

let pp_level ppf l = Fmt.string ppf (level_to_string l)
