(* Prometheus text exposition over the metrics registry.

   The registry's dotted names ("engine.states") become exposition names
   ("engine_states"); counters get the conventional [_total] suffix and
   histograms expand to the cumulative [_bucket{le=...}] / [_sum] /
   [_count] triple.  Callback gauges (GC words, heap size, RSS) are
   sampled at render time, so every scrape sees live process state.

   [parse_line] is the encoder's own inverse for one line — enough for
   the test suite to assert that every rendered line is a well-formed
   `name{labels} value` sample (and for `dcheck top` to read a scrape
   back), without pulling in a real Prometheus client. *)

type sample = {
  metric : string;
  labels : (string * string) list;
  value : float;
}

(* ------------------------------------------------------------------ *)
(* Names and values.                                                   *)
(* ------------------------------------------------------------------ *)

let name_char_ok first c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'
  || ((not first) && c >= '0' && c <= '9')

(* Any registry name becomes a valid exposition name: invalid characters
   (the registry's dots, mostly) map to '_', and a leading digit or an
   empty name gains a '_' prefix. *)
let metric_name s =
  let b = Buffer.create (String.length s + 1) in
  String.iteri
    (fun i c ->
      if i = 0 && not (name_char_ok true c) then begin
        Buffer.add_char b '_';
        if name_char_ok false c then Buffer.add_char b c
      end
      else Buffer.add_char b (if name_char_ok false c then c else '_'))
    s;
  if Buffer.length b = 0 then "_" else Buffer.contents b

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* The exposition format spells non-finite values out; everything the
   registry holds is finite, but callback gauges may divide by zero. *)
let value_str v =
  match Float.classify_float v with
  | Float.FP_nan -> "NaN"
  | Float.FP_infinite -> if v > 0.0 then "+Inf" else "-Inf"
  | _ ->
    if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.17g" v

let add_sample buf { metric; labels; value } =
  Buffer.add_string buf metric;
  (match labels with
  | [] -> ()
  | labels ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (metric_name k);
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_label_value v);
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}');
  Buffer.add_char buf ' ';
  Buffer.add_string buf (value_str value);
  Buffer.add_char buf '\n'

let add_type buf name kind =
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)

(* ------------------------------------------------------------------ *)
(* Rendering the registry.                                             *)
(* ------------------------------------------------------------------ *)

(* Extra samples appended after the registry: Progress contributes its
   phase-info sample here (a labelled sample the int/float registry
   cannot carry). *)
let extra_samples : (unit -> sample list) list ref = ref []

let add_extra f = extra_samples := f :: !extra_samples

let render_reading buf (r : Metrics.reading) =
  match r with
  | Metrics.Counter_reading (name, v) ->
    let n = metric_name name ^ "_total" in
    add_type buf n "counter";
    add_sample buf { metric = n; labels = []; value = float_of_int v }
  | Metrics.Gauge_reading (name, v) ->
    let n = metric_name name in
    add_type buf n "gauge";
    add_sample buf { metric = n; labels = []; value = float_of_int v }
  | Metrics.Float_reading (name, v) ->
    let n = metric_name name in
    add_type buf n "gauge";
    add_sample buf { metric = n; labels = []; value = v }
  | Metrics.Histogram_reading { r_name; buckets; r_sum; r_count } ->
    let n = metric_name r_name in
    add_type buf n "histogram";
    let cum = ref 0 in
    List.iter
      (fun (le, count) ->
        cum := !cum + count;
        let le_str =
          match le with None -> "+Inf" | Some b -> string_of_int b
        in
        add_sample buf
          {
            metric = n ^ "_bucket";
            labels = [ ("le", le_str) ];
            value = float_of_int !cum;
          })
      buckets;
    add_sample buf
      { metric = n ^ "_sum"; labels = []; value = float_of_int r_sum };
    add_sample buf
      { metric = n ^ "_count"; labels = []; value = float_of_int r_count }

let render () =
  let buf = Buffer.create 4096 in
  List.iter (render_reading buf) (Metrics.readings ());
  List.iter (fun f -> List.iter (add_sample buf) (f ())) !extra_samples;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing one exposition line back.                                   *)
(* ------------------------------------------------------------------ *)

let valid_name s =
  String.length s > 0
  && name_char_ok true s.[0]
  && String.for_all (name_char_ok false) s

let parse_value s =
  match s with
  | "+Inf" -> Some Float.infinity
  | "-Inf" -> Some Float.neg_infinity
  | "NaN" -> Some Float.nan
  | s -> float_of_string_opt s

let parse_labels s =
  (* Comma-separated key="value" pairs; values may escape backslash,
     double quote and newline with a backslash. *)
  let n = String.length s in
  let buf = Buffer.create 16 in
  let rec labels acc i =
    let rec key j =
      if j < n && s.[j] <> '=' then key (j + 1) else j
    in
    let j = key i in
    let k = String.sub s i (j - i) in
    if j + 1 >= n || s.[j] <> '=' || s.[j + 1] <> '"' || not (valid_name k)
    then None
    else begin
      Buffer.clear buf;
      let rec value j =
        if j >= n then None
        else
          match s.[j] with
          | '"' -> Some j
          | '\\' when j + 1 < n ->
            (match s.[j + 1] with
            | '\\' -> Buffer.add_char buf '\\'
            | '"' -> Buffer.add_char buf '"'
            | 'n' -> Buffer.add_char buf '\n'
            | c -> Buffer.add_char buf c);
            value (j + 2)
          | c ->
            Buffer.add_char buf c;
            value (j + 1)
      in
      match value (j + 2) with
      | None -> None
      | Some close ->
        let acc = (k, Buffer.contents buf) :: acc in
        if close + 1 = n then Some (List.rev acc)
        else if s.[close + 1] = ',' then labels acc (close + 2)
        else None
    end
  in
  if n = 0 then Some [] else labels [] 0

let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    (* name[{labels}] SP value *)
    let name_end =
      let rec go i =
        if i < String.length line && name_char_ok false line.[i] then
          go (i + 1)
        else i
      in
      go 0
    in
    let name = String.sub line 0 name_end in
    if not (valid_name name) then Error "invalid metric name"
    else
      let rest = String.sub line name_end (String.length line - name_end) in
      let labels, rest =
        if String.length rest > 0 && rest.[0] = '{' then
          match String.index_opt rest '}' with
          | None -> (None, rest)
          | Some close ->
            ( parse_labels (String.sub rest 1 (close - 1)),
              String.sub rest (close + 1) (String.length rest - close - 1) )
        else (Some [], rest)
      in
      match labels with
      | None -> Error "malformed labels"
      | Some labels -> (
        let rest = String.trim rest in
        match parse_value rest with
        | None -> Error "malformed value"
        | Some value -> Ok (Some { metric = name; labels; value }))

(* ------------------------------------------------------------------ *)
(* Process gauges: GC, heap, RSS.                                      *)
(* ------------------------------------------------------------------ *)

(* VmHWM from /proc/self/status: the kernel's high-water mark of
   resident set size.  0 where procfs is absent (non-Linux). *)
let peak_rss_bytes () =
  try
    In_channel.with_open_text "/proc/self/status" @@ fun ic ->
    let rec scan () =
      match In_channel.input_line ic with
      | None -> 0
      | Some line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          let digits =
            String.to_seq line
            |> Seq.filter (fun c -> c >= '0' && c <= '9')
            |> String.of_seq
          in
          match int_of_string_opt digits with
          | Some kb -> kb * 1024
          | None -> 0
        else scan ()
    in
    scan ()
  with Sys_error _ -> 0

let registered = ref false

let register_process_gauges () =
  if not !registered then begin
    registered := true;
    let words_to_bytes w = w *. float_of_int (Sys.word_size / 8) in
    Metrics.set_callback "process.gc_minor_words" (fun () ->
        Gc.minor_words ());
    Metrics.set_callback "process.gc_major_words" (fun () ->
        (Gc.quick_stat ()).Gc.major_words);
    Metrics.set_callback "process.gc_major_collections" (fun () ->
        float_of_int (Gc.quick_stat ()).Gc.major_collections);
    Metrics.set_callback "process.heap_bytes" (fun () ->
        words_to_bytes (float_of_int (Gc.quick_stat ()).Gc.heap_words));
    Metrics.set_callback "process.peak_rss_bytes" (fun () ->
        float_of_int (peak_rss_bytes ()))
  end
