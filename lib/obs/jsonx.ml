(* A minimal JSON tree: writer + parser.

   The toolkit's observability sinks (JSONL events, Chrome trace_event
   files, metrics snapshots, bench claim tables) all emit JSON, and the
   test suite parses the emitted files back to assert well-formedness.
   The preinstalled package set has no JSON library, so this module is the
   whole dependency: a strict value type, a compact printer whose output
   any standard parser accepts, and a recursive-descent reader sufficient
   for everything the printer can produce (plus whitespace and \u escapes,
   so externally edited files still load). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats must re-parse as JSON numbers: keep a digit after the dot and
   never print nan/infinity (clamped to null, which JSON can carry).
   [is_finite] covers both infinities — [is_integer] is false on them,
   so they would otherwise leak through as the invalid literal "inf". *)
let add_float buf f =
  if Float.is_nan f || not (Float.is_finite f)
     || (Float.is_integer f && Float.abs f > 1e15)
  then Buffer.add_string buf "null"
  else if Float.is_integer f then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Str s -> escape_string buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        add buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

let pp ppf v = Fmt.string ppf (to_string v)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      go ()
    | _ -> ()
  in
  go ()

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %C" c)

let parse_literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.src
    && String.sub cur.src cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let utf8_of_code buf code =
  (* Enough for \uXXXX escapes (BMP only; surrogate pairs are not produced
     by our printer and are rejected). *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
      advance cur;
      match peek cur with
      | Some '"' -> advance cur; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance cur; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance cur; Buffer.add_char buf '/'; go ()
      | Some 'b' -> advance cur; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance cur; Buffer.add_char buf '\012'; go ()
      | Some 'n' -> advance cur; Buffer.add_char buf '\n'; go ()
      | Some 'r' -> advance cur; Buffer.add_char buf '\r'; go ()
      | Some 't' -> advance cur; Buffer.add_char buf '\t'; go ()
      | Some 'u' ->
        advance cur;
        if cur.pos + 4 > String.length cur.src then fail cur "short \\u escape";
        let hex = String.sub cur.src cur.pos 4 in
        cur.pos <- cur.pos + 4;
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail cur "bad \\u escape"
        in
        if code >= 0xD800 && code <= 0xDFFF then fail cur "surrogate escape";
        utf8_of_code buf code;
        go ()
      | _ -> fail cur "bad escape")
    | Some c ->
      advance cur;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_float = ref false in
  let rec go () =
    match peek cur with
    | Some ('0' .. '9' | '-' | '+') ->
      advance cur;
      go ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance cur;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub cur.src start (cur.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail cur "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail cur "bad number")

(* Nesting cap: recursive descent uses the OCaml stack, so a few thousand
   open brackets of hostile input would otherwise escape as
   [Stack_overflow] instead of a [Parse_error].  256 levels is far beyond
   anything the printer produces. *)
let max_depth = 256

let rec parse_value depth cur =
  if depth > max_depth then fail cur "nesting too deep";
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> parse_literal cur "null" Null
  | Some 't' -> parse_literal cur "true" (Bool true)
  | Some 'f' -> parse_literal cur "false" (Bool false)
  | Some '"' -> Str (parse_string cur)
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value (depth + 1) cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          items (v :: acc)
        | Some ']' ->
          advance cur;
          List.rev (v :: acc)
        | _ -> fail cur "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let field () =
        skip_ws cur;
        let k = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value (depth + 1) cur in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          fields (kv :: acc)
        | Some '}' ->
          advance cur;
          List.rev (kv :: acc)
        | _ -> fail cur "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some ('0' .. '9' | '-') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected %C" c)

let of_string s =
  let cur = { src = s; pos = 0 } in
  match parse_value 0 cur with
  | v ->
    skip_ws cur;
    if cur.pos <> String.length s then Error "trailing garbage"
    else Ok v
  | exception Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | Float f when Float.is_integer f -> Some (int_of_float f) | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_list = function List l -> Some l | _ -> None
