(* Online monitors over simulation traces.

   The monitors observe the component-level behavior the theory predicts:
   - detection latency: steps between the detection predicate X becoming
     (and remaining) true and the witness Z being truthified (the Progress
     obligation of 'Z detects X');
   - correction latency: steps between the last injected fault and the
     correction predicate being re-established (the Convergence obligation
     of 'Z corrects X');
   - safety monitoring: the index of the first specification violation,
     if any (fail-safe tolerance in the observed run).

   Each latency is defined by a one-pass scan automaton over per-state
   truth values.  The scans are written once, over [int -> bool]
   accessors, and fed from two interchangeable sources: the reference
   path queries each predicate closure state by state, while the compiled
   path ([Compiled]) evaluates the whole witness family per run through
   the {!Syndrome} batch evaluator and feeds the scans from bit columns.
   Both sources see the same truth values, so verdicts and latencies are
   identical by construction. *)

open Detcor_kernel
open Detcor_semantics
open Detcor_spec
open Detcor_core
open Detcor_obs

let m_detections = Metrics.counter "sim.monitor.detections"
let m_corrections = Metrics.counter "sim.monitor.corrections"
let m_violations = Metrics.counter "sim.monitor.safety_violations"

(* ------------------------------------------------------------------ *)
(* Scan automata over per-index truth accessors.                       *)
(* ------------------------------------------------------------------ *)

(* Progress automaton: for each maximal interval where X holds
   continuously, steps from the interval start to the first state where Z
   holds; intervals that end (or the trace ends) before Z is witnessed
   are skipped — Progress permits escape through ¬X. *)
let detection_scan n x z =
  let rec go i latencies current =
    if i >= n then List.rev latencies
    else
      match current with
      | None ->
        if x i then
          if z i then go (i + 1) (0 :: latencies) None
          else go (i + 1) latencies (Some 1)
        else go (i + 1) latencies None
      | Some elapsed ->
        if z i then go (i + 1) (elapsed :: latencies) None
        else if x i then go (i + 1) latencies (Some (elapsed + 1))
        else go (i + 1) latencies None
  in
  go 0 [] None

(* Convergence: first index at or after [start] where the correction
   predicate holds, as steps past [start]. *)
let correction_scan n ~start c =
  let rec go i = if i >= n then None else if c i then Some (i - start) else go (i + 1) in
  if start >= n then None else go start

(* First index at which safety is violated: a bad state there, or a bad
   transition into it ([bad_pair i] judges the step from [i-1] to [i]). *)
let safety_scan n ~bad_state ~bad_pair =
  let rec go i =
    if i >= n then None
    else if bad_state i then Some i
    else if i > 0 && bad_pair i then Some i
    else go (i + 1)
  in
  go 0

(* Scans begin one state past the last injected fault; [fault_steps] is
   ascending, so that is its last element. *)
let last_fault_start (run : Runner.run) =
  match run.fault_steps with
  | [] -> 0
  | steps -> List.fold_left (fun _ s -> s) 0 steps + 1

(* ------------------------------------------------------------------ *)
(* Reference monitors: one predicate at a time.                        *)
(* ------------------------------------------------------------------ *)

let detection_latency (run : Runner.run) d =
  let x = Pred.fn (Detector.detection d) and z = Pred.fn (Detector.witness d) in
  let states = Array.of_list (Trace.states run.trace) in
  detection_scan (Array.length states) (fun i -> x states.(i)) (fun i -> z states.(i))

let correction_latency (run : Runner.run) c =
  let p = Pred.fn (Corrector.correction c) in
  let states = Array.of_list (Trace.states run.trace) in
  correction_scan (Array.length states) ~start:(last_fault_start run) (fun i ->
      p states.(i))

let first_safety_violation (run : Runner.run) sspec =
  Safety.first_violation_in_trace run.trace sspec

(* ------------------------------------------------------------------ *)
(* Compiled monitors: the whole witness family per batch.              *)
(* ------------------------------------------------------------------ *)

module Compiled = struct
  (* The syndrome family is laid out as [X; Z; C; spec columns].  A
     decomposable safety specification contributes one disjunction column
     for its bad states plus an (l, r) column pair per transition
     obligation; an opaque one keeps its closures and is scanned the
     reference way. *)
  type spec_cols =
    | Opaque
    | Cols of {
        bad_i : int option;
        pairs : (int * int) list;
      }

  type t = {
    syn : Syndrome.t;
    x_i : int;
    z_i : int;
    c_i : int;
    spec_cols : spec_cols;
    sspec : Safety.t;
  }

  let make ?mode ?program ~detector ~corrector ~sspec () =
    let base =
      [
        Detector.detection detector;
        Detector.witness detector;
        Corrector.correction corrector;
      ]
    in
    let next = ref (List.length base) in
    let extra = ref [] in
    let add p =
      let i = !next in
      incr next;
      extra := p :: !extra;
      i
    in
    let spec_cols =
      match Safety.decompose sspec with
      | None -> Opaque
      | Some { Safety.bad_states; bad_pairs } ->
        let bad_i =
          match bad_states with [] -> None | ps -> Some (add (Pred.disj ps))
        in
        let pairs =
          List.map
            (fun (l, r) ->
              let li = add l in
              (* cl(S) obligations use one predicate on both sides. *)
              let ri = if r == l then li else add r in
              (li, ri))
            bad_pairs
        in
        Cols { bad_i; pairs }
    in
    let syn = Syndrome.compile ?mode ?program (base @ List.rev !extra) in
    { syn; x_i = 0; z_i = 1; c_i = 2; spec_cols; sspec }

  let is_packed t = Syndrome.is_packed t.syn

  let eval t (run : Runner.run) = Syndrome.of_trace t.syn run.trace

  let detection_of_batch t b =
    detection_scan (Syndrome.length b)
      (fun i -> Syndrome.get b ~state:i ~pred:t.x_i)
      (fun i -> Syndrome.get b ~state:i ~pred:t.z_i)

  let correction_of_batch t run b =
    correction_scan (Syndrome.length b) ~start:(last_fault_start run) (fun i ->
        Syndrome.get b ~state:i ~pred:t.c_i)

  let violation_of_batch t (run : Runner.run) b =
    match t.spec_cols with
    | Opaque -> Safety.first_violation_in_trace run.trace t.sspec
    | Cols { bad_i; pairs } ->
      safety_scan (Syndrome.length b)
        ~bad_state:(fun i ->
          match bad_i with
          | None -> false
          | Some j -> Syndrome.get b ~state:i ~pred:j)
        ~bad_pair:(fun i ->
          List.exists
            (fun (li, ri) ->
              Syndrome.get b ~state:(i - 1) ~pred:li
              && not (Syndrome.get b ~state:i ~pred:ri))
            pairs)

  let detection_latency t run = detection_of_batch t (eval t run)
  let correction_latency t run = correction_of_batch t run (eval t run)
  let first_safety_violation t run = violation_of_batch t run (eval t run)
end

(* ------------------------------------------------------------------ *)
(* Aggregate over a batch of runs.                                     *)
(* ------------------------------------------------------------------ *)

type report = {
  runs : int;
  detection : Stats.summary option;
  correction : Stats.summary option;
  safety_violations : int;
  corrected_runs : int;
}

let report ?(mode = Syndrome.Auto) ?program runs ~detector ~corrector ~sspec =
  Obs.span "sim.monitor" ~attrs:[ Attr.int "runs" (List.length runs) ]
  @@ fun () ->
  let legacy () =
    ( List.concat_map (fun r -> detection_latency r detector) runs,
      List.filter_map (fun r -> correction_latency r corrector) runs,
      List.length
        (List.filter (fun r -> first_safety_violation r sspec <> None) runs) )
  in
  let detections, corrections, violations =
    match (mode, program) with
    | Syndrome.Reference, _ | _, None -> legacy ()
    | (Syndrome.Auto | Syndrome.Packed), Some _ -> (
      let comp = Compiled.make ~mode ?program ~detector ~corrector ~sspec () in
      match mode with
      (* Auto dispatch: when the compile's work crossover rejected
         packing, the batch sweep has no memo to amortize its toll —
         the per-predicate scans are strictly cheaper, so route there. *)
      | Syndrome.Auto when not (Compiled.is_packed comp) -> legacy ()
      | _ ->
      let per_run =
        List.map
          (fun r ->
            (* One batch evaluation feeds all three scans. *)
            let b = Compiled.eval comp r in
            ( Compiled.detection_of_batch comp b,
              Compiled.correction_of_batch comp r b,
              Compiled.violation_of_batch comp r b ))
          runs
      in
      ( List.concat_map (fun (d, _, _) -> d) per_run,
        List.filter_map (fun (_, c, _) -> c) per_run,
        List.length (List.filter (fun (_, _, v) -> v <> None) per_run) ))
  in
  if Obs.on () then begin
    Metrics.incr ~by:(List.length detections) m_detections;
    Metrics.incr ~by:(List.length corrections) m_corrections;
    Metrics.incr ~by:violations m_violations;
    Obs.event "sim.monitor.report"
      ~attrs:
        [
          Attr.int "detections" (List.length detections);
          Attr.int "corrections" (List.length corrections);
          Attr.int "safety_violations" violations;
        ]
  end;
  {
    runs = List.length runs;
    detection = Stats.summarize detections;
    correction = Stats.summarize corrections;
    safety_violations = violations;
    corrected_runs = List.length corrections;
  }

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>runs: %d@,detection latency:  %a@,correction latency: %a@,\
     corrected runs: %d/%d@,safety violations: %d@]"
    r.runs Stats.pp_option r.detection Stats.pp_option r.correction
    r.corrected_runs r.runs r.safety_violations
