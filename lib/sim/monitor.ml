(* Online monitors over simulation traces.

   The monitors observe the component-level behavior the theory predicts:
   - detection latency: steps between the detection predicate X becoming
     (and remaining) true and the witness Z being truthified (the Progress
     obligation of 'Z detects X');
   - correction latency: steps between the last injected fault and the
     correction predicate being re-established (the Convergence obligation
     of 'Z corrects X');
   - safety monitoring: the index of the first specification violation,
     if any (fail-safe tolerance in the observed run). *)

open Detcor_kernel
open Detcor_semantics
open Detcor_spec
open Detcor_core
open Detcor_obs

let m_detections = Metrics.counter "sim.monitor.detections"
let m_corrections = Metrics.counter "sim.monitor.corrections"
let m_violations = Metrics.counter "sim.monitor.safety_violations"

(* [detection_latency run d]: for each maximal interval where X holds
   continuously, the number of steps from the start of the interval to the
   first state where Z holds (intervals that end before Z is witnessed are
   skipped: Progress permits escape through ¬X). *)
let detection_latency (run : Runner.run) d =
  let x = Detector.detection d and z = Detector.witness d in
  let states = Trace.states run.trace in
  let rec go latencies current = function
    | [] -> List.rev latencies
    | st :: rest -> (
      match current with
      | None ->
        if Pred.holds x st then
          if Pred.holds z st then go (0 :: latencies) None rest
          else go latencies (Some 1) rest
        else go latencies None rest
      | Some elapsed ->
        if Pred.holds z st then go (elapsed :: latencies) None rest
        else if Pred.holds x st then go latencies (Some (elapsed + 1)) rest
        else go latencies None rest)
  in
  go [] None states

(* [correction_latency run c]: steps from the last fault step until the
   correction predicate holds; [None] if it never does within the trace. *)
let correction_latency (run : Runner.run) c =
  let x = Corrector.correction c in
  let start = match List.rev run.fault_steps with [] -> 0 | s :: _ -> s + 1 in
  let states = Trace.states run.trace in
  let rec go i = function
    | [] -> None
    | st :: rest ->
      if i >= start && Pred.holds x st then Some (i - start) else go (i + 1) rest
  in
  go 0 states

(* First index at which the run violates the safety specification. *)
let first_safety_violation (run : Runner.run) sspec =
  Safety.first_violation_in_trace run.trace sspec

(* Aggregate over a batch of runs. *)
type report = {
  runs : int;
  detection : Stats.summary option;
  correction : Stats.summary option;
  safety_violations : int;
  corrected_runs : int;
}

let report runs ~detector ~corrector ~sspec =
  Obs.span "sim.monitor" ~attrs:[ Attr.int "runs" (List.length runs) ]
  @@ fun () ->
  let detections =
    List.concat_map (fun r -> detection_latency r detector) runs
  in
  let corrections = List.filter_map (fun r -> correction_latency r corrector) runs in
  let violations =
    List.length
      (List.filter (fun r -> first_safety_violation r sspec <> None) runs)
  in
  if Obs.on () then begin
    Metrics.incr ~by:(List.length detections) m_detections;
    Metrics.incr ~by:(List.length corrections) m_corrections;
    Metrics.incr ~by:violations m_violations;
    Obs.event "sim.monitor.report"
      ~attrs:
        [
          Attr.int "detections" (List.length detections);
          Attr.int "corrections" (List.length corrections);
          Attr.int "safety_violations" violations;
        ]
  end;
  {
    runs = List.length runs;
    detection = Stats.summarize detections;
    correction = Stats.summarize corrections;
    safety_violations = violations;
    corrected_runs = List.length corrections;
  }

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>runs: %d@,detection latency:  %a@,correction latency: %a@,\
     corrected runs: %d/%d@,safety violations: %d@]"
    r.runs Stats.pp_option r.detection Stats.pp_option r.correction
    r.corrected_runs r.runs r.safety_violations
