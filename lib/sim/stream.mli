(** The line-oriented record format connecting simulation to offline
    monitoring ([dcheck simulate --record] / [dcheck monitor --stream]).

    A stream is plain text:

    {v
    # detcor stream v1
    program memory
    run 0
    init p=0 q=0
    step write p=1
    fault corrupt q=3
    end truncated
    v}

    [init] carries the full starting state; [step]/[fault] lines name the
    executed action and list only the bindings it changed.  Values print
    as {!Detcor_kernel.Value.to_string} ([true]/[false] parse back as
    booleans, digit strings as integers, anything else as a symbol);
    blank lines and [#] comments are skipped.  Malformed input raises
    {!Detcor_robust.Error.Parse} with the offending line — except at the
    very end of the stream, where a recorder killed mid-write leaves a
    torn tail ({!fold} tolerates it the way [Ledger.load] skips torn
    lines). *)

open Detcor_kernel
open Detcor_semantics

type record = {
  action : string;
  fault : bool;
  target : State.t;
}

type run = {
  index : int;
  init : State.t;
  records : record list;
  ending : Trace.ending;
}

val write_header : out_channel -> program:string -> unit

(** [write_run oc ~index run] appends one recorded run.  All states of
    the run must bind the same variables (the format encodes steps as
    deltas). *)
val write_run : out_channel -> index:int -> Runner.run -> unit

(** Fold over the runs of a stream, parsing incrementally — only one run
    is in memory at a time.  Returns the accumulator and the declared
    program name, if any.

    A torn tail — a malformed final line, or end-of-file inside a run —
    is tolerated, not fatal: the torn line is dropped, an in-progress
    run whose [init] parsed is delivered with ending [Truncated], and
    [on_torn] is called with the line number (default: ignore).  The
    same defects anywhere before the tail still raise
    {!Detcor_robust.Error.Parse}. *)
val fold :
  ?on_torn:(int -> unit) ->
  in_channel ->
  init:'a ->
  f:('a -> run -> 'a) ->
  'a * string option

(** Rebuild the simulator's view of a streamed run ([fault_steps] are the
    indices of the [fault] records). *)
val to_run : run -> Runner.run
