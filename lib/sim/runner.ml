(* The simulation loop: interleave scheduled program actions with injected
   faults, recording the executed trace. *)

open Detcor_kernel
open Detcor_semantics
open Detcor_obs

let m_runs = Metrics.counter "sim.runs"
let m_steps = Metrics.counter "sim.steps"
let m_faults = Metrics.counter "sim.faults_injected"
let h_trace_len = Metrics.histogram "sim.trace_len"

type config = {
  scheduler : Scheduler.t;
  seed : int;
  max_steps : int;
}

let default = { scheduler = Scheduler.Uniform_random; seed = 1; max_steps = 200 }

type run = {
  trace : Trace.t;
  fault_steps : int list; (* indices (into the trace) of fault steps *)
  faults_injected : int;
}

let run ?(config = default) program ~injector ~init =
  Obs.span "sim.run"
    ~attrs:
      [
        Attr.str "program" (Program.name program);
        Attr.int "seed" config.seed;
      ]
  @@ fun () ->
  let rng = Random.State.make [| config.seed |] in
  let rec loop st steps_rev fault_steps step =
    Detcor_robust.Budget.tick ();
    if step >= config.max_steps then
      (List.rev steps_rev, List.rev fault_steps, Trace.Truncated)
    else begin
      match Injector.try_inject injector ~rng ~step st with
      | Some (fname, st') ->
        if Obs.on () then begin
          Metrics.incr m_faults;
          Obs.event "sim.fault"
            ~attrs:[ Attr.str "action" fname; Attr.int "step" step ]
        end;
        loop st'
          ({ Trace.action = fname; target = st' } :: steps_rev)
          (step :: fault_steps) (step + 1)
      | None -> (
        let enabled = Scheduler.enabled_with_index program st in
        match Scheduler.pick config.scheduler ~rng ~step enabled with
        | None -> (List.rev steps_rev, List.rev fault_steps, Trace.Maximal)
        | Some (_, ac) -> (
          match Scheduler.choose_successor ~rng (Action.execute ac st) with
          | None -> (List.rev steps_rev, List.rev fault_steps, Trace.Maximal)
          | Some st' ->
            if Obs.on () then
              Obs.event "sim.schedule" ~level:Attr.Debug
                ~attrs:
                  [
                    Attr.str "action" (Action.name ac);
                    Attr.int "step" step;
                    Attr.int "enabled" (List.length enabled);
                  ];
            loop st'
              ({ Trace.action = Action.name ac; target = st' } :: steps_rev)
              fault_steps (step + 1)))
    end
  in
  let steps, fault_steps, ending = loop init [] [] 0 in
  if Obs.on () then begin
    Metrics.incr m_runs;
    Metrics.incr ~by:(List.length steps) m_steps;
    Metrics.observe h_trace_len (List.length steps);
    Obs.annotate
      [
        Attr.int "steps" (List.length steps);
        Attr.int "faults" (Injector.injected injector);
      ]
  end;
  {
    trace = Trace.make ~ending init steps;
    fault_steps;
    faults_injected = Injector.injected injector;
  }

(* Per-run seeds are derived from (seed, i) with a splitmix64-style
   finalizer.  The obvious [seed + i] correlates overlapping samples:
   base seed 1 run 1 and base seed 2 run 0 would replay the identical
   stream.  Mixing through the finalizer makes the derived seeds
   statistically independent across both the run index and nearby base
   seeds. *)
let derive_seed seed i =
  let z =
    let open Int64 in
    let z = add (of_int seed) (mul (of_int (i + 1)) 0x9E3779B97F4A7C15L) in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)
  in
  Int64.to_int z land max_int

(* [sample ?config n program ~faults ~policy ~init]: n independent runs
   with fresh injectors and independently derived seeds.

   An explicit loop rather than [List.init]: checkpoint captures fire
   from [run]'s budget ticks and must observe the accumulator between
   runs only.  Because each run's seed comes from its index, a resumed
   sample replays the remaining runs bit-identically with no RNG state
   in the snapshot. *)
let sample ?(config = default) n program ~faults ~policy ~init =
  Obs.span "sim.sample" ~attrs:[ Attr.int "runs" n ] @@ fun () ->
  let phase = Detcor_robust.Checkpoint.enter ~kind:"sim.sample" in
  match Detcor_robust.Checkpoint.resume_data phase with
  | Some (Detcor_robust.Checkpoint.Done data) ->
    (Marshal.from_string data 0 : run list)
  | resumed ->
    (* Midway payload: the completed count's own marshal chunk followed
       by one chunk per finished run, appended as each run completes.
       Re-marshalling the whole accumulator on every periodic save would
       cost a full graph traversal per snapshot — quadratic across the
       sample, and slow enough on large [n] to starve the run — so each
       run is serialized exactly once and a capture only concatenates
       the chunks already in [buf]. *)
    let buf = Buffer.create 4096 in
    let start, saved =
      match resumed with
      | Some (Detcor_robust.Checkpoint.Midway data) ->
        let completed = (Marshal.from_string data 0 : int) in
        let bytes = Bytes.unsafe_of_string data in
        let head = Marshal.total_size bytes 0 in
        let off = ref head in
        let runs = ref [] in
        while !off < String.length data do
          runs := (Marshal.from_string data !off : run) :: !runs;
          off := !off + Marshal.total_size bytes !off
        done;
        Buffer.add_substring buf data head (String.length data - head);
        (completed, !runs)
      | _ -> (0, [])
    in
    let completed = ref start in
    let acc = ref saved in
    (* completed runs, newest first *)
    Detcor_robust.Checkpoint.set_capture phase (fun () ->
        Marshal.to_string !completed [] ^ Buffer.contents buf);
    while !completed < n do
      let i = !completed in
      let injector = Injector.make policy faults in
      let r =
        run
          ~config:{ config with seed = derive_seed config.seed i }
          program ~injector ~init
      in
      acc := r :: !acc;
      Buffer.add_string buf (Marshal.to_string r []);
      completed := i + 1
    done;
    let runs = List.rev !acc in
    Detcor_robust.Checkpoint.complete phase (Marshal.to_string runs []);
    runs
