(** Online monitors over simulation traces.

    Measures the component-level quantities the theory predicts:
    detection latency (the Progress obligation of 'Z detects X'),
    correction latency (the Convergence obligation of 'Z corrects X'),
    and the index of the first safety violation, per
    {!Runner.run}.

    Every quantity has two evaluation paths with identical results: the
    reference functions below query one predicate closure at a time,
    while {!Compiled} evaluates the whole witness family through the
    {!Syndrome} batch evaluator and reads the scans off bit columns. *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

(** Per maximal interval where the detection predicate X holds
    continuously, the number of steps to the first state where the
    witness Z holds; intervals that end unwitnessed are skipped
    (Progress permits escape through ¬X). *)
val detection_latency : Runner.run -> Detector.t -> int list

(** Steps from one past the last injected fault until the correction
    predicate holds; [None] if it never does within the trace. *)
val correction_latency : Runner.run -> Corrector.t -> int option

(** Index of the first state violating the safety specification (bad
    state there, or bad transition into it). *)
val first_safety_violation : Runner.run -> Safety.t -> int option

(** The syndrome-batched monitor: detector, corrector, and (decomposed)
    safety obligations compiled into one {!Syndrome} family, evaluated
    per run as bit columns. *)
module Compiled : sig
  type t

  (** [make ?mode ?program ~detector ~corrector ~sspec ()] compiles the
      family; [program] enables rank-memoized evaluation (see
      {!Syndrome.compile}). *)
  val make :
    ?mode:Syndrome.mode ->
    ?program:Program.t ->
    detector:Detector.t ->
    corrector:Corrector.t ->
    sspec:Safety.t ->
    unit ->
    t

  val is_packed : t -> bool

  (** Same results as the reference functions above, computed from
      syndrome columns. *)
  val detection_latency : t -> Runner.run -> int list

  val correction_latency : t -> Runner.run -> int option
  val first_safety_violation : t -> Runner.run -> int option
end

type report = {
  runs : int;
  detection : Stats.summary option;
  correction : Stats.summary option;
  safety_violations : int;
  corrected_runs : int;
}

(** Aggregate the monitors over a batch of runs.  With a [program] (and
    [mode] other than [Reference]) the runs are evaluated through the
    compiled syndrome path; results are identical either way. *)
val report :
  ?mode:Syndrome.mode ->
  ?program:Program.t ->
  Runner.run list ->
  detector:Detector.t ->
  corrector:Corrector.t ->
  sspec:Safety.t ->
  report

val pp_report : report Fmt.t
