(** Syndrome vectors: a system's whole witness-predicate family evaluated
    as one batched sweep.

    A monitor watches many predicates at once — detector witnesses,
    correction predicates, the decomposed obligations of a safety
    specification.  Evaluating them one at a time re-walks the trace once
    per predicate and re-enters each closure per state.  A compiled
    syndrome evaluator instead assigns each predicate a bit position and
    produces, per batch of states, one {!Detcor_semantics.Bitset} column
    per predicate; the bit vector across columns at a given state index is
    that state's {e syndrome} — the fingerprint of which witnesses fired.

    When the states come from a program whose variables admit a
    {!Detcor_semantics.Layout}, evaluation is memoized by packed rank:
    each distinct state pays for the family once, and every revisit is a
    bit lookup.  Long fault streams revisit few distinct states, so the
    packed path approaches memory bandwidth.  States outside the layout
    (fault escapes) fall back to direct evaluation, so results never
    depend on the engine. *)

open Detcor_kernel
open Detcor_semantics

(** Engine selection, mirroring the {!Ts} convention: [Auto] packs when
    the program's layout fits in the memoized-column budget {e and} the
    family is big enough for memoization to amortize its per-step toll
    (space x predicate-count crossover; tiny protocols run reference),
    [Packed] requests packing unconditionally (degrading silently to
    reference when the program is absent or unpackable), [Reference]
    always evaluates closures directly.  All three produce identical
    syndromes. *)
type mode = Auto | Packed | Reference

(** A compiled predicate family. *)
type t

(** [compile ?mode ?program preds] compiles the family.  [program] enables
    the rank-memoized path; without it every mode degrades to reference
    evaluation. *)
val compile : ?mode:mode -> ?program:Program.t -> Pred.t list -> t

val num_preds : t -> int
val pred_names : t -> string array

(** Did compilation produce a rank-memoized evaluator? *)
val is_packed : t -> bool

(** Syndromes for one batch of states: column [j] holds bit [i] iff
    predicate [j] of the family holds at state [i] of the batch. *)
type batch

val of_states : t -> State.t list -> batch
val of_trace : t -> Trace.t -> batch

(** Number of states in the batch. *)
val length : batch -> int

(** [get b ~state ~pred]: does predicate [pred] hold at state [state]? *)
val get : batch -> state:int -> pred:int -> bool

(** The full column of predicate [pred] (length {!length}).  The returned
    bitset is the batch's own — do not mutate. *)
val column : batch -> int -> Bitset.t

(** Indices of the predicates holding at state [state], ascending. *)
val fired : batch -> state:int -> int list

(** Does any predicate of the family hold at state [state]? *)
val nonzero : batch -> state:int -> bool

(** The syndrome at [state] rendered as a bit string, most significant
    predicate last (e.g. ["0110"]). *)
val bits : batch -> state:int -> string
