(* The recorded-run stream format.

   Deltas keep long streams small: a step line carries only the bindings
   the action changed, and the reader replays them onto the previous
   state with [State.update_many].  That requires every state of a run to
   bind the same variable set — true of any [Runner.run], whose states
   all bind the program's declared variables — and the writer enforces
   it.

   Parsing is incremental and position-aware: each run is materialized,
   handed to the caller's fold function, and dropped, so monitoring a
   long stream holds one run in memory at a time, and malformed lines
   raise [Detcor_robust.Error.Parse] with their line number. *)

open Detcor_kernel
open Detcor_semantics

let header = "# detcor stream v1"

type record = {
  action : string;
  fault : bool;
  target : State.t;
}

type run = {
  index : int;
  init : State.t;
  records : record list;
  ending : Trace.ending;
}

(* ------------------------------------------------------------------ *)
(* Writing.                                                            *)
(* ------------------------------------------------------------------ *)

let write_header oc ~program =
  Printf.fprintf oc "%s\nprogram %s\n" header program

let write_binding oc (k, v) = Printf.fprintf oc " %s=%s" k (Value.to_string v)

(* The bindings of [target] that differ from [prev].  Domains must agree
   or the delta encoding cannot represent the step. *)
let changed prev target =
  let prev_bs = State.bindings prev and target_bs = State.bindings target in
  if List.map fst prev_bs <> List.map fst target_bs then
    Detcor_robust.Error.internal
      "Stream.write_run: states bind different variables (%s vs %s)"
      (State.to_string prev) (State.to_string target);
  List.filter (fun (k, v) -> not (Value.equal v (State.get prev k))) target_bs

let write_run oc ~index (r : Runner.run) =
  Printf.fprintf oc "run %d\n" index;
  let init = Trace.start r.trace in
  output_string oc "init";
  List.iter (write_binding oc) (State.bindings init);
  output_char oc '\n';
  let faults = ref r.fault_steps in
  let prev = ref init in
  List.iteri
    (fun i { Trace.action; target } ->
      let fault =
        match !faults with
        | s :: rest when s = i ->
          faults := rest;
          true
        | _ -> false
      in
      Printf.fprintf oc "%s %s" (if fault then "fault" else "step") action;
      List.iter (write_binding oc) (changed !prev target);
      output_char oc '\n';
      prev := target)
    (Trace.steps r.trace);
  Printf.fprintf oc "end %s\n"
    (match Trace.ending r.trace with
    | Trace.Maximal -> "maximal"
    | Trace.Truncated -> "truncated")

(* ------------------------------------------------------------------ *)
(* Reading.                                                            *)
(* ------------------------------------------------------------------ *)

let perr ~line fmt = Detcor_robust.Error.parse ~line ~col:0 fmt

(* [true]/[false] and digit strings read back as the scalar they printed
   from; everything else is a symbol.  (A program whose symbol domain
   contains "true" or "7" would not round-trip; the elaborator's domains
   use identifier symbols.) *)
let parse_value s =
  match s with
  | "true" -> Value.bool true
  | "false" -> Value.bool false
  | _ -> (
    match int_of_string_opt s with
    | Some n -> Value.int n
    | None -> Value.sym s)

let parse_binding ~line tok =
  match String.index_opt tok '=' with
  | None -> perr ~line "expected key=value, got %S" tok
  | Some i ->
    let k = String.sub tok 0 i in
    let v = String.sub tok (i + 1) (String.length tok - i - 1) in
    if k = "" || v = "" then perr ~line "expected key=value, got %S" tok;
    (k, parse_value v)

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let fold ?(on_torn = fun (_ : int) -> ()) ic ~init ~f =
  let lineno = ref 0 in
  (* One line of lookahead: a defect counts as a torn tail only when
     nothing follows it, so mid-stream corruption still raises. *)
  let ahead = ref (try Some (input_line ic) with End_of_file -> None) in
  let next () =
    match !ahead with
    | None -> None
    | Some l ->
      ahead := (try Some (input_line ic) with End_of_file -> None);
      incr lineno;
      Some l
  in
  let at_tail () = !ahead = None in
  (match next () with
  | Some l when String.trim l = header -> ()
  | Some l -> perr ~line:1 "expected %S, got %S" header l
  | None -> perr ~line:1 "empty stream: expected %S" header);
  let program = ref None in
  (* One run is parsed at a time: [in_run] accumulates records in reverse
     until the matching [end] line. *)
  let acc = ref init in
  let in_run = ref None in
  let finish ending =
    match !in_run with
    | None -> perr ~line:!lineno "'end' outside of a run"
    | Some (index, init_st, records) ->
      let init_st =
        match init_st with
        | None -> perr ~line:!lineno "run %d has no 'init' line" index
        | Some st -> st
      in
      in_run := None;
      acc := f !acc { index; init = init_st; records = List.rev records; ending }
  in
  (* A recorder killed mid-write leaves a torn tail: a partial final
     line, or a run missing its 'end'.  Salvage the complete prefix the
     way [Ledger.load] skips torn lines — the in-progress run (if its
     [init] parsed) is delivered ending [Truncated] — and report through
     [on_torn].  The same defect mid-stream still raises. *)
  let salvage () =
    on_torn !lineno;
    match !in_run with
    | None | Some (_, None, _) -> in_run := None
    | Some (index, Some st, records) ->
      in_run := None;
      acc :=
        f !acc
          { index; init = st; records = List.rev records;
            ending = Trace.Truncated }
  in
  let rec loop () =
    match next () with
    | None -> if !in_run <> None then salvage ()
    | Some raw ->
      let line = !lineno in
      (try
         match split_words (String.trim raw) with
      | [] -> ()
      | "#" :: _ -> ()
      | word :: rest when String.length word > 0 && word.[0] = '#' ->
        ignore rest
      | [ "program"; name ] ->
        if !in_run <> None then perr ~line "'program' inside a run";
        program := Some name
      | [ "run"; n ] -> (
        if !in_run <> None then perr ~line "'run' before previous run ended";
        match int_of_string_opt n with
        | Some index -> in_run := Some (index, None, [])
        | None -> perr ~line "bad run index %S" n)
      | "init" :: bindings -> (
        match !in_run with
        | Some (index, None, []) ->
          let st = State.of_list (List.map (parse_binding ~line) bindings) in
          in_run := Some (index, Some st, [])
        | Some _ -> perr ~line "duplicate 'init' or 'init' after steps"
        | None -> perr ~line "'init' outside of a run")
      | (("step" | "fault") as kind) :: action :: bindings -> (
        match !in_run with
        | None -> perr ~line "'%s' outside of a run" kind
        | Some (_, None, _) -> perr ~line "'%s' before 'init'" kind
        | Some (index, (Some init_st as init'), records) ->
          let prev =
            match records with [] -> init_st | r :: _ -> r.target
          in
          let target =
            State.update_many prev (List.map (parse_binding ~line) bindings)
          in
          let record = { action; fault = kind = "fault"; target } in
          in_run := Some (index, init', record :: records))
         | [ "end"; "maximal" ] -> finish Trace.Maximal
         | [ "end"; "truncated" ] -> finish Trace.Truncated
         | [ "end"; e ] -> perr ~line "bad ending %S" e
         | w :: _ -> perr ~line "unrecognized record %S" w
       with
      | Detcor_robust.Error.Detcor_error (Detcor_robust.Error.Parse _)
        when at_tail () ->
        salvage ());
      loop ()
  in
  loop ();
  (!acc, !program)

let to_run (r : run) =
  let steps =
    List.map (fun { action; target; _ } -> { Trace.action; target }) r.records
  in
  let fault_steps =
    List.mapi (fun i rec_ -> (i, rec_.fault)) r.records
    |> List.filter_map (fun (i, f) -> if f then Some i else None)
  in
  {
    Runner.trace = Trace.make ~ending:r.ending r.init steps;
    fault_steps;
    faults_injected = List.length fault_steps;
  }
