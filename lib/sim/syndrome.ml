(* Batched evaluation of witness-predicate families.

   The compiled form hoists each predicate's closure out of its record
   once ([Pred.fn]) and, when a [Layout] is available and small enough,
   memoizes whole-family results by packed state rank: column [j] of the
   memo holds predicate [j]'s value at every rank seen so far, and a
   [known] set marks which ranks have been evaluated.  Ranks are computed
   with [Layout.pack_from] deltas along the state sequence, so a batch
   sweep over a trace costs a physical-equality scan per step plus — for
   states already seen — m bit reads instead of m closure calls.

   Fault-injected states can leave the layout's domains entirely
   ([Layout.Unrepresentable]); those states are evaluated directly and
   break the delta chain, never the sweep. *)

open Detcor_kernel
open Detcor_semantics
open Detcor_obs

type mode = Auto | Packed | Reference

(* Cap on the memo space: one bit column per predicate per rank.  4M ranks
   is 512 KiB per predicate — past that, packing trades too much memory
   for the revisit speedup and Auto stays on reference. *)
let max_memo_space = 1 lsl 22

(* Floor under Auto's packing decision.  The memo pays a fixed toll per
   step (delta pack, known-bit probe, column reads) that only amortizes
   when the closures it replaces do enough work: on tiny state spaces
   with few predicates the toll exceeds the closures and packing runs
   slower than direct evaluation (0.6x on the 2-variable memory
   protocol).  [space * preds] is a cheap proxy for both the revisit
   probability and the per-hit saving, and 4096 cleanly separates the
   regressing small protocols (memory: 48 * 2 = 96) from the winning
   ones (ring5: 4375 * 5 = 21875).  Explicit [Packed] mode is not
   second-guessed. *)
let auto_min_work = 4096

type packed = {
  layout : Layout.t;
  columns : Bitset.t array; (* per pred, indexed by rank *)
  known : Bitset.t; (* ranks whose row is filled *)
}

type t = {
  preds : Pred.t array;
  fns : (State.t -> bool) array;
  packed : packed option;
}

let c_hits = Metrics.counter "sim.syndrome.hits"
let c_misses = Metrics.counter "sim.syndrome.misses"
let c_escapes = Metrics.counter "sim.syndrome.escapes"

let compile ?(mode = Auto) ?program preds =
  let preds = Array.of_list preds in
  let fns = Array.map Pred.fn preds in
  let packed =
    match mode with
    | Reference -> None
    | Auto | Packed -> (
      match program with
      | None -> None
      | Some p -> (
        match Layout.of_program p with
        | Some layout
          when Layout.space layout <= max_memo_space
               && (mode = Packed
                  || Layout.space layout * max 1 (Array.length preds)
                     >= auto_min_work) ->
          let space = Layout.space layout in
          Some
            {
              layout;
              columns = Array.init (Array.length preds) (fun _ -> Bitset.create space);
              known = Bitset.create space;
            }
        | _ -> None))
  in
  { preds; fns; packed }

let num_preds t = Array.length t.preds
let pred_names t = Array.map Pred.name t.preds
let is_packed t = t.packed <> None

type batch = {
  count : int;
  cols : Bitset.t array; (* per pred, indexed by state position *)
}

(* Evaluate every predicate at [st] directly, setting batch bits. *)
let eval_direct t cols i st =
  Array.iteri (fun j f -> if f st then Bitset.set cols.(j) i) t.fns

let of_seq t count states =
  let m = Array.length t.fns in
  let cols = Array.init m (fun _ -> Bitset.create count) in
  (match t.packed with
  | None ->
    let i = ref 0 in
    states (fun st ->
        if !i land 127 = 0 then Detcor_robust.Budget.tick ();
        eval_direct t cols !i st;
        incr i)
  | Some p ->
    (* [prev] carries the last representable state and its rank, feeding
       [pack_from]'s delta scan; an escape resets the chain. *)
    let prev = ref None in
    let i = ref 0 in
    states (fun st ->
        if !i land 127 = 0 then Detcor_robust.Budget.tick ();
        (match
           match !prev with
           | Some (src, src_rank) -> (
             try Some (Layout.pack_from p.layout ~src_rank src st)
             with Layout.Unrepresentable -> None)
           | None -> (
             try Some (Layout.pack p.layout st)
             with Layout.Unrepresentable -> None)
         with
        | Some rank ->
          if not (Bitset.get p.known rank) then begin
            Metrics.incr c_misses;
            Array.iteri (fun j f -> if f st then Bitset.set p.columns.(j) rank) t.fns;
            Bitset.set p.known rank
          end
          else Metrics.incr c_hits;
          for j = 0 to m - 1 do
            if Bitset.get p.columns.(j) rank then Bitset.set cols.(j) !i
          done;
          prev := Some (st, rank)
        | None ->
          Metrics.incr c_escapes;
          eval_direct t cols !i st;
          prev := None);
        incr i));
  { count; cols }

let of_states t states =
  of_seq t (List.length states) (fun f -> List.iter f states)

let of_trace t tr = of_states t (Trace.states tr)

let length b = b.count

let get b ~state ~pred = Bitset.get b.cols.(pred) state

let column b pred = b.cols.(pred)

let fired b ~state =
  let acc = ref [] in
  for j = Array.length b.cols - 1 downto 0 do
    if Bitset.get b.cols.(j) state then acc := j :: !acc
  done;
  !acc

let nonzero b ~state =
  let m = Array.length b.cols in
  let rec go j = j < m && (Bitset.get b.cols.(j) state || go (j + 1)) in
  go 0

let bits b ~state =
  String.init (Array.length b.cols) (fun j ->
      if Bitset.get b.cols.(j) state then '1' else '0')
