(* Composition of tolerance components.

   The concluding remarks of the paper announce "a framework of such
   components", with proofs of interference-freedom discharged at the
   framework level.  This module provides the composition combinators and
   the framework-level lemmas as checkable schemas:

   - Conjunction of detectors (the hierarchical AND-construction of the
     companion design paper): if 'Z1 detects X1' and 'Z2 detects X2' hold
     in the same program, then 'Z1 ∧ Z2 detects X1 ∧ X2' holds.  This is
     a theorem — Safeness and Stability compose pointwise, and Progress
     composes because each witness is stable while its detection
     predicate stays true — and [conjunction_schema] machine-checks it on
     instances.

   - Disjunction of detectors is *not* unconditionally sound (one witness
     may fall while the other detection predicate keeps the disjunction
     true); [disjunction_schema] decides each instance.

   - Conjunction of correctors: sound when the correction predicates are
     closed in each other's presence — again decided per instance.

   - Sequencing (Z1 then Z2): a detector hierarchy where the second
     detector's component only runs under the first witness, the paper's
     ';' composition for components. *)

open Detcor_kernel
open Detcor_semantics

let detector_and d1 d2 =
  Detector.make
    ~name:(Fmt.str "(%s && %s)" (Detector.name d1) (Detector.name d2))
    ~witness:(Pred.and_ (Detector.witness d1) (Detector.witness d2))
    ~detection:(Pred.and_ (Detector.detection d1) (Detector.detection d2))
    ()

let detector_or d1 d2 =
  Detector.make
    ~name:(Fmt.str "(%s || %s)" (Detector.name d1) (Detector.name d2))
    ~witness:(Pred.or_ (Detector.witness d1) (Detector.witness d2))
    ~detection:(Pred.or_ (Detector.detection d1) (Detector.detection d2))
    ()

let detector_list_and = function
  | [] -> Detcor_robust.Error.internal "Compose.detector_list_and: empty list"
  | d :: ds -> List.fold_left detector_and d ds

let corrector_and c1 c2 =
  Corrector.make
    ~name:(Fmt.str "(%s && %s)" (Corrector.name c1) (Corrector.name c2))
    ~witness:(Pred.and_ (Corrector.witness c1) (Corrector.witness c2))
    ~correction:(Pred.and_ (Corrector.correction c1) (Corrector.correction c2))
    ()

(* Sequenced detectors: the hierarchical construction where the second
   stage observes the first stage's witness — its detection predicate is
   strengthened by Z1, matching 'd1 ; d2' component layering. *)
let detector_seq d1 d2 =
  Detector.make
    ~name:(Fmt.str "(%s ; %s)" (Detector.name d1) (Detector.name d2))
    ~witness:(Pred.and_ (Detector.witness d1) (Detector.witness d2))
    ~detection:(Pred.and_ (Detector.detection d1)
                  (Pred.implies (Detector.witness d1) (Detector.detection d2)))
    ()

(* ------------------------------------------------------------------ *)
(* Framework-level lemmas as checkable schemas.                        *)
(* ------------------------------------------------------------------ *)

type schema = {
  name : string;
  premises : (string * Check.outcome) list;
  conclusion : string * Check.outcome;
}

let holds s =
  List.for_all (fun (_, o) -> Check.holds o) s.premises
  && Check.holds (snd s.conclusion)

let validates s =
  (not (List.for_all (fun (_, o) -> Check.holds o) s.premises))
  || Check.holds (snd s.conclusion)

let pp_schema ppf s =
  Fmt.pf ppf "@[<v>%s@,%a@,  %-48s %a@]" s.name
    Fmt.(
      list ~sep:cut (fun ppf (l, o) ->
          pf ppf "  %-48s %a" l Check.pp_outcome o))
    s.premises (fst s.conclusion) Check.pp_outcome (snd s.conclusion)

(* Conjunction of detectors — sound unconditionally; checking an instance
   therefore both demonstrates the combinator and regression-tests the
   semantics. *)
let conjunction_schema ts d1 d2 =
  {
    name = "detector conjunction (hierarchical AND)";
    premises =
      [
        (Fmt.str "'%s' holds" (Detector.name d1), Detector.satisfies_ts ts d1);
        (Fmt.str "'%s' holds" (Detector.name d2), Detector.satisfies_ts ts d2);
      ];
    conclusion =
      (let d = detector_and d1 d2 in
       (Fmt.str "'%s' holds" (Detector.name d), Detector.satisfies_ts ts d));
  }

(* Disjunction — sound only with a stability side condition; the schema
   records the instance-level verdict. *)
let disjunction_schema ts d1 d2 =
  {
    name = "detector disjunction (instance-checked)";
    premises =
      [
        (Fmt.str "'%s' holds" (Detector.name d1), Detector.satisfies_ts ts d1);
        (Fmt.str "'%s' holds" (Detector.name d2), Detector.satisfies_ts ts d2);
      ];
    conclusion =
      (let d = detector_or d1 d2 in
       (Fmt.str "'%s' holds" (Detector.name d), Detector.satisfies_ts ts d));
  }

(* Conjunction of correctors: Convergence needs the two correction
   predicates to be reachable *together*; interference-freedom is decided
   on the instance. *)
let corrector_conjunction_schema ts c1 c2 =
  {
    name = "corrector conjunction (interference-freedom instance-checked)";
    premises =
      [
        (Fmt.str "'%s' holds" (Corrector.name c1), Corrector.satisfies_ts ts c1);
        (Fmt.str "'%s' holds" (Corrector.name c2), Corrector.satisfies_ts ts c2);
      ];
    conclusion =
      (let c = corrector_and c1 c2 in
       (Fmt.str "'%s' holds" (Corrector.name c), Corrector.satisfies_ts ts c));
  }
