(** F-tolerance of a program to a specification (Section 2.4).

    [p] is masking (fail-safe, nonmasking) F-tolerant to SPEC from S iff
    [p] refines SPEC from S and [p [] F] refines the corresponding
    tolerance specification of SPEC from some [T ⊇ S].  The checkers use
    the F-span of S (forward closure under [p [] F]) as T — the smallest,
    hence complete, candidate — and split safety/liveness obligations the
    way the paper's proofs use Assumption 2 (finitely many faults). *)

open Detcor_kernel
open Detcor_semantics
open Detcor_spec

type item = {
  label : string;
  outcome : Check.outcome;
}

type report = {
  subject : string;
  tol : Spec.tolerance;
  span_size : int;
  invariant_size : int;
  items : item list;
}

(** [verdict r] is true iff every obligation holds; an [Unknown]
    obligation (resource budget exhausted mid-check) makes the verdict
    false but is reported distinctly — see {!unknowns}. *)
val verdict : report -> bool

(** The obligations that definitely fail (excludes [Unknown] ones). *)
val failures : report -> item list

(** The obligations left undecided by resource exhaustion. *)
val unknowns : report -> item list

(** The first exhausted-resource payload in the report, if any. *)
val first_unknown : report -> Detcor_robust.Error.resource option

val pp_report : report Fmt.t

type span = {
  pred : Pred.t;
  states : State.t list;
  ts_pf : Ts.t;  (** the explored [p [] F] system over the span *)
}

(** The F-span of [p] from [from] (Section 2.3): forward closure of the
    [from]-states under [p [] F]. *)
val fault_span :
  ?limit:int ->
  ?engine:Ts.engine ->
  ?workers:int ->
  Program.t ->
  faults:Fault.t ->
  from:Pred.t ->
  span

(** As {!fault_span} with the initial states given explicitly (skips
    product-space enumeration). *)
val fault_span_from_states :
  ?limit:int ->
  ?engine:Ts.engine ->
  ?workers:int ->
  Program.t ->
  faults:Fault.t ->
  init:State.t list ->
  span

(** [refines_from p ~spec ~invariant]: S closed in p and every computation
    from S in SPEC; also returns the explored system. *)
val refines_from :
  ?limit:int ->
  ?engine:Ts.engine ->
  ?workers:int ->
  Program.t ->
  spec:Spec.t ->
  invariant:Pred.t ->
  Ts.t * Check.outcome

val refines_from_states :
  ?limit:int ->
  ?engine:Ts.engine ->
  ?workers:int ->
  Program.t ->
  spec:Spec.t ->
  init:State.t list ->
  invariant:Pred.t ->
  Ts.t * Check.outcome

(** The product-space states satisfying the invariant.  With the packed
    engine the product is streamed through the program's {!Layout} instead
    of materialized as a list. *)
val init_states :
  ?limit:int ->
  ?engine:Ts.engine ->
  Program.t ->
  invariant:Pred.t ->
  State.t list

(** [leads_to_under_faults ~ts_pf ~ts_p o]: does the leads-to obligation
    hold on every computation of [p [] F] under the finitely-many-faults
    semantics?  [ts_pf] is the composed system over the span, [ts_p] the
    program-only system over the same states. *)
val leads_to_under_faults :
  ts_pf:Ts.t -> ts_p:Ts.t -> Liveness.obligation -> Check.outcome

val liveness_under_faults :
  ts_pf:Ts.t -> ts_p:Ts.t -> Liveness.t -> Check.outcome

(** Full tolerance check for a given class.  [recover] (nonmasking only,
    default: the invariant) is the predicate computations converge to and
    refine SPEC from — the R of Theorem 4.3. *)
val check :
  ?limit:int ->
  ?engine:Ts.engine ->
  ?workers:int ->
  ?recover:Pred.t ->
  Program.t ->
  spec:Spec.t ->
  invariant:Pred.t ->
  faults:Fault.t ->
  tol:Spec.tolerance ->
  report

(** As {!check}, with explicit initial states. *)
val check_with :
  ?limit:int ->
  ?engine:Ts.engine ->
  ?workers:int ->
  ?recover:Pred.t ->
  Program.t ->
  spec:Spec.t ->
  invariant:Pred.t ->
  init:State.t list ->
  faults:Fault.t ->
  tol:Spec.tolerance ->
  report

val is_failsafe :
  ?limit:int ->
  ?engine:Ts.engine ->
  ?workers:int ->
  Program.t -> spec:Spec.t -> invariant:Pred.t -> faults:Fault.t -> report

val is_nonmasking :
  ?limit:int ->
  ?engine:Ts.engine ->
  ?workers:int ->
  ?recover:Pred.t ->
  Program.t -> spec:Spec.t -> invariant:Pred.t -> faults:Fault.t -> report

val is_masking :
  ?limit:int ->
  ?engine:Ts.engine ->
  ?workers:int ->
  Program.t -> spec:Spec.t -> invariant:Pred.t -> faults:Fault.t -> report

(** Reports for all three classes, masking first. *)
val classify :
  ?limit:int ->
  ?engine:Ts.engine ->
  ?workers:int ->
  ?recover:Pred.t ->
  Program.t ->
  spec:Spec.t ->
  invariant:Pred.t ->
  faults:Fault.t ->
  (Spec.tolerance * report) list
