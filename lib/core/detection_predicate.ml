(* Detection predicates (Section 3.2).

   X is a detection predicate of action [ac] for SPEC iff executing [ac] in
   any state where X holds maintains SPEC.  With safety represented as bad
   states + bad transitions, the weakest detection predicate of [ac] is
   computable by direct evaluation: the set of states from which every
   successor under [ac] avoids bad transitions and bad states.

   Theorem 3.3 guarantees such predicates exist; the remarks after it note
   that detection predicates are closed under disjunction and weakening, so
   a unique weakest one exists — [weakest] computes it. *)

open Detcor_kernel
open Detcor_spec

(* [safe_to_execute sspec ac st]: executing [ac] at [st] (if enabled)
   maintains the safety specification. *)
let safe_to_execute sspec ac st =
  (not (Safety.bad_state sspec st))
  && List.for_all
       (fun st' ->
         (not (Safety.bad_transition sspec st st'))
         && not (Safety.bad_state sspec st'))
       (Action.execute ac st)

(* The weakest detection predicate of [ac] for [sspec], as a semantic
   predicate.  It is evaluated lazily, so no universe is needed; use
   [weakest_tabulated] to precompute over a universe when the predicate is
   consulted many times. *)
let weakest ~sspec ac =
  Pred.make
    (Fmt.str "wdp(%s, %s)" (Action.name ac) (Safety.name sspec))
    (fun st -> safe_to_execute sspec ac st)

let weakest_tabulated ~sspec ac ~universe =
  let good = List.filter (safe_to_execute sspec ac) universe in
  Pred.of_states
    ~name:(Fmt.str "wdp(%s, %s)" (Action.name ac) (Safety.name sspec))
    good

(* [is_detection_predicate ~sspec ac x ~universe]: X ⇒ weakest, over the
   universe — the characterization after Theorem 3.3. *)
let is_detection_predicate ~sspec ac x ~universe =
  Pred.implies_on ~universe x (weakest ~sspec ac)

(* The complement witness used by runtime monitors: [ac] is poised to
   violate [sspec] — enabled here, but outside its weakest detection
   predicate.  A monitor that sees this predicate fire has localized a
   state from which the next step of [ac] can break safety. *)
let unsafe ~sspec ac =
  Pred.make
    (Fmt.str "unsafe(%s)" (Action.name ac))
    (fun st -> Action.enabled ac st && not (safe_to_execute sspec ac st))
