(** Detection predicates (Section 3.2): X is a detection predicate of
    action [ac] for SPEC iff executing [ac] anywhere X holds maintains
    SPEC.  Theorem 3.3 guarantees existence; a unique weakest one exists. *)

open Detcor_kernel
open Detcor_spec

(** Executing [ac] at the state (when enabled) maintains the safety
    specification. *)
val safe_to_execute : Safety.t -> Action.t -> State.t -> bool

(** The weakest detection predicate of [ac], evaluated lazily. *)
val weakest : sspec:Safety.t -> Action.t -> Pred.t

(** As {!weakest}, but precomputed over a universe for repeated queries. *)
val weakest_tabulated :
  sspec:Safety.t -> Action.t -> universe:State.t list -> Pred.t

(** [is_detection_predicate ~sspec ac x ~universe]: [x] implies the weakest
    detection predicate everywhere in the universe. *)
val is_detection_predicate :
  sspec:Safety.t -> Action.t -> Pred.t -> universe:State.t list -> bool

(** [unsafe ~sspec ac] holds where [ac] is enabled but outside its weakest
    detection predicate — the next step of [ac] can violate [sspec].
    Runtime monitors use one such predicate per action as a
    fault-localization witness. *)
val unsafe : sspec:Safety.t -> Action.t -> Pred.t
