(* The refines relation between programs (Section 2.2.1).

   p' refines p from S iff S is closed in p' and every computation of p'
   from S projects (on the variables of p) to a computation of p.  On
   finite systems we check this transition-wise, admitting stuttering steps
   (transitions of p' that leave the variables of p unchanged), in the
   spirit of the Abadi–Lamport composition framework the paper builds on:
   the added detector/corrector machinery of p' moves its own variables
   without taking a step of p. *)

open Detcor_kernel
open Detcor_semantics

type step_violation = {
  source : State.t;
  action : string;
  target : State.t;
}

type result = {
  closure : Check.outcome;
  bad_steps : step_violation list;
  (* Fair infinite runs of p' that stutter on p's variables forever would
     make the projection a non-maximal sequence; [divergence] reports a
     witness SCC if one exists. *)
  divergence : Check.outcome;
}

let ok r =
  Check.holds r.closure && r.bad_steps = [] && Check.holds r.divergence

(* [project_step base s s']: classify a transition of p' with respect to p:
   [`Stutter] when p's variables are unchanged, [`Step] when some action of
   p enabled at [s] produces the same effect on p's variables, [`Bad]
   otherwise. *)
let project_step base s s' =
  let base_vars = Program.variables base in
  if State.agree_on s s' base_vars then `Stutter
  else
    let matches =
      List.exists
        (fun ac ->
          List.exists
            (fun t -> State.agree_on t s' base_vars)
            (Action.execute ac s))
        (Program.actions base)
    in
    if matches then `Step else `Bad

(* Check [super refines base from s] given the explored system of [super]
   from the [s]-states. *)
let check_ts ~base ts ~from:s =
  Detcor_obs.Obs.span "refinement.check"
    ~attrs:[ Detcor_obs.Attr.str "base" (Program.name base) ]
  @@ fun () ->
  let closure = Check.closed ts s in
  let bad_steps = ref [] in
  Ts.iter_edges ts (fun i aid j ->
      let st = Ts.state ts i and st' = Ts.state ts j in
      match project_step base st st' with
      | `Stutter | `Step -> ()
      | `Bad ->
        bad_steps :=
          {
            source = st;
            action = Action.name (Ts.action ts aid);
            target = st';
          }
          :: !bad_steps);
  (* Divergence: a fair infinite run all of whose steps stutter on p's
     variables projects to an endless repetition of a single base state x
     (stutters preserve the base variables, and internal connectivity
     makes the projection constant).  That projection is a computation of
     p only when p itself has a self-loop at x, and an acceptable finite
     maximal one only when p deadlocks at x.  We therefore flag a fair SCC
     whose internal edges are all stutters unless the base self-loops or
     deadlocks at the common projection. *)
  let base_vars = Program.variables base in
  let base_self_loop_or_deadlock st =
    let enabled = Program.enabled_actions base st in
    enabled = []
    || List.exists
         (fun ac ->
           List.exists
             (fun t -> State.agree_on t st base_vars)
             (Action.execute ac st))
         enabled
  in
  let stutter_scc =
    let sccs = Fairness.fair_sccs ts in
    List.find_opt
      (fun (scc : Graph.scc) ->
        let in_scc = Hashtbl.create (List.length scc.members) in
        List.iter (fun v -> Hashtbl.replace in_scc v ()) scc.members;
        let all_stutter =
          List.for_all
            (fun v ->
              Ts.fold_out ts v
                (fun acc _aid j ->
                  acc
                  && ((not (Hashtbl.mem in_scc j))
                     || State.agree_on (Ts.state ts v) (Ts.state ts j) base_vars))
                true)
            scc.members
        in
        all_stutter
        &&
        match scc.members with
        | v :: _ -> not (base_self_loop_or_deadlock (Ts.state ts v))
        | [] -> false)
      sccs
  in
  let divergence =
    match stutter_scc with
    | None -> Check.Holds
    | Some scc ->
      Check.Fails (Check.Fair_cycle (List.map (Ts.state ts) scc.members))
  in
  { closure; bad_steps = List.rev !bad_steps; divergence }

let check ?limit ~base super ~from =
  let ts = Ts.of_pred ?limit super ~from in
  check_ts ~base ts ~from

let outcome r =
  if not (Check.holds r.closure) then r.closure
  else
    match r.bad_steps with
    | { source; action; target } :: _ ->
      Check.Fails (Check.Bad_transition (source, action, target))
    | [] -> r.divergence

let pp ppf r =
  if ok r then Fmt.string ppf "refines"
  else
    Fmt.pf ppf "does not refine: %a" Check.pp_outcome (outcome r)
