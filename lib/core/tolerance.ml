(* F-tolerance of a program to a specification (Section 2.4).

   p is masking (resp. fail-safe, nonmasking) F-tolerant to SPEC from S iff
   (i) p refines SPEC from S, and (ii) there is a T ⊇ S such that p [] F
   refines the masking (resp. fail-safe, nonmasking) tolerance
   specification of SPEC from T.

   The checkers compute T as the F-span of S — the forward closure of S
   under p [] F, which is the smallest candidate and therefore complete:
   if any T works, the span works, because every set satisfying the
   closure conditions contains it.

   The proof obligations in the presence of faults follow the paper's own
   use of Assumption 2 (finitely many faults):
   - safety obligations are decided on the full p [] F graph (any safety
     violation occurs on a finite prefix, which some finite-fault
     computation realizes);
   - liveness obligations are decided on p alone from the span (after the
     finitely many faults stop, the remaining computation is a computation
     of p);
   - masking combines both via Theorem 5.2: safety of SSPEC over the span,
     convergence of p from the span to S, and refinement of SPEC from S
     imply refinement of SPEC from the span. *)

open Detcor_kernel
open Detcor_semantics
open Detcor_spec
open Detcor_obs

type item = {
  label : string;
  outcome : Check.outcome;
}

(* Wall time of each proof obligation, recorded when observability is on.
   [timed] evaluates [f] exactly once either way, so verdicts (and their
   order of computation) are identical with observability on or off. *)
let h_verdict = Metrics.histogram "check.verdict_ns"
let m_unknown = Metrics.counter "check.unknown_verdicts"

let count_unknown outcome =
  match outcome with
  | Check.Unknown _ when Obs.on () -> Metrics.incr m_unknown
  | _ -> ()

let timed label f =
  if not (Obs.on ()) then begin
    let outcome = f () in
    count_unknown outcome;
    { label; outcome }
  end
  else begin
    let t0 = Obs.now_ns () in
    let outcome = f () in
    let dt = Int64.to_int (Int64.sub (Obs.now_ns ()) t0) in
    Metrics.observe h_verdict dt;
    count_unknown outcome;
    Obs.event "tolerance.verdict"
      ~attrs:
        [
          Attr.str "item" label;
          Attr.bool "holds" (Check.holds outcome);
          Attr.int "ns" dt;
        ];
    { label; outcome }
  end

(* A resource-exhaustion exception, as the taxonomy's [resource] payload.
   [Ts.Too_large] is the legacy state-ceiling cliff; it is subsumed here
   so an exceeded exploration limit yields an [Unknown] verdict exactly
   like an exceeded budget dimension. *)
let resource_of_exn = function
  | Detcor_robust.Error.Detcor_error (Detcor_robust.Error.Resource r) ->
    Some r
  | Ts.Too_large n ->
    Some { Detcor_robust.Error.kind = Detcor_robust.Error.States;
           spent = n; budget = n }
  | _ -> None

type report = {
  subject : string;
  tol : Spec.tolerance;
  span_size : int;
  invariant_size : int;
  items : item list;
}

let verdict r = List.for_all (fun i -> Check.holds i.outcome) r.items

let failures r =
  List.filter
    (fun i -> match i.outcome with Check.Fails _ -> true | _ -> false)
    r.items

let unknowns r =
  List.filter
    (fun i -> match i.outcome with Check.Unknown _ -> true | _ -> false)
    r.items

let first_unknown r =
  List.find_map
    (fun i ->
      match i.outcome with Check.Unknown res -> Some res | _ -> None)
    r.items

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>%s: %a tolerance (invariant %d states, span %d states)@,%a@,=> %s@]"
    r.subject Spec.pp_tolerance r.tol r.invariant_size r.span_size
    Fmt.(
      list ~sep:cut (fun ppf i ->
          Fmt.pf ppf "  %-52s %a" i.label Check.pp_outcome i.outcome))
    r.items
    (if failures r <> [] then "VERDICT: FAILS"
     else
       match first_unknown r with
       | Some res ->
         Fmt.str "VERDICT: UNKNOWN (%s budget exhausted)"
           (Detcor_robust.Error.resource_kind_name res.kind)
       | None -> "VERDICT: holds")

(* ------------------------------------------------------------------ *)
(* Fault spans (Section 2.3).                                          *)
(* ------------------------------------------------------------------ *)

type span = {
  pred : Pred.t;
  states : State.t list;
  ts_pf : Ts.t; (* the explored p [] F system over the span *)
}

(* The F-span of p from S: smallest T with S ⇒ T, T closed in p, and T
   closed in F — i.e. the forward closure of the S-states under p [] F. *)
let fault_span ?limit ?engine ?workers p ~faults ~from =
  Obs.span "tolerance.fault_span" @@ fun () ->
  let composed = Fault.compose p faults in
  let ts_pf = Ts.of_pred ?limit ?engine ?workers composed ~from in
  let states = Ts.states ts_pf in
  let pred =
    Pred.of_states ~name:(Fmt.str "span(%s)" (Pred.name from)) states
  in
  if Obs.on () then Obs.annotate [ Attr.int "span_states" (List.length states) ];
  { pred; states; ts_pf }

(* [fault_span_from_states] avoids re-enumerating the product space when the
   initial states are already known. *)
let fault_span_from_states ?limit ?engine ?workers p ~faults ~init =
  Obs.span "tolerance.fault_span" @@ fun () ->
  let composed = Fault.compose p faults in
  let ts_pf = Ts.build ?limit ?engine ?workers composed ~from:init in
  let states = Ts.states ts_pf in
  let pred = Pred.of_states ~name:"span" states in
  if Obs.on () then Obs.annotate [ Attr.int "span_states" (List.length states) ];
  { pred; states; ts_pf }

(* ------------------------------------------------------------------ *)
(* "p refines SPEC from S" — correctness in the absence of faults.     *)
(* ------------------------------------------------------------------ *)

(* S must be closed in p, and every computation from S must be in SPEC
   (Section 2.2.1, Refines + Invariant). *)
let refines_from ?limit ?engine ?workers p ~spec ~invariant =
  let ts = Ts.of_pred ?limit ?engine ?workers p ~from:invariant in
  (ts, Check.all [ Check.closed ts invariant; Spec.refines ts spec ])

let refines_from_states ?limit ?engine ?workers p ~spec ~init ~invariant =
  let ts = Ts.build ?limit ?engine ?workers p ~from:init in
  (ts, Check.all [ Check.closed ts invariant; Spec.refines ts spec ])

(* ------------------------------------------------------------------ *)
(* Liveness in the presence of finitely many faults.                   *)
(* ------------------------------------------------------------------ *)

(* [leads_to_under_faults ~ts_pf ~ts_p obligation]: does "P leads to Q"
   hold on every computation of p [] F (p-fair, p-maximal, finitely many
   fault steps)?

   A violating computation has a P∧¬Q state, stays in ¬Q forever, and —
   because fault steps are finite — decomposes into a finite p[]F path
   within ¬Q followed by either a p-deadlock in ¬Q or an infinite fair
   p-only run within ¬Q.  So: reach forward within ¬Q using all edges of
   p [] F, then look for a p-deadlock or a p-fair SCC inside the reached
   region (p-only edges). *)
let leads_to_under_faults ~ts_pf ~ts_p (o : Liveness.obligation) =
  let n = Ts.num_states ts_pf in
  let not_q i = not (Ts.holds_at ts_pf o.Liveness.to_ i) in
  let starts =
    List.filter
      (fun i -> Ts.holds_at ts_pf o.Liveness.from_ i && not_q i)
      (List.init n Fun.id)
  in
  if starts = [] then Check.Holds
  else begin
    let reach = Graph.reachable ~mask:not_q ts_pf ~from:starts in
    (* The reached ¬Q region, transported to the p-only system. *)
    let region_p k =
      match Ts.index_of ts_pf (Ts.state ts_p k) with
      | Some i -> reach.(i) && not_q i
      | None -> false
    in
    let np = Ts.num_states ts_p in
    let region_states = List.filter region_p (List.init np Fun.id) in
    let deadlock =
      List.find_opt (fun k -> Ts.deadlocked ts_p k) region_states
    in
    match deadlock with
    | Some k -> Check.Fails (Check.Deadlock (Ts.state ts_p k))
    | None -> (
      match Fairness.fair_sccs ~mask:region_p ts_p with
      | scc :: _ ->
        Check.Fails (Check.Fair_cycle (List.map (Ts.state ts_p) scc.members))
      | [] -> Check.Holds)
  end

let liveness_under_faults ~ts_pf ~ts_p liveness =
  Check.all
    (List.map (leads_to_under_faults ~ts_pf ~ts_p) (Liveness.obligations liveness))

(* ------------------------------------------------------------------ *)
(* The three tolerance checkers.                                       *)
(* ------------------------------------------------------------------ *)

let check_with ?limit ?engine ?workers ?recover p ~spec ~invariant ~init ~faults ~tol =
  Obs.span "tolerance.check"
    ~attrs:
      [
        Attr.str "program" (Program.name p);
        Attr.str "tolerance" (Fmt.str "%a" Spec.pp_tolerance tol);
      ]
  @@ fun () ->
  (* Exhaustion of the ambient budget (or of the exploration limit) inside
     any obligation is recorded here; that obligation — and every later one
     whose shared structures could not be built — reports [Unknown] instead
     of aborting the whole check.  With a generous budget nothing trips, no
     extra work runs, and the report is identical to the pre-budget one. *)
  let exhausted = ref None in
  let record e =
    match resource_of_exn e with
    | Some r ->
      if !exhausted = None then exhausted := Some r;
      Some r
    | None -> None
  in
  let guard f =
    match !exhausted with
    | Some r -> Check.Unknown r
    | None -> (
      try f ()
      with e -> (
        match record e with Some r -> Check.Unknown r | None -> raise e))
  in
  let structure f =
    match !exhausted with
    | Some _ -> None
    | None -> (
      try Some (f ())
      with e -> (match record e with Some _ -> None | None -> raise e))
  in
  let unknown () = Check.Unknown (Option.get !exhausted) in
  let base_ts = ref None in
  let base_item =
    timed "p refines SPEC from S" (fun () ->
        guard (fun () ->
            let ts, o =
              refines_from_states ?limit ?engine ?workers p ~spec ~init
                ~invariant
            in
            base_ts := Some ts;
            o))
  in
  (* The span (forward closure of S under p [] F).  Only the explored
     system is built eagerly; the span *state list* — linear in span
     size, and needed only by the nonmasking obligations — is
     materialized on first demand, so a failsafe or masking check of a
     billion-state span never holds the states as a list. *)
  let span_ts =
    structure (fun () ->
        Obs.span "tolerance.fault_span" @@ fun () ->
        let ts =
          Ts.build ?limit ?engine ?workers (Fault.compose p faults) ~from:init
        in
        if Obs.on () then
          Obs.annotate [ Attr.int "span_states" (Ts.num_states ts) ];
        ts)
  in
  let span_states_memo = ref None in
  let span_states () =
    match !span_states_memo with
    | Some states -> states
    | None ->
      let states =
        match span_ts with None -> [] | Some ts -> Ts.states ts
      in
      span_states_memo := Some states;
      states
  in
  (* p alone, over the whole span: used for liveness after the faults
     stop.  Built on demand — the failsafe obligations never need it. *)
  let ts_p_span_memo = ref None in
  let ts_p_span () =
    match !ts_p_span_memo with
    | Some r -> r
    | None ->
      let r =
        match span_ts with
        | None -> None
        | Some _ ->
          structure (fun () ->
              Ts.build ?limit ?engine ?workers p ~from:(span_states ()))
      in
      ts_p_span_memo := Some r;
      r
  in
  let sspec = Spec.smallest_safety_containing spec in
  let safety_item () =
    timed "p[]F refines SSPEC from span" (fun () ->
        match span_ts with
        | None -> unknown ()
        | Some ts_pf -> guard (fun () -> Spec.refines ts_pf sspec))
  in
  (* Nonmasking: a suffix of every computation is in SPEC.  The paper's
     route (Theorem 4.3): converge to a recovery predicate R (default: the
     invariant S) from which SPEC is refined. *)
  let recover = match recover with Some r -> r | None -> invariant in
  let convergence_item () =
    timed
      (Fmt.str "p converges from span to %s" (Pred.name recover))
      (fun () ->
        match ts_p_span () with
        | None -> unknown ()
        | Some ts -> guard (fun () -> Check.eventually ts recover))
  in
  let recover_item () =
    timed
      (Fmt.str "p refines SPEC from %s" (Pred.name recover))
      (fun () ->
        match span_ts with
        | None -> unknown ()
        | Some _ ->
          guard (fun () ->
              let ts_rec =
                Ts.build ?limit ?engine ?workers p
                  ~from:(List.filter (Pred.holds recover) (span_states ()))
              in
              Check.all
                [ Check.closed ts_rec recover; Spec.refines ts_rec spec ]))
  in
  (* Masking: computations of p [] F from the span are in SPEC — safety on
     the full p [] F graph, liveness under the finitely-many-faults
     semantics (Assumption 2). *)
  let liveness_item () =
    timed "liveness of SPEC on p[]F from span" (fun () ->
        match (span_ts, ts_p_span ()) with
        | Some ts_pf, Some ts_p ->
          guard (fun () ->
              liveness_under_faults ~ts_pf ~ts_p (Spec.liveness spec))
        | _ -> unknown ())
  in
  (* Each class computes exactly its own obligations, in report order —
     an unused obligation is never evaluated, so e.g. a failsafe check
     never runs the convergence analysis it would not report. *)
  let items =
    match tol with
    | Spec.Failsafe -> [ base_item; safety_item () ]
    | Spec.Nonmasking -> [ base_item; convergence_item (); recover_item () ]
    | Spec.Masking -> [ base_item; safety_item (); liveness_item () ]
  in
  {
    subject = Program.name p;
    tol;
    span_size = (match span_ts with Some ts -> Ts.num_states ts | None -> 0);
    invariant_size =
      (match !base_ts with Some ts -> Ts.num_states ts | None -> 0);
    items;
  }

(* The invariant states of the product space.  The reference engine keeps
   the seed behaviour (materialize the product list, then filter); the
   packed engines stream the enumeration through the program's layout. *)
let init_states ?limit ?(engine = Ts.Auto) p ~invariant =
  ignore limit;
  let reference () = List.filter (Pred.holds invariant) (Program.states p) in
  match engine with
  | Ts.Reference -> reference ()
  | Ts.Packed | Ts.Auto | Ts.Sharded -> (
    match Layout.of_program p with
    | Some layout ->
      let acc = ref [] in
      Layout.iter_scratch layout (fun sc ->
          if Pred.holds invariant (State.scratch_view sc) then
            acc := State.scratch_copy sc :: !acc);
      List.rev !acc
    | None ->
      if engine = Ts.Auto then reference ()
      else raise Layout.Unrepresentable)

let check ?limit ?engine ?workers ?recover p ~spec ~invariant ~faults ~tol =
  match init_states ?limit ?engine p ~invariant with
  | init ->
    check_with ?limit ?engine ?workers ?recover p ~spec ~invariant ~init
      ~faults ~tol
  | exception e -> (
    (* Exhaustion while enumerating the invariant itself still yields a
       well-formed report: one Unknown obligation, never an exception. *)
    match resource_of_exn e with
    | Some r ->
      let outcome = Check.Unknown r in
      count_unknown outcome;
      {
        subject = Program.name p;
        tol;
        span_size = 0;
        invariant_size = 0;
        items = [ { label = "enumerate invariant states"; outcome } ];
      }
    | None -> raise e)

let is_failsafe ?limit ?engine ?workers p ~spec ~invariant ~faults =
  check ?limit ?engine ?workers p ~spec ~invariant ~faults ~tol:Spec.Failsafe

let is_nonmasking ?limit ?engine ?workers ?recover p ~spec ~invariant ~faults =
  check ?limit ?engine ?workers ?recover p ~spec ~invariant ~faults
    ~tol:Spec.Nonmasking

let is_masking ?limit ?engine ?workers p ~spec ~invariant ~faults =
  check ?limit ?engine ?workers p ~spec ~invariant ~faults ~tol:Spec.Masking

(* Classify: the reports for all three classes, masking first. *)
let classify ?limit ?engine ?workers ?recover p ~spec ~invariant ~faults =
  List.map
    (fun tol ->
      (tol,
       check ?limit ?engine ?workers ?recover p ~spec ~invariant ~faults ~tol))
    [ Spec.Masking; Spec.Failsafe; Spec.Nonmasking ]
