(** Program states.

    A state assigns a value to each variable of the program (Section 2.1).
    States are persistent string-keyed maps. *)

type t

val empty : t
val of_list : (string * Value.t) list -> t

(** [get st x] returns the value of [x].
    @raise Value.Type_error if [x] is unbound. *)
val get : t -> string -> Value.t

val find_opt : t -> string -> Value.t option
val set : t -> string -> Value.t -> t
val mem : t -> string -> bool
val bindings : t -> (string * Value.t) list
val variables : t -> string list

(** [fold f st init] folds over the bindings in increasing variable-name
    order (the same order as [bindings]). *)
val fold : (string -> Value.t -> 'a -> 'a) -> t -> 'a -> 'a

val cardinal : t -> int
val update_many : t -> (string * Value.t) list -> t

(** [project st vars] is the projection of [st] on [vars]
    (Section 2.2.1 of the paper). *)
val project : t -> string list -> t

(** [agree_on st st' vars] holds iff [st] and [st'] assign equal values to
    every variable in [vars]. *)
val agree_on : t -> t -> string list -> bool

(** [diff2 a b f]: when [a] and [b] bind the same variables in the same
    slot order, call [f k va vb] on every slot [k] whose values differ
    and return [true].  Returns [false] as soon as the shapes diverge
    (different lengths or variable names); [f]'s effects for earlier
    slots must then be discarded by the caller.  Unchanged slots are
    skipped by physical equality, so a state and a successor produced by
    [set] compare in O(vars) with near-zero per-slot cost. *)
val diff2 : t -> t -> (int -> Value.t -> Value.t -> unit) -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : t Fmt.t
val to_string : t -> string

(** {2 Scratch buffers}

    A scratch buffer is a mutable state over a fixed variable set, for
    enumerating large state spaces without allocating one state per
    visited point.  {!scratch_view} exposes the buffer as a state without
    copying; the view is only valid until the next {!scratch_set} — use
    {!scratch_copy} to retain a visited state. *)

type scratch

(** [scratch_create vars] is a fresh buffer over [vars], which must be in
    ascending name order.  All slots start at [Value.bot]. *)
val scratch_create : string array -> scratch

(** [scratch_set sc k v] writes [v] into slot [k] (the [k]-th variable of
    the buffer in name order). *)
val scratch_set : scratch -> int -> Value.t -> unit

(** The buffer as a state, without copying.  Invalidated by the next
    {!scratch_set}. *)
val scratch_view : scratch -> t

(** An immutable snapshot of the buffer's current state. *)
val scratch_copy : scratch -> t
