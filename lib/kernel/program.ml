(* Programs (Section 2.1) and program compositions (Section 2.1.1).

   A program is a set of variables with finite domains and a finite set of
   actions.  The three compositions of the paper are provided:

   - parallel composition  p [] q   : union of actions;
   - restriction           Z ∧ p    : each action guarded by Z;
   - sequential            p ;_Z q  : p [] (Z ∧ q).

   [states] enumerates the full product state space; it is the universe over
   which the semantic checks of the other libraries run. *)

type var_decl = {
  var_name : string;
  domain : Domain.t;
}

type t = {
  name : string;
  vars : var_decl list;
  actions : Action.t list;
}

let make ~name ~vars ~actions =
  let var_names = List.map (fun (x, _) -> x) vars in
  let sorted = List.sort_uniq String.compare var_names in
  if List.length sorted <> List.length var_names then
    Detcor_robust.Error.internal "Program.make %s: duplicate variable declaration"
      name;
  let action_names = List.map Action.name actions in
  let sorted_actions = List.sort_uniq String.compare action_names in
  if List.length sorted_actions <> List.length action_names then
    Detcor_robust.Error.internal "Program.make %s: duplicate action name" name;
  {
    name;
    vars = List.map (fun (x, d) -> { var_name = x; domain = d }) vars;
    actions;
  }

let name p = p.name
let actions p = p.actions
let variables p = List.map (fun vd -> vd.var_name) p.vars

let var_decls p = List.map (fun vd -> (vd.var_name, vd.domain)) p.vars

let domain_of p x =
  let rec find = function
    | [] -> None
    | vd :: rest -> if String.equal vd.var_name x then Some vd.domain else find rest
  in
  find p.vars

let find_action p name =
  List.find_opt (fun ac -> String.equal (Action.name ac) name) p.actions

let with_name name p = { p with name }

let add_actions p actions =
  make ~name:p.name
    ~vars:(var_decls p)
    ~actions:(p.actions @ actions)

(* Union of variable declarations; domains of shared variables must agree. *)
let merge_vars ~context vs1 vs2 =
  let extend acc vd =
    match List.find_opt (fun v -> String.equal v.var_name vd.var_name) acc with
    | None -> acc @ [ vd ]
    | Some existing ->
      if Domain.values existing.domain = Domain.values vd.domain then acc
      else
        Detcor_robust.Error.internal
          "%s: variable %s declared with two different domains" context
          vd.var_name
  in
  List.fold_left extend vs1 vs2

(* Parallel composition p [] q (written p || q in the paper). *)
let parallel p q =
  let vars = merge_vars ~context:"Program.parallel" p.vars q.vars in
  {
    name = Fmt.str "(%s [] %s)" p.name q.name;
    vars;
    actions = p.actions @ q.actions;
  }

let parallel_list = function
  | [] -> Detcor_robust.Error.internal "Program.parallel_list: empty list"
  | p :: ps -> List.fold_left parallel p ps

(* Restriction Z ∧ p. *)
let restrict z p =
  {
    p with
    name = Fmt.str "(%s /\\ %s)" (Pred.name z) p.name;
    actions = List.map (Action.restrict z) p.actions;
  }

(* Sequential composition p ;_Z q = p [] (Z ∧ q). *)
let sequential p z q = parallel p (restrict z q)

(* Number of states in the full product space. *)
let space_size p =
  List.fold_left (fun acc vd -> acc * Domain.size vd.domain) 1 p.vars

(* Full product state space.  The fold enumerates lazily so callers can stop
   early; [states] materializes the whole space. *)
let fold_states f init p =
  let rec go acc st = function
    | [] ->
      Detcor_robust.Budget.tick ();
      f acc st
    | vd :: rest ->
      List.fold_left
        (fun acc v -> go acc (State.set st vd.var_name v) rest)
        acc (Domain.values vd.domain)
  in
  go init State.empty p.vars

let states p = List.rev (fold_states (fun acc st -> st :: acc) [] p)

(* Successor states of [st] under any action of [p], tagged by action. *)
let successors p st =
  List.concat_map
    (fun ac -> List.map (fun st' -> (ac, st')) (Action.execute ac st))
    p.actions

let enabled_actions p st = List.filter (fun ac -> Action.enabled ac st) p.actions

(* A state is a deadlock of p when no action is enabled (the guard of each
   action is false): exactly the condition under which a maximal computation
   may be finite (Section 2.1). *)
let deadlocked p st = enabled_actions p st = []

(* [well_formed p] checks that every action maps in-domain states to
   in-domain states; returns the list of violations. *)
let well_formed p =
  let universe = states p in
  let in_domain st =
    List.for_all (fun vd -> Domain.mem (State.get st vd.var_name) vd.domain) p.vars
  in
  let check_action ac =
    List.concat_map
      (fun st ->
        List.filter_map
          (fun st' ->
            if in_domain st' then None
            else
              Some
                (Fmt.str "action %s maps %s out of domain (%s)"
                   (Action.name ac) (State.to_string st) (State.to_string st')))
          (Action.execute ac st))
      universe
  in
  List.concat_map check_action p.actions

(* ------------------------------------------------------------------ *)
(* Encapsulation (Section 2.1, Encapsulates).                          *)
(* ------------------------------------------------------------------ *)

type encapsulation_violation = {
  offending_action : string;
  at_state : State.t;
  reason : string;
}

(* [encapsulation_violations ~base p' ~universe]: p' encapsulates p iff each
   action of p' that updates variables of p is of the form
   [g ∧ g' -> st || st'] for an action [g -> st] of p.  Semantically, over
   every state of the universe: whenever such an action of p' is enabled and
   executes, (i) the guard of the underlying base action holds, and (ii) the
   effect projected on the variables of p coincides with the base action's
   effect.  Actions with a [based_on] tag are checked against that action;
   untagged actions must leave the base variables unchanged. *)
let encapsulation_violations ~base p' ~universe =
  let base_vars = variables base in
  let violation ac st reason =
    { offending_action = Action.name ac; at_state = st; reason }
  in
  let changes_base_vars st st' = not (State.agree_on st st' base_vars) in
  let check_untagged ac st =
    List.filter_map
      (fun st' ->
        if changes_base_vars st st' then
          Some
            (violation ac st
               "updates base variables but is not based on a base action")
        else None)
      (Action.execute ac st)
  in
  let check_tagged ac base_name st =
    match find_action base base_name with
    | None ->
      if Action.enabled ac st then
        [ violation ac st (Fmt.str "based on unknown action %s" base_name) ]
      else []
    | Some base_ac ->
      if not (Action.enabled ac st) then []
      else if not (Action.enabled base_ac st) then
        [
          violation ac st
            (Fmt.str "enabled while base guard of %s is false" base_name);
        ]
      else
        let base_succs =
          List.map (fun s -> State.project s base_vars) (Action.execute base_ac st)
        in
        List.filter_map
          (fun st' ->
            let proj = State.project st' base_vars in
            if List.exists (State.equal proj) base_succs then None
            else
              Some
                (violation ac st
                   (Fmt.str "effect on base variables differs from %s" base_name)))
          (Action.execute ac st)
  in
  let check_action ac =
    List.concat_map
      (fun st ->
        match Action.based_on ac with
        | None -> check_untagged ac st
        | Some base_name -> check_tagged ac base_name st)
      universe
  in
  List.concat_map check_action p'.actions

let encapsulates ~base p' ~universe =
  encapsulation_violations ~base p' ~universe = []

let pp ppf p =
  Fmt.pf ppf "@[<v>program %s@,vars:@,  @[<v>%a@]@,actions:@,  @[<v>%a@]@]"
    p.name
    Fmt.(list ~sep:cut (fun ppf vd ->
        Fmt.pf ppf "%s : %a" vd.var_name Domain.pp vd.domain))
    p.vars
    Fmt.(list ~sep:cut Action.pp)
    p.actions
