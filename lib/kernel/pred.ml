(* State predicates (Section 2.1).

   A state predicate is characterized by the set of states in which it is
   true; the paper uses predicates and state sets interchangeably, and so do
   we: the working representation is a semantic function [State.t -> bool]
   carrying a name for diagnostics.  Boolean connectives on predicates are
   exactly set operations. *)

type t = {
  id : int;
  name : string;
  eval : State.t -> bool;
}

(* Unique per predicate instance; the transition-system caches key their
   bitsets on it.  Atomic so predicates may be constructed from worker
   domains during parallel exploration. *)
let counter = Atomic.make 0

let make name eval = { id = Atomic.fetch_and_add counter 1; name; eval }

let id p = p.id

let holds p st = p.eval st

(* The raw closure, for batch compilers that hoist it out of the record
   once instead of re-entering [holds] per query. *)
let fn p = p.eval

let name p = p.name

let of_expr ?name:n e =
  let name = match n with Some s -> s | None -> Expr.to_string e in
  make name (fun st -> Expr.eval_bool st e)

let true_ = make "true" (fun _ -> true)
let false_ = make "false" (fun _ -> false)

let not_ p = make (Fmt.str "!(%s)" p.name) (fun st -> not (p.eval st))

let and_ a b =
  make (Fmt.str "(%s && %s)" a.name b.name) (fun st -> a.eval st && b.eval st)

let or_ a b =
  make (Fmt.str "(%s || %s)" a.name b.name) (fun st -> a.eval st || b.eval st)

let implies a b =
  make
    (Fmt.str "(%s => %s)" a.name b.name)
    (fun st -> (not (a.eval st)) || b.eval st)

let conj ps = List.fold_left and_ true_ ps
let disj ps = List.fold_left or_ false_ ps

(* Membership is a hashed set over the states themselves: a query costs
   one structural hash instead of rendering the state to a string. *)
module State_set = Hashtbl.Make (struct
  type t = State.t

  let equal = State.equal
  let hash = State.hash
end)

let of_states ?(name = "<state-set>") states =
  let tbl = State_set.create (max 16 (List.length states)) in
  List.iter (fun st -> State_set.replace tbl st ()) states;
  make name (fun st -> State_set.mem tbl st)

(* Semantic comparisons are relative to an explicit universe of states. *)

let holds_everywhere p universe = List.for_all p.eval universe

let implies_on ~universe a b =
  List.for_all (fun st -> (not (a.eval st)) || b.eval st) universe

let equal_on ~universe a b =
  List.for_all (fun st -> a.eval st = b.eval st) universe

let satisfying ~universe p = List.filter p.eval universe

let count ~universe p = List.length (satisfying ~universe p)

let pp ppf p = Fmt.string ppf p.name
