(* Program states: total maps from variable names to values.

   A state of program [p] assigns each variable of [p] a value from its
   domain (Section 2.1 of the paper).  States are persistent, so actions
   build successor states cheaply and states can be used as keys in hash
   tables during state-space exploration.

   Representation: a sorted array of bindings (ascending variable name,
   names unique), never mutated after construction.  Programs have a
   handful of variables, so binary search beats tree descent, [set] is one
   allocation and a blit instead of a path copy, and the ordered
   operations ([compare], [equal], [fold], [bindings]) are cache-friendly
   scans with no enumeration cells.  The comparison order is exactly the
   one [Map.Make(String)] with [Value.compare] on data would produce —
   lexicographic on the sorted binding sequence, shorter prefix first —
   which the packed engine's layout ranks rely on. *)

type t = (string * Value.t) array

let empty = [||]

(* Binary search: index of [x], or [lnot insertion_point] when absent. *)
let find_ix st x =
  let lo = ref 0 and hi = ref (Array.length st) in
  let found = ref (-1) in
  while !found < 0 && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c = String.compare x (fst (Array.unsafe_get st mid)) in
    if c = 0 then found := mid
    else if c < 0 then hi := mid
    else lo := mid + 1
  done;
  if !found >= 0 then !found else lnot !lo

let get st x =
  let i = find_ix st x in
  if i >= 0 then snd (Array.unsafe_get st i)
  else Value.type_error "unbound variable %s" x

let find_opt st x =
  let i = find_ix st x in
  if i >= 0 then Some (snd (Array.unsafe_get st i)) else None

let mem st x = find_ix st x >= 0

let set st x v =
  let i = find_ix st x in
  if i >= 0 then begin
    let st' = Array.copy st in
    st'.(i) <- (x, v);
    st'
  end
  else begin
    let ip = lnot i in
    let n = Array.length st in
    let st' = Array.make (n + 1) (x, v) in
    Array.blit st 0 st' 0 ip;
    Array.blit st ip st' (ip + 1) (n - ip);
    st'
  end

let of_list bindings =
  List.fold_left (fun st (x, v) -> set st x v) empty bindings

let bindings st = Array.to_list st

let fold f st init =
  let acc = ref init in
  Array.iter (fun (x, v) -> acc := f x v !acc) st;
  !acc

let cardinal st = Array.length st

let variables st = List.map fst (bindings st)

(* Same order as [Map.compare]: lexicographic over the sorted binding
   sequence (name, then value), a strict prefix comparing smaller. *)
let compare st st' =
  let n = Array.length st and n' = Array.length st' in
  let rec go i =
    if i = n then if i = n' then 0 else -1
    else if i = n' then 1
    else
      let x, v = Array.unsafe_get st i and x', v' = Array.unsafe_get st' i in
      let c = String.compare x x' in
      if c <> 0 then c
      else
        let c = Value.compare v v' in
        if c <> 0 then c else go (i + 1)
  in
  go 0

let equal st st' =
  Array.length st = Array.length st'
  && Array.for_all2
       (fun (x, v) (x', v') -> String.equal x x' && Value.equal v v')
       st st'

let hash st =
  fold (fun x v acc -> (acc * 31) + Hashtbl.hash x + Value.hash v) st 0

module Var_set = Set.Make (String)

(* Projection of a state on a set of variables (Section 2.2.1). *)
let project st vars =
  let keep = Var_set.of_list vars in
  Array.of_list
    (List.filter (fun (x, _) -> Var_set.mem x keep) (bindings st))

let update_many st bindings =
  List.fold_left (fun acc (x, v) -> set acc x v) st bindings

(* [agree_on st st' vars]: do the two states coincide on [vars]? *)
let agree_on st st' vars =
  List.for_all (fun x -> Value.equal (get st x) (get st' x)) vars

(* [diff2 a b f]: when [a] and [b] bind the same variables in the same
   slot order, call [f k va vb] on every slot whose values differ and
   return [true]; return [false] as soon as the shapes diverge (the
   caller must then fall back and may discard any effects of [f]).
   [set] copies the binding array but reuses the untouched pair tuples,
   so unchanged slots short-circuit on physical equality — this is the
   packed engine's delta-encoding hot path. *)
let diff2 (a : t) (b : t) f =
  let n = Array.length a in
  if Array.length b <> n then false
  else
    try
      for k = 0 to n - 1 do
        let ((xa, va) as pa) = Array.unsafe_get a k in
        let pb = Array.unsafe_get b k in
        if pa != pb then begin
          let xb, vb = pb in
          if not (String.equal xa xb) then raise Exit;
          if not (Value.equal va vb) then f k va vb
        end
      done;
      true
    with Exit -> false

(* Scratch buffers: a mutable binding array sharing the representation of
   [t], so [scratch_view] is the identity.  The names are fixed at
   creation; [scratch_set] only replaces the value of a slot. *)

type scratch = t

let scratch_create vars = Array.map (fun x -> (x, Value.bot)) vars

let scratch_set (sc : scratch) k v =
  Array.unsafe_set sc k (fst (Array.unsafe_get sc k), v)

let scratch_view (sc : scratch) : t = sc
let scratch_copy = Array.copy

let pp ppf st =
  let pp_binding ppf (x, v) = Fmt.pf ppf "%s=%a" x Value.pp v in
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any " ") pp_binding) (bindings st)

let to_string st = Fmt.str "%a" pp st
