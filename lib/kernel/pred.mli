(** State predicates (Section 2.1).

    A state predicate is characterized by the set of states where it holds;
    the paper uses predicates and state sets interchangeably.  The working
    representation is a semantic function with a display name.  Semantic
    comparisons ([implies_on], [equal_on]) are relative to an explicit finite
    universe of states, typically produced by state-space exploration. *)

type t

val make : string -> (State.t -> bool) -> t
val holds : t -> State.t -> bool

(** The predicate's raw semantic function — the compilation hook for batch
    evaluators (e.g. the simulator's syndrome compiler), which pull the
    closure out once per predicate instead of re-entering {!holds} on
    every query. *)
val fn : t -> State.t -> bool

val name : t -> string

(** Unique id of this predicate instance (two predicates built by separate
    [make] calls have different ids even when extensionally equal).  Used by
    the transition-system layer to key per-system bitset caches. *)
val id : t -> int

(** [of_expr e] interprets a boolean expression as a predicate. *)
val of_expr : ?name:string -> Expr.t -> t

val true_ : t
val false_ : t
val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val implies : t -> t -> t
val conj : t list -> t
val disj : t list -> t

(** [of_states states] is the predicate "member of [states]". *)
val of_states : ?name:string -> State.t list -> t

val holds_everywhere : t -> State.t list -> bool

(** [implies_on ~universe a b] checks [a ⇒ b] over every state of the
    universe. *)
val implies_on : universe:State.t list -> t -> t -> bool

val equal_on : universe:State.t list -> t -> t -> bool
val satisfying : universe:State.t list -> t -> State.t list
val count : universe:State.t list -> t -> int
val pp : t Fmt.t
