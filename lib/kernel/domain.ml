(* Finite domains for program variables. *)

type t = Value.t list

let of_values vs =
  if vs = [] then Detcor_robust.Error.internal "Domain.of_values: empty domain";
  let sorted = List.sort_uniq Value.compare vs in
  sorted

let range lo hi =
  if lo > hi then Detcor_robust.Error.internal "Domain.range: empty range";
  List.init (hi - lo + 1) (fun i -> Value.Int (lo + i))

let boolean = [ Value.Bool false; Value.Bool true ]

let symbols names = of_values (List.map Value.sym names)

let with_bot d = of_values (Value.bot :: d)

let mem v d = List.exists (Value.equal v) d

let size = List.length

let values d = d

let pp ppf d = Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") Value.pp) d
