(** Safety specifications as bad states + bad transitions.

    Exact for the paper's class of suffix-closed, fusion-closed
    specifications (Assumption 1): a sequence satisfies the specification
    iff it contains no bad state and crosses no bad transition. *)

open Detcor_kernel
open Detcor_semantics

type t

val make :
  ?name:string ->
  ?bad_state:(State.t -> bool) ->
  ?bad_transition:(State.t -> State.t -> bool) ->
  unit ->
  t

val name : t -> string
val bad_state : t -> State.t -> bool
val bad_transition : t -> State.t -> State.t -> bool

(** The predicate structure of a specification, when the constructors
    preserved it: a state is bad iff some [bad_states] predicate holds,
    and a transition [s -> s'] is bad iff for some pair [(l, r)],
    [l s ∧ ¬(r s')].  Every constructor below records this; only a raw
    {!make} with closures is opaque ([None]).  Batch monitors use the
    decomposition to compile a whole safety specification into packed
    predicate columns instead of evaluating the closures pointwise. *)
type decomposition = {
  bad_states : Pred.t list;
  bad_pairs : (Pred.t * Pred.t) list;
}

val decompose : t -> decomposition option

(** All sequences. *)
val top : t

(** [never p]: no reachable state may satisfy [p]. *)
val never : Pred.t -> t

(** [always p]: invariant [p]. *)
val always : Pred.t -> t

(** [closure_of s] is [cl(s)] (Section 2.2): transitions falsifying [s] are
    bad. *)
val closure_of : Pred.t -> t

(** [generalized_pair s r] is the pair [({s},{r})] (Section 2.2). *)
val generalized_pair : Pred.t -> Pred.t -> t

val conj : t -> t -> t
val conj_list : t list -> t

(** No reachable bad state or bad transition in the system. *)
val check : Ts.t -> t -> Check.outcome

(** Index of the first state of the trace at which the specification is
    violated (bad state there, or bad transition into it). *)
val first_violation_in_trace : Trace.t -> t -> int option

val trace_satisfies : Trace.t -> t -> bool

(** Every prefix maintains the specification (Section 2.2.1) — with this
    representation, equivalent to {!trace_satisfies}. *)
val maintains : Trace.t -> t -> bool

val pp : t Fmt.t
