(* Safety specifications.

   The paper's problem specifications are suffix closed and fusion closed
   (Assumption 1).  For that class, a safety specification is completely
   characterized by a set of "bad" states and a set of "bad" transitions: a
   sequence is in the specification iff it contains no bad state and no bad
   transition.  (Suffix closure rules out prefix-dependence; fusion closure
   rules out dependence on anything but the current state, so the
   irremediable prefixes of the Alpern–Schneider characterization are
   exactly those ending in a bad state or crossing a bad transition.)

   This is also the representation under which the paper's companion
   synthesis method computes: the [ms]/[mt] fixpoints of
   [Detcor_synthesis] consume it directly.

   Alongside the closures the constructors record, when they can, the
   structure they were built from: bad states as a disjunction of
   predicates and bad transitions as a disjunction of pair forms
   [l s ∧ ¬(r s')].  Batch monitors (the simulator's syndrome compiler)
   read that structure back through [decompose] to turn a whole safety
   specification into packed predicate columns; only a [make] call with
   raw closures is opaque. *)

open Detcor_kernel
open Detcor_semantics

type decomposition = {
  bad_states : Pred.t list;
  bad_pairs : (Pred.t * Pred.t) list;
}

type t = {
  name : string;
  bad_state : State.t -> bool;
  bad_transition : State.t -> State.t -> bool;
  parts : decomposition option;
}

let mk ?parts name bad_state bad_transition =
  { name; bad_state; bad_transition; parts }

let make ?(name = "safety") ?bad_state ?bad_transition () =
  (* Structure survives only when no opaque closure was supplied. *)
  let parts =
    match (bad_state, bad_transition) with
    | None, None -> Some { bad_states = []; bad_pairs = [] }
    | _ -> None
  in
  mk ?parts name
    (match bad_state with Some f -> f | None -> fun _ -> false)
    (match bad_transition with Some f -> f | None -> fun _ _ -> false)

let name s = s.name
let bad_state s = s.bad_state
let bad_transition s = s.bad_transition
let decompose s = s.parts

(* The trivial safety specification: all sequences. *)
let top = make ~name:"true" ()

(* [never p]: states satisfying [p] are bad. *)
let never p =
  mk
    ~parts:{ bad_states = [ p ]; bad_pairs = [] }
    (Fmt.str "never %s" (Pred.name p))
    (Pred.holds p)
    (fun _ _ -> false)

(* [always p]: the invariant "[]p". *)
let always p = never (Pred.not_ p)

(* cl(S) as a safety specification (Section 2.2): bad transitions are those
   falsifying S. *)
let closure_of s =
  mk
    ~parts:{ bad_states = []; bad_pairs = [ (s, s) ] }
    (Fmt.str "cl(%s)" (Pred.name s))
    (fun _ -> false)
    (fun st st' -> Pred.holds s st && not (Pred.holds s st'))

(* The generalized pair ({S},{R}) (Section 2.2): if S at s_j then R at
   s_{j+1}; bad transitions violate that. *)
let generalized_pair s r =
  mk
    ~parts:{ bad_states = []; bad_pairs = [ (s, r) ] }
    (Fmt.str "({%s},{%s})" (Pred.name s) (Pred.name r))
    (fun _ -> false)
    (fun st st' -> Pred.holds s st && not (Pred.holds r st'))

let conj a b =
  let parts =
    match (a.parts, b.parts) with
    | Some pa, Some pb ->
      Some
        {
          bad_states = pa.bad_states @ pb.bad_states;
          bad_pairs = pa.bad_pairs @ pb.bad_pairs;
        }
    | _ -> None
  in
  mk ?parts
    (Fmt.str "(%s & %s)" a.name b.name)
    (fun st -> a.bad_state st || b.bad_state st)
    (fun st st' -> a.bad_transition st st' || b.bad_transition st st')

let conj_list specs = List.fold_left conj top specs

(* ------------------------------------------------------------------ *)
(* Checking.                                                           *)
(* ------------------------------------------------------------------ *)

(* [check ts s]: no reachable bad state, no reachable bad transition.
   Specifications whose structure survived construction go through the
   decomposed checker: predicates are swept once per state through the
   engine's bitset cache, and a pair-free specification never touches
   the edge set at all. *)
let check ts s =
  match s.parts with
  | Some { bad_states; bad_pairs } ->
    Check.safety_parts ts ~bad_states ~bad_pairs
  | None ->
    Check.safety ts ~bad_state:s.bad_state ~bad_transition:s.bad_transition

(* [first_violation_in_trace tr s]: index (into [Trace.states]) of the first
   state at which the trace stops maintaining the specification: either a
   bad state at that index, or the target of a bad transition. *)
let first_violation_in_trace tr s =
  let states = Trace.states tr in
  let rec go i prev = function
    | [] -> None
    | st :: rest ->
      if s.bad_state st then Some i
      else begin
        match prev with
        | Some p when s.bad_transition p st -> Some i
        | _ -> go (i + 1) (Some st) rest
      end
  in
  go 0 None states

let trace_satisfies tr s = first_violation_in_trace tr s = None

(* [maintains_up_to tr s]: every prefix of the trace maintains the
   specification (Section 2.2.1, Maintains) — with the bad-state/transition
   representation, a prefix maintains the spec iff it contains no
   violation. *)
let maintains tr s = trace_satisfies tr s

let pp ppf s = Fmt.string ppf s.name
