(* Automated addition of fault-tolerance components.

   The paper's companion method (its reference [4], later mechanized by
   Kulkarni & Arora as "automating the addition of fault-tolerance")
   transforms a fault-intolerant program into a tolerant one by adding
   detectors and correctors.  On finite-state programs the transformation
   is computable, and this module implements it:

   - [add_failsafe] strengthens each action's guard with (a subset of) its
     weakest detection predicate: the program may execute an action only
     from states where doing so maintains safety and cannot be pushed by
     faults alone into violating it.  The added components are exactly the
     detectors of Section 3.

   - [add_nonmasking] adds a corrector: recovery actions that converge
     from the fault span back to the invariant (Section 4), synthesized by
     backward layering so convergence is by construction cycle-free.

   - [add_masking] composes both: fail-safe restriction first, then
     recovery that itself avoids unsafe transitions (Section 5's thesis
     that masking = detectors + correctors).

   The [ms]/[mt] fixpoints follow the Kulkarni-Arora formulation: [ms] is
   the set of states from which fault actions alone can violate safety;
   [mt] the transitions a safe program must never take.

   Like {!Ts}, the synthesizer has two interchangeable paths.  When the
   explored [p [] F] system was built by the packed engine, [ms] is a
   bitset-seeded backward fixpoint over the reverse fault-edge CSR,
   detection guards are per-action bitsets consulted by state index (the
   semantic closure remains only as the fallback for states outside the
   explored product), invariant recomputation is a counter-based deadlock
   pruning worklist, and recovery layering ranks states in [int] arrays
   with a frontier queue whose candidate scans can fan out over OCaml
   domains ([?workers]).  The reference path is the seed implementation,
   kept as the differential oracle; both produce extensionally identical
   programs, invariants and reports. *)

open Detcor_kernel
open Detcor_semantics
open Detcor_spec
open Detcor_core
open Detcor_obs

(* Shared with the engine's counter of the same name (lost workers whose
   chunks were retried sequentially). *)
let m_worker_retries = Metrics.counter "robust.worker_retries"

type failure =
  | Empty_invariant
  | Unrecoverable_state of State.t
  | Verification_failed of Tolerance.report
  | Exhausted of Detcor_robust.Error.resource

type 'a outcome = ('a, failure) result

let pp_failure ppf = function
  | Empty_invariant ->
    Fmt.string ppf "no invariant state survives the fail-safe restriction"
  | Unrecoverable_state st ->
    Fmt.pf ppf "no safe recovery path from %a" State.pp st
  | Verification_failed r ->
    Fmt.pf ppf "synthesized program failed verification:@,%a"
      Tolerance.pp_report r
  | Exhausted r ->
    Fmt.pf ppf "synthesis undecided: %a" Detcor_robust.Error.pp_resource r

type result = {
  program : Program.t;
  invariant : Pred.t;
  report : Tolerance.report; (* verification of the synthesized program *)
  added_detectors : (string * Pred.t) list;
      (* per restricted action: the added detection guard *)
  recovery_states : int; (* states given a recovery transition *)
}

(* A budget trip inside a synthesis fixpoint surfaces as an [Exhausted]
   outcome rather than an escaping exception, mirroring the per-obligation
   [Unknown] of {!Tolerance}: the caller always gets a value stating
   whether synthesis succeeded, failed, or was left undecided. *)
let surface_exhaustion f =
  try f () with
  | Detcor_robust.Error.Detcor_error (Detcor_robust.Error.Resource r) ->
    Error (Exhausted r)
  | Ts.Too_large n ->
    Error
      (Exhausted
         {
           Detcor_robust.Error.kind = Detcor_robust.Error.States;
           spent = n;
           budget = n;
         })

(* ------------------------------------------------------------------ *)
(* ms / mt                                                             *)
(* ------------------------------------------------------------------ *)

(* [ms ts_pf ~fault_ids ~sspec]: the states from which the fault actions
   alone can reach a safety violation — the backward fixpoint over fault
   edges seeded with the bad states and the sources of bad fault
   transitions. *)
let compute_ms ts_pf ~fault_ids ~sspec =
  Obs.span "synth.compute_ms" @@ fun () ->
  let n = Ts.num_states ts_pf in
  let is_fault = Array.make (Ts.num_actions ts_pf) false in
  List.iter (fun i -> is_fault.(i) <- true) fault_ids;
  let in_ms = Array.make n false in
  let fault_preds = Array.make n [] in
  let queue = Queue.create () in
  let add i =
    if not in_ms.(i) then begin
      in_ms.(i) <- true;
      Queue.add i queue
    end
  in
  Ts.iter_edges ts_pf (fun i aid j ->
      if is_fault.(aid) then begin
        fault_preds.(j) <- i :: fault_preds.(j);
        if Safety.bad_transition sspec (Ts.state ts_pf i) (Ts.state ts_pf j)
        then add i
      end);
  for i = 0 to n - 1 do
    if Safety.bad_state sspec (Ts.state ts_pf i) then add i
  done;
  let processed = ref 0 in
  Progress.with_phase "synth.ms"
    (fun () -> [ ("iterations", !processed); ("queue", Queue.length queue) ])
    (fun () ->
      while not (Queue.is_empty queue) do
        Detcor_robust.Budget.tick ();
        let j = Queue.pop queue in
        incr processed;
        List.iter add fault_preds.(j)
      done);
  in_ms

(* Packed [ms]: identical fixpoint, but membership lives in a bitset and
   predecessor iteration runs over the reverse fault-edge CSR instead of
   per-state predecessor lists. *)
let compute_ms_packed ts_pf ~fault_ids ~sspec ~bad =
  Obs.span "synth.compute_ms" @@ fun () ->
  let n = Ts.num_states ts_pf in
  let phase = Detcor_robust.Checkpoint.enter ~kind:"synth.ms" in
  match Detcor_robust.Checkpoint.resume_data phase with
  | Some (Detcor_robust.Checkpoint.Done data) ->
    (* The fixpoint finished in the snapshotted run: its result is the
       whole answer, no reverse CSR needed. *)
    Bitset.of_string n data
  | resumed ->
    let is_fault = Array.make (Ts.num_actions ts_pf) false in
    List.iter (fun i -> is_fault.(i) <- true) fault_ids;
    let rev = Ts.reverse ~keep:(fun aid -> is_fault.(aid)) ts_pf in
    let ms = ref (Bitset.create n) in
    let queue = Queue.create () in
    let add i =
      if not (Bitset.get !ms i) then begin
        Bitset.set !ms i;
        Queue.add i queue
      end
    in
    (match resumed with
    | Some (Detcor_robust.Checkpoint.Midway data) ->
      (* Mid-fixpoint state: membership bits plus the open frontier.
         Seeding is subsumed — every seed is marked or processed. *)
      let bits, frontier = (Marshal.from_string data 0 : string * int array) in
      ms := Bitset.of_string n bits;
      Array.iter (fun i -> Queue.add i queue) frontier
    | _ ->
      (* Seed from bad fault transitions by walking the reverse CSR: it
         holds exactly the fault edges, so the (possibly expensive)
         bad-transition predicate runs on those alone rather than on
         every product edge. *)
      for j = 0 to n - 1 do
        Ts.iter_in rev j (fun _aid i ->
            if
              Safety.bad_transition sspec (Ts.state ts_pf i)
                (Ts.state ts_pf j)
            then add i)
      done;
      for i = 0 to n - 1 do
        if Bitset.get bad i then add i
      done);
    (* The loop's only budget checkpoint is at its top, where the marked
       set and the frontier are a closed pair — exactly what a capture
       may persist. *)
    Detcor_robust.Checkpoint.set_capture phase (fun () ->
        Marshal.to_string
          (Bitset.to_string !ms, Array.of_seq (Queue.to_seq queue))
          []);
    let processed = ref 0 in
    Progress.with_phase "synth.ms"
      (fun () -> [ ("iterations", !processed); ("queue", Queue.length queue) ])
      (fun () ->
        while not (Queue.is_empty queue) do
          Detcor_robust.Budget.tick ();
          let j = Queue.pop queue in
          incr processed;
          Ts.iter_in rev j (fun _ i -> add i)
        done);
    Detcor_robust.Checkpoint.complete phase (Bitset.to_string !ms);
    !ms

(* [mt]: a transition a safe program must never take — already a bad
   transition, or into a bad state, or into [ms].  [in_ms_at] answers ms
   membership by state index, whatever the representation. *)
let make_mt ts_pf ~in_ms_at ~sspec s s' =
  Safety.bad_transition sspec s s'
  || Safety.bad_state sspec s'
  ||
  match Ts.index_of ts_pf s' with Some j -> in_ms_at j | None -> false

(* ------------------------------------------------------------------ *)
(* Fail-safe                                                           *)
(* ------------------------------------------------------------------ *)

(* The detection guard added to action [ac]: executing [ac] here neither
   violates safety nor lands in [ms].  This is the weakest detection
   predicate of [ac] for the [mt]-extended safety specification. *)
let detection_guard ts_pf ~in_ms_at ~sspec ac =
  Pred.make
    (Fmt.str "wdp(%s)" (Action.name ac))
    (fun st ->
      (not (Safety.bad_state sspec st))
      && (match Ts.index_of ts_pf st with
         | Some i -> not (in_ms_at i)
         | None -> true)
      && List.for_all
           (fun st' -> not (make_mt ts_pf ~in_ms_at ~sspec st st'))
           (Action.execute ac st))

(* Packed detection guards: one edge sweep marks, per program action, the
   states from which some [ac]-step is an mt transition; each guard is
   then a single bitset probe.  States outside the explored product (the
   packed engine explored it exhaustively, so only states over a different
   variable set) fall back to the semantic formula above. *)
let detection_guards_packed ts_pf ~sspec ~bad ~ms p =
  let n = Ts.num_states ts_pf in
  let acts = Program.actions p in
  let pos_of = Array.make (Ts.num_actions ts_pf) (-1) in
  List.iteri
    (fun k ac ->
      match Ts.action_id ts_pf (Action.name ac) with
      | Some aid -> pos_of.(aid) <- k
      | None -> ())
    acts;
  let bad_step = Array.init (List.length acts) (fun _ -> Bitset.create n) in
  Ts.iter_edges ts_pf (fun i aid j ->
      let k = pos_of.(aid) in
      if k >= 0
         && (Bitset.get bad j
            || Bitset.get ms j
            || Safety.bad_transition sspec (Ts.state ts_pf i) (Ts.state ts_pf j))
      then Bitset.set bad_step.(k) i);
  let in_ms_at = Bitset.get ms in
  List.mapi
    (fun k ac ->
      let ok =
        Bitset.of_fn n (fun i ->
            (not (Bitset.get bad i))
            && (not (Bitset.get ms i))
            && not (Bitset.get bad_step.(k) i))
      in
      let guard =
        Pred.make
          (Fmt.str "wdp(%s)" (Action.name ac))
          (fun st ->
            match Ts.index_of ts_pf st with
            | Some i -> Bitset.get ok i
            | None ->
              (not (Safety.bad_state sspec st))
              && List.for_all
                   (fun st' -> not (make_mt ts_pf ~in_ms_at ~sspec st st'))
                   (Action.execute ac st))
      in
      (ac, guard))
    acts

let restrict_with guards p =
  let restricted =
    List.map (fun (ac, g) -> (Action.name ac, g, Action.restrict g ac)) guards
  in
  let program =
    Program.make
      ~name:(Fmt.str "failsafe(%s)" (Program.name p))
      ~vars:(Program.var_decls p)
      ~actions:(List.map (fun (_, _, ac) -> ac) restricted)
  in
  let added = List.map (fun (name, g, _) -> (name, g)) restricted in
  (program, added)

(* Recompute the invariant: drop ms-states, then iteratively drop states
   that the restriction newly deadlocked (states that could move in [p]
   but cannot in the restricted program within the shrinking set). *)
let recompute_invariant ts_pf ~in_ms_at p restricted ~invariant =
  let module SS = Set.Make (State) in
  let initial =
    List.filter
      (fun st ->
        Pred.holds invariant st
        &&
        match Ts.index_of ts_pf st with
        | Some i -> not (in_ms_at i)
        | None -> true)
      (Program.states p)
  in
  let rec fix set =
    let keep st =
      let originally_live = not (Program.deadlocked p st) in
      if not originally_live then true
      else
        List.exists
          (fun (_, st') -> SS.mem st' set)
          (Program.successors restricted st)
    in
    let set' = SS.filter keep set in
    if SS.cardinal set' = SS.cardinal set then set else fix set'
  in
  let final = fix (SS.of_list initial) in
  SS.elements final

(* Packed recomputation: the same greatest fixpoint, as a deadlock-pruning
   worklist.  Candidate states stream through the program's layout in rank
   (= [State.compare]) order; each live state counts its restricted
   successors inside the candidate set, and dies when the count reaches
   zero.  Per-occurrence reverse lists make each pruning step O(in-degree)
   instead of a whole-set rescan. *)
let recompute_invariant_packed ts_pf ~in_ms_at ~layout p restricted ~invariant
    =
  let acc = ref [] in
  Layout.iter_scratch layout (fun sc ->
      let st = State.scratch_view sc in
      if Pred.holds invariant st
         && (match Ts.index_of ts_pf st with
            | Some i -> not (in_ms_at i)
            | None -> true)
      then acc := State.scratch_copy sc :: !acc);
  let states = Array.of_list (List.rev !acc) in
  let n = Array.length states in
  let local_of_rank = Hashtbl.create (max 16 (2 * n)) in
  Array.iteri
    (fun k st -> Hashtbl.replace local_of_rank (Layout.pack layout st) k)
    states;
  let always_keep = Array.make n false in
  let succ = Array.make n [||] in
  Array.iteri
    (fun k st ->
      Detcor_robust.Budget.tick ();
      if Program.deadlocked p st then always_keep.(k) <- true
      else
        succ.(k) <-
          Program.successors restricted st
          |> List.filter_map (fun (_, st') ->
                 match Layout.pack_opt layout st' with
                 | Some r -> Hashtbl.find_opt local_of_rank r
                 | None -> None)
          |> Array.of_list)
    states;
  let cnt = Array.make n 0 in
  let preds = Array.make n [] in
  for k = 0 to n - 1 do
    if not always_keep.(k) then
      Array.iter
        (fun j ->
          cnt.(k) <- cnt.(k) + 1;
          preds.(j) <- k :: preds.(j))
        succ.(k)
  done;
  let alive = Array.make n true in
  let queue = Queue.create () in
  let killed = ref 0 in
  let kill k =
    if alive.(k) then begin
      alive.(k) <- false;
      incr killed;
      Queue.add k queue
    end
  in
  for k = 0 to n - 1 do
    if (not always_keep.(k)) && cnt.(k) = 0 then kill k
  done;
  (* The kill cascade is where closure under computation is enforced:
     heartbeats report how much of the candidate invariant has been
     discarded so far. *)
  Progress.with_phase "synth.prune"
    (fun () -> [ ("killed", !killed); ("states", n) ])
    (fun () ->
      while not (Queue.is_empty queue) do
        Detcor_robust.Budget.tick ();
        let j = Queue.pop queue in
        List.iter
          (fun k ->
            if alive.(k) && not always_keep.(k) then begin
              cnt.(k) <- cnt.(k) - 1;
              if cnt.(k) = 0 then kill k
            end)
          preds.(j)
      done);
  let out = ref [] in
  for k = n - 1 downto 0 do
    if alive.(k) then out := states.(k) :: !out
  done;
  !out

(* The fail-safe front end shared by [add_failsafe] and [add_masking]:
   ms, the restricted program, and the recomputed invariant — packed when
   the composed system was built packed (and the program's own layout
   compiles), reference otherwise.  Returns the index-level ms oracle for
   the masking path's recovery restriction. *)
let failsafe_core ts_pf ~sspec ~fault_ids p ~invariant =
  let layout =
    if Ts.engine_of ts_pf = Ts.Packed then Layout.of_program p else None
  in
  match layout with
  | Some layout ->
    let n = Ts.num_states ts_pf in
    let bad =
      Bitset.of_fn n (fun i -> Safety.bad_state sspec (Ts.state ts_pf i))
    in
    let ms = compute_ms_packed ts_pf ~fault_ids ~sspec ~bad in
    let in_ms_at = Bitset.get ms in
    let guards = detection_guards_packed ts_pf ~sspec ~bad ~ms p in
    let restricted, added = restrict_with guards p in
    let inv_states =
      recompute_invariant_packed ts_pf ~in_ms_at ~layout p restricted
        ~invariant
    in
    (restricted, added, inv_states, in_ms_at)
  | None ->
    let in_ms = compute_ms ts_pf ~fault_ids ~sspec in
    let in_ms_at i = in_ms.(i) in
    let guards =
      List.map
        (fun ac -> (ac, detection_guard ts_pf ~in_ms_at ~sspec ac))
        (Program.actions p)
    in
    let restricted, added = restrict_with guards p in
    let inv_states =
      recompute_invariant ts_pf ~in_ms_at p restricted ~invariant
    in
    (restricted, added, inv_states, in_ms_at)

let add_failsafe ?limit ?(engine = Ts.Auto) ?(workers = 1) p ~spec ~invariant
    ~faults =
  Obs.span "synth.add_failsafe" ~attrs:[ Attr.str "program" (Program.name p) ]
  @@ fun () ->
  surface_exhaustion @@ fun () ->
  let sspec = Spec.safety (Spec.smallest_safety_containing spec) in
  let composed = Fault.compose p faults in
  let ts_pf = Ts.full ?limit ~engine ~workers composed in
  let fault_ids = Ts.action_ids_of_names ts_pf (Fault.action_names faults) in
  let restricted, added, inv_states, _ =
    failsafe_core ts_pf ~sspec ~fault_ids p ~invariant
  in
  if inv_states = [] then Error Empty_invariant
  else begin
    let invariant' = Pred.of_states ~name:"S_failsafe" inv_states in
    let report =
      Tolerance.check_with ?limit ~engine restricted ~spec
        ~invariant:invariant' ~init:inv_states ~faults ~tol:Spec.Failsafe
    in
    if Tolerance.verdict report then
      Ok
        {
          program = restricted;
          invariant = invariant';
          report;
          added_detectors = added;
          recovery_states = 0;
        }
    else Error (Verification_failed report)
  end

(* ------------------------------------------------------------------ *)
(* Recovery synthesis (the corrector).                                 *)
(* ------------------------------------------------------------------ *)

module State_tbl = Hashtbl.Make (struct
  type t = State.t

  let equal = State.equal
  let hash = State.hash
end)

(* Candidate recovery steps change at most [step_vars] variables — local
   corrections rather than global resets.  Backward layering from the
   target assigns each state a rank; the synthesized recovery action moves
   to a strictly smaller rank, so convergence is cycle-free by
   construction.  The list order is the tie-breaking order of the layering
   (first qualifying candidate wins), so it must be deterministic; the
   two-variable composition is deduplicated because a second step over the
   same variable re-emits one-variable states (or the origin itself), and
   different step orders reach the same state twice. *)
let neighbors ~step_vars p st =
  let decls = Program.var_decls p in
  let single_from base =
    List.concat_map
      (fun (x, d) ->
        List.filter_map
          (fun value ->
            if Value.equal (State.get base x) value then None
            else Some (State.set base x value))
          (Domain.values d))
      decls
  in
  let single = single_from st in
  if step_vars <= 1 then single
  else begin
    let seen = State_tbl.create 64 in
    State_tbl.replace seen st ();
    let emit acc st' =
      if State_tbl.mem seen st' then acc
      else begin
        State_tbl.replace seen st' ();
        st' :: acc
      end
    in
    let acc = List.fold_left emit [] single in
    let acc =
      List.fold_left
        (fun acc st1 -> List.fold_left emit acc (single_from st1))
        acc single
    in
    List.rev acc
  end

type recovery = {
  moves : int; (* states given a recovery transition *)
  action : Action.t;
}

(* [synthesize_recovery ~allowed ~target states]: rank the given states by
   backward BFS from the target set over allowed candidate steps, then
   build the recovery action "move one layer closer".  Returns the states
   that cannot reach the target, minimal first. *)
let synthesize_recovery ?(step_vars = 1) ~allowed ~target p states =
  Obs.span "synth.recovery" ~attrs:[ Attr.int "states" (List.length states) ]
  @@ fun () ->
  let rank = Hashtbl.create 256 in
  let key st = State.to_string st in
  let target_states = List.filter (Pred.holds target) states in
  List.iter (fun st -> Hashtbl.replace rank (key st) 0) target_states;
  let state_set = Hashtbl.create 256 in
  List.iter (fun st -> Hashtbl.replace state_set (key st) st) states;
  (* Candidate steps do not depend on the level: generate each state's
     in-set neighbor list (with its keys) once, not once per level. *)
  let neighbor_lists = Hashtbl.create 256 in
  List.iter
    (fun st ->
      Detcor_robust.Budget.tick ();
      Hashtbl.replace neighbor_lists (key st)
        (List.filter_map
           (fun st' ->
             let k' = key st' in
             if Hashtbl.mem state_set k' then Some (k', st') else None)
           (neighbors ~step_vars p st)))
    states;
  (* Backward BFS: repeatedly find unranked states with a one-step move to
     a ranked state. *)
  let table = Hashtbl.create 64 in
  let changed = ref true in
  let level = ref 0 in
  while !changed do
    changed := false;
    incr level;
    let additions = ref [] in
    Hashtbl.iter
      (fun k st ->
        Detcor_robust.Budget.tick ();
        if not (Hashtbl.mem rank k) then begin
          let candidate =
            List.find_opt
              (fun (k', st') ->
                (match Hashtbl.find_opt rank k' with
                | Some r -> r < !level
                | None -> false)
                && allowed st st')
              (Hashtbl.find neighbor_lists k)
          in
          match candidate with
          | Some (_, st') -> additions := (k, st') :: !additions
          | None -> ()
        end)
      state_set;
    List.iter
      (fun (k, st') ->
        Hashtbl.replace rank k !level;
        Hashtbl.replace table k st';
        changed := true)
      !additions
  done;
  let unrecoverable =
    Hashtbl.fold
      (fun k st acc -> if Hashtbl.mem rank k then acc else st :: acc)
      state_set []
    |> List.sort State.compare
  in
  let guard =
    Pred.make "needs-recovery" (fun st -> Hashtbl.mem table (key st))
  in
  let action =
    Action.deterministic "recovery" guard (fun st ->
        match Hashtbl.find_opt table (key st) with
        | Some st' -> st'
        | None -> st)
  in
  ({ moves = Hashtbl.length table; action }, unrecoverable)

(* Packed layering over the explored span system: ranks and chosen moves
   live in [int] arrays indexed by span state, neighbor lists are resolved
   to index arrays once (memoized), and each level scans only the frontier
   — the unranked neighbors of the states ranked at the previous level —
   instead of rescanning the whole span.  The candidate relation is
   symmetric on span states (a one- or two-variable change backwards is
   one forwards), so a state's scan outcome can only change when one of
   its neighbors acquires a rank, which is exactly when the frontier
   re-queues it; the ranks and chosen moves therefore coincide with the
   reference layering.  [workers] > 1 fans the per-candidate scans out
   over OCaml domains; ranks are only written between phases, so the
   result is identical to the sequential scan. *)
let synthesize_recovery_packed ?(step_vars = 1) ~workers ~allowed ~target p
    ts_span =
  Obs.span "synth.recovery"
    ~attrs:[ Attr.int "states" (Ts.num_states ts_span) ]
  @@ fun () ->
  let n = Ts.num_states ts_span in
  let unranked = max_int in
  let rank = Array.make n unranked in
  let move = Array.make n (-1) in
  let neigh = Array.make n None in
  let fill_neighbors i =
    if neigh.(i) = None then begin
      Detcor_robust.Budget.tick ();
      let arr =
        neighbors ~step_vars p (Ts.state ts_span i)
        |> List.filter_map (Ts.index_of ts_span)
        |> Array.of_list
      in
      neigh.(i) <- Some arr
    end
  in
  let neighbors_of i =
    fill_neighbors i;
    match neigh.(i) with Some a -> a | None -> assert false
  in
  (* Chunked fan-out used for both neighbor generation and candidate
     scans.  Distinct iterations touch distinct array slots, so the only
     sharing between domains is read-only — which also makes a lost
     worker recoverable: its chunk reruns on this domain, idempotently.
     A tripped budget still cancels the whole build. *)
  let parallel_iter arr f =
    let len = Array.length arr in
    if workers <= 1 || len < 64 then Array.iter f arr
    else begin
      let chunk = (len + workers - 1) / workers in
      let bounds w = (w * chunk, min len ((w + 1) * chunk)) in
      let spawn w =
        let lo, hi = bounds w in
        Stdlib.Domain.spawn (fun () ->
            try
              Detcor_robust.Failpoint.hit "engine.worker";
              for k = lo to hi - 1 do
                f arr.(k)
              done;
              None
            with e -> Some e)
      in
      let domains = List.init workers spawn in
      let results = List.map Stdlib.Domain.join domains in
      List.iteri
        (fun w result ->
          match result with
          | None -> ()
          | Some
              (Detcor_robust.Error.Detcor_error
                 (Detcor_robust.Error.Resource _) as e) ->
            raise e
          | Some e ->
            Metrics.incr m_worker_retries;
            if Obs.on () then
              Obs.event "synth.worker_retry" ~level:Attr.Warn
                ~attrs:[ Attr.str "exn" (Printexc.to_string e) ];
            let lo, hi = bounds w in
            for k = lo to hi - 1 do
              f arr.(k)
            done)
        results
    end
  in
  let phase = Detcor_robust.Checkpoint.enter ~kind:"synth.recovery" in
  let frontier = ref [] in
  let level = ref 0 in
  (match Detcor_robust.Checkpoint.resume_data phase with
  | Some (Detcor_robust.Checkpoint.Done data) ->
    let r, m = (Marshal.from_string data 0 : int array * int array) in
    Array.blit r 0 rank 0 n;
    Array.blit m 0 move 0 n
  | Some (Detcor_robust.Checkpoint.Midway data) ->
    (* Ranks through level [ld] plus the frontier of states ranked [ld]:
       the layering loop continues from the next level. *)
    let r, m, front, ld =
      (Marshal.from_string data 0 : int array * int array * int array * int)
    in
    Array.blit r 0 rank 0 n;
    Array.blit m 0 move 0 n;
    frontier := Array.to_list front;
    level := ld
  | None ->
    let target_bits = Ts.pred_bitset ts_span target in
    for i = n - 1 downto 0 do
      if Bitset.get target_bits i then begin
        rank.(i) <- 0;
        frontier := i :: !frontier
      end
    done);
  (* Captures fire from [fill_neighbors] ticks, which always run with
     [level] pre-incremented for a level whose rank writes have not yet
     happened — so ranks-through-[level - 1] and the previous frontier
     are a consistent pair. *)
  Detcor_robust.Checkpoint.set_capture phase (fun () ->
      Marshal.to_string
        (Array.copy rank, Array.copy move, Array.of_list !frontier, !level - 1)
        []);
  let queued = Array.make n (-1) in
  let ranked = ref 0 in
  Array.iter (fun r -> if r <> unranked then incr ranked) rank;
  Progress.with_phase "synth.recovery"
    (fun () -> [ ("ranked", !ranked); ("levels", !level) ])
  @@ fun () ->
  while !frontier <> [] do
    incr level;
    let lvl = !level in
    let front = Array.of_list !frontier in
    parallel_iter front fill_neighbors;
    let candidates = ref [] in
    Array.iter
      (fun j ->
        Array.iter
          (fun i ->
            if rank.(i) = unranked && queued.(i) <> lvl then begin
              queued.(i) <- lvl;
              candidates := i :: !candidates
            end)
          (neighbors_of j))
      front;
    let cands = Array.of_list !candidates in
    let chosen = Array.make (Array.length cands) (-1) in
    let scan_slot k =
      let i = cands.(k) in
      fill_neighbors i;
      let nb = neighbors_of i in
      let len = Array.length nb in
      let rec first t =
        if t >= len then -1
        else
          let j = nb.(t) in
          if rank.(j) < lvl && allowed i j then j else first (t + 1)
      in
      chosen.(k) <- first 0
    in
    parallel_iter (Array.init (Array.length cands) (fun k -> k)) scan_slot;
    let newly = ref [] in
    Array.iteri
      (fun k i ->
        if chosen.(k) >= 0 then begin
          rank.(i) <- lvl;
          move.(i) <- chosen.(k);
          incr ranked;
          newly := i :: !newly
        end)
      cands;
    frontier := !newly
  done;
  Detcor_robust.Checkpoint.complete phase (Marshal.to_string (rank, move) []);
  let unrecoverable = ref [] in
  for i = n - 1 downto 0 do
    if rank.(i) = unranked then
      unrecoverable := Ts.state ts_span i :: !unrecoverable
  done;
  let unrecoverable = List.sort State.compare !unrecoverable in
  let moves =
    Array.fold_left (fun acc m -> if m >= 0 then acc + 1 else acc) 0 move
  in
  let guard =
    Pred.make "needs-recovery" (fun st ->
        match Ts.index_of ts_span st with
        | Some i -> move.(i) >= 0
        | None -> false)
  in
  let action =
    Action.deterministic "recovery" guard (fun st ->
        match Ts.index_of ts_span st with
        | Some i when move.(i) >= 0 -> Ts.state ts_span move.(i)
        | _ -> st)
  in
  ({ moves; action }, unrecoverable)

(* ------------------------------------------------------------------ *)
(* Nonmasking                                                          *)
(* ------------------------------------------------------------------ *)

let add_nonmasking ?limit ?(engine = Ts.Auto) ?(workers = 1) ?(step_vars = 1)
    p ~spec ~invariant ~faults =
  Obs.span "synth.add_nonmasking"
    ~attrs:[ Attr.str "program" (Program.name p) ]
  @@ fun () ->
  surface_exhaustion @@ fun () ->
  let init = Tolerance.init_states ?limit ~engine p ~invariant in
  if init = [] then Error Empty_invariant
  else begin
    let ts_span =
      Ts.build ?limit ~engine ~workers (Fault.compose p faults) ~from:init
    in
    let recovery, unrecoverable =
      if Ts.engine_of ts_span = Ts.Packed then
        synthesize_recovery_packed ~step_vars ~workers
          ~allowed:(fun _ _ -> true)
          ~target:invariant p ts_span
      else
        synthesize_recovery ~step_vars
          ~allowed:(fun _ _ -> true)
          ~target:invariant p (Ts.states ts_span)
    in
    match unrecoverable with
    | st :: _ -> Error (Unrecoverable_state st)
    | [] ->
      let program =
        Program.add_actions p [ recovery.action ]
        |> Program.with_name (Fmt.str "nonmasking(%s)" (Program.name p))
      in
      let report =
        Tolerance.check_with ?limit ~engine program ~spec ~invariant ~init
          ~faults ~tol:Spec.Nonmasking
      in
      if Tolerance.verdict report then
        Ok
          {
            program;
            invariant;
            report;
            added_detectors = [];
            recovery_states = recovery.moves;
          }
      else Error (Verification_failed report)
  end

(* ------------------------------------------------------------------ *)
(* Masking                                                             *)
(* ------------------------------------------------------------------ *)

(* Fail-safe restriction first; then recovery from the restricted span
   back to a target predicate (default: the recomputed invariant), where
   every recovery step must itself avoid [mt] — the corrector must not
   break the detector's guarantee (Section 5). *)
let add_masking ?limit ?(engine = Ts.Auto) ?(workers = 1) ?(step_vars = 1)
    ?target p ~spec ~invariant ~faults =
  Obs.span "synth.add_masking" ~attrs:[ Attr.str "program" (Program.name p) ]
  @@ fun () ->
  surface_exhaustion @@ fun () ->
  let sspec = Spec.safety (Spec.smallest_safety_containing spec) in
  let composed = Fault.compose p faults in
  let ts_pf = Ts.full ?limit ~engine ~workers composed in
  let fault_ids = Ts.action_ids_of_names ts_pf (Fault.action_names faults) in
  let restricted, added, inv_states, in_ms_at =
    failsafe_core ts_pf ~sspec ~fault_ids p ~invariant
  in
  if inv_states = [] then Error Empty_invariant
  else begin
    let invariant' = Pred.of_states ~name:"S_masking" inv_states in
    let target = match target with Some t -> t | None -> invariant' in
    let ts_span =
      Ts.build ?limit ~engine ~workers
        (Fault.compose restricted faults)
        ~from:inv_states
    in
    let recovery, unrecoverable =
      if Ts.engine_of ts_span = Ts.Packed then begin
        (* Resolve ms/bad for every span state up front; an allowed step
           then costs two bitset probes and one bad-transition check. *)
        let nspan = Ts.num_states ts_span in
        let bad_span =
          Bitset.of_fn nspan (fun i ->
              Safety.bad_state sspec (Ts.state ts_span i))
        in
        let ms_span =
          Bitset.of_fn nspan (fun i ->
              match Ts.index_of ts_pf (Ts.state ts_span i) with
              | Some gi -> in_ms_at gi
              | None -> false)
        in
        let allowed i j =
          (not (Bitset.get bad_span j))
          && (not (Bitset.get ms_span j))
          && not
               (Safety.bad_transition sspec (Ts.state ts_span i)
                  (Ts.state ts_span j))
        in
        synthesize_recovery_packed ~step_vars ~workers ~allowed ~target
          restricted ts_span
      end
      else
        let allowed s s' = not (make_mt ts_pf ~in_ms_at ~sspec s s') in
        synthesize_recovery ~step_vars ~allowed ~target restricted
          (Ts.states ts_span)
    in
    match unrecoverable with
    | st :: _ -> Error (Unrecoverable_state st)
    | [] ->
      let program =
        Program.add_actions restricted [ recovery.action ]
        |> Program.with_name (Fmt.str "masking(%s)" (Program.name p))
      in
      let report =
        Tolerance.check_with ?limit ~engine program ~spec
          ~invariant:invariant' ~init:inv_states ~faults ~tol:Spec.Masking
      in
      if Tolerance.verdict report then
        Ok
          {
            program;
            invariant = invariant';
            report;
            added_detectors = added;
            recovery_states = recovery.moves;
          }
      else Error (Verification_failed report)
  end
