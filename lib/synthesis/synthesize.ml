(* Automated addition of fault-tolerance components.

   The paper's companion method (its reference [4], later mechanized by
   Kulkarni & Arora as "automating the addition of fault-tolerance")
   transforms a fault-intolerant program into a tolerant one by adding
   detectors and correctors.  On finite-state programs the transformation
   is computable, and this module implements it:

   - [add_failsafe] strengthens each action's guard with (a subset of) its
     weakest detection predicate: the program may execute an action only
     from states where doing so maintains safety and cannot be pushed by
     faults alone into violating it.  The added components are exactly the
     detectors of Section 3.

   - [add_nonmasking] adds a corrector: recovery actions that converge
     from the fault span back to the invariant (Section 4), synthesized by
     backward layering so convergence is by construction cycle-free.

   - [add_masking] composes both: fail-safe restriction first, then
     recovery that itself avoids unsafe transitions (Section 5's thesis
     that masking = detectors + correctors).

   The [ms]/[mt] fixpoints follow the Kulkarni-Arora formulation: [ms] is
   the set of states from which fault actions alone can violate safety;
   [mt] the transitions a safe program must never take.

   Layering alone is not a complete procedure: the ranked recovery action
   converges level by level, but (a) the fail-safe restriction can
   deadlock the whole original invariant (the kill cascade reaches the
   empty set even though a different, specification-equivalent invariant
   exists), (b) a target state the program cannot leave stalls the
   composed program inside the target region, and (c) a recovery step the
   program can immediately undo seeds a fair cycle — the corrector races
   the program under interleaving fairness.  Three repairs close those
   gaps: an invariant-weakening search over the ms-complement (the
   ideal-stabilization view: recovery must re-establish a legitimacy
   predicate, not the original invariant verbatim), a deadlock-target
   repair pass plus an anti-undo veto inside the layering, and a bounded
   counterexample-guided loop that feeds fair-cycle and deadlock
   witnesses from the verification report back into the layering as edge
   bans and forced moves.  Final verification remains the soundness gate
   for all three.

   Like {!Ts}, the synthesizer has two interchangeable paths.  When the
   explored [p [] F] system was built by the packed engine, [ms] is a
   bitset-seeded backward fixpoint over the reverse fault-edge CSR,
   detection guards are per-action bitsets consulted by state index (the
   semantic closure remains only as the fallback for states outside the
   explored product), invariant recomputation is a counter-based deadlock
   pruning worklist, and recovery layering ranks states in [int] arrays
   with a frontier queue whose candidate scans can fan out over OCaml
   domains ([?workers]).  The reference path is the seed implementation,
   kept as the differential oracle; both produce extensionally identical
   programs, invariants and reports. *)

open Detcor_kernel
open Detcor_semantics
open Detcor_spec
open Detcor_core
open Detcor_obs

(* Shared with the engine's counter of the same name (lost workers whose
   chunks were retried sequentially). *)
let m_worker_retries = Metrics.counter "robust.worker_retries"

type failure =
  | Empty_invariant
  | Unrecoverable_state of State.t
  | Verification_failed of Tolerance.report
  | Exhausted of Detcor_robust.Error.resource

type 'a outcome = ('a, failure) result

let pp_failure ppf = function
  | Empty_invariant ->
    Fmt.string ppf "no invariant state survives the fail-safe restriction"
  | Unrecoverable_state st ->
    Fmt.pf ppf "no safe recovery path from %a" State.pp st
  | Verification_failed r ->
    Fmt.pf ppf "synthesized program failed verification:@,%a"
      Tolerance.pp_report r
  | Exhausted r ->
    Fmt.pf ppf "synthesis undecided: %a" Detcor_robust.Error.pp_resource r

type result = {
  program : Program.t;
  invariant : Pred.t;
  report : Tolerance.report; (* verification of the synthesized program *)
  added_detectors : (string * Pred.t) list;
      (* per restricted action: the added detection guard *)
  recovery_states : int; (* states given a recovery transition *)
  repair_iterations : int;
      (* counterexample-guided relayering rounds before verification *)
}

(* A budget trip inside a synthesis fixpoint surfaces as an [Exhausted]
   outcome rather than an escaping exception, mirroring the per-obligation
   [Unknown] of {!Tolerance}: the caller always gets a value stating
   whether synthesis succeeded, failed, or was left undecided. *)
let surface_exhaustion f =
  try f () with
  | Detcor_robust.Error.Detcor_error (Detcor_robust.Error.Resource r) ->
    Error (Exhausted r)
  | Ts.Too_large n ->
    Error
      (Exhausted
         {
           Detcor_robust.Error.kind = Detcor_robust.Error.States;
           spent = n;
           budget = n;
         })

(* ------------------------------------------------------------------ *)
(* Engine dispatch                                                     *)
(* ------------------------------------------------------------------ *)

(* Work crossover for [Auto] dispatch, the synthesis analogue of
   {!Detcor_sim.Syndrome}'s [auto_min_work]: packing pays a fixed cost
   for layout compilation, bitset allocation and CSR reversal that tiny
   instances never amortize.  Below this much estimated work (product
   space of [p [] F] times its action count) an [Auto] request stays on
   the reference path. *)
let auto_min_work = 4096

let resolve_engine engine p faults =
  match engine with
  | Ts.Reference | Ts.Packed | Ts.Sharded -> engine
  | Ts.Auto ->
    let space =
      List.fold_left
        (fun acc (_, d) ->
          if acc >= auto_min_work then acc else acc * Domain.size d)
        1
        (Fault.composed_vars p faults)
    in
    let actions =
      List.length (Program.actions p) + List.length (Fault.actions faults)
    in
    if space < auto_min_work && space * actions < auto_min_work then
      Ts.Reference
    else Ts.Auto

(* ------------------------------------------------------------------ *)
(* ms / mt                                                             *)
(* ------------------------------------------------------------------ *)

(* [ms ts_pf ~fault_ids ~sspec]: the states from which the fault actions
   alone can reach a safety violation — the backward fixpoint over fault
   edges seeded with the bad states and the sources of bad fault
   transitions. *)
let compute_ms ts_pf ~fault_ids ~sspec =
  Obs.span "synth.compute_ms" @@ fun () ->
  let n = Ts.num_states ts_pf in
  let is_fault = Array.make (Ts.num_actions ts_pf) false in
  List.iter (fun i -> is_fault.(i) <- true) fault_ids;
  let in_ms = Array.make n false in
  let fault_preds = Array.make n [] in
  let queue = Queue.create () in
  let add i =
    if not in_ms.(i) then begin
      in_ms.(i) <- true;
      Queue.add i queue
    end
  in
  Ts.iter_edges ts_pf (fun i aid j ->
      if is_fault.(aid) then begin
        fault_preds.(j) <- i :: fault_preds.(j);
        if Safety.bad_transition sspec (Ts.state ts_pf i) (Ts.state ts_pf j)
        then add i
      end);
  for i = 0 to n - 1 do
    if Safety.bad_state sspec (Ts.state ts_pf i) then add i
  done;
  let processed = ref 0 in
  Progress.with_phase "synth.ms"
    (fun () -> [ ("iterations", !processed); ("queue", Queue.length queue) ])
    (fun () ->
      while not (Queue.is_empty queue) do
        Detcor_robust.Budget.tick ();
        let j = Queue.pop queue in
        incr processed;
        List.iter add fault_preds.(j)
      done);
  in_ms

(* Packed [ms]: identical fixpoint, but membership lives in a bitset and
   predecessor iteration runs over the reverse fault-edge CSR instead of
   per-state predecessor lists. *)
let compute_ms_packed ts_pf ~fault_ids ~sspec ~bad =
  Obs.span "synth.compute_ms" @@ fun () ->
  let n = Ts.num_states ts_pf in
  let phase = Detcor_robust.Checkpoint.enter ~kind:"synth.ms" in
  match Detcor_robust.Checkpoint.resume_data phase with
  | Some (Detcor_robust.Checkpoint.Done data) ->
    (* The fixpoint finished in the snapshotted run: its result is the
       whole answer, no reverse CSR needed. *)
    Bitset.of_string n data
  | resumed ->
    let is_fault = Array.make (Ts.num_actions ts_pf) false in
    List.iter (fun i -> is_fault.(i) <- true) fault_ids;
    let rev = Ts.reverse ~keep:(fun aid -> is_fault.(aid)) ts_pf in
    let ms = ref (Bitset.create n) in
    let queue = Queue.create () in
    let add i =
      if not (Bitset.get !ms i) then begin
        Bitset.set !ms i;
        Queue.add i queue
      end
    in
    (match resumed with
    | Some (Detcor_robust.Checkpoint.Midway data) ->
      (* Mid-fixpoint state: membership bits plus the open frontier.
         Seeding is subsumed — every seed is marked or processed. *)
      let bits, frontier = (Marshal.from_string data 0 : string * int array) in
      ms := Bitset.of_string n bits;
      Array.iter (fun i -> Queue.add i queue) frontier
    | _ ->
      (* Seed from bad fault transitions by walking the reverse CSR: it
         holds exactly the fault edges, so the (possibly expensive)
         bad-transition predicate runs on those alone rather than on
         every product edge. *)
      for j = 0 to n - 1 do
        Ts.iter_in rev j (fun _aid i ->
            if
              Safety.bad_transition sspec (Ts.state ts_pf i)
                (Ts.state ts_pf j)
            then add i)
      done;
      for i = 0 to n - 1 do
        if Bitset.get bad i then add i
      done);
    (* The loop's only budget checkpoint is at its top, where the marked
       set and the frontier are a closed pair — exactly what a capture
       may persist. *)
    Detcor_robust.Checkpoint.set_capture phase (fun () ->
        Marshal.to_string
          (Bitset.to_string !ms, Array.of_seq (Queue.to_seq queue))
          []);
    let processed = ref 0 in
    Progress.with_phase "synth.ms"
      (fun () -> [ ("iterations", !processed); ("queue", Queue.length queue) ])
      (fun () ->
        while not (Queue.is_empty queue) do
          Detcor_robust.Budget.tick ();
          let j = Queue.pop queue in
          incr processed;
          Ts.iter_in rev j (fun _ i -> add i)
        done);
    Detcor_robust.Checkpoint.complete phase (Bitset.to_string !ms);
    !ms

(* [mt]: a transition a safe program must never take — already a bad
   transition, or into a bad state, or into [ms].  [in_ms_at] answers ms
   membership by state index, whatever the representation. *)
let make_mt ts_pf ~in_ms_at ~sspec s s' =
  Safety.bad_transition sspec s s'
  || Safety.bad_state sspec s'
  ||
  match Ts.index_of ts_pf s' with Some j -> in_ms_at j | None -> false

(* ------------------------------------------------------------------ *)
(* Fail-safe                                                           *)
(* ------------------------------------------------------------------ *)

(* The detection guard added to action [ac]: executing [ac] here neither
   violates safety nor lands in [ms].  This is the weakest detection
   predicate of [ac] for the [mt]-extended safety specification. *)
let detection_guard ts_pf ~in_ms_at ~sspec ac =
  Pred.make
    (Fmt.str "wdp(%s)" (Action.name ac))
    (fun st ->
      (not (Safety.bad_state sspec st))
      && (match Ts.index_of ts_pf st with
         | Some i -> not (in_ms_at i)
         | None -> true)
      && List.for_all
           (fun st' -> not (make_mt ts_pf ~in_ms_at ~sspec st st'))
           (Action.execute ac st))

(* Packed detection guards: one edge sweep marks, per program action, the
   states from which some [ac]-step is an mt transition; each guard is
   then a single bitset probe.  States outside the explored product (the
   packed engine explored it exhaustively, so only states over a different
   variable set) fall back to the semantic formula above. *)
let detection_guards_packed ts_pf ~sspec ~bad ~ms p =
  let n = Ts.num_states ts_pf in
  let acts = Program.actions p in
  let pos_of = Array.make (Ts.num_actions ts_pf) (-1) in
  List.iteri
    (fun k ac ->
      match Ts.action_id ts_pf (Action.name ac) with
      | Some aid -> pos_of.(aid) <- k
      | None -> ())
    acts;
  let bad_step = Array.init (List.length acts) (fun _ -> Bitset.create n) in
  Ts.iter_edges ts_pf (fun i aid j ->
      let k = pos_of.(aid) in
      if k >= 0
         && (Bitset.get bad j
            || Bitset.get ms j
            || Safety.bad_transition sspec (Ts.state ts_pf i) (Ts.state ts_pf j))
      then Bitset.set bad_step.(k) i);
  let in_ms_at = Bitset.get ms in
  List.mapi
    (fun k ac ->
      let ok =
        Bitset.of_fn n (fun i ->
            (not (Bitset.get bad i))
            && (not (Bitset.get ms i))
            && not (Bitset.get bad_step.(k) i))
      in
      let guard =
        Pred.make
          (Fmt.str "wdp(%s)" (Action.name ac))
          (fun st ->
            match Ts.index_of ts_pf st with
            | Some i -> Bitset.get ok i
            | None ->
              (not (Safety.bad_state sspec st))
              && List.for_all
                   (fun st' -> not (make_mt ts_pf ~in_ms_at ~sspec st st'))
                   (Action.execute ac st))
      in
      (ac, guard))
    acts

let restrict_with guards p =
  let restricted =
    List.map (fun (ac, g) -> (Action.name ac, g, Action.restrict g ac)) guards
  in
  let program =
    Program.make
      ~name:(Fmt.str "failsafe(%s)" (Program.name p))
      ~vars:(Program.var_decls p)
      ~actions:(List.map (fun (_, _, ac) -> ac) restricted)
  in
  let added = List.map (fun (name, g, _) -> (name, g)) restricted in
  (program, added)

(* Recompute the invariant: start from a candidate set, then iteratively
   drop states that the restriction newly deadlocked (states that could
   move in [p] but cannot in the restricted program within the shrinking
   set).  The candidate is the original invariant minus [ms] for plain
   recomputation, or the whole ms-complement for the weakening search. *)
let recompute_invariant ~candidate p restricted =
  let module SS = Set.Make (State) in
  let initial = List.filter candidate (Program.states p) in
  let rec fix set =
    let keep st =
      let originally_live = not (Program.deadlocked p st) in
      if not originally_live then true
      else
        List.exists
          (fun (_, st') -> SS.mem st' set)
          (Program.successors restricted st)
    in
    let set' = SS.filter keep set in
    if SS.cardinal set' = SS.cardinal set then set else fix set'
  in
  let final = fix (SS.of_list initial) in
  SS.elements final

(* Packed recomputation: the same greatest fixpoint, as a deadlock-pruning
   worklist.  Candidate states stream through the program's layout in rank
   (= [State.compare]) order; each live state counts its restricted
   successors inside the candidate set, and dies when the count reaches
   zero.  Per-occurrence reverse lists make each pruning step O(in-degree)
   instead of a whole-set rescan. *)
let recompute_invariant_packed ~candidate ~layout p restricted =
  let acc = ref [] in
  Layout.iter_scratch layout (fun sc ->
      let st = State.scratch_view sc in
      if candidate st then acc := State.scratch_copy sc :: !acc);
  let states = Array.of_list (List.rev !acc) in
  let n = Array.length states in
  let local_of_rank = Hashtbl.create (max 16 (2 * n)) in
  Array.iteri
    (fun k st -> Hashtbl.replace local_of_rank (Layout.pack layout st) k)
    states;
  let always_keep = Array.make n false in
  let succ = Array.make n [||] in
  Array.iteri
    (fun k st ->
      Detcor_robust.Budget.tick ();
      if Program.deadlocked p st then always_keep.(k) <- true
      else
        succ.(k) <-
          Program.successors restricted st
          |> List.filter_map (fun (_, st') ->
                 match Layout.pack_opt layout st' with
                 | Some r -> Hashtbl.find_opt local_of_rank r
                 | None -> None)
          |> Array.of_list)
    states;
  let cnt = Array.make n 0 in
  let preds = Array.make n [] in
  for k = 0 to n - 1 do
    if not always_keep.(k) then
      Array.iter
        (fun j ->
          cnt.(k) <- cnt.(k) + 1;
          preds.(j) <- k :: preds.(j))
        succ.(k)
  done;
  let alive = Array.make n true in
  let queue = Queue.create () in
  let killed = ref 0 in
  let kill k =
    if alive.(k) then begin
      alive.(k) <- false;
      incr killed;
      Queue.add k queue
    end
  in
  for k = 0 to n - 1 do
    if (not always_keep.(k)) && cnt.(k) = 0 then kill k
  done;
  (* The kill cascade is where closure under computation is enforced:
     heartbeats report how much of the candidate invariant has been
     discarded so far. *)
  Progress.with_phase "synth.prune"
    (fun () -> [ ("killed", !killed); ("states", n) ])
    (fun () ->
      while not (Queue.is_empty queue) do
        Detcor_robust.Budget.tick ();
        let j = Queue.pop queue in
        List.iter
          (fun k ->
            if alive.(k) && not always_keep.(k) then begin
              cnt.(k) <- cnt.(k) - 1;
              if cnt.(k) = 0 then kill k
            end)
          preds.(j)
      done);
  let out = ref [] in
  for k = n - 1 downto 0 do
    if alive.(k) then out := states.(k) :: !out
  done;
  !out

(* The fail-safe front end shared by [add_failsafe] and [add_masking]:
   ms, the restricted program, and the recomputed invariant — packed when
   the composed system was built packed (and the program's own layout
   compiles), reference otherwise.  Returns the index-level ms oracle for
   the masking path's recovery restriction, and whether the invariant had
   to be weakened.

   When the recomputation kill-cascades to the empty set, the
   invariant-weakening search reseeds the same greatest fixpoint from the
   whole ms-complement (every non-bad state outside [ms]) instead of from
   the original invariant: the largest set the restricted program stays
   live in while still excluding [ms].  The weakened invariant is not in
   general a subset of the original one — the ideal-stabilization view,
   where recovery re-establishes a specification-equivalent legitimacy
   predicate rather than the original invariant verbatim; the final
   verification of the synthesized program remains the soundness gate. *)
let failsafe_core ts_pf ~sspec ~fault_ids p ~invariant =
  let layout =
    if Ts.engine_of ts_pf = Ts.Packed then Layout.of_program p else None
  in
  match layout with
  | Some layout ->
    let n = Ts.num_states ts_pf in
    let bad =
      Bitset.of_fn n (fun i -> Safety.bad_state sspec (Ts.state ts_pf i))
    in
    let ms = compute_ms_packed ts_pf ~fault_ids ~sspec ~bad in
    let in_ms_at = Bitset.get ms in
    let not_ms st =
      match Ts.index_of ts_pf st with
      | Some i -> not (in_ms_at i)
      | None -> true
    in
    let guards = detection_guards_packed ts_pf ~sspec ~bad ~ms p in
    let restricted, added = restrict_with guards p in
    let inv_states =
      recompute_invariant_packed
        ~candidate:(fun st -> Pred.holds invariant st && not_ms st)
        ~layout p restricted
    in
    let inv_states, weakened =
      if inv_states <> [] then (inv_states, false)
      else
        ( recompute_invariant_packed
            ~candidate:(fun st ->
              (not (Safety.bad_state sspec st)) && not_ms st)
            ~layout p restricted,
          true )
    in
    (restricted, added, inv_states, in_ms_at, weakened)
  | None ->
    let in_ms = compute_ms ts_pf ~fault_ids ~sspec in
    let in_ms_at i = in_ms.(i) in
    let not_ms st =
      match Ts.index_of ts_pf st with
      | Some i -> not (in_ms_at i)
      | None -> true
    in
    let guards =
      List.map
        (fun ac -> (ac, detection_guard ts_pf ~in_ms_at ~sspec ac))
        (Program.actions p)
    in
    let restricted, added = restrict_with guards p in
    let inv_states =
      recompute_invariant
        ~candidate:(fun st -> Pred.holds invariant st && not_ms st)
        p restricted
    in
    let inv_states, weakened =
      if inv_states <> [] then (inv_states, false)
      else
        ( recompute_invariant
            ~candidate:(fun st ->
              (not (Safety.bad_state sspec st)) && not_ms st)
            p restricted,
          true )
    in
    (restricted, added, inv_states, in_ms_at, weakened)

let add_failsafe ?limit ?(engine = Ts.Auto) ?(workers = 1) p ~spec ~invariant
    ~faults =
  Obs.span "synth.add_failsafe" ~attrs:[ Attr.str "program" (Program.name p) ]
  @@ fun () ->
  surface_exhaustion @@ fun () ->
  let engine = resolve_engine engine p faults in
  let sspec = Spec.safety (Spec.smallest_safety_containing spec) in
  let composed = Fault.compose p faults in
  let ts_pf = Ts.full ?limit ~engine ~workers composed in
  let fault_ids = Ts.action_ids_of_names ts_pf (Fault.action_names faults) in
  let restricted, added, inv_states, _, weakened =
    failsafe_core ts_pf ~sspec ~fault_ids p ~invariant
  in
  if inv_states = [] then Error Empty_invariant
  else begin
    let invariant' =
      Pred.of_states
        ~name:(if weakened then "S_failsafe_weakened" else "S_failsafe")
        inv_states
    in
    let report =
      Tolerance.check_with ?limit ~engine restricted ~spec
        ~invariant:invariant' ~init:inv_states ~faults ~tol:Spec.Failsafe
    in
    if Tolerance.verdict report then
      Ok
        {
          program = restricted;
          invariant = invariant';
          report;
          added_detectors = added;
          recovery_states = 0;
          repair_iterations = 0;
        }
    else Error (Verification_failed report)
  end

(* ------------------------------------------------------------------ *)
(* Recovery synthesis (the corrector).                                 *)
(* ------------------------------------------------------------------ *)

module State_tbl = Hashtbl.Make (struct
  type t = State.t

  let equal = State.equal
  let hash = State.hash
end)

(* The corrector's own detection predicate: the span states from which the
   program alone, under weak fairness, is NOT guaranteed to reach [target]
   — some maximal fair program-only computation stays in ¬target forever
   (ending in a deadlock or cycling through a fair SCC).  Ranked recovery
   is gated to exactly these states: where the program already converges,
   an added recovery action is not a corrector but a competitor — it races
   the program's own convergence under interleaving fairness and seeds
   fair cycles the repair loop then has to ban one by one.  The
   distributed-reset protocol is the extreme case: it is its own corrector
   (every span state self-converges), so the synthesized recovery is
   empty.

   Computed over the {!Ts} API, so one implementation serves both engines;
   the result is a fixpoint-defined set, hence extensionally identical
   whichever engine built [ts_p]. *)
let needs_recovery_tbl ?limit ~engine ~workers p ~target states =
  Obs.span "synth.needs_recovery" @@ fun () ->
  let ts_p = Ts.build ?limit ~engine ~workers p ~from:states in
  let n = Ts.num_states ts_p in
  let not_q = Array.init n (fun i -> not (Ts.holds_at ts_p target i)) in
  let seeds = ref [] in
  for i = 0 to n - 1 do
    if not_q.(i) && Ts.deadlocked ts_p i then seeds := i :: !seeds
  done;
  List.iter
    (fun (scc : Graph.scc) -> seeds := scc.Graph.members @ !seeds)
    (Fairness.fair_sccs ~mask:(fun i -> not_q.(i)) ts_p);
  let tbl = Hashtbl.create 64 in
  if !seeds <> [] then begin
    let preds = Array.make n [] in
    Ts.iter_edges ts_p (fun i _ j ->
        if not_q.(i) && not_q.(j) then preds.(j) <- i :: preds.(j));
    let seen = Array.make n false in
    let queue = Queue.create () in
    let add i =
      if not seen.(i) then begin
        seen.(i) <- true;
        Queue.add i queue
      end
    in
    List.iter add !seeds;
    while not (Queue.is_empty queue) do
      Detcor_robust.Budget.tick ();
      let j = Queue.pop queue in
      Hashtbl.replace tbl (State.to_string (Ts.state ts_p j)) ();
      List.iter add preds.(j)
    done
  end;
  tbl

(* Rank-0 seed for the layering: the target itself plus every
   self-convergent state. *)
let gated_rank0 ~target needs =
  if Hashtbl.length needs = 0 then Pred.true_
  else
    Pred.make "target-or-self-convergent" (fun st ->
        Pred.holds target st || not (Hashtbl.mem needs (State.to_string st)))

(* Candidate recovery steps change at most [step_vars] variables — local
   corrections rather than global resets.  Backward layering from the
   target assigns each state a rank; the synthesized recovery action moves
   to a strictly smaller rank, so convergence is cycle-free by
   construction.  The list order is the tie-breaking order of the layering
   (first qualifying candidate wins), so it must be deterministic; the
   two-variable composition is deduplicated because a second step over the
   same variable re-emits one-variable states (or the origin itself), and
   different step orders reach the same state twice. *)
let neighbors ~step_vars p st =
  let decls = Program.var_decls p in
  let single_from base =
    List.concat_map
      (fun (x, d) ->
        List.filter_map
          (fun value ->
            if Value.equal (State.get base x) value then None
            else Some (State.set base x value))
          (Domain.values d))
      decls
  in
  let single = single_from st in
  if step_vars <= 1 then single
  else begin
    let seen = State_tbl.create 64 in
    State_tbl.replace seen st ();
    let emit acc st' =
      if State_tbl.mem seen st' then acc
      else begin
        State_tbl.replace seen st' ();
        st' :: acc
      end
    in
    let acc = List.fold_left emit [] single in
    let acc =
      List.fold_left
        (fun acc st1 -> List.fold_left emit acc (single_from st1))
        acc single
    in
    List.rev acc
  end

type recovery = {
  moves : int; (* states given a recovery transition *)
  action : Action.t;
  move_to : State.t -> State.t option;
      (* the chosen recovery step from a state, if any — the repair loop
         reads it to turn cycle witnesses into edge bans *)
}

(* [synthesize_recovery ~allowed ~target states]: rank the given states by
   backward BFS from the target set over allowed candidate steps, then
   build the recovery action "move one layer closer".  Returns the states
   that cannot reach the target (minimal first) and whether the anti-undo
   veto rejected any otherwise-qualifying candidate.

   [banned] is the repair loop's hard edge veto.  [use_undo] additionally
   vetoes any step [s -> t] the program can immediately undo (the program
   has the span transition [t -> s]): such a step is the seed of a fair
   cycle in which the corrector races the program forever.  After
   ranking, the deadlock-target repair pass gives every target state the
   program cannot leave (and every state in [forced], fed back from
   deadlock witnesses) a move to another target state — preferring
   targets the program can leave; a move between two stalled targets is a
   last resort kept acyclic by the repair loop's bans.  Those moves start
   inside the target region, i.e. in fault-free behavior, so they must
   satisfy [repair_allowed] (defaults to [allowed]) even where ranked
   recovery is unrestricted. *)
let synthesize_recovery ?(step_vars = 1) ?(banned = fun _ _ -> false)
    ?(use_undo = false) ?(forced = fun _ -> false) ?repair_allowed ?rank0
    ~allowed ~target p states =
  Obs.span "synth.recovery" ~attrs:[ Attr.int "states" (List.length states) ]
  @@ fun () ->
  let rank0 = match rank0 with Some r -> r | None -> target in
  let rank = Hashtbl.create 256 in
  let key st = State.to_string st in
  let rank0_states = List.filter (Pred.holds rank0) states in
  List.iter (fun st -> Hashtbl.replace rank (key st) 0) rank0_states;
  let state_set = Hashtbl.create 256 in
  List.iter (fun st -> Hashtbl.replace state_set (key st) st) states;
  (* The program's own in-span steps, for the anti-undo veto: [s -> t] is
     undone when [t -> s] is a program transition.  Every layering source
     and target is a span state, so the semantic successor set coincides
     with the span's program edges. *)
  let undo_fired = ref false in
  let succ_keys = Hashtbl.create (if use_undo then 256 else 1) in
  if use_undo then
    List.iter
      (fun st ->
        Detcor_robust.Budget.tick ();
        Hashtbl.replace succ_keys (key st)
          (List.map (fun (_, st') -> key st') (Program.successors p st)))
      states;
  let undone k k' =
    use_undo
    &&
    match Hashtbl.find_opt succ_keys k' with
    | Some ks -> List.mem k ks
    | None -> false
  in
  (* Candidate steps do not depend on the level: generate each state's
     in-set neighbor list (with its keys) once, not once per level. *)
  let neighbor_lists = Hashtbl.create 256 in
  List.iter
    (fun st ->
      Detcor_robust.Budget.tick ();
      Hashtbl.replace neighbor_lists (key st)
        (List.filter_map
           (fun st' ->
             let k' = key st' in
             if Hashtbl.mem state_set k' then Some (k', st') else None)
           (neighbors ~step_vars p st)))
    states;
  (* Backward BFS: repeatedly find unranked states with a one-step move to
     a ranked state. *)
  let table = Hashtbl.create 64 in
  let changed = ref true in
  let level = ref 0 in
  while !changed do
    changed := false;
    incr level;
    let additions = ref [] in
    Hashtbl.iter
      (fun k st ->
        Detcor_robust.Budget.tick ();
        if not (Hashtbl.mem rank k) then begin
          let candidate =
            List.find_opt
              (fun (k', st') ->
                (match Hashtbl.find_opt rank k' with
                | Some r -> r < !level
                | None -> false)
                && allowed st st'
                && (not (banned st st'))
                &&
                if undone k k' then begin
                  undo_fired := true;
                  false
                end
                else true)
              (Hashtbl.find neighbor_lists k)
          in
          match candidate with
          | Some (_, st') -> additions := (k, st') :: !additions
          | None -> ()
        end)
      state_set;
    List.iter
      (fun (k, st') ->
        Hashtbl.replace rank k !level;
        Hashtbl.replace table k st';
        changed := true)
      !additions
  done;
  (* Deadlock-target repair (see the function comment).  Both passes make
     per-state decisions that depend only on the precomputed [stalled]
     set, so the iteration order is immaterial and the packed layering
     reaches the same moves. *)
  let repair_allowed =
    match repair_allowed with Some f -> f | None -> allowed
  in
  let stalled = Hashtbl.create 16 in
  Hashtbl.iter
    (fun k st ->
      if
        Hashtbl.find_opt rank k = Some 0
        && (not (Hashtbl.mem table k))
        && (forced st || Program.deadlocked p st)
      then Hashtbl.replace stalled k st)
    state_set;
  let repair_pass ~relax =
    Hashtbl.iter
      (fun k st ->
        if not (Hashtbl.mem table k) then begin
          Detcor_robust.Budget.tick ();
          let pick =
            List.find_opt
              (fun (k', st') ->
                (* Destinations must satisfy the real target (not merely
                   rank 0): a repaired move starts inside the target
                   region, and a step to a self-convergent state outside
                   it would break the invariant's closure. *)
                Pred.holds target st'
                && (relax || not (Hashtbl.mem stalled k'))
                && repair_allowed st st'
                && (not (banned st st'))
                &&
                if undone k k' then begin
                  undo_fired := true;
                  false
                end
                else true)
              (Hashtbl.find neighbor_lists k)
          in
          match pick with
          | Some (_, st') -> Hashtbl.replace table k st'
          | None -> ()
        end)
      stalled
  in
  repair_pass ~relax:false;
  repair_pass ~relax:true;
  let unrecoverable =
    Hashtbl.fold
      (fun k st acc -> if Hashtbl.mem rank k then acc else st :: acc)
      state_set []
    |> List.sort State.compare
  in
  let guard =
    Pred.make "needs-recovery" (fun st -> Hashtbl.mem table (key st))
  in
  let action =
    Action.deterministic "recovery" guard (fun st ->
        match Hashtbl.find_opt table (key st) with
        | Some st' -> st'
        | None -> st)
  in
  let move_to st = Hashtbl.find_opt table (key st) in
  ({ moves = Hashtbl.length table; action; move_to }, unrecoverable, !undo_fired)

(* Packed layering over the explored span system: ranks and chosen moves
   live in [int] arrays indexed by span state, neighbor lists are resolved
   to index arrays once (memoized), and each level scans only the frontier
   — the unranked neighbors of the states ranked at the previous level —
   instead of rescanning the whole span.  The candidate relation is
   symmetric on span states (a one- or two-variable change backwards is
   one forwards), so a state's scan outcome can only change when one of
   its neighbors acquires a rank, which is exactly when the frontier
   re-queues it; the ranks and chosen moves therefore coincide with the
   reference layering.  The veto structure ([banned], anti-undo, the
   repair passes) mirrors the reference layering exactly — including
   which candidates each veto is consulted for, so the undo-fired signal
   agrees too.  [workers] > 1 fans the per-candidate scans out over OCaml
   domains; ranks are only written between phases, so the result is
   identical to the sequential scan. *)
let synthesize_recovery_packed ?(step_vars = 1) ?(banned = fun _ _ -> false)
    ?(use_undo = false) ?(forced = fun _ -> false) ?repair_allowed ?rank0
    ~workers ~fault_ids ~allowed ~target p ts_span =
  Obs.span "synth.recovery"
    ~attrs:[ Attr.int "states" (Ts.num_states ts_span) ]
  @@ fun () ->
  let rank0 = match rank0 with Some r -> r | None -> target in
  let n = Ts.num_states ts_span in
  let unranked = max_int in
  let rank = Array.make n unranked in
  let move = Array.make n (-1) in
  let neigh = Array.make n None in
  let undo_fired = Atomic.make false in
  (* Program (non-fault) span edges, keyed [src * n + dst]: the span is
     closed under the composed program, so these are exactly the
     program's successor pairs the reference layering computes. *)
  let undo_tbl =
    if not use_undo then Hashtbl.create 1
    else begin
      let is_fault = Array.make (Ts.num_actions ts_span) false in
      List.iter (fun a -> is_fault.(a) <- true) fault_ids;
      let t = Hashtbl.create (max 64 (4 * n)) in
      Ts.iter_edges ts_span (fun i aid j ->
          if not is_fault.(aid) then Hashtbl.replace t ((i * n) + j) ());
      t
    end
  in
  let undone i j = use_undo && Hashtbl.mem undo_tbl ((j * n) + i) in
  let banned_ix i j = banned (Ts.state ts_span i) (Ts.state ts_span j) in
  let fill_neighbors i =
    if neigh.(i) = None then begin
      Detcor_robust.Budget.tick ();
      let arr =
        neighbors ~step_vars p (Ts.state ts_span i)
        |> List.filter_map (Ts.index_of ts_span)
        |> Array.of_list
      in
      neigh.(i) <- Some arr
    end
  in
  let neighbors_of i =
    fill_neighbors i;
    match neigh.(i) with Some a -> a | None -> assert false
  in
  (* Chunked fan-out used for both neighbor generation and candidate
     scans.  Distinct iterations touch distinct array slots, so the only
     sharing between domains is read-only — which also makes a lost
     worker recoverable: its chunk reruns on this domain, idempotently.
     A tripped budget still cancels the whole build. *)
  let parallel_iter arr f =
    let len = Array.length arr in
    if workers <= 1 || len < 64 then Array.iter f arr
    else begin
      let chunk = (len + workers - 1) / workers in
      let bounds w = (w * chunk, min len ((w + 1) * chunk)) in
      let spawn w =
        let lo, hi = bounds w in
        Stdlib.Domain.spawn (fun () ->
            try
              Detcor_robust.Failpoint.hit "engine.worker";
              for k = lo to hi - 1 do
                f arr.(k)
              done;
              None
            with e -> Some e)
      in
      let domains = List.init workers spawn in
      let results = List.map Stdlib.Domain.join domains in
      List.iteri
        (fun w result ->
          match result with
          | None -> ()
          | Some
              (Detcor_robust.Error.Detcor_error
                 (Detcor_robust.Error.Resource _) as e) ->
            raise e
          | Some e ->
            Metrics.incr m_worker_retries;
            if Obs.on () then
              Obs.event "synth.worker_retry" ~level:Attr.Warn
                ~attrs:[ Attr.str "exn" (Printexc.to_string e) ];
            let lo, hi = bounds w in
            for k = lo to hi - 1 do
              f arr.(k)
            done)
        results
    end
  in
  let phase = Detcor_robust.Checkpoint.enter ~kind:"synth.recovery" in
  let frontier = ref [] in
  let level = ref 0 in
  (match Detcor_robust.Checkpoint.resume_data phase with
  | Some (Detcor_robust.Checkpoint.Done data) ->
    let r, m = (Marshal.from_string data 0 : int array * int array) in
    Array.blit r 0 rank 0 n;
    Array.blit m 0 move 0 n
  | Some (Detcor_robust.Checkpoint.Midway data) ->
    (* Ranks through level [ld] plus the frontier of states ranked [ld]:
       the layering loop continues from the next level. *)
    let r, m, front, ld =
      (Marshal.from_string data 0 : int array * int array * int array * int)
    in
    Array.blit r 0 rank 0 n;
    Array.blit m 0 move 0 n;
    frontier := Array.to_list front;
    level := ld
  | None ->
    let rank0_bits = Ts.pred_bitset ts_span rank0 in
    for i = n - 1 downto 0 do
      if Bitset.get rank0_bits i then begin
        rank.(i) <- 0;
        frontier := i :: !frontier
      end
    done);
  (* Captures fire from [fill_neighbors] ticks, which always run with
     [level] pre-incremented for a level whose rank writes have not yet
     happened — so ranks-through-[level - 1] and the previous frontier
     are a consistent pair. *)
  Detcor_robust.Checkpoint.set_capture phase (fun () ->
      Marshal.to_string
        (Array.copy rank, Array.copy move, Array.of_list !frontier, !level - 1)
        []);
  let queued = Array.make n (-1) in
  let ranked = ref 0 in
  Array.iter (fun r -> if r <> unranked then incr ranked) rank;
  (Progress.with_phase "synth.recovery"
     (fun () -> [ ("ranked", !ranked); ("levels", !level) ])
   @@ fun () ->
   while !frontier <> [] do
     incr level;
     let lvl = !level in
     let front = Array.of_list !frontier in
     parallel_iter front fill_neighbors;
     let candidates = ref [] in
     Array.iter
       (fun j ->
         Array.iter
           (fun i ->
             if rank.(i) = unranked && queued.(i) <> lvl then begin
               queued.(i) <- lvl;
               candidates := i :: !candidates
             end)
           (neighbors_of j))
       front;
     let cands = Array.of_list !candidates in
     let chosen = Array.make (Array.length cands) (-1) in
     let scan_slot k =
       let i = cands.(k) in
       fill_neighbors i;
       let nb = neighbors_of i in
       let len = Array.length nb in
       let rec first t =
         if t >= len then -1
         else
           let j = nb.(t) in
           if rank.(j) < lvl && allowed i j && not (banned_ix i j) then
             if undone i j then begin
               Atomic.set undo_fired true;
               first (t + 1)
             end
             else j
           else first (t + 1)
       in
       chosen.(k) <- first 0
     in
     parallel_iter (Array.init (Array.length cands) (fun k -> k)) scan_slot;
     let newly = ref [] in
     Array.iteri
       (fun k i ->
         if chosen.(k) >= 0 then begin
           rank.(i) <- lvl;
           move.(i) <- chosen.(k);
           incr ranked;
           newly := i :: !newly
         end)
       cands;
     frontier := !newly
   done);
  Detcor_robust.Checkpoint.complete phase (Marshal.to_string (rank, move) []);
  (* Deadlock-target repair, mirroring the reference layering: the
     completed checkpoint holds the pure ranking, and the repair reruns
     deterministically on resume. *)
  let repair_allowed_ix =
    match repair_allowed with Some f -> f | None -> allowed
  in
  let stalled = Array.make n false in
  for i = 0 to n - 1 do
    if rank.(i) = 0 && move.(i) < 0 then begin
      Detcor_robust.Budget.tick ();
      let st = Ts.state ts_span i in
      if forced st || Program.deadlocked p st then stalled.(i) <- true
    end
  done;
  let target_bits = Ts.pred_bitset ts_span target in
  let repair_pass ~relax =
    for i = 0 to n - 1 do
      if stalled.(i) && move.(i) < 0 then begin
        fill_neighbors i;
        let nb = neighbors_of i in
        let len = Array.length nb in
        let rec first t =
          if t >= len then -1
          else
            let j = nb.(t) in
            (* Destinations must satisfy the real target, mirroring the
               reference repair pass: rank 0 also holds self-convergent
               states outside the invariant's closure. *)
            if
              Bitset.get target_bits j
              && (relax || not stalled.(j))
              && repair_allowed_ix i j
              && not (banned_ix i j)
            then
              if undone i j then begin
                Atomic.set undo_fired true;
                first (t + 1)
              end
              else j
            else first (t + 1)
        in
        let j = first 0 in
        if j >= 0 then move.(i) <- j
      end
    done
  in
  repair_pass ~relax:false;
  repair_pass ~relax:true;
  let unrecoverable = ref [] in
  for i = n - 1 downto 0 do
    if rank.(i) = unranked then
      unrecoverable := Ts.state ts_span i :: !unrecoverable
  done;
  let unrecoverable = List.sort State.compare !unrecoverable in
  let moves =
    Array.fold_left (fun acc m -> if m >= 0 then acc + 1 else acc) 0 move
  in
  let guard =
    Pred.make "needs-recovery" (fun st ->
        match Ts.index_of ts_span st with
        | Some i -> move.(i) >= 0
        | None -> false)
  in
  let action =
    Action.deterministic "recovery" guard (fun st ->
        match Ts.index_of ts_span st with
        | Some i when move.(i) >= 0 -> Ts.state ts_span move.(i)
        | _ -> st)
  in
  let move_to st =
    match Ts.index_of ts_span st with
    | Some i when move.(i) >= 0 -> Some (Ts.state ts_span move.(i))
    | _ -> None
  in
  ( { moves; action; move_to },
    unrecoverable,
    Atomic.get undo_fired )

(* ------------------------------------------------------------------ *)
(* Counterexample-guided repair                                        *)
(* ------------------------------------------------------------------ *)

(* Bound on the relayering rounds driven by verification witnesses.
   Every round adds at least one new edge ban or forced move, so the
   loop terminates on its own on any finite span; the cap bounds
   pathological instances, and every round still runs under the ambient
   {!Detcor_robust.Budget}. *)
let max_repair_rounds = 16

let skey = State.to_string

(* One synthesis attempt: layer with the anti-undo veto first; if that
   leaves unrecoverable states and the veto actually rejected a
   candidate, relax it (convergence through an undoable step beats no
   convergence — the repair loop can still ban the step if it does race);
   if the span is still not fully ranked with one-variable moves,
   escalate to two-variable moves.  [synth] is the engine-specific
   layering closure; the ladder is engine-independent, so both engines
   walk the same attempt sequence. *)
let attempt_ladder ~step_vars ~synth =
  let attempts =
    [ (true, step_vars); (false, step_vars) ]
    @ (if step_vars <= 1 then [ (true, 2); (false, 2) ] else [])
  in
  let rec go last = function
    | [] -> (
      match last with Some (st :: _) -> Error st | _ -> assert false)
    | (use_undo, sv) :: rest -> (
      let recovery, unrecoverable, undo_fired =
        synth ~use_undo ~step_vars:sv
      in
      match unrecoverable with
      | [] -> Ok recovery
      | _ :: _ ->
        (* Dropping the veto can only change the outcome if the veto
           rejected something. *)
        let rest =
          if use_undo && not undo_fired then
            List.filter (fun (u, v) -> u || v <> sv) rest
          else rest
        in
        go (Some unrecoverable) rest)
  in
  go None attempts

(* Turn a failed verification into a layering repair.  A fair-cycle
   witness (the corrector races the program) bans the recovery edges
   inside the cycle, so the next layering routes around it; a deadlock
   witness at a state without a recovery move forces the repair pass to
   give it one.  Returns false when the report holds no witness the
   layering can act on — the failure is then terminal. *)
let apply_witness (report : Tolerance.report) ~move_to ~bans ~forces =
  let progress = ref false in
  List.iter
    (fun (it : Tolerance.item) ->
      if not !progress then
        match it.Tolerance.outcome with
        | Check.Fails (Check.Fair_cycle states) ->
          let in_cycle = Hashtbl.create 16 in
          List.iter (fun s -> Hashtbl.replace in_cycle (skey s) ()) states;
          List.iter
            (fun s ->
              match move_to s with
              | Some t when Hashtbl.mem in_cycle (skey t) ->
                let k = (skey s, skey t) in
                if not (Hashtbl.mem bans k) then begin
                  Hashtbl.replace bans k ();
                  progress := true
                end
              | _ -> ())
            states
        | Check.Fails (Check.Deadlock st) -> (
          match move_to st with
          | Some _ -> ()
          | None ->
            let k = skey st in
            if not (Hashtbl.mem forces k) then begin
              Hashtbl.replace forces k ();
              progress := true
            end)
        | _ -> ())
    report.Tolerance.items;
  !progress

(* The repair loop shared by nonmasking and masking addition: layer,
   verify, and while the verdict is negative feed the witness back into
   the layering as bans and forced moves. *)
let repair_loop ~step_vars ~synth ~build ~verify ~bans ~forces =
  let rec go round =
    Detcor_robust.Budget.tick ();
    match attempt_ladder ~step_vars ~synth with
    | Error st -> Error (Unrecoverable_state st)
    | Ok recovery -> (
      let program = build recovery in
      let report = verify program in
      if Tolerance.verdict report then Ok (recovery, program, report, round)
      else if
        round >= max_repair_rounds
        || not (apply_witness report ~move_to:recovery.move_to ~bans ~forces)
      then Error (Verification_failed report)
      else begin
        if Obs.on () then
          Obs.event "synth.repair_round"
            ~attrs:
              [
                Attr.int "round" (round + 1);
                Attr.int "bans" (Hashtbl.length bans);
                Attr.int "forces" (Hashtbl.length forces);
              ];
        go (round + 1)
      end)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Nonmasking                                                          *)
(* ------------------------------------------------------------------ *)

let add_nonmasking ?limit ?(engine = Ts.Auto) ?(workers = 1) ?(step_vars = 1)
    p ~spec ~invariant ~faults =
  Obs.span "synth.add_nonmasking"
    ~attrs:[ Attr.str "program" (Program.name p) ]
  @@ fun () ->
  surface_exhaustion @@ fun () ->
  let engine = resolve_engine engine p faults in
  let init = Tolerance.init_states ?limit ~engine p ~invariant in
  if init = [] then Error Empty_invariant
  else begin
    let sspec = Spec.safety (Spec.smallest_safety_containing spec) in
    let ts_span =
      Ts.build ?limit ~engine ~workers (Fault.compose p faults) ~from:init
    in
    let bans = Hashtbl.create 8 in
    let forces = Hashtbl.create 8 in
    let banned s t =
      Hashtbl.length bans > 0 && Hashtbl.mem bans (skey s, skey t)
    in
    let forced st =
      Hashtbl.length forces > 0 && Hashtbl.mem forces (skey st)
    in
    (* Ranked nonmasking recovery is unrestricted (the paper's corrector
       may violate safety on the way back), but repaired moves start from
       target states — fault-free behavior — so they must respect the
       safety specification. *)
    let repair_ok s t =
      (not (Safety.bad_state sspec t))
      && not (Safety.bad_transition sspec s t)
    in
    let needs =
      needs_recovery_tbl ?limit ~engine ~workers p ~target:invariant
        (Ts.states ts_span)
    in
    let rank0 = gated_rank0 ~target:invariant needs in
    let synth =
      if Ts.engine_of ts_span = Ts.Packed then begin
        let fault_ids =
          Ts.action_ids_of_names ts_span (Fault.action_names faults)
        in
        let repair_ok_ix i j =
          repair_ok (Ts.state ts_span i) (Ts.state ts_span j)
        in
        fun ~use_undo ~step_vars ->
          synthesize_recovery_packed ~step_vars ~banned ~use_undo ~forced
            ~repair_allowed:repair_ok_ix ~rank0 ~workers ~fault_ids
            ~allowed:(fun _ _ -> true)
            ~target:invariant p ts_span
      end
      else
        fun ~use_undo ~step_vars ->
          synthesize_recovery ~step_vars ~banned ~use_undo ~forced
            ~repair_allowed:repair_ok ~rank0
            ~allowed:(fun _ _ -> true)
            ~target:invariant p (Ts.states ts_span)
    in
    let build recovery =
      Program.add_actions p [ recovery.action ]
      |> Program.with_name (Fmt.str "nonmasking(%s)" (Program.name p))
    in
    let verify program =
      Tolerance.check_with ?limit ~engine program ~spec ~invariant ~init
        ~faults ~tol:Spec.Nonmasking
    in
    match repair_loop ~step_vars ~synth ~build ~verify ~bans ~forces with
    | Error f -> Error f
    | Ok (recovery, program, report, rounds) ->
      Ok
        {
          program;
          invariant;
          report;
          added_detectors = [];
          recovery_states = recovery.moves;
          repair_iterations = rounds;
        }
  end

(* ------------------------------------------------------------------ *)
(* Masking                                                             *)
(* ------------------------------------------------------------------ *)

(* Fail-safe restriction first (with the invariant-weakening fallback);
   then recovery from the restricted span back to a target predicate
   (default: the recomputed invariant), where every recovery step must
   itself avoid [mt] — the corrector must not break the detector's
   guarantee (Section 5). *)
let add_masking ?limit ?(engine = Ts.Auto) ?(workers = 1) ?(step_vars = 1)
    ?target p ~spec ~invariant ~faults =
  Obs.span "synth.add_masking" ~attrs:[ Attr.str "program" (Program.name p) ]
  @@ fun () ->
  surface_exhaustion @@ fun () ->
  let engine = resolve_engine engine p faults in
  let sspec = Spec.safety (Spec.smallest_safety_containing spec) in
  let composed = Fault.compose p faults in
  let ts_pf = Ts.full ?limit ~engine ~workers composed in
  let fault_ids = Ts.action_ids_of_names ts_pf (Fault.action_names faults) in
  let restricted, added, inv_states, in_ms_at, weakened =
    failsafe_core ts_pf ~sspec ~fault_ids p ~invariant
  in
  if inv_states = [] then Error Empty_invariant
  else begin
    let invariant' =
      Pred.of_states
        ~name:(if weakened then "S_masking_weakened" else "S_masking")
        inv_states
    in
    let target = match target with Some t -> t | None -> invariant' in
    let ts_span =
      Ts.build ?limit ~engine ~workers
        (Fault.compose restricted faults)
        ~from:inv_states
    in
    let bans = Hashtbl.create 8 in
    let forces = Hashtbl.create 8 in
    let banned s t =
      Hashtbl.length bans > 0 && Hashtbl.mem bans (skey s, skey t)
    in
    let forced st =
      Hashtbl.length forces > 0 && Hashtbl.mem forces (skey st)
    in
    let needs =
      needs_recovery_tbl ?limit ~engine ~workers restricted ~target
        (Ts.states ts_span)
    in
    let rank0 = gated_rank0 ~target needs in
    let synth =
      if Ts.engine_of ts_span = Ts.Packed then begin
        (* Resolve ms/bad for every span state up front; an allowed step
           then costs two bitset probes and one bad-transition check. *)
        let nspan = Ts.num_states ts_span in
        let bad_span =
          Bitset.of_fn nspan (fun i ->
              Safety.bad_state sspec (Ts.state ts_span i))
        in
        let ms_span =
          Bitset.of_fn nspan (fun i ->
              match Ts.index_of ts_pf (Ts.state ts_span i) with
              | Some gi -> in_ms_at gi
              | None -> false)
        in
        let allowed i j =
          (not (Bitset.get bad_span j))
          && (not (Bitset.get ms_span j))
          && not
               (Safety.bad_transition sspec (Ts.state ts_span i)
                  (Ts.state ts_span j))
        in
        let span_fault_ids =
          Ts.action_ids_of_names ts_span (Fault.action_names faults)
        in
        fun ~use_undo ~step_vars ->
          synthesize_recovery_packed ~step_vars ~banned ~use_undo ~forced
            ~rank0 ~workers ~fault_ids:span_fault_ids ~allowed ~target
            restricted ts_span
      end
      else begin
        let allowed s s' = not (make_mt ts_pf ~in_ms_at ~sspec s s') in
        fun ~use_undo ~step_vars ->
          synthesize_recovery ~step_vars ~banned ~use_undo ~forced ~allowed
            ~rank0 ~target restricted (Ts.states ts_span)
      end
    in
    let build recovery =
      Program.add_actions restricted [ recovery.action ]
      |> Program.with_name (Fmt.str "masking(%s)" (Program.name p))
    in
    let verify program =
      Tolerance.check_with ?limit ~engine program ~spec
        ~invariant:invariant' ~init:inv_states ~faults ~tol:Spec.Masking
    in
    match repair_loop ~step_vars ~synth ~build ~verify ~bans ~forces with
    | Error f -> Error f
    | Ok (recovery, program, report, rounds) ->
      Ok
        {
          program;
          invariant = invariant';
          report;
          added_detectors = added;
          recovery_states = recovery.moves;
          repair_iterations = rounds;
        }
  end
