(* Automated addition of fault-tolerance components.

   The paper's companion method (its reference [4], later mechanized by
   Kulkarni & Arora as "automating the addition of fault-tolerance")
   transforms a fault-intolerant program into a tolerant one by adding
   detectors and correctors.  On finite-state programs the transformation
   is computable, and this module implements it:

   - [add_failsafe] strengthens each action's guard with (a subset of) its
     weakest detection predicate: the program may execute an action only
     from states where doing so maintains safety and cannot be pushed by
     faults alone into violating it.  The added components are exactly the
     detectors of Section 3.

   - [add_nonmasking] adds a corrector: recovery actions that converge
     from the fault span back to the invariant (Section 4), synthesized by
     backward layering so convergence is by construction cycle-free.

   - [add_masking] composes both: fail-safe restriction first, then
     recovery that itself avoids unsafe transitions (Section 5's thesis
     that masking = detectors + correctors).

   The [ms]/[mt] fixpoints follow the Kulkarni-Arora formulation: [ms] is
   the set of states from which fault actions alone can violate safety;
   [mt] the transitions a safe program must never take. *)

open Detcor_kernel
open Detcor_semantics
open Detcor_spec
open Detcor_core
open Detcor_obs

type failure =
  | Empty_invariant
  | Unrecoverable_state of State.t
  | Verification_failed of Tolerance.report

type 'a outcome = ('a, failure) result

let pp_failure ppf = function
  | Empty_invariant ->
    Fmt.string ppf "no invariant state survives the fail-safe restriction"
  | Unrecoverable_state st ->
    Fmt.pf ppf "no safe recovery path from %a" State.pp st
  | Verification_failed r ->
    Fmt.pf ppf "synthesized program failed verification:@,%a"
      Tolerance.pp_report r

type result = {
  program : Program.t;
  invariant : Pred.t;
  report : Tolerance.report; (* verification of the synthesized program *)
  added_detectors : (string * Pred.t) list;
      (* per restricted action: the added detection guard *)
  recovery_states : int; (* states given a recovery transition *)
}

(* ------------------------------------------------------------------ *)
(* ms / mt                                                             *)
(* ------------------------------------------------------------------ *)

(* [ms ts_pf ~fault_ids ~sspec]: the states from which the fault actions
   alone can reach a safety violation — the backward fixpoint over fault
   edges seeded with the bad states and the sources of bad fault
   transitions. *)
let compute_ms ts_pf ~fault_ids ~sspec =
  Obs.span "synth.compute_ms" @@ fun () ->
  let n = Ts.num_states ts_pf in
  let is_fault = Array.make (Ts.num_actions ts_pf) false in
  List.iter (fun i -> is_fault.(i) <- true) fault_ids;
  let in_ms = Array.make n false in
  let fault_preds = Array.make n [] in
  let queue = Queue.create () in
  let add i =
    if not in_ms.(i) then begin
      in_ms.(i) <- true;
      Queue.add i queue
    end
  in
  Ts.iter_edges ts_pf (fun i aid j ->
      if is_fault.(aid) then begin
        fault_preds.(j) <- i :: fault_preds.(j);
        if Safety.bad_transition sspec (Ts.state ts_pf i) (Ts.state ts_pf j)
        then add i
      end);
  for i = 0 to n - 1 do
    if Safety.bad_state sspec (Ts.state ts_pf i) then add i
  done;
  while not (Queue.is_empty queue) do
    Detcor_robust.Budget.tick ();
    let j = Queue.pop queue in
    List.iter add fault_preds.(j)
  done;
  in_ms

(* [mt]: a transition a safe program must never take — already a bad
   transition, or into a bad state, or into [ms]. *)
let make_mt ts_pf ~in_ms ~sspec s s' =
  Safety.bad_transition sspec s s'
  || Safety.bad_state sspec s'
  ||
  match Ts.index_of ts_pf s' with
  | Some j -> in_ms.(j)
  | None -> false

(* ------------------------------------------------------------------ *)
(* Fail-safe                                                           *)
(* ------------------------------------------------------------------ *)

(* The detection guard added to action [ac]: executing [ac] here neither
   violates safety nor lands in [ms].  This is the weakest detection
   predicate of [ac] for the [mt]-extended safety specification. *)
let detection_guard ts_pf ~in_ms ~sspec ac =
  Pred.make
    (Fmt.str "wdp(%s)" (Action.name ac))
    (fun st ->
      (not (Safety.bad_state sspec st))
      && (match Ts.index_of ts_pf st with
         | Some i -> not in_ms.(i)
         | None -> true)
      && List.for_all
           (fun st' -> not (make_mt ts_pf ~in_ms ~sspec st st'))
           (Action.execute ac st))

let restrict_program ts_pf ~in_ms ~sspec p =
  let restrict ac =
    let guard = detection_guard ts_pf ~in_ms ~sspec ac in
    (Action.name ac, guard, Action.restrict guard ac)
  in
  let restricted = List.map restrict (Program.actions p) in
  let program =
    Program.make
      ~name:(Fmt.str "failsafe(%s)" (Program.name p))
      ~vars:(Program.var_decls p)
      ~actions:(List.map (fun (_, _, ac) -> ac) restricted)
  in
  let added = List.map (fun (name, g, _) -> (name, g)) restricted in
  (program, added)

(* Recompute the invariant: drop ms-states, then iteratively drop states
   that the restriction newly deadlocked (states that could move in [p]
   but cannot in the restricted program within the shrinking set). *)
let recompute_invariant ts_pf ~in_ms p restricted ~invariant =
  let module SS = Set.Make (State) in
  let initial =
    List.filter
      (fun st ->
        Pred.holds invariant st
        &&
        match Ts.index_of ts_pf st with
        | Some i -> not in_ms.(i)
        | None -> true)
      (Program.states p)
  in
  let rec fix set =
    let keep st =
      let originally_live = not (Program.deadlocked p st) in
      if not originally_live then true
      else
        List.exists
          (fun (_, st') -> SS.mem st' set)
          (Program.successors restricted st)
    in
    let set' = SS.filter keep set in
    if SS.cardinal set' = SS.cardinal set then set else fix set'
  in
  let final = fix (SS.of_list initial) in
  SS.elements final

let add_failsafe ?limit p ~spec ~invariant ~faults =
  Obs.span "synth.add_failsafe" ~attrs:[ Attr.str "program" (Program.name p) ]
  @@ fun () ->
  let sspec = Spec.safety (Spec.smallest_safety_containing spec) in
  let composed = Fault.compose p faults in
  let ts_pf = Ts.full ?limit composed in
  let fault_ids = Ts.action_ids_of_names ts_pf (Fault.action_names faults) in
  let in_ms = compute_ms ts_pf ~fault_ids ~sspec in
  let restricted, added = restrict_program ts_pf ~in_ms ~sspec p in
  let inv_states = recompute_invariant ts_pf ~in_ms p restricted ~invariant in
  if inv_states = [] then Error Empty_invariant
  else begin
    let invariant' = Pred.of_states ~name:"S_failsafe" inv_states in
    let report =
      Tolerance.check_with ?limit restricted ~spec ~invariant:invariant'
        ~init:inv_states ~faults ~tol:Spec.Failsafe
    in
    if Tolerance.verdict report then
      Ok
        {
          program = restricted;
          invariant = invariant';
          report;
          added_detectors = added;
          recovery_states = 0;
        }
    else Error (Verification_failed report)
  end

(* ------------------------------------------------------------------ *)
(* Recovery synthesis (the corrector).                                 *)
(* ------------------------------------------------------------------ *)

(* Candidate recovery steps change at most [step_vars] variables — local
   corrections rather than global resets.  Backward layering from the
   target assigns each state a rank; the synthesized recovery action moves
   to a strictly smaller rank, so convergence is cycle-free by
   construction. *)
let neighbors ~step_vars p st =
  let decls = Program.var_decls p in
  let single =
    List.concat_map
      (fun (x, d) ->
        List.filter_map
          (fun value ->
            if Value.equal (State.get st x) value then None
            else Some (State.set st x value))
          (Domain.values d))
      decls
  in
  if step_vars <= 1 then single
  else
    (* two-variable steps: compose one-variable steps *)
    single
    @ List.concat_map
        (fun st1 ->
          List.concat_map
            (fun (x, d) ->
              List.filter_map
                (fun value ->
                  if Value.equal (State.get st1 x) value then None
                  else Some (State.set st1 x value))
                (Domain.values d))
            decls)
        single

type recovery = {
  table : (string, State.t) Hashtbl.t;
  action : Action.t;
}

(* [synthesize_recovery ~allowed ~target states]: rank the given states by
   backward BFS from the target set over allowed candidate steps, then
   build the recovery action "move one layer closer".  Returns the states
   that cannot reach the target. *)
let synthesize_recovery ?(step_vars = 1) ~allowed ~target p states =
  Obs.span "synth.recovery" ~attrs:[ Attr.int "states" (List.length states) ]
  @@ fun () ->
  let module SM = Map.Make (State) in
  let rank = Hashtbl.create 256 in
  let key st = State.to_string st in
  let target_states = List.filter (Pred.holds target) states in
  List.iter (fun st -> Hashtbl.replace rank (key st) 0) target_states;
  let state_set = Hashtbl.create 256 in
  List.iter (fun st -> Hashtbl.replace state_set (key st) st) states;
  (* Backward BFS: repeatedly find unranked states with a one-step move to
     a ranked state. *)
  let table = Hashtbl.create 64 in
  let changed = ref true in
  let level = ref 0 in
  while !changed do
    changed := false;
    incr level;
    let additions = ref [] in
    Hashtbl.iter
      (fun k st ->
        Detcor_robust.Budget.tick ();
        if not (Hashtbl.mem rank k) then begin
          let candidate =
            List.find_opt
              (fun st' ->
                Hashtbl.mem state_set (key st')
                && (match Hashtbl.find_opt rank (key st') with
                   | Some r -> r < !level
                   | None -> false)
                && allowed st st')
              (neighbors ~step_vars p st)
          in
          match candidate with
          | Some st' -> additions := (k, st, st') :: !additions
          | None -> ()
        end)
      state_set;
    List.iter
      (fun (k, st, st') ->
        Hashtbl.replace rank k !level;
        Hashtbl.replace table k st';
        ignore st;
        changed := true)
      !additions
  done;
  let unrecoverable =
    Hashtbl.fold
      (fun k st acc -> if Hashtbl.mem rank k then acc else st :: acc)
      state_set []
  in
  let guard =
    Pred.make "needs-recovery" (fun st -> Hashtbl.mem table (key st))
  in
  let action =
    Action.deterministic "recovery" guard (fun st ->
        match Hashtbl.find_opt table (key st) with
        | Some st' -> st'
        | None -> st)
  in
  ({ table; action }, unrecoverable)

(* ------------------------------------------------------------------ *)
(* Nonmasking                                                          *)
(* ------------------------------------------------------------------ *)

let add_nonmasking ?limit ?(step_vars = 1) p ~spec ~invariant ~faults =
  Obs.span "synth.add_nonmasking" ~attrs:[ Attr.str "program" (Program.name p) ]
  @@ fun () ->
  let init = Tolerance.init_states ?limit p ~invariant in
  if init = [] then Error Empty_invariant
  else begin
    let span = Tolerance.fault_span_from_states ?limit p ~faults ~init in
    let recovery, unrecoverable =
      synthesize_recovery ~step_vars
        ~allowed:(fun _ _ -> true)
        ~target:invariant p span.states
    in
    match unrecoverable with
    | st :: _ -> Error (Unrecoverable_state st)
    | [] ->
      let program =
        Program.add_actions p [ recovery.action ]
        |> Program.with_name (Fmt.str "nonmasking(%s)" (Program.name p))
      in
      let report =
        Tolerance.check_with ?limit program ~spec ~invariant ~init ~faults
          ~tol:Spec.Nonmasking
      in
      if Tolerance.verdict report then
        Ok
          {
            program;
            invariant;
            report;
            added_detectors = [];
            recovery_states = Hashtbl.length recovery.table;
          }
      else Error (Verification_failed report)
  end

(* ------------------------------------------------------------------ *)
(* Masking                                                             *)
(* ------------------------------------------------------------------ *)

(* Fail-safe restriction first; then recovery from the restricted span
   back to a target predicate (default: the recomputed invariant), where
   every recovery step must itself avoid [mt] — the corrector must not
   break the detector's guarantee (Section 5). *)
let add_masking ?limit ?(step_vars = 1) ?target p ~spec ~invariant ~faults =
  Obs.span "synth.add_masking" ~attrs:[ Attr.str "program" (Program.name p) ]
  @@ fun () ->
  let sspec = Spec.safety (Spec.smallest_safety_containing spec) in
  let composed = Fault.compose p faults in
  let ts_pf = Ts.full ?limit composed in
  let fault_ids = Ts.action_ids_of_names ts_pf (Fault.action_names faults) in
  let in_ms = compute_ms ts_pf ~fault_ids ~sspec in
  let restricted, added = restrict_program ts_pf ~in_ms ~sspec p in
  let inv_states = recompute_invariant ts_pf ~in_ms p restricted ~invariant in
  if inv_states = [] then Error Empty_invariant
  else begin
    let invariant' = Pred.of_states ~name:"S_masking" inv_states in
    let target = match target with Some t -> t | None -> invariant' in
    let span =
      Tolerance.fault_span_from_states ?limit restricted ~faults
        ~init:inv_states
    in
    let allowed s s' = not (make_mt ts_pf ~in_ms ~sspec s s') in
    let recovery, unrecoverable =
      synthesize_recovery ~step_vars ~allowed ~target restricted span.states
    in
    match unrecoverable with
    | st :: _ -> Error (Unrecoverable_state st)
    | [] ->
      let program =
        Program.add_actions restricted [ recovery.action ]
        |> Program.with_name (Fmt.str "masking(%s)" (Program.name p))
      in
      let report =
        Tolerance.check_with ?limit program ~spec ~invariant:invariant'
          ~init:inv_states ~faults ~tol:Spec.Masking
      in
      if Tolerance.verdict report then
        Ok
          {
            program;
            invariant = invariant';
            report;
            added_detectors = added;
            recovery_states = Hashtbl.length recovery.table;
          }
      else Error (Verification_failed report)
  end
