(** Automated addition of fault tolerance — the companion transformation
    method the paper builds on (its ref. [4]): add detectors (guard
    strengthening to weakest detection predicates) for fail-safe, add a
    corrector (ranked recovery) for nonmasking, and both for masking.
    Every synthesized program is re-verified with {!Detcor_core.Tolerance}
    before being returned.

    Layering alone is not a complete procedure, so three repairs back it
    up: when the fail-safe restriction kill-cascades the invariant to the
    empty set, an {e invariant-weakening search} reseeds the same greatest
    fixpoint from the whole ms-complement (the largest set the restricted
    program stays live in while excluding [ms] — the ideal-stabilization
    view, where recovery re-establishes a specification-equivalent
    legitimacy predicate rather than the original invariant verbatim); an
    {e anti-undo veto} plus a deadlock-target repair pass keep ranked
    recovery from seeding fair cycles or stalling inside the target
    region, escalating to two-variable moves when one-variable layering
    cannot rank the span; and a bounded {e counterexample-guided loop}
    turns fair-cycle and deadlock witnesses from the verification report
    into layering edge bans and forced moves.  Final verification remains
    the soundness gate.

    The synthesizer mirrors {!Detcor_semantics.Ts}'s engine split: when
    the explored system was built by the packed engine, the [ms]/[mt]
    fixpoints, detection guards, invariant recomputation and recovery
    layering all run on integer state indices (bitsets, reverse-CSR
    adjacency, frontier queues, optional domain-parallel scans); the seed
    closure-based path remains as the [Reference] oracle.  Both paths
    synthesize extensionally identical programs and reports.  [Auto]
    dispatch additionally applies a work crossover ({!auto_min_work}):
    instances too small to amortize layout compilation stay on the
    reference path. *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

type failure =
  | Empty_invariant
  | Unrecoverable_state of State.t
  | Verification_failed of Tolerance.report
  | Exhausted of Detcor_robust.Error.resource
      (** a resource budget ran out inside a synthesis fixpoint: the
          outcome is undecided, not negative *)

type 'a outcome = ('a, failure) result

val pp_failure : failure Fmt.t

type result = {
  program : Program.t;
  invariant : Pred.t;
      (** the recomputed invariant — named [S_*_weakened] when the
          weakening search replaced the original one *)
  report : Tolerance.report;  (** verification of the synthesized program *)
  added_detectors : (string * Pred.t) list;
      (** per action: the detection guard that was conjoined *)
  recovery_states : int;  (** states given a recovery transition *)
  repair_iterations : int;
      (** counterexample-guided relayering rounds before the verified
          program was reached (0: first layering verified) *)
}

(** Minimum estimated work (product space of [p [] F] times action count)
    below which [Auto] dispatch stays on the reference path, the synthesis
    analogue of {!Detcor_sim.Syndrome}'s work crossover. *)
val auto_min_work : int

(** Candidate recovery steps from a state: the states differing from it
    in at most [step_vars] (1 or 2) of [p]'s declared variables, within
    their declared domains, deduplicated and excluding the state itself.
    The list order is the layering tie-break order (deterministic). *)
val neighbors : step_vars:int -> Program.t -> State.t -> State.t list

(** Strengthen every action with its weakest detection predicate for the
    [ms/mt]-extended safety specification; recompute the invariant.
    [engine] selects the synthesis path exactly as it selects the
    {!Detcor_semantics.Ts} engine (default [Auto]); [workers] > 1
    additionally fans packed exploration and recovery scans out over that
    many OCaml domains. *)
val add_failsafe :
  ?limit:int ->
  ?engine:Detcor_semantics.Ts.engine ->
  ?workers:int ->
  Program.t ->
  spec:Spec.t ->
  invariant:Pred.t ->
  faults:Fault.t ->
  result outcome

(** Add a ranked recovery corrector converging from the fault span back to
    the invariant.  [step_vars] bounds how many variables one ranked
    recovery step may write (default 1 — local corrections; the attempt
    ladder escalates to 2 on its own when 1 cannot rank the span). *)
val add_nonmasking :
  ?limit:int ->
  ?engine:Detcor_semantics.Ts.engine ->
  ?workers:int ->
  ?step_vars:int ->
  Program.t ->
  spec:Spec.t ->
  invariant:Pred.t ->
  faults:Fault.t ->
  result outcome

(** Fail-safe restriction (with the invariant-weakening fallback) followed
    by safety-respecting recovery to [target] (default: the recomputed
    invariant). *)
val add_masking :
  ?limit:int ->
  ?engine:Detcor_semantics.Ts.engine ->
  ?workers:int ->
  ?step_vars:int ->
  ?target:Pred.t ->
  Program.t ->
  spec:Spec.t ->
  invariant:Pred.t ->
  faults:Fault.t ->
  result outcome
