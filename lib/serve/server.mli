(** The dcheck serve daemon: a supervised job queue over loopback TCP.

    The daemon is itself an instance of the paper's detector/corrector
    pair: the scheduler's poll loop {e detects} deviations from the
    "every accepted job reaches a terminal state" specification — a
    worker that died (exit 125, a signal), outlived its watchdog, or
    must yield its slot to interactive work — and {e corrects} by
    bounded retry-with-backoff, kill-and-requeue, or checkpoint
    preemption.  The crash-safe spool makes the correction span daemon
    deaths: a [kill -9] between accept and completion loses no job.

    {!run} blocks until a drain completes: a protocol [shutdown]
    request exits 0, SIGTERM exits 143.  Either way running jobs are
    asked to checkpoint (SIGTERM, then SIGKILL after a grace period)
    and every non-terminal job is spooled as queued-with-resume, so a
    restarted daemon re-adopts and finishes them. *)

open Detcor_robust

type config = {
  listen : string;  (** ADDR as {!Detcor_obs.Telemetry.parse_addr} *)
  spool : string;  (** spool directory (jobs, outputs, snapshots) *)
  slots : int;  (** concurrently running worker subprocesses *)
  queue_max : int;  (** queued-job ceiling before [overloaded] *)
  tenant_max : int;  (** live (non-terminal) jobs per tenant *)
  policy : Watchdog.policy;  (** retry/backoff/watchdog for workers *)
  dcheck : string;  (** binary to spawn jobs with *)
  kill_grace_s : float;  (** SIGTERM → SIGKILL escalation delay *)
  checkpoint_interval : float;  (** worker snapshot cadence, seconds *)
}

(** Loopback on an ephemeral port, 2 slots, 64-deep queue, 16 live jobs
    per tenant, the default retry policy with a 30 s watchdog, jobs run
    with [Sys.executable_name]. *)
val default_config : config

(** Serve until drained; returns the process exit code (0 after a
    protocol [shutdown], 143 after SIGTERM).  Prints
    ["dcheck: serving on HOST:PORT"] on stdout once listening.
    Installs its own SIGTERM handler (drain) for the duration. *)
val run : config -> int
