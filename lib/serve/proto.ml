(* The serve wire protocol: JSON lines over loopback TCP.

   Encoding favours the hand-rolled [Jsonx] tree the rest of the
   toolkit already uses; every reply object carries "ok" so a client
   can branch on success without pattern-sniffing the shape.  The same
   [job] encoding doubles as the daemon's spool record — what the wire
   says about a job and what the crash-safe store remembers about it
   can never drift apart. *)

open Detcor_obs

type kind = Verify | Synthesize | Simulate

let kind_to_string = function
  | Verify -> "verify"
  | Synthesize -> "synthesize"
  | Simulate -> "simulate"

let kind_of_string = function
  | "verify" -> Some Verify
  | "synthesize" -> Some Synthesize
  | "simulate" -> Some Simulate
  | _ -> None

(* Interactive jobs answer a person at a prompt; batch jobs answer a
   pipeline.  Only the former may preempt the latter. *)
let interactive = function Verify -> true | Synthesize | Simulate -> false

type state = Queued | Running | Preempting | Done | Failed | Cancelled

let state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Preempting -> "preempting"
  | Done -> "done"
  | Failed -> "failed"
  | Cancelled -> "cancelled"

let state_of_string = function
  | "queued" -> Some Queued
  | "running" -> Some Running
  | "preempting" -> Some Preempting
  | "done" -> Some Done
  | "failed" -> Some Failed
  | "cancelled" -> Some Cancelled
  | _ -> None

let terminal = function
  | Done | Failed | Cancelled -> true
  | Queued | Running | Preempting -> false

type job = {
  id : int;
  tenant : string;
  kind : kind;
  file : string;
  argv : string list;
  state : state;
  attempts : int;
  preemptions : int;
  exit_code : int option;
  cache : string option;
}

let job_to_json j =
  Jsonx.Obj
    ([
       ("id", Jsonx.Int j.id);
       ("tenant", Jsonx.Str j.tenant);
       ("kind", Jsonx.Str (kind_to_string j.kind));
       ("file", Jsonx.Str j.file);
       ("argv", Jsonx.List (List.map (fun a -> Jsonx.Str a) j.argv));
       ("state", Jsonx.Str (state_to_string j.state));
       ("attempts", Jsonx.Int j.attempts);
       ("preemptions", Jsonx.Int j.preemptions);
     ]
    @ (match j.exit_code with
      | None -> []
      | Some c -> [ ("exit", Jsonx.Int c) ])
    @ match j.cache with None -> [] | Some c -> [ ("cache", Jsonx.Str c) ])

let job_of_json json =
  let str k = Option.bind (Jsonx.member k json) Jsonx.to_str in
  let int k = Option.bind (Jsonx.member k json) Jsonx.to_int in
  let strs k =
    match Option.bind (Jsonx.member k json) Jsonx.to_list with
    | None -> Some []
    | Some l ->
      List.fold_right
        (fun v acc ->
          match (Jsonx.to_str v, acc) with
          | Some s, Some acc -> Some (s :: acc)
          | _ -> None)
        l (Some [])
  in
  match
    ( int "id",
      Option.bind (str "kind") kind_of_string,
      Option.bind (str "state") state_of_string,
      strs "argv" )
  with
  | Some id, Some kind, Some state, Some argv ->
    Some
      {
        id;
        tenant = Option.value ~default:"-" (str "tenant");
        kind;
        file = Option.value ~default:"-" (str "file");
        argv;
        state;
        attempts = Option.value ~default:0 (int "attempts");
        preemptions = Option.value ~default:0 (int "preemptions");
        exit_code = int "exit";
        cache = str "cache";
      }
  | _ -> None

(* The cache key digests everything that could change the answer bytes:
   unlike the checkpoint fingerprint, worker/engine/shard choices are
   all included — a resume may legally cross them, a cached result may
   not claim to. *)
let cache_key ~kind ~source ~argv =
  Detcor_robust.Checkpoint.digest
    ("dcheck-serve/1" :: kind_to_string kind :: source :: argv)

type request =
  | Submit of {
      tenant : string;
      kind : kind;
      file : string;
      argv : string list;
    }
  | Status of int
  | Result of { id : int; wait : bool }
  | Cancel of int
  | List_jobs
  | Metrics
  | Shutdown

let request_to_json = function
  | Submit { tenant; kind; file; argv } ->
    Jsonx.Obj
      [
        ("op", Jsonx.Str "submit");
        ("tenant", Jsonx.Str tenant);
        ("kind", Jsonx.Str (kind_to_string kind));
        ("file", Jsonx.Str file);
        ("argv", Jsonx.List (List.map (fun a -> Jsonx.Str a) argv));
      ]
  | Status id -> Jsonx.Obj [ ("op", Jsonx.Str "status"); ("id", Jsonx.Int id) ]
  | Result { id; wait } ->
    Jsonx.Obj
      [ ("op", Jsonx.Str "result"); ("id", Jsonx.Int id);
        ("wait", Jsonx.Bool wait) ]
  | Cancel id -> Jsonx.Obj [ ("op", Jsonx.Str "cancel"); ("id", Jsonx.Int id) ]
  | List_jobs -> Jsonx.Obj [ ("op", Jsonx.Str "list") ]
  | Metrics -> Jsonx.Obj [ ("op", Jsonx.Str "metrics") ]
  | Shutdown -> Jsonx.Obj [ ("op", Jsonx.Str "shutdown") ]

let request_of_json json =
  let str k = Option.bind (Jsonx.member k json) Jsonx.to_str in
  let int k = Option.bind (Jsonx.member k json) Jsonx.to_int in
  let id_op make =
    match int "id" with
    | Some id -> Ok (make id)
    | None -> Error "missing integer field \"id\""
  in
  match str "op" with
  | None -> Error "missing field \"op\""
  | Some "submit" -> (
    let argv =
      match Option.bind (Jsonx.member "argv" json) Jsonx.to_list with
      | None -> Some []
      | Some l ->
        List.fold_right
          (fun v acc ->
            match (Jsonx.to_str v, acc) with
            | Some s, Some acc -> Some (s :: acc)
            | _ -> None)
          l (Some [])
    in
    match (Option.bind (str "kind") kind_of_string, str "file", argv) with
    | None, _, _ -> Error "submit: bad or missing \"kind\""
    | _, None, _ -> Error "submit: missing \"file\""
    | _, _, None -> Error "submit: \"argv\" must be a list of strings"
    | Some kind, Some file, Some argv ->
      Ok
        (Submit
           { tenant = Option.value ~default:"-" (str "tenant"); kind; file;
             argv }))
  | Some "status" -> id_op (fun id -> Status id)
  | Some "result" ->
    let wait =
      match Option.bind (Jsonx.member "wait" json) (function
        | Jsonx.Bool b -> Some b
        | _ -> None) with
      | Some b -> b
      | None -> false
    in
    id_op (fun id -> Result { id; wait })
  | Some "cancel" -> id_op (fun id -> Cancel id)
  | Some "list" -> Ok List_jobs
  | Some "metrics" -> Ok Metrics
  | Some "shutdown" -> Ok Shutdown
  | Some op -> Error (Printf.sprintf "unknown op %S" op)

type reply =
  | Accepted of job
  | Job of job
  | Jobs of job list
  | Outcome of { job : job; output : string }
  | Text of string
  | Overloaded of { retry_after_s : float }
  | Bad of string

let ok fields = Jsonx.Obj (("ok", Jsonx.Bool true) :: fields)

let reply_to_json = function
  | Accepted j -> ok [ ("accepted", job_to_json j) ]
  | Job j -> ok [ ("job", job_to_json j) ]
  | Jobs js -> ok [ ("jobs", Jsonx.List (List.map job_to_json js)) ]
  | Outcome { job; output } ->
    ok [ ("job", job_to_json job); ("output", Jsonx.Str output) ]
  | Text s -> ok [ ("text", Jsonx.Str s) ]
  | Overloaded { retry_after_s } ->
    Jsonx.Obj
      [
        ("ok", Jsonx.Bool false);
        ("error", Jsonx.Str "overloaded");
        ("retry_after_s", Jsonx.Float retry_after_s);
      ]
  | Bad msg ->
    Jsonx.Obj [ ("ok", Jsonx.Bool false); ("error", Jsonx.Str msg) ]

let reply_of_json json =
  let mem k = Jsonx.member k json in
  let job_field k =
    match Option.bind (mem k) job_of_json with
    | Some j -> Ok j
    | None -> Error (Printf.sprintf "reply: bad %S field" k)
  in
  match mem "ok" with
  | Some (Jsonx.Bool true) -> (
    match (mem "accepted", mem "job", mem "jobs", mem "text", mem "output")
    with
    | Some _, _, _, _, _ ->
      Result.map (fun j -> Accepted j) (job_field "accepted")
    | _, Some _, _, _, Some (Jsonx.Str output) ->
      Result.map (fun job -> Outcome { job; output }) (job_field "job")
    | _, Some _, _, _, _ -> Result.map (fun j -> Job j) (job_field "job")
    | _, _, Some (Jsonx.List l), _, _ ->
      List.fold_right
        (fun v acc ->
          match (job_of_json v, acc) with
          | Some j, Ok acc -> Ok (j :: acc)
          | _, (Error _ as e) -> e
          | None, _ -> Error "reply: bad job in \"jobs\"")
        l (Ok [])
      |> Result.map (fun js -> Jobs js)
    | _, _, _, Some (Jsonx.Str s), _ -> Ok (Text s)
    | _ -> Error "reply: unrecognized success shape")
  | Some (Jsonx.Bool false) -> (
    match Option.bind (mem "error") Jsonx.to_str with
    | Some "overloaded" ->
      let retry_after_s =
        match Option.bind (mem "retry_after_s") Jsonx.to_float with
        | Some s -> s
        | None -> 1.0
      in
      Ok (Overloaded { retry_after_s })
    | Some msg -> Ok (Bad msg)
    | None -> Error "reply: failure without \"error\"")
  | _ -> Error "reply: missing boolean \"ok\""
