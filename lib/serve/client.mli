(** Client side of the serve protocol: blocking JSON-line RPCs over a
    loopback TCP connection.  Used by [dcheck client], the serve tests
    and the load-bench harness. *)

type t

(** Connect to ["HOST:PORT"] (as {!Detcor_obs.Telemetry.parse_addr}). *)
val connect : string -> (t, string) result

val close : t -> unit

(** One request, one reply.  [Error] is a transport or framing failure;
    protocol-level refusals come back as [Ok (Overloaded _ | Bad _)]. *)
val rpc : t -> Proto.request -> (Proto.reply, string) result

(** Send one raw JSON line and return the raw reply line — the
    [dcheck client] passthrough. *)
val rpc_raw : t -> string -> (string, string) result

(** Connect, run one request, close. *)
val oneshot : addr:string -> Proto.request -> (Proto.reply, string) result
