(* Blocking JSON-line RPC client for the serve protocol. *)

open Detcor_obs

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect addr =
  match Telemetry.parse_addr addr with
  | Error m -> Error m
  | Ok (_host, ip, port) -> (
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_INET (ip, port)) with
    | () ->
      Ok
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
        }
    | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" addr
           (Unix.error_message err)))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let rpc_raw t line =
  match
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc;
    input_line t.ic
  with
  | reply -> Ok reply
  | exception End_of_file -> Error "connection closed by daemon"
  | exception (Sys_error m) -> Error m
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

let rpc t req =
  match rpc_raw t (Jsonx.to_string (Proto.request_to_json req)) with
  | Error _ as e -> e
  | Ok line -> (
    match Jsonx.of_string line with
    | Error m -> Error (Printf.sprintf "bad reply JSON: %s" m)
    | Ok json -> Proto.reply_of_json json)

let oneshot ~addr req =
  match connect addr with
  | Error _ as e -> e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> rpc t req)
