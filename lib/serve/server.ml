(* The serve daemon.

   One mutex guards all scheduling state; the main thread runs the
   scheduler poll loop (reap, watchdog, retry, promote, preempt) every
   20 ms, an accept thread hands each connection to its own handler
   thread, and [done_cond] wakes blocked [result --wait] readers on
   every terminal transition.

   Supervision is deliberately a detector/corrector instance.  The
   detector is the poll loop: it observes the predicate "every accepted
   job is making progress toward a terminal state" through waitpid,
   wall clocks and the queue.  The correctors are the recovery arms:
   bounded retry-with-backoff for workers that die abnormally,
   SIGTERM-then-SIGKILL for workers that outlive their watchdog,
   checkpoint preemption (SIGTERM, requeue with --resume) when
   interactive work needs a slot, and the crash-safe spool + restart
   adoption when the failing component is the daemon itself. *)

open Detcor_obs
module Spool = Detcor_robust.Spool
module Watchdog = Detcor_robust.Watchdog

let c_submitted = Metrics.counter "serve.jobs.submitted"
let c_completed = Metrics.counter "serve.jobs.completed"
let c_failed = Metrics.counter "serve.jobs.failed"
let c_cancelled = Metrics.counter "serve.jobs.cancelled"
let c_retried = Metrics.counter "serve.jobs.retried"
let c_preempted = Metrics.counter "serve.jobs.preempted"
let c_overloaded = Metrics.counter "serve.jobs.overloaded"
let c_watchdog = Metrics.counter "serve.watchdog_kills"
let c_cache_hits = Metrics.counter "serve.cache.hits"
let c_cache_misses = Metrics.counter "serve.cache.misses"
let c_adopted = Metrics.counter "serve.spool.adopted"
let g_queue = Metrics.gauge "serve.queue.depth"
let g_running = Metrics.gauge "serve.running"
let h_latency_ms = Metrics.histogram "serve.latency_ms"

type config = {
  listen : string;
  spool : string;
  slots : int;
  queue_max : int;
  tenant_max : int;
  policy : Watchdog.policy;
  dcheck : string;
  kill_grace_s : float;
  checkpoint_interval : float;
}

let default_config =
  {
    listen = "127.0.0.1:0";
    spool = "dcheck-spool";
    slots = 2;
    queue_max = 64;
    tenant_max = 16;
    policy = { Watchdog.default_policy with Watchdog.watchdog_s = Some 30.0 };
    dcheck = Sys.executable_name;
    kill_grace_s = 1.0;
    checkpoint_interval = 0.05;
  }

(* Why a job was signalled, so the reaper knows which corrector owns
   the exit. *)
type kill_reason = Preempt | Watchdog_kill | Cancel_kill | Drain

type rjob = {
  mutable job : Proto.job;
  mutable key : string;  (* result-cache key; "" when source unreadable *)
  mutable pid : int option;
  mutable submitted_s : float;
  mutable started_s : float;  (* of the current attempt *)
  mutable retry_at : float;  (* earliest next spawn; 0.0 = now *)
  mutable resume : bool;  (* next attempt passes --resume *)
  mutable kill_at : float;  (* when SIGTERM was sent; 0.0 = not sent *)
  mutable kill_reason : kill_reason option;
}

type t = {
  cfg : config;
  m : Mutex.t;
  done_cond : Condition.t;
  jobs : (int, rjob) Hashtbl.t;
  cache : (string, int) Hashtbl.t;  (* cache key -> Done job id *)
  mutable next_id : int;
  mutable iqueue : int list;  (* interactive, FIFO *)
  mutable bqueue : int list;  (* batch, FIFO; preempted jobs re-enter at the front *)
  mutable draining : bool;
  mutable drain_to_zero : bool;  (* protocol shutdown: exit 0, not 143 *)
  mutable listener : Unix.file_descr option;
}

let now () = Unix.gettimeofday ()
let locked t f = Mutex.protect t.m f

(* ------------------------------------------------------------------ *)
(* Spool layout.                                                       *)
(* ------------------------------------------------------------------ *)

let rec_name id = Printf.sprintf "job-%06d" id
let out_path t id = Filename.concat t.cfg.spool (rec_name id ^ ".out")
let snap_path t id = Filename.concat t.cfg.spool (rec_name id ^ ".snap")

(* The spool record is the wire encoding of the job plus the worker
   pid, so a restarted daemon can put down an orphaned worker before
   spawning a successor that would share its output file. *)
let persist t rj =
  let json =
    match Proto.job_to_json rj.job with
    | Jsonx.Obj fields ->
      Jsonx.Obj
        (fields
        @ match rj.pid with
          | None -> []
          | Some p -> [ ("pid", Jsonx.Int p) ])
    | j -> j
  in
  Spool.save ~dir:t.cfg.spool ~name:(rec_name rj.job.id)
    (Jsonx.to_string json)

let decode_record s =
  match Jsonx.of_string s with
  | Error _ -> None
  | Ok json ->
    Option.map
      (fun job -> (job, Option.bind (Jsonx.member "pid" json) Jsonx.to_int))
      (Proto.job_of_json json)

(* ------------------------------------------------------------------ *)
(* Worker processes.                                                   *)
(* ------------------------------------------------------------------ *)

(* Give each spawn its own failpoint seed (later directives win in
   Failpoint.configure), so chaos children draw independently instead
   of all replaying the daemon's stream. *)
let child_env rj =
  match Sys.getenv_opt "DETCOR_FAILPOINTS" with
  | None -> Unix.environment ()
  | Some fp ->
    let key = "DETCOR_FAILPOINTS=" in
    let keep s = not (String.starts_with ~prefix:key s) in
    let fp' =
      Printf.sprintf "%s%s;seed=%d" key fp
        ((1009 * rj.job.id) + rj.job.attempts)
    in
    Unix.environment () |> Array.to_list |> List.filter keep
    |> fun rest -> Array.of_list (fp' :: rest)

(* Spawn the next attempt.  Output goes to the job's .out file,
   truncated per attempt: a retried or resumed attempt replays the full
   report, so the surviving bytes are exactly what an undisturbed run
   would have produced. *)
let spawn t rj =
  let id = rj.job.id in
  let argv =
    [ t.cfg.dcheck; Proto.kind_to_string rj.job.kind; rj.job.file ]
    @ rj.job.argv
    @ [
        "--checkpoint"; snap_path t id; "--checkpoint-interval";
        Printf.sprintf "%g" t.cfg.checkpoint_interval;
      ]
    @
    if rj.resume && Sys.file_exists (snap_path t id) then
      [ "--resume"; snap_path t id ]
    else []
  in
  match
    let out =
      Unix.openfile (out_path t id)
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
        0o644
    in
    let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close out with Unix.Unix_error _ -> ());
        try Unix.close devnull with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.create_process_env t.cfg.dcheck (Array.of_list argv)
          (child_env rj) devnull out out)
  with
  | pid ->
    rj.pid <- Some pid;
    rj.started_s <- now ();
    rj.kill_at <- 0.0;
    rj.kill_reason <- None;
    rj.job <-
      { rj.job with Proto.state = Proto.Running;
        attempts = rj.job.attempts + 1 };
    persist t rj
  | exception Unix.Unix_error (err, _, _) ->
    rj.job <-
      { rj.job with Proto.state = Proto.Failed; exit_code = Some 125 };
    Metrics.incr c_failed;
    persist t rj;
    Fmt.epr "dcheck serve: cannot spawn job %d: %s@." id
      (Unix.error_message err)

let term_job rj reason =
  match rj.pid with
  | None -> ()
  | Some pid ->
    rj.kill_reason <- Some reason;
    rj.kill_at <- now ();
    if reason = Preempt then
      rj.job <- { rj.job with Proto.state = Proto.Preempting };
    (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())

let read_output t id =
  match In_channel.with_open_bin (out_path t id) In_channel.input_all with
  | s -> s
  | exception Sys_error _ -> ""

(* ------------------------------------------------------------------ *)
(* Scheduling (all under the mutex).                                   *)
(* ------------------------------------------------------------------ *)

let running t =
  Hashtbl.fold
    (fun _ rj acc -> if rj.pid <> None then rj :: acc else acc)
    t.jobs []

let queued_count t = List.length t.iqueue + List.length t.bqueue

let live_for_tenant t tenant =
  Hashtbl.fold
    (fun _ rj n ->
      if rj.job.Proto.tenant = tenant && not (Proto.terminal rj.job.Proto.state)
      then n + 1
      else n)
    t.jobs 0

let update_gauges t =
  Metrics.set_gauge g_queue (queued_count t);
  Metrics.set_gauge g_running (List.length (running t))

let enqueue ?(front = false) t rj =
  rj.job <- { rj.job with Proto.state = Proto.Queued };
  rj.pid <- None;
  let id = rj.job.Proto.id in
  if Proto.interactive rj.job.Proto.kind then
    t.iqueue <- (if front then id :: t.iqueue else t.iqueue @ [ id ])
  else t.bqueue <- (if front then id :: t.bqueue else t.bqueue @ [ id ]);
  persist t rj

let finish t rj state exit_code =
  rj.pid <- None;
  rj.job <- { rj.job with Proto.state; exit_code };
  (match state with
  | Proto.Done ->
    Metrics.incr c_completed;
    Metrics.observe h_latency_ms
      (int_of_float ((now () -. rj.submitted_s) *. 1000.0));
    if rj.key <> "" then Hashtbl.replace t.cache rj.key rj.job.Proto.id
  | Proto.Failed -> Metrics.incr c_failed
  | Proto.Cancelled -> Metrics.incr c_cancelled
  | _ -> ());
  persist t rj;
  Condition.broadcast t.done_cond

(* A worker died without a verdict: retry with backoff while the policy
   allows, resuming from its last snapshot when one exists. *)
let retry_or_fail t rj exit_code =
  match Watchdog.retry_delay t.cfg.policy ~attempt:rj.job.Proto.attempts with
  | Some delay ->
    Metrics.incr c_retried;
    rj.retry_at <- now () +. delay;
    rj.resume <- Sys.file_exists (snap_path t rj.job.Proto.id);
    enqueue t rj
  | None -> finish t rj Proto.Failed exit_code

let reap t rj pid status =
  let reason = rj.kill_reason in
  rj.kill_reason <- None;
  rj.kill_at <- 0.0;
  rj.pid <- None;
  ignore pid;
  match (status, reason) with
  (* A verdict is a verdict, whatever we were doing to the worker. *)
  | Unix.WEXITED ((0 | 1) as code), _ -> finish t rj Proto.Done (Some code)
  | _, Some Cancel_kill -> finish t rj Proto.Cancelled None
  | _, Some Drain ->
    (* Spooled as queued-with-resume for the next daemon instance. *)
    rj.resume <- Sys.file_exists (snap_path t rj.job.Proto.id);
    enqueue t rj
  | _, Some Preempt ->
    Metrics.incr c_preempted;
    rj.resume <- Sys.file_exists (snap_path t rj.job.Proto.id);
    rj.job <- { rj.job with Proto.preemptions = rj.job.Proto.preemptions + 1 };
    enqueue ~front:true t rj
  | _, Some Watchdog_kill -> retry_or_fail t rj None
  | Unix.WEXITED ((2 | 3) as code), None ->
    (* Usage/type and resource verdicts are deterministic: a retry
       would fail the same way. *)
    finish t rj Proto.Failed (Some code)
  | (Unix.WEXITED _ | Unix.WSIGNALED _ | Unix.WSTOPPED _), None ->
    retry_or_fail t rj
      (match status with Unix.WEXITED c -> Some c | _ -> None)

let take_due t queue =
  let tnow = now () in
  let rec go seen = function
    | [] -> (None, List.rev seen)
    | id :: rest -> (
      match Hashtbl.find_opt t.jobs id with
      | None -> go seen rest
      | Some rj when rj.retry_at <= tnow -> (Some rj, List.rev_append seen rest)
      | Some _ -> go (id :: seen) rest)
  in
  go [] queue

let has_due t queue =
  let tnow = now () in
  List.exists
    (fun id ->
      match Hashtbl.find_opt t.jobs id with
      | Some rj -> rj.retry_at <= tnow
      | None -> false)
    queue

(* One scheduler pass: reap exits, police watchdogs and kill-grace
   escalation, start due jobs in free slots, and preempt a batch worker
   when interactive work is starved. *)
let step t =
  let tnow = now () in
  (* Reap and police running workers. *)
  List.iter
    (fun rj ->
      match rj.pid with
      | None -> ()
      | Some pid -> (
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
          if rj.kill_at > 0.0 then begin
            (* The SIGTERM grace ran out: a wedged worker never reaches
               a cooperative tick, so escalate. *)
            if tnow -. rj.kill_at > t.cfg.kill_grace_s then
              try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()
          end
          else if
            rj.kill_reason = None
            && Watchdog.expired t.cfg.policy ~started_s:rj.started_s
                 ~now_s:tnow
          then begin
            Metrics.incr c_watchdog;
            term_job rj Watchdog_kill
          end
        | _, status -> reap t rj pid status
        | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
          (* Not our child (adopted record raced a reaper); count the
             attempt as lost and let the retry policy decide. *)
          reap t rj pid (Unix.WSIGNALED Sys.sigkill)))
    (running t);
  if t.draining then
    List.iter
      (fun rj -> if rj.kill_reason = None then term_job rj Drain)
      (running t)
  else begin
    (* Promote queued work into free slots, interactive first. *)
    let rec promote () =
      if List.length (running t) < t.cfg.slots then begin
        match take_due t t.iqueue with
        | Some rj, rest ->
          t.iqueue <- rest;
          spawn t rj;
          promote ()
        | None, _ -> (
          match take_due t t.bqueue with
          | Some rj, rest ->
            t.bqueue <- rest;
            spawn t rj;
            promote ()
          | None, _ -> ())
      end
    in
    promote ();
    (* Interactive work still waiting with every slot busy: preempt the
       most recently started batch worker (its checkpoint loses the
       least, and older workers are closer to done). *)
    if has_due t t.iqueue then begin
      let victim =
        running t
        |> List.filter (fun rj ->
               (not (Proto.interactive rj.job.Proto.kind))
               && rj.kill_reason = None)
        |> List.fold_left
             (fun best rj ->
               match best with
               | Some b when b.started_s >= rj.started_s -> best
               | _ -> Some rj)
             None
      in
      Option.iter (fun rj -> term_job rj Preempt) victim
    end
  end;
  update_gauges t

(* ------------------------------------------------------------------ *)
(* Protocol dispatch.                                                  *)
(* ------------------------------------------------------------------ *)

let submit t ~tenant ~kind ~file ~argv =
  if t.draining then Proto.Overloaded { retry_after_s = 5.0 }
  else if live_for_tenant t tenant >= t.cfg.tenant_max then begin
    Metrics.incr c_overloaded;
    Proto.Overloaded { retry_after_s = 1.0 }
  end
  else if queued_count t >= t.cfg.queue_max then begin
    Metrics.incr c_overloaded;
    Proto.Overloaded { retry_after_s = 0.5 }
  end
  else begin
    match In_channel.with_open_bin file In_channel.input_all with
    | exception Sys_error m -> Proto.Bad m
    | source ->
      let key = Proto.cache_key ~kind ~source ~argv in
      let id = t.next_id in
      t.next_id <- id + 1;
      Metrics.incr c_submitted;
      let job =
        {
          Proto.id; tenant; kind; file; argv; state = Proto.Queued;
          attempts = 0; preemptions = 0; exit_code = None; cache = None;
        }
      in
      let rj =
        {
          job; key; pid = None; submitted_s = now (); started_s = 0.0;
          retry_at = 0.0; resume = false; kill_at = 0.0; kill_reason = None;
        }
      in
      Hashtbl.replace t.jobs id rj;
      (match Hashtbl.find_opt t.cache key with
      | Some src_id
        when (match Hashtbl.find_opt t.jobs src_id with
             | Some src -> src.job.Proto.state = Proto.Done
             | None -> false) ->
        (* Cache hit: the job is born terminal, with the cached bytes
           copied into its own output slot. *)
        Metrics.incr c_cache_hits;
        let src = Hashtbl.find t.jobs src_id in
        Out_channel.with_open_bin (out_path t id) (fun oc ->
            Out_channel.output_string oc (read_output t src_id));
        rj.job <-
          {
            rj.job with
            Proto.state = Proto.Done;
            exit_code = src.job.Proto.exit_code;
            cache = Some "hit";
          };
        Metrics.incr c_completed;
        persist t rj;
        Condition.broadcast t.done_cond
      | _ ->
        Metrics.incr c_cache_misses;
        rj.job <- { rj.job with Proto.cache = Some "miss" };
        enqueue t rj;
        update_gauges t);
      Proto.Accepted rj.job
  end

let dispatch t req =
  locked t @@ fun () ->
  match req with
  | Proto.Submit { tenant; kind; file; argv } -> submit t ~tenant ~kind ~file ~argv
  | Proto.Status id -> (
    match Hashtbl.find_opt t.jobs id with
    | Some rj -> Proto.Job rj.job
    | None -> Proto.Bad (Printf.sprintf "unknown job %d" id))
  | Proto.Result { id; wait } -> (
    match Hashtbl.find_opt t.jobs id with
    | None -> Proto.Bad (Printf.sprintf "unknown job %d" id)
    | Some rj ->
      if wait then
        while
          (not (Proto.terminal rj.job.Proto.state)) && not t.draining
        do
          Condition.wait t.done_cond t.m
        done;
      if Proto.terminal rj.job.Proto.state then
        Proto.Outcome { job = rj.job; output = read_output t id }
      else Proto.Job rj.job)
  | Proto.Cancel id -> (
    match Hashtbl.find_opt t.jobs id with
    | None -> Proto.Bad (Printf.sprintf "unknown job %d" id)
    | Some rj ->
      (match rj.job.Proto.state with
      | Proto.Queued ->
        let drop = List.filter (fun i -> i <> id) in
        t.iqueue <- drop t.iqueue;
        t.bqueue <- drop t.bqueue;
        finish t rj Proto.Cancelled None
      | Proto.Running | Proto.Preempting -> term_job rj Cancel_kill
      | _ -> ());
      Proto.Job rj.job)
  | Proto.List_jobs ->
    let js =
      Hashtbl.fold (fun _ rj acc -> rj.job :: acc) t.jobs []
      |> List.sort (fun (a : Proto.job) b -> compare a.Proto.id b.Proto.id)
    in
    Proto.Jobs js
  | Proto.Metrics -> Proto.Text (Expose.render ())
  | Proto.Shutdown ->
    t.drain_to_zero <- true;
    t.draining <- true;
    Condition.broadcast t.done_cond;
    Proto.Text "draining"

(* ------------------------------------------------------------------ *)
(* Connections.                                                        *)
(* ------------------------------------------------------------------ *)

let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        let rec serve_lines () =
          let line = input_line ic in
          if String.trim line <> "" then begin
            let reply =
              match Jsonx.of_string line with
              | Error m -> Proto.Bad (Printf.sprintf "bad JSON: %s" m)
              | Ok json -> (
                match Proto.request_of_json json with
                | Error m -> Proto.Bad m
                | Ok req -> dispatch t req)
            in
            output_string oc (Jsonx.to_string (Proto.reply_to_json reply));
            output_char oc '\n';
            flush oc
          end;
          serve_lines ()
        in
        serve_lines ()
      with End_of_file | Sys_error _ | Unix.Unix_error _ -> ())

let rec accept_loop t sock =
  match Unix.accept sock with
  | fd, _ ->
    ignore (Thread.create (fun () -> handle_conn t fd) ());
    accept_loop t sock
  | exception Unix.Unix_error _ -> ()  (* listener closed: drain *)

(* ------------------------------------------------------------------ *)
(* Restart adoption.                                                   *)
(* ------------------------------------------------------------------ *)

(* A pid recorded in the spool may have outlived a kill -9 of the
   daemon.  Put it down before spawning a successor that would share
   its output file — but only when the live process is really a dcheck
   (pids recycle). *)
let kill_orphan pid =
  let cmdline =
    try
      In_channel.with_open_bin
        (Printf.sprintf "/proc/%d/cmdline" pid)
        In_channel.input_all
    with Sys_error _ -> ""
  in
  let looks_like_dcheck =
    let rec find i =
      i + 6 <= String.length cmdline
      && (String.sub cmdline i 6 = "dcheck" || find (i + 1))
    in
    find 0
  in
  if looks_like_dcheck then (
    try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())

let adopt t =
  Spool.ensure_dir t.cfg.spool;
  Spool.clean_tmp ~dir:t.cfg.spool;
  let records, torn = Spool.load ~dir:t.cfg.spool ~decode:decode_record in
  if torn > 0 then
    Fmt.epr "dcheck serve: skipped %d torn spool record(s)@." torn;
  List.iter
    (fun (_, (job, pid)) ->
      let id = job.Proto.id in
      if id >= t.next_id then t.next_id <- id + 1;
      let rj =
        {
          job; key = ""; pid = None; submitted_s = now (); started_s = 0.0;
          retry_at = 0.0; resume = false; kill_at = 0.0; kill_reason = None;
        }
      in
      (rj.key <-
         (match
            In_channel.with_open_bin job.Proto.file In_channel.input_all
          with
         | source ->
           Proto.cache_key ~kind:job.Proto.kind ~source ~argv:job.Proto.argv
         | exception Sys_error _ -> ""));
      Hashtbl.replace t.jobs id rj;
      if Proto.terminal job.Proto.state then begin
        if
          job.Proto.state = Proto.Done
          && rj.key <> ""
          && job.Proto.cache <> Some "hit"
          && Sys.file_exists (out_path t id)
        then Hashtbl.replace t.cache rj.key id
      end
      else begin
        (* Queued, or mid-run when the old daemon died: requeue, and
           resume from the snapshot when the dead attempt left one. *)
        Option.iter kill_orphan pid;
        Metrics.incr c_adopted;
        rj.resume <- Sys.file_exists (snap_path t id);
        enqueue t rj
      end)
    records;
  update_gauges t

(* ------------------------------------------------------------------ *)
(* Main loop.                                                          *)
(* ------------------------------------------------------------------ *)

let run cfg =
  let t =
    {
      cfg;
      m = Mutex.create ();
      done_cond = Condition.create ();
      jobs = Hashtbl.create 64;
      cache = Hashtbl.create 64;
      next_id = 1;
      iqueue = [];
      bqueue = [];
      draining = false;
      drain_to_zero = false;
      listener = None;
    }
  in
  locked t (fun () -> adopt t);
  let host, ip, port =
    match Telemetry.parse_addr cfg.listen with
    | Ok v -> v
    | Error m -> failwith m
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (ip, port));
  Unix.listen sock 64;
  let port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  t.listener <- Some sock;
  Printf.printf "dcheck: serving on %s:%d\n%!" host port;
  (* Replace dcheck's exit-now SIGTERM handler with a drain request for
     the daemon's lifetime: stop admitting, checkpoint the workers,
     spool everything, then exit 143 ourselves. *)
  (try
     Sys.set_signal Sys.sigterm
       (Sys.Signal_handle (fun _ -> t.draining <- true))
   with Invalid_argument _ | Sys_error _ -> ());
  ignore (Thread.create (fun () -> accept_loop t sock) ());
  let rec loop () =
    let finished =
      locked t (fun () ->
          step t;
          t.draining && running t = [])
    in
    if finished then ()
    else begin
      Thread.delay 0.02;
      loop ()
    end
  in
  loop ();
  (* Drained: close the listener, wake blocked waiters, and leave every
     non-terminal job spooled as queued for the next instance. *)
  (try Unix.close sock with Unix.Unix_error _ -> ());
  locked t (fun () -> Condition.broadcast t.done_cond);
  Thread.delay 0.05;
  if t.drain_to_zero then 0 else 143
