(** The serve wire protocol: JSON lines over loopback TCP.

    Each connection carries a sequence of requests, one JSON object per
    line, each answered by one JSON object on its own line.  The
    protocol is deliberately small — submit work, poll or wait for it,
    cancel it, list it, scrape the metrics registry — and every reply
    carries ["ok"] so clients can branch without sniffing shapes. *)

open Detcor_obs

(** The three job kinds the daemon runs, each a dcheck subcommand. *)
type kind = Verify | Synthesize | Simulate

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

(** [Verify] jobs are interactive — they may preempt a running batch
    ([Synthesize]/[Simulate]) job to get a slot. *)
val interactive : kind -> bool

type state =
  | Queued
  | Running
  | Preempting  (** asked to checkpoint and yield its slot *)
  | Done  (** ran to completion; [exit_code] is the verdict *)
  | Failed  (** retries exhausted, watchdog-killed, or unspawnable *)
  | Cancelled

val state_to_string : state -> string
val state_of_string : string -> state option

(** [true] once a job can never run again. *)
val terminal : state -> bool

(** One job as both sides see it; also the daemon's spool record. *)
type job = {
  id : int;
  tenant : string;
  kind : kind;
  file : string;  (** the .dc program the job runs on *)
  argv : string list;  (** extra dcheck arguments *)
  state : state;
  attempts : int;  (** spawns so far, retries included *)
  preemptions : int;
  exit_code : int option;  (** set when [Done] or [Failed] *)
  cache : string option;  (** ["hit"]/["miss"], set when [Done] *)
}

val job_to_json : job -> Jsonx.t
val job_of_json : Jsonx.t -> job option

(** The result cache key — and the checkpoint-session-style fingerprint
    binding a job to exactly the work it does: two submissions share a
    key iff kind, program source and argument vector all agree.  Unlike
    the checkpoint fingerprint this includes every argument (engine,
    shard and worker choices select genuinely different runs to a cache,
    even when a resume could legally cross them). *)
val cache_key : kind:kind -> source:string -> argv:string list -> string

type request =
  | Submit of {
      tenant : string;
      kind : kind;
      file : string;
      argv : string list;
    }
  | Status of int
  | Result of { id : int; wait : bool }
      (** with [wait], the reply is delayed until the job is terminal *)
  | Cancel of int
  | List_jobs
  | Metrics  (** the Prometheus exposition of the daemon's registry *)
  | Shutdown  (** graceful drain, then the daemon exits 0 *)

val request_to_json : request -> Jsonx.t
val request_of_json : Jsonx.t -> (request, string) result

type reply =
  | Accepted of job  (** submit: queued (or an immediate cache hit) *)
  | Job of job  (** status *)
  | Jobs of job list  (** list *)
  | Outcome of { job : job; output : string }  (** result *)
  | Text of string  (** metrics *)
  | Overloaded of { retry_after_s : float }
      (** admission control refused the submit; try again later *)
  | Bad of string  (** malformed request, unknown id, … *)

val reply_to_json : reply -> Jsonx.t
val reply_of_json : Jsonx.t -> (reply, string) result
