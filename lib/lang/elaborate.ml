(* Elaboration of the surface syntax into kernel programs, fault classes,
   invariants and specifications. *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

(* Elaboration failures are static typing/scoping problems, so they raise
   [Detcor_robust.Error.Detcor_error (Type_error _)]. *)
let error fmt = Detcor_robust.Error.type_error fmt

type elaborated = {
  program : Program.t;
  faults : Fault.t;
  invariant : Pred.t;
  spec : Spec.t;
  source : Ast.program;
}

(* Domains are materialized as value lists, so an absurd range like
   0..999999999 must be rejected here — with a typed error — rather than
   exhaust memory building it. *)
let max_domain_size = 1_000_000

let domain_of_decl = function
  | Ast.Dbool -> Domain.boolean
  | Ast.Drange (lo, hi) ->
    if lo > hi then error "empty range %d..%d" lo hi;
    (* hi - lo overflows to negative when the bounds span most of the int
       range; treat that as over the cap too. *)
    if hi - lo < 0 || hi - lo + 1 > max_domain_size then
      error "range %d..%d is too large (over %d values)" lo hi max_domain_size;
    Domain.range lo hi
  | Ast.Dsymbols names ->
    if names = [] then error "empty symbol domain";
    Domain.symbols names

type env = {
  vars : (string * Domain.t) list;
  preds : (string * Ast.expr) list;
}

(* Resolve an AST expression to a kernel expression.  Identifiers resolve,
   in order, to: a declared variable, a defined predicate (inlined, with
   cycle detection), or a symbolic constant. *)
let rec resolve env ~inlining = function
  | Ast.Ident x ->
    if List.mem_assoc x env.vars then Expr.var x
    else if List.mem_assoc x env.preds then begin
      if List.mem x inlining then
        error "predicate %s is defined in terms of itself" x;
      resolve env ~inlining:(x :: inlining) (List.assoc x env.preds)
    end
    else Expr.sym x
  | Ast.Int n -> Expr.int n
  | Ast.Bool b -> Expr.bool b
  | Ast.Not e -> Expr.not_ (resolve env ~inlining e)
  | Ast.If (c, a, b) ->
    Expr.ite (resolve env ~inlining c) (resolve env ~inlining a)
      (resolve env ~inlining b)
  | Ast.Binop (op, a, b) ->
    let a = resolve env ~inlining a and b = resolve env ~inlining b in
    let f =
      match op with
      | Ast.Band -> fun a b -> Expr.and_ [ a; b ]
      | Ast.Bor -> fun a b -> Expr.or_ [ a; b ]
      | Ast.Bimplies -> Expr.implies
      | Ast.Biff -> Expr.iff
      | Ast.Beq -> Expr.eq
      | Ast.Bneq -> Expr.neq
      | Ast.Blt -> Expr.lt
      | Ast.Ble -> Expr.le
      | Ast.Bgt -> Expr.gt
      | Ast.Bge -> Expr.ge
      | Ast.Badd -> Expr.add
      | Ast.Bsub -> Expr.sub
      | Ast.Bmul -> Expr.mul
      | Ast.Bmod -> Expr.mod_
    in
    f a b

let expr env e = resolve env ~inlining:[] e

let pred env ?name e =
  let kexpr = expr env e in
  Pred.of_expr ?name kexpr

(* Build the statement of an action from its assignment list.  Wildcard
   assignments ('x := ?') fan out over the variable's domain. *)
let statement env (assignments : Ast.assignment list) =
  let compiled =
    List.map
      (fun (a : Ast.assignment) ->
        let domain =
          match List.assoc_opt a.target env.vars with
          | Some d -> d
          | None -> error "assignment to undeclared variable %s" a.target
        in
        match a.value with
        | Some e ->
          let ke = expr env e in
          (a.target, `Expr ke)
        | None -> (a.target, `Any domain))
      assignments
  in
  fun st ->
    let rec expand acc = function
      | [] -> [ acc ]
      | (x, `Expr ke) :: rest ->
        (* Right-hand sides read the pre-state, as in simultaneous
           assignment. *)
        expand ((x, Expr.eval st ke) :: acc) rest
      | (x, `Any d) :: rest ->
        List.concat_map
          (fun value -> expand ((x, value) :: acc) rest)
          (Domain.values d)
    in
    List.map (State.update_many st) (expand [] compiled)

let action env (a : Ast.action_decl) =
  let guard = pred env ~name:(Fmt.str "guard(%s)" a.aname) a.guard in
  Action.make ?based_on:a.based_on a.aname guard (statement env a.assignments)

let spec_of_decls env name decls =
  let safety = ref Safety.top in
  let liveness = ref Liveness.top in
  List.iter
    (function
      | Ast.Spec (Ast.Safety_never e) ->
        safety := Safety.conj !safety (Safety.never (pred env e))
      | Ast.Spec (Ast.Safety_always e) ->
        safety := Safety.conj !safety (Safety.always (pred env e))
      | Ast.Spec (Ast.Safety_pair (p, q)) ->
        safety :=
          Safety.conj !safety (Safety.generalized_pair (pred env p) (pred env q))
      | Ast.Spec (Ast.Liveness_leadsto (p, q)) ->
        liveness :=
          Liveness.conj !liveness (Liveness.leads_to (pred env p) (pred env q))
      | Ast.Spec (Ast.Liveness_eventually e) ->
        liveness := Liveness.conj !liveness (Liveness.eventually (pred env e))
      | Ast.Var _ | Ast.Invariant _ | Ast.Pred_def _ | Ast.Action _ -> ())
    decls;
  Spec.make ~name:(Fmt.str "SPEC_%s" name) ~safety:!safety ~liveness:!liveness ()

let elaborate (src : Ast.program) =
  (match Typecheck.check src with
  | [] -> ()
  | problems ->
    error "%s" (String.concat "\n" problems));
  let vars =
    List.filter_map
      (function
        | Ast.Var (x, d) -> Some (x, domain_of_decl d)
        | _ -> None)
      src.decls
  in
  let preds =
    List.filter_map
      (function Ast.Pred_def (x, e) -> Some (x, e) | _ -> None)
      src.decls
  in
  let env = { vars; preds } in
  let action_decls =
    List.filter_map
      (function Ast.Action a -> Some a | _ -> None)
      src.decls
  in
  let program_actions =
    List.filter_map
      (fun (a : Ast.action_decl) ->
        if a.is_fault then None else Some (action env a))
      action_decls
  in
  let fault_actions =
    List.filter_map
      (fun (a : Ast.action_decl) ->
        if a.is_fault then Some (action env a) else None)
      action_decls
  in
  let invariants =
    List.filter_map
      (function Ast.Invariant e -> Some (pred env e) | _ -> None)
      src.decls
  in
  let invariant =
    match invariants with
    | [] -> Pred.true_
    | ps -> Pred.make "invariant" (fun st -> List.for_all (fun p -> Pred.holds p st) ps)
  in
  let program =
    Program.make ~name:src.pname ~vars ~actions:program_actions
  in
  let faults = Fault.make (Fmt.str "F_%s" src.pname) fault_actions in
  let spec = spec_of_decls env src.pname src.decls in
  { program; faults; invariant; spec; source = src }

let load_file path = elaborate (Parser.parse_file path)
let load_string src = elaborate (Parser.parse_string src)
