(** Elaboration of the surface guarded-command language into kernel
    programs, fault classes, invariants and specifications. *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

type elaborated = {
  program : Program.t;  (** the non-fault actions *)
  faults : Fault.t;  (** the [fault] declarations *)
  invariant : Pred.t;  (** conjunction of [invariant] declarations *)
  spec : Spec.t;  (** conjunction of [spec] declarations *)
  source : Ast.program;
}

val elaborate : Ast.program -> elaborated
val load_file : string -> elaborated
val load_string : string -> elaborated
