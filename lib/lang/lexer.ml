(* Hand-rolled lexer for the guarded-command language.
   Comments run from '#' or '//' to end of line.
   All rejections raise [Detcor_robust.Error.Detcor_error (Parse _)]. *)

type located = {
  token : Token.t;
  line : int;
  column : int;
}

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let col = ref 1 in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let advance () =
    (match src.[!pos] with
    | '\n' ->
      incr line;
      col := 1
    | _ -> incr col);
    incr pos
  in
  let error message =
    Detcor_robust.Error.parse ~line:!line ~col:!col "%s" message
  in
  let emit token l c = tokens := { token; line = l; column = c } :: !tokens in
  while !pos < n do
    let l = !line and c = !col in
    let ch = src.[!pos] in
    if ch = ' ' || ch = '\t' || ch = '\r' || ch = '\n' then advance ()
    else if ch = '#' || (ch = '/' && peek 1 = Some '/') then
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    else if is_ident_start ch then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        advance ()
      done;
      let word = String.sub src start (!pos - start) in
      match Token.keyword word with
      | Some kw -> emit kw l c
      | None -> emit (Token.IDENT word) l c
    end
    else if is_digit ch then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        advance ()
      done;
      let lexeme = String.sub src start (!pos - start) in
      (* Reject out-of-range literals here rather than letting
         [int_of_string] escape as a bare [Failure]. *)
      match int_of_string_opt lexeme with
      | Some v -> emit (Token.INT v) l c
      | None ->
        Detcor_robust.Error.parse ~line:l ~col:c
          "integer literal %s out of range" lexeme
    end
    else begin
      let two = if !pos + 1 < n then String.sub src !pos 2 else "" in
      let take2 tok =
        advance ();
        advance ();
        emit tok l c
      in
      let take1 tok =
        advance ();
        emit tok l c
      in
      match two with
      | ":=" -> take2 Token.ASSIGN
      | "->" -> take2 Token.ARROW
      | "~>" -> take2 Token.LEADSTO
      | "&&" -> take2 Token.AND
      | "||" -> take2 Token.OR
      | "=>" -> take2 Token.IMPLIES
      | "!=" -> take2 Token.NEQ
      | "<=" ->
        if peek 2 = Some '>' then begin
          advance ();
          advance ();
          advance ();
          emit Token.IFF l c
        end
        else take2 Token.LE
      | ">=" -> take2 Token.GE
      | ".." -> take2 Token.DOTDOT
      | _ -> (
        match ch with
        | '=' -> take1 Token.EQ
        | '<' -> take1 Token.LT
        | '>' -> take1 Token.GT
        | '!' -> take1 Token.NOT
        | '+' -> take1 Token.PLUS
        | '-' -> take1 Token.MINUS
        | '*' -> take1 Token.STAR
        | '%' -> take1 Token.PERCENT
        | '(' -> take1 Token.LPAREN
        | ')' -> take1 Token.RPAREN
        | '{' -> take1 Token.LBRACE
        | '}' -> take1 Token.RBRACE
        | ':' -> take1 Token.COLON
        | ',' -> take1 Token.COMMA
        | '?' -> take1 Token.QUESTION
        | _ -> error (Fmt.str "unexpected character %C" ch))
    end
  done;
  emit Token.EOF !line !col;
  List.rev !tokens
