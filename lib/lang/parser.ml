(* Recursive-descent parser for the guarded-command language.
   All rejections raise [Detcor_robust.Error.Detcor_error (Parse _)]. *)

type stream = {
  mutable tokens : Lexer.located list;
  mutable depth : int; (* current expression-nesting depth *)
}

let peek s =
  match s.tokens with
  | t :: _ -> t
  | [] ->
    (* the lexer always appends EOF *)
    Detcor_robust.Error.internal "Parser.peek: token stream without EOF"

let error_at (t : Lexer.located) message =
  Detcor_robust.Error.parse ~line:t.line ~col:t.column "%s" message

(* Recursion bound for the expression grammar: a hostile source of deeply
   nested parentheses (or a long right-associative operator chain) must be
   rejected with a located diagnostic, not a [Stack_overflow]. *)
let max_depth = 1000

let deeper s f =
  s.depth <- s.depth + 1;
  if s.depth > max_depth then begin
    let t = peek s in
    Detcor_robust.Error.parse ~line:t.line ~col:t.column
      "expression nesting too deep (more than %d levels)" max_depth
  end;
  let r = f () in
  s.depth <- s.depth - 1;
  r

let next s =
  let t = peek s in
  (match s.tokens with _ :: rest when t.token <> Token.EOF -> s.tokens <- rest | _ -> ());
  t

let expect s token =
  let t = next s in
  if t.token <> token then
    error_at t
      (Fmt.str "expected %s but found %s" (Token.to_string token)
         (Token.to_string t.token))

let accept s token =
  let t = peek s in
  if t.token = token then begin
    ignore (next s);
    true
  end
  else false

let ident s =
  let t = next s in
  match t.token with
  | Token.IDENT x -> x
  | other -> error_at t (Fmt.str "expected identifier, found %s" (Token.to_string other))

let integer s =
  let t = next s in
  match t.token with
  | Token.INT n -> n
  | Token.MINUS -> (
    let t2 = next s in
    match t2.token with
    | Token.INT n -> -n
    | other ->
      error_at t2 (Fmt.str "expected integer, found %s" (Token.to_string other)))
  | other -> error_at t (Fmt.str "expected integer, found %s" (Token.to_string other))

(* ------------------------------------------------------------------ *)
(* Expressions, by precedence climbing.                                *)
(* ------------------------------------------------------------------ *)

let rec parse_expr s = parse_iff s

and parse_iff s =
  deeper s @@ fun () ->
  let lhs = parse_implies s in
  if accept s Token.IFF then Ast.Binop (Ast.Biff, lhs, parse_iff s) else lhs

and parse_implies s =
  deeper s @@ fun () ->
  let lhs = parse_or s in
  if accept s Token.IMPLIES then Ast.Binop (Ast.Bimplies, lhs, parse_implies s)
  else lhs

and parse_or s =
  deeper s @@ fun () ->
  let lhs = parse_and s in
  if accept s Token.OR then Ast.Binop (Ast.Bor, lhs, parse_or s) else lhs

and parse_and s =
  deeper s @@ fun () ->
  let lhs = parse_cmp s in
  if accept s Token.AND then Ast.Binop (Ast.Band, lhs, parse_and s) else lhs

and parse_cmp s =
  let lhs = parse_add s in
  let op =
    match (peek s).token with
    | Token.EQ -> Some Ast.Beq
    | Token.NEQ -> Some Ast.Bneq
    | Token.LT -> Some Ast.Blt
    | Token.LE -> Some Ast.Ble
    | Token.GT -> Some Ast.Bgt
    | Token.GE -> Some Ast.Bge
    | _ -> None
  in
  match op with
  | Some op ->
    ignore (next s);
    Ast.Binop (op, lhs, parse_add s)
  | None -> lhs

and parse_add s =
  let rec loop lhs =
    match (peek s).token with
    | Token.PLUS ->
      ignore (next s);
      loop (Ast.Binop (Ast.Badd, lhs, parse_mul s))
    | Token.MINUS ->
      ignore (next s);
      loop (Ast.Binop (Ast.Bsub, lhs, parse_mul s))
    | _ -> lhs
  in
  loop (parse_mul s)

and parse_mul s =
  let rec loop lhs =
    match (peek s).token with
    | Token.STAR ->
      ignore (next s);
      loop (Ast.Binop (Ast.Bmul, lhs, parse_unary s))
    | Token.PERCENT ->
      ignore (next s);
      loop (Ast.Binop (Ast.Bmod, lhs, parse_unary s))
    | _ -> lhs
  in
  loop (parse_unary s)

and parse_unary s =
  deeper s @@ fun () ->
  if accept s Token.NOT then Ast.Not (parse_unary s) else parse_atom s

and parse_atom s =
  deeper s @@ fun () ->
  let t = next s in
  match t.token with
  | Token.INT n -> Ast.Int n
  | Token.MINUS -> (
    let t2 = next s in
    match t2.token with
    | Token.INT n -> Ast.Int (-n)
    | other ->
      error_at t2 (Fmt.str "expected integer after '-', found %s" (Token.to_string other)))
  | Token.KW_TRUE -> Ast.Bool true
  | Token.KW_FALSE -> Ast.Bool false
  | Token.IDENT x -> Ast.Ident x
  | Token.LPAREN ->
    let e = parse_expr s in
    expect s Token.RPAREN;
    e
  | Token.KW_IF ->
    let c = parse_expr s in
    expect s Token.KW_THEN;
    let a = parse_expr s in
    expect s Token.KW_ELSE;
    let b = parse_expr s in
    Ast.If (c, a, b)
  | other ->
    error_at t (Fmt.str "expected an expression, found %s" (Token.to_string other))

(* ------------------------------------------------------------------ *)
(* Declarations.                                                       *)
(* ------------------------------------------------------------------ *)

let parse_domain s =
  let t = peek s in
  match t.token with
  | Token.KW_BOOL ->
    ignore (next s);
    Ast.Dbool
  | Token.LBRACE ->
    ignore (next s);
    let rec symbols acc =
      let x = ident s in
      if accept s Token.COMMA then symbols (x :: acc)
      else begin
        expect s Token.RBRACE;
        List.rev (x :: acc)
      end
    in
    Ast.Dsymbols (symbols [])
  | Token.INT _ | Token.MINUS ->
    let lo = integer s in
    expect s Token.DOTDOT;
    let hi = integer s in
    Ast.Drange (lo, hi)
  | other ->
    error_at t
      (Fmt.str "expected a domain (bool, lo..hi, or {symbols}), found %s"
         (Token.to_string other))

let parse_assignment s =
  let target = ident s in
  expect s Token.ASSIGN;
  if accept s Token.QUESTION then { Ast.target; value = None }
  else { Ast.target; value = Some (parse_expr s) }

let parse_assignments s =
  let rec loop acc =
    let a = parse_assignment s in
    if accept s Token.COMMA then loop (a :: acc) else List.rev (a :: acc)
  in
  loop []

let parse_action s ~is_fault =
  let aname = ident s in
  let based_on =
    if accept s Token.KW_BASED then begin
      expect s Token.KW_ON;
      Some (ident s)
    end
    else None
  in
  expect s Token.COLON;
  let guard = parse_expr s in
  expect s Token.ARROW;
  let assignments = parse_assignments s in
  { Ast.aname; based_on; guard; assignments; is_fault }

let parse_spec s =
  let t = next s in
  match t.token with
  | Token.KW_SAFETY -> (
    let t2 = next s in
    match t2.token with
    | Token.KW_NEVER -> Ast.Safety_never (parse_expr s)
    | Token.KW_ALWAYS -> Ast.Safety_always (parse_expr s)
    | Token.KW_PAIR ->
      let p = parse_expr s in
      expect s Token.ARROW;
      let q = parse_expr s in
      Ast.Safety_pair (p, q)
    | other ->
      error_at t2
        (Fmt.str "expected 'never', 'always' or 'pair', found %s"
           (Token.to_string other)))
  | Token.KW_LIVENESS ->
    if accept s Token.KW_EVENTUALLY then Ast.Liveness_eventually (parse_expr s)
    else begin
      let p = parse_expr s in
      expect s Token.LEADSTO;
      let q = parse_expr s in
      Ast.Liveness_leadsto (p, q)
    end
  | other ->
    error_at t
      (Fmt.str "expected 'safety' or 'liveness', found %s" (Token.to_string other))

let parse_decl s =
  let t = next s in
  match t.token with
  | Token.KW_VAR ->
    let x = ident s in
    expect s Token.COLON;
    let d = parse_domain s in
    Ast.Var (x, d)
  | Token.KW_INVARIANT -> Ast.Invariant (parse_expr s)
  | Token.KW_PRED ->
    let x = ident s in
    expect s Token.EQ;
    Ast.Pred_def (x, parse_expr s)
  | Token.KW_ACTION -> Ast.Action (parse_action s ~is_fault:false)
  | Token.KW_FAULT -> Ast.Action (parse_action s ~is_fault:true)
  | Token.KW_SPEC -> Ast.Spec (parse_spec s)
  | other ->
    error_at t
      (Fmt.str
         "expected a declaration (var, invariant, pred, action, fault, spec), \
          found %s"
         (Token.to_string other))

let parse_program tokens =
  let s = { tokens; depth = 0 } in
  expect s Token.KW_PROGRAM;
  let pname = ident s in
  let rec decls acc =
    if (peek s).token = Token.EOF then List.rev acc
    else decls (parse_decl s :: acc)
  in
  { Ast.pname; decls = decls [] }

let parse_string src = parse_program (Lexer.tokenize src)

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_string src
