(* Umbrella module: the whole toolkit under one namespace.

     open Detcor
     let report =
       Tolerance.is_masking Systems.Memory.masking
         ~spec:Systems.Memory.spec ~invariant:Systems.Memory.s
         ~faults:Systems.Memory.page_fault

   The sub-libraries remain directly usable for finer-grained
   dependencies. *)

(* Kernel *)
module Value = Detcor_kernel.Value
module Domain = Detcor_kernel.Domain
module State = Detcor_kernel.State
module Expr = Detcor_kernel.Expr
module Pred = Detcor_kernel.Pred
module Action = Detcor_kernel.Action
module Program = Detcor_kernel.Program

(* Robustness: the error taxonomy and resource budgets *)
module Error = Detcor_robust.Error
module Budget = Detcor_robust.Budget

(* Semantics *)
module Ts = Detcor_semantics.Ts
module Graph = Detcor_semantics.Graph
module Fairness = Detcor_semantics.Fairness
module Check = Detcor_semantics.Check
module Trace = Detcor_semantics.Trace
module Explain = Detcor_semantics.Explain
module Dot = Detcor_semantics.Dot

(* Specifications *)
module Safety = Detcor_spec.Safety
module Liveness = Detcor_spec.Liveness
module Spec = Detcor_spec.Spec

(* The paper's contribution *)
module Fault = Detcor_core.Fault
module Detector = Detcor_core.Detector
module Corrector = Detcor_core.Corrector
module Detection_predicate = Detcor_core.Detection_predicate
module Refinement = Detcor_core.Refinement
module Tolerance = Detcor_core.Tolerance
module Extraction = Detcor_core.Extraction
module Theorems = Detcor_core.Theorems
module Compose = Detcor_core.Compose
module Multitolerance = Detcor_core.Multitolerance

(* Synthesis *)
module Synthesize = Detcor_synthesis.Synthesize

(* Surface language *)
module Lang = struct
  module Token = Detcor_lang.Token
  module Lexer = Detcor_lang.Lexer
  module Ast = Detcor_lang.Ast
  module Parser = Detcor_lang.Parser
  module Typecheck = Detcor_lang.Typecheck
  module Elaborate = Detcor_lang.Elaborate
end

(* Example systems *)
module Systems = struct
  module Memory = Detcor_systems.Memory
  module Tmr = Detcor_systems.Tmr
  module Byzantine = Detcor_systems.Byzantine
  module Token_ring = Detcor_systems.Token_ring
  module Ring_mutex = Detcor_systems.Ring_mutex
  module Barrier = Detcor_systems.Barrier
  module Leader_election = Detcor_systems.Leader_election
  module Termination = Detcor_systems.Termination
  module Distributed_reset = Detcor_systems.Distributed_reset
end

(* Simulation *)
module Sim = struct
  module Scheduler = Detcor_sim.Scheduler
  module Injector = Detcor_sim.Injector
  module Runner = Detcor_sim.Runner
  module Monitor = Detcor_sim.Monitor
  module Stats = Detcor_sim.Stats
end
