(** Dijkstra's K-state token ring [9] — the paper's canonical corrector: a
    self-stabilizing program is a corrector of its own legitimacy predicate
    (witness = correction predicate).  Nonmasking tolerant to arbitrary
    counter corruption for K ≥ n. *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

type config = {
  processes : int;
  counter_values : int;  (** K *)
}

(** [make_config ?k n]: [n] processes with counters in [{0..k-1}]
    (default [k = n]).  An explicit [k < n] is accepted for scale
    experiments over the safety half of the spec — Dijkstra's
    convergence needs [k >= n], so such configs are only sound for
    fail-safe obligations.  @raise Invalid_argument if [n < 2] or
    [k < 2]. *)
val make_config : ?k:int -> int -> config

val default : config
val xvar : int -> string
val vars : config -> (string * Domain.t) list

(** Process [i] holds the privilege. *)
val privileged : config -> int -> State.t -> bool

val privilege_count : config -> State.t -> int

(** Exactly one privilege in the ring. *)
val legitimate : config -> Pred.t

val has_privilege : config -> int -> Pred.t
val program : config -> Program.t

(** Arbitrary transient corruption of any counter. *)
val corruption : config -> Fault.t

(** Legitimacy closed; every process privileged infinitely often. *)
val spec : config -> Spec.t

(** The ideal-stabilization reading (Nesterenko & Tixeuil): circulation
    only, no safety half.  Masking the ring against {!corruption} under
    {!spec}'s safety is formally unsolvable — faults reach every state,
    so [ms] is the whole product space; under the ideal spec the
    synthesized corrector carries the whole burden instead. *)
val spec_ideal : config -> Spec.t

(** The ring as corrector of its legitimacy predicate. *)
val corrector : config -> Corrector.t
