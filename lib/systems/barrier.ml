(* Barrier computation — the first case study the paper's introduction
   lists for the component-based design method.

   n processes advance through P phases; the barrier property says a
   process may enter phase k+1 only when no peer is still below phase k.
   Variables: ph.i in 0..P-1 (terminating computation; the run ends when
   everyone reaches P-1).

   - the intolerant program caches the barrier check: a process first
     *detects* "nobody is behind me" into a flag done.i, then advances on
     the flag.  Correct in the absence of faults — but the cached witness
     goes stale when a fault restarts a peer, and the process overtakes
     it: the classic stale-detector failure;
   - the tolerant program evaluates the detector witness "I am a minimum"
     (∀j: ph.j >= ph.i) at the advance itself — exactly the weakest
     detection predicate of the advance action;
   - fault: phase loss — a process is reset to phase 0 (a restart).

   With the fresh detector the system is masking tolerant: phase loss
   only ever *lowers* a phase, the guarded peers wait, and the restarted
   process catches up — recovery without a separate corrector, because
   the program's own progress actions double as the corrector of the
   window invariant. *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

type config = {
  processes : int;
  phases : int;
}

let make_config ?(phases = 4) processes =
  if processes < 2 then invalid_arg "Barrier.make_config: need >= 2 processes";
  if phases < 2 then invalid_arg "Barrier.make_config: need >= 2 phases";
  { processes; phases }

let default = make_config 3

(* Variable names are read inside closures evaluated once per product
   state, so memoize the formatting. *)
let memo_var prefix =
  let cache = Hashtbl.create 16 in
  fun i ->
    match Hashtbl.find_opt cache i with
    | Some s -> s
    | None ->
      let s = Fmt.str "%s%d" prefix i in
      Hashtbl.add cache i s;
      s

let phvar = memo_var "ph"

let vars cfg =
  List.init cfg.processes (fun i -> (phvar i, Domain.range 0 (cfg.phases - 1)))

let phase st i = Value.as_int (State.get st (phvar i))

let procs cfg = List.init cfg.processes Fun.id

(* The barrier window: no two processes more than one phase apart. *)
let window cfg =
  let procs = procs cfg in
  Pred.make "phases within window 1" (fun st ->
      let phs = List.map (phase st) procs in
      let lo = List.fold_left min max_int phs in
      let hi = List.fold_left max min_int phs in
      hi - lo <= 1)

let all_done cfg =
  let procs = procs cfg in
  Pred.make "all at final phase" (fun st ->
      List.for_all (fun i -> phase st i = cfg.phases - 1) procs)

(* The detector witness of process i: nobody is behind me. *)
let is_minimum cfg i =
  let procs = procs cfg in
  Pred.make
    (Fmt.str "min_%d" i)
    (fun st -> List.for_all (fun j -> phase st j >= phase st i) procs)

let can_advance cfg i =
  Pred.make (Fmt.str "ph%d<last" i) (fun st -> phase st i < cfg.phases - 1)

let advance ?based_on ~guard name i =
  Action.deterministic ?based_on name guard (fun st ->
      State.set st (phvar i) (Value.int (phase st i + 1)))

let donevar = memo_var "done"

let done_flag i =
  Pred.make (Fmt.str "done%d" i) (fun st ->
      match State.find_opt st (donevar i) with
      | Some (Value.Bool b) -> b
      | Some _ | None -> false)

(* The fault-intolerant barrier: detect into a flag, advance on the flag.
   The flag is a cached witness that faults can make stale. *)
let intolerant cfg =
  let detect i =
    Action.deterministic
      (Fmt.str "detect%d" i)
      (Pred.and_
         (Pred.and_ (can_advance cfg i) (Pred.not_ (done_flag i)))
         (is_minimum cfg i))
      (fun st -> State.set st (donevar i) (Value.bool true))
  in
  let adv i =
    Action.deterministic
      (Fmt.str "adv%d" i)
      (Pred.and_ (done_flag i) (can_advance cfg i))
      (fun st ->
        State.set
          (State.set st (phvar i) (Value.int (phase st i + 1)))
          (donevar i) (Value.bool false))
  in
  Program.make ~name:"barrier-intolerant"
    ~vars:(vars cfg @ List.init cfg.processes (fun i -> (donevar i, Domain.boolean)))
    ~actions:(List.concat_map (fun i -> [ detect i; adv i ]) (procs cfg))

(* Invariant of the intolerant barrier: the window, plus consistency of
   the cached witnesses. *)
let intolerant_invariant cfg =
  let window = window cfg in
  let procs = procs cfg in
  let flags = List.map (fun i -> (done_flag i, is_minimum cfg i)) procs in
  Pred.make "window /\\ fresh flags" (fun st ->
      Pred.holds window st
      && List.for_all
           (fun (flag, minimum) ->
             (not (Pred.holds flag st)) || Pred.holds minimum st)
           flags)

(* The tolerant barrier: advance only as a minimum (the detector). *)
let tolerant cfg =
  Program.make ~name:"barrier" ~vars:(vars cfg)
    ~actions:
      (List.map
         (fun i ->
           advance
             ~based_on:(Fmt.str "adv%d" i)
             ~guard:(Pred.and_ (can_advance cfg i) (is_minimum cfg i))
             (Fmt.str "badv%d" i)
             i)
         (procs cfg))

(* Phase loss: one process restarts at phase 0 (at most [max_losses]
   restarts, to keep the run terminating). *)
let phase_loss ?(max_losses = 1) cfg =
  let lost =
    Pred.make "losses<limit" (fun st ->
        match State.find_opt st "losses" with
        | Some (Value.Int n) -> n < max_losses
        | Some _ | None -> max_losses > 0)
  in
  let reset i =
    Action.deterministic
      (Fmt.str "F:restart-%d" i)
      lost
      (fun st ->
        let n =
          match State.find_opt st "losses" with
          | Some (Value.Int n) -> n
          | Some _ | None -> 0
        in
        State.set (State.set st (phvar i) (Value.int 0)) "losses" (Value.int (n + 1)))
  in
  Fault.make "phase-loss"
    ~aux_vars:[ ("losses", Domain.range 0 max_losses) ]
    (List.map reset (procs cfg))

(* SPEC_barrier: a process never enters phase k+1 while a peer is below
   phase k (bad transition: an advance that overtakes a laggard), and
   eventually everyone completes. *)
let spec cfg =
  let procs = procs cfg in
  let overtaking st st' =
    List.exists
      (fun i ->
        phase st' i = phase st i + 1
        && List.exists (fun j -> phase st j < phase st i) procs)
      procs
  in
  Spec.make ~name:"SPEC_barrier"
    ~safety:(Safety.make ~name:"no barrier overtaking" ~bad_transition:overtaking ())
    ~liveness:(Liveness.eventually ~name:"all complete" (all_done cfg))
    ()

let invariant cfg = window cfg

(* The conceptual base program the tolerant barrier refines: advance
   whenever phases remain, with no safety guard at all.  The tolerant
   program's actions are [based_on] these, so Theorem 3.4's extraction
   can compute the detection predicates the detector theory promises. *)
let unguarded cfg =
  Program.make ~name:"barrier-unguarded" ~vars:(vars cfg)
    ~actions:
      (List.map
         (fun i -> advance ~guard:(can_advance cfg i) (Fmt.str "adv%d" i) i)
         (procs cfg))
