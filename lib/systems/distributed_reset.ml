(* Distributed reset — the last of the introduction's case studies: a
   diffusing reset wave over a line of processes, packaged as a corrector.

   Each process i holds application state x.i (corrupted by transient
   faults) and wave state w.i ∈ {idle, prop, comp}.  The component
   structure is textbook detectors-and-correctors:

   - detector:  a process that observes local corruption raises the
     global request flag (raise.i);
   - corrector: the root answers a request by flooding a reset wave down
     the line (start, prop.i) — each process zeroes its application state
     as the wave passes — after which a completion wave folds back up
     (comp.i) and an idling wave releases the machinery (finish, idle.i).

   The composed system is nonmasking tolerant to corruption of the
   application state: from any span state it converges back to
   "application zeroed, machinery idle, no pending request". *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

type config = { processes : int }

let make_config n =
  if n < 2 then invalid_arg "Distributed_reset.make_config: need >= 2 processes";
  { processes = n }

let default = make_config 3

(* Variable names are read inside closures evaluated once per product
   state, so memoize the formatting. *)
let memo_var prefix =
  let cache = Hashtbl.create 16 in
  fun i ->
    match Hashtbl.find_opt cache i with
    | Some s -> s
    | None ->
      let s = Fmt.str "%s%d" prefix i in
      Hashtbl.add cache i s;
      s

let xvar = memo_var "x"
let wvar = memo_var "w"

let idle = Value.sym "idle"
let prop = Value.sym "prop"
let comp = Value.sym "comp"

let wave_domain = Domain.of_values [ idle; prop; comp ]

let vars cfg =
  (("req", Domain.boolean)
  :: List.init cfg.processes (fun i -> (xvar i, Domain.range 0 1)))
  @ List.init cfg.processes (fun i -> (wvar i, wave_domain))

let procs cfg = List.init cfg.processes Fun.id

let x st i = Value.as_int (State.get st (xvar i))
let w st i = State.get st (wvar i)
let req st = Value.as_bool (State.get st "req")

(* The global target: application zeroed, machinery idle, no request. *)
let settled cfg =
  let procs = procs cfg in
  Pred.make "reset settled" (fun st ->
      (not (req st))
      && List.for_all (fun i -> x st i = 0 && Value.equal (w st i) idle) procs)

let corrupted cfg =
  let procs = procs cfg in
  Pred.make "some x corrupted" (fun st ->
      List.exists (fun i -> x st i <> 0) procs)

let all_idle cfg =
  let procs = procs cfg in
  Pred.make "machinery idle" (fun st ->
      List.for_all (fun i -> Value.equal (w st i) idle) procs)

(* [lazy_start = true] reproduces the first design of this module, whose
   root starts a new wave as soon as it is itself idle.  The fair-cycle
   checker refutes it: a fresh wave overtakes the draining release wave
   and folds its completion against the *previous* wave's stale [comp]
   marks, so the wave never actually reaches the corrupted tail — the
   classic overlapping-diffusing-computations bug.  The correct root
   waits for the whole line to drain. *)
let actions ?(lazy_start = false) cfg =
  let n = cfg.processes in
  (* Detector: local corruption raises the request. *)
  let raise_ i =
    Action.deterministic
      (Fmt.str "raise_%d" i)
      (Pred.make
         (Fmt.str "x%d corrupt, no request" i)
         (fun st -> x st i <> 0 && not (req st)))
      (fun st -> State.set st "req" (Value.bool true))
  in
  (* Root answers a request: start the propagation wave, zeroing itself. *)
  let start =
    let ready =
      if lazy_start then
        Pred.make "root idle" (fun st -> Value.equal (w st 0) idle)
      else all_idle cfg
    in
    Action.deterministic "start"
      (Pred.make "request at drained line" (fun st ->
           req st && Pred.holds ready st))
      (fun st ->
        State.update_many st [ (wvar 0, prop); (xvar 0, Value.int 0) ])
  in
  (* The wave flows down, zeroing as it goes. *)
  let prop_ i =
    Action.deterministic
      (Fmt.str "prop_%d" i)
      (Pred.make
         (Fmt.str "wave reaches %d" i)
         (fun st ->
           Value.equal (w st (i - 1)) prop && Value.equal (w st i) idle))
      (fun st ->
        State.update_many st [ (wvar i, prop); (xvar i, Value.int 0) ])
  in
  (* Completion folds back up from the leaf. *)
  let comp_ i =
    Action.deterministic
      (Fmt.str "comp_%d" i)
      (Pred.make
         (Fmt.str "completion reaches %d" i)
         (fun st ->
           Value.equal (w st i) prop
           && (i = n - 1 || Value.equal (w st (i + 1)) comp)))
      (fun st -> State.set st (wvar i) comp)
  in
  (* The root releases the machinery and clears the request... *)
  let finish =
    let procs = procs cfg in
    Action.deterministic "finish"
      (Pred.make "all complete at root" (fun st ->
           List.for_all (fun i -> Value.equal (w st i) comp) procs))
      (fun st ->
        State.update_many st [ (wvar 0, idle); ("req", Value.bool false) ])
  in
  (* ...and idleness flows down behind it. *)
  let idle_ i =
    Action.deterministic
      (Fmt.str "idle_%d" i)
      (Pred.make
         (Fmt.str "release reaches %d" i)
         (fun st ->
           Value.equal (w st (i - 1)) idle && Value.equal (w st i) comp))
      (fun st -> State.set st (wvar i) idle)
  in
  List.map raise_ (procs cfg)
  @ [ start; finish ]
  @ List.concat_map
      (fun i -> [ prop_ i; idle_ i ])
      (List.filter (fun i -> i > 0) (procs cfg))
  @ List.map comp_ (procs cfg)

let program cfg =
  Program.make ~name:"distributed-reset" ~vars:(vars cfg) ~actions:(actions cfg)

(* The refuted first design, kept as a negative control: the fair-cycle
   checker exhibits the overlapping-waves livelock. *)
let buggy cfg =
  Program.make ~name:"distributed-reset-overlapping" ~vars:(vars cfg)
    ~actions:(actions ~lazy_start:true cfg)

(* Transient corruption of any application cell (the wave variables are
   the protocol's own and are not corrupted in this fault class). *)
let corruption cfg =
  List.fold_left
    (fun acc i -> Fault.union acc (Fault.corrupt_variable (xvar i) (Domain.range 0 1)))
    Fault.none (procs cfg)

(* SPEC_reset: the settled predicate is stable, and it is eventually
   re-established. *)
let spec cfg =
  Spec.make ~name:"SPEC_reset"
    ~safety:(Safety.closure_of (settled cfg))
    ~liveness:(Liveness.eventually ~name:"eventually settled" (settled cfg))
    ()

let invariant = settled

(* Wave integrity: the wave marks along the line always form one of the
   protocol's three legal two-band shapes — [prop^a idle^b] (propagation
   flowing down), [prop^a comp^b] (completion folding up), or
   [idle^a comp^b] (release draining down); [a] or [b] may be zero, so
   all-idle and all-comp are included.  This is the safety half of the
   masking reading: it is closed under every protocol action, and the
   fault class corrupts only the application cells [x.i], never the wave
   marks, so faults alone cannot leave it — unlike [closure_of settled],
   whose ms swallows the settled states themselves (one corruption
   escapes it). *)
let wave_ok cfg =
  let n = cfg.processes in
  let two_band st a b =
    let rec head i =
      if i >= n then i else if Value.equal (w st i) a then head (i + 1) else i
    in
    let k = head 0 in
    let rec tail i =
      i >= n || (Value.equal (w st i) b && tail (i + 1))
    in
    tail k
  in
  Pred.make "wave integrity" (fun st ->
      two_band st prop idle || two_band st prop comp || two_band st idle comp)

(* SPEC_reset under the masking reading: the machinery's wave discipline
   is never violated (not even transiently), and the system always
   re-settles.  [closure_of settled] is the wrong safety half for masking
   against [corruption] — any single corruption of an [x.i] exits
   [settled], so ms includes the invariant itself and the fail-safe
   restriction collapses it; wave integrity is the fault-immune safety
   property the protocol actually maintains. *)
let masking_spec cfg =
  Spec.make ~name:"SPEC_reset-masking"
    ~safety:(Safety.always (wave_ok cfg))
    ~liveness:(Liveness.eventually ~name:"eventually settled" (settled cfg))
    ()

(* The whole protocol as a corrector of the settled predicate. *)
let corrector cfg = Corrector.of_invariant (settled cfg)
