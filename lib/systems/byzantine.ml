(* Byzantine agreement (Section 6.2).

   A general g outputs a binary decision d.g; every non-general process j
   copies it into d.j and then outputs o.j.  Byzantine faults corrupt at
   most one process (possibly the general), permanently and undetectably:
   the corrupted process may change its decision or output arbitrarily.

   Following the paper we restrict to n = 4 (general + 3 non-generals),
   the smallest masking-tolerant configuration for f = 1, but the module
   is parameterized by the number of non-generals for the benches.

   Construction, as in the paper:
   - IB: intolerant — copy then output;
   - DB.j: a detector restricting the output to states where the decision
     matches the majority of the non-general decisions (fail-safe);
   - CB.j: a corrector rewriting d.j to the majority (masking). *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

type config = { non_generals : int }

let default = { non_generals = 3 }

let dec_domain = Domain.range 0 1
let opt_dec_domain = Domain.with_bot (Domain.range 0 1)

(* Variable names are built inside predicate and action closures that the
   engines evaluate once per product state, so memoize the formatting. *)
let memo_var prefix =
  let cache = Hashtbl.create 16 in
  fun j ->
    match Hashtbl.find_opt cache j with
    | Some s -> s
    | None ->
      let s = Fmt.str "%s%d" prefix j in
      Hashtbl.add cache j s;
      s

let dvar = memo_var "d"
let ovar = memo_var "o"
let bvar = memo_var "b" (* j = 0 is the general *)

let procs cfg = List.init cfg.non_generals (fun i -> i + 1)

let vars cfg =
  [ (dvar 0, dec_domain); (bvar 0, Domain.boolean) ]
  @ List.concat_map
      (fun j ->
        [
          (dvar j, opt_dec_domain);
          (ovar j, opt_dec_domain);
          (bvar j, Domain.boolean);
        ])
      (procs cfg)

let v st x = State.get st x
let byz st j = Value.equal (v st (bvar j)) (Value.bool true)
let is_bot value = Value.equal value Value.bot

(* Majority of the non-general decisions; [None] until defined (some still
   ⊥ with no strict majority among the assigned ones). *)
let majority cfg st =
  let decs = List.map (fun j -> v st (dvar j)) (procs cfg) in
  let count value = List.length (List.filter (Value.equal value) decs) in
  let half = List.length decs / 2 in
  let candidates = [ Value.int 0; Value.int 1 ] in
  List.find_opt (fun value -> count value > half) candidates

let all_decided cfg =
  let procs = procs cfg in
  Pred.make "all d.k # bot" (fun st ->
      List.for_all (fun j -> not (is_bot (v st (dvar j)))) procs)

(* corrdecn (Section 6.2): d.g if the general is non-Byzantine, otherwise
   the majority of the non-general decisions. *)
let corrdecn cfg st =
  if not (byz st 0) then Some (v st (dvar 0)) else majority cfg st

(* ------------------------------------------------------------------ *)
(* Specification: agreement + validity (safety), termination (liveness)*)
(* ------------------------------------------------------------------ *)

let agreement_violated cfg st =
  let outputs =
    List.filter_map
      (fun j ->
        if byz st j then None
        else
          let o = v st (ovar j) in
          if is_bot o then None else Some o)
      (procs cfg)
  in
  match outputs with
  | [] -> false
  | o :: rest -> List.exists (fun o' -> not (Value.equal o o')) rest

let validity_violated cfg st =
  (not (byz st 0))
  && List.exists
       (fun j ->
         (not (byz st j))
         && (not (is_bot (v st (ovar j))))
         && not (Value.equal (v st (ovar j)) (v st (dvar 0))))
       (procs cfg)

let all_output cfg =
  Pred.make "all non-Byz output" (fun st ->
      List.for_all
        (fun j -> byz st j || not (is_bot (v st (ovar j))))
        (procs cfg))

let spec cfg =
  Spec.make ~name:"SPEC_byz"
    ~safety:
      (Safety.make ~name:"agreement & validity"
         ~bad_state:(fun st ->
           agreement_violated cfg st || validity_violated cfg st)
         ())
    ~liveness:(Liveness.eventually ~name:"termination" (all_output cfg))
    ()

(* S: no process Byzantine; decisions are ⊥ or d.g; outputs are ⊥ or the
   (already copied) decision.  For the detector/corrector-equipped
   programs the invariant additionally records that an output only exists
   once every decision is in — the states actually reachable in fault-free
   runs, where outputs pass the DB witness.  Without this strengthening
   the span would contain "half-output" states unreachable without faults,
   from which no 1-Byzantine-tolerant protocol can maintain agreement. *)
let invariant_weak cfg =
  let procs = procs cfg in
  Pred.make "S_byz" (fun st ->
      (not (byz st 0))
      && List.for_all
           (fun j ->
             (not (byz st j))
             && (is_bot (v st (dvar j)) || Value.equal (v st (dvar j)) (v st (dvar 0)))
             && (is_bot (v st (ovar j))
                || ((not (is_bot (v st (dvar j))))
                   && Value.equal (v st (ovar j)) (v st (dvar j)))))
           procs)

let invariant cfg =
  let weak = invariant_weak cfg in
  let decided = all_decided cfg in
  let procs = procs cfg in
  Pred.make "S_byz_strong" (fun st ->
      Pred.holds weak st
      && List.for_all
           (fun j -> is_bot (v st (ovar j)) || Pred.holds decided st)
           procs)

(* ------------------------------------------------------------------ *)
(* The fault class: at most one process becomes Byzantine; a Byzantine  *)
(* process changes its decision or output arbitrarily (finitely often,  *)
(* per Assumption 2).                                                   *)
(* ------------------------------------------------------------------ *)

let none_byz cfg =
  let procs = procs cfg in
  Pred.make "no process Byzantine" (fun st ->
      (not (byz st 0)) && List.for_all (fun j -> not (byz st j)) procs)

let corrupt_var name guard =
  Action.make (Fmt.str "F:byz-%s" name) guard (fun st ->
      [ State.set st name (Value.int 0); State.set st name (Value.int 1) ])

let byzantine_faults cfg =
  (* Becoming Byzantine also gives the process an arbitrary (non-⊥)
     decision: a corrupted process has *some* state, and modeling it as ⊥
     forever would let a silent Byzantine process block the honest ones on
     the paper's witness predicate, a liveness hole the paper's prose
     glosses over (its Byzantine process "is allowed to change its
     decision arbitrarily").  See DESIGN.md. *)
  let become j =
    Action.make
      (Fmt.str "F:become-byz-%d" j)
      (none_byz cfg)
      (fun st ->
        let st = State.set st (bvar j) (Value.bool true) in
        if j = 0 then [ st ]
        else
          [
            State.set st (dvar j) (Value.int 0);
            State.set st (dvar j) (Value.int 1);
          ])
  in
  let arbitrary j =
    let guard = Pred.make (Fmt.str "b%d" j) (fun st -> byz st j) in
    if j = 0 then [ corrupt_var (dvar 0) guard ]
    else [ corrupt_var (dvar j) guard; corrupt_var (ovar j) guard ]
  in
  Fault.make "one-byzantine"
    (List.map become (0 :: procs cfg)
    @ List.concat_map arbitrary (0 :: procs cfg))

(* ------------------------------------------------------------------ *)
(* IB: the fault-intolerant program.                                   *)
(* ------------------------------------------------------------------ *)

let copy_action _cfg j =
  Action.deterministic
    (Fmt.str "IB1_%d" j)
    (Pred.make
       (Fmt.str "!b%d /\\ d%d=bot" j j)
       (fun st -> (not (byz st j)) && is_bot (v st (dvar j))))
    (fun st -> State.set st (dvar j) (v st (dvar 0)))

let output_guard j =
  Pred.make
    (Fmt.str "!b%d /\\ d%d#bot /\\ o%d=bot" j j j)
    (fun st ->
      (not (byz st j)) && (not (is_bot (v st (dvar j)))) && is_bot (v st (ovar j)))

let output_action ?based_on ?extra_guard name j =
  let guard =
    match extra_guard with
    | None -> output_guard j
    | Some g -> Pred.and_ (output_guard j) g
  in
  Action.deterministic ?based_on name guard (fun st ->
      State.set st (ovar j) (v st (dvar j)))

let intolerant cfg =
  Program.make ~name:"IB" ~vars:(vars cfg)
    ~actions:
      (List.concat_map
         (fun j -> [ copy_action cfg j; output_action (Fmt.str "IB2_%d" j) j ])
         (procs cfg))

(* ------------------------------------------------------------------ *)
(* DB.j: the detector.  Witness: all non-general decisions assigned and *)
(* d.j equals their majority.  Detection predicate: d.j = corrdecn.     *)
(* ------------------------------------------------------------------ *)

let db_witness cfg j =
  let decided = all_decided cfg in
  Pred.make
    (Fmt.str "DB-witness_%d" j)
    (fun st ->
      Pred.holds decided st
      &&
      match majority cfg st with
      | Some m -> Value.equal (v st (dvar j)) m
      | None -> false)

let db_detection cfg j =
  Pred.make
    (Fmt.str "d%d=corrdecn" j)
    (fun st ->
      match corrdecn cfg st with
      | Some c -> Value.equal (v st (dvar j)) c
      | None -> false)

let detector cfg j =
  Detector.make
    ~name:(Fmt.str "DB_%d" j)
    ~witness:(db_witness cfg j)
    ~detection:(db_detection cfg j)
    ()

(* The fail-safe program: outputs restricted by the detector witness. *)
let failsafe cfg =
  Program.make ~name:"IB[]DB" ~vars:(vars cfg)
    ~actions:
      (List.concat_map
         (fun j ->
           [
             copy_action cfg j;
             output_action
               ~based_on:(Fmt.str "IB2_%d" j)
               ~extra_guard:(db_witness cfg j)
               (Fmt.str "DBIB2_%d" j)
               j;
           ])
         (procs cfg))

(* ------------------------------------------------------------------ *)
(* CB.j: the corrector — rewrite d.j to the majority when it disagrees. *)
(* ------------------------------------------------------------------ *)

let cb_action cfg j =
  let decided = all_decided cfg in
  Action.deterministic
    (Fmt.str "CB1_%d" j)
    (Pred.make
       (Fmt.str "CB-guard_%d" j)
       (fun st ->
         (not (byz st j))
         && Pred.holds decided st
         &&
         match majority cfg st with
         | Some m -> not (Value.equal (v st (dvar j)) m)
         | None -> false))
    (fun st ->
      match majority cfg st with
      | Some m -> State.set st (dvar j) m
      | None -> st)

let corrector cfg j =
  Corrector.make
    ~name:(Fmt.str "CB_%d" j)
    ~witness:(db_witness cfg j)
    ~correction:(db_detection cfg j)
    ()

(* The masking program: IB [] DB;IB2 [] CB. *)
let masking cfg =
  Program.add_actions (failsafe cfg) (List.map (cb_action cfg) (procs cfg))
  |> Program.with_name "IB[]DB[]CB"
