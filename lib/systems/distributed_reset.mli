(** Distributed reset — a diffusing reset wave over a line of processes,
    structured exactly as the paper prescribes: a detector raises the
    request on local corruption, a corrector (the wave) re-establishes
    the global predicate.  Nonmasking tolerant to application-state
    corruption. *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

type config = { processes : int }

val make_config : int -> config
val default : config
val xvar : int -> string
val wvar : int -> string
val vars : config -> (string * Domain.t) list

(** Application zeroed, machinery idle, no pending request. *)
val settled : config -> Pred.t

(** Some application cell is corrupted. *)
val corrupted : config -> Pred.t

val program : config -> Program.t

(** The refuted first design (the root restarts over a draining release
    wave): the fair-cycle checker exhibits an overlapping-waves livelock
    in which a corrupted tail cell is never reset. *)
val buggy : config -> Program.t

(** Transient corruption of any application cell. *)
val corruption : config -> Fault.t

(** [settled] stable and eventually re-established. *)
val spec : config -> Spec.t

(** Wave integrity: the wave marks always form one of the protocol's
    three legal two-band shapes ([prop*idle*], [prop*comp*],
    [idle*comp*]).  Closed under every protocol action and immune to
    {!corruption} (which touches only application cells). *)
val wave_ok : config -> Pred.t

(** The masking reading of the reset spec: {!wave_ok} always holds and
    the system eventually re-settles.  {!spec}'s [closure_of settled]
    safety is unsuitable for masking synthesis against {!corruption} —
    one corruption escapes it from inside the invariant, so [ms] swallows
    the invariant itself. *)
val masking_spec : config -> Spec.t

val invariant : config -> Pred.t
val corrector : config -> Corrector.t
