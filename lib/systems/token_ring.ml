(* Dijkstra's K-state token ring [9], the paper's canonical corrector.

   The concluding remarks report a compositional PVS proof of this program
   with the detector/corrector theory; here it serves as the showcase
   nonmasking system: a self-stabilizing program IS a corrector of its own
   legitimacy predicate (the Arora-Gouda special case where the witness
   equals the correction predicate).

   n processes in a ring, each with a counter x.i in {0..K-1}:
   - process 0 is privileged when x.0 = x.(n-1); its move increments
     x.0 mod K;
   - process i > 0 is privileged when x.i <> x.(i-1); its move copies
     x.(i-1).

   Legitimate states: exactly one process privileged.  For K >= n the
   program converges from arbitrary states to the legitimate set and the
   privilege then circulates forever — nonmasking tolerance to arbitrary
   corruption of the counters. *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

type config = {
  processes : int;
  counter_values : int; (* K *)
}

(* K >= n is Dijkstra's convergence condition; an explicit smaller [k]
   is allowed for scale experiments that only exercise the safety half
   (the product space K^n stays tractable while the ring gets long) —
   convergence from arbitrary states is then forfeit, so such configs
   are only sound for fail-safe obligations. *)
let make_config ?k n =
  if n < 2 then invalid_arg "Token_ring.make_config: need at least 2 processes";
  let counter_values =
    match k with
    | None -> n
    | Some k ->
      if k < 2 then
        invalid_arg "Token_ring.make_config: need at least 2 counter values";
      k
  in
  { processes = n; counter_values }

let default = make_config 4

let xvar i = Fmt.str "x%d" i

let vars cfg =
  List.init cfg.processes (fun i -> (xvar i, Domain.range 0 (cfg.counter_values - 1)))

let counter st i = Value.as_int (State.get st (xvar i))

(* Privilege predicates. *)
let privileged cfg i st =
  if i = 0 then counter st 0 = counter st (cfg.processes - 1)
  else counter st i <> counter st (i - 1)

let privilege_count cfg st =
  List.length
    (List.filter (fun i -> privileged cfg i st) (List.init cfg.processes Fun.id))

(* The legitimacy predicate: exactly one privilege in the ring. *)
let legitimate cfg =
  Pred.make "exactly-one-privilege" (fun st -> privilege_count cfg st = 1)

let has_privilege cfg i =
  Pred.make (Fmt.str "privileged_%d" i) (fun st -> privileged cfg i st)

let actions cfg =
  let move_0 =
    Action.deterministic "move_0"
      (has_privilege cfg 0)
      (fun st ->
        State.set st (xvar 0)
          (Value.int ((counter st 0 + 1) mod cfg.counter_values)))
  in
  let move i =
    Action.deterministic (Fmt.str "move_%d" i)
      (has_privilege cfg i)
      (fun st -> State.set st (xvar i) (Value.int (counter st (i - 1))))
  in
  move_0 :: List.init (cfg.processes - 1) (fun i -> move (i + 1))

let program cfg = Program.make ~name:"token-ring" ~vars:(vars cfg) ~actions:(actions cfg)

(* Transient faults: arbitrary corruption of any counter. *)
let corruption cfg =
  List.fold_left
    (fun acc (x, d) -> Fault.union acc (Fault.corrupt_variable x d))
    Fault.none (vars cfg)

(* SPEC_ring: legitimacy is closed, and every process is privileged
   infinitely often (token circulation). *)
let spec cfg =
  Spec.make ~name:"SPEC_token-ring"
    ~safety:(Safety.closure_of (legitimate cfg))
    ~liveness:
      (Liveness.conj_list
         (List.init cfg.processes (fun i ->
              Liveness.leads_to
                ~name:(Fmt.str "process %d eventually privileged" i)
                Pred.true_ (has_privilege cfg i))))
    ()

(* SPEC under the ideal-stabilization reading (Nesterenko & Tixeuil):
   only the liveness half — circulation from wherever the system is.
   Masking the ring against [corruption] with SPEC_ring's safety half is
   formally unsolvable: faults can corrupt every counter, so ms (the
   states from which faults alone escape cl(legitimate)) is the whole
   product space and the fail-safe restriction has nothing left to keep.
   The ideal spec has no computation to exclude, so every state can be
   legitimate and the synthesized corrector carries the whole burden. *)
let spec_ideal cfg =
  Spec.make ~name:"SPEC_token-ring-ideal"
    ~liveness:
      (Liveness.conj_list
         (List.init cfg.processes (fun i ->
              Liveness.leads_to
                ~name:(Fmt.str "process %d eventually privileged" i)
                Pred.true_ (has_privilege cfg i))))
    ()

(* The ring as a corrector: legitimate corrects legitimate (witness =
   correction predicate, the Arora-Gouda form). *)
let corrector cfg = Corrector.of_invariant (legitimate cfg)
