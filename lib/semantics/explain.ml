(* Counterexample explanation: turn a checker violation into an executable
   witness — a shortest trace from the system's initial states to the
   offending state or transition, plus the looping states for fairness
   violations. *)

open Detcor_kernel

type t = {
  prefix : Trace.t; (* from an initial state to the violation site *)
  cycle : State.t list; (* nonempty for fair-cycle violations *)
  description : string;
}

let trace_of_path ts (start, steps) =
  let trace_steps =
    List.map
      (fun (aid, j) ->
        { Trace.action = Action.name (Ts.action ts aid); target = Ts.state ts j })
      steps
  in
  Trace.make (Ts.state ts start) trace_steps

(* Shortest path from the initials to a target state. *)
let to_state ts st =
  match Ts.index_of ts st with
  | None -> None
  | Some goal ->
    Option.map (trace_of_path ts)
      (Graph.shortest_path ts ~from:(Ts.initials ts) ~target:(fun i -> i = goal))

(* Extend a trace by one concrete transition when the system has it. *)
let with_step ts trace ~action ~target =
  ignore ts;
  Trace.append trace ~action ~target

let violation ts (v : Check.violation) =
  match v with
  | Check.Bad_state st ->
    Option.map
      (fun prefix ->
        { prefix; cycle = []; description = "reaches a bad state" })
      (to_state ts st)
  | Check.Not_implied st ->
    Option.map
      (fun prefix ->
        { prefix; cycle = []; description = "reaches a state refuting the implication" })
      (to_state ts st)
  | Check.Deadlock st ->
    Option.map
      (fun prefix -> { prefix; cycle = []; description = "reaches a deadlock" })
      (to_state ts st)
  | Check.Bad_transition (s, action, s') ->
    Option.map
      (fun prefix ->
        {
          prefix = with_step ts prefix ~action ~target:s';
          cycle = [];
          description = "takes a bad transition";
        })
      (to_state ts s)
  | Check.Fair_cycle states -> (
    match states with
    | [] -> None
    | first :: _ ->
      Option.map
        (fun prefix ->
          {
            prefix;
            cycle = states;
            description = "reaches a fair cycle it can follow forever";
          })
        (to_state ts first))

let of_outcome ts = function
  | Check.Holds | Check.Unknown _ -> None
  | Check.Fails v -> violation ts v

let pp ppf e =
  Fmt.pf ppf "@[<v>%s:@,%a%a@]" e.description Trace.pp e.prefix
    Fmt.(
      if e.cycle = [] then nop
      else fun ppf () ->
        pf ppf "@,loop: {%a}" (list ~sep:(any "; ") State.pp) e.cycle)
    ()
