(** Explicit-state transition systems.

    The semantic graph of a program: nodes are states (indexed by dense
    integers), edges are (action id, successor id) pairs stored in CSR
    (compressed sparse row) arrays.  All decision procedures (closure,
    convergence, leads-to, fairness, safety) run on this structure.

    Three engines build the same structure and produce identical state
    numbering, edges and initials:

    - {!Packed} (chosen by {!Auto} whenever the program's declared domains
      cover the explored states): a {!Layout} packs each state into a
      single integer rank for interning, and predicate / guard sweeps are
      cached in per-system bitsets, so {!holds_at} and {!enabled} answer in
      O(1) after one sweep.  Frontier expansion can run on OCaml 5 domains
      ([?workers]) with a deterministic in-order merge.
    - {!Reference}: the seed list-based path (map-keyed interning, direct
      predicate evaluation on every query), kept as the fallback for
      programs whose actions step outside their declared domains and as the
      oracle for differential testing.
    - {!Sharded}: the out-of-core engine for explorations past RAM — state
      and CSR arenas are hash-partitioned into shards whose level-aligned
      segments spill to checksummed files under a spill directory (see
      {!set_shard_defaults}), reloading on demand.  Exploration order is
      identical to {!Packed}; only residency differs. *)

open Detcor_kernel

type t

(** Engine selection: [Auto] uses the packed engine and falls back to the
    reference engine when the program's states do not fit a {!Layout};
    [Packed] insists (raising {!Layout.Unrepresentable} otherwise);
    [Reference] forces the seed path; [Sharded] (never chosen by [Auto])
    forces the out-of-core engine and, like [Packed], requires a layout. *)
type engine = Auto | Packed | Reference | Sharded

exception Too_large of int

val default_limit : int

(** Process-wide parameters of the {!Sharded} engine, set once by the
    CLI before dispatching: shard count (clamped to
    {!Shard_store.max_shards}), spill directory ([None] keeps all arenas
    resident — no out-of-core behavior, just the sharded layout), and
    the resident arena budget in MiB (enforced only when spilling is
    possible). *)
val set_shard_defaults :
  shards:int -> spill_dir:string option -> arena_budget_mb:int -> unit

(** The current sharded-engine parameters:
    [(shards, spill_dir, arena_budget_mb)]. *)
val shard_defaults : unit -> int * string option * int

(** [build program ~from] explores forward from the given initial states.
    Every recorded state is reachable from [from].  [workers] > 1 expands
    large frontiers on that many OCaml domains (the result is identical to
    the sequential build); actions and predicates must then be pure.
    @raise Too_large if more than [limit] states are encountered. *)
val build :
  ?limit:int -> ?engine:engine -> ?workers:int -> Program.t ->
  from:State.t list -> t

(** [full program] builds the system over the whole product state space. *)
val full : ?limit:int -> ?engine:engine -> ?workers:int -> Program.t -> t

(** [of_pred program ~from] explores from all product-space states
    satisfying [from]. *)
val of_pred :
  ?limit:int -> ?engine:engine -> ?workers:int -> Program.t -> from:Pred.t -> t

val program : t -> Program.t
val num_states : t -> int
val state : t -> int -> State.t
val states : t -> State.t list
val initials : t -> int list
val actions : t -> Action.t array
val num_actions : t -> int
val action : t -> int -> Action.t

(** The layout compiled for this system, when the packed engine built it. *)
val layout : t -> Layout.t option

(** Which engine actually built this system ({!Packed}, {!Reference} or
    {!Sharded}). *)
val engine_of : t -> engine

val engine_name : engine -> string

(** Why an [Auto] build fell back to the reference engine, when it did:
    a human-readable diagnosis (layout overflow, or which variable / value
    escaped its declared domain).  [None] when no fallback happened. *)
val fallback_reason : t -> string option

(** For a sharded system, [(shard count, spills, spilled bytes,
    reloads)]; [None] for the other engines. *)
val shard_stats : t -> (int * int * int * int) option

val num_edges : t -> int

(** Outgoing edges of a state: [(action id, target id)] list.  Allocates;
    prefer {!iter_out} on hot paths. *)
val edges_of : t -> int -> (int * int) list

(** [iter_out ts i f] calls [f action_id target_id] for each outgoing edge
    of state [i], in edge order, without allocating. *)
val iter_out : t -> int -> (int -> int -> unit) -> unit

val out_degree : t -> int -> int
val fold_out : t -> int -> ('a -> int -> int -> 'a) -> 'a -> 'a
val index_of : t -> State.t -> int option
val action_id : t -> string -> int option

(** Ids of the actions named in the list — used to separate fault actions
    from program actions in a composed [p [] F] system. *)
val action_ids_of_names : t -> string list -> int list

val iter_edges : t -> (int -> int -> int -> unit) -> unit
val fold_edges : t -> ('a -> int -> int -> int -> 'a) -> 'a -> 'a

(** Reverse CSR adjacency over a class of actions (see {!reverse}). *)
type reverse

(** [reverse ?keep ts]: the in-edge arrays of [ts] restricted to edges
    whose action id satisfies [keep] (default: all).  Two O(edges)
    sweeps; backward fixpoints then iterate predecessors by index. *)
val reverse : ?keep:(int -> bool) -> t -> reverse

(** [iter_in rev j f] calls [f action_id source_id] for each kept in-edge
    of state [j], without allocating. *)
val iter_in : reverse -> int -> (int -> int -> unit) -> unit

(** [pred_bitset ts pred]: bitset of the states satisfying [pred].  Cached
    per predicate instance on packed systems; computed afresh on reference
    systems. *)
val pred_bitset : t -> Pred.t -> Bitset.t

(** [enabled_bitset ts aid]: bitset of the states where action [aid]'s
    guard holds; cached like {!pred_bitset}. *)
val enabled_bitset : t -> int -> Bitset.t

(** [enabled ts i aid]: guard of action [aid] true at state [i]. *)
val enabled : t -> int -> int -> bool

(** No action enabled at state [i]. *)
val deadlocked : t -> int -> bool

(** Indices of states satisfying the predicate, ascending. *)
val satisfying : t -> Pred.t -> int list

val holds_at : t -> Pred.t -> int -> bool
val pp_stats : t Fmt.t
