(** Dense bit vectors over state indices, backing the predicate and guard
    caches of {!Ts}. *)

type t

val create : int -> t

(** [of_fn n f] is the bitset [{ i < n | f i }]. *)
val of_fn : int -> (int -> bool) -> t

val length : t -> int
val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit
val cardinal : t -> int
val iter_set : t -> (int -> unit) -> unit
val equal : t -> t -> bool
val copy : t -> t

(** [any t] holds iff at least one bit is set. *)
val any : t -> bool

(** [union_into ~into t] ORs [t] into [into] in place, 64 bits at a
    time; the lengths must match. *)
val union_into : into:t -> t -> unit

(** [iter_words t f] calls [f w bits] for each 64-bit window of the
    set, in index order; window [w] covers indices [64w .. 64w+63] and
    the final window is zero-padded.  The word-parallel view used by
    the shard outbox merges. *)
val iter_words : t -> (int -> int64 -> unit) -> unit

(** The raw bit bytes, for snapshot payloads. *)
val to_string : t -> string

(** [of_string length s] rebuilds a set of [length] bits from
    {!to_string} output; the byte count must match exactly. *)
val of_string : int -> string -> t
