(* Decision procedures for the temporal notions of Section 2, over explicit
   transition systems.  Every check returns [Holds] or a counterexample. *)

open Detcor_kernel
open Detcor_obs

type violation =
  | Bad_state of State.t
  | Bad_transition of State.t * string * State.t
      (* source, action name, target *)
  | Deadlock of State.t
  | Fair_cycle of State.t list
  | Not_implied of State.t
      (* a state where an expected implication between predicates fails *)

type outcome =
  | Holds
  | Fails of violation
  | Unknown of Detcor_robust.Error.resource
      (* a resource budget ran out before the obligation was decided;
         sound in both directions: neither a proof nor a refutation *)

let holds = function Holds -> true | Fails _ | Unknown _ -> false
let known = function Unknown _ -> false | Holds | Fails _ -> true

let pp_violation ppf = function
  | Bad_state st -> Fmt.pf ppf "bad state %a" State.pp st
  | Bad_transition (s, ac, s') ->
    Fmt.pf ppf "bad transition %a -[%s]-> %a" State.pp s ac State.pp s'
  | Deadlock st -> Fmt.pf ppf "deadlock at %a" State.pp st
  | Fair_cycle sts ->
    Fmt.pf ppf "fair cycle through {%a}"
      Fmt.(list ~sep:(any "; ") State.pp)
      sts
  | Not_implied st -> Fmt.pf ppf "implication fails at %a" State.pp st

let pp_outcome ppf = function
  | Holds -> Fmt.string ppf "holds"
  | Fails v -> Fmt.pf ppf "fails: %a" pp_violation v
  | Unknown r -> Fmt.pf ppf "unknown: %a" Detcor_robust.Error.pp_resource r

(* First violation among a lazy sequence of candidates. *)
let first_fail checks =
  let rec go = function
    | [] -> Holds
    | check :: rest -> ( match check () with Holds -> go rest | f -> f)
  in
  go checks

(* ------------------------------------------------------------------ *)
(* Closure (Section 2.2, cl(S)): once S holds it continues to hold.    *)
(* ------------------------------------------------------------------ *)

(* [closed ts s]: no reachable transition leaves [s].  This is "p refines
   cl(S) from true" restricted to the explored (reachable) graph. *)
let closed ts s =
  Obs.span "check.closed" @@ fun () ->
  let result = ref Holds in
  (try
     Ts.iter_edges ts (fun i aid j ->
         if Ts.holds_at ts s i && not (Ts.holds_at ts s j) then begin
           result :=
             Fails
               (Bad_transition
                  (Ts.state ts i, Action.name (Ts.action ts aid), Ts.state ts j));
           raise Exit
         end)
   with Exit -> ());
  !result

(* [closed_under_actions ~universe actions s]: every action preserves [s]
   over the whole universe — used for "T is closed in F" (Section 2.3),
   where F's actions must preserve T from anywhere, not only from reachable
   states. *)
let closed_under_actions ~universe actions s =
  Obs.span "check.closed_under_actions"
    ~attrs:[ Attr.int "actions" (List.length actions) ]
  @@ fun () ->
  let check_action ac () =
    let rec go = function
      | [] -> Holds
      | st :: rest ->
        Detcor_robust.Budget.tick ();
        if Pred.holds s st then
          let bad =
            List.find_opt (fun st' -> not (Pred.holds s st')) (Action.execute ac st)
          in
          match bad with
          | Some st' ->
            Fails (Bad_transition (st, Action.name ac, st'))
          | None -> go rest
        else go rest
    in
    go universe
  in
  first_fail (List.map check_action actions)

(* ------------------------------------------------------------------ *)
(* Generalized Hoare triples  {S} p {R}  (Section 2.2.1).              *)
(* ------------------------------------------------------------------ *)

(* Every reachable transition from an S-state lands in an R-state. *)
let hoare_triple ts ~pre ~post =
  Obs.span "check.hoare_triple" @@ fun () ->
  let result = ref Holds in
  (try
     Ts.iter_edges ts (fun i aid j ->
         if Ts.holds_at ts pre i && not (Ts.holds_at ts post j) then begin
           result :=
             Fails
               (Bad_transition
                  (Ts.state ts i, Action.name (Ts.action ts aid), Ts.state ts j));
           raise Exit
         end)
   with Exit -> ());
  !result

(* ------------------------------------------------------------------ *)
(* Safety specifications as bad states + bad transitions.              *)
(* ------------------------------------------------------------------ *)

let safety ts ~bad_state ~bad_transition =
  Obs.span "check.safety" @@ fun () ->
  let result = ref Holds in
  (try
     for i = 0 to Ts.num_states ts - 1 do
       if bad_state (Ts.state ts i) then begin
         result := Fails (Bad_state (Ts.state ts i));
         raise Exit
       end
     done;
     Ts.iter_edges ts (fun i aid j ->
         if bad_transition (Ts.state ts i) (Ts.state ts j) then begin
           result :=
             Fails
               (Bad_transition
                  (Ts.state ts i, Action.name (Ts.action ts aid), Ts.state ts j));
           raise Exit
         end)
   with Exit -> ());
  !result

(* Decomposed safety: when the specification is known to be a set of
   bad-state predicates plus bad (source, target) predicate pairs, the
   predicates are evaluated once per state through the engine's bitset
   cache instead of once per state *visit* through opaque closures, and
   the edge sweep is skipped entirely when there are no pairs — the
   common [never]/[always] case costs one pass over the states and never
   touches the (much larger) edge set.  The verdict, including which
   violation is reported first, is identical to {!safety}. *)
let safety_parts ts ~bad_states ~bad_pairs =
  Obs.span "check.safety" @@ fun () ->
  let result = ref Holds in
  (try
     (match bad_states with
     | [] -> ()
     | preds ->
       let sets = List.map (Ts.pred_bitset ts) preds in
       let n = Ts.num_states ts in
       for i = 0 to n - 1 do
         if List.exists (fun b -> Bitset.get b i) sets then begin
           result := Fails (Bad_state (Ts.state ts i));
           raise Exit
         end
       done);
     match bad_pairs with
     | [] -> ()
     | pairs ->
       let pairs =
         List.map
           (fun (s, r) -> (Ts.pred_bitset ts s, Ts.pred_bitset ts r))
           pairs
       in
       Ts.iter_edges ts (fun i aid j ->
           if
             List.exists
               (fun (bs, br) -> Bitset.get bs i && not (Bitset.get br j))
               pairs
           then begin
             result :=
               Fails
                 (Bad_transition
                    (Ts.state ts i, Action.name (Ts.action ts aid),
                     Ts.state ts j));
             raise Exit
           end)
   with Exit -> ());
  !result

(* ------------------------------------------------------------------ *)
(* Leads-to under weak fairness.                                       *)
(* ------------------------------------------------------------------ *)

(* [leads_to ts p q]: along every fair maximal computation, each state
   satisfying [p] is eventually followed by a state satisfying [q] (the
   state itself counts when it satisfies [q]).

   Violated iff from some reachable [p ∧ ¬q] state there is a fair maximal
   computation confined to [¬q]: either it reaches a deadlock inside [¬q],
   or it is an infinite fair run inside [¬q]. *)
let leads_to ts p q =
  Obs.span "check.leads_to" @@ fun () ->
  let not_q i = not (Ts.holds_at ts q i) in
  let starts = ref [] in
  for i = Ts.num_states ts - 1 downto 0 do
    if Ts.holds_at ts p i && not_q i then starts := i :: !starts
  done;
  let starts = !starts in
  if starts = [] then Holds
  else begin
    let reach = Graph.reachable ~mask:not_q ts ~from:starts in
    let deadlock = ref None in
    (try
       for i = 0 to Ts.num_states ts - 1 do
         if reach.(i) && Ts.deadlocked ts i then begin
           deadlock := Some i;
           raise Exit
         end
       done
     with Exit -> ());
    match !deadlock with
    | Some i -> Fails (Deadlock (Ts.state ts i))
    | None -> (
      match
        Fairness.fair_run_exists ts
          ~region:(fun i -> not_q i && reach.(i))
          ~from:starts
      with
      | Some scc -> Fails (Fair_cycle (List.map (Ts.state ts) scc.members))
      | None -> Holds)
  end

(* [eventually ts q]: every fair maximal computation of the system (from its
   initial states — and hence from every reachable state, by suffix closure)
   reaches [q].  Equivalent to [leads_to true q]. *)
let eventually ts q = leads_to ts Pred.true_ q

(* ------------------------------------------------------------------ *)
(* Converges-to (Section 2.2).                                         *)
(* ------------------------------------------------------------------ *)

(* [converges ts s r]: "S converges to R in p" — cl(S), cl(R), and along
   computations, S implies eventually R. *)
let converges ts s r =
  Obs.span "check.converges" @@ fun () ->
  first_fail
    [
      (fun () -> closed ts s);
      (fun () -> closed ts r);
      (fun () -> leads_to ts s r);
    ]

(* ------------------------------------------------------------------ *)
(* Predicate implication over the system's states.                     *)
(* ------------------------------------------------------------------ *)

let implies ts a b =
  Obs.span "check.implies" @@ fun () ->
  let rec go i =
    Detcor_robust.Budget.tick ();
    if i >= Ts.num_states ts then Holds
    else if Ts.holds_at ts a i && not (Ts.holds_at ts b i) then
      Fails (Not_implied (Ts.state ts i))
    else go (i + 1)
  in
  go 0

(* No reachable deadlock inside the region. *)
let deadlock_free ts ~inside =
  Obs.span "check.deadlock_free" @@ fun () ->
  let rec go i =
    Detcor_robust.Budget.tick ();
    if i >= Ts.num_states ts then Holds
    else if Ts.holds_at ts inside i && Ts.deadlocked ts i then
      Fails (Deadlock (Ts.state ts i))
    else go (i + 1)
  in
  go 0

let all outcomes = first_fail (List.map (fun o () -> o) outcomes)
