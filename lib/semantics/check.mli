(** Decision procedures for the temporal notions of Section 2, over
    explicit transition systems.  Every check returns [Holds] or a
    counterexample-bearing violation. *)

open Detcor_kernel

type violation =
  | Bad_state of State.t
  | Bad_transition of State.t * string * State.t
  | Deadlock of State.t
  | Fair_cycle of State.t list
  | Not_implied of State.t

type outcome =
  | Holds
  | Fails of violation
  | Unknown of Detcor_robust.Error.resource
      (** a resource budget ran out before the obligation was decided *)

(** [Holds] only: [Fails] and [Unknown] are both [false]. *)
val holds : outcome -> bool

(** [Holds] or [Fails]: was the obligation decided within budget? *)
val known : outcome -> bool
val pp_violation : violation Fmt.t
val pp_outcome : outcome Fmt.t

(** [closed ts s]: no reachable transition falsifies [s] — "[s] is closed in
    [p]" (Section 2.2.1) over the explored graph. *)
val closed : Ts.t -> Pred.t -> outcome

(** [closed_under_actions ~universe actions s]: every action preserves [s]
    from anywhere in the universe — "s is closed in F" (Section 2.3). *)
val closed_under_actions :
  universe:State.t list -> Action.t list -> Pred.t -> outcome

(** Generalized Hoare triple [{pre} p {post}] (Section 2.2.1): every
    reachable transition from a [pre]-state lands in a [post]-state. *)
val hoare_triple : Ts.t -> pre:Pred.t -> post:Pred.t -> outcome

(** Safety as bad states + bad transitions over the reachable graph. *)
val safety :
  Ts.t ->
  bad_state:(State.t -> bool) ->
  bad_transition:(State.t -> State.t -> bool) ->
  outcome

(** Decomposed safety: bad-state predicates plus bad (source, target)
    predicate pairs, evaluated through the engine's {!Ts.pred_bitset}
    cache — one pass over the states, and the edge sweep is skipped
    when [bad_pairs] is empty.  Verdict (and first violation) identical
    to {!safety} on the corresponding closures. *)
val safety_parts :
  Ts.t ->
  bad_states:Pred.t list ->
  bad_pairs:(Pred.t * Pred.t) list ->
  outcome

(** [leads_to ts p q] under weak fairness: every [p]-state along every fair
    maximal computation is eventually followed by a [q]-state. *)
val leads_to : Ts.t -> Pred.t -> Pred.t -> outcome

(** [eventually ts q] = [leads_to ts true q]. *)
val eventually : Ts.t -> Pred.t -> outcome

(** [converges ts s r]: "S converges to R in p" (Section 2.2) — [cl s],
    [cl r], and [s] leads to [r]. *)
val converges : Ts.t -> Pred.t -> Pred.t -> outcome

(** [implies ts a b]: [a ⇒ b] at every explored state. *)
val implies : Ts.t -> Pred.t -> Pred.t -> outcome

(** No reachable deadlock inside the region. *)
val deadlock_free : Ts.t -> inside:Pred.t -> outcome

(** Conjunction: first failure wins. *)
val all : outcome list -> outcome
