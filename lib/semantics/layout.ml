(* Variable layouts: the compiled shape of a program's state space.

   A layout fixes, once per program, the order of the variables (sorted by
   name, matching the binding order of [State.t]) and the order of each
   finite domain (sorted by [Value.compare]).  A state that binds exactly
   the layout's variables to in-domain values is then representable as a
   single integer rank in mixed-radix notation.  Ranks are cheap to hash
   and compare, so the packed engine of [Ts] interns states by rank instead
   of hashing whole variable maps.

   Rank order is exactly [State.compare] order: variables are compared in
   ascending name order and domain codes are assigned in ascending
   [Value.compare] order, so the lexicographic rank comparison coincides
   with the map comparison.  [Ts] relies on this to reproduce the seed
   engine's state numbering without sorting. *)

open Detcor_kernel

exception Unrepresentable

(* Why the last [pack] failed.  [pack] sits on the engine's hot path, so
   the diagnosis is a small variant recorded through one atomic store on
   the (exceptional) failure path only; [Ts] reads it back to explain
   Auto→Reference fallbacks. *)
type escape =
  | Extra_variable of string (* state binds a variable the layout lacks *)
  | Missing_variable of string (* state lacks a layout variable *)
  | Out_of_domain of string * Value.t (* value outside the declared domain *)

let pp_escape ppf = function
  | Extra_variable x -> Fmt.pf ppf "state binds undeclared variable %s" x
  | Missing_variable x -> Fmt.pf ppf "state is missing declared variable %s" x
  | Out_of_domain (x, v) ->
    Fmt.pf ppf "variable %s escaped its declared domain (value %a)" x Value.pp v

let last_escape : escape option Atomic.t = Atomic.make None

let escape_reason () = Atomic.get last_escape

let escaped e =
  Atomic.set last_escape (Some e);
  raise Unrepresentable

(* Per-variable encoder from value to domain index.  [pack] runs once per
   generated successor on the engine's hot path, so the common domain
   shapes — contiguous integer ranges and booleans — get arithmetic
   coders; only irregular domains pay for a hash lookup. *)
type coder =
  | Int_range of int (* contiguous ints from [lo]: code = v - lo *)
  | Bool_pair (* [false; true] *)
  | Table of (Value.t, int) Hashtbl.t

type t = {
  vars : string array; (* ascending name order *)
  domains : Value.t array array; (* per variable, ascending value order *)
  strides : int array; (* strides.(k) = product of later domain sizes *)
  coders : coder array; (* value -> domain index *)
  space : int; (* full product size *)
}

(* [of_program p] compiles the layout, or returns [None] when the product
   space overflows the integer range (packed ranks would not fit). *)
let of_program p =
  let decls =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Program.var_decls p)
  in
  let vars = Array.of_list (List.map fst decls) in
  let domains =
    Array.of_list
      (List.map (fun (_, d) -> Array.of_list (Domain.values d)) decls)
  in
  Array.iter (fun d -> Array.sort Value.compare d) domains;
  let n = Array.length vars in
  let strides = Array.make n 1 in
  let space = ref 1 in
  let overflow = ref false in
  for k = n - 1 downto 0 do
    strides.(k) <- !space;
    let size = Array.length domains.(k) in
    if size = 0 || !space > max_int / size then overflow := true
    else space := !space * size
  done;
  if !overflow then None
  else begin
    let coder_of dom =
      let size = Array.length dom in
      let contiguous_ints =
        size > 0
        && (match dom.(0) with
           | Value.Int lo ->
             let ok = ref true in
             Array.iteri
               (fun k v ->
                 match v with
                 | Value.Int i when i = lo + k -> ()
                 | _ -> ok := false)
               dom;
             !ok
           | _ -> false)
      in
      if contiguous_ints then
        Int_range (match dom.(0) with Value.Int lo -> lo | _ -> assert false)
      else if
        size = 2
        && Value.equal dom.(0) (Value.bool false)
        && Value.equal dom.(1) (Value.bool true)
      then Bool_pair
      else begin
        let tbl = Hashtbl.create (2 * size) in
        Array.iteri (fun i v -> Hashtbl.replace tbl v i) dom;
        Table tbl
      end
    in
    let coders = Array.map coder_of domains in
    Some { vars; domains; strides; coders; space = !space }
  end

let num_vars t = Array.length t.vars
let space t = t.space
let var t k = t.vars.(k)
let domain_values t k = Array.to_list t.domains.(k)

(* [pack t st]: the rank of [st], in one lockstep walk over the state's
   bindings (name-sorted) and the layout's variables (also name-sorted).
   @raise Unrepresentable when [st] does not bind exactly the layout's
   variables to in-domain values. *)
(* Domain index of [v] at variable slot [i], or -1 when out of domain. *)
let code_at t i v =
  match (t.coders.(i), v) with
  | Int_range lo, Value.Int x ->
    let c = x - lo in
    if c >= 0 && c < Array.length t.domains.(i) then c else -1
  | Bool_pair, Value.Bool bl -> if bl then 1 else 0
  | (Int_range _ | Bool_pair), _ -> -1
  | Table tbl, _ -> (
    match Hashtbl.find_opt tbl v with Some c -> c | None -> -1)

let pack t st =
  let n = Array.length t.vars in
  let rank = ref 0 in
  let k = ref 0 in
  State.fold
    (fun x v () ->
      let i = !k in
      if i >= n then escaped (Extra_variable x);
      if not (String.equal x t.vars.(i)) then
        (* Both sides are name-sorted: the smaller name is the odd one out. *)
        escaped
          (if String.compare x t.vars.(i) < 0 then Extra_variable x
           else Missing_variable t.vars.(i));
      let code = code_at t i v in
      if code < 0 then escaped (Out_of_domain (x, v))
      else rank := !rank + (code * t.strides.(i));
      incr k)
    st ();
  if !k <> n then escaped (Missing_variable t.vars.(!k));
  !rank

exception Slow

(* [pack_from t ~src_rank src st']: the rank of [st'], computed as a
   delta against the already-ranked source state [src].  Successor
   states share the untouched binding tuples of their source, so the
   common case costs one physical-equality scan plus a couple of coder
   lookups.  Falls back to the full [pack] (and its escape diagnosis)
   whenever the shapes differ or a value is out of domain.

   Precondition: [src_rank = pack t src].  The delta is computed
   against the *claimed* rank, not the source state, so a stale rank
   silently yields a wrong answer.  This matters for the sharded
   engine, where ranks travel through frontier buffers and spill files
   between the pack site and the expansion site: callers there must
   carry the rank next to the state it ranks (the frontier stores
   (gid, rank) pairs for exactly this reason) rather than re-deriving
   it from a different arena's numbering. *)
let pack_from t ~src_rank src st' =
  let rank = ref src_rank in
  match
    State.diff2 src st' (fun k v v' ->
        let c = code_at t k v and c' = code_at t k v' in
        if c < 0 || c' < 0 then raise Slow;
        rank := !rank + ((c' - c) * t.strides.(k)))
  with
  | true -> !rank
  | false -> pack t st'
  | exception Slow -> pack t st'

let pack_opt t st = match pack t st with
  | rank -> Some rank
  | exception Unrepresentable -> None

let unpack t rank =
  if rank < 0 || rank >= t.space then
    Detcor_robust.Error.internal "Layout.unpack: rank %d outside [0,%d)" rank t.space;
  let n = Array.length t.vars in
  let st = ref State.empty in
  for k = 0 to n - 1 do
    let code = rank / t.strides.(k) mod Array.length t.domains.(k) in
    st := State.set !st t.vars.(k) t.domains.(k).(code)
  done;
  !st

(* [unpack_into t sc rank] decodes [rank] into the scratch buffer [sc]
   (created over this layout's variables) instead of allocating a fresh
   state: the gid-order sweeps of the sharded engine decode millions of
   ranks per predicate evaluation and must not build a state per
   visit.  The buffer is invalidated by the next call. *)
let unpack_into t sc rank =
  if rank < 0 || rank >= t.space then
    Detcor_robust.Error.internal "Layout.unpack_into: rank %d outside [0,%d)"
      rank t.space;
  let n = Array.length t.vars in
  for k = 0 to n - 1 do
    let code = rank / t.strides.(k) mod Array.length t.domains.(k) in
    State.scratch_set sc k t.domains.(k).(code)
  done

(* A scratch buffer shaped for {!unpack_into}. *)
let scratch t = State.scratch_create t.vars

(* Enumerate the whole product space in rank order through one reusable
   scratch buffer: visiting a state costs one slot write instead of a
   fresh state allocation.  The buffer passed to [f] is invalidated by the
   next visit; [f] must [State.scratch_copy] any state it retains. *)
let iter_scratch t f =
  let n = Array.length t.vars in
  let sc = State.scratch_create t.vars in
  let rec go k =
    if k = n then begin
      Detcor_robust.Budget.tick ();
      f sc
    end
    else
      Array.iter
        (fun v ->
          State.scratch_set sc k v;
          go (k + 1))
        t.domains.(k)
  in
  go 0

let iter_states t f = iter_scratch t (fun sc -> f (State.scratch_copy sc))

let pp ppf t =
  Fmt.pf ppf "layout: %d vars, %d states" (Array.length t.vars) t.space
