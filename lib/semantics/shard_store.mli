(** Hash-partitioned, disk-spillable state storage for the sharded
    engine of {!Ts}.

    States (as {!Layout} ranks) are owned by shard [rank mod k] and live
    in per-shard arenas of level-aligned segments: a segment's rank
    column fills when a BFS level is interned, its CSR edges fill while
    the next level expands those states, and the sealed result is the
    spill unit — least-recently-used sealed segments are written once to
    checksummed files (the {!Detcor_robust.Checkpoint} file format)
    under the spill directory and reloaded on demand, keeping the
    resident arena bytes under a budget.  Global state ids are dense and
    assigned at the level-barrier merges in (source gid, successor
    position) order, which reproduces the packed engine's numbering
    exactly.  Shards are also the checkpoint unit: {!snapshot} captures
    the segment manifest, per-shard open columns and the gid->shard map;
    {!restore} rebuilds the dedup state deterministically, rereading
    spilled arenas without re-spilling them. *)

type t

(** Raised by {!intern} when the state count would exceed the limit. *)
exception Limit of int

(** Shard counts are clamped to this (the owner map snapshots one byte
    per state). *)
val max_shards : int

(** [create ~k ~layout ~limit ~spill_dir ~arena_budget ~fingerprint ()]:
    an empty store of [k] shards (clamped to [1 .. max_shards]).
    [arena_budget] bounds resident sealed-segment bytes — only enforced
    when [spill_dir] is given.  [on_intern] runs once per newly interned
    state (the live-metrics hook). *)
val create :
  ?on_intern:(unit -> unit) ->
  k:int ->
  layout:Layout.t ->
  limit:int ->
  spill_dir:string option ->
  arena_budget:int ->
  fingerprint:string ->
  unit ->
  t

val k : t -> int
val num_states : t -> int
val num_edges : t -> int

(** (spill count, spilled bytes, reload count) so far. *)
val spill_stats : t -> int * int * int

(** Intern a rank into its owner shard, returning its gid (new or
    already known).  New states are appended to the shard's open column
    — part of the next frontier.
    @raise Limit when the state count would exceed the limit. *)
val intern : t -> int -> int

(** The gid of a rank, if interned. *)
val find : t -> int -> int option

val shard_of : t -> int -> int

(** The rank of a gid (reloading its segment if spilled). *)
val rank_of : t -> int -> int

(** Promote the open columns into fresh frontier segments and return
    the frontier's gid range [(lo, hi)]; empty when exploration is
    done. *)
val begin_level : t -> int * int

(** Append an edge to the source gid's segment CSR.  Sources must
    arrive in nondecreasing gid order within a level — the order
    {!merge} produces. *)
val add_edge : t -> src:int -> aid:int -> tgt:int -> unit

(** Seal the frontier segments (closing their CSR rows) and spill past
    the arena budget. *)
val end_level : t -> unit

(** Per-(producer, owner) successor batches, delta/varint-encoded.
    Each lane has a single writer — the worker expanding the producer
    shard — so cross-shard exchange needs no locks. *)
module Outbox : sig
  type ob

  val create : t -> ob

  (** [put ob ~producer ~gid ~pos ~aid ~rank]: successor [rank] of
      source [gid] (owned by [producer]), the [pos]-th successor of
      that source, via action [aid].  Calls for one producer must come
      in nondecreasing (gid, pos) order. *)
  val put : ob -> producer:int -> gid:int -> pos:int -> aid:int -> rank:int -> unit

  val reset : ob -> unit
end

(** Merge a window [lo, hi) of frontier sources: drain the outboxes in
    global (source gid, successor position) order, interning targets
    and appending edges.  Resets the outbox. *)
val merge : t -> Outbox.ob -> lo:int -> hi:int -> unit

(** [iter_ranks t f]: [f gid rank] for every state, ascending gid. *)
val iter_ranks : t -> (int -> int -> unit) -> unit

(** [iter_out t gid f]: [f aid target_gid] per out-edge, in edge
    order. *)
val iter_out : t -> int -> (int -> int -> unit) -> unit

val out_degree : t -> int -> int

(** [iter_edges t f]: [f src aid tgt] over all edges, sources
    ascending. *)
val iter_edges : t -> (int -> int -> int -> unit) -> unit

(** Serialize the store at a level barrier: the shard manifest (file
    references for spilled segments — all sealed segments, when a spill
    directory is set — inline payloads otherwise), open columns, owner
    map and counters. *)
val snapshot : t -> string

(** Rebuild a store from {!snapshot} output.  Sealed arenas are reread
    (and re-evicted under the budget) to rebind the dedup maps; spill
    files are reused as-is, never rewritten.
    @raise Detcor_robust.Error.Detcor_error on any defect. *)
val restore :
  ?on_intern:(unit -> unit) ->
  layout:Layout.t ->
  limit:int ->
  spill_dir:string option ->
  arena_budget:int ->
  fingerprint:string ->
  string ->
  t
