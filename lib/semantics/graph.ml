(* Graph algorithms over transition systems: reachability and Tarjan's
   strongly-connected components, both with an optional node mask so they
   can run on the subgraph induced by a region of states. *)

let no_mask : int -> bool = fun _ -> true

(* Forward reachability within the masked subgraph. *)
let reachable ?(mask = no_mask) ts ~from =
  let n = Ts.num_states ts in
  let seen = Array.make n false in
  let queue = Queue.create () in
  List.iter
    (fun i ->
      if mask i && not seen.(i) then begin
        seen.(i) <- true;
        Queue.add i queue
      end)
    from;
  while not (Queue.is_empty queue) do
    Detcor_robust.Budget.tick ();
    let i = Queue.pop queue in
    Ts.iter_out ts i (fun _aid j ->
        if mask j && not seen.(j) then begin
          seen.(j) <- true;
          Queue.add j queue
        end)
  done;
  seen

(* Backward reachability: states from which [target] is reachable within the
   masked subgraph. *)
let co_reachable ?(mask = no_mask) ts ~target =
  let n = Ts.num_states ts in
  let preds = Array.make n [] in
  Ts.iter_edges ts (fun i _aid j ->
      if mask i && mask j then preds.(j) <- i :: preds.(j));
  let seen = Array.make n false in
  let queue = Queue.create () in
  List.iter
    (fun i ->
      if mask i && not seen.(i) then begin
        seen.(i) <- true;
        Queue.add i queue
      end)
    target;
  while not (Queue.is_empty queue) do
    Detcor_robust.Budget.tick ();
    let j = Queue.pop queue in
    List.iter
      (fun i ->
        if not seen.(i) then begin
          seen.(i) <- true;
          Queue.add i queue
        end)
      preds.(j)
  done;
  seen

(* Shortest action-labeled path from any state of [from] to any state
   satisfying [target], inside the masked subgraph.  Returns the start
   index and the (action id, state id) steps. *)
let shortest_path ?(mask = no_mask) ts ~from ~target =
  let n = Ts.num_states ts in
  let parent = Array.make n None in
  let seen = Array.make n false in
  let queue = Queue.create () in
  let start_of = Array.make n (-1) in
  List.iter
    (fun i ->
      if mask i && not seen.(i) then begin
        seen.(i) <- true;
        start_of.(i) <- i;
        Queue.add i queue
      end)
    from;
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    if target i then found := Some i
    else
      Ts.iter_out ts i (fun aid j ->
          if mask j && not seen.(j) then begin
            seen.(j) <- true;
            parent.(j) <- Some (i, aid);
            start_of.(j) <- start_of.(i);
            Queue.add j queue
          end)
  done;
  match !found with
  | None -> None
  | Some goal ->
    let rec unwind i acc =
      match parent.(i) with
      | None -> (i, acc)
      | Some (p, aid) -> unwind p ((aid, i) :: acc)
    in
    let start, steps = unwind goal [] in
    Some (start, steps)

type scc = {
  id : int;
  members : int list;
  (* An SCC is trivial when it is a single state with no self-loop: it
     cannot host an infinite computation. *)
  trivial : bool;
}

(* Tarjan's algorithm, iterative to survive deep graphs, restricted to the
   masked subgraph. *)
let sccs ?(mask = no_mask) ts =
  let n = Ts.num_states ts in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let succs i =
    List.rev
      (Ts.fold_out ts i (fun acc _aid j -> if mask j then j :: acc else acc) [])
  in
  let visit root =
    (* Explicit call stack: (node, remaining successors). *)
    let call_stack = ref [ (root, succs root) ] in
    index.(root) <- !counter;
    lowlink.(root) <- !counter;
    incr counter;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !call_stack <> [] do
      Detcor_robust.Budget.tick ();
      match !call_stack with
      | [] -> ()
      | (v, remaining) :: rest -> (
        match remaining with
        | [] ->
          call_stack := rest;
          (match rest with
          | (parent, _) :: _ ->
            if lowlink.(v) < lowlink.(parent) then lowlink.(parent) <- lowlink.(v)
          | [] -> ());
          if lowlink.(v) = index.(v) then begin
            (* v is the root of an SCC: pop it. *)
            let members = ref [] in
            let continue_ = ref true in
            while !continue_ do
              match !stack with
              | [] -> continue_ := false
              | w :: tl ->
                stack := tl;
                on_stack.(w) <- false;
                members := w :: !members;
                if w = v then continue_ := false
            done;
            components := !members :: !components
          end
        | w :: ws ->
          call_stack := (v, ws) :: rest;
          if index.(w) = -1 then begin
            index.(w) <- !counter;
            lowlink.(w) <- !counter;
            incr counter;
            stack := w :: !stack;
            on_stack.(w) <- true;
            call_stack := (w, succs w) :: !call_stack
          end
          else if on_stack.(w) then
            if index.(w) < lowlink.(v) then lowlink.(v) <- index.(w))
    done
  in
  for i = 0 to n - 1 do
    if mask i && index.(i) = -1 then visit i
  done;
  let make_scc id members =
    let trivial =
      match members with
      | [ v ] -> not (Ts.fold_out ts v (fun acc _aid j -> acc || j = v) false)
      | _ -> false
    in
    { id; members; trivial }
  in
  List.mapi make_scc (List.rev !components)

(* Component id of every node (or -1 outside the mask). *)
let scc_ids ?(mask = no_mask) ts =
  let n = Ts.num_states ts in
  let ids = Array.make n (-1) in
  let components = sccs ~mask ts in
  List.iter
    (fun c -> List.iter (fun v -> ids.(v) <- c.id) c.members)
    components;
  (ids, components)
