(* Dense bit vectors over state indices.

   The predicate and guard caches of [Ts] store one bit per state; a
   [Bytes]-backed bitset keeps them 8x denser than [bool array]s and makes
   whole-set operations (union, count) cheap. *)

type t = {
  length : int;
  bits : Bytes.t;
}

let create length =
  if length < 0 then Detcor_robust.Error.internal "Bitset.create: negative length";
  { length; bits = Bytes.make ((length + 7) / 8) '\000' }

let length t = t.length

let check t i =
  if i < 0 || i >= t.length then
    Detcor_robust.Error.internal "Bitset: index %d out of bounds [0,%d)" i t.length

let get t i =
  check t i;
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i;
  let byte = i lsr 3 in
  Bytes.unsafe_set t.bits byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits byte) lor (1 lsl (i land 7))))

let clear t i =
  check t i;
  let byte = i lsr 3 in
  Bytes.unsafe_set t.bits byte
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.bits byte) land lnot (1 lsl (i land 7))))

let of_fn length f =
  let t = create length in
  for i = 0 to length - 1 do
    if f i then set t i
  done;
  t

(* Popcount of a byte, via an 8-bit lookup table. *)
let popcount_table =
  let tbl = Bytes.create 256 in
  for b = 0 to 255 do
    let rec count n = if n = 0 then 0 else (n land 1) + count (n lsr 1) in
    Bytes.set tbl b (Char.chr (count b))
  done;
  tbl

let cardinal t =
  let n = Bytes.length t.bits in
  let total = ref 0 in
  for byte = 0 to n - 1 do
    total :=
      !total
      + Char.code (Bytes.get popcount_table (Char.code (Bytes.get t.bits byte)))
  done;
  !total

let iter_set t f =
  (* Skip zero bytes: sparse sets (frontiers, violation sets) are the
     common case in the backward fixpoints, and most bytes are empty. *)
  let n = Bytes.length t.bits in
  for byte = 0 to n - 1 do
    let b = Char.code (Bytes.unsafe_get t.bits byte) in
    if b <> 0 then begin
      let base = byte lsl 3 in
      for bit = 0 to 7 do
        if b land (1 lsl bit) <> 0 then f (base + bit)
      done
    end
  done

let equal a b = a.length = b.length && Bytes.equal a.bits b.bits

let copy t = { length = t.length; bits = Bytes.copy t.bits }

(* Whole-set queries and updates work byte-at-a-time: the trailing bits of
   the last byte are invariantly zero ([set] never writes past [length]),
   so no masking is needed. *)
let any t =
  let n = Bytes.length t.bits in
  let rec go i = i < n && (Bytes.unsafe_get t.bits i <> '\000' || go (i + 1)) in
  go 0

let union_into ~into t =
  if into.length <> t.length then
    Detcor_robust.Error.internal "Bitset.union_into: length %d vs %d" into.length
      t.length;
  let n = Bytes.length t.bits in
  let words = n lsr 3 in
  for w = 0 to words - 1 do
    let off = w lsl 3 in
    Bytes.set_int64_le into.bits off
      (Int64.logor
         (Bytes.get_int64_le into.bits off)
         (Bytes.get_int64_le t.bits off))
  done;
  for byte = words lsl 3 to n - 1 do
    Bytes.unsafe_set into.bits byte
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get into.bits byte)
         lor Char.code (Bytes.unsafe_get t.bits byte)))
  done

(* 64-bit windows of the set, for word-parallel merges: [f w bits] with
   [bits] covering indices [64w .. 64w+63] (the tail word is
   zero-padded, consistent with the trailing-zero-bits invariant). *)
let iter_words t f =
  let n = Bytes.length t.bits in
  let words = n lsr 3 in
  for w = 0 to words - 1 do
    f w (Bytes.get_int64_le t.bits (w lsl 3))
  done;
  if n land 7 <> 0 then begin
    let bits = ref 0L in
    for byte = n - 1 downto words lsl 3 do
      bits :=
        Int64.logor
          (Int64.shift_left !bits 8)
          (Int64.of_int (Char.code (Bytes.unsafe_get t.bits byte)))
    done;
    f words !bits
  end

(* Raw bit bytes, for snapshot payloads.  [of_string] pairs the bytes
   back with their logical length, which the string alone cannot carry. *)
let to_string t = Bytes.to_string t.bits

let of_string length s =
  if length < 0 || String.length s <> (length + 7) / 8 then
    Detcor_robust.Error.internal
      "Bitset.of_string: %d bytes cannot hold exactly %d bits"
      (String.length s) length;
  { length; bits = Bytes.of_string s }
