(* Hash-partitioned, disk-spillable state storage for the sharded engine.

   The packed engine interns every state and edge into one pair of RAM
   arenas, which caps explorations at what the heap holds.  This store
   splits the same data by shard — [owner rank = rank mod k] — into
   per-shard arenas made of level-aligned *segments*:

   - a segment is created when a BFS level's merge interns its states
     (the rank column fills), receives its CSR edges while the *next*
     level expands those states, and is then sealed — one level in
     arrears, so a sealed segment is immutable forever after;
   - sealed segments are the spill unit: when the resident arena bytes
     exceed the budget, least-recently-used segments are written once to
     checksummed files under the spill directory (the [Checkpoint] file
     format, so truncation and corruption are detected on reload) and
     their arrays dropped; any later access reloads on demand;
   - per-shard dedup is a direct rank-indexed map plus a visited bitset
     when the product space is small enough, and a hash table otherwise;
   - cross-shard successor batches travel through per-(producer, owner)
     outboxes, delta/varint-encoded, written lock-free (single writer
     per pair) and merged at level barriers in (source gid, successor
     position) order — exactly the interning order of the packed
     engine, which is what keeps the numbering byte-identical.

   Global state ids (gids) are dense and assigned at merge time; the
   [loc] array maps gid -> (shard, local id).  Shards are also the
   checkpoint unit: {!snapshot} captures the segment manifest (file
   references once spilled, inline payloads otherwise), the open
   per-shard rank columns, and the gid->shard map, from which
   {!restore} rebuilds the dedup tables deterministically. *)

open Detcor_obs

let m_spills = Metrics.counter "engine.shard.spills"
let m_spill_bytes = Metrics.counter "engine.shard.spill_bytes"
let m_reloads = Metrics.counter "engine.shard.reloads"
let m_spill_errors = Metrics.counter "engine.shard.spill_errors"

let max_shards = 64

(* Raised by {!intern} when the state count would exceed the limit; [Ts]
   converts it to its public [Too_large]. *)
exception Limit of int

(* ------------------------------------------------------------------ *)
(* Growable int buffers and varint coding.                             *)
(* ------------------------------------------------------------------ *)

module Ibuf = struct
  type t = { mutable a : int array; mutable len : int }

  let create n = { a = Array.make (max n 8) 0; len = 0 }

  let add b v =
    if b.len = Array.length b.a then begin
      let a' = Array.make (2 * Array.length b.a) 0 in
      Array.blit b.a 0 a' 0 b.len;
      b.a <- a'
    end;
    b.a.(b.len) <- v;
    b.len <- b.len + 1

  let to_array b = Array.sub b.a 0 b.len
  let reset b = b.len <- 0
end

(* LEB128-style varints over the full 63-bit int range (logical shifts,
   so negative ints terminate in at most 10 bytes); signed values go
   through zigzag so small deltas of either sign stay short. *)
module Vbuf = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create n = { buf = Bytes.create (max n 32); len = 0 }

  let ensure b extra =
    if b.len + extra > Bytes.length b.buf then begin
      let cap = ref (2 * Bytes.length b.buf) in
      while b.len + extra > !cap do
        cap := 2 * !cap
      done;
      let buf' = Bytes.create !cap in
      Bytes.blit b.buf 0 buf' 0 b.len;
      b.buf <- buf'
    end

  let put_u b v =
    ensure b 10;
    let v = ref v in
    let continue = ref true in
    while !continue do
      let byte = !v land 0x7f in
      v := !v lsr 7;
      if !v = 0 then begin
        Bytes.unsafe_set b.buf b.len (Char.unsafe_chr byte);
        continue := false
      end
      else Bytes.unsafe_set b.buf b.len (Char.unsafe_chr (byte lor 0x80));
      b.len <- b.len + 1
    done

  let zigzag v = (v lsl 1) lxor (v asr 62)
  let put_i b v = put_u b (zigzag v)

  let put_raw b s =
    let n = String.length s in
    put_u b n;
    ensure b n;
    Bytes.blit_string s 0 b.buf b.len n;
    b.len <- b.len + n

  let contents b = Bytes.sub_string b.buf 0 b.len
  let reset b = b.len <- 0
end

module Vcur = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }
  let at_end c = c.pos >= String.length c.data
  let _ = at_end

  let get_u c =
    let v = ref 0 and shift = ref 0 and continue = ref true in
    while !continue do
      if c.pos >= String.length c.data then
        Detcor_robust.Error.snapshot ~path:"shard payload" "truncated varint column";
      let byte = Char.code (String.unsafe_get c.data c.pos) in
      c.pos <- c.pos + 1;
      v := !v lor ((byte land 0x7f) lsl !shift);
      shift := !shift + 7;
      if byte land 0x80 = 0 then continue := false
    done;
    !v

  let unzigzag u = (u lsr 1) lxor (- (u land 1))
  let get_i c = unzigzag (get_u c)

  let get_raw c =
    let n = get_u c in
    if c.pos + n > String.length c.data then
      Detcor_robust.Error.snapshot ~path:"shard payload" "truncated varint column";
    let s = String.sub c.data c.pos n in
    c.pos <- c.pos + n;
    s
end

(* ------------------------------------------------------------------ *)
(* Segments.                                                           *)
(* ------------------------------------------------------------------ *)

type seg = {
  seg_level : int;
  base_lid : int; (* first local id covered *)
  count : int; (* states in the segment *)
  mutable edge_count : int;
  (* The arenas; all [||] while spilled. *)
  mutable ranks : int array;
  mutable row : int array; (* length count+1 once sealed *)
  mutable ea : int array;
  mutable et : int array; (* targets as gids *)
  mutable sealed : bool;
  mutable resident : bool;
  mutable file : string option;
  mutable stamp : int; (* LRU clock *)
}

let seg_bytes s =
  8 * (s.count + 1 + s.count + (2 * s.edge_count))

(* Segment payload: self-describing varint columns.  Ranks and targets
   are delta-coded (interning order makes neighbouring values close);
   row offsets are nondecreasing so their deltas are plain varints. *)
let ser_seg s =
  let vb = Vbuf.create (16 + (4 * s.count) + (4 * s.edge_count)) in
  Vbuf.put_u vb s.seg_level;
  Vbuf.put_u vb s.base_lid;
  Vbuf.put_u vb s.count;
  Vbuf.put_u vb s.edge_count;
  let prev = ref 0 in
  for i = 0 to s.count - 1 do
    Vbuf.put_i vb (s.ranks.(i) - !prev);
    prev := s.ranks.(i)
  done;
  for i = 1 to s.count do
    Vbuf.put_u vb (s.row.(i) - s.row.(i - 1))
  done;
  for i = 0 to s.edge_count - 1 do
    Vbuf.put_u vb s.ea.(i)
  done;
  prev := 0;
  for i = 0 to s.edge_count - 1 do
    Vbuf.put_i vb (s.et.(i) - !prev);
    prev := s.et.(i)
  done;
  Vbuf.contents vb

(* Decode a segment payload into the (already sized) metadata record. *)
let deser_seg s data =
  let c = Vcur.of_string data in
  let level = Vcur.get_u c in
  let base = Vcur.get_u c in
  let count = Vcur.get_u c in
  let ecount = Vcur.get_u c in
  if level <> s.seg_level || base <> s.base_lid || count <> s.count
     || ecount <> s.edge_count
  then Detcor_robust.Error.snapshot ~path:"shard segment" "payload does not match its manifest";
  let ranks = Array.make count 0 in
  let prev = ref 0 in
  for i = 0 to count - 1 do
    prev := !prev + Vcur.get_i c;
    ranks.(i) <- !prev
  done;
  let row = Array.make (count + 1) 0 in
  for i = 1 to count do
    row.(i) <- row.(i - 1) + Vcur.get_u c
  done;
  let ea = Array.make ecount 0 in
  for i = 0 to ecount - 1 do
    ea.(i) <- Vcur.get_u c
  done;
  let et = Array.make ecount 0 in
  prev := 0;
  for i = 0 to ecount - 1 do
    prev := !prev + Vcur.get_i c;
    et.(i) <- !prev
  done;
  s.ranks <- ranks;
  s.row <- row;
  s.ea <- ea;
  s.et <- et;
  s.resident <- true

(* ------------------------------------------------------------------ *)
(* Shards.                                                             *)
(* ------------------------------------------------------------------ *)

type dedup =
  | Direct of { gids : int array; visited : Bitset.t }
      (* indexed by local rank [rank / k]; [visited] gates [gids] *)
  | Table of (int, int) Hashtbl.t

type shard = {
  sid : int;
  mutable segs : seg array; (* ascending base_lid *)
  mutable hint : int; (* last segment index touched *)
  mutable plids : int; (* local ids promoted into segments *)
  mutable nlids : int; (* local ids interned in total *)
  dedup : dedup;
  open_ranks : Ibuf.t; (* next level's ranks, not yet a segment *)
  (* CSR accumulators of the segment currently receiving edges. *)
  mutable cur : seg option;
  cur_row : Ibuf.t;
  cur_ea : Ibuf.t;
  cur_et : Ibuf.t;
  mutable cur_lid : int; (* segment-relative id whose edges are open *)
}

type t = {
  k : int;
  layout : Layout.t;
  limit : int;
  spill_dir : string option;
  arena_budget : int;
  fingerprint : string;
  on_intern : unit -> unit;
  shards : shard array;
  mutable loc : int array; (* gid -> lid * k + sid *)
  mutable n : int;
  mutable edges : int;
  mutable sealed_n : int; (* gids promoted into segments *)
  mutable level : int;
  mutable resident_bytes : int;
  mutable clock : int;
  mutable spill_count : int;
  mutable spill_bytes : int;
  mutable reload_count : int;
}

(* Direct dedup maps cost one word per product state; past this they
   would dominate the arena budget, so bigger spaces hash instead. *)
let direct_threshold = 1 lsl 25

let make_shard ~k ~space sid =
  let dedup =
    if space <= direct_threshold then begin
      let size = ((space - 1) / k) + 1 in
      Direct { gids = Array.make size 0; visited = Bitset.create size }
    end
    else Table (Hashtbl.create 4096)
  in
  {
    sid;
    segs = [||];
    hint = 0;
    plids = 0;
    nlids = 0;
    dedup;
    open_ranks = Ibuf.create 64;
    cur = None;
    cur_row = Ibuf.create 64;
    cur_ea = Ibuf.create 64;
    cur_et = Ibuf.create 64;
    cur_lid = 0;
  }

let create ?(on_intern = fun () -> ()) ~k ~layout ~limit ~spill_dir
    ~arena_budget ~fingerprint () =
  let k = max 1 (min k max_shards) in
  {
    k;
    layout;
    limit;
    spill_dir;
    arena_budget;
    fingerprint;
    on_intern;
    shards = Array.init k (make_shard ~k ~space:(Layout.space layout));
    loc = Array.make 1024 0;
    n = 0;
    edges = 0;
    sealed_n = 0;
    level = 0;
    resident_bytes = 0;
    clock = 0;
    spill_count = 0;
    spill_bytes = 0;
    reload_count = 0;
  }

let k t = t.k
let num_states t = t.n
let num_edges t = t.edges
let spill_stats t = (t.spill_count, t.spill_bytes, t.reload_count)

(* ------------------------------------------------------------------ *)
(* Spill and reload.                                                   *)
(* ------------------------------------------------------------------ *)

let seg_path t sid level =
  match t.spill_dir with
  | None -> Detcor_robust.Error.internal "Shard_store: spill without a directory"
  | Some dir ->
    Filename.concat dir
      (Fmt.str "dcshard-%s-s%d-l%d.seg"
         (String.sub t.fingerprint 0 (min 8 (String.length t.fingerprint)))
         sid level)

(* Drop a sealed segment's arrays, writing the spill file first if this
   is its first eviction.  A failed write keeps the segment resident —
   losing memory headroom must not fail the run (mirrors the snapshot
   write policy). *)
let spill_seg t sid seg =
  (match seg.file with
  | Some _ -> ()
  | None ->
    let path = seg_path t sid seg.seg_level in
    let data = ser_seg seg in
    ignore
      (Detcor_robust.Checkpoint.write_file ~path ~fingerprint:t.fingerprint
         [| { Detcor_robust.Checkpoint.step = 0; kind = "shard.seg";
              complete = true; data } |]);
    seg.file <- Some path;
    t.spill_count <- t.spill_count + 1;
    t.spill_bytes <- t.spill_bytes + String.length data;
    if Obs.on () then begin
      Metrics.incr m_spills;
      Metrics.incr ~by:(String.length data) m_spill_bytes
    end);
  seg.ranks <- [||];
  seg.row <- [||];
  seg.ea <- [||];
  seg.et <- [||];
  seg.resident <- false;
  t.resident_bytes <- t.resident_bytes - seg_bytes seg

let try_spill_seg t sid seg =
  match spill_seg t sid seg with
  | () -> ()
  | exception (Sys_error _ | Detcor_robust.Failpoint.Injected _) ->
    if Obs.on () then Metrics.incr m_spill_errors

(* Evict least-recently-used sealed segments until the resident arenas
   fit the budget again.  [keep] protects the segment the caller is
   about to read. *)
let maybe_evict ?keep t =
  if t.spill_dir <> None then begin
    let continue = ref (t.resident_bytes > t.arena_budget) in
    while !continue do
      let victim = ref None in
      Array.iter
        (fun sh ->
          Array.iter
            (fun seg ->
              if
                seg.sealed && seg.resident
                && (match keep with Some s -> s != seg | None -> true)
                && (match !victim with
                   | None -> true
                   | Some (_, v) -> seg.stamp < v.stamp)
              then victim := Some (sh.sid, seg))
            sh.segs)
        t.shards;
      match !victim with
      | Some (sid, seg) ->
        let before = t.resident_bytes in
        try_spill_seg t sid seg;
        continue :=
          t.resident_bytes > t.arena_budget && t.resident_bytes < before
      | None -> continue := false
    done
  end

let touch t seg =
  t.clock <- t.clock + 1;
  seg.stamp <- t.clock

let ensure_resident t seg =
  touch t seg;
  if not seg.resident then begin
    (match seg.file with
    | None ->
      Detcor_robust.Error.internal "Shard_store: spilled segment has no file"
    | Some path ->
      let fp, entries = Detcor_robust.Checkpoint.read_file ~path in
      if fp <> t.fingerprint then
        Detcor_robust.Error.snapshot ~path "spill file belongs to a different run";
      if Array.length entries <> 1 then
        Detcor_robust.Error.snapshot ~path "not a shard segment";
      deser_seg seg entries.(0).Detcor_robust.Checkpoint.data);
    t.resident_bytes <- t.resident_bytes + seg_bytes seg;
    t.reload_count <- t.reload_count + 1;
    if Obs.on () then Metrics.incr m_reloads;
    maybe_evict ~keep:seg t
  end

(* ------------------------------------------------------------------ *)
(* Location and dedup.                                                 *)
(* ------------------------------------------------------------------ *)

let shard_of t gid = t.loc.(gid) mod t.k
let lid_of t gid = t.loc.(gid) / t.k

(* The segment of a local id, by binary search with a per-shard hint:
   both the merge sweep and the gid-order scans touch each shard's
   local ids in ascending order, so the hint almost always hits. *)
let seg_of_lid t sh lid =
  let inside s = lid >= s.base_lid && lid < s.base_lid + s.count in
  let found =
    if sh.hint < Array.length sh.segs && inside sh.segs.(sh.hint) then
      sh.segs.(sh.hint)
    else begin
      let lo = ref 0 and hi = ref (Array.length sh.segs - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if sh.segs.(mid).base_lid <= lid then lo := mid else hi := mid - 1
      done;
      sh.hint <- !lo;
      sh.segs.(!lo)
    end
  in
  ensure_resident t found;
  found

let rank_of t gid =
  let sh = t.shards.(shard_of t gid) in
  let lid = lid_of t gid in
  if lid >= sh.plids then sh.open_ranks.Ibuf.a.(lid - sh.plids)
  else begin
    let seg = seg_of_lid t sh lid in
    seg.ranks.(lid - seg.base_lid)
  end

let find t rank =
  let sh = t.shards.(rank mod t.k) in
  match sh.dedup with
  | Direct { gids; visited } ->
    let lr = rank / t.k in
    if Bitset.get visited lr then Some gids.(lr) else None
  | Table tbl -> Hashtbl.find_opt tbl rank

let intern t rank =
  let sid = rank mod t.k in
  let sh = t.shards.(sid) in
  let known =
    match sh.dedup with
    | Direct { gids; visited } ->
      let lr = rank / t.k in
      if Bitset.get visited lr then Some gids.(lr) else None
    | Table tbl -> Hashtbl.find_opt tbl rank
  in
  match known with
  | Some gid -> gid
  | None ->
    if t.n >= t.limit then raise (Limit t.limit);
    let gid = t.n in
    t.n <- t.n + 1;
    if gid >= Array.length t.loc then begin
      let loc' = Array.make (2 * Array.length t.loc) 0 in
      Array.blit t.loc 0 loc' 0 gid;
      t.loc <- loc'
    end;
    let lid = sh.nlids in
    sh.nlids <- sh.nlids + 1;
    t.loc.(gid) <- (lid * t.k) + sid;
    Ibuf.add sh.open_ranks rank;
    (match sh.dedup with
    | Direct { gids; visited } ->
      let lr = rank / t.k in
      gids.(lr) <- gid;
      Bitset.set visited lr
    | Table tbl -> Hashtbl.add tbl rank gid);
    Detcor_robust.Budget.count_state ();
    t.on_intern ();
    gid

(* ------------------------------------------------------------------ *)
(* Level lifecycle.                                                    *)
(* ------------------------------------------------------------------ *)

(* Promote the open rank columns into fresh segments — the new frontier
   — and return its gid range.  The segments stay resident while their
   CSR fills during the level about to run. *)
let begin_level t =
  let lo = t.sealed_n in
  Array.iter
    (fun sh ->
      let count = sh.open_ranks.Ibuf.len in
      if count > 0 then begin
        let seg =
          {
            seg_level = t.level;
            base_lid = sh.plids;
            count;
            edge_count = 0;
            ranks = Ibuf.to_array sh.open_ranks;
            row = [||];
            ea = [||];
            et = [||];
            sealed = false;
            resident = true;
            file = None;
            stamp = 0;
          }
        in
        touch t seg;
        sh.segs <- Array.append sh.segs [| seg |];
        sh.plids <- sh.plids + count;
        sh.cur <- Some seg;
        Ibuf.reset sh.open_ranks;
        Ibuf.reset sh.cur_row;
        Ibuf.add sh.cur_row 0;
        Ibuf.reset sh.cur_ea;
        Ibuf.reset sh.cur_et;
        sh.cur_lid <- 0
      end
      else sh.cur <- None)
    t.shards;
  t.sealed_n <- t.n;
  t.level <- t.level + 1;
  (lo, t.n)

let add_edge t ~src ~aid ~tgt =
  let sh = t.shards.(shard_of t src) in
  match sh.cur with
  | None -> Detcor_robust.Error.internal "Shard_store.add_edge: no open segment"
  | Some seg ->
    let rel = lid_of t src - seg.base_lid in
    while sh.cur_lid < rel do
      Ibuf.add sh.cur_row sh.cur_ea.Ibuf.len;
      sh.cur_lid <- sh.cur_lid + 1
    done;
    Ibuf.add sh.cur_ea aid;
    Ibuf.add sh.cur_et tgt;
    t.edges <- t.edges + 1

(* Seal the frontier segments: close the remaining CSR rows, freeze the
   arrays, and let the eviction policy spill what no longer fits. *)
let end_level t =
  Array.iter
    (fun sh ->
      match sh.cur with
      | None -> ()
      | Some seg ->
        while sh.cur_lid < seg.count do
          Ibuf.add sh.cur_row sh.cur_ea.Ibuf.len;
          sh.cur_lid <- sh.cur_lid + 1
        done;
        seg.row <- Ibuf.to_array sh.cur_row;
        seg.ea <- Ibuf.to_array sh.cur_ea;
        seg.et <- Ibuf.to_array sh.cur_et;
        seg.edge_count <- sh.cur_ea.Ibuf.len;
        seg.sealed <- true;
        t.resident_bytes <- t.resident_bytes + seg_bytes seg;
        sh.cur <- None)
    t.shards;
  maybe_evict t

(* ------------------------------------------------------------------ *)
(* Outboxes.                                                           *)
(* ------------------------------------------------------------------ *)

module Outbox = struct
  type lane = {
    vb : Vbuf.t;
    mutable prev_gid : int;
    mutable prev_rank : int;
  }

  (* lanes.(producer * k + owner); each lane has exactly one writer —
     the worker expanding the producer shard — so no locks. *)
  type ob = { ok : int; lanes : lane array }

  let create t =
    {
      ok = t.k;
      lanes =
        Array.init (t.k * t.k) (fun _ ->
            { vb = Vbuf.create 256; prev_gid = 0; prev_rank = 0 });
    }

  let put ob ~producer ~gid ~pos ~aid ~rank =
    let lane = ob.lanes.((producer * ob.ok) + (rank mod ob.ok)) in
    Vbuf.put_u lane.vb (gid - lane.prev_gid);
    Vbuf.put_u lane.vb pos;
    Vbuf.put_u lane.vb aid;
    Vbuf.put_i lane.vb (rank - lane.prev_rank);
    lane.prev_gid <- gid;
    lane.prev_rank <- rank

  let reset ob =
    Array.iter
      (fun lane ->
        Vbuf.reset lane.vb;
        lane.prev_gid <- 0;
        lane.prev_rank <- 0)
      ob.lanes
end

(* Merge one window of outboxes, in global (source gid, successor
   position) order — a k-way head comparison per edge across the source
   shard's lanes.  Interning in this order is what reproduces the
   packed engine's state numbering exactly. *)
let merge t ob ~lo ~hi =
  let k = t.k in
  let module C = struct
    type cur = {
      data : string;
      mutable pos : int;
      mutable gid : int;
      mutable spos : int;
      mutable aid : int;
      mutable rank : int;
      mutable valid : bool;
    }
  end in
  let open C in
  let get_u c =
    let v = ref 0 and shift = ref 0 and continue = ref true in
    while !continue do
      let byte = Char.code (String.unsafe_get c.data c.pos) in
      c.pos <- c.pos + 1;
      v := !v lor ((byte land 0x7f) lsl !shift);
      shift := !shift + 7;
      if byte land 0x80 = 0 then continue := false
    done;
    !v
  in
  let advance c =
    if c.pos >= String.length c.data then c.valid <- false
    else begin
      c.gid <- c.gid + get_u c;
      c.spos <- get_u c;
      c.aid <- get_u c;
      c.rank <- c.rank + Vcur.unzigzag (get_u c)
    end
  in
  let cursors =
    Array.map
      (fun (lane : Outbox.lane) ->
        let c =
          {
            data = Vbuf.contents lane.Outbox.vb;
            pos = 0;
            gid = 0;
            spos = 0;
            aid = 0;
            rank = 0;
            valid = true;
          }
        in
        advance c;
        c)
      ob.Outbox.lanes
  in
  for gid = lo to hi - 1 do
    let p = shard_of t gid in
    let base = p * k in
    let continue = ref true in
    while !continue do
      let best = ref (-1) in
      for o = 0 to k - 1 do
        let c = cursors.(base + o) in
        if c.valid && c.gid = gid then
          match !best with
          | -1 -> best := o
          | b -> if c.spos < cursors.(base + b).spos then best := o
      done;
      match !best with
      | -1 -> continue := false
      | o ->
        let c = cursors.(base + o) in
        let tgid = intern t c.rank in
        add_edge t ~src:gid ~aid:c.aid ~tgt:tgid;
        advance c
    done
  done;
  Outbox.reset ob

(* ------------------------------------------------------------------ *)
(* Read access.                                                        *)
(* ------------------------------------------------------------------ *)

let iter_ranks t f =
  for gid = 0 to t.n - 1 do
    Detcor_robust.Budget.tick ();
    f gid (rank_of t gid)
  done

let iter_out t gid f =
  let sh = t.shards.(shard_of t gid) in
  let lid = lid_of t gid in
  if lid < sh.plids then begin
    let seg = seg_of_lid t sh lid in
    if seg.sealed then begin
      let rel = lid - seg.base_lid in
      (* Capture the arenas before calling [f]: the callback may fault in
         another segment and evict this one, which swaps the fields to
         [||] — the captured arrays stay valid (spilling never mutates
         their contents, it only drops the references). *)
      let row = seg.row and ea = seg.ea and et = seg.et in
      for e = row.(rel) to row.(rel + 1) - 1 do
        f ea.(e) et.(e)
      done
    end
  end

let out_degree t gid =
  let sh = t.shards.(shard_of t gid) in
  let lid = lid_of t gid in
  if lid >= sh.plids then 0
  else begin
    let seg = seg_of_lid t sh lid in
    if not seg.sealed then 0
    else begin
      let rel = lid - seg.base_lid in
      seg.row.(rel + 1) - seg.row.(rel)
    end
  end

let iter_edges t f =
  for gid = 0 to t.n - 1 do
    Detcor_robust.Budget.tick ();
    iter_out t gid (fun aid tgid -> f gid aid tgid)
  done

(* ------------------------------------------------------------------ *)
(* Snapshot and restore: shards as the checkpoint unit.                *)
(* ------------------------------------------------------------------ *)

(* With a spill directory, force-spill every sealed segment (first
   spills write their file; re-spills just drop arrays) so the snapshot
   is a small manifest of file references plus the open, still-dirty
   per-shard state; without one, segment payloads ride inline.  The
   dedup maps are never serialized: the restore scan rebinds every rank
   from the segment rank columns and the open columns, which rebuilds
   them exactly.  (Spilling the visited bitsets to a side file would be
   unsound: the file would be overwritten at barriers newer than the
   manifest the resume loads, and a stale "visited" bit aliases an
   unknown state to gid 0 instead of interning it.) *)
let snapshot t =
  if t.spill_dir <> None then
    Array.iter
      (fun sh ->
        Array.iter
          (fun seg -> if seg.sealed && seg.resident then try_spill_seg t sh.sid seg)
          sh.segs)
      t.shards;
  let vb = Vbuf.create 4096 in
  Vbuf.put_u vb t.k;
  Vbuf.put_u vb t.level;
  Vbuf.put_u vb t.n;
  Vbuf.put_u vb t.edges;
  Vbuf.put_u vb t.sealed_n;
  Vbuf.put_u vb t.spill_count;
  Vbuf.put_u vb t.spill_bytes;
  Array.iter
    (fun sh ->
      Vbuf.put_u vb sh.plids;
      Vbuf.put_u vb (Array.length sh.segs);
      Array.iter
        (fun seg ->
          Vbuf.put_u vb seg.seg_level;
          Vbuf.put_u vb seg.base_lid;
          Vbuf.put_u vb seg.count;
          Vbuf.put_u vb seg.edge_count;
          match seg.file with
          | Some path ->
            Vbuf.put_u vb 1;
            Vbuf.put_raw vb path
          | None ->
            Vbuf.put_u vb 0;
            Vbuf.put_raw vb (ser_seg seg))
        sh.segs;
      let prev = ref 0 in
      Vbuf.put_u vb sh.open_ranks.Ibuf.len;
      for i = 0 to sh.open_ranks.Ibuf.len - 1 do
        let r = sh.open_ranks.Ibuf.a.(i) in
        Vbuf.put_i vb (r - !prev);
        prev := r
      done)
    t.shards;
  (* gid -> owning shard, one byte each: with the per-shard rank
     columns this is enough to replay the interning order. *)
  let owners = Bytes.create t.n in
  for gid = 0 to t.n - 1 do
    Bytes.unsafe_set owners gid (Char.unsafe_chr (shard_of t gid))
  done;
  Vbuf.put_raw vb (Bytes.unsafe_to_string owners);
  Vbuf.contents vb

let restore ?(on_intern = fun () -> ()) ~layout ~limit ~spill_dir
    ~arena_budget ~fingerprint data =
  let c = Vcur.of_string data in
  let k = Vcur.get_u c in
  if k < 1 || k > max_shards then
    Detcor_robust.Error.snapshot ~path:"shard snapshot" "invalid shard count %d" k;
  let t =
    create ~on_intern ~k ~layout ~limit ~spill_dir ~arena_budget ~fingerprint ()
  in
  t.level <- Vcur.get_u c;
  t.n <- Vcur.get_u c;
  t.edges <- Vcur.get_u c;
  t.sealed_n <- Vcur.get_u c;
  t.spill_count <- Vcur.get_u c;
  t.spill_bytes <- Vcur.get_u c;
  let open_ranks = Array.make k [||] in
  Array.iter
    (fun sh ->
      let plids = Vcur.get_u c in
      let nsegs = Vcur.get_u c in
      sh.segs <-
        Array.init nsegs (fun _ ->
            let seg_level = Vcur.get_u c in
            let base_lid = Vcur.get_u c in
            let count = Vcur.get_u c in
            let edge_count = Vcur.get_u c in
            let tag = Vcur.get_u c in
            let payload = Vcur.get_raw c in
            let seg =
              {
                seg_level;
                base_lid;
                count;
                edge_count;
                ranks = [||];
                row = [||];
                ea = [||];
                et = [||];
                sealed = true;
                resident = false;
                file = (if tag = 1 then Some payload else None);
                stamp = 0;
              }
            in
            if tag = 0 then begin
              deser_seg seg payload;
              t.resident_bytes <- t.resident_bytes + seg_bytes seg
            end;
            seg);
      sh.plids <- plids;
      sh.nlids <- plids;
      let olen = Vcur.get_u c in
      let ranks = Array.make olen 0 in
      let prev = ref 0 in
      for i = 0 to olen - 1 do
        prev := !prev + Vcur.get_i c;
        ranks.(i) <- !prev
      done;
      open_ranks.(sh.sid) <- ranks)
    t.shards;
  let owners = Vcur.get_raw c in
  if String.length owners <> t.n then
    Detcor_robust.Error.snapshot ~path:"shard snapshot" "owner map does not match";
  (* Replay the interning order: assign local ids gid by gid, then walk
     each shard's rank columns (sealed segments, then the open column)
     to rebind rank -> gid in the dedup maps. *)
  if t.n > Array.length t.loc then
    t.loc <- Array.make (max t.n (2 * Array.length t.loc)) 0;
  let counters = Array.make k 0 in
  for gid = 0 to t.n - 1 do
    let sid = Char.code (String.unsafe_get owners gid) in
    if sid >= k then
      Detcor_robust.Error.snapshot ~path:"shard snapshot" "owner map is corrupt";
    counters.(sid) <- counters.(sid) + 1
  done;
  let shard_gids = Array.map (fun c -> Array.make (max c 1) 0) counters in
  Array.fill counters 0 k 0;
  for gid = 0 to t.n - 1 do
    let sid = Char.code (String.unsafe_get owners gid) in
    let lid = counters.(sid) in
    counters.(sid) <- lid + 1;
    t.loc.(gid) <- (lid * k) + sid;
    shard_gids.(sid).(lid) <- gid
  done;
  Array.iter
    (fun sh ->
      let expect = counters.(sh.sid) in
      let gids_of = shard_gids.(sh.sid) in
      let lid = ref 0 in
      let bind rank gid =
        match sh.dedup with
        | Direct { gids; visited } ->
          let lr = rank / k in
          gids.(lr) <- gid;
          Bitset.set visited lr
        | Table tbl -> Hashtbl.replace tbl rank gid
      in
      Array.iter
        (fun seg ->
          ensure_resident t seg;
          for i = 0 to seg.count - 1 do
            Detcor_robust.Budget.tick ();
            bind seg.ranks.(i) gids_of.(!lid);
            incr lid
          done)
        sh.segs;
      Array.iter
        (fun rank ->
          Ibuf.add sh.open_ranks rank;
          bind rank gids_of.(!lid);
          incr lid;
          sh.nlids <- sh.nlids + 1)
        open_ranks.(sh.sid);
      if !lid <> expect then
        Detcor_robust.Error.snapshot ~path:"shard snapshot" "rank columns do not match")
    t.shards;
  maybe_evict t;
  t
