(** Variable layouts: the compiled shape of a program's state space.

    A layout maps a program's variables (in ascending name order) and their
    finite domains (in ascending {!Detcor_kernel.Value.compare} order) to
    integer indices, so that any state binding exactly those variables to
    in-domain values packs into a single integer rank.  Rank order coincides
    with {!Detcor_kernel.State.compare} order, which the packed engine of
    {!Ts} relies on to reproduce the reference engine's state numbering. *)

open Detcor_kernel

type t

(** Raised by {!pack} when a state binds a variable outside the layout, is
    missing a layout variable, or holds an out-of-domain value. *)
exception Unrepresentable

(** Why the last {!pack} failed (read back by {!Ts} to explain an
    Auto→Reference engine fallback). *)
type escape =
  | Extra_variable of string
  | Missing_variable of string
  | Out_of_domain of string * Value.t

val pp_escape : Format.formatter -> escape -> unit

(** The diagnosis recorded by the most recent {!pack} failure in any
    domain, if any. *)
val escape_reason : unit -> escape option

(** [of_program p] compiles the layout of [p]'s declared variables, or
    [None] when the product space size overflows the integer range. *)
val of_program : Program.t -> t option

val num_vars : t -> int

(** Size of the full product space. *)
val space : t -> int

val var : t -> int -> string
val domain_values : t -> int -> Value.t list

(** [pack t st] is the mixed-radix rank of [st].
    @raise Unrepresentable if [st] does not fit the layout. *)
val pack : t -> State.t -> int

val pack_opt : t -> State.t -> int option

(** [pack_from t ~src_rank src st'] is [pack t st'], computed as a delta
    against the source state [src] of known rank [src_rank].  Successor
    states share the untouched binding tuples of their source, so the
    common case is a physical-equality scan plus one coder lookup per
    changed variable; shape mismatches fall back to the full {!pack}.

    [src_rank] {e must} equal [pack t src]: the delta trusts the claimed
    rank, so passing a rank from a different numbering (a stale frontier
    entry, another arena's local index) silently yields a wrong rank.
    Carry the rank alongside the state it ranks.
    @raise Unrepresentable if [st'] does not fit the layout. *)
val pack_from : t -> src_rank:int -> State.t -> State.t -> int

(** [unpack t rank] rebuilds the state of the given rank; inverse of
    {!pack} on representable states. *)
val unpack : t -> int -> State.t

(** [unpack_into t sc rank] decodes [rank] into the scratch buffer [sc]
    (from {!scratch}) without allocating a state; the buffer is
    invalidated by the next call. *)
val unpack_into : t -> State.scratch -> int -> unit

(** A scratch buffer over this layout's variables, for {!unpack_into}. *)
val scratch : t -> State.scratch

(** Enumerate the full product space in ascending rank order.  Each state
    passed to the callback is fresh and may be retained. *)
val iter_states : t -> (State.t -> unit) -> unit

(** Like {!iter_states}, but reuses one {!Detcor_kernel.State.scratch}
    buffer for the whole sweep: visiting a state costs a slot write
    instead of an allocation.  The buffer is invalidated by the next
    visit — the callback must [State.scratch_copy] states it retains. *)
val iter_scratch : t -> (State.scratch -> unit) -> unit

val pp : t Fmt.t
