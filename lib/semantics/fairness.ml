(* Weak fairness (Section 2.1: each action continuously enabled along a
   computation is eventually executed).

   The key decision procedure: does a region of states admit an infinite
   weakly-fair computation that stays in the region forever?

   Characterization used (exact for finite systems): such a computation
   exists iff some non-trivial SCC [C] of the subgraph induced by the region
   satisfies: for every action [a] whose guard holds at EVERY state of [C],
   some edge of [a] connects two states of [C].

   - If the condition holds, a run cycling through all states and all
     internal edges of [C] is fair: any action enabled at all states visited
     infinitely often (i.e. at all of [C]) fires infinitely often via its
     internal edge, and any other action is disabled infinitely often, hence
     not continuously enabled.
   - Conversely, a run staying forever inside a set [L] of states must stay
     inside one SCC [C ⊇ L]; an action enabled on all of [C] is enabled on
     all of [L], and firing it from [L] would follow one of its edges — if
     none of its edges is internal to [C], none is internal to [L], so the
     run never fires a continuously enabled action: unfair. *)

(* [fair_scc ts scc]: can this SCC host an infinite weakly-fair run? *)
let fair_scc ts (scc : Graph.scc) =
  if scc.trivial then None
  else begin
    let in_scc = Hashtbl.create (List.length scc.members) in
    List.iter (fun v -> Hashtbl.replace in_scc v ()) scc.members;
    let num_actions = Ts.num_actions ts in
    let enabled_everywhere = Array.make num_actions true in
    List.iter
      (fun v ->
        Detcor_robust.Budget.tick ();
        for aid = 0 to num_actions - 1 do
          if enabled_everywhere.(aid) && not (Ts.enabled ts v aid) then
            enabled_everywhere.(aid) <- false
        done)
      scc.members;
    let has_internal_edge = Array.make num_actions false in
    List.iter
      (fun v ->
        Ts.iter_out ts v (fun aid j ->
            if Hashtbl.mem in_scc j then has_internal_edge.(aid) <- true))
      scc.members;
    let ok = ref true in
    for aid = 0 to num_actions - 1 do
      if enabled_everywhere.(aid) && not has_internal_edge.(aid) then ok := false
    done;
    if !ok then Some scc else None
  end

(* All SCCs of the masked subgraph that can host a fair infinite run. *)
let fair_sccs ?mask ts =
  Detcor_obs.Obs.span "fairness.fair_sccs" @@ fun () ->
  let components = Graph.sccs ?mask ts in
  let fair = List.filter_map (fair_scc ts) components in
  if Detcor_obs.Obs.on () then
    Detcor_obs.Obs.annotate
      [
        Detcor_obs.Attr.int "sccs" (List.length components);
        Detcor_obs.Attr.int "fair" (List.length fair);
      ];
  fair

(* [fair_run_exists ts ~region ~from]: is there a weakly-fair infinite
   computation that starts at some state of [from], stays inside [region]
   forever?  (Deadlocks are handled separately by callers: a finite maximal
   computation is not an infinite run.) *)
let fair_run_exists ts ~region ~from =
  let mask = region in
  let starts = List.filter region from in
  if starts = [] then None
  else begin
    let reach = Graph.reachable ~mask ts ~from:starts in
    let fair = fair_sccs ~mask:(fun i -> mask i && reach.(i)) ts in
    match fair with
    | [] -> None
    | scc :: _ -> Some scc
  end
