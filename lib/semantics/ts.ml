(* Explicit-state transition systems.

   A transition system is the semantic graph of a program: nodes are states,
   edges are (action, successor) pairs.  It is built either from a set of
   initial states (forward reachability) or over the full product space.
   All decision procedures of the library (closure, convergence, leads-to,
   fairness, safety) run on this structure.

   Two engines build the same structure:

   - [Packed] (the default via [Auto]): a [Layout] compiles the program's
     variables and domains to integer indices once, states are interned by
     their packed rank (a single int), edges land in CSR (compressed sparse
     row) arrays, and predicate / guard evaluations are cached in per-system
     bitsets so [holds_at] and [enabled] answer in O(1) after one sweep.
     Frontier expansion can fan out over OCaml 5 domains ([?workers]) with
     a deterministic in-order merge, so the numbering is independent of the
     worker count.
   - [Reference]: the seed list-based path — map-keyed interning and direct
     predicate evaluation on every query.  It is kept both as the fallback
     for programs whose actions step outside their declared domains (where
     no layout applies) and as the oracle for differential testing.

   Both engines explore initial states in [State.compare] order and expand
   states in id order, so they produce identical state numbering, edge
   arrays and initials. *)

open Detcor_kernel
open Detcor_obs

(* Engine metrics.  Every update is gated by [Obs.on ()] — one ref read
   and a branch — so construction with observability disabled matches the
   uninstrumented engine (the E11 bench claim). *)
let m_states = Metrics.counter "engine.states_visited"

(* Live twin of [m_states]: advanced during construction rather than in
   bulk at [finish], so a telemetry scrape mid-construction sees the
   build move.  Gated on recording or armed heartbeats, and batched
   through a plain local counter — an atomic RMW per interned state is
   measurable on small hot builds.  The pending cell's races across
   domains are benign: a lost batch only makes the live view lag, and
   [finish] flushes the remainder. *)
let m_live_states = Metrics.counter "engine.states"
let live_batch = 64
let live_pending = ref 0

let live_state_interned () =
  incr live_pending;
  if !live_pending >= live_batch then begin
    Metrics.incr ~by:!live_pending m_live_states;
    live_pending := 0
  end

let live_flush () =
  if !live_pending > 0 then begin
    Metrics.incr ~by:!live_pending m_live_states;
    live_pending := 0
  end
let m_edges = Metrics.counter "engine.edges"
let m_builds = Metrics.counter "engine.builds"
let m_pred_hits = Metrics.counter "engine.pred_cache.hits"
let m_pred_misses = Metrics.counter "engine.pred_cache.misses"
let m_enabled_hits = Metrics.counter "engine.enabled_cache.hits"
let m_enabled_misses = Metrics.counter "engine.enabled_cache.misses"
let m_fallbacks = Metrics.counter "engine.fallbacks"
let m_par_expanded = Metrics.counter "engine.parallel.states_expanded"
let h_frontier = Metrics.histogram "engine.frontier_width"
let h_worker_chunk = Metrics.histogram "engine.worker_chunk"

(* Lost-worker degradation: counted unconditionally (a retried chunk is a
   correctness-relevant event, not a tuning signal). *)
let m_worker_retries = Metrics.counter "robust.worker_retries"

module State_table = Hashtbl.Make (struct
  type t = State.t

  let equal = State.equal
  let hash = State.hash
end)

type engine = Auto | Packed | Reference | Sharded

type t = {
  program : Program.t;
  states : State.t array;
  actions : Action.t array;
  (* CSR adjacency: edges of state [i] occupy [row_ptr.(i) .. row_ptr.(i+1))
     of [edge_action]/[edge_target]. *)
  row_ptr : int array;
  edge_action : int array;
  edge_target : int array;
  initials : int list;
  lookup : State.t -> int option;
  layout : Layout.t option; (* Some iff built by the packed engine *)
  (* Bitset caches; only consulted when [cached] (packed engine). *)
  cached : bool;
  pred_cache : (int, Bitset.t) Hashtbl.t; (* keyed by Pred.id *)
  enabled_cache : Bitset.t option array; (* per action id *)
  (* The out-of-core store, present iff built by the sharded engine; the
     flat arrays above are then empty and every accessor dispatches. *)
  shard : Shard_store.t option;
  (* Set when [Auto] dispatch fell back to the reference engine: the
     diagnosed reason (domain escape, product overflow).  Surfaced by
     `dcheck info` and the Obs metrics. *)
  mutable fallback_reason : string option;
}

exception Too_large of int

let default_limit = 2_000_000

(* ------------------------------------------------------------------ *)
(* Growable buffers shared by both engines.                            *)
(* ------------------------------------------------------------------ *)

type builder = {
  mutable states_buf : State.t array;
  mutable count : int;
  mutable ea : int array; (* edge action ids *)
  mutable et : int array; (* edge targets *)
  mutable elen : int;
  mutable rows : int array; (* rows.(i+1) = end offset of state i's edges *)
  mutable expanded : int; (* states with closed rows: 0..expanded-1 *)
  limit : int;
}

let new_builder ~limit =
  {
    states_buf = Array.make 1024 State.empty;
    count = 0;
    ea = Array.make 4096 0;
    et = Array.make 4096 0;
    elen = 0;
    rows = Array.make 1025 0;
    expanded = 0;
    limit;
  }

let add_state b st =
  let i = b.count in
  if i >= b.limit then raise (Too_large b.limit);
  if Obs.on () || Progress.armed () then live_state_interned ();
  Detcor_robust.Budget.count_state ();
  let cap = Array.length b.states_buf in
  if i >= cap then begin
    let states' = Array.make (2 * cap) State.empty in
    Array.blit b.states_buf 0 states' 0 cap;
    b.states_buf <- states';
    let rows' = Array.make ((2 * cap) + 1) 0 in
    Array.blit b.rows 0 rows' 0 (cap + 1);
    b.rows <- rows'
  end;
  b.states_buf.(i) <- st;
  b.count <- i + 1;
  i

let push_edge b aid j =
  let cap = Array.length b.ea in
  if b.elen >= cap then begin
    let ea' = Array.make (2 * cap) 0 and et' = Array.make (2 * cap) 0 in
    Array.blit b.ea 0 ea' 0 cap;
    Array.blit b.et 0 et' 0 cap;
    b.ea <- ea';
    b.et <- et'
  end;
  b.ea.(b.elen) <- aid;
  b.et.(b.elen) <- j;
  b.elen <- b.elen + 1

(* Mark the end of state [i]'s edge row (states are expanded in id order).
   [expanded] trails it: everything below is a consistent CSR prefix, which
   is exactly what a checkpoint capture may persist. *)
let close_row b i =
  b.rows.(i + 1) <- b.elen;
  b.expanded <- i + 1

(* ------------------------------------------------------------------ *)
(* Checkpoint payloads for the packed construction loops.               *)
(* ------------------------------------------------------------------ *)

(* A capture persists the closed-row CSR prefix plus (for the BFS, which
   discovers states as it goes) the packed rank of every state interned
   so far.  Captures fire from [Budget] checkpoints on the orchestrating
   domain only: at those points states [0..count) are fully written and
   edges beyond [rows.(expanded)] belong to a half-merged row, so the
   prefix below is consistent by construction.  Restoring re-interns the
   ranks in id order and resumes expansion at [expanded]; everything
   downstream is deterministic, so the finished system is byte-identical
   to an uninterrupted build. *)
type build_snap = {
  s_ranks : int array; (* rank of state i; empty for the full walk *)
  s_rows : int array; (* rows.(0 .. expanded) *)
  s_ea : int array; (* closed edges only *)
  s_et : int array;
  s_expanded : int;
}

let ensure_edges b n =
  let cap = Array.length b.ea in
  if n > cap then begin
    let cap' = max n (2 * cap) in
    let ea' = Array.make cap' 0 and et' = Array.make cap' 0 in
    Array.blit b.ea 0 ea' 0 b.elen;
    Array.blit b.et 0 et' 0 b.elen;
    b.ea <- ea';
    b.et <- et'
  end

let snap_of_builder ?(ranks = [||]) b =
  let closed = b.rows.(b.expanded) in
  {
    s_ranks = ranks;
    s_rows = Array.sub b.rows 0 (b.expanded + 1);
    s_ea = Array.sub b.ea 0 closed;
    s_et = Array.sub b.et 0 closed;
    s_expanded = b.expanded;
  }

let restore_edges b snap =
  let closed = snap.s_rows.(snap.s_expanded) in
  ensure_edges b closed;
  Array.blit snap.s_ea 0 b.ea 0 closed;
  Array.blit snap.s_et 0 b.et 0 closed;
  b.elen <- closed;
  Array.blit snap.s_rows 0 b.rows 0 (snap.s_expanded + 1);
  b.expanded <- snap.s_expanded

let finish b ~program ~actions ~initials ~lookup ~layout ~cached =
  let n = b.count in
  if Obs.on () || Progress.armed () then live_flush ();
  if Obs.on () then begin
    Metrics.incr m_builds;
    Metrics.incr ~by:n m_states;
    Metrics.incr ~by:b.elen m_edges
  end;
  {
    program;
    states = Array.sub b.states_buf 0 n;
    actions;
    row_ptr = Array.sub b.rows 0 (n + 1);
    edge_action = Array.sub b.ea 0 b.elen;
    edge_target = Array.sub b.et 0 b.elen;
    initials;
    lookup;
    layout;
    cached;
    shard = None;
    pred_cache = Hashtbl.create 16;
    enabled_cache = Array.make (Array.length actions) None;
    fallback_reason = None;
  }

(* ------------------------------------------------------------------ *)
(* Reference engine: the seed list-based path.                         *)
(* ------------------------------------------------------------------ *)

let build_reference ~limit program ~from =
  let actions = Array.of_list (Program.actions program) in
  let index = State_table.create 1024 in
  let b = new_builder ~limit in
  let intern st =
    match State_table.find_opt index st with
    | Some i -> i
    | None ->
      let i = add_state b st in
      State_table.add index st i;
      i
  in
  let initials = List.map intern (List.sort_uniq State.compare from) in
  (* Expansion in id order is exactly the seed's FIFO breadth-first order:
     every new state receives the next id and is appended. *)
  let cursor = ref 0 in
  Progress.with_phase "engine.bfs"
    (fun () ->
      [ ("states", b.count); ("frontier", b.count - !cursor); ("workers", 1) ])
    (fun () ->
      while !cursor < b.count do
        Detcor_robust.Budget.tick ();
        let i = !cursor in
        let st = b.states_buf.(i) in
        Array.iteri
          (fun aid ac ->
            List.iter
              (fun st' -> push_edge b aid (intern st'))
              (Action.execute ac st))
          actions;
        close_row b i;
        incr cursor
      done);
  finish b ~program ~actions ~initials
    ~lookup:(fun st -> State_table.find_opt index st)
    ~layout:None ~cached:false

(* ------------------------------------------------------------------ *)
(* Packed engine: rank-interned states, optional parallel frontier.    *)
(* ------------------------------------------------------------------ *)

(* Successors of [st] under all actions, with packed ranks, in the same
   deterministic order as the sequential loop.  Pure: safe to run from
   worker domains. *)
let successors_packed layout actions st =
  Detcor_robust.Budget.tick ();
  let acc = ref [] in
  Array.iteri
    (fun aid ac ->
      List.iter
        (fun st' -> acc := (aid, st', Layout.pack layout st') :: !acc)
        (Action.execute ac st))
    actions;
  List.rev !acc

(* Expand the frontier slice [lo, hi) in parallel: split it into [workers]
   chunks, compute successor lists in worker domains, and merge them back
   in id order so the numbering matches the sequential engine exactly.

   A worker that dies with anything other than a tripped budget (the
   deliberate cancellation path) is degraded, not fatal: its chunk is
   recomputed sequentially on this domain at the point its results would
   have merged, so ordering — and therefore the numbering — is unchanged.
   Returns the number of lost workers so the caller can shrink the pool. *)
let expand_parallel layout actions b index ~lo ~hi ~workers =
  let len = hi - lo in
  let chunk = (len + workers - 1) / workers in
  let slices =
    List.init workers (fun w ->
        let start = lo + (w * chunk) in
        let stop = min hi (start + chunk) in
        if start >= stop then [||]
        else Array.init (stop - start) (fun k -> b.states_buf.(start + k)))
  in
  let domains =
    List.map
      (fun slice ->
        Stdlib.Domain.spawn (fun () ->
            try
              Detcor_robust.Failpoint.hit "engine.worker";
              let succs = Array.map (successors_packed layout actions) slice in
              (* Incremented from the worker domain: the counters must be
                 atomic under parallel exploration (tested). *)
              if Obs.on () then
                Metrics.incr ~by:(Array.length slice) m_par_expanded;
              Ok succs
            with e -> Error e))
      slices
  in
  if Obs.on () then
    List.iter
      (fun slice ->
        let len = Array.length slice in
        if len > 0 then Metrics.observe h_worker_chunk len)
      slices;
  let results = List.map Stdlib.Domain.join domains in
  let merge i succs =
    Detcor_robust.Budget.tick ();
    List.iter
      (fun (aid, st', rank) ->
        let j =
          match Hashtbl.find_opt index rank with
          | Some j -> j
          | None ->
            let j = add_state b st' in
            Hashtbl.add index rank j;
            j
        in
        push_edge b aid j)
      succs;
    close_row b i
  in
  let cursor = ref lo in
  let consume per_state =
    Array.iter
      (fun succs ->
        merge !cursor succs;
        incr cursor)
      per_state
  in
  let retried = ref 0 in
  List.iteri
    (fun w result ->
      match result with
      | Ok per_state -> consume per_state
      | Error
          (Detcor_robust.Error.Detcor_error (Detcor_robust.Error.Resource _)
           as e) ->
        raise e
      | Error e ->
        incr retried;
        Metrics.incr m_worker_retries;
        if Obs.on () then
          Obs.event "ts.worker_retry" ~level:Attr.Warn
            ~attrs:[ Attr.str "exn" (Printexc.to_string e) ];
        consume
          (Array.map (successors_packed layout actions) (List.nth slices w)))
    results;
  !retried

let explore_packed ~workers layout program ~actions ~b ~index ~initials =
  let intern_code st rank =
    match Hashtbl.find_opt index rank with
    | Some i -> i
    | None ->
      let i = add_state b st in
      Hashtbl.add index rank i;
      i
  in
  let phase = Detcor_robust.Checkpoint.enter ~kind:"ts.bfs" in
  (match Detcor_robust.Checkpoint.resume_data phase with
  | Some (Detcor_robust.Checkpoint.Midway data)
  | Some (Detcor_robust.Checkpoint.Done data) ->
    let snap : build_snap = Marshal.from_string data 0 in
    (* Re-intern in id order: the snapshot's rank sequence is the
       discovery order, so ids land exactly where they were.  States
       the caller already interned (initials) occupy the prefix. *)
    Array.iteri
      (fun i rank ->
        if i >= b.count then
          ignore (intern_code (Layout.unpack layout rank) rank))
      snap.s_ranks;
    restore_edges b snap
  | None -> ());
  let capture () =
    Marshal.to_string
      (snap_of_builder b
         ~ranks:(Array.init b.count (fun i -> Layout.pack layout b.states_buf.(i))))
      []
  in
  Detcor_robust.Checkpoint.set_capture phase capture;
  (* A lost worker shrinks the pool for the rest of the build. *)
  let eff_workers = ref workers in
  let cursor = ref b.expanded in
  let level = ref 0 in
  Progress.with_phase "engine.bfs"
    (fun () ->
      [
        ("states", b.count);
        ("frontier", b.count - b.expanded);
        ("workers", !eff_workers);
      ])
    (fun () ->
      while !cursor < b.count do
        let lo = !cursor in
        let hi = b.count in
        if Obs.on () then begin
          Metrics.observe h_frontier (hi - lo);
          Obs.event "ts.frontier" ~level:Attr.Debug
            ~attrs:[ Attr.int "depth" !level; Attr.int "width" (hi - lo) ];
          incr level
        end;
        if !eff_workers > 1 && hi - lo >= max 2 (!eff_workers * 8) then begin
          let lost =
            expand_parallel layout actions b index ~lo ~hi ~workers:!eff_workers
          in
          if lost > 0 then eff_workers := max 1 (!eff_workers - lost)
        end
        else
          for i = lo to hi - 1 do
            Detcor_robust.Budget.tick ();
            let st = b.states_buf.(i) in
            Array.iteri
              (fun aid ac ->
                List.iter
                  (fun st' ->
                    push_edge b aid (intern_code st' (Layout.pack layout st')))
                  (Action.execute ac st))
              actions;
            close_row b i
          done;
        cursor := hi
      done);
  Detcor_robust.Checkpoint.complete phase (capture ());
  finish b ~program ~actions ~initials
    ~lookup:(fun st ->
      match Layout.pack_opt layout st with
      | None -> None
      | Some rank -> Hashtbl.find_opt index rank)
    ~layout:(Some layout) ~cached:true

let build_packed ~limit ~workers layout program ~from =
  let actions = Array.of_list (Program.actions program) in
  let index : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let b = new_builder ~limit in
  (* Sorting by rank is sorting by State.compare (Layout invariant), so the
     initial numbering matches the reference engine. *)
  let ranked = List.map (fun st -> (Layout.pack layout st, st)) from in
  let ranked =
    List.sort_uniq (fun (r1, _) (r2, _) -> Int.compare r1 r2) ranked
  in
  let initials =
    List.map
      (fun (rank, st) ->
        match Hashtbl.find_opt index rank with
        | Some i -> i
        | None ->
          let i = add_state b st in
          Hashtbl.add index rank i;
          i)
      ranked
  in
  explore_packed ~workers layout program ~actions ~b ~index ~initials

(* Packed [full]: every product state is present, so a state's index IS
   its rank — no interning table at all.  States are materialized in rank
   order (= State.compare order = the reference numbering) and successors
   resolve to indices with one [Layout.pack].  With [workers], the
   execute+pack phase fans out over rank chunks; the merge is a plain
   append in id order, so the result is engine-independent. *)
let successor_ranks layout actions ~rank st =
  Detcor_robust.Budget.tick ();
  let acc = ref [] in
  Array.iteri
    (fun aid ac ->
      List.iter
        (fun st' ->
          acc := (aid, Layout.pack_from layout ~src_rank:rank st st') :: !acc)
        (Action.execute ac st))
    actions;
  List.rev !acc

let full_packed ~limit ~workers layout program =
  let actions = Array.of_list (Program.actions program) in
  let b = new_builder ~limit in
  (* The exact state count is known up front: size the buffers once
     instead of doubling through a dozen reallocations. *)
  let space = Layout.space layout in
  if space > Array.length b.states_buf && space <= limit then begin
    b.states_buf <- Array.make space State.empty;
    b.rows <- Array.make (space + 1) 0;
    b.ea <- Array.make space 0;
    b.et <- Array.make space 0
  end;
  Layout.iter_scratch layout (fun sc ->
      ignore (add_state b (State.scratch_copy sc)));
  let n = b.count in
  let phase = Detcor_robust.Checkpoint.enter ~kind:"ts.full" in
  (match Detcor_robust.Checkpoint.resume_data phase with
  | Some (Detcor_robust.Checkpoint.Midway data)
  | Some (Detcor_robust.Checkpoint.Done data) ->
    (* State i IS rank i here: the materialization above already rebuilt
       every state, so only the edge prefix needs restoring. *)
    restore_edges b (Marshal.from_string data 0 : build_snap)
  | None -> ());
  let capture () = Marshal.to_string (snap_of_builder b) [] in
  Detcor_robust.Checkpoint.set_capture phase capture;
  let base = b.expanded in
  Progress.with_phase "engine.full"
    (fun () -> [ ("expanded", b.expanded); ("states", n) ])
  @@ fun () ->
  if workers > 1 && n - base >= max 2 (workers * 8) then begin
    let chunk = (n - base + workers - 1) / workers in
    let bounds w = (base + (w * chunk), min n (base + ((w + 1) * chunk))) in
    let expand_chunk w =
      let lo, hi = bounds w in
      Array.init (max 0 (hi - lo)) (fun k ->
          successor_ranks layout actions ~rank:(lo + k) b.states_buf.(lo + k))
    in
    let domains =
      List.init workers (fun w ->
          Stdlib.Domain.spawn (fun () ->
              try
                Detcor_robust.Failpoint.hit "engine.worker";
                let succs = expand_chunk w in
                if Obs.on () then
                  Metrics.incr ~by:(Array.length succs) m_par_expanded;
                Ok succs
              with e -> Error e))
    in
    let results = List.map Stdlib.Domain.join domains in
    let cursor = ref base in
    let consume per_state =
      Array.iter
        (fun succs ->
          Detcor_robust.Budget.tick ();
          List.iter (fun (aid, rank) -> push_edge b aid rank) succs;
          close_row b !cursor;
          incr cursor)
        per_state
    in
    List.iteri
      (fun w result ->
        match result with
        | Ok per_state -> consume per_state
        | Error
            (Detcor_robust.Error.Detcor_error (Detcor_robust.Error.Resource _)
             as e) ->
          raise e
        | Error e ->
          (* Lost worker: recompute its chunk here, in merge position. *)
          Metrics.incr m_worker_retries;
          if Obs.on () then
            Obs.event "ts.worker_retry" ~level:Attr.Warn
              ~attrs:[ Attr.str "exn" (Printexc.to_string e) ];
          consume (expand_chunk w))
      results
  end
  else
    for i = base to n - 1 do
      Detcor_robust.Budget.tick ();
      let st = b.states_buf.(i) in
      Array.iteri
        (fun aid ac ->
          List.iter
            (fun st' ->
              push_edge b aid (Layout.pack_from layout ~src_rank:i st st'))
            (Action.execute ac st))
        actions;
      close_row b i
    done;
  Detcor_robust.Checkpoint.complete phase (capture ());
  finish b ~program ~actions
    ~initials:(List.init n Fun.id)
    ~lookup:(fun st -> Layout.pack_opt layout st)
    ~layout:(Some layout) ~cached:true

(* Packed [of_pred]: stream the product space in rank order (which is
   State.compare order), interning matches on the fly — no intermediate
   lists and no sorting, unlike the reference path. *)
let of_pred_packed ~limit ~workers layout program ~from =
  let actions = Array.of_list (Program.actions program) in
  let index : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let b = new_builder ~limit in
  let rank = ref 0 in
  Layout.iter_scratch layout (fun sc ->
      if Pred.holds from (State.scratch_view sc) then
        Hashtbl.add index !rank (add_state b (State.scratch_copy sc));
      incr rank);
  let initials = List.init b.count Fun.id in
  explore_packed ~workers layout program ~actions ~b ~index ~initials

(* ------------------------------------------------------------------ *)
(* Sharded engine: hash-partitioned, disk-spillable arenas.            *)
(* ------------------------------------------------------------------ *)

(* Process-wide parameters for the sharded engine — threaded here rather
   than through every [?engine] signature in [Tolerance]/[Synthesize];
   [dcheck] sets them once from its flags before dispatching. *)
let shard_params = ref (4, (None : string option), 512)

let set_shard_defaults ~shards ~spill_dir ~arena_budget_mb =
  shard_params := (max 1 shards, spill_dir, max 0 arena_budget_mb)

let shard_defaults () = !shard_params

(* Frontier window: sources expanded between outbox merges.  Bounds the
   outbox bytes in flight without adding a barrier per source. *)
let shard_window = 32_768

(* BFS over the shard store.  The exploration order is identical to the
   packed engine's — seeds interned in ascending rank order, frontier
   sources expanded in gid order, successors merged in (source,
   position) order — so the numbering, edge arrays and initials are
   byte-identical where both engines can run.  What changes is
   residency: state and CSR arenas live in per-shard segments that
   spill to checksummed files under the configured directory once the
   resident bytes exceed the arena budget.

   Checkpointing: the store itself is the capture.  Snapshots are only
   consistent at level barriers (mid-level, the open CSR accumulators
   and outboxes are not serializable), so the capture closure returns
   the snapshot taken at the last completed barrier; resume restores
   the store there and replays the lost level deterministically.  Spill
   files written by the interrupted run are content-identical and are
   reused, never rewritten. *)
let build_sharded ~limit ~workers layout program ~seed_ranks =
  let actions = Array.of_list (Program.actions program) in
  let shards, spill_dir, budget_mb = !shard_params in
  let k = min shards Shard_store.max_shards in
  let arena_budget = budget_mb * 1024 * 1024 in
  let fingerprint =
    Detcor_robust.Checkpoint.digest
      [
        "ts.shard";
        Program.name program;
        string_of_int (Layout.space layout);
        string_of_int k;
      ]
  in
  let on_intern () =
    if Obs.on () || Progress.armed () then live_state_interned ()
  in
  let phase = Detcor_robust.Checkpoint.enter ~kind:"ts.shard" in
  let store =
    match Detcor_robust.Checkpoint.resume_data phase with
    | Some (Detcor_robust.Checkpoint.Midway data)
    | Some (Detcor_robust.Checkpoint.Done data) ->
      Shard_store.restore ~on_intern ~layout ~limit ~spill_dir ~arena_budget
        ~fingerprint data
    | None ->
      let store =
        Shard_store.create ~on_intern ~k ~layout ~limit ~spill_dir
          ~arena_budget ~fingerprint ()
      in
      Array.iter (fun r -> ignore (Shard_store.intern store r)) seed_ranks;
      store
  in
  let initials = List.init (Array.length seed_ranks) Fun.id in
  (* Barrier snapshots cost a full manifest walk; only maintain them
     when a checkpoint session wants captures. *)
  let track = Detcor_robust.Checkpoint.active () in
  let latest = ref (if track then Shard_store.snapshot store else "") in
  Detcor_robust.Checkpoint.set_capture phase (fun () -> !latest);
  let frontier_width = ref 0 in
  let level = ref 0 in
  (* Expand sources [lo, wend) into the outbox.  Pure appends: each
     (producer, owner) lane is written by exactly one caller. *)
  let expand_range ob lo wend =
    let sc = Layout.scratch layout in
    for gid = lo to wend - 1 do
      Detcor_robust.Budget.tick ();
      let rank = Shard_store.rank_of store gid in
      Layout.unpack_into layout sc rank;
      let st = State.scratch_copy sc in
      let producer = Shard_store.shard_of store gid in
      let pos = ref 0 in
      Array.iteri
        (fun aid ac ->
          List.iter
            (fun st' ->
              let rank' = Layout.pack_from layout ~src_rank:rank st st' in
              Shard_store.Outbox.put ob ~producer ~gid ~pos:!pos ~aid
                ~rank:rank';
              incr pos)
            (Action.execute ac st))
        actions
    done
  in
  (* Parallel variant: one domain per producer-shard group.  Frontier
     segments are resident until sealed, so worker reads never fault a
     reload; lanes stay single-writer because each producer shard is
     expanded by exactly one domain.  Worker failures propagate (a
     half-written lane is not recoverable the way a packed chunk is). *)
  let expand_parallel_sharded ob lo wend ~workers =
    let w = min workers k in
    let domains =
      List.init w (fun d ->
          Stdlib.Domain.spawn (fun () ->
              try
                let sc = Layout.scratch layout in
                for gid = lo to wend - 1 do
                  let producer = Shard_store.shard_of store gid in
                  if producer mod w = d then begin
                    Detcor_robust.Budget.tick ();
                    let rank = Shard_store.rank_of store gid in
                    Layout.unpack_into layout sc rank;
                    let st = State.scratch_copy sc in
                    let pos = ref 0 in
                    Array.iteri
                      (fun aid ac ->
                        List.iter
                          (fun st' ->
                            let rank' =
                              Layout.pack_from layout ~src_rank:rank st st'
                            in
                            Shard_store.Outbox.put ob ~producer ~gid ~pos:!pos
                              ~aid ~rank:rank';
                            incr pos)
                          (Action.execute ac st))
                      actions
                  end
                done;
                if Obs.on () then
                  Metrics.incr ~by:(wend - lo) m_par_expanded;
                Ok ()
              with e -> Error e))
    in
    let results = List.map Stdlib.Domain.join domains in
    List.iter (function Ok () -> () | Error e -> raise e) results
  in
  let ob = Shard_store.Outbox.create store in
  (try
     Progress.with_phase "engine.bfs"
       (fun () ->
         let spills, _, _ = Shard_store.spill_stats store in
         [
           ("states", Shard_store.num_states store);
           ("frontier", !frontier_width);
           ("shards", k);
           ("spills", spills);
           ("workers", max 1 workers);
         ])
       (fun () ->
         let continue = ref true in
         while !continue do
           let lo, hi = Shard_store.begin_level store in
           if lo >= hi then continue := false
           else begin
             frontier_width := hi - lo;
             if Obs.on () then begin
               Metrics.observe h_frontier (hi - lo);
               Obs.event "ts.frontier" ~level:Attr.Debug
                 ~attrs:
                   [ Attr.int "depth" !level; Attr.int "width" (hi - lo) ];
               incr level
             end;
             let w = ref lo in
             while !w < hi do
               let wend = min hi (!w + shard_window) in
               if workers > 1 && wend - !w >= max 2 (workers * 8) then
                 expand_parallel_sharded ob !w wend ~workers
               else expand_range ob !w wend;
               Shard_store.merge store ob ~lo:!w ~hi:wend;
               w := wend
             done;
             Shard_store.end_level store;
             if track then latest := Shard_store.snapshot store
           end
         done)
   with Shard_store.Limit n -> raise (Too_large n));
  Detcor_robust.Checkpoint.complete phase
    (if track then !latest else "");
  if Obs.on () || Progress.armed () then live_flush ();
  if Obs.on () then begin
    Metrics.incr m_builds;
    Metrics.incr ~by:(Shard_store.num_states store) m_states;
    Metrics.incr ~by:(Shard_store.num_edges store) m_edges
  end;
  {
    program;
    states = [||];
    actions;
    row_ptr = [| 0 |];
    edge_action = [||];
    edge_target = [||];
    initials;
    lookup =
      (fun st ->
        match Layout.pack_opt layout st with
        | None -> None
        | Some rank -> Shard_store.find store rank);
    layout = Some layout;
    cached = true;
    shard = Some store;
    pred_cache = Hashtbl.create 16;
    enabled_cache = Array.make (Array.length actions) None;
    fallback_reason = None;
  }

(* Seed rank sets for the three construction surfaces.  Sorting by rank
   is sorting by [State.compare] (the [Layout] invariant), so initials
   match the other engines. *)
let sharded_of_states layout from =
  let ranks = List.map (Layout.pack layout) from in
  Array.of_list (List.sort_uniq Int.compare ranks)

let sharded_of_pred layout from =
  let buf = ref [] in
  let rank = ref 0 in
  Layout.iter_scratch layout (fun sc ->
      if Pred.holds from (State.scratch_view sc) then buf := !rank :: !buf;
      incr rank);
  Array.of_list (List.rev !buf)

let sharded_all_ranks layout =
  Array.init (Layout.space layout) Fun.id

(* ------------------------------------------------------------------ *)
(* Engine dispatch.                                                    *)
(* ------------------------------------------------------------------ *)

let default_engine = Auto

let engine_name = function
  | Auto -> "auto"
  | Packed -> "packed"
  | Reference -> "reference"
  | Sharded -> "sharded"

let overflow_reason = "product space size overflows the packed rank range"

let escape_message () =
  match Layout.escape_reason () with
  | Some e -> Fmt.str "%a" Layout.pp_escape e
  | None -> "a state escaped the declared layout"

(* Record an Auto→Reference fallback on the built system and in Obs. *)
let fell_back reason ts =
  ts.fallback_reason <- Some reason;
  if Obs.on () then begin
    Metrics.incr m_fallbacks;
    Obs.event "ts.fallback" ~level:Attr.Warn
      ~attrs:[ Attr.str "reason" reason ]
  end;
  ts

(* Wrap a construction entry point in a span annotated, on completion,
   with the size of what was built. *)
let build_span op program engine f =
  Obs.span "ts.build"
    ~attrs:
      [
        Attr.str "op" op;
        Attr.str "program" (Program.name program);
        Attr.str "engine" (engine_name engine);
      ]
    (fun () ->
      let ts = f () in
      if Obs.on () then begin
        let states, edges =
          match ts.shard with
          | Some store ->
            (Shard_store.num_states store, Shard_store.num_edges store)
          | None -> (Array.length ts.states, ts.row_ptr.(Array.length ts.states))
        in
        Obs.annotate
          [
            Attr.int "states" states;
            Attr.int "edges" edges;
            Attr.bool "packed" (ts.layout <> None);
          ]
      end;
      ts)

let build ?(limit = default_limit) ?(engine = default_engine) ?(workers = 1)
    program ~from =
  build_span "build" program engine (fun () ->
      match engine with
      | Reference -> build_reference ~limit program ~from
      | Sharded -> (
        match Layout.of_program program with
        | None -> raise Layout.Unrepresentable
        | Some layout ->
          build_sharded ~limit ~workers layout program
            ~seed_ranks:(sharded_of_states layout from))
      | Packed | Auto -> (
        match Layout.of_program program with
        | None ->
          if engine = Packed then raise Layout.Unrepresentable
          else fell_back overflow_reason (build_reference ~limit program ~from)
        | Some layout -> (
          try build_packed ~limit ~workers layout program ~from with
          | Layout.Unrepresentable when engine = Auto ->
            (* Some state steps outside the declared domains: the layout
               does not apply, fall back to the seed path. *)
            fell_back (escape_message ())
              (build_reference ~limit program ~from))))

let full ?(limit = default_limit) ?(engine = default_engine) ?(workers = 1)
    program =
  if Program.space_size program > limit then raise (Too_large limit);
  build_span "full" program engine (fun () ->
      match engine with
      | Reference ->
        build_reference ~limit program ~from:(Program.states program)
      | Sharded -> (
        match Layout.of_program program with
        | None -> raise Layout.Unrepresentable
        | Some layout ->
          build_sharded ~limit ~workers layout program
            ~seed_ranks:(sharded_all_ranks layout))
      | Packed | Auto -> (
        match Layout.of_program program with
        | None ->
          if engine = Packed then raise Layout.Unrepresentable
          else
            fell_back overflow_reason
              (build_reference ~limit program ~from:(Program.states program))
        | Some layout -> (
          try full_packed ~limit ~workers layout program
          with Layout.Unrepresentable when engine = Auto ->
            fell_back (escape_message ())
              (build_reference ~limit program ~from:(Program.states program)))))

let of_pred ?(limit = default_limit) ?(engine = default_engine) ?(workers = 1)
    program ~from =
  build_span "of_pred" program engine (fun () ->
      let reference () =
        build_reference ~limit program
          ~from:(List.filter (Pred.holds from) (Program.states program))
      in
      match engine with
      | Reference -> reference ()
      | Sharded -> (
        match Layout.of_program program with
        | None -> raise Layout.Unrepresentable
        | Some layout ->
          build_sharded ~limit ~workers layout program
            ~seed_ranks:(sharded_of_pred layout from))
      | Packed | Auto -> (
        match Layout.of_program program with
        | None ->
          if engine = Packed then raise Layout.Unrepresentable
          else fell_back overflow_reason (reference ())
        | Some layout -> (
          try of_pred_packed ~limit ~workers layout program ~from with
          | Layout.Unrepresentable when engine = Auto ->
            fell_back (escape_message ()) (reference ()))))

(* ------------------------------------------------------------------ *)
(* Accessors.                                                          *)
(* ------------------------------------------------------------------ *)

let program ts = ts.program

let num_states ts =
  match ts.shard with
  | Some store -> Shard_store.num_states store
  | None -> Array.length ts.states

(* Sharded access decodes on the fly: the rank comes from the store (a
   spilled segment reloads transparently), the state from the layout. *)
let state ts i =
  match ts.shard with
  | Some store ->
    Layout.unpack (Option.get ts.layout) (Shard_store.rank_of store i)
  | None -> ts.states.(i)

let states ts =
  match ts.shard with
  | Some store ->
    let layout = Option.get ts.layout in
    let acc = ref [] in
    Shard_store.iter_ranks store (fun _ rank ->
        acc := Layout.unpack layout rank :: !acc);
    List.rev !acc
  | None -> Array.to_list ts.states

let initials ts = ts.initials
let actions ts = ts.actions
let num_actions ts = Array.length ts.actions
let action ts i = ts.actions.(i)
let layout ts = ts.layout

let engine_of ts =
  match (ts.shard, ts.layout) with
  | Some _, _ -> Sharded
  | None, Some _ -> Packed
  | None, None -> Reference

let fallback_reason ts = ts.fallback_reason

let shard_stats ts =
  match ts.shard with
  | None -> None
  | Some store ->
    let spills, bytes, reloads = Shard_store.spill_stats store in
    Some (Shard_store.k store, spills, bytes, reloads)

let num_edges ts =
  match ts.shard with
  | Some store -> Shard_store.num_edges store
  | None -> ts.row_ptr.(Array.length ts.states)

let edges_of ts i =
  match ts.shard with
  | Some store ->
    let acc = ref [] in
    Shard_store.iter_out store i (fun aid j -> acc := (aid, j) :: !acc);
    List.rev !acc
  | None ->
    let lo = ts.row_ptr.(i) and hi = ts.row_ptr.(i + 1) in
    let rec go k acc =
      if k < lo then acc
      else go (k - 1) ((ts.edge_action.(k), ts.edge_target.(k)) :: acc)
    in
    go (hi - 1) []

let iter_out ts i f =
  match ts.shard with
  | Some store -> Shard_store.iter_out store i f
  | None ->
    let hi = ts.row_ptr.(i + 1) in
    for k = ts.row_ptr.(i) to hi - 1 do
      f ts.edge_action.(k) ts.edge_target.(k)
    done

let out_degree ts i =
  match ts.shard with
  | Some store -> Shard_store.out_degree store i
  | None -> ts.row_ptr.(i + 1) - ts.row_ptr.(i)

let fold_out ts i f init =
  let acc = ref init in
  iter_out ts i (fun aid j -> acc := f !acc aid j);
  !acc

let index_of ts st = ts.lookup st

let action_id ts name =
  let found = ref None in
  Array.iteri
    (fun i ac -> if String.equal (Action.name ac) name then found := Some i)
    ts.actions;
  !found

(* Ids of actions whose names are in [names]; used to separate fault actions
   from program actions in a composed system. *)
let action_ids_of_names ts names =
  let module S = Set.Make (String) in
  let set = S.of_list names in
  let ids = ref [] in
  Array.iteri
    (fun i ac -> if S.mem (Action.name ac) set then ids := i :: !ids)
    ts.actions;
  List.rev !ids

let iter_edges ts f =
  match ts.shard with
  | Some store -> Shard_store.iter_edges store f
  | None ->
    let n = num_states ts in
    for i = 0 to n - 1 do
      Detcor_robust.Budget.tick ();
      iter_out ts i (fun aid j -> f i aid j)
    done

let fold_edges ts f init =
  let acc = ref init in
  iter_edges ts (fun i aid j -> acc := f !acc i aid j);
  !acc

(* ------------------------------------------------------------------ *)
(* Reverse adjacency.                                                  *)
(* ------------------------------------------------------------------ *)

(* Reverse CSR over a class of actions: the in-edges of each state whose
   action id passes [keep], in two prefix-summed arrays.  Built in two
   O(edges) sweeps; backward fixpoints (the synthesizer's [ms]) iterate
   predecessors without per-state lists or re-deriving successors. *)
type reverse = {
  rev_ptr : int array; (* in-edges of state j occupy [rev_ptr.(j) .. rev_ptr.(j+1)) *)
  rev_action : int array;
  rev_source : int array;
}

let reverse ?(keep = fun _ -> true) ts =
  let n = num_states ts in
  let counts = Array.make (n + 1) 0 in
  let total = ref 0 in
  iter_edges ts (fun _ aid j ->
      if keep aid then begin
        counts.(j + 1) <- counts.(j + 1) + 1;
        incr total
      end);
  for j = 1 to n do
    counts.(j) <- counts.(j) + counts.(j - 1)
  done;
  let rev_ptr = Array.copy counts in
  let rev_action = Array.make !total 0 in
  let rev_source = Array.make !total 0 in
  let cursor = Array.copy counts in
  iter_edges ts (fun i aid j ->
      if keep aid then begin
        let k = cursor.(j) in
        rev_action.(k) <- aid;
        rev_source.(k) <- i;
        cursor.(j) <- k + 1
      end);
  { rev_ptr; rev_action; rev_source }

let iter_in rev j f =
  let hi = rev.rev_ptr.(j + 1) in
  for k = rev.rev_ptr.(j) to hi - 1 do
    f rev.rev_action.(k) rev.rev_source.(k)
  done

(* ------------------------------------------------------------------ *)
(* Cached predicate and guard queries.                                 *)
(* ------------------------------------------------------------------ *)

(* [pred_bitset ts pred]: the bitset of states satisfying [pred].  On a
   packed system the sweep runs once per predicate instance and is cached;
   on a reference system a fresh bitset is computed on every call (the
   reference engine preserves the seed path's evaluate-on-query behavior
   for [holds_at]). *)
let pred_bitset ts pred =
  let compute () =
    match ts.shard with
    | Some store ->
      (* One gid-order sweep decoding ranks into a scratch buffer: no
         state allocation per visit, spilled segments stream through. *)
      let layout = Option.get ts.layout in
      let sc = Layout.scratch layout in
      let bits = Bitset.create (Shard_store.num_states store) in
      Shard_store.iter_ranks store (fun gid rank ->
          Layout.unpack_into layout sc rank;
          if Pred.holds pred (State.scratch_view sc) then Bitset.set bits gid);
      bits
    | None ->
      let n = num_states ts in
      let bits = Bitset.create n in
      for i = 0 to n - 1 do
        if Pred.holds pred ts.states.(i) then Bitset.set bits i
      done;
      bits
  in
  if not ts.cached then compute ()
  else
    let key = Pred.id pred in
    match Hashtbl.find_opt ts.pred_cache key with
    | Some bits ->
      if Obs.on () then Metrics.incr m_pred_hits;
      bits
    | None ->
      if Obs.on () then Metrics.incr m_pred_misses;
      let bits = compute () in
      Hashtbl.add ts.pred_cache key bits;
      bits

let holds_at ts pred i =
  if ts.cached then Bitset.get (pred_bitset ts pred) i
  else Pred.holds pred ts.states.(i)

let enabled_bitset ts aid =
  let compute () =
    let guard = Action.guard ts.actions.(aid) in
    match ts.shard with
    | Some store ->
      let layout = Option.get ts.layout in
      let sc = Layout.scratch layout in
      let bits = Bitset.create (Shard_store.num_states store) in
      Shard_store.iter_ranks store (fun gid rank ->
          Layout.unpack_into layout sc rank;
          if Pred.holds guard (State.scratch_view sc) then Bitset.set bits gid);
      bits
    | None ->
      let n = num_states ts in
      let bits = Bitset.create n in
      for i = 0 to n - 1 do
        if Pred.holds guard ts.states.(i) then Bitset.set bits i
      done;
      bits
  in
  if not ts.cached then compute ()
  else
    match ts.enabled_cache.(aid) with
    | Some bits ->
      if Obs.on () then Metrics.incr m_enabled_hits;
      bits
    | None ->
      if Obs.on () then Metrics.incr m_enabled_misses;
      let bits = compute () in
      ts.enabled_cache.(aid) <- Some bits;
      bits

(* [enabled ts i aid]: is action [aid] enabled at state [i]?  Computed from
   the guard, not from edges: an enabled action always yields at least one
   successor in this framework, but checking the guard is cheaper than
   scanning edges and also correct for actions with empty statements. *)
let enabled ts i aid =
  if ts.cached then Bitset.get (enabled_bitset ts aid) i
  else Action.enabled ts.actions.(aid) ts.states.(i)

let deadlocked ts i =
  let n = Array.length ts.actions in
  let rec go aid =
    if aid >= n then true else (not (enabled ts i aid)) && go (aid + 1)
  in
  go 0

let satisfying ts pred =
  if ts.cached then begin
    let bits = pred_bitset ts pred in
    let result = ref [] in
    for i = num_states ts - 1 downto 0 do
      if Bitset.get bits i then result := i :: !result
    done;
    !result
  end
  else begin
    let result = ref [] in
    Array.iteri
      (fun i st -> if Pred.holds pred st then result := i :: !result)
      ts.states;
    List.rev !result
  end

let pp_stats ppf ts =
  Fmt.pf ppf "%d states, %d transitions, %d actions" (num_states ts)
    (num_edges ts) (num_actions ts)
