(* Supervision arithmetic for the serve daemon: wall-clock watchdog
   deadlines and bounded retry-with-backoff.

   Pure policy — no threads, no clocks of its own.  The daemon's
   scheduler owns the monotonic clock and asks two questions at each
   tick: has this running job outlived its watchdog deadline (kill it),
   and when may this crashed job run again (retry after a growing
   backoff, up to a bounded attempt count, then give up).  Keeping the
   arithmetic here makes the policy unit-testable without a daemon. *)

type policy = {
  max_retries : int; (* retries after the first attempt; 0 = never retry *)
  backoff_base_s : float; (* delay before retry 1 *)
  backoff_factor : float; (* growth per further retry *)
  backoff_max_s : float; (* delay ceiling *)
  watchdog_s : float option; (* running-job wall-clock ceiling *)
}

let default_policy =
  {
    max_retries = 2;
    backoff_base_s = 0.2;
    backoff_factor = 2.0;
    backoff_max_s = 5.0;
    watchdog_s = None;
  }

(* Delay before retry [attempt] (1-based: the first retry is attempt 1),
   or [None] when the policy is out of retries.  The growth is clamped
   so a large attempt count cannot overflow to infinity. *)
let retry_delay policy ~attempt =
  if attempt < 1 || attempt > policy.max_retries then None
  else begin
    let d =
      policy.backoff_base_s
      *. (policy.backoff_factor ** float_of_int (attempt - 1))
    in
    Some (Float.min d policy.backoff_max_s)
  end

(* A job started at [started_s] has outlived its watchdog at [now_s]. *)
let expired policy ~started_s ~now_s =
  match policy.watchdog_s with
  | None -> false
  | Some limit -> now_s -. started_s > limit
