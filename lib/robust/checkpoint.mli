(** Crash-safe snapshots of long-running fixpoints.

    A run under {!start} is a deterministic sequence of {e phases} (the
    engine BFS, the synthesis fixpoints, the simulator loop).  Each
    phase {!enter}s in program order, registers a capture closure that
    serializes its loop state to a string, and {!complete}s with its
    final payload.  Periodic {!pulse}s — driven from [Budget.tick]'s
    cooperative checkpoints — atomically persist all captured payloads
    to a versioned, checksummed file (write to temp, then rename), so a
    killed process always leaves either the previous snapshot or a
    complete new one.  A later run started with [?resume] replays the
    same phase sequence and hands each phase its saved payload:
    completed phases skip their work, the interrupted one continues
    from mid-loop state.

    All load-time defects (truncation, corruption, fingerprint or
    version mismatch) raise the resource-class [Error.Snapshot] — exit
    code 3, never [Internal].  Snapshot {e write} failures are counted
    in [robust.snapshot_errors] and otherwise ignored: losing progress
    insurance must not fail the run.

    Every operation except {!armed} and {!pulse} is owner-domain gated:
    calls from worker domains are inert, so captures always observe the
    orchestrating domain's loop state at a consistent point. *)

(** {1 Session lifecycle} *)

(** Arm snapshotting and/or install a snapshot to resume from.

    [write] is the snapshot path to save to; [interval] (seconds,
    measured on the monotonic clock, default 30) throttles periodic
    saves.  [resume] loads, validates, and installs an existing
    snapshot; its fingerprint must equal [fingerprint] (a digest of the
    program, subcommand, and computation-affecting options) or
    [Error.Snapshot] is raised.  At most one session is active per
    process. *)
val start :
  ?interval:float -> ?write:string -> ?resume:string ->
  fingerprint:string -> unit -> unit

(** Write a final snapshot (when armed) and dissolve the session. *)
val stop : unit -> unit

(** A session exists (writing, resuming, or both). *)
val active : unit -> bool

(** A session exists {e and} has a write path — the cheap flag
    [Budget.tick] reads before calling {!pulse}. *)
val armed : unit -> bool

(** Save if the configured interval has elapsed since the last save.
    No-op when disarmed or on a non-owner domain. *)
val pulse : unit -> unit

(** Save unconditionally (e.g. when a budget trip is about to become
    exit code 3).  Write failures are swallowed as usual. *)
val save_now : unit -> unit

val default_interval : float

(** {1 Phases} *)

type phase

(** Payload restored for a phase: [Done] means the phase finished in
    the snapshotted run, [Midway] is mid-loop state to continue from. *)
type resumed = Midway of string | Done of string

(** Claim the next step number.  Raises [Error.Snapshot] if the
    snapshot recorded a different [kind] at this step (the resumed
    command diverged).  Inert when no session is active. *)
val enter : kind:string -> phase

(** The snapshot payload for this phase, if resuming. *)
val resume_data : phase -> resumed option

(** Register the closure that serializes the phase's current loop
    state.  It runs at save time, on the owner domain, at a [Budget]
    checkpoint — so it must read only state that is consistent at the
    phase's own tick sites. *)
val set_capture : phase -> (unit -> string) -> unit

(** Record the phase's final payload and deregister its capture.  Not
    calling this (e.g. when unwinding on a budget trip) leaves the
    capture registered, which is what lets the final {!save_now}
    persist mid-loop state. *)
val complete : phase -> string -> unit

(** {1 Snapshot files}

    The on-disk format, exposed for tests and tooling: an 8-byte magic
    ["DCSNAP01"], 16 hex digits of payload length, 16 hex digits of
    FNV-1a 64 checksum, then the marshalled payload. *)

type entry = { step : int; kind : string; complete : bool; data : string }

(** Atomically write a snapshot; returns the payload size in bytes.
    Raises [Sys_error] (or [Failpoint.Injected] from the
    ["checkpoint.write"] site) on failure. *)
val write_file :
  path:string -> fingerprint:string -> entry array -> int

(** Read and validate a snapshot, returning its fingerprint and
    entries.  Raises [Error.Snapshot] on any defect. *)
val read_file : path:string -> string * entry array

(** FNV-1a 64 digest of length-prefixed parts, as 16 hex digits — the
    building block for session fingerprints (program source, subcommand,
    computation-affecting options). *)
val digest : string list -> string
