(** Crash-safe spool of named records: one file per record, written
    atomically (temp + rename), loaded back with [Ledger]-style
    tolerance — torn or undecodable records are counted and skipped,
    never fatal.  The serve daemon's accepted-job store: a [kill -9]
    between a record's acceptance and the daemon's death loses nothing
    already renamed into place.

    Records are opaque strings (callers bring their own codec); names
    must be non-empty and use only [[a-zA-Z0-9._-]].
    @raise Error.Detcor_error ([Internal]) on an invalid name. *)

(** Create [dir] if missing.  @raise Unix.Unix_error when the parent is
    unwritable; [Error.Detcor_error] when [dir] exists as a file. *)
val ensure_dir : string -> unit

(** Atomically write (or replace) one record.
    @raise Sys_error on an unwritable spool. *)
val save : dir:string -> name:string -> string -> unit

(** Delete a record; missing records are fine. *)
val remove : dir:string -> name:string -> unit

val mem : dir:string -> name:string -> bool

(** The record's current contents, [None] when absent. *)
val load_one : dir:string -> name:string -> string option

(** All records [decode] accepts, in name order, plus the count of
    unreadable/undecodable records skipped ([robust.spool.torn] counts
    them too).  A [decode] that raises marks the record torn. *)
val load :
  dir:string -> decode:(string -> 'a option) -> (string * 'a) list * int

(** Remove temp files left by a crashed writer. *)
val clean_tmp : dir:string -> unit
