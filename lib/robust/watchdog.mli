(** Supervision policy for the serve daemon: per-job wall-clock
    watchdogs and bounded retry-with-backoff.  Pure arithmetic — the
    daemon's scheduler owns the clock and applies the answers. *)

type policy = {
  max_retries : int;  (** retries after the first attempt; 0 = never *)
  backoff_base_s : float;  (** delay before retry 1 *)
  backoff_factor : float;  (** growth per further retry *)
  backoff_max_s : float;  (** delay ceiling *)
  watchdog_s : float option;  (** running-job wall-clock ceiling *)
}

(** 2 retries, 0.2s base doubling to a 5s cap, no watchdog. *)
val default_policy : policy

(** Delay before retry [attempt] (1-based), [None] when the policy is
    out of retries. *)
val retry_delay : policy -> attempt:int -> float option

(** A job started at [started_s] has outlived its watchdog at [now_s]
    (both from the same clock). *)
val expired : policy -> started_s:float -> now_s:float -> bool
