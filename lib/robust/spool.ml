(* A crash-safe spool of named records.

   The serve daemon's accepted-job store: one file per record, written
   atomically (temp file in the same directory, then [Sys.rename]), so a
   reader — including the daemon's own restart after a [kill -9] — only
   ever observes a complete record or the previous version, never a torn
   write.  The loader is correspondingly tolerant, in the [Ledger.load]
   idiom: files that fail the caller's decoder are counted and skipped,
   not fatal, and stray [.tmp] files from a crashed writer are ignored
   (and swept by [clean_tmp]).

   Records are opaque strings; callers bring their own codec.  Names are
   restricted to a filename-safe alphabet so a record name can never
   escape the spool directory. *)

open Detcor_obs

let m_saves = Metrics.counter "robust.spool.saves"
let m_torn = Metrics.counter "robust.spool.torn"

let valid_name n =
  n <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '.')
       n
  && (not (String.equal n "."))
  && not (String.equal n "..")

let check_name n =
  if not (valid_name n) then Error.internal "Spool: invalid record name %S" n

let suffix = ".rec"

let path_of dir name = Filename.concat dir (name ^ suffix)

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    Error.internal "Spool: %s exists and is not a directory" dir

(* Atomic save: the visible file is either the previous record or the
   complete new one.  The temp name includes the pid so two daemons
   pointed at the same spool cannot tear each other's writes. *)
let save ~dir ~name data =
  check_name name;
  let final = path_of dir name in
  let tmp = Printf.sprintf "%s.%d.tmp" final (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     output_string oc data;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp final;
  Metrics.incr m_saves

let remove ~dir ~name =
  check_name name;
  try Sys.remove (path_of dir name) with Sys_error _ -> ()

let mem ~dir ~name =
  check_name name;
  Sys.file_exists (path_of dir name)

let load_one ~dir ~name =
  check_name name;
  try Some (In_channel.with_open_bin (path_of dir name) In_channel.input_all)
  with Sys_error _ -> None

(* Every record [decode] accepts, in name order (deterministic across
   restarts), plus the count of unreadable or undecodable files skipped.
   [decode] returning [None] — or raising — marks the record torn. *)
let load ~dir ~decode =
  if not (Sys.file_exists dir) then ([], 0)
  else begin
    let names =
      Sys.readdir dir |> Array.to_list
      |> List.filter_map (fun f ->
             if Filename.check_suffix f suffix then
               Some (Filename.chop_suffix f suffix)
             else None)
      |> List.filter valid_name
      |> List.sort String.compare
    in
    let torn = ref 0 in
    let records =
      List.filter_map
        (fun name ->
          let mark_torn () =
            incr torn;
            Metrics.incr m_torn;
            None
          in
          match load_one ~dir ~name with
          | None -> mark_torn ()
          | Some data -> (
            match decode data with
            | Some v -> Some (name, v)
            | None | (exception _) -> mark_torn ()))
        names
    in
    (records, !torn)
  end

(* Sweep temp files abandoned by a crashed writer. *)
let clean_tmp ~dir =
  if Sys.file_exists dir then
    Sys.readdir dir
    |> Array.iter (fun f ->
           if Filename.check_suffix f ".tmp" then
             try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
