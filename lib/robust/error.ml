(* The toolkit-wide error taxonomy.

   Every failure a user can provoke — a malformed source file, an
   ill-typed program, an exhausted resource budget — is a value of
   [Error.t] carried by the single [Detcor_error] exception, so front
   ends can map any failure to a located one-line diagnostic and a
   documented exit code instead of dying on a bare [Failure] or
   [Invalid_argument].  [Internal] covers API misuse inside the library
   (the former [invalid_arg]/[assert false] sites); it is never raised
   by a well-formed `.dc` source reaching the toolkit through the
   language front end. *)

type resource_kind = Time | Memory | States | Addr

type resource = {
  kind : resource_kind;
  spent : int; (* ns for Time, bytes for Memory, count for States/Addr *)
  budget : int;
}

type t =
  | Parse of { line : int; col : int; msg : string }
  | Type_error of { msg : string }
  | Resource of resource
  | Snapshot of { path : string; msg : string }
  | Internal of { msg : string }

exception Detcor_error of t

let parse ~line ~col fmt =
  Fmt.kstr (fun msg -> raise (Detcor_error (Parse { line; col; msg }))) fmt

let type_error fmt =
  Fmt.kstr (fun msg -> raise (Detcor_error (Type_error { msg }))) fmt

let internal fmt =
  Fmt.kstr (fun msg -> raise (Detcor_error (Internal { msg }))) fmt

let resource ~kind ~spent ~budget =
  raise (Detcor_error (Resource { kind; spent; budget }))

let snapshot ~path fmt =
  Fmt.kstr (fun msg -> raise (Detcor_error (Snapshot { path; msg }))) fmt

let resource_kind_name = function
  | Time -> "time"
  | Memory -> "memory"
  | States -> "state"
  | Addr -> "address"

let pp_resource ppf { kind; spent; budget } =
  match kind with
  | Time ->
    Fmt.pf ppf "time budget exhausted (spent %.3fs of %.3fs)"
      (float_of_int spent /. 1e9)
      (float_of_int budget /. 1e9)
  | Memory ->
    Fmt.pf ppf "memory budget exhausted (used %d MB of %d MB)"
      (spent / (1024 * 1024))
      (budget / (1024 * 1024))
  | States ->
    Fmt.pf ppf "state budget exhausted (visited %d of %d states)" spent budget
  | Addr ->
    Fmt.pf ppf "address already in use (port %d, retried once)" spent

let pp ppf = function
  | Parse { line; col; msg } ->
    Fmt.pf ppf "parse error at line %d, column %d: %s" line col msg
  | Type_error { msg } -> Fmt.pf ppf "type error: %s" msg
  | Resource r -> pp_resource ppf r
  | Snapshot { path; msg } -> Fmt.pf ppf "snapshot %s: %s" path msg
  | Internal { msg } -> Fmt.pf ppf "internal error: %s" msg

let to_string e = Fmt.str "%a" pp e

(* The dcheck exit-code contract: 0 holds, 1 verification fails, 2
   usage/parse error, 3 resource exhausted.  [Snapshot] is
   resource-class (a damaged or mismatched recovery artifact, not a
   toolkit bug) and shares exit code 3.  [Internal] maps to 125 (a
   toolkit bug, aligned with cmdliner's internal-error code). *)
let exit_code = function
  | Parse _ | Type_error _ -> 2
  | Resource _ | Snapshot _ -> 3
  | Internal _ -> 125

let () =
  Printexc.register_printer (function
    | Detcor_error e -> Some (Fmt.str "Detcor_error (%s)" (to_string e))
    | _ -> None)
