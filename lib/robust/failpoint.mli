(** Named fault-injection sites for the chaos harness.

    Worker-domain bodies and the snapshot write path call {!hit}; armed
    sites raise {!Injected} with the configured probability.  Nothing is
    armed by default — sites are enabled programmatically with {!set} or
    through the [DETCOR_FAILPOINTS] environment variable
    (["name=prob,...;seed=N"]), read once at startup.  Draws come from a
    seeded stream so chaos runs replay deterministically. *)

exception Injected of string

(** Raise {!Injected} with the site's configured probability; free when
    the site is not armed. *)
val hit : string -> unit

val armed : string -> bool
val set : string -> float -> unit
val clear : unit -> unit
val seed : int -> unit

(** Parse and apply a [DETCOR_FAILPOINTS]-syntax spec; malformed segments
    are ignored. *)
val configure : string -> unit
