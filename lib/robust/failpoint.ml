(* Fault injection for the chaos harness.

   A failpoint is a named site in the toolkit that can be armed to raise
   [Injected] with a given probability — worker-domain bodies and the
   snapshot write path call [hit].  Disarmed sites cost one hashtable
   probe on an empty table, and nothing at all is armed unless the
   process opts in, so production behaviour is untouched.

   Arming is programmatic ([set]) for in-process tests, or via the
   DETCOR_FAILPOINTS environment variable for spawned binaries:

     DETCOR_FAILPOINTS="engine.worker=0.3,checkpoint.write=1.0;seed=7"

   The draw stream is seeded (default 0) so a chaos run is replayable
   from its environment alone.  The RNG is guarded by a mutex: worker
   domains hit failpoints concurrently. *)

exception Injected of string

let table : (string, float) Hashtbl.t = Hashtbl.create 8

let rng = ref (Random.State.make [| 0 |])

let lock = Mutex.create ()

let set name probability = Hashtbl.replace table name probability

let clear () = Hashtbl.reset table

let seed s = rng := Random.State.make [| s |]

(* "name=prob,name=prob;seed=N"; malformed segments are ignored — a chaos
   harness with a typo degrades to no injection, never to a crash. *)
let configure spec =
  String.split_on_char ';' spec
  |> List.iter (fun part ->
         match String.index_opt part '=' with
         | None -> ()
         | Some _ ->
           String.split_on_char ',' part
           |> List.iter (fun binding ->
                  match String.split_on_char '=' (String.trim binding) with
                  | [ "seed"; v ] ->
                    Option.iter seed (int_of_string_opt v)
                  | [ name; v ] when name <> "" -> (
                    match float_of_string_opt v with
                    | Some p when p > 0.0 -> set name p
                    | _ -> ())
                  | _ -> ()))

let () =
  match Sys.getenv_opt "DETCOR_FAILPOINTS" with
  | Some spec when spec <> "" -> configure spec
  | _ -> ()

let hit name =
  if Hashtbl.length table > 0 then
    match Hashtbl.find_opt table name with
    | None -> ()
    | Some p ->
      let draw =
        Mutex.lock lock;
        let d = Random.State.float !rng 1.0 in
        Mutex.unlock lock;
        d
      in
      if draw < p then raise (Injected name)

let armed name = Hashtbl.mem table name
