(** The toolkit-wide error taxonomy.

    Every user-provokable failure is a value of {!t} carried by the
    single {!Detcor_error} exception: front ends map any failure to a
    located one-line diagnostic and a documented exit code instead of
    dying on a bare [Failure] or [Invalid_argument]. *)

type resource_kind = Time | Memory | States | Addr

type resource = {
  kind : resource_kind;
  spent : int;
      (** ns for [Time], bytes for [Memory], count for [States], the
          contended port for [Addr] *)
  budget : int;
}

type t =
  | Parse of { line : int; col : int; msg : string }
      (** source-located front-end rejection *)
  | Type_error of { msg : string }
      (** static or elaboration-time typing failure *)
  | Resource of resource  (** a budget dimension ran out *)
  | Snapshot of { path : string; msg : string }
      (** a checkpoint file is truncated, corrupted, or belongs to a
          different run — resource-class (exit 3), never a toolkit bug *)
  | Internal of { msg : string }
      (** library API misuse — never reachable from a well-formed [.dc] *)

exception Detcor_error of t

(** The raising constructors; all are [Fmt.kstr] format raisers except
    [resource]. *)

val parse : line:int -> col:int -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val internal : ('a, Format.formatter, unit, 'b) format4 -> 'a
val resource : kind:resource_kind -> spent:int -> budget:int -> 'a
val snapshot : path:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val resource_kind_name : resource_kind -> string
val pp_resource : resource Fmt.t
val pp : t Fmt.t
val to_string : t -> string

(** The dcheck exit-code contract: [Parse]/[Type_error] → 2, [Resource]
    and [Snapshot] → 3, [Internal] → 125.  (0 is a held verdict, 1 a
    failed one.) *)
val exit_code : t -> int
