(** Resource governance: wall-clock, state-count and heap budgets with
    cooperative checkpoints.

    Install a budget with {!with_budget}; long-running loops call
    {!tick} (or {!count_state} per interned state).  When a dimension
    runs out the checkpoint raises
    [Error.Detcor_error (Error.Resource _)]; exhaustion detected on one
    worker domain cancels the others at their next checkpoint.  The
    default ambient budget is {!unlimited}, whose checkpoint fast path
    is two loads and a branch. *)

type t

(** No limits; checkpoints are near-free. *)
val unlimited : t

(** [make ?timeout ?max_states ?max_memory_mb ()]: [timeout] is
    wall-clock seconds measured on the monotonic clock from [make];
    [max_states] bounds {!count_state} calls; [max_memory_mb] bounds
    the major-heap size sampled at checkpoints. *)
val make : ?timeout:float -> ?max_states:int -> ?max_memory_mb:int -> unit -> t

(** Run [f] with [b] installed as the ambient budget (restored after). *)
val with_budget : t -> (unit -> 'a) -> 'a

val current : unit -> t

(** Cooperative checkpoint against the ambient budget.  Cheap enough
    for per-edge loops; the clock and heap are consulted every 128th
    call.  @raise Error.Detcor_error on exhaustion (and on every
    subsequent call once tripped, so cancellation propagates). *)
val tick : unit -> unit

(** Install a hook run on {!tick}'s masked slow path — the same cadence
    as the checkpoint pulse, i.e. at points where loop state is
    consistent.  dcheck uses it to turn asynchronous termination
    signals into a synchronous exit whose final snapshot captures
    consistent state.  The hook runs on whichever domain ticks; gate on
    the owner domain inside the hook if needed. *)
val set_tick_hook : (unit -> unit) -> unit

(** Count one visited state toward the state ceiling; also a {!tick}. *)
val count_state : unit -> unit

(** States counted against the ambient budget so far. *)
val states_visited : unit -> int

(** The dimension that ran out, if the ambient budget has tripped. *)
val exhausted : unit -> Error.resource option
