(* Resource governance for long-running procedures.

   A budget bounds the wall-clock time (monotonic deadline), visited
   state count and major-heap size of everything run under
   [with_budget].  Long-running loops call the cooperative checkpoints
   [tick]/[count_state]; when a dimension runs out the checkpoint
   raises [Error.Detcor_error (Resource _)], which callers such as
   [Tolerance.check] convert into a sound [Unknown] verdict.

   The ambient budget is a plain global: worker domains spawned under
   [with_budget] read the same record, and the [tripped] cell is an
   [Atomic] so exhaustion detected on one domain cancels the others at
   their next checkpoint.  The inactive fast path of [tick] is two
   loads and a branch, so an unlimited budget (the default) costs
   nothing measurable even in per-edge loops. *)

type t = {
  active : bool;
  start_ns : int64; (* monotonic, for Time spent reporting *)
  deadline_ns : int64 option; (* absolute monotonic deadline *)
  timeout_ns : int64; (* relative, for Time budget reporting *)
  max_states : int option;
  max_memory_bytes : int option;
  states : int Atomic.t;
  ticks : int Atomic.t;
  tripped : Error.resource option Atomic.t;
}

let unlimited =
  {
    active = false;
    start_ns = 0L;
    deadline_ns = None;
    timeout_ns = 0L;
    max_states = None;
    max_memory_bytes = None;
    states = Atomic.make 0;
    ticks = Atomic.make 0;
    tripped = Atomic.make None;
  }

let make ?timeout ?max_states ?max_memory_mb () =
  let start_ns = Detcor_obs.Obs.now_ns () in
  let timeout_ns =
    match timeout with
    | None -> 0L
    | Some s -> Int64.of_float (s *. 1e9)
  in
  {
    active = timeout <> None || max_states <> None || max_memory_mb <> None;
    start_ns;
    deadline_ns =
      (match timeout with
      | None -> None
      | Some _ -> Some (Int64.add start_ns timeout_ns));
    timeout_ns;
    max_states;
    max_memory_bytes = Option.map (fun mb -> mb * 1024 * 1024) max_memory_mb;
    states = Atomic.make 0;
    ticks = Atomic.make 0;
    tripped = Atomic.make None;
  }

let current_budget = ref unlimited

let current () = !current_budget

let with_budget b f =
  let prev = !current_budget in
  current_budget := b;
  Fun.protect ~finally:(fun () -> current_budget := prev) f

(* Record the exhausted dimension (first writer wins, so concurrent
   domains report one consistent reason) and raise. *)
let trip b r =
  ignore (Atomic.compare_and_set b.tripped None (Some r));
  match Atomic.get b.tripped with
  | Some r -> raise (Error.Detcor_error (Error.Resource r))
  | None -> raise (Error.Detcor_error (Error.Resource r))

let reraise_if_tripped b =
  match Atomic.get b.tripped with
  | Some r -> raise (Error.Detcor_error (Error.Resource r))
  | None -> ()

(* The expensive checks: clock and heap, run every [interval] ticks. *)
let check_now b =
  reraise_if_tripped b;
  (match b.deadline_ns with
  | Some deadline ->
    let now = Detcor_obs.Obs.now_ns () in
    if now > deadline then
      trip b
        {
          Error.kind = Error.Time;
          spent = Int64.to_int (Int64.sub now b.start_ns);
          budget = Int64.to_int b.timeout_ns;
        }
  | None -> ());
  match b.max_memory_bytes with
  | Some limit ->
    let heap_bytes = (Gc.quick_stat ()).Gc.heap_words * (Sys.word_size / 8) in
    if heap_bytes > limit then
      trip b { Error.kind = Error.Memory; spent = heap_bytes; budget = limit }
  | None -> ()

let interval = 128 (* power of two: the tick test is a mask *)

(* An external cancellation hook run on the masked slow path — the same
   cadence as [Checkpoint.pulse], i.e. at points where every phase's
   loop state is consistent.  dcheck installs one to turn an
   asynchronous SIGTERM/SIGINT into a synchronous exit at the next
   cooperative checkpoint, so the finalizer stack (including the final
   snapshot) always captures consistent state. *)
let tick_hook : (unit -> unit) ref = ref (fun () -> ())

let set_tick_hook f = tick_hook := f

(* Progress heartbeat: push an ETA derived from the active ceilings —
   seconds until the tightest budget dimension runs out, the only
   completion bound the toolkit can know in general — then let the
   innermost phase publish its sampler readings.  -1 means no ceiling
   applies (unlimited budget). *)
let heartbeat b =
  let eta =
    if not b.active then -1.0
    else begin
      let now = Detcor_obs.Obs.now_ns () in
      let elapsed_s = Int64.to_float (Int64.sub now b.start_ns) /. 1e9 in
      let time_eta =
        match b.deadline_ns with
        | Some d -> Some (Int64.to_float (Int64.sub d now) /. 1e9)
        | None -> None
      in
      let states_eta =
        match b.max_states with
        | Some limit ->
          let n = Atomic.get b.states in
          if n > 0 && elapsed_s > 0.0 then
            Some (float_of_int (limit - n) *. elapsed_s /. float_of_int n)
          else None
        | None -> None
      in
      match (time_eta, states_eta) with
      | Some t, Some s -> Float.min t s
      | Some t, None | None, Some t -> t
      | None, None -> -1.0
    end
  in
  Detcor_obs.Progress.set_eta_seconds eta;
  Detcor_obs.Progress.pulse ()

(* The same masked slow path also drives periodic crash-safe snapshots
   and live progress heartbeats: an armed [Checkpoint] or [Progress]
   session pulses here even when no budget is active, so `--checkpoint`
   and `--telemetry` work with or without `--timeout`.  Heartbeat-only
   arming (telemetry with no budget and no checkpoint) must stay off
   the shared atomic tick counter — per-edge loops tick hot enough
   that even a plain countdown decrement per tick is visible — so it
   polls [Progress.due_now], a single ref load that a 20 Hz ticker
   thread flips. *)
let tick () =
  let b = !current_budget in
  let cp = Checkpoint.armed () in
  if b.active || cp then begin
    let n = Atomic.fetch_and_add b.ticks 1 in
    if n land (interval - 1) = 0 then begin
      !tick_hook ();
      if b.active then check_now b;
      if cp then Checkpoint.pulse ();
      if Detcor_obs.Progress.armed () then heartbeat b
    end
    else if b.active then reraise_if_tripped b
  end
  else if Detcor_obs.Progress.due_now () then heartbeat b

(* One visited state: counts toward the state ceiling and doubles as a
   cooperative checkpoint. *)
let count_state () =
  let b = !current_budget in
  let cp = Checkpoint.armed () in
  if b.active || cp then begin
    (if b.active then
       let n = Atomic.fetch_and_add b.states 1 + 1 in
       match b.max_states with
       | Some limit when n > limit ->
         trip b { Error.kind = Error.States; spent = n; budget = limit }
       | _ -> ());
    let t = Atomic.fetch_and_add b.ticks 1 in
    if t land (interval - 1) = 0 then begin
      !tick_hook ();
      if b.active then check_now b;
      if cp then Checkpoint.pulse ();
      if Detcor_obs.Progress.armed () then heartbeat b
    end
    else if b.active then reraise_if_tripped b
  end
  else if Detcor_obs.Progress.due_now () then heartbeat b

let states_visited () = Atomic.get !current_budget.states

let exhausted () = Atomic.get !current_budget.tripped
