(* Crash-safe snapshots of long-running fixpoints.

   The paper reads fault tolerance as a detector (notice the bad state)
   composed with a corrector (converge back to the invariant).  This
   module is the toolkit practicing that decomposition on itself: the
   detector is whatever interrupts a run — a tripped budget, a SIGKILL,
   a lost worker — and the corrector is the last persisted snapshot,
   from which a resumed run converges to the same verdict it would have
   produced uninterrupted.

   A run under [start] is a deterministic sequence of *phases*: the
   packed engine's BFS, the synthesis backward fixpoints, the recovery
   layering, the simulator's run loop.  Each phase [enter]s in program
   order and receives a dense step number; because the toolkit is
   deterministic, the same command replays the same phase sequence, so
   a snapshot taken at step k can be consumed positionally by the next
   run.  Phases serialize their own loop state (packed ranks, CSR
   prefixes, bitset words — never closures) to strings with [Marshal];
   this module only moves those strings.

   The file format is versioned and checksummed, and every write goes
   to a temporary file in the same directory followed by [Sys.rename],
   so a reader only ever observes a complete snapshot or the previous
   one — never a torn write.  Any defect found while loading (truncated
   payload, checksum mismatch, foreign fingerprint) raises the
   resource-class [Error.Snapshot], never [Internal]: a damaged
   recovery artifact is an environmental fault, not a toolkit bug.

   Periodic writes ride the existing [Budget] cooperative checkpoints:
   [Budget.tick]/[count_state] call [pulse], which saves when the
   monotonic interval has elapsed (suspends and NTP jumps cannot starve
   or spuriously fire it).  Only the domain that called [start] writes;
   pulses from worker domains are no-ops, so captures always observe
   loop state at a consistent point of the orchestrating domain. *)

open Detcor_obs

let m_written = Metrics.counter "robust.snapshots_written"
let m_errors = Metrics.counter "robust.snapshot_errors"
let m_resumed = Metrics.counter "robust.phases_resumed"
let h_bytes = Metrics.histogram "robust.snapshot_bytes"

(* ------------------------------------------------------------------ *)
(* File format.                                                        *)
(* ------------------------------------------------------------------ *)

let magic = "DCSNAP01"

let format_version = 1

type entry = { step : int; kind : string; complete : bool; data : string }

type file_record = {
  f_version : int;
  f_ocaml : string; (* Marshal payloads do not cross compiler versions *)
  f_fingerprint : string;
  f_entries : entry array;
}

(* FNV-1a 64-bit over the payload bytes: enough to reject the torn and
   bit-flipped files the chaos harness produces, with no dependencies. *)
let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  !h

(* Length-prefixing each part keeps ["ab";"c"] and ["a";"bc"] distinct. *)
let digest parts =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    parts;
  Printf.sprintf "%016Lx" (fnv64 (Buffer.contents buf))

(* Header: 8 magic bytes, 16 hex payload-length bytes, 16 hex checksum
   bytes; then the marshalled payload. *)
let header_len = 40

let write_file ~path ~fingerprint entries =
  Failpoint.hit "checkpoint.write";
  let payload =
    Marshal.to_string
      {
        f_version = format_version;
        f_ocaml = Sys.ocaml_version;
        f_fingerprint = fingerprint;
        f_entries = entries;
      }
      []
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc magic;
     output_string oc (Printf.sprintf "%016x" (String.length payload));
     output_string oc (Printf.sprintf "%016Lx" (fnv64 payload));
     output_string oc payload;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  String.length payload

let read_file ~path =
  let contents =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error m -> Error.snapshot ~path "cannot read: %s" m
  in
  let fail fmt = Error.snapshot ~path fmt in
  if String.length contents < header_len then
    fail "truncated header (%d of %d bytes)" (String.length contents)
      header_len;
  if not (String.equal (String.sub contents 0 8) magic) then
    fail "not a detcor snapshot (bad magic)";
  (* The checksum is parsed as [Int64]: hex literals cover the full
     unsigned range there, while a set top bit overflows OCaml's int. *)
  let len =
    match int_of_string_opt ("0x" ^ String.sub contents 8 16) with
    | Some v -> v
    | None -> fail "unreadable header field"
  in
  let sum =
    match Int64.of_string_opt ("0x" ^ String.sub contents 24 16) with
    | Some v -> v
    | None -> fail "unreadable header field"
  in
  if String.length contents <> header_len + len then
    fail "truncated payload (%d of %d bytes)"
      (String.length contents - header_len)
      len;
  let payload = String.sub contents header_len len in
  if not (Int64.equal (fnv64 payload) sum) then
    fail "checksum mismatch (damaged file)";
  let record : file_record =
    try Marshal.from_string payload 0
    with Failure _ -> fail "undecodable payload"
  in
  if record.f_version <> format_version then
    fail "format version %d (this binary reads %d)" record.f_version
      format_version;
  if not (String.equal record.f_ocaml Sys.ocaml_version) then
    fail "written by OCaml %s (this binary is %s)" record.f_ocaml
      Sys.ocaml_version;
  (record.f_fingerprint, record.f_entries)

(* ------------------------------------------------------------------ *)
(* Sessions.                                                           *)
(* ------------------------------------------------------------------ *)

type phase_data = {
  p_step : int;
  p_kind : string;
  mutable p_capture : (unit -> string) option;
  (* A partial payload restored from the resumed file is kept until the
     phase registers its own capture, so an early save never loses it. *)
  mutable p_resumed : entry option;
}

(* [None] is the inert phase handed out when no session is active. *)
type phase = phase_data option

type session = {
  write_path : string option;
  interval_ns : int64;
  fingerprint : string;
  owner : int; (* only this domain's pulses write *)
  resume_entries : (int, entry) Hashtbl.t;
  mutable next_step : int;
  mutable completed : entry list; (* newest first *)
  mutable stack : phase_data list; (* active phases, innermost first *)
  mutable last_save_ns : int64;
  mutable last_save_dur_ns : int64;
}

let current : session option ref = ref None

(* Read from [Budget.tick]'s fast path (including worker domains): a
   plain flag, racy reads are benign because [pulse] re-checks. *)
let armed_flag = ref false

let active () = !current <> None

let armed () = !armed_flag

let default_interval = 30.0

let start ?(interval = default_interval) ?write ?resume ~fingerprint () =
  let resume_entries = Hashtbl.create 16 in
  (match resume with
  | None -> ()
  | Some path ->
    let fp, entries = read_file ~path in
    if not (String.equal fp fingerprint) then
      Error.snapshot ~path
        "fingerprint mismatch: snapshot is from a different program or \
         command line";
    Array.iter (fun e -> Hashtbl.replace resume_entries e.step e) entries;
    if Obs.on () then
      Obs.event "robust.resume"
        ~attrs:
          [ Attr.str "path" path; Attr.int "entries" (Array.length entries) ]);
  current :=
    Some
      {
        write_path = write;
        interval_ns = Int64.of_float (interval *. 1e9);
        fingerprint;
        owner = (Stdlib.Domain.self () :> int);
        resume_entries;
        next_step = 0;
        completed = [];
        stack = [];
        last_save_ns = Obs.now_ns ();
        last_save_dur_ns = 0L;
      };
  armed_flag := write <> None

let entries_of s =
  let act =
    List.filter_map
      (fun p ->
        match p.p_capture with
        | Some capture ->
          Some { step = p.p_step; kind = p.p_kind; complete = false;
                 data = capture () }
        | None -> p.p_resumed)
      s.stack
  in
  List.sort
    (fun a b -> Int.compare a.step b.step)
    (List.rev_append s.completed act)
  |> Array.of_list

(* Write the session's current entries.  A failed write (full disk, an
   armed failpoint) is counted and reported but never aborts the run:
   losing a snapshot only loses progress insurance, not correctness. *)
let save s =
  match s.write_path with
  | None -> ()
  | Some path -> (
    s.last_save_ns <- Obs.now_ns ();
    match write_file ~path ~fingerprint:s.fingerprint (entries_of s) with
    | bytes ->
      s.last_save_dur_ns <- Int64.sub (Obs.now_ns ()) s.last_save_ns;
      Metrics.incr m_written;
      Metrics.observe h_bytes bytes;
      if Obs.on () then
        Obs.event "robust.snapshot" ~level:Attr.Debug
          ~attrs:[ Attr.str "path" path; Attr.int "bytes" bytes ]
    | exception (Sys_error _ | Failpoint.Injected _) ->
      Metrics.incr m_errors;
      if Obs.on () then
        Obs.event "robust.snapshot_error" ~level:Attr.Warn
          ~attrs:[ Attr.str "path" path ])

let on_owner s = (Stdlib.Domain.self () :> int) = s.owner

(* Amortized pacing: when snapshots grow large enough that a single
   write outlasts the configured interval, pure wall-clock pacing would
   put the run back into [save] the moment it returns, spending nearly
   all of its time serializing.  Requiring the gap to also exceed a
   multiple of the previous save's own duration bounds snapshot cost to
   a fixed fraction of the run, however big the payload gets. *)
let min_gap s =
  let amortized = Int64.mul 4L s.last_save_dur_ns in
  if Int64.compare amortized s.interval_ns > 0 then amortized
  else s.interval_ns

let pulse () =
  match !current with
  | Some s when s.write_path <> None && on_owner s ->
    if Int64.sub (Obs.now_ns ()) s.last_save_ns >= min_gap s then save s
  | _ -> ()

let save_now () =
  match !current with Some s when on_owner s -> save s | _ -> ()

let stop () =
  (match !current with Some s when on_owner s -> save s | _ -> ());
  current := None;
  armed_flag := false

(* ------------------------------------------------------------------ *)
(* Phases.                                                             *)
(* ------------------------------------------------------------------ *)

type resumed = Midway of string | Done of string

let enter ~kind : phase =
  match !current with
  | None -> None
  | Some s when not (on_owner s) -> None
  | Some s ->
    let step = s.next_step in
    s.next_step <- step + 1;
    let resumed = Hashtbl.find_opt s.resume_entries step in
    (match resumed with
    | Some e when not (String.equal e.kind kind) ->
      Error.snapshot
        ~path:(Option.value s.write_path ~default:"<resume>")
        "phase %d is %S in the snapshot but %S in this run" step e.kind kind
    | Some e ->
      Metrics.incr m_resumed;
      if Obs.on () then
        Obs.event "robust.phase_resumed"
          ~attrs:
            [
              Attr.int "step" step; Attr.str "kind" kind;
              Attr.bool "complete" e.complete;
            ];
      (* A completed phase's payload stays in every later save. *)
      if e.complete then s.completed <- e :: s.completed
    | None -> ());
    let p = { p_step = step; p_kind = kind; p_capture = None;
              p_resumed = (match resumed with
                           | Some e when not e.complete -> resumed
                           | _ -> None) }
    in
    s.stack <- p :: s.stack;
    Some p

let resume_data (p : phase) =
  match (p, !current) with
  | Some p, Some s -> (
    match Hashtbl.find_opt s.resume_entries p.p_step with
    | Some e when e.complete -> Some (Done e.data)
    | Some e -> Some (Midway e.data)
    | None -> None)
  | _ -> None

let set_capture (p : phase) capture =
  match p with
  | None -> ()
  | Some p ->
    p.p_capture <- Some capture;
    p.p_resumed <- None

let drop_phase s (p : phase_data) =
  s.stack <- List.filter (fun q -> q != p) s.stack

let complete (p : phase) data =
  match (p, !current) with
  | Some p, Some s ->
    drop_phase s p;
    (* Replace, don't accumulate: a phase resumed as complete and re-run
       to completion would otherwise record its step twice. *)
    s.completed <-
      { step = p.p_step; kind = p.p_kind; complete = true; data }
      :: List.filter (fun e -> e.step <> p.p_step) s.completed
  | _ -> ()
