(* Tests for the framework extensions: counterexample explanation,
   component composition, multitolerance, and the DSL typechecker. *)

open Detcor_kernel
open Detcor_semantics
open Detcor_spec
open Detcor_core
open Detcor_systems

(* ------------------------------------------------------------------ *)
(* Shortest paths and explanations.                                    *)
(* ------------------------------------------------------------------ *)

let test_shortest_path () =
  let ts =
    Ts.build (Util.graph_program 5 [ (0, 1); (1, 2); (2, 3); (0, 4); (4, 3) ])
      ~from:[ Util.node_state 0 ]
  in
  let goal = Option.get (Ts.index_of ts (Util.node_state 3)) in
  match Graph.shortest_path ts ~from:(Ts.initials ts) ~target:(fun i -> i = goal) with
  | None -> Alcotest.fail "path exists"
  | Some (_, steps) -> Alcotest.(check int) "shortest has 2 steps" 2 (List.length steps)

let test_shortest_path_masked () =
  let ts =
    Ts.build (Util.graph_program 4 [ (0, 1); (1, 3); (0, 2); (2, 3) ])
      ~from:[ Util.node_state 0 ]
  in
  let goal = Option.get (Ts.index_of ts (Util.node_state 3)) in
  let avoid1 i = not (State.equal (Ts.state ts i) (Util.node_state 1)) in
  match
    Graph.shortest_path ~mask:avoid1 ts ~from:(Ts.initials ts)
      ~target:(fun i -> i = goal)
  with
  | None -> Alcotest.fail "masked path exists via 2"
  | Some (_, steps) ->
    let through =
      List.map (fun (_, j) -> State.get (Ts.state ts j) "node") steps
    in
    Alcotest.(check bool) "avoids node 1" true
      (not (List.exists (Value.equal (Value.int 1)) through))

let test_explain_bad_transition () =
  (* The intolerant memory program: witness trace must be
     fault-then-unsafe-read, the paper's motivating scenario. *)
  let span =
    Tolerance.fault_span Memory.intolerant ~faults:Memory.page_fault
      ~from:Memory.s
  in
  let sspec = Spec.smallest_safety_containing Memory.spec in
  match Spec.refines span.ts_pf sspec with
  | Check.Holds -> Alcotest.fail "expected a violation"
  | Check.Unknown _ -> Alcotest.fail "expected a definite verdict"
  | Check.Fails v -> (
    match Explain.violation span.ts_pf v with
    | None -> Alcotest.fail "witness should exist"
    | Some w ->
      let actions =
        List.map (fun (s : Trace.step) -> s.action) (Trace.steps w.prefix)
      in
      Alcotest.(check bool) "fault occurs in the witness" true
        (List.mem "F:page-fault" actions);
      Alcotest.(check bool) "unsafe read ends the witness" true
        (match List.rev actions with "p_read" :: _ -> true | _ -> false))

let test_explain_unreachable () =
  let ts = Ts.build (Util.graph_program 3 [ (0, 1) ]) ~from:[ Util.node_state 0 ] in
  Alcotest.(check bool) "unreachable state has no witness" true
    (Explain.to_state ts (Util.node_state 2) = None)

let test_explain_fair_cycle () =
  let ts =
    Ts.build (Util.graph_program 3 [ (0, 1); (1, 1) ]) ~from:[ Util.node_state 0 ]
  in
  let at2 = Pred.make "at2" (fun st -> Value.equal (State.get st "node") (Value.int 2)) in
  match Check.eventually ts at2 with
  | Check.Holds -> Alcotest.fail "expected fair-cycle violation"
  | Check.Unknown _ -> Alcotest.fail "expected a definite verdict"
  | Check.Fails v -> (
    match Explain.violation ts v with
    | Some w -> Alcotest.(check bool) "cycle reported" true (w.cycle <> [])
    | None -> Alcotest.fail "witness should exist")

(* ------------------------------------------------------------------ *)
(* Component composition.                                              *)
(* ------------------------------------------------------------------ *)

let masking_ts = lazy (Ts.of_pred Memory.masking ~from:Memory.t)

(* A second detector of pm: "the output cell is populated" witnesses
   itself (a trivially sound detector used to exercise composition). *)
let populated =
  Pred.make "data#bot" (fun st -> not (Value.equal (State.get st "data") Value.bot))

let d_populated = Detector.make ~name:"populated" ~witness:populated ~detection:populated ()

let test_detector_conjunction () =
  let ts = Lazy.force masking_ts in
  let schema = Compose.conjunction_schema ts Memory.pm_detector d_populated in
  Alcotest.(check bool)
    (Fmt.str "%a" Compose.pp_schema schema)
    true (Compose.holds schema)

let test_detector_conjunction_soundness_random () =
  (* The conjunction lemma is unconditional: on every system where both
     premises hold, the conclusion must hold.  Exercise it across the
     example corpus. *)
  let instances =
    [
      (Lazy.force masking_ts, Memory.pm_detector, d_populated);
      ( Ts.of_pred Memory.failsafe ~from:Memory.t,
        Memory.pf_detector,
        d_populated );
    ]
  in
  List.iter
    (fun (ts, d1, d2) ->
      let schema = Compose.conjunction_schema ts d1 d2 in
      Alcotest.(check bool) "conjunction validates" true (Compose.validates schema))
    instances

let test_detector_seq () =
  let ts = Lazy.force masking_ts in
  let d = Compose.detector_seq Memory.pm_detector d_populated in
  Util.check_holds "sequenced detector holds on pm" (Detector.satisfies_ts ts d)

let test_detector_list_and () =
  let ts = Lazy.force masking_ts in
  let d = Compose.detector_list_and [ Memory.pm_detector; d_populated; Memory.pm_detector ] in
  Util.check_holds "n-ary conjunction" (Detector.satisfies_ts ts d);
  Alcotest.(check bool) "empty list rejected" true
    (try
       ignore (Compose.detector_list_and []);
       false
     with
     | Detcor_robust.Error.Detcor_error (Detcor_robust.Error.Internal _) ->
       true)

let test_corrector_conjunction () =
  let ts = Ts.of_pred Memory.nonmasking ~from:Memory.t in
  let c2 = Corrector.of_invariant Pred.true_ in
  let schema = Compose.corrector_conjunction_schema ts Memory.pn_corrector c2 in
  Alcotest.(check bool)
    (Fmt.str "%a" Compose.pp_schema schema)
    true (Compose.holds schema)

let test_disjunction_instance () =
  (* Disjunction is instance-checked; on pm with these two detectors it
     happens to hold, and validates() must not be violated either way. *)
  let ts = Lazy.force masking_ts in
  let schema = Compose.disjunction_schema ts Memory.pm_detector Memory.pm_detector in
  Alcotest.(check bool) "self-disjunction holds" true (Compose.holds schema)

(* ------------------------------------------------------------------ *)
(* Multitolerance.                                                     *)
(* ------------------------------------------------------------------ *)

let test_multitolerance_pm () =
  (* pm: masking to page faults AND nonmasking to data corruption — the
     multitolerance headline. *)
  let report =
    Multitolerance.check Memory.masking ~spec:Memory.spec ~invariant:Memory.s
      ~requirements:
        [
          { Multitolerance.fault = Memory.page_fault; tol = Spec.Masking };
          { Multitolerance.fault = Memory.data_corruption; tol = Spec.Nonmasking };
        ]
  in
  Alcotest.(check bool)
    (Fmt.str "%a" Multitolerance.pp_report report)
    true
    (Multitolerance.verdict report);
  (* The combined class is checked at the weakest level (nonmasking). *)
  Alcotest.(check bool) "combined report present" true (report.combined <> None)

let test_multitolerance_negative () =
  (* pf is not nonmasking to page faults, so a requirement asking for it
     must fail. *)
  let report =
    Multitolerance.check Memory.failsafe ~spec:Memory.spec ~invariant:Memory.s
      ~requirements:
        [
          { Multitolerance.fault = Memory.page_fault; tol = Spec.Nonmasking };
        ]
  in
  Alcotest.(check bool) "pf cannot recover" false (Multitolerance.verdict report)

let test_multitolerance_weakest () =
  Alcotest.(check bool) "all masking" true
    (Multitolerance.weakest [ Spec.Masking; Spec.Masking ] = Spec.Masking);
  Alcotest.(check bool) "nonmasking dominates" true
    (Multitolerance.weakest [ Spec.Masking; Spec.Nonmasking ] = Spec.Nonmasking);
  Alcotest.(check bool) "failsafe when no nonmasking" true
    (Multitolerance.weakest [ Spec.Masking; Spec.Failsafe ] = Spec.Failsafe)

let test_masking_against_weakened_spec () =
  (* Against the recovery-only specification (no safety part), pm is even
     masking tolerant to data corruption. *)
  Alcotest.(check bool) "pm masking for recovery spec" true
    (Tolerance.verdict
       (Tolerance.is_masking Memory.masking ~spec:Memory.spec_recovery
          ~invariant:Memory.s ~faults:Memory.data_corruption))

(* ------------------------------------------------------------------ *)
(* Typechecker.                                                        *)
(* ------------------------------------------------------------------ *)

open Detcor_lang

let errors src = Typecheck.check (Parser.parse_string src)

let test_typecheck_clean () =
  Alcotest.(check (list string)) "well-typed program" []
    (errors
       "program t\nvar x : 0..3\nvar b : bool\ninvariant b\naction a: b && x < 2 -> x := x + 1")

let test_typecheck_unknown_ident () =
  Alcotest.(check bool) "unknown identifier reported" true
    (errors "program t\nvar x : bool\naction a: y -> x := true" <> [])

let test_typecheck_kind_mismatch () =
  Alcotest.(check bool) "int guard rejected" true
    (errors "program t\nvar x : 0..3\naction a: x -> x := 0" <> []);
  Alcotest.(check bool) "bool arithmetic rejected" true
    (errors "program t\nvar b : bool\naction a: true -> b := b + 1" <> []);
  Alcotest.(check bool) "cross-kind comparison rejected" true
    (errors "program t\nvar b : bool\nvar x : 0..3\naction a: b = x -> x := 0" <> [])

let test_typecheck_symbol_domain () =
  Alcotest.(check bool) "foreign symbol in comparison" true
    (errors
       "program t\nvar c : {red, green}\nvar d : {blue}\naction a: c = blue -> c := red"
    <> []);
  Alcotest.(check bool) "foreign symbol in assignment" true
    (errors
       "program t\nvar c : {red, green}\nvar d : {blue}\naction a: true -> c := blue"
    <> [])

let test_typecheck_duplicates () =
  Alcotest.(check bool) "duplicate action" true
    (errors
       "program t\nvar x : bool\naction a: true -> x := true\naction a: true -> x := false"
    <> []);
  Alcotest.(check bool) "duplicate variable" true
    (errors "program t\nvar x : bool\nvar x : 0..1\naction a: true -> x := true" <> [])

let test_typecheck_based_on () =
  Alcotest.(check bool) "dangling based-on" true
    (errors "program t\nvar x : bool\naction a based on ghost: true -> x := true" <> [])

let test_typecheck_if_branches () =
  Alcotest.(check bool) "mixed if branches rejected" true
    (errors
       "program t\nvar x : 0..3\nvar b : bool\naction a: true -> x := if b then 1 else b"
    <> [])

let test_typecheck_empty_action () =
  Alcotest.(check bool) "empty assignment list unreachable via parser" true
    (try
       ignore (Parser.parse_string "program t\naction a: true ->");
       false
     with
     | Detcor_robust.Error.Detcor_error (Detcor_robust.Error.Parse _) -> true)

let test_elaborate_runs_typecheck () =
  Alcotest.(check bool) "elaborate rejects ill-typed source" true
    (try
       ignore
         (Elaborate.load_string "program t\nvar x : 0..3\naction a: x -> x := 0");
       false
     with
     | Detcor_robust.Error.Detcor_error (Detcor_robust.Error.Type_error _) ->
       true)

let suite =
  ( "extensions (explain, compose, multitolerance, typecheck)",
    [
      Alcotest.test_case "shortest path" `Quick test_shortest_path;
      Alcotest.test_case "masked shortest path" `Quick test_shortest_path_masked;
      Alcotest.test_case "explain bad transition" `Quick test_explain_bad_transition;
      Alcotest.test_case "explain unreachable" `Quick test_explain_unreachable;
      Alcotest.test_case "explain fair cycle" `Quick test_explain_fair_cycle;
      Alcotest.test_case "detector conjunction" `Quick test_detector_conjunction;
      Alcotest.test_case "conjunction soundness corpus" `Quick
        test_detector_conjunction_soundness_random;
      Alcotest.test_case "sequenced detector" `Quick test_detector_seq;
      Alcotest.test_case "n-ary conjunction" `Quick test_detector_list_and;
      Alcotest.test_case "corrector conjunction" `Quick test_corrector_conjunction;
      Alcotest.test_case "disjunction instance" `Quick test_disjunction_instance;
      Alcotest.test_case "multitolerance pm" `Quick test_multitolerance_pm;
      Alcotest.test_case "multitolerance negative" `Quick test_multitolerance_negative;
      Alcotest.test_case "weakest tolerance" `Quick test_multitolerance_weakest;
      Alcotest.test_case "weakened spec masking" `Quick
        test_masking_against_weakened_spec;
      Alcotest.test_case "typecheck clean" `Quick test_typecheck_clean;
      Alcotest.test_case "typecheck unknown ident" `Quick test_typecheck_unknown_ident;
      Alcotest.test_case "typecheck kind mismatch" `Quick test_typecheck_kind_mismatch;
      Alcotest.test_case "typecheck symbol domains" `Quick test_typecheck_symbol_domain;
      Alcotest.test_case "typecheck duplicates" `Quick test_typecheck_duplicates;
      Alcotest.test_case "typecheck based-on" `Quick test_typecheck_based_on;
      Alcotest.test_case "typecheck if branches" `Quick test_typecheck_if_branches;
      Alcotest.test_case "typecheck empty action" `Quick test_typecheck_empty_action;
      Alcotest.test_case "elaborate runs typecheck" `Quick
        test_elaborate_runs_typecheck;
    ] )
