(* Tests for Detcor_kernel: values, domains, states, expressions,
   predicates, actions, programs, compositions, encapsulation. *)

open Detcor_kernel

let test_value_order () =
  Alcotest.(check bool) "int < bool" true (Value.compare (Value.int 3) (Value.bool false) < 0);
  Alcotest.(check bool) "bool < sym" true (Value.compare (Value.bool true) (Value.sym "a") < 0);
  Alcotest.(check bool) "equal ints" true (Value.equal (Value.int 2) (Value.int 2));
  Alcotest.(check bool) "distinct syms" false (Value.equal (Value.sym "a") (Value.sym "b"))

let test_value_projections () =
  Alcotest.(check (option int)) "to_int" (Some 4) (Value.to_int (Value.int 4));
  Alcotest.(check (option int)) "to_int of bool" None (Value.to_int (Value.bool true));
  Alcotest.(check (option bool)) "to_bool" (Some true) (Value.to_bool (Value.bool true));
  Alcotest.check_raises "as_int of sym" (Value.Type_error "expected int, got bot")
    (fun () -> ignore (Value.as_int Value.bot))

let test_domain () =
  Alcotest.(check int) "range size" 4 (Domain.size (Domain.range 0 3));
  Alcotest.(check int) "bool size" 2 (Domain.size Domain.boolean);
  Alcotest.(check int) "dedup" 2 (Domain.size (Domain.of_values [ Value.int 1; Value.int 1; Value.int 2 ]));
  Alcotest.(check bool) "mem" true (Domain.mem (Value.int 2) (Domain.range 0 3));
  Alcotest.(check bool) "not mem" false (Domain.mem (Value.int 9) (Domain.range 0 3));
  Alcotest.(check bool) "with_bot" true (Domain.mem Value.bot (Domain.with_bot Domain.boolean));
  Alcotest.(check bool) "empty range" true
    (try
       ignore (Domain.range 3 2);
       false
     with
     | Detcor_robust.Error.Detcor_error
         (Detcor_robust.Error.Internal { msg }) ->
       msg = "Domain.range: empty range")

let test_state_basics () =
  let st = State.of_list [ ("x", Value.int 1); ("y", Value.bool true) ] in
  Alcotest.check Util.value "get x" (Value.int 1) (State.get st "x");
  let st' = State.set st "x" (Value.int 2) in
  Alcotest.check Util.value "set is persistent" (Value.int 1) (State.get st "x");
  Alcotest.check Util.value "set updates" (Value.int 2) (State.get st' "x");
  Alcotest.(check (list string)) "variables" [ "x"; "y" ] (State.variables st);
  Alcotest.(check bool) "mem" true (State.mem st "y");
  Alcotest.(check bool) "not mem" false (State.mem st "z")

let test_state_projection () =
  let st = State.of_list [ ("x", Value.int 1); ("y", Value.int 2); ("z", Value.int 3) ] in
  let p = State.project st [ "x"; "z" ] in
  Alcotest.(check (list string)) "projected vars" [ "x"; "z" ] (State.variables p);
  Alcotest.(check bool) "agree_on x z" true (State.agree_on st p [ "x"; "z" ]);
  let st2 = State.set st "y" (Value.int 9) in
  Alcotest.(check bool) "agree ignoring y" true (State.agree_on st st2 [ "x"; "z" ]);
  Alcotest.(check bool) "disagree on y" false (State.agree_on st st2 [ "y" ])

(* Projecting a wide state on a wide variable set used to scan the whole
   variable list per binding (quadratic); this must stay linearithmic.
   5000 variables x 2500 kept: the old scan did ~12.5M comparisons and
   took seconds, the set-based version is effectively instant. *)
let test_state_projection_wide () =
  let n = 5000 in
  let st =
    State.of_list (List.init n (fun i -> (Fmt.str "v%04d" i, Value.int i)))
  in
  let keep = List.init (n / 2) (fun i -> Fmt.str "v%04d" (2 * i)) in
  let t0 = Unix.gettimeofday () in
  let p = State.project st keep in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "projected cardinality" (n / 2) (State.cardinal p);
  Alcotest.(check bool) "projection agrees" true (State.agree_on st p keep);
  Alcotest.(check bool)
    (Fmt.str "wide projection is fast (%.0f ms)" (1e3 *. elapsed))
    true (elapsed < 1.0)

let test_expr_eval () =
  let st = State.of_list [ ("x", Value.int 3); ("b", Value.bool true) ] in
  let open Expr in
  Alcotest.(check int) "arith" 7 (eval_int st (add (var "x") (int 4)));
  Alcotest.(check int) "mod positive" 1 (eval_int st (mod_ (int 7) (int 2)));
  Alcotest.(check int) "mod negative operand" 1 (eval_int st (mod_ (int (-3)) (int 2)));
  Alcotest.(check bool) "cmp" true (eval_bool st (le (var "x") (int 3)));
  Alcotest.(check bool) "implies false antecedent" true
    (eval_bool st (implies (bool false) (bool false)));
  Alcotest.(check bool) "iff" true (eval_bool st (iff (var "b") (gt (var "x") (int 0))));
  Alcotest.check Util.value "ite" (Value.int 1)
    (eval st (ite (var "b") (int 1) (int 0)));
  Alcotest.(check (list string)) "variables" [ "b"; "x" ]
    (variables (and_ [ var "b"; eq (var "x") (var "b") ]))

let test_expr_errors () =
  let st = State.of_list [ ("x", Value.int 3) ] in
  Alcotest.check_raises "unbound" (Value.Type_error "unbound variable y")
    (fun () -> ignore (Expr.eval st (Expr.var "y")));
  Alcotest.check_raises "mod zero" (Value.Type_error "modulo by zero")
    (fun () -> ignore (Expr.eval st (Expr.mod_ (Expr.var "x") (Expr.int 0))))

let test_pred_combinators () =
  let st = State.of_list [ ("x", Value.int 3) ] in
  let p = Pred.make "x>0" (fun st -> Value.as_int (State.get st "x") > 0) in
  let q = Pred.make "x<2" (fun st -> Value.as_int (State.get st "x") < 2) in
  Alcotest.(check bool) "and" false (Pred.holds (Pred.and_ p q) st);
  Alcotest.(check bool) "or" true (Pred.holds (Pred.or_ p q) st);
  Alcotest.(check bool) "not" false (Pred.holds (Pred.not_ p) st);
  Alcotest.(check bool) "implies" false (Pred.holds (Pred.implies p q) st);
  Alcotest.(check bool) "conj empty = true" true (Pred.holds (Pred.conj []) st);
  Alcotest.(check bool) "disj empty = false" false (Pred.holds (Pred.disj []) st)

let test_pred_of_states () =
  let s1 = State.of_list [ ("x", Value.int 1) ] in
  let s2 = State.of_list [ ("x", Value.int 2) ] in
  let p = Pred.of_states [ s1 ] in
  Alcotest.(check bool) "member" true (Pred.holds p s1);
  Alcotest.(check bool) "non-member" false (Pred.holds p s2)

(* A tiny counter program used across action/program tests. *)
let counter max =
  let guard = Pred.make "x<max" (fun st -> Value.as_int (State.get st "x") < max) in
  let inc =
    Action.deterministic "inc" guard (fun st ->
        State.set st "x" (Value.int (Value.as_int (State.get st "x") + 1)))
  in
  Program.make ~name:"counter" ~vars:[ ("x", Domain.range 0 max) ] ~actions:[ inc ]

let test_action_execute () =
  let p = counter 3 in
  let inc = Option.get (Program.find_action p "inc") in
  let st0 = State.of_list [ ("x", Value.int 0) ] in
  let st3 = State.of_list [ ("x", Value.int 3) ] in
  Alcotest.(check bool) "enabled" true (Action.enabled inc st0);
  Alcotest.(check bool) "disabled at max" false (Action.enabled inc st3);
  Alcotest.(check (list Util.state)) "successor"
    [ State.of_list [ ("x", Value.int 1) ] ]
    (Action.execute inc st0);
  Alcotest.(check (list Util.state)) "no successor when disabled" []
    (Action.execute inc st3)

let test_action_restrict () =
  let p = counter 3 in
  let inc = Option.get (Program.find_action p "inc") in
  let even = Pred.make "even" (fun st -> Value.as_int (State.get st "x") mod 2 = 0) in
  let restricted = Action.restrict even inc in
  let st1 = State.of_list [ ("x", Value.int 1) ] in
  let st2 = State.of_list [ ("x", Value.int 2) ] in
  Alcotest.(check bool) "odd blocked" false (Action.enabled restricted st1);
  Alcotest.(check bool) "even enabled" true (Action.enabled restricted st2)

let test_action_preserves () =
  let p = counter 3 in
  let inc = Option.get (Program.find_action p "inc") in
  let universe = Program.states p in
  let nonneg = Pred.make "x>=0" (fun st -> Value.as_int (State.get st "x") >= 0) in
  let lt2 = Pred.make "x<2" (fun st -> Value.as_int (State.get st "x") < 2) in
  Alcotest.(check bool) "preserves x>=0" true (Action.preserves inc nonneg ~universe);
  Alcotest.(check bool) "does not preserve x<2" false (Action.preserves inc lt2 ~universe)

let test_corrupt_action () =
  let d = Domain.range 0 2 in
  let c = Action.corrupt "c" Pred.true_ "x" d in
  let st = State.of_list [ ("x", Value.int 0) ] in
  Alcotest.(check int) "three successors" 3 (List.length (Action.execute c st))

let test_program_space () =
  let p = counter 3 in
  Alcotest.(check int) "space size" 4 (Program.space_size p);
  Alcotest.(check int) "states" 4 (List.length (Program.states p));
  let st3 = State.of_list [ ("x", Value.int 3) ] in
  Alcotest.(check bool) "deadlock at max" true (Program.deadlocked p st3);
  Alcotest.(check (list string)) "well formed" [] (Program.well_formed p)

let test_program_out_of_domain () =
  let bad =
    Program.make ~name:"bad"
      ~vars:[ ("x", Domain.range 0 1) ]
      ~actions:
        [
          Action.deterministic "boom" Pred.true_ (fun st ->
              State.set st "x" (Value.int 7));
        ]
  in
  Alcotest.(check bool) "violations reported" true (Program.well_formed bad <> [])

let test_parallel_composition () =
  let a =
    Program.make ~name:"a"
      ~vars:[ ("x", Domain.boolean) ]
      ~actions:[ Action.skip "sa" ]
  in
  let b =
    Program.make ~name:"b"
      ~vars:[ ("x", Domain.boolean); ("y", Domain.boolean) ]
      ~actions:[ Action.skip "sb" ]
  in
  let ab = Program.parallel a b in
  Alcotest.(check int) "union of actions" 2 (List.length (Program.actions ab));
  Alcotest.(check (list string)) "merged vars" [ "x"; "y" ] (Program.variables ab)

let test_parallel_domain_clash () =
  let a = Program.make ~name:"a" ~vars:[ ("x", Domain.boolean) ] ~actions:[] in
  let b = Program.make ~name:"b" ~vars:[ ("x", Domain.range 0 1) ] ~actions:[] in
  Alcotest.(check bool) "clash raises" true
    (try
       ignore (Program.parallel a b);
       false
     with
     | Detcor_robust.Error.Detcor_error (Detcor_robust.Error.Internal _) ->
       true)

let test_restrict_composition () =
  let p = counter 3 in
  let never = Pred.false_ in
  let restricted = Program.restrict never p in
  let st0 = State.of_list [ ("x", Value.int 0) ] in
  Alcotest.(check bool) "restricted program deadlocked" true
    (Program.deadlocked restricted st0)

let test_sequential_composition () =
  let p = counter 2 in
  let q =
    Program.make ~name:"reset"
      ~vars:[ ("x", Domain.range 0 2) ]
      ~actions:
        [
          Action.deterministic "reset" Pred.true_ (fun st ->
              State.set st "x" (Value.int 0));
        ]
  in
  let at2 = Pred.make "x=2" (fun st -> Value.equal (State.get st "x") (Value.int 2)) in
  let seq = Program.sequential p at2 q in
  let st1 = State.of_list [ ("x", Value.int 1) ] in
  let st2 = State.of_list [ ("x", Value.int 2) ] in
  let reset = Option.get (Program.find_action seq "reset") in
  Alcotest.(check bool) "reset blocked before Z" false (Action.enabled reset st1);
  Alcotest.(check bool) "reset enabled under Z" true (Action.enabled reset st2)

let test_duplicate_names () =
  Alcotest.(check bool) "duplicate action name rejected" true
    (try
       ignore
         (Program.make ~name:"d" ~vars:[]
            ~actions:[ Action.skip "s"; Action.skip "s" ]);
       false
     with
     | Detcor_robust.Error.Detcor_error (Detcor_robust.Error.Internal _) ->
       true);
  Alcotest.(check bool) "duplicate var rejected" true
    (try
       ignore
         (Program.make ~name:"d"
            ~vars:[ ("x", Domain.boolean); ("x", Domain.boolean) ]
            ~actions:[]);
       false
     with
     | Detcor_robust.Error.Detcor_error (Detcor_robust.Error.Internal _) ->
       true)

let test_encapsulation_positive () =
  let open Detcor_systems in
  let universe = Program.states Memory.failsafe in
  Alcotest.(check bool) "pf encapsulates p" true
    (Program.encapsulates ~base:Memory.intolerant Memory.failsafe ~universe)

let test_encapsulation_negative () =
  (* An action tagged based_on p_read but with a different effect. *)
  let rogue =
    Program.make ~name:"rogue"
      ~vars:
        (Program.var_decls Detcor_systems.Memory.intolerant
        @ [ ("z1", Domain.boolean) ])
      ~actions:
        [
          Action.deterministic ~based_on:"p_read" "lying" Pred.true_ (fun st ->
              State.set st "data" Detcor_systems.Memory.bad);
        ]
  in
  let universe = Program.states rogue in
  Alcotest.(check bool) "wrong effect detected" false
    (Program.encapsulates ~base:Detcor_systems.Memory.intolerant rogue ~universe);
  (* An untagged action that silently writes base variables. *)
  let sneaky =
    Program.make ~name:"sneaky"
      ~vars:(Program.var_decls Detcor_systems.Memory.intolerant)
      ~actions:
        [
          Action.deterministic "untagged" Pred.true_ (fun st ->
              State.set st "data" Detcor_systems.Memory.good);
        ]
  in
  Alcotest.(check bool) "untagged base write detected" false
    (Program.encapsulates ~base:Detcor_systems.Memory.intolerant sneaky
       ~universe:(Program.states sneaky))

let test_encapsulation_guard_violation () =
  (* Based-on action enabled while the base guard is false. *)
  let base =
    Program.make ~name:"base"
      ~vars:[ ("x", Domain.boolean) ]
      ~actions:
        [
          Action.deterministic "flip"
            (Pred.make "x" (fun st -> Value.equal (State.get st "x") (Value.bool true)))
            (fun st -> State.set st "x" (Value.bool false));
        ]
  in
  let over =
    Program.make ~name:"over"
      ~vars:[ ("x", Domain.boolean) ]
      ~actions:
        [
          Action.deterministic ~based_on:"flip" "flip'" Pred.true_ (fun st ->
              State.set st "x" (Value.bool false));
        ]
  in
  Alcotest.(check bool) "guard widening detected" false
    (Program.encapsulates ~base over ~universe:(Program.states over))

let prop_state_set_get =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"state set/get roundtrip"
       (QCheck.pair (Util.state_arb [ "x"; "y" ]) Util.value_arb)
       (fun (st, v) ->
         Value.equal (State.get (State.set st "x" v) "x") v
         && Value.equal (State.get (State.set st "x" v) "y") (State.get st "y")))

let prop_state_equal_hash =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"equal states hash equally"
       (Util.state_arb [ "x"; "y"; "z" ])
       (fun st ->
         let st' = State.of_list (State.bindings st) in
         State.equal st st' && State.hash st = State.hash st'))

let prop_pred_laws =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"pred boolean laws"
       (Util.state_arb [ "x"; "y" ])
       (fun st ->
         let p = Pred.make "p" (fun st -> Value.hash (State.get st "x") mod 2 = 0) in
         let q = Pred.make "q" (fun st -> Value.hash (State.get st "y") mod 3 = 0) in
         let eqp a b = Pred.holds a st = Pred.holds b st in
         eqp (Pred.not_ (Pred.and_ p q)) (Pred.or_ (Pred.not_ p) (Pred.not_ q))
         && eqp (Pred.not_ (Pred.not_ p)) p
         && eqp (Pred.implies p q) (Pred.or_ (Pred.not_ p) q)))

let prop_expr_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"expr evaluation is deterministic"
       (Util.state_arb [ "x" ])
       (fun st ->
         let e = Expr.(ite (eq (var "x") (var "x")) (int 1) (int 0)) in
         Value.equal (Expr.eval st e) (Expr.eval st e)
         && Expr.eval_int st e = 1))

let suite =
  ( "kernel",
    [
      Alcotest.test_case "value total order" `Quick test_value_order;
      Alcotest.test_case "value projections" `Quick test_value_projections;
      Alcotest.test_case "domains" `Quick test_domain;
      Alcotest.test_case "state basics" `Quick test_state_basics;
      Alcotest.test_case "state projection" `Quick test_state_projection;
      Alcotest.test_case "wide state projection" `Quick
        test_state_projection_wide;
      Alcotest.test_case "expr evaluation" `Quick test_expr_eval;
      Alcotest.test_case "expr errors" `Quick test_expr_errors;
      Alcotest.test_case "pred combinators" `Quick test_pred_combinators;
      Alcotest.test_case "pred of states" `Quick test_pred_of_states;
      Alcotest.test_case "action execute" `Quick test_action_execute;
      Alcotest.test_case "action restrict" `Quick test_action_restrict;
      Alcotest.test_case "action preserves" `Quick test_action_preserves;
      Alcotest.test_case "corrupt action" `Quick test_corrupt_action;
      Alcotest.test_case "program space" `Quick test_program_space;
      Alcotest.test_case "out-of-domain detection" `Quick test_program_out_of_domain;
      Alcotest.test_case "parallel composition" `Quick test_parallel_composition;
      Alcotest.test_case "parallel domain clash" `Quick test_parallel_domain_clash;
      Alcotest.test_case "restriction composition" `Quick test_restrict_composition;
      Alcotest.test_case "sequential composition" `Quick test_sequential_composition;
      Alcotest.test_case "duplicate names rejected" `Quick test_duplicate_names;
      Alcotest.test_case "encapsulation positive" `Quick test_encapsulation_positive;
      Alcotest.test_case "encapsulation negative" `Quick test_encapsulation_negative;
      Alcotest.test_case "encapsulation guard widening" `Quick
        test_encapsulation_guard_violation;
      prop_state_set_get;
      prop_state_equal_hash;
      prop_pred_laws;
      prop_expr_deterministic;
    ] )
