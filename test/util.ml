(* Shared helpers and generators for the test suite. *)

open Detcor_kernel

let check_holds msg outcome =
  Alcotest.(check bool)
    (Fmt.str "%s: %a" msg Detcor_semantics.Check.pp_outcome outcome)
    true
    (Detcor_semantics.Check.holds outcome)

let check_fails msg outcome =
  Alcotest.(check bool) msg false (Detcor_semantics.Check.holds outcome)

let state = Alcotest.testable State.pp State.equal

let value = Alcotest.testable Value.pp Value.equal

(* Structural equality of two built systems, including numbering: same
   states in the same order, same CSR edges, same initials. *)
let ts_equal a b =
  let module Ts = Detcor_semantics.Ts in
  Ts.num_states a = Ts.num_states b
  && Ts.num_edges a = Ts.num_edges b
  && Ts.initials a = Ts.initials b
  && List.for_all
       (fun i ->
         State.equal (Ts.state a i) (Ts.state b i)
         && Ts.edges_of a i = Ts.edges_of b i)
       (List.init (Ts.num_states a) Fun.id)

(* Alcotest form of {!ts_equal}: one check per component, so a mismatch
   reports which part of the structure diverged. *)
let check_same_system label a b =
  let module Ts = Detcor_semantics.Ts in
  Alcotest.(check int) (label ^ ": num_states") (Ts.num_states a) (Ts.num_states b);
  Alcotest.(check int) (label ^ ": num_edges") (Ts.num_edges a) (Ts.num_edges b);
  Alcotest.(check (list int)) (label ^ ": initials") (Ts.initials a) (Ts.initials b);
  for i = 0 to Ts.num_states a - 1 do
    Alcotest.(check bool)
      (Fmt.str "%s: state %d" label i)
      true
      (State.equal (Ts.state a i) (Ts.state b i));
    Alcotest.(check (list (pair int int)))
      (Fmt.str "%s: edges of %d" label i)
      (Ts.edges_of a i) (Ts.edges_of b i)
  done

(* QCheck generator for values. *)
let value_gen =
  QCheck.Gen.(
    oneof
      [
        map Value.int (int_range (-5) 5);
        map Value.bool bool;
        map Value.sym (oneofl [ "a"; "b"; "bot" ]);
      ])

let value_arb = QCheck.make ~print:Value.to_string value_gen

(* States over a fixed small set of variables. *)
let state_gen vars =
  QCheck.Gen.(
    let bind_var x = map (fun v -> (x, v)) value_gen in
    map State.of_list (flatten_l (List.map bind_var vars)))

let state_arb vars = QCheck.make ~print:State.to_string (state_gen vars)

(* Random directed graphs as programs over one variable [node : 0..n-1];
   each edge (i, j) becomes an action.  Used to cross-validate the graph
   algorithms against brute force. *)
let graph_program n edges =
  let actions =
    List.mapi
      (fun idx (i, j) ->
        Action.deterministic
          (Fmt.str "e%d_%d_%d" idx i j)
          (Pred.make (Fmt.str "at%d" i) (fun st ->
               Value.equal (State.get st "node") (Value.int i)))
          (fun st -> State.set st "node" (Value.int j)))
      edges
  in
  Program.make ~name:"graph"
    ~vars:[ ("node", Domain.range 0 (n - 1)) ]
    ~actions

let node_state i = State.of_list [ ("node", Value.int i) ]

let edges_gen n =
  QCheck.Gen.(
    let edge = pair (int_range 0 (n - 1)) (int_range 0 (n - 1)) in
    list_size (int_range 0 (2 * n)) edge)

let graph_arb n =
  QCheck.make
    ~print:(fun edges ->
      Fmt.str "%a"
        Fmt.(list ~sep:(any "; ") (pair ~sep:(any "->") int int))
        edges)
    (edges_gen n)

(* One process-wide qcheck seed: QCHECK_SEED when set (how CI pins runs),
   otherwise self-chosen.  {!qtest} prints it with the shrunk
   counterexample on failure, so any red run is replayable with
   [QCHECK_SEED=<seed> dune runtest]. *)
let qcheck_seed =
  lazy
    (match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
    | Some s -> s
    | None -> Random.State.bits (Random.State.make_self_init ()))

let qtest ?(count = 200) name arb law =
  let run () =
    let seed = Lazy.force qcheck_seed in
    let rand = Random.State.make [| seed |] in
    match QCheck.Test.make ~count ~name arb law with
    | QCheck2.Test.Test cell -> (
      try QCheck.Test.check_cell_exn ~rand cell with
      | QCheck.Test.Test_fail (n, cexs) as e ->
        Printf.eprintf
          "[qcheck] %S failed with QCHECK_SEED=%d; shrunk counterexample:\n\
           %s\n\
           %!"
          n seed
          (String.concat "\n" (List.map (fun c -> "  " ^ c) cexs));
        raise e
      | QCheck.Test.Test_error (n, cex, exn, _) as e ->
        Printf.eprintf
          "[qcheck] %S raised %s with QCHECK_SEED=%d; shrunk counterexample:\n\
          \  %s\n\
           %!"
          n (Printexc.to_string exn) seed cex;
        raise e)
  in
  Alcotest.test_case name `Quick run
