(* Unit tests for the packed state-space engine: layout round-trips, the
   bitset container, the predicate/guard caches, engine selection and
   fallback, and determinism of the parallel build. *)

open Detcor_kernel
open Detcor_semantics

let vars =
  [
    ("a", Domain.boolean);
    ("b", Domain.boolean);
    ("n", Domain.range 0 2);
    ("s", Domain.symbols [ "x"; "y"; "bot" ]);
  ]

let toggle =
  Action.deterministic "toggle"
    (Pred.make "true" (fun _ -> true))
    (fun st -> State.set st "a" (Value.bool (not (Value.as_bool (State.get st "a")))))

let step =
  Action.deterministic "step"
    (Pred.make "n<2" (fun st -> Value.as_int (State.get st "n") < 2))
    (fun st -> State.set st "n" (Value.int (Value.as_int (State.get st "n") + 1)))

let program = Program.make ~name:"engine-test" ~vars ~actions:[ toggle; step ]

let layout () =
  match Layout.of_program program with
  | Some l -> l
  | None -> Alcotest.fail "layout of a small program must exist"

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let test_layout_roundtrip () =
  let l = layout () in
  Alcotest.(check int) "space" (Program.space_size program) (Layout.space l);
  Alcotest.(check int) "vars" 4 (Layout.num_vars l);
  for rank = 0 to Layout.space l - 1 do
    let st = Layout.unpack l rank in
    Alcotest.(check int) "pack(unpack rank) = rank" rank (Layout.pack l st)
  done

let test_layout_rank_order () =
  (* Rank order must be State.compare order: the packed engine relies on it
     to reproduce the reference engine's initial-state numbering. *)
  let l = layout () in
  for rank = 0 to Layout.space l - 2 do
    let st = Layout.unpack l rank and st' = Layout.unpack l (rank + 1) in
    Alcotest.(check bool) "unpack monotone wrt State.compare" true
      (State.compare st st' < 0)
  done

let test_layout_enumeration () =
  let l = layout () in
  let seen = ref [] in
  Layout.iter_states l (fun st -> seen := st :: !seen);
  let seen = List.rev !seen in
  Alcotest.(check int) "enumerates the whole space" (Layout.space l)
    (List.length seen);
  List.iteri
    (fun rank st ->
      Alcotest.(check bool) "iter_states is in rank order" true
        (State.equal st (Layout.unpack l rank)))
    seen

let test_layout_unrepresentable () =
  let l = layout () in
  let good = Layout.unpack l 0 in
  Alcotest.(check bool) "good state packs" true (Layout.pack_opt l good <> None);
  let extra = State.set good "zz" (Value.int 0) in
  Alcotest.(check bool) "extra variable rejected" true
    (Layout.pack_opt l extra = None);
  let missing = State.project good [ "a"; "b"; "n" ] in
  Alcotest.(check bool) "missing variable rejected" true
    (Layout.pack_opt l missing = None);
  let out_of_domain = State.set good "n" (Value.int 99) in
  Alcotest.(check bool) "out-of-domain value rejected" true
    (Layout.pack_opt l out_of_domain = None)

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitset () =
  let b = Bitset.create 77 in
  Alcotest.(check int) "fresh cardinal" 0 (Bitset.cardinal b);
  List.iter (fun i -> Bitset.set b i) [ 0; 1; 8; 63; 64; 76 ];
  Alcotest.(check int) "cardinal after sets" 6 (Bitset.cardinal b);
  Alcotest.(check bool) "get set bit" true (Bitset.get b 64);
  Alcotest.(check bool) "get unset bit" false (Bitset.get b 2);
  Bitset.clear b 64;
  Alcotest.(check bool) "cleared" false (Bitset.get b 64);
  let evens = Bitset.of_fn 10 (fun i -> i mod 2 = 0) in
  Alcotest.(check int) "of_fn cardinal" 5 (Bitset.cardinal evens);
  let collected = ref [] in
  Bitset.iter_set evens (fun i -> collected := i :: !collected);
  Alcotest.(check (list int)) "iter_set" [ 0; 2; 4; 6; 8 ] (List.rev !collected);
  Alcotest.(check bool) "equal reflexive" true (Bitset.equal evens evens);
  Alcotest.(check bool) "not equal" false (Bitset.equal evens b);
  Alcotest.(check bool) "out of bounds" true
    (try
       ignore (Bitset.get evens 10);
       false
     with
     | Detcor_robust.Error.Detcor_error
         (Detcor_robust.Error.Internal { msg }) ->
       msg = "Bitset: index 10 out of bounds [0,10)")

(* ------------------------------------------------------------------ *)
(* Predicate / guard caches                                            *)
(* ------------------------------------------------------------------ *)

let test_pred_cache_coherence () =
  let ts = Ts.full program in
  Alcotest.(check bool) "packed engine used" true (Ts.engine_of ts = Ts.Packed);
  let pred =
    Pred.make "a && n>0" (fun st ->
        Value.as_bool (State.get st "a") && Value.as_int (State.get st "n") > 0)
  in
  let bits = Ts.pred_bitset ts pred in
  for i = 0 to Ts.num_states ts - 1 do
    let direct = Pred.holds pred (Ts.state ts i) in
    Alcotest.(check bool) "bitset matches direct eval" direct (Bitset.get bits i);
    Alcotest.(check bool) "holds_at matches direct eval" direct
      (Ts.holds_at ts pred i)
  done;
  Alcotest.(check int) "satisfying agrees with bitset" (Bitset.cardinal bits)
    (List.length (Ts.satisfying ts pred));
  (* The cache is per predicate instance: the same instance returns the
     same bitset, a fresh extensionally-equal instance gets its own. *)
  Alcotest.(check bool) "cache hit returns same bitset" true
    (Ts.pred_bitset ts pred == bits)

let test_enabled_cache_coherence () =
  let ts = Ts.full program in
  for aid = 0 to Ts.num_actions ts - 1 do
    let bits = Ts.enabled_bitset ts aid in
    for i = 0 to Ts.num_states ts - 1 do
      let direct = Action.enabled (Ts.action ts aid) (Ts.state ts i) in
      Alcotest.(check bool) "enabled bitset matches guard" direct
        (Bitset.get bits i);
      Alcotest.(check bool) "enabled matches guard" direct (Ts.enabled ts i aid)
    done
  done;
  for i = 0 to Ts.num_states ts - 1 do
    let direct =
      not
        (List.exists
           (fun ac -> Action.enabled ac (Ts.state ts i))
           (Program.actions program))
    in
    Alcotest.(check bool) "deadlocked matches guards" direct (Ts.deadlocked ts i)
  done

(* ------------------------------------------------------------------ *)
(* Engine selection and fallback                                       *)
(* ------------------------------------------------------------------ *)

let escaping =
  (* An action that steps outside the declared domain of [n]: no layout can
     represent its successors, so Auto must fall back to the reference
     engine and still build the same system. *)
  Program.make ~name:"escaping"
    ~vars:[ ("n", Domain.range 0 2) ]
    ~actions:
      [
        Action.deterministic "inc"
          (Pred.make "n<9" (fun st -> Value.as_int (State.get st "n") < 9))
          (fun st -> State.set st "n" (Value.int (Value.as_int (State.get st "n") + 1)));
      ]

let test_fallback_on_escape () =
  let from = [ State.of_list [ ("n", Value.int 0) ] ] in
  let auto = Ts.build ~limit:100 escaping ~from in
  Alcotest.(check bool) "auto falls back to reference" true
    (Ts.engine_of auto = Ts.Reference);
  let reference = Ts.build ~limit:100 ~engine:Ts.Reference escaping ~from in
  Alcotest.(check int) "same states as reference" (Ts.num_states reference)
    (Ts.num_states auto);
  Alcotest.check_raises "packed engine refuses" Layout.Unrepresentable
    (fun () -> ignore (Ts.build ~limit:100 ~engine:Ts.Packed escaping ~from))

let test_index_of_foreign_state () =
  let ts = Ts.full program in
  let foreign = State.of_list [ ("only", Value.int 1) ] in
  Alcotest.(check bool) "unrepresentable state not indexed" true
    (Ts.index_of ts foreign = None);
  List.iter
    (fun i ->
      Alcotest.(check (option int)) "index_of inverts state" (Some i)
        (Ts.index_of ts (Ts.state ts i)))
    (List.init (Ts.num_states ts) Fun.id)

(* ------------------------------------------------------------------ *)
(* Parallel build determinism                                          *)
(* ------------------------------------------------------------------ *)

let same_system = Util.check_same_system

let test_parallel_determinism () =
  let cfg = Detcor_systems.Token_ring.make_config 5 in
  let p = Detcor_systems.Token_ring.program cfg in
  let sequential = Ts.full ~workers:1 p in
  let parallel = Ts.full ~workers:4 p in
  same_system "workers 4 = workers 1" sequential parallel;
  Alcotest.(check bool) "parallel build is packed" true
    (Ts.engine_of parallel = Ts.Packed)

let test_parallel_matches_reference () =
  let cfg = Detcor_systems.Token_ring.make_config 4 in
  let p = Detcor_systems.Token_ring.program cfg in
  let reference = Ts.full ~engine:Ts.Reference p in
  let parallel = Ts.full ~workers:3 p in
  same_system "parallel = reference" reference parallel

let suite =
  ( "engine",
    [
      Alcotest.test_case "layout roundtrip" `Quick test_layout_roundtrip;
      Alcotest.test_case "layout rank order" `Quick test_layout_rank_order;
      Alcotest.test_case "layout enumeration" `Quick test_layout_enumeration;
      Alcotest.test_case "layout unrepresentable" `Quick test_layout_unrepresentable;
      Alcotest.test_case "bitset" `Quick test_bitset;
      Alcotest.test_case "pred cache coherence" `Quick test_pred_cache_coherence;
      Alcotest.test_case "enabled cache coherence" `Quick test_enabled_cache_coherence;
      Alcotest.test_case "fallback on domain escape" `Quick test_fallback_on_escape;
      Alcotest.test_case "index_of" `Quick test_index_of_foreign_state;
      Alcotest.test_case "parallel determinism" `Quick test_parallel_determinism;
      Alcotest.test_case "parallel matches reference" `Quick
        test_parallel_matches_reference;
    ] )
