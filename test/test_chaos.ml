(* Chaos harness: crash dcheck for real and demand bit-identical recovery.

   Each workload first runs uninterrupted, without any checkpoint flags,
   to record the expected stdout+stderr bytes and exit code.  The chaos
   loop then runs the same command with [--checkpoint] at a short
   interval, SIGKILLs it after a random delay, and retries with
   [--resume] until an attempt reaches a terminal exit — which must
   reproduce the recorded bytes and code exactly.  This is the paper's
   detector/corrector contract applied to the toolkit itself: the crash
   is the fault, the snapshot the corrector, and "converged" means the
   resumed verdict is indistinguishable from an undisturbed run.

   Two fault-injection workloads ride along: worker domains killed via
   the [engine.worker] failpoint must degrade to sequential
   recomputation with identical output, and a permanently failing
   snapshot-write path must cost nothing but the insurance.

   Kill delays draw from the process-wide qcheck seed (pin QCHECK_SEED
   to replay a run); CHAOS_ROUNDS (default 2) scales the number of
   kill-and-resume cycles per workload. *)

let dcheck = "../bin/dcheck.exe"

let rounds =
  match Option.bind (Sys.getenv_opt "CHAOS_ROUNDS") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 2

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Run dcheck with stdout and stderr into [out]; optionally SIGKILL it
   after [kill_after] seconds.  Killing a process that already exited is
   fine: the pid is unreaped (still our zombie child), so the signal is
   accepted and ignored, and waitpid reports the real exit status. *)
let run_dcheck ?(env = [||]) ?kill_after args ~out =
  let fd = Unix.openfile out [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let pid =
    Unix.create_process_env dcheck
      (Array.of_list (dcheck :: args))
      (Array.append (Unix.environment ()) env)
      Unix.stdin fd fd
  in
  Unix.close fd;
  (match kill_after with
  | Some s -> (
    Unix.sleepf s;
    try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
  | None -> ());
  let _, status = Unix.waitpid [] pid in
  status

let exit_code name = function
  | Unix.WEXITED c -> c
  | Unix.WSIGNALED sg ->
    Alcotest.fail (Fmt.str "%s: killed by signal %d" name sg)
  | Unix.WSTOPPED sg ->
    Alcotest.fail (Fmt.str "%s: stopped by signal %d" name sg)

let with_temp suffix k =
  let path = Filename.temp_file "detcor_chaos" suffix in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp" ])
    (fun () -> k path)

(* The recorded behaviour of [args] run plainly, no checkpointing. *)
let baseline name args =
  with_temp ".out" @@ fun out ->
  let code = exit_code name (run_dcheck args ~out) in
  (code, read_file out)

(* One kill-and-resume cycle: kill after [delay0 * 1.7^attempt] seconds
   (growing, so progress is guaranteed even when early kills land before
   the first snapshot), resume, repeat until a terminal exit. *)
let kill_until_terminal name args ~delay0 =
  with_temp ".snap" @@ fun snap ->
  Sys.remove snap;
  let checkpointed resume =
    args
    @ [ "--checkpoint"; snap; "--checkpoint-interval"; "0.05" ]
    @ (if resume then [ "--resume"; snap ] else [])
  in
  let rec go attempt delay =
    if attempt > 20 then
      Alcotest.fail (Fmt.str "%s: no terminal exit after 20 kills" name);
    with_temp ".out" @@ fun out ->
    let resume = Sys.file_exists snap in
    let status =
      run_dcheck ~kill_after:delay (checkpointed resume) ~out
    in
    match status with
    | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
      go (attempt + 1) (delay *. 1.7)
    | Unix.WEXITED c -> (attempt, c, read_file out)
  in
  go 0 delay0

let rng =
  lazy (Random.State.make [| Lazy.force Util.qcheck_seed; 0xc4a05 |])

(* Kill-and-resume must converge to the plain run's exact behaviour. *)
let chaos_workload name args ~max_delay () =
  let expected_code, expected_out = baseline name args in
  let rng = Lazy.force rng in
  for round = 1 to rounds do
    let delay0 = 0.02 +. Random.State.float rng max_delay in
    let kills, code, out = kill_until_terminal name args ~delay0 in
    let label = Fmt.str "%s round %d (%d kills)" name round kills in
    Alcotest.(check int) (label ^ ": exit code") expected_code code;
    Alcotest.(check string) (label ^ ": output bytes") expected_out out
  done

let ring5 = "../examples/dc/ring5.dc"

(* Worker domains dying mid-chunk must not change a single output byte;
   the run detects the loss, recomputes sequentially, and carries on. *)
let test_worker_faults () =
  let args = [ "verify"; ring5; "--tolerance"; "nonmasking" ] in
  let expected_code, expected_out = baseline "verify" args in
  List.iter
    (fun prob ->
      with_temp ".out" @@ fun out ->
      let code =
        exit_code "degraded verify"
          (run_dcheck
             ~env:
               [| Fmt.str "DETCOR_FAILPOINTS=engine.worker=%s;seed=11" prob |]
             (args @ [ "--workers"; "4" ])
             ~out)
      in
      let label = Fmt.str "worker failures at p=%s" prob in
      Alcotest.(check int) (label ^ ": exit code") expected_code code;
      Alcotest.(check string) (label ^ ": output bytes") expected_out
        (read_file out))
    [ "0.3"; "1.0" ]

(* A snapshot path that always fails to write costs only the insurance:
   the verdict, bytes and exit code are untouched, and no file appears. *)
let test_snapshot_write_faults () =
  let args = [ "verify"; ring5; "--tolerance"; "nonmasking" ] in
  let expected_code, expected_out = baseline "verify" args in
  with_temp ".snap" @@ fun snap ->
  Sys.remove snap;
  with_temp ".out" @@ fun out ->
  let code =
    exit_code "write-fault verify"
      (run_dcheck
         ~env:[| "DETCOR_FAILPOINTS=checkpoint.write=1.0" |]
         (args @ [ "--checkpoint"; snap; "--checkpoint-interval"; "0.05" ])
         ~out)
  in
  Alcotest.(check int) "write faults: exit code" expected_code code;
  Alcotest.(check string) "write faults: output bytes" expected_out
    (read_file out);
  Alcotest.(check bool) "write faults: no snapshot materializes" false
    (Sys.file_exists snap)

(* SIGTERM parity with SIGINT: the orderly-stop signal must run the
   finalizer stack (exit 143, checkpoint flushed) on every subcommand,
   and a snapshot it flushed must resume to the undisturbed bytes. *)
let run_dcheck_term ?kill_grace args ~out =
  let fd = Unix.openfile out [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let pid =
    Unix.create_process dcheck
      (Array.of_list (dcheck :: args))
      Unix.stdin fd fd
  in
  Unix.close fd;
  (match kill_grace with
  | Some s -> (
    Unix.sleepf s;
    try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
  | None -> ());
  let _, status = Unix.waitpid [] pid in
  status

let test_sigterm_parity () =
  (* Without a checkpoint: the handler exits directly, code 143. *)
  with_temp ".out" @@ fun out ->
  (match
     run_dcheck_term ~kill_grace:0.05
       [ "verify"; ring5; "--tolerance"; "nonmasking" ]
       ~out
   with
  | Unix.WEXITED c ->
    Alcotest.(check int) "plain SIGTERM exits 143" 143 c
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
    Alcotest.fail "SIGTERM default disposition not overridden");
  (* With a checkpoint armed: the exit is deferred to a cooperative
     tick, the final snapshot is flushed, and a resume reproduces the
     undisturbed run byte for byte. *)
  let args = [ "synthesize"; ring5; "--tolerance"; "nonmasking" ] in
  let expected_code, expected_out = baseline "synthesize" args in
  with_temp ".snap" @@ fun snap ->
  Sys.remove snap;
  with_temp ".out" @@ fun out ->
  (match
     run_dcheck_term ~kill_grace:0.25
       (args @ [ "--checkpoint"; snap; "--checkpoint-interval"; "0.05" ])
       ~out
   with
  | Unix.WEXITED 143 ->
    Alcotest.(check bool) "SIGTERM flushed a snapshot" true
      (Sys.file_exists snap);
    with_temp ".out" @@ fun rout ->
    let code =
      exit_code "resumed synthesize"
        (run_dcheck (args @ [ "--resume"; snap ]) ~out:rout)
    in
    Alcotest.(check int) "resume after SIGTERM: exit code" expected_code code;
    Alcotest.(check string) "resume after SIGTERM: output bytes" expected_out
      (read_file rout)
  | Unix.WEXITED c when c = expected_code ->
    (* The run beat the signal; nothing to resume. *)
    ()
  | Unix.WEXITED c -> Alcotest.fail (Fmt.str "SIGTERM run exited %d" c)
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
    Alcotest.fail "SIGTERM default disposition not overridden")

let suite =
  ( "chaos (kill-and-resume, injected faults)",
    [
      Alcotest.test_case "verify survives SIGKILL" `Slow
        (chaos_workload "verify" [ "verify"; ring5 ] ~max_delay:0.6);
      Alcotest.test_case "synthesize survives SIGKILL" `Slow
        (chaos_workload "synthesize"
           [ "synthesize"; ring5; "--tolerance"; "nonmasking" ]
           ~max_delay:0.4);
      Alcotest.test_case "simulate survives SIGKILL" `Slow
        (chaos_workload "simulate"
           [ "simulate"; ring5; "--runs"; "500"; "--seed"; "7" ]
           ~max_delay:0.15);
      Alcotest.test_case "worker faults leave output untouched" `Slow
        test_worker_faults;
      Alcotest.test_case "snapshot write faults cost only insurance" `Slow
        test_snapshot_write_faults;
      Alcotest.test_case "SIGTERM parity: finalizers run, exit 143" `Slow
        test_sigterm_parity;
    ] )
