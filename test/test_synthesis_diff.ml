(* Differential tests: packed synthesis against the reference path.

   Random fault-intolerant programs (four variables, seeded decision-table
   guards, deterministic / nondeterministic / corrupting actions), random
   sparse safety specifications (bad states, sometimes bad transitions),
   random invariants and random variable-corruption faults drive the three
   transformations of {!Synthesize} on both engines.  The two paths must
   agree exactly: same outcome constructor, extensionally identical
   synthesized programs (compared as fully built reference systems),
   identical recomputed (possibly weakened, under the same name)
   invariants, recovery-state counts, repair-iteration counts and
   verification reports, and — on failures — the same minimal
   unrecoverable state or report.  Together the properties run 300 random
   programs per test execution. *)

open Detcor_kernel
open Detcor_semantics
open Detcor_spec
open Detcor_core
open Detcor_synthesis

let bool_dom = Domain.boolean
let n_dom = Domain.range 0 2
let m_dom = Domain.range 0 3
let vars = [ ("a", bool_dom); ("b", bool_dom); ("n", n_dom); ("m", m_dom) ]

(* Decision-table predicates over the packed value tuple; [width] bits of
   the seed per table cell set the density (1 → ~1/2, 3 → ~1/8). *)
let table_pred ?(width = 1) seed name =
  Pred.make name (fun st ->
      let a = Value.as_bool (State.get st "a") in
      let b = Value.as_bool (State.get st "b") in
      let n = Value.as_int (State.get st "n") in
      let m = Value.as_int (State.get st "m") in
      let ix =
        (if a then 1 else 0) + (2 * if b then 1 else 0) + (4 * n) + (12 * m)
      in
      (seed lsr (ix * width mod 59)) land ((1 lsl width) - 1) = 0)

let pred_of_seed seed = table_pred ~width:1 seed (Fmt.str "P%d" seed)
let sparse_pred_of_seed seed = table_pred ~width:3 seed (Fmt.str "B%d" seed)

type rand_assign = Set_a of bool | Set_b of bool | Set_n of int | Set_m of int

let apply_assign st = function
  | Set_a v -> State.set st "a" (Value.bool v)
  | Set_b v -> State.set st "b" (Value.bool v)
  | Set_n v -> State.set st "n" (Value.int v)
  | Set_m v -> State.set st "m" (Value.int v)

let assign_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun v -> Set_a v) bool;
        map (fun v -> Set_b v) bool;
        map (fun v -> Set_n v) (int_range 0 2);
        map (fun v -> Set_m v) (int_range 0 3);
      ])

type rand_action =
  | Assign of int * rand_assign list
  | Choose of int * rand_assign * rand_assign
  | Corrupt of int * int

let action_gen =
  QCheck.Gen.(
    let seed = int_range 0 (1 lsl 20) in
    oneof
      [
        map2
          (fun s assigns -> Assign (s, assigns))
          seed
          (list_size (int_range 1 2) assign_gen);
        map3 (fun s x y -> Choose (s, x, y)) seed assign_gen assign_gen;
        map2 (fun s v -> Corrupt (s, v)) seed (int_range 0 3);
      ])

let build_action i = function
  | Assign (seed, assigns) ->
    Action.deterministic (Fmt.str "a%d" i) (pred_of_seed seed) (fun st ->
        List.fold_left apply_assign st assigns)
  | Choose (seed, x, y) ->
    Action.choose (Fmt.str "a%d" i) (pred_of_seed seed)
      [ (fun st -> apply_assign st x); (fun st -> apply_assign st y) ]
  | Corrupt (seed, v) ->
    let x, d = List.nth vars v in
    Action.corrupt (Fmt.str "a%d" i) (pred_of_seed seed) x d

(* A random synthesis instance: program, safety spec, invariant, faults. *)
type instance = {
  acts : rand_action list;
  bad_seed : int;
  bad_trans : int option; (* bad transitions: target table, if any *)
  inv_seed : int;
  fault_vars : int list; (* which variables the faults corrupt *)
  fault_guard : int option;
  step_vars : int;
}

let instance_gen =
  QCheck.Gen.(
    let seed = int_range 0 (1 lsl 20) in
    map3
      (fun acts (bad_seed, bad_trans, inv_seed) (fault_vars, fault_guard, sv) ->
        {
          acts;
          bad_seed;
          bad_trans;
          inv_seed;
          fault_vars = List.sort_uniq Int.compare fault_vars;
          fault_guard;
          step_vars = 1 + sv;
        })
      (list_size (int_range 1 3) action_gen)
      (triple seed (opt seed) seed)
      (triple
         (list_size (int_range 1 2) (int_range 0 3))
         (opt seed) (int_range 0 1)))

let print_instance inst =
  Fmt.str "{acts=%d bad=%d trans=%b inv=%d faults=%a step=%d}"
    (List.length inst.acts) inst.bad_seed
    (inst.bad_trans <> None)
    inst.inv_seed
    Fmt.(Dump.list int)
    inst.fault_vars inst.step_vars

let instance_arb = QCheck.make ~print:print_instance instance_gen

let build_program inst =
  Program.make ~name:"diff" ~vars ~actions:(List.mapi build_action inst.acts)

let build_spec inst =
  let bad = sparse_pred_of_seed inst.bad_seed in
  let safety =
    match inst.bad_trans with
    | None -> Safety.make ~name:"rand" ~bad_state:(Pred.holds bad) ()
    | Some seed ->
      (* a sparse set of forbidden targets, only when the state changes *)
      let trap = sparse_pred_of_seed seed in
      Safety.make ~name:"rand" ~bad_state:(Pred.holds bad)
        ~bad_transition:(fun s s' ->
          (not (State.equal s s')) && Pred.holds trap s')
        ()
  in
  Spec.make ~name:"rand" ~safety ()

let build_faults inst =
  let guard = Option.map pred_of_seed inst.fault_guard in
  List.fold_left
    (fun acc v ->
      let x, d = List.nth vars v in
      Fault.union acc (Fault.corrupt_variable ?guard x d))
    Fault.none inst.fault_vars

let report_str r = Fmt.str "%a" Tolerance.pp_report r

(* Extensional equality of two synthesis outcomes.  Programs are compared
   as fully built reference systems (states, edges, action names), the
   invariants on the program's product space, and the reports as rendered
   text (subject, span and invariant sizes, per-obligation outcomes). *)
let same_outcome p r_ref r_pk =
  match (r_ref, r_pk) with
  | Ok (a : Synthesize.result), Ok (b : Synthesize.result) ->
    let ts_a = Ts.full ~engine:Ts.Reference a.program in
    let ts_b = Ts.full ~engine:Ts.Reference b.program in
    Util.ts_equal ts_a ts_b
    && Program.name a.program = Program.name b.program
    && Pred.equal_on ~universe:(Program.states p) a.invariant b.invariant
    && Pred.name a.invariant = Pred.name b.invariant
    && report_str a.report = report_str b.report
    && List.map fst a.added_detectors = List.map fst b.added_detectors
    && a.recovery_states = b.recovery_states
    && a.repair_iterations = b.repair_iterations
  | Error Synthesize.Empty_invariant, Error Synthesize.Empty_invariant -> true
  | ( Error (Synthesize.Unrecoverable_state s1),
      Error (Synthesize.Unrecoverable_state s2) ) ->
    State.equal s1 s2
  | ( Error (Synthesize.Verification_failed r1),
      Error (Synthesize.Verification_failed r2) ) ->
    report_str r1 = report_str r2
  | _ -> false

let outcome_tag = function
  | Ok _ -> "ok"
  | Error f -> Fmt.str "%a" Synthesize.pp_failure f

let agree p r_ref r_pk =
  if same_outcome p r_ref r_pk then true
  else
    QCheck.Test.fail_reportf "engines disagree: reference=%s packed=%s"
      (outcome_tag r_ref) (outcome_tag r_pk)

let prop_failsafe =
  Util.qtest ~count:100 "add_failsafe: packed = reference" instance_arb
    (fun inst ->
      let p = build_program inst in
      let spec = build_spec inst in
      let invariant = pred_of_seed inst.inv_seed in
      let faults = build_faults inst in
      let r_ref =
        Synthesize.add_failsafe ~engine:Ts.Reference p ~spec ~invariant
          ~faults
      in
      let r_pk =
        Synthesize.add_failsafe ~engine:Ts.Packed p ~spec ~invariant ~faults
      in
      agree p r_ref r_pk)

let prop_nonmasking =
  Util.qtest ~count:100 "add_nonmasking: packed = reference" instance_arb
    (fun inst ->
      let p = build_program inst in
      let spec = build_spec inst in
      let invariant = pred_of_seed inst.inv_seed in
      let faults = build_faults inst in
      let r_ref =
        Synthesize.add_nonmasking ~engine:Ts.Reference
          ~step_vars:inst.step_vars p ~spec ~invariant ~faults
      in
      let r_pk =
        Synthesize.add_nonmasking ~engine:Ts.Packed ~step_vars:inst.step_vars
          p ~spec ~invariant ~faults
      in
      agree p r_ref r_pk)

let prop_masking =
  Util.qtest ~count:100 "add_masking: packed = reference" instance_arb
    (fun inst ->
      let p = build_program inst in
      let spec = build_spec inst in
      let invariant = pred_of_seed inst.inv_seed in
      let faults = build_faults inst in
      let r_ref =
        Synthesize.add_masking ~engine:Ts.Reference ~step_vars:inst.step_vars
          p ~spec ~invariant ~faults
      in
      let r_pk =
        Synthesize.add_masking ~engine:Ts.Packed ~step_vars:inst.step_vars p
          ~spec ~invariant ~faults
      in
      agree p r_ref r_pk)

(* Parallel layering must not change the result: same synthesized system,
   same report, whatever the worker count. *)
let prop_workers =
  Util.qtest ~count:30 "add_masking: workers=4 = workers=1" instance_arb
    (fun inst ->
      let p = build_program inst in
      let spec = build_spec inst in
      let invariant = pred_of_seed inst.inv_seed in
      let faults = build_faults inst in
      let seq =
        Synthesize.add_masking ~engine:Ts.Packed ~workers:1
          ~step_vars:inst.step_vars p ~spec ~invariant ~faults
      in
      let par =
        Synthesize.add_masking ~engine:Ts.Packed ~workers:4
          ~step_vars:inst.step_vars p ~spec ~invariant ~faults
      in
      agree p seq par)

let suite =
  ( "synthesis differential",
    [ prop_failsafe; prop_nonmasking; prop_masking; prop_workers ] )
