(* Tests for the crash-safe snapshot layer (lib/robust/checkpoint.ml).

   Three groups.  Properties: [write_file]/[read_file] round-trip any
   entry array bit-exactly, and every damaged file — truncated, byte-
   flipped, padded, or plain garbage — is rejected with the resource-
   class [Error.Snapshot], never [Internal] (a damaged recovery artifact
   is an environmental fault, not a toolkit bug).  Session lifecycle:
   fingerprint and phase-kind mismatches are Snapshot errors too.
   End-to-end: a ring5 fault-span build interrupted twice by a state
   budget and resumed from its snapshot converges to a system
   structurally identical to the uninterrupted build, and a build whose
   worker domains are all killed by an armed failpoint degrades to
   sequential recomputation with the same result. *)

module Checkpoint = Detcor_robust.Checkpoint
module Error = Detcor_robust.Error
module Budget = Detcor_robust.Budget
module Failpoint = Detcor_robust.Failpoint
module Metrics = Detcor_obs.Metrics
module Ts = Detcor_semantics.Ts
module Tolerance = Detcor_core.Tolerance

let with_temp k =
  let path = Filename.temp_file "detcor_snap" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> k path)

(* ------------------------------------------------------------------ *)
(* Round-trip.                                                         *)
(* ------------------------------------------------------------------ *)

let entries_gen =
  QCheck.Gen.(
    list_size (int_range 0 8)
      (triple
         (oneofl [ "ts.bfs"; "ts.full"; "synth.ms"; "synth.recovery";
                   "sim.sample" ])
         bool
         (string_size ~gen:(map Char.chr (int_range 0 255))
            (int_range 0 4096)))
    |> map
         (List.mapi (fun i (kind, complete, data) ->
              { Checkpoint.step = i; kind; complete; data })))

let entries_arb =
  QCheck.make
    ~print:(fun es ->
      Fmt.str "[%a]"
        Fmt.(
          list ~sep:(any "; ") (fun ppf (e : Checkpoint.entry) ->
              Fmt.pf ppf "%d:%s%s(%d bytes)" e.step e.kind
                (if e.complete then "!" else "~")
                (String.length e.data)))
        es)
    entries_gen

let roundtrip entries =
  with_temp @@ fun path ->
  let arr = Array.of_list entries in
  let fingerprint =
    Checkpoint.digest [ "roundtrip"; string_of_int (Array.length arr) ]
  in
  let (_ : int) = Checkpoint.write_file ~path ~fingerprint arr in
  let fp, arr' = Checkpoint.read_file ~path in
  String.equal fp fingerprint && arr = arr'

(* ------------------------------------------------------------------ *)
(* Corruption.                                                         *)
(* ------------------------------------------------------------------ *)

type damage =
  | Truncate of float (* keep this fraction, strictly less than all *)
  | Flip of float * int (* xor the byte at this fraction with 1..255 *)
  | Pad of string (* append junk *)

let damage_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun f -> Truncate f) (float_bound_inclusive 0.999);
        map2 (fun f x -> Flip (f, x)) (float_bound_inclusive 1.0)
          (int_range 1 255);
        map (fun s -> Pad s)
          (string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 1 64));
      ])

let damage_print = function
  | Truncate f -> Fmt.str "truncate to %.3f" f
  | Flip (f, x) -> Fmt.str "flip byte at %.3f with 0x%02x" f x
  | Pad s -> Fmt.str "pad with %d bytes" (String.length s)

let apply_damage s = function
  | Truncate f ->
    let n = String.length s in
    String.sub s 0 (min (n - 1) (int_of_float (f *. float_of_int n)))
  | Flip (f, x) ->
    let n = String.length s in
    let i = min (n - 1) (int_of_float (f *. float_of_int n)) in
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code s.[i] lxor x));
    Bytes.to_string b
  | Pad junk -> s ^ junk

let corrupted_rejected (entries, damage) =
  with_temp @@ fun path ->
  let fingerprint = Checkpoint.digest [ "corruption" ] in
  let (_ : int) =
    Checkpoint.write_file ~path ~fingerprint (Array.of_list entries)
  in
  let original = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (apply_damage original damage));
  match Checkpoint.read_file ~path with
  | _ ->
    QCheck.Test.fail_reportf "damaged file (%s) accepted"
      (damage_print damage)
  | exception Error.Detcor_error (Error.Snapshot _) -> true
  | exception e ->
    QCheck.Test.fail_reportf
      "damaged file (%s) rejected with %s, not Error.Snapshot"
      (damage_print damage) (Printexc.to_string e)

let corrupt_arb =
  QCheck.make
    ~print:(fun (es, d) ->
      Fmt.str "%d entries, %s" (List.length es) (damage_print d))
    QCheck.Gen.(pair entries_gen damage_gen)

let expect_snapshot_error name k =
  match k () with
  | _ -> Alcotest.fail (name ^ ": accepted")
  | exception Error.Detcor_error (Error.Snapshot _ as t) ->
    Alcotest.(check int) (name ^ ": exit code 3") 3 (Error.exit_code t)
  | exception e ->
    Alcotest.fail
      (Fmt.str "%s: raised %s, not Error.Snapshot" name
         (Printexc.to_string e))

let test_unreadable_files () =
  expect_snapshot_error "missing file" (fun () ->
      Checkpoint.read_file ~path:"/nonexistent/detcor.snap");
  with_temp (fun path ->
      expect_snapshot_error "empty file" (fun () ->
          Checkpoint.read_file ~path));
  with_temp (fun path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.concat "" (List.init 16 (fun _ -> "not a snapshot "))));
      expect_snapshot_error "garbage file" (fun () ->
          Checkpoint.read_file ~path))

(* ------------------------------------------------------------------ *)
(* Session validation.                                                 *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_mismatch () =
  with_temp @@ fun path ->
  let (_ : int) =
    Checkpoint.write_file ~path
      ~fingerprint:(Checkpoint.digest [ "command A" ])
      [||]
  in
  expect_snapshot_error "foreign fingerprint" (fun () ->
      Checkpoint.start ~resume:path
        ~fingerprint:(Checkpoint.digest [ "command B" ])
        ());
  Alcotest.(check bool) "no session left behind" false (Checkpoint.active ())

let test_phase_kind_mismatch () =
  with_temp @@ fun path ->
  let fingerprint = Checkpoint.digest [ "kinds" ] in
  let (_ : int) =
    Checkpoint.write_file ~path ~fingerprint
      [| { step = 0; kind = "ts.full"; complete = false; data = "" } |]
  in
  Checkpoint.start ~resume:path ~fingerprint ();
  Fun.protect ~finally:Checkpoint.stop @@ fun () ->
  expect_snapshot_error "diverged phase kind" (fun () ->
      Checkpoint.enter ~kind:"ts.bfs")

let test_digest_separation () =
  (* Length prefixes keep part boundaries significant. *)
  Alcotest.(check bool) "boundaries matter" false
    (String.equal
       (Checkpoint.digest [ "ab"; "c" ])
       (Checkpoint.digest [ "a"; "bc" ]));
  Alcotest.(check string) "deterministic"
    (Checkpoint.digest [ "verify"; "ring5" ])
    (Checkpoint.digest [ "verify"; "ring5" ])

(* ------------------------------------------------------------------ *)
(* Interrupted build, resumed build.                                   *)
(* ------------------------------------------------------------------ *)

let ring5 = lazy (Detcor_lang.Elaborate.load_file "../examples/dc/ring5.dc")

let ring5_span () =
  let e = Lazy.force ring5 in
  (Tolerance.fault_span e.program ~faults:e.faults ~from:e.invariant).ts_pf

let test_interrupted_resume () =
  with_temp @@ fun snap ->
  let fingerprint = Checkpoint.digest [ "test"; "ring5 span" ] in
  let uninterrupted = ring5_span () in
  (* Two legs tripped by a growing state ceiling, then one to the end.
     Each trip unwinds through [Checkpoint.stop], whose final save
     persists the mid-BFS capture the next leg resumes from. *)
  let leg ?resume ?max_states () =
    Checkpoint.start ~interval:3600.0 ~write:snap ?resume ~fingerprint ();
    Fun.protect ~finally:Checkpoint.stop @@ fun () ->
    match max_states with
    | None -> Some (ring5_span ())
    | Some n -> (
      match Budget.with_budget (Budget.make ~max_states:n ()) ring5_span with
      | _ -> Alcotest.fail "state budget did not trip"
      | exception Error.Detcor_error (Error.Resource _) -> None)
  in
  ignore (leg ~max_states:2000 ());
  Alcotest.(check bool) "snapshot written on first trip" true
    (Sys.file_exists snap);
  ignore (leg ~resume:snap ~max_states:6000 ());
  let resumed = Option.get (leg ~resume:snap ()) in
  Alcotest.(check bool) "resumed system identical" true
    (Util.ts_equal uninterrupted resumed)

(* ------------------------------------------------------------------ *)
(* Worker-failure degradation.                                         *)
(* ------------------------------------------------------------------ *)

let test_worker_degradation () =
  let sequential = ring5_span () in
  let before = Metrics.counter_value_by_name "robust.worker_retries" in
  Failpoint.seed 7;
  Failpoint.set "engine.worker" 1.0;
  let parallel =
    Fun.protect ~finally:Failpoint.clear @@ fun () ->
    let e = Lazy.force ring5 in
    (Tolerance.fault_span ~workers:4 e.program ~faults:e.faults
       ~from:e.invariant)
      .ts_pf
  in
  Alcotest.(check bool) "degraded build identical" true
    (Util.ts_equal sequential parallel);
  Alcotest.(check bool) "retries recorded" true
    (Metrics.counter_value_by_name "robust.worker_retries" > before)

(* ------------------------------------------------------------------ *)
(* Serve result-cache keying.                                          *)
(* ------------------------------------------------------------------ *)

(* The daemon's result cache is keyed on the session-fingerprint digest
   of (kind, program source, argument vector).  Two laws: identical
   submissions share a key, and any difference in kind, source or any
   argument — including options the checkpoint fingerprint deliberately
   ignores, like --workers — separates them. *)

module Proto = Detcor_serve.Proto

let submission_gen =
  QCheck.Gen.(
    let kind = oneofl [ Proto.Verify; Proto.Synthesize; Proto.Simulate ] in
    let source = oneofl [ "program a\n"; "program b\n"; "program a\n\n" ] in
    let argv =
      let opt name values =
        oneofl (None :: List.map (fun v -> Some [ name; v ]) values)
      in
      map
        (fun opts -> List.concat (List.filter_map Fun.id opts))
        (flatten_l
           [
             opt "--engine" [ "auto"; "packed"; "sharded" ];
             opt "--workers" [ "1"; "2"; "4" ];
             opt "--shards" [ "1"; "16" ];
             opt "--limit" [ "1000"; "200000" ];
           ])
    in
    triple kind source argv)

let submission_pair_arb =
  QCheck.make
    ~print:(fun ((k1, s1, a1), (k2, s2, a2)) ->
      let one k s a =
        Fmt.str "%s %S [%s]" (Proto.kind_to_string k) s (String.concat " " a)
      in
      Fmt.str "%s vs %s" (one k1 s1 a1) (one k2 s2 a2))
    QCheck.Gen.(pair submission_gen submission_gen)

let cache_key_law ((k1, s1, a1), (k2, s2, a2)) =
  let key1 = Proto.cache_key ~kind:k1 ~source:s1 ~argv:a1 in
  let key2 = Proto.cache_key ~kind:k2 ~source:s2 ~argv:a2 in
  if (k1, s1, a1) = (k2, s2, a2) then
    key1 = key2
    || QCheck.Test.fail_reportf "identical submissions keyed apart"
  else
    key1 <> key2
    || QCheck.Test.fail_reportf "distinct submissions share key %s" key1

let test_cache_key_options () =
  let base argv = Proto.cache_key ~kind:Proto.Verify ~source:"program x\n" ~argv in
  Alcotest.(check bool)
    "identical submissions share a key" true
    (base [ "--engine"; "packed" ] = base [ "--engine"; "packed" ]);
  let keys =
    List.map base
      [
        []; [ "--engine"; "packed" ]; [ "--engine"; "sharded" ];
        [ "--workers"; "2" ]; [ "--workers"; "4" ]; [ "--shards"; "16" ];
      ]
  in
  let distinct = List.sort_uniq compare keys in
  Alcotest.(check int)
    "engine/workers/shards choices all key apart" (List.length keys)
    (List.length distinct)

let suite =
  ( "checkpoint (snapshot format, resume, degradation)",
    [
      Util.qtest ~count:100 "write_file/read_file round-trip" entries_arb
        roundtrip;
      Util.qtest ~count:150 "damaged files raise Error.Snapshot" corrupt_arb
        corrupted_rejected;
      Alcotest.test_case "unreadable files raise Error.Snapshot" `Quick
        test_unreadable_files;
      Alcotest.test_case "fingerprint mismatch rejected" `Quick
        test_fingerprint_mismatch;
      Alcotest.test_case "phase kind mismatch rejected" `Quick
        test_phase_kind_mismatch;
      Alcotest.test_case "digest separates part boundaries" `Quick
        test_digest_separation;
      Util.qtest ~count:300 "serve cache keys: identity and separation"
        submission_pair_arb cache_key_law;
      Alcotest.test_case "serve cache keys split on engine options" `Quick
        test_cache_key_options;
      Alcotest.test_case "interrupted build resumes to identical system"
        `Slow test_interrupted_resume;
      Alcotest.test_case "worker failures degrade without changing results"
        `Slow test_worker_degradation;
    ] )
