(* Tests for the simulation environment (the SIEFAST role, experiment
   E8): schedulers, injectors, runner determinism, online monitors. *)

open Detcor_kernel
open Detcor_systems
open Detcor_sim

let mem_init =
  State.of_list
    [
      ("present", Value.bool true);
      ("data", Value.bot);
      ("z1", Value.bool false);
    ]

let test_runner_deterministic () =
  let injector () = Injector.make (Injector.At_steps [ 3 ]) Memory.page_fault in
  let r1 = Runner.run Memory.masking ~injector:(injector ()) ~init:mem_init in
  let r2 = Runner.run Memory.masking ~injector:(injector ()) ~init:mem_init in
  Alcotest.(check int) "same length" (Detcor_semantics.Trace.length r1.trace)
    (Detcor_semantics.Trace.length r2.trace);
  Alcotest.(check bool) "same states" true
    (List.for_all2 State.equal
       (Detcor_semantics.Trace.states r1.trace)
       (Detcor_semantics.Trace.states r2.trace))

let test_runner_seeds_differ () =
  (* An illegitimate ring state enables several moves at once, so distinct
     seeds schedule distinct action sequences (almost surely). *)
  let cfg = Token_ring.make_config 4 in
  let init =
    State.of_list
      (List.init cfg.Token_ring.processes (fun i ->
           (Token_ring.xvar i, Value.int (i mod cfg.Token_ring.counter_values))))
  in
  let run seed =
    Runner.run
      ~config:{ Runner.default with seed; max_steps = 50 }
      (Token_ring.program cfg)
      ~injector:(Injector.make Injector.None_ (Token_ring.corruption cfg))
      ~init
  in
  let actions r =
    List.map
      (fun (s : Detcor_semantics.Trace.step) -> s.action)
      (Detcor_semantics.Trace.steps r.Runner.trace)
  in
  let schedules = List.map (fun seed -> actions (run seed)) (List.init 10 (fun i -> i + 1)) in
  let distinct = List.sort_uniq compare schedules in
  Alcotest.(check bool) "some schedules differ across 10 seeds" true
    (List.length distinct > 1)

let test_injector_bounds () =
  let runs =
    Runner.sample 20 Memory.masking ~faults:Memory.page_fault
      ~policy:(Injector.Random { probability = 0.5; max_faults = 2 })
      ~init:mem_init
  in
  Alcotest.(check bool) "at most 2 faults per run" true
    (List.for_all (fun (r : Runner.run) -> r.faults_injected <= 2) runs)

let test_sample_seeds_uncorrelated () =
  (* Regression: per-run seeds used to be [config.seed + i], so two
     overlapping samples shared almost every stream — base seed 1 run 1
     replayed base seed 2 run 0 exactly.  With splitmix-derived seeds the
     two samples must produce disjoint traces. *)
  let cfg = Token_ring.make_config 4 in
  let init =
    State.of_list
      (List.init cfg.Token_ring.processes (fun i ->
           (Token_ring.xvar i, Value.int (i mod cfg.Token_ring.counter_values))))
  in
  let sample seed =
    Runner.sample
      ~config:{ Runner.default with seed; max_steps = 40 }
      6 (Token_ring.program cfg) ~faults:(Token_ring.corruption cfg)
      ~policy:(Injector.Random { probability = 0.3; max_faults = 3 })
      ~init
  in
  let key (r : Runner.run) =
    String.concat ";"
      (List.map
         (fun (s : Detcor_semantics.Trace.step) -> s.action)
         (Detcor_semantics.Trace.steps r.trace))
  in
  let a = List.map key (sample 1) in
  let b = List.map key (sample 2) in
  Alcotest.(check bool) "overlapping samples share no trace" false
    (List.exists (fun k -> List.mem k a) b)

let test_injector_at_steps () =
  let injector = Injector.make (Injector.At_steps [ 0 ]) Memory.page_fault in
  let r = Runner.run Memory.masking ~injector ~init:mem_init in
  Alcotest.(check (list int)) "fault at step 0" [ 0 ] r.fault_steps

let test_round_robin_terminates () =
  let r =
    Runner.run
      ~config:{ Runner.default with scheduler = Scheduler.Round_robin }
      Memory.failsafe
      ~injector:(Injector.make Injector.None_ Memory.page_fault)
      ~init:mem_init
  in
  (* pf from S with no faults: keeps reading good data. *)
  Alcotest.(check bool) "no safety violation" true
    (Monitor.first_safety_violation r
       (Detcor_spec.Spec.safety
          (Detcor_spec.Spec.smallest_safety_containing Memory.spec))
    = None)

let test_monitor_detection_latency () =
  let injector = Injector.make Injector.None_ Memory.page_fault in
  let r = Runner.run Memory.masking ~injector ~init:mem_init in
  let latencies = Monitor.detection_latency r Memory.pm_detector in
  Alcotest.(check bool) "detection observed" true (latencies <> []);
  Alcotest.(check bool) "latencies nonnegative" true (List.for_all (fun l -> l >= 0) latencies)

let test_monitor_correction_latency () =
  let injector = Injector.make (Injector.At_steps [ 2 ]) Memory.page_fault in
  let r =
    Runner.run
      ~config:{ Runner.default with max_steps = 100 }
      Memory.nonmasking ~injector
      ~init:(State.of_list [ ("present", Value.bool true); ("data", Value.bot) ])
  in
  match Monitor.correction_latency r Memory.pn_corrector with
  | Some l -> Alcotest.(check bool) "corrected after fault" true (l >= 0)
  | None -> Alcotest.fail "pn failed to correct in simulation"

let test_monitor_safety_violation_detected () =
  (* The intolerant program under an early fault eventually writes bad
     data in some schedule; scan seeds until observed. *)
  let sspec =
    Detcor_spec.Spec.safety (Detcor_spec.Spec.smallest_safety_containing Memory.spec)
  in
  let violated =
    List.exists
      (fun seed ->
        let injector = Injector.make (Injector.At_steps [ 0 ]) Memory.page_fault in
        let r =
          Runner.run
            ~config:{ Runner.default with seed }
            Memory.intolerant ~injector
            ~init:(State.of_list [ ("present", Value.bool true); ("data", Value.bot) ])
        in
        Monitor.first_safety_violation r sspec <> None)
      (List.init 20 (fun i -> i + 1))
  in
  Alcotest.(check bool) "violation observed for intolerant p" true violated

let test_monitor_report () =
  let runs =
    Runner.sample 30 Memory.masking ~faults:Memory.page_fault
      ~policy:(Injector.Random { probability = 0.1; max_faults = 1 })
      ~init:mem_init
  in
  let report =
    Monitor.report runs ~detector:Memory.pm_detector ~corrector:Memory.pm_corrector
      ~sspec:
        (Detcor_spec.Spec.safety
           (Detcor_spec.Spec.smallest_safety_containing Memory.spec))
  in
  Alcotest.(check int) "all runs counted" 30 report.runs;
  Alcotest.(check int) "masking program never violates safety" 0
    report.safety_violations;
  Alcotest.(check bool) "corrections observed" true (report.corrected_runs > 0)

(* ------------------------------------------------------------------ *)
(* Monitor edge cases, on hand-built runs.                             *)
(* ------------------------------------------------------------------ *)

module Safety = Detcor_spec.Safety

let mk_run ?(fault_steps = []) states =
  match states with
  | [] -> assert false
  | init :: rest ->
    {
      Runner.trace =
        Detcor_semantics.Trace.make init
          (List.map
             (fun st -> { Detcor_semantics.Trace.action = "t"; target = st })
             rest);
      fault_steps;
      faults_injected = List.length fault_steps;
    }

let bvar name = Pred.make name (fun st -> Value.as_bool (State.get st name))
let xz x z = State.of_list [ ("x", Value.bool x); ("z", Value.bool z) ]

let edge_detector =
  Detcor_core.Detector.make ~witness:(bvar "z") ~detection:(bvar "x") ()

let edge_corrector =
  Detcor_core.Corrector.make ~witness:(bvar "z") ~correction:(bvar "z") ()

(* The compiled monitor must agree on every edge case; without a program
   its syndrome family evaluates by reference, so this pins the shared
   scan automata, not the packing. *)
let compiled_agrees run sspec =
  let comp =
    Monitor.Compiled.make ~detector:edge_detector ~corrector:edge_corrector
      ~sspec ()
  in
  Alcotest.(check (list int))
    "compiled detection agrees"
    (Monitor.detection_latency run edge_detector)
    (Monitor.Compiled.detection_latency comp run);
  Alcotest.(check (option int))
    "compiled correction agrees"
    (Monitor.correction_latency run edge_corrector)
    (Monitor.Compiled.correction_latency comp run);
  Alcotest.(check (option int))
    "compiled violation agrees"
    (Monitor.first_safety_violation run sspec)
    (Monitor.Compiled.first_safety_violation comp run)

let test_detection_open_interval () =
  (* X holds to the end of the trace without Z ever firing: Progress
     permits the open interval, so no latency is recorded. *)
  let run = mk_run [ xz false false; xz true false; xz true false ] in
  Alcotest.(check (list int))
    "open interval skipped" []
    (Monitor.detection_latency run edge_detector);
  (* A witnessed interval followed by an open one keeps only the first. *)
  let run2 = mk_run [ xz true false; xz true true; xz true false; xz true false ] in
  Alcotest.(check (list int))
    "witnessed then open" [ 1 ]
    (Monitor.detection_latency run2 edge_detector);
  compiled_agrees run (Safety.never (bvar "x"));
  compiled_agrees run2 (Safety.never (bvar "x"))

let test_detection_zero_latency () =
  (* X and Z truthified in the same state: latency 0. *)
  let run = mk_run [ xz false false; xz true true ] in
  Alcotest.(check (list int))
    "same-state witness" [ 0 ]
    (Monitor.detection_latency run edge_detector);
  compiled_agrees run (Safety.never (bvar "x"))

let test_correction_no_faults () =
  (* Empty fault schedule: the convergence scan starts at the first
     state. *)
  let run = mk_run [ xz false false; xz false true ] in
  Alcotest.(check (option int))
    "scan from state 0" (Some 1)
    (Monitor.correction_latency run edge_corrector);
  let run0 = mk_run [ xz false true; xz false false ] in
  Alcotest.(check (option int))
    "already corrected" (Some 0)
    (Monitor.correction_latency run0 edge_corrector);
  (* A fault on the final step puts the scan start past the trace end. *)
  let run_end = mk_run ~fault_steps:[ 1 ] [ xz false true; xz false true ] in
  Alcotest.(check (option int))
    "scan start beyond trace" None
    (Monitor.correction_latency run_end edge_corrector);
  compiled_agrees run (Safety.never (bvar "x"));
  compiled_agrees run_end (Safety.never (bvar "x"))

let test_safety_violation_at_start () =
  (* The very first state is bad: index 0, before any transition. *)
  let run = mk_run [ xz true false; xz false false ] in
  let sspec = Safety.never (bvar "x") in
  Alcotest.(check (option int))
    "violation at state 0" (Some 0)
    (Monitor.first_safety_violation run sspec);
  (* And a transition violation reports the target index. *)
  let pair = Safety.generalized_pair (bvar "x") (bvar "z") in
  let run2 = mk_run [ xz false false; xz true true; xz true false ] in
  Alcotest.(check (option int))
    "bad transition into state 2" (Some 2)
    (Monitor.first_safety_violation run2 pair);
  compiled_agrees run sspec;
  compiled_agrees run2 pair

let test_stats () =
  match Stats.summarize [ 5; 1; 3; 2; 4 ] with
  | None -> Alcotest.fail "nonempty summary"
  | Some s ->
    Alcotest.(check int) "count" 5 s.count;
    Alcotest.(check int) "min" 1 s.min;
    Alcotest.(check int) "max" 5 s.max;
    Alcotest.(check int) "median" 3 s.p50;
    Alcotest.(check (float 0.001)) "mean" 3.0 s.mean;
    Alcotest.(check bool) "empty" true (Stats.summarize [] = None)

(* Property: the ring stabilizes in simulation from random corrupted
   states (E9's dynamic counterpart of the convergence proof). *)
let test_ring_simulation_stabilizes () =
  let cfg = Token_ring.make_config 4 in
  let p = Token_ring.program cfg in
  let legit = Token_ring.legitimate cfg in
  let ok = ref 0 in
  for seed = 1 to 20 do
    let init =
      let rng = Random.State.make [| seed |] in
      State.of_list
        (List.init cfg.Token_ring.processes (fun i ->
             (Token_ring.xvar i, Value.int (Random.State.int rng cfg.Token_ring.counter_values))))
    in
    let r =
      Runner.run
        ~config:{ Runner.default with seed; max_steps = 300 }
        p
        ~injector:(Injector.make Injector.None_ (Token_ring.corruption cfg))
        ~init
    in
    let states = Detcor_semantics.Trace.states r.trace in
    (* once legitimate, stays legitimate; and legitimacy is reached *)
    let reached = List.exists (Pred.holds legit) states in
    let rec closed seen = function
      | [] -> true
      | st :: rest ->
        let v = Pred.holds legit st in
        if seen && not v then false else closed (seen || v) rest
    in
    if reached && closed false states then incr ok
  done;
  Alcotest.(check int) "all 20 random starts stabilize" 20 !ok

let suite =
  ( "sim (SIEFAST, E8/E9)",
    [
      Alcotest.test_case "runner determinism" `Quick test_runner_deterministic;
      Alcotest.test_case "seeds differ" `Quick test_runner_seeds_differ;
      Alcotest.test_case "injector bounds" `Quick test_injector_bounds;
      Alcotest.test_case "sample seeds uncorrelated" `Quick
        test_sample_seeds_uncorrelated;
      Alcotest.test_case "injector at steps" `Quick test_injector_at_steps;
      Alcotest.test_case "round robin" `Quick test_round_robin_terminates;
      Alcotest.test_case "detection latency" `Quick test_monitor_detection_latency;
      Alcotest.test_case "correction latency" `Quick test_monitor_correction_latency;
      Alcotest.test_case "safety violation detected" `Quick
        test_monitor_safety_violation_detected;
      Alcotest.test_case "monitor report" `Quick test_monitor_report;
      Alcotest.test_case "detection interval open at trace end" `Quick
        test_detection_open_interval;
      Alcotest.test_case "zero-latency detection" `Quick
        test_detection_zero_latency;
      Alcotest.test_case "correction with empty fault schedule" `Quick
        test_correction_no_faults;
      Alcotest.test_case "safety violated at first state" `Quick
        test_safety_violation_at_start;
      Alcotest.test_case "stats" `Quick test_stats;
      Alcotest.test_case "ring stabilizes in simulation" `Quick
        test_ring_simulation_stabilizes;
    ] )
