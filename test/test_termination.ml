(* Tests for the Dijkstra–Feijen–van Gasteren termination detector —
   "probe success detects global quiescence" (E13). *)

open Detcor_kernel
open Detcor_spec
open Detcor_core
open Detcor_systems

let cfg = Termination.default
let p = Termination.program cfg

let test_detects_holds () =
  Util.check_holds "'declared detects quiescent' from conservative starts"
    (Detector.satisfies p (Termination.detector cfg) ~from:(Termination.fresh cfg))

let test_quiescence_closed () =
  let ts = Detcor_semantics.Ts.of_pred p ~from:(Termination.fresh cfg) in
  Util.check_holds "quiescence is closed"
    (Detcor_semantics.Check.closed ts (Termination.quiescent cfg))

let test_declaration_irrevocable () =
  let ts = Detcor_semantics.Ts.of_pred p ~from:(Termination.fresh cfg) in
  Util.check_holds "declarations are never retracted"
    (Detcor_semantics.Check.closed ts Termination.declared)

let test_safety_theorem () =
  (* The DFG safety theorem, as Safeness: declared ⇒ quiescent on every
     reachable state. *)
  let ts = Detcor_semantics.Ts.of_pred p ~from:(Termination.fresh cfg) in
  Util.check_holds "declared implies quiescent (DFG safety)"
    (Detcor_semantics.Check.implies ts Termination.declared
       (Termination.quiescent cfg))

let test_progress_theorem () =
  (* The DFG liveness theorem, as Progress: quiescence leads to
     declaration. *)
  let ts = Detcor_semantics.Ts.of_pred p ~from:(Termination.fresh cfg) in
  Util.check_holds "quiescent leads to declared (DFG liveness)"
    (Detcor_semantics.Check.leads_to ts (Termination.quiescent cfg)
       Termination.declared)

let test_blackening_masked () =
  let r =
    Detector.tolerant p (Termination.detector cfg)
      ~faults:(Termination.blackening cfg) ~tol:Spec.Masking
      ~from:(Termination.fresh cfg)
  in
  Alcotest.(check bool)
    (Fmt.str "%a" Detector.pp_report r)
    true (Detector.verdict r)

let test_whitening_unsound () =
  let r =
    Detector.tolerant p (Termination.detector cfg)
      ~faults:Termination.whitening ~tol:Spec.Failsafe
      ~from:(Termination.fresh cfg)
  in
  Alcotest.(check bool) "whitening breaks Safeness" false (Detector.verdict r)

let test_whitening_counterexample_is_false_detection () =
  (* The violation the checker finds must be a declared-but-active state. *)
  let span =
    Tolerance.fault_span p ~faults:Termination.whitening
      ~from:(Termination.fresh cfg)
  in
  match
    Detcor_spec.Spec.refines span.ts_pf
      (Detector.safety_spec (Termination.detector cfg))
  with
  | Detcor_semantics.Check.Holds | Detcor_semantics.Check.Unknown _ ->
    Alcotest.fail "expected a false detection"
  | Detcor_semantics.Check.Fails (Detcor_semantics.Check.Bad_state st) ->
    Alcotest.(check bool) "declared" true (Pred.holds Termination.declared st);
    Alcotest.(check bool) "not quiescent" false
      (Pred.holds (Termination.quiescent cfg) st)
  | Detcor_semantics.Check.Fails v ->
    Alcotest.failf "unexpected violation %a" Detcor_semantics.Check.pp_violation v

let test_sizes () =
  List.iter
    (fun n ->
      let c = Termination.make_config n in
      Util.check_holds
        (Fmt.str "n=%d detects" n)
        (Detector.satisfies (Termination.program c) (Termination.detector c)
           ~from:(Termination.fresh c)))
    [ 2; 4 ]

let suite =
  ( "termination detection (DFG)",
    [
      Alcotest.test_case "detects holds" `Quick test_detects_holds;
      Alcotest.test_case "quiescence closed" `Quick test_quiescence_closed;
      Alcotest.test_case "declaration irrevocable" `Quick
        test_declaration_irrevocable;
      Alcotest.test_case "DFG safety theorem" `Quick test_safety_theorem;
      Alcotest.test_case "DFG liveness theorem" `Quick test_progress_theorem;
      Alcotest.test_case "blackening masked" `Quick test_blackening_masked;
      Alcotest.test_case "whitening unsound" `Quick test_whitening_unsound;
      Alcotest.test_case "false detection exhibited" `Quick
        test_whitening_counterexample_is_false_detection;
      Alcotest.test_case "ring sizes" `Slow test_sizes;
    ] )
