(* Differential tests: the syndrome-batched monitors against the
   predicate-at-a-time reference monitors.

   Random guarded-command programs (reusing the generator of
   {!Test_engine_diff}, including the domain-escaping action that forces
   the syndrome evaluator's per-state reference fallback) are simulated
   under random fault injection; detection latencies, correction
   latencies, first safety violations and whole reports must be
   identical whether predicates are evaluated one closure at a time or
   as packed syndrome columns.  A last property checks the syndrome
   bits themselves decode to [Pred.holds] truth per state. *)

open Detcor_kernel
open Detcor_spec
open Detcor_core
open Detcor_sim

let pred_of_seed = Test_engine_diff.pred_of_seed

(* Safety specifications spanning every constructor [Safety.decompose]
   understands, plus an opaque one ([make] with a raw closure) that
   forces the compiled monitor's closure fallback. *)
let sspec_of_seed seed =
  let p1 = pred_of_seed seed and p2 = pred_of_seed (seed lxor 0x155) in
  match seed mod 5 with
  | 0 -> Safety.never p1
  | 1 -> Safety.closure_of p1
  | 2 -> Safety.generalized_pair p1 p2
  | 3 -> Safety.conj (Safety.never p1) (Safety.generalized_pair p2 p1)
  | _ -> Safety.make ~name:"opaque" ~bad_state:(Pred.holds p1) ()

type case = {
  rp : Test_engine_diff.rand_program;
  init : State.t;
  seed : int;
}

let case_gen =
  QCheck.Gen.(
    map3
      (fun rp init seed -> { rp; init; seed })
      Test_engine_diff.program_gen Test_engine_diff.state_gen
      (int_range 0 (1 lsl 20)))

let case_arb =
  QCheck.make
    ~print:(fun c ->
      Fmt.str "%s init=%s seed=%d"
        (Test_engine_diff.print_program c.rp)
        (State.to_string c.init) c.seed)
    case_gen

(* One simulated run with real injected faults: corruption of [m] keeps
   faulty states inside the layout, the generator's escape action steps
   outside it. *)
let sample_run program c =
  let faults = Fault.corrupt_variable "m" (Domain.range 0 3) in
  Runner.run
    ~config:{ Runner.default with seed = c.seed; max_steps = 60 }
    program
    ~injector:
      (Injector.make (Injector.Random { probability = 0.15; max_faults = 3 }) faults)
    ~init:c.init

let components c =
  let detector =
    Detector.make
      ~witness:(pred_of_seed (c.seed lxor 0x3f))
      ~detection:(pred_of_seed (c.seed lxor 0x1111))
      ()
  in
  let corrector =
    Corrector.make
      ~witness:(pred_of_seed (c.seed lxor 0x77))
      ~correction:(pred_of_seed (c.seed lxor 0x2222))
      ()
  in
  (detector, corrector, sspec_of_seed c.seed)

let prop_per_run_identical =
  Util.qtest ~count:150 "compiled monitor = reference monitor (per run)"
    case_arb (fun c ->
      let program = Test_engine_diff.build_program c.rp in
      let run = sample_run program c in
      let detector, corrector, sspec = components c in
      List.for_all
        (fun mode ->
          let comp =
            Monitor.Compiled.make ~mode ~program ~detector ~corrector ~sspec ()
          in
          Monitor.Compiled.detection_latency comp run
          = Monitor.detection_latency run detector
          && Monitor.Compiled.correction_latency comp run
             = Monitor.correction_latency run corrector
          && Monitor.Compiled.first_safety_violation comp run
             = Monitor.first_safety_violation run sspec)
        [ Syndrome.Packed; Syndrome.Reference ])

let prop_report_identical =
  Util.qtest ~count:80 "packed report = reference report" case_arb (fun c ->
      let program = Test_engine_diff.build_program c.rp in
      let runs =
        List.map
          (fun k -> sample_run program { c with seed = c.seed + k })
          [ 0; 1; 2 ]
      in
      let detector, corrector, sspec = components c in
      let render mode =
        Fmt.str "%a" Monitor.pp_report
          (Monitor.report ~mode ~program runs ~detector ~corrector ~sspec)
      in
      render Syndrome.Reference = render Syndrome.Packed
      && render Syndrome.Reference = render Syndrome.Auto)

let prop_syndrome_decodes =
  Util.qtest ~count:150 "syndrome bits decode to Pred.holds" case_arb (fun c ->
      let program = Test_engine_diff.build_program c.rp in
      let run = sample_run program c in
      let states = Detcor_semantics.Trace.states run.Runner.trace in
      let family =
        List.map (fun k -> pred_of_seed (c.seed lxor k)) [ 0; 5; 11; 301 ]
      in
      List.for_all
        (fun mode ->
          let syn = Syndrome.compile ~mode ~program family in
          let b = Syndrome.of_states syn states in
          Syndrome.length b = List.length states
          && List.for_all
               (fun (i, st) ->
                 List.for_all
                   (fun (j, p) ->
                     Syndrome.get b ~state:i ~pred:j = Pred.holds p st
                     && Detcor_semantics.Bitset.get (Syndrome.column b j) i
                        = Pred.holds p st)
                   (List.mapi (fun j p -> (j, p)) family)
                 && Syndrome.nonzero b ~state:i
                    = List.exists (fun p -> Pred.holds p st) family
                 && Syndrome.fired b ~state:i
                    = List.filteri
                        (fun j _ -> Syndrome.get b ~state:i ~pred:j)
                        (List.mapi (fun j _ -> j) family))
               (List.mapi (fun i st -> (i, st)) states))
        [ Syndrome.Packed; Syndrome.Reference ])

(* A second sweep through the same compiled family must hit the memo and
   still agree — revisited states are the packed path's fast case. *)
let prop_memo_stable =
  Util.qtest ~count:80 "memoized re-evaluation is stable" case_arb (fun c ->
      let program = Test_engine_diff.build_program c.rp in
      let run = sample_run program c in
      let states = Detcor_semantics.Trace.states run.Runner.trace in
      let family = List.map (fun k -> pred_of_seed (c.seed lxor k)) [ 0; 19 ] in
      let syn = Syndrome.compile ~mode:Syndrome.Packed ~program family in
      let b1 = Syndrome.of_states syn states in
      let b2 = Syndrome.of_states syn states in
      List.for_all
        (fun j ->
          Detcor_semantics.Bitset.equal (Syndrome.column b1 j)
            (Syndrome.column b2 j))
        [ 0; 1 ])

let suite =
  ( "monitor differential",
    [
      prop_per_run_identical;
      prop_report_identical;
      prop_syndrome_decodes;
      prop_memo_stable;
    ] )
