(* Tests for the observability layer (Detcor_obs): span nesting and
   ordering, histogram bucketing, sink well-formedness (both file formats
   parse back), counter atomicity under the parallel engine, the
   Auto-engine fallback diagnosis, and the regression that turning
   observability on does not change any checker verdict. *)

open Detcor_kernel
open Detcor_obs
module Ts = Detcor_semantics.Ts

(* Run [f] under a fresh recording context over [sinks]; restores the
   previous (normally disabled) context after. *)
let recording sinks f = Obs.with_ctx (Obs.make ~sinks ()) f

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let sink, records = Sink.memory () in
  let result =
    recording [ sink ] (fun () ->
        Obs.span "outer" ~attrs:[ Attr.str "k" "v" ] (fun () ->
            Obs.event "mid" ~attrs:[ Attr.int "at" 1 ];
            Obs.span "inner" (fun () -> ());
            Obs.annotate [ Attr.int "extra" 7 ];
            42))
  in
  Alcotest.(check int) "span returns f's value" 42 result;
  match records () with
  | [
   Sink.Anchor anchor;
   Sink.Begin b_out;
   Sink.Instant mid;
   Sink.Begin b_in;
   Sink.End e_in;
   Sink.End e_out;
  ] ->
    Alcotest.(check bool) "anchor carries a wall clock" true
      (anchor.wall_epoch_ms > 0.);
    Alcotest.(check string) "outer begin" "outer" b_out.name;
    Alcotest.(check string) "instant inside outer" "mid" mid.name;
    Alcotest.(check string) "inner begin" "inner" b_in.name;
    Alcotest.(check string) "inner ends before outer" "inner" e_in.name;
    Alcotest.(check string) "outer ends last" "outer" e_out.name;
    Alcotest.(check bool) "timestamps are monotone" true
      (b_out.ts <= mid.ts && mid.ts <= b_in.ts && b_in.ts <= e_in.ts
     && e_in.ts <= e_out.ts);
    Alcotest.(check bool) "inner duration fits in outer" true
      (e_in.dur <= e_out.dur);
    Alcotest.(check bool) "annotate lands on the outer end" true
      (List.mem (Attr.int "extra" 7) e_out.attrs);
    Alcotest.(check bool) "begin attrs repeated on end" true
      (List.mem (Attr.str "k" "v") e_out.attrs)
  | rs -> Alcotest.failf "unexpected record sequence (%d records)" (List.length rs)

let test_span_exception () =
  let sink, records = Sink.memory () in
  (try
     recording [ sink ] (fun () ->
         Obs.span "boom" (fun () -> failwith "expected"))
   with Failure _ -> ());
  let ends =
    List.filter (function Sink.End _ -> true | _ -> false) (records ())
  in
  Alcotest.(check int) "End emitted despite the exception" 1 (List.length ends)

let test_disabled_is_inert () =
  let before = Metrics.counter_value_by_name "engine.builds" in
  Alcotest.(check bool) "recording off by default" false (Obs.on ());
  Obs.span "not-recorded" (fun () -> Obs.event "nothing");
  ignore (Ts.full Detcor_systems.Memory.masking);
  Alcotest.(check int) "no metrics move while disabled" before
    (Metrics.counter_value_by_name "engine.builds")

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let test_histogram_bucketing () =
  let h = Metrics.histogram ~buckets:[| 10; 100; 1000 |] "test.hist" in
  List.iter (Metrics.observe h) [ 5; 10; 11; 1000; 5000 ];
  Alcotest.(check int) "count" 5 (Metrics.histogram_count h);
  Alcotest.(check int) "sum" 6026 (Metrics.histogram_sum h);
  Alcotest.(check (list (pair (option int) int)))
    "inclusive upper bounds, plus overflow"
    [ (Some 10, 2); (Some 100, 1); (Some 1000, 1); (None, 1) ]
    (Metrics.histogram_buckets h)

let test_metrics_snapshot_parses () =
  let c = Metrics.counter "test.snap_counter" in
  Metrics.incr ~by:3 c;
  let json = Jsonx.to_string (Metrics.snapshot ()) in
  match Jsonx.of_string json with
  | Error e -> Alcotest.failf "snapshot does not parse: %s" e
  | Ok v ->
    let counters = Option.get (Jsonx.member "counters" v) in
    Alcotest.(check (option int))
      "counter value survives the round-trip" (Some 3)
      (Option.bind (Jsonx.member "test.snap_counter" counters) Jsonx.to_int)

(* ------------------------------------------------------------------ *)
(* File sinks parse back                                               *)
(* ------------------------------------------------------------------ *)

let emit_sample () =
  Obs.span "phase" ~attrs:[ Attr.int "size" 3 ] (fun () ->
      Obs.event "tick" ~level:Attr.Warn
        ~attrs:[ Attr.str "why" "q\"uote\n"; Attr.float "f" 0.5 ])

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_jsonl_roundtrip () =
  let path = Filename.temp_file "detcor_obs" ".jsonl" in
  let sink = Sink.to_file Sink.jsonl path in
  Obs.set_current (Obs.make ~sinks:[ sink ] ());
  emit_sample ();
  Obs.close ();
  let lines =
    String.split_on_char '\n' (String.trim (read_file path))
  in
  Alcotest.(check int) "anchor + begin + event + end" 4 (List.length lines);
  List.iter
    (fun line ->
      match Jsonx.of_string line with
      | Error e -> Alcotest.failf "line does not parse: %s (%s)" e line
      | Ok v ->
        Alcotest.(check bool) "has type/name/ts_ns/tid" true
          (List.for_all
             (fun k -> Jsonx.member k v <> None)
             [ "type"; "name"; "ts_ns"; "tid" ]))
    lines;
  let first = Result.get_ok (Jsonx.of_string (List.nth lines 0)) in
  Alcotest.(check (option string))
    "header line is the wall-clock anchor" (Some "anchor")
    (Option.bind (Jsonx.member "type" first) Jsonx.to_str);
  Alcotest.(check bool) "anchor carries wall_epoch_ms" true
    (Jsonx.member "wall_epoch_ms" first <> None);
  let last = Result.get_ok (Jsonx.of_string (List.nth lines 3)) in
  Alcotest.(check bool) "end record carries a duration" true
    (Jsonx.member "dur_ns" last <> None);
  Sys.remove path

let test_chrome_roundtrip () =
  let path = Filename.temp_file "detcor_obs" ".json" in
  let sink = Sink.to_file Sink.chrome path in
  Obs.set_current (Obs.make ~sinks:[ sink ] ());
  emit_sample ();
  Obs.close ();
  (match Jsonx.of_string (read_file path) with
  | Error e -> Alcotest.failf "chrome trace does not parse: %s" e
  | Ok (Jsonx.List events) ->
    Alcotest.(check int) "M + B + i + E" 4 (List.length events);
    List.iter
      (fun ev ->
        let ph =
          Option.bind (Jsonx.member "ph" ev) Jsonx.to_str |> Option.get
        in
        Alcotest.(check bool) "ph is M/B/E/i" true
          (List.mem ph [ "M"; "B"; "E"; "i" ]);
        Alcotest.(check bool) "has name/ts/pid/tid/args" true
          (List.for_all
             (fun k -> Jsonx.member k ev <> None)
             [ "name"; "ts"; "pid"; "tid"; "args" ]))
      events;
    let phs =
      List.map
        (fun ev -> Option.bind (Jsonx.member "ph" ev) Jsonx.to_str |> Option.get)
        events
    in
    Alcotest.(check (list string)) "anchored and balanced in order"
      [ "M"; "B"; "i"; "E" ] phs
  | Ok _ -> Alcotest.fail "chrome trace is not a JSON array");
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Counter atomicity                                                   *)
(* ------------------------------------------------------------------ *)

let test_counter_atomicity_domains () =
  let c = Metrics.counter "test.atomic" in
  let per_domain = 25_000 and domains = 4 in
  let worker () =
    for _ = 1 to per_domain do
      Metrics.incr c
    done
  in
  let ds = List.init domains (fun _ -> Stdlib.Domain.spawn worker) in
  List.iter Stdlib.Domain.join ds;
  Alcotest.(check int) "no lost increments across 4 domains"
    (per_domain * domains) (Metrics.counter_value c)

let test_parallel_engine_counters () =
  let cfg = Detcor_systems.Token_ring.make_config 5 in
  let p = Detcor_systems.Token_ring.program cfg in
  let delta f =
    let name = "engine.parallel.states_expanded" in
    let before = Metrics.counter_value_by_name name in
    let r = f () in
    (r, Metrics.counter_value_by_name name - before)
  in
  recording [] (fun () ->
      let ts1, d1 = delta (fun () -> Ts.full ~workers:4 p) in
      let _, d2 = delta (fun () -> ignore (Ts.full ~workers:4 p)) in
      Alcotest.(check bool) "parallel slices expanded some states" true (d1 > 0);
      Alcotest.(check bool) "each state expanded at most once" true
        (d1 <= Ts.num_states ts1);
      Alcotest.(check int) "deterministic across identical builds" d1 d2)

(* ------------------------------------------------------------------ *)
(* Auto-engine fallback diagnosis                                      *)
(* ------------------------------------------------------------------ *)

let escaping_program =
  (* Declares n : 0..2 but steps to n=5: the packed engine's layout cannot
     represent the successor, so Auto must fall back and say why. *)
  Program.make ~name:"escaper"
    ~vars:[ ("n", Domain.range 0 2) ]
    ~actions:
      [
        Action.deterministic "jump"
          (Pred.make "n=0" (fun st -> Value.equal (State.get st "n") (Value.int 0)))
          (fun st -> State.set st "n" (Value.int 5));
      ]

let test_fallback_reason () =
  let before = Metrics.counter_value_by_name "engine.fallbacks" in
  let ts =
    recording [] (fun () ->
        Ts.build ~engine:Ts.Auto escaping_program
          ~from:[ State.of_list [ ("n", Value.int 0) ] ])
  in
  Alcotest.(check bool) "fell back to the reference engine" true
    (Ts.engine_of ts = Ts.Reference);
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  (match Ts.fallback_reason ts with
  | None -> Alcotest.fail "fallback reason not recorded"
  | Some reason ->
    Alcotest.(check bool)
      (Fmt.str "reason diagnoses the domain escape (%s)" reason)
      true
      (contains reason "variable n" && contains reason "domain"));
  Alcotest.(check int) "fallback counted once"
    (before + 1)
    (Metrics.counter_value_by_name "engine.fallbacks");
  (* A packed build that needs no fallback reports no reason. *)
  let clean = Ts.full Detcor_systems.Tmr.masking in
  Alcotest.(check bool) "no reason without fallback" true
    (Ts.fallback_reason clean = None)

(* ------------------------------------------------------------------ *)
(* Observability does not change verdicts                              *)
(* ------------------------------------------------------------------ *)

let test_verdicts_identical () =
  let open Detcor_systems in
  let report tol =
    Fmt.str "%a" Detcor_core.Tolerance.pp_report
      (Detcor_core.Tolerance.check Memory.masking ~spec:Memory.spec
         ~invariant:Memory.s ~faults:Memory.page_fault ~tol)
  in
  List.iter
    (fun tol ->
      let off = report tol in
      let sink, _ = Sink.memory () in
      let on = recording [ sink ] (fun () -> report tol) in
      Alcotest.(check string) "report byte-identical with recording on" off on)
    Detcor_spec.Spec.[ Failsafe; Nonmasking; Masking ]

let suite =
  ( "obs",
    [
      Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
      Alcotest.test_case "span survives exceptions" `Quick test_span_exception;
      Alcotest.test_case "disabled context is inert" `Quick test_disabled_is_inert;
      Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
      Alcotest.test_case "metrics snapshot parses" `Quick
        test_metrics_snapshot_parses;
      Alcotest.test_case "jsonl sink round-trips" `Quick test_jsonl_roundtrip;
      Alcotest.test_case "chrome sink round-trips" `Quick test_chrome_roundtrip;
      Alcotest.test_case "counters atomic across domains" `Quick
        test_counter_atomicity_domains;
      Alcotest.test_case "parallel engine counters" `Quick
        test_parallel_engine_counters;
      Alcotest.test_case "auto fallback reason" `Quick test_fallback_reason;
      Alcotest.test_case "verdicts identical on/off" `Quick
        test_verdicts_identical;
    ] )
