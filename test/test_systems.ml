(* Tests for the paper's Section 6 constructions (TMR, Byzantine
   agreement) and the substrate systems (token ring, ring mutex). *)

open Detcor_kernel
open Detcor_spec
open Detcor_core
open Detcor_systems

(* ------------------------------------------------------------------ *)
(* TMR (Section 6.1)                                                   *)
(* ------------------------------------------------------------------ *)

let tmr_verdict p tol =
  Tolerance.verdict
    (Tolerance.check p ~spec:Tmr.spec ~invariant:Tmr.invariant
       ~faults:Tmr.one_corruption ~tol)

let test_tmr_matrix () =
  Alcotest.(check bool) "IR failsafe" false (tmr_verdict Tmr.intolerant Spec.Failsafe);
  Alcotest.(check bool) "IR masking" false (tmr_verdict Tmr.intolerant Spec.Masking);
  Alcotest.(check bool) "DR;IR failsafe" true (tmr_verdict Tmr.failsafe Spec.Failsafe);
  Alcotest.(check bool) "DR;IR masking" false (tmr_verdict Tmr.failsafe Spec.Masking);
  Alcotest.(check bool) "DR;IR[]CR failsafe" true (tmr_verdict Tmr.masking Spec.Failsafe);
  Alcotest.(check bool) "DR;IR[]CR masking" true (tmr_verdict Tmr.masking Spec.Masking)

let test_tmr_majority () =
  let st vals =
    State.of_list
      (List.map2 (fun x v -> (x, Value.int v)) [ "x"; "y"; "z" ] vals
      @ [ ("out", Value.bot) ])
  in
  Alcotest.(check (option Util.value)) "all agree" (Some (Value.int 1))
    (Tmr.majority (st [ 1; 1; 1 ]));
  Alcotest.(check (option Util.value)) "two agree" (Some (Value.int 0))
    (Tmr.majority (st [ 0; 1; 0 ]))

let test_tmr_detector () =
  (* DR's witness (x=y or x=z) detects x=uncor in the fail-safe program
     from the at-most-one-corruption span. *)
  let span =
    Tolerance.fault_span Tmr.failsafe ~faults:Tmr.one_corruption
      ~from:Tmr.invariant
  in
  Util.check_holds "DR witness implies detection on span"
    (Detcor_semantics.Check.implies span.ts_pf Tmr.dr_witness Tmr.dr_detection)

let test_tmr_theorem_3_6 () =
  let schema =
    Theorems.theorem_3_6 ~base:Tmr.intolerant ~refined:Tmr.failsafe
      ~spec:Tmr.spec ~faults:Tmr.one_corruption ~invariant_s:Tmr.invariant
      ~invariant_r:Tmr.invariant ()
  in
  Alcotest.(check bool)
    (Fmt.str "3.6 on TMR: %a" Theorems.pp_schema schema)
    true (Theorems.holds schema)

let test_tmr_corrector () =
  (* In the masking program, out=uncor corrects out=uncor from the span. *)
  let span =
    Tolerance.fault_span Tmr.masking ~faults:Tmr.one_corruption
      ~from:Tmr.invariant
  in
  let ts_p =
    Detcor_semantics.Ts.build Tmr.masking ~from:span.states
  in
  Util.check_holds "CR corrects out=uncor on p alone"
    (Corrector.satisfies_ts ts_p Tmr.corrector)

let test_tmr_deadlock_shape () =
  (* DR;IR deadlocks exactly when x is the corrupted input. *)
  let st =
    State.of_list
      [
        ("x", Value.int 1);
        ("y", Value.int 0);
        ("z", Value.int 0);
        ("out", Value.bot);
      ]
  in
  Alcotest.(check bool) "failsafe blocks on corrupt x" true
    (Program.deadlocked Tmr.failsafe st);
  Alcotest.(check bool) "masking recovers via CR" false
    (Program.deadlocked Tmr.masking st)

(* ------------------------------------------------------------------ *)
(* Byzantine agreement (Section 6.2)                                   *)
(* ------------------------------------------------------------------ *)

let cfg = Byzantine.default

let byz_verdict ?invariant p tol =
  let invariant =
    match invariant with Some i -> i | None -> Byzantine.invariant cfg
  in
  Tolerance.verdict
    (Tolerance.check p ~spec:(Byzantine.spec cfg) ~invariant
       ~faults:(Byzantine.byzantine_faults cfg) ~tol)

let test_byz_matrix () =
  Alcotest.(check bool) "IB failsafe" false
    (byz_verdict ~invariant:(Byzantine.invariant_weak cfg)
       (Byzantine.intolerant cfg) Spec.Failsafe);
  Alcotest.(check bool) "IB+DB failsafe" true
    (byz_verdict (Byzantine.failsafe cfg) Spec.Failsafe);
  Alcotest.(check bool) "IB+DB masking" false
    (byz_verdict (Byzantine.failsafe cfg) Spec.Masking);
  Alcotest.(check bool) "IB+DB+CB failsafe" true
    (byz_verdict (Byzantine.masking cfg) Spec.Failsafe);
  Alcotest.(check bool) "IB+DB+CB masking" true
    (byz_verdict (Byzantine.masking cfg) Spec.Masking)

let test_byz_no_faults_terminates () =
  (* In the absence of faults, the masking program refines the spec. *)
  let _, outcome =
    Tolerance.refines_from (Byzantine.masking cfg) ~spec:(Byzantine.spec cfg)
      ~invariant:(Byzantine.invariant cfg)
  in
  Util.check_holds "IB[]DB[]CB refines SPEC from S" outcome

let test_byz_two_byzantine_breaks () =
  (* With two Byzantine processes out of four, masking tolerance is
     impossible (3f+1 bound); our checker must refute it. *)
  let two_byz =
    let f = Byzantine.byzantine_faults cfg in
    let one =
      Pred.make "at-most-two-byz" (fun st ->
          let count =
            List.length
              (List.filter
                 (fun j ->
                   Value.equal (State.get st (Byzantine.bvar j)) (Value.bool true))
                 (0 :: Byzantine.procs cfg))
          in
          count <= 1)
    in
    let relaxed =
      List.map
        (fun ac ->
          match Action.based_on ac with
          | _ ->
            if
              String.length (Action.name ac) >= 12
              && String.sub (Action.name ac) 0 12 = "F:become-byz"
            then
              Action.make (Action.name ac) one (fun st ->
                  match Action.execute ac st with
                  | [] ->
                    (* original guard blocked a second corruption: force it *)
                    let j =
                      int_of_string
                        (String.sub (Action.name ac) 13
                           (String.length (Action.name ac) - 13))
                    in
                    let st = State.set st (Byzantine.bvar j) (Value.bool true) in
                    if j = 0 then [ st ]
                    else
                      [
                        State.set st (Byzantine.dvar j) (Value.int 0);
                        State.set st (Byzantine.dvar j) (Value.int 1);
                      ]
                  | succs -> succs)
            else ac)
        (Fault.actions f)
    in
    Fault.make "two-byzantine" relaxed
  in
  Alcotest.(check bool) "two byzantine breaks masking" false
    (Tolerance.verdict
       (Tolerance.check (Byzantine.masking cfg) ~spec:(Byzantine.spec cfg)
          ~invariant:(Byzantine.invariant cfg) ~faults:two_byz
          ~tol:Spec.Masking))

let test_byz_majority () =
  let st =
    State.of_list
      ([ (Byzantine.dvar 0, Value.int 1); (Byzantine.bvar 0, Value.bool false) ]
      @ List.concat_map
          (fun j ->
            [
              (Byzantine.dvar j, Value.int (if j = 1 then 0 else 1));
              (Byzantine.ovar j, Value.bot);
              (Byzantine.bvar j, Value.bool false);
            ])
          (Byzantine.procs cfg))
  in
  Alcotest.(check (option Util.value)) "majority 1" (Some (Value.int 1))
    (Byzantine.majority cfg st);
  Alcotest.(check (option Util.value)) "corrdecn = d.g for honest general"
    (Some (Value.int 1))
    (Byzantine.corrdecn cfg st)

let test_byz_space_size () =
  Alcotest.(check bool) "4-process state space is explorable" true
    (Program.space_size (Byzantine.masking cfg) < 100_000)

(* ------------------------------------------------------------------ *)
(* Token ring                                                          *)
(* ------------------------------------------------------------------ *)

let rcfg = Token_ring.default

let test_ring_config_validation () =
  Alcotest.(check bool) "n<2 rejected" true
    (try
       ignore (Token_ring.make_config 1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "K<2 rejected" true
    (try
       ignore (Token_ring.make_config ~k:1 4);
       false
     with Invalid_argument _ -> true);
  (* k < n is legal now (scale experiments over the safety half); it
     forfeits convergence, not well-formedness. *)
  Alcotest.(check bool) "K<n accepted" true
    (try
       ignore (Token_ring.make_config ~k:2 4);
       true
     with Invalid_argument _ -> false)

let test_ring_legitimate () =
  let uniform =
    State.of_list
      (List.init rcfg.Token_ring.processes (fun i ->
           (Token_ring.xvar i, Value.int 0)))
  in
  Alcotest.(check int) "uniform state has one privilege" 1
    (Token_ring.privilege_count rcfg uniform);
  Alcotest.(check bool) "legitimate" true
    (Pred.holds (Token_ring.legitimate rcfg) uniform)

let test_ring_nonmasking () =
  Alcotest.(check bool) "ring nonmasking tolerant" true
    (Tolerance.verdict
       (Tolerance.is_nonmasking (Token_ring.program rcfg)
          ~spec:(Token_ring.spec rcfg)
          ~invariant:(Token_ring.legitimate rcfg)
          ~faults:(Token_ring.corruption rcfg)))

let test_ring_not_masking () =
  Alcotest.(check bool) "ring not masking tolerant" false
    (Tolerance.verdict
       (Tolerance.is_masking (Token_ring.program rcfg)
          ~spec:(Token_ring.spec rcfg)
          ~invariant:(Token_ring.legitimate rcfg)
          ~faults:(Token_ring.corruption rcfg)))

let test_ring_is_corrector () =
  (* Self-stabilization: the ring corrects its own legitimacy predicate
     from arbitrary states (the Arora-Gouda special case). *)
  Util.check_holds "ring corrects legitimacy from true"
    (Corrector.satisfies (Token_ring.program rcfg) (Token_ring.corrector rcfg)
       ~from:Pred.true_)

let test_ring_sizes () =
  (* Convergence holds across ring sizes. *)
  List.iter
    (fun n ->
      let c = Token_ring.make_config n in
      Util.check_holds
        (Fmt.str "ring n=%d corrects legitimacy" n)
        (Corrector.satisfies (Token_ring.program c) (Token_ring.corrector c)
           ~from:Pred.true_))
    [ 2; 3; 5 ]

let test_ring_theorem_4_3 () =
  let schema =
    Theorems.theorem_4_3 ~base:(Token_ring.program rcfg)
      ~refined:(Token_ring.program rcfg) ~spec:(Token_ring.spec rcfg)
      ~faults:(Token_ring.corruption rcfg)
      ~invariant_s:(Token_ring.legitimate rcfg)
      ~invariant_r:(Token_ring.legitimate rcfg) ()
  in
  Alcotest.(check bool)
    (Fmt.str "4.3 on ring: %a" Theorems.pp_schema schema)
    true (Theorems.holds schema)

(* ------------------------------------------------------------------ *)
(* Ring mutex                                                          *)
(* ------------------------------------------------------------------ *)

let mcfg = Ring_mutex.make_config 3

let test_mutex_nonmasking () =
  Alcotest.(check bool) "mutex nonmasking tolerant" true
    (Tolerance.verdict
       (Tolerance.is_nonmasking (Ring_mutex.program mcfg)
          ~spec:(Ring_mutex.spec mcfg)
          ~invariant:(Ring_mutex.invariant mcfg)
          ~faults:(Ring_mutex.corruption mcfg)))

let test_mutex_broken () =
  Alcotest.(check bool) "exit that keeps the CS: not nonmasking" false
    (Tolerance.verdict
       (Tolerance.is_nonmasking (Ring_mutex.broken mcfg)
          ~spec:(Ring_mutex.spec mcfg)
          ~invariant:(Ring_mutex.invariant mcfg)
          ~faults:(Ring_mutex.corruption mcfg)))

let test_mutex_safety_in_invariant () =
  let _, outcome =
    Tolerance.refines_from (Ring_mutex.program mcfg) ~spec:(Ring_mutex.spec mcfg)
      ~invariant:(Ring_mutex.invariant mcfg)
  in
  Util.check_holds "mutex refines SPEC from S" outcome

let suite =
  ( "systems (Section 6 + substrates)",
    [
      Alcotest.test_case "TMR verdict matrix" `Quick test_tmr_matrix;
      Alcotest.test_case "TMR majority" `Quick test_tmr_majority;
      Alcotest.test_case "TMR detector witness" `Quick test_tmr_detector;
      Alcotest.test_case "TMR theorem 3.6" `Quick test_tmr_theorem_3_6;
      Alcotest.test_case "TMR corrector" `Quick test_tmr_corrector;
      Alcotest.test_case "TMR deadlock shape" `Quick test_tmr_deadlock_shape;
      Alcotest.test_case "Byzantine verdict matrix" `Slow test_byz_matrix;
      Alcotest.test_case "Byzantine fault-free run" `Quick
        test_byz_no_faults_terminates;
      Alcotest.test_case "two Byzantine breaks masking" `Slow
        test_byz_two_byzantine_breaks;
      Alcotest.test_case "Byzantine majority" `Quick test_byz_majority;
      Alcotest.test_case "Byzantine space size" `Quick test_byz_space_size;
      Alcotest.test_case "ring config validation" `Quick test_ring_config_validation;
      Alcotest.test_case "ring legitimacy" `Quick test_ring_legitimate;
      Alcotest.test_case "ring nonmasking" `Quick test_ring_nonmasking;
      Alcotest.test_case "ring not masking" `Quick test_ring_not_masking;
      Alcotest.test_case "ring is a corrector" `Quick test_ring_is_corrector;
      Alcotest.test_case "ring sizes" `Slow test_ring_sizes;
      Alcotest.test_case "ring theorem 4.3" `Quick test_ring_theorem_4_3;
      Alcotest.test_case "mutex nonmasking" `Slow test_mutex_nonmasking;
      Alcotest.test_case "mutex broken variant" `Slow test_mutex_broken;
      Alcotest.test_case "mutex invariant" `Quick test_mutex_safety_in_invariant;
    ] )
