(* End-to-end tests of [dcheck monitor]: spawn the real binary on
   recorded streams from the shipped example systems and pin down the
   exit-code contract (0 stream maintains safety / 1 violation observed /
   2 malformed stream or usage / 3 budget exhausted), the shape of the
   batch and summary output, and the --metrics snapshot.

   Streams come from [dcheck simulate --record] on the same corpus, so
   the tests also cover the writer/reader round trip under real fault
   schedules. *)

let dcheck = "../bin/dcheck.exe"
let corpus = "../examples/dc"

let read_file path = In_channel.with_open_bin path In_channel.input_all

let run_dcheck args ~out =
  let fd = Unix.openfile out [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let pid =
    Unix.create_process dcheck
      (Array.of_list (dcheck :: args))
      Unix.stdin fd fd
  in
  Unix.close fd;
  let _, status = Unix.waitpid [] pid in
  match status with
  | Unix.WEXITED c -> c
  | Unix.WSIGNALED sg -> Alcotest.fail (Fmt.str "killed by signal %d" sg)
  | Unix.WSTOPPED sg -> Alcotest.fail (Fmt.str "stopped by signal %d" sg)

let with_temp suffix k =
  let path = Filename.temp_file "detcor_monitor" suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> k path)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_contains out needle =
  Alcotest.(check bool)
    (Fmt.str "output contains %S" needle)
    true (contains out needle)

(* Record a stream for [file], then monitor it; returns the monitor's
   exit code and combined output. *)
let record_and_monitor ?(monitor_args = []) ?(sim_args = []) file =
  let dc = Filename.concat corpus file in
  with_temp ".stream" @@ fun stream ->
  with_temp ".out" @@ fun sim_out ->
  let code =
    run_dcheck
      ([ "simulate"; dc; "--runs"; "20"; "--steps"; "40"; "--fault-prob";
         "0.4"; "--record"; stream ]
      @ sim_args)
      ~out:sim_out
  in
  Alcotest.(check int) "simulate exits 0" 0 code;
  with_temp ".out" @@ fun mon_out ->
  let code =
    run_dcheck ([ "monitor"; dc; "--stream"; stream ] @ monitor_args) ~out:mon_out
  in
  (code, read_file mon_out)

let test_masking_clean () =
  let code, out = record_and_monitor "memory.dc" in
  Alcotest.(check int) "masking system monitors clean" 0 code;
  (* Tiny state space: Auto's work crossover keeps the reference
     evaluator (see [Syndrome.auto_min_work]). *)
  check_contains out "witnesses (reference)";
  check_contains out "batch 0: states=";
  check_contains out "safety violations: 0/20";
  check_contains out "fault localization:"

let test_intolerant_violates () =
  let code, out = record_and_monitor "memory_intolerant.dc" in
  Alcotest.(check int) "intolerant system monitors to 1" 1 code;
  check_contains out "safety violated at state";
  check_contains out "detection latency:  n="

(* Deterministic replay: the same stream monitors to byte-identical
   output. *)
let test_deterministic () =
  let dc = Filename.concat corpus "token_ring.dc" in
  with_temp ".stream" @@ fun stream ->
  with_temp ".out" @@ fun out ->
  let code =
    run_dcheck
      [ "simulate"; dc; "--runs"; "10"; "--steps"; "60"; "--fault-prob";
        "0.3"; "--record"; stream ]
      ~out
  in
  Alcotest.(check int) "simulate exits 0" 0 code;
  let monitor () =
    with_temp ".out" @@ fun mout ->
    let code = run_dcheck [ "monitor"; dc; "--stream"; stream ] ~out:mout in
    (code, read_file mout)
  in
  let c1, o1 = monitor () and c2, o2 = monitor () in
  Alcotest.(check int) "same exit" c1 c2;
  Alcotest.(check string) "byte-identical monitor output" o1 o2

(* A defect with records after it is corruption, not a torn tail, and
   stays fatal. *)
let test_corrupt_stream () =
  with_temp ".stream" @@ fun stream ->
  Out_channel.with_open_text stream (fun oc ->
      output_string oc
        "# detcor stream v1\nrun 0\ninit data=good present=true z1=false\n\
         wobble\nend maximal\n");
  with_temp ".out" @@ fun out ->
  let code =
    run_dcheck
      [ "monitor"; Filename.concat corpus "memory.dc"; "--stream"; stream ]
      ~out
  in
  Alcotest.(check int) "malformed stream exits 2" 2 code;
  check_contains (read_file out) "unrecognized record"

(* A recorder killed mid-write leaves a run without its 'end' line at
   EOF: the reader salvages the complete prefix (the run monitors as
   truncated) instead of failing, like Ledger.load on a torn tail. *)
let test_truncated_stream () =
  with_temp ".stream" @@ fun stream ->
  Out_channel.with_open_text stream (fun oc ->
      output_string oc
        "# detcor stream v1\nrun 0\ninit data=good present=true z1=false\n\
         step pm3\n");
  with_temp ".out" @@ fun out ->
  let code =
    run_dcheck
      [ "monitor"; Filename.concat corpus "memory.dc"; "--stream"; stream ]
      ~out
  in
  Alcotest.(check int) "torn tail tolerated" 0 code;
  let out = read_file out in
  check_contains out "torn record at end of stream";
  check_contains out "runs: 1"

(* The other torn-tail shape: the final line itself is a partial write.
   The line is dropped, the in-progress run is still salvaged. *)
let test_torn_final_line () =
  with_temp ".stream" @@ fun stream ->
  Out_channel.with_open_text stream (fun oc ->
      output_string oc
        "# detcor stream v1\nrun 0\ninit data=good present=true z1=false\n\
         step pm3\nste");
  with_temp ".out" @@ fun out ->
  let code =
    run_dcheck
      [ "monitor"; Filename.concat corpus "memory.dc"; "--stream"; stream ]
      ~out
  in
  Alcotest.(check int) "torn final line tolerated" 0 code;
  let out = read_file out in
  check_contains out "torn record at end of stream";
  check_contains out "runs: 1"

let test_missing_stream () =
  with_temp ".out" @@ fun out ->
  let code =
    run_dcheck
      [ "monitor"; Filename.concat corpus "memory.dc"; "--stream";
        "/nonexistent/stream.txt" ]
      ~out
  in
  Alcotest.(check int) "unreadable stream exits 2" 2 code

let test_timeout () =
  (* A long stream against a zero budget: exhaustion must surface as 3
     from inside stream processing. *)
  let dc = Filename.concat corpus "token_ring.dc" in
  with_temp ".stream" @@ fun stream ->
  with_temp ".out" @@ fun out ->
  let code =
    run_dcheck
      [ "simulate"; dc; "--runs"; "50"; "--steps"; "200"; "--fault-prob";
        "0.2"; "--record"; stream ]
      ~out
  in
  Alcotest.(check int) "simulate exits 0" 0 code;
  let code =
    run_dcheck
      [ "monitor"; dc; "--stream"; stream; "--timeout"; "0" ]
      ~out
  in
  Alcotest.(check int) "exhausted budget exits 3" 3 code

let test_metrics_snapshot () =
  (* ring5 is the smallest example past Auto's packing crossover, so the
     syndrome memo counters are live; fault-prob 0 keeps the stream clean
     (exit 0) and the record count exact. *)
  let dc = Filename.concat corpus "ring5.dc" in
  with_temp ".stream" @@ fun stream ->
  with_temp ".out" @@ fun out ->
  let code =
    run_dcheck
      [ "simulate"; dc; "--runs"; "10"; "--steps"; "30"; "--fault-prob";
        "0.0"; "--record"; stream ]
      ~out
  in
  Alcotest.(check int) "simulate exits 0" 0 code;
  with_temp ".json" @@ fun metrics ->
  let code =
    run_dcheck
      [ "monitor"; dc; "--stream"; stream; "--metrics"; metrics ]
      ~out
  in
  Alcotest.(check int) "monitor exits 0" 0 code;
  match Detcor_obs.Jsonx.of_string (read_file metrics) with
  | Error e -> Alcotest.fail (Fmt.str "--metrics unparseable: %s" e)
  | Ok json ->
    let counter name =
      match
        Option.bind
          (Detcor_obs.Jsonx.member "counters" json)
          (fun cs ->
            Option.bind (Detcor_obs.Jsonx.member name cs)
              Detcor_obs.Jsonx.to_int)
      with
      | Some n -> n
      | None -> Alcotest.fail (Fmt.str "counter %s missing" name)
    in
    Alcotest.(check int) "monitor.runs" 10 (counter "monitor.runs");
    Alcotest.(check bool)
      "monitor.records counts all states" true
      (counter "monitor.records" = 10 * 31);
    Alcotest.(check bool)
      "syndrome memo was exercised" true
      (counter "sim.syndrome.hits" + counter "sim.syndrome.misses" > 0)

let suite =
  ( "dcheck monitor (e2e)",
    [
      Alcotest.test_case "masking stream monitors clean" `Quick
        test_masking_clean;
      Alcotest.test_case "intolerant stream violates (exit 1)" `Quick
        test_intolerant_violates;
      Alcotest.test_case "monitoring is deterministic" `Quick test_deterministic;
      Alcotest.test_case "malformed stream (exit 2)" `Quick test_corrupt_stream;
      Alcotest.test_case "torn tail: missing 'end' tolerated" `Quick
        test_truncated_stream;
      Alcotest.test_case "torn tail: partial final line tolerated" `Quick
        test_torn_final_line;
      Alcotest.test_case "unreadable stream (exit 2)" `Quick test_missing_stream;
      Alcotest.test_case "zero budget (exit 3)" `Quick test_timeout;
      Alcotest.test_case "--metrics snapshot parses" `Quick
        test_metrics_snapshot;
    ] )
