(* Fuzzing the language front end and the dcheck exit-code contract.

   The front end (lexer → parser → elaborate, which runs the typechecker)
   must be total up to the error taxonomy: whatever bytes come in, the
   only exception allowed to escape is [Detcor_robust.Error.Detcor_error].
   A bare [Failure], [Invalid_argument], [Not_found] or [Stack_overflow]
   is a crash bug.  Two generators drive it: arbitrary byte strings, and
   random mutations of the valid corpus under examples/dc (which reach
   much deeper than random bytes).

   FUZZ_CASES (default 500) scales the number of generated inputs; CI
   pins QCHECK_SEED for reproducibility.  Crashing inputs are saved under
   fuzz-failures/ for replay.

   The exit-code contract (0 holds, 1 verification fails, 2 usage/parse
   error, 3 resource exhausted) is exercised end-to-end by spawning the
   dcheck binary on the bundled examples. *)

open Detcor_lang

let fuzz_cases =
  match Sys.getenv_opt "FUZZ_CASES" with
  | Some s -> (
    match int_of_string_opt s with Some n when n > 0 -> n | _ -> 500)
  | None -> 500

let save_failure src =
  let dir = "fuzz-failures" in
  (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
   with Sys_error _ -> ());
  let name = Fmt.str "%s/case-%08x.dc" dir (Hashtbl.hash src land 0xffffffff) in
  (try
     let oc = open_out name in
     output_string oc src;
     close_out oc
   with Sys_error _ -> ());
  name

(* The property under test: the front end either elaborates the input or
   rejects it through the taxonomy. *)
let front_end_total src =
  match Elaborate.load_string src with
  | (_ : Elaborate.elaborated) -> true
  | exception Detcor_robust.Error.Detcor_error _ -> true
  | exception e ->
    let file = save_failure src in
    QCheck.Test.fail_reportf "front end crashed with %s (input saved to %s)"
      (Printexc.to_string e) file

let arb_bytes =
  QCheck.make
    ~print:(fun s -> Fmt.str "%S" s)
    QCheck.Gen.(string_size ~gen:char (int_range 0 400))

(* ------------------------------------------------------------------ *)
(* Corpus mutation.                                                    *)
(* ------------------------------------------------------------------ *)

let corpus_dir = "../examples/dc"

let corpus =
  try
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".dc")
    |> List.sort String.compare
    |> List.map (fun f ->
           let ic = open_in (Filename.concat corpus_dir f) in
           let s = really_input_string ic (in_channel_length ic) in
           close_in ic;
           s)
  with Sys_error _ -> []

(* One to four random edits of a random corpus file: byte flips, slice
   deletion, slice duplication, truncation. *)
let mutant_gen rng =
  match corpus with
  | [] -> "program empty"
  | corpus ->
    let base = List.nth corpus (Random.State.int rng (List.length corpus)) in
    let buf = ref base in
    let edits = 1 + Random.State.int rng 4 in
    for _ = 1 to edits do
      let s = !buf in
      let n = String.length s in
      if n > 0 then
        match Random.State.int rng 4 with
        | 0 ->
          let b = Bytes.of_string s in
          Bytes.set b (Random.State.int rng n)
            (Char.chr (Random.State.int rng 256));
          buf := Bytes.to_string b
        | 1 ->
          let i = Random.State.int rng n in
          let len = Random.State.int rng (n - i) in
          buf := String.sub s 0 i ^ String.sub s (i + len) (n - i - len)
        | 2 ->
          let i = Random.State.int rng n in
          let len = Random.State.int rng (min 60 (n - i)) in
          buf := String.sub s 0 (i + len) ^ String.sub s i (n - i)
        | _ -> buf := String.sub s 0 (Random.State.int rng n)
    done;
    !buf

let arb_mutants = QCheck.make ~print:(fun s -> Fmt.str "%S" s) mutant_gen

(* ------------------------------------------------------------------ *)
(* Regression cases for specific front-end crash bugs.                 *)
(* ------------------------------------------------------------------ *)

let parse_error src =
  match Parser.parse_string src with
  | (_ : Ast.program) -> None
  | exception
      Detcor_robust.Error.Detcor_error
        (Detcor_robust.Error.Parse { line; col; msg }) ->
    Some (line, col, msg)

let test_oversized_literal () =
  (* Used to escape the lexer as Failure "int_of_string". *)
  match parse_error "program t\nvar x : 99999999999999999999..3" with
  | Some (line, _, msg) ->
    Alcotest.(check int) "located on line 2" 2 line;
    Alcotest.(check bool) "message names the literal" true
      (String.length msg > 0)
  | None -> Alcotest.fail "oversized literal accepted"

let test_deep_nesting () =
  (* Used to kill the parser with Stack_overflow. *)
  let deep = String.make 5000 '(' ^ "true" ^ String.make 5000 ')' in
  match parse_error (Fmt.str "program t\ninvariant %s" deep) with
  | Some _ -> ()
  | None -> Alcotest.fail "pathological nesting accepted"

let test_huge_range_rejected () =
  (* Used to materialize the whole value list before failing. *)
  Alcotest.(check bool) "huge range rejected as a type error" true
    (try
       ignore (Elaborate.load_string "program t\nvar x : 0..999999999");
       false
     with
    | Detcor_robust.Error.Detcor_error (Detcor_robust.Error.Type_error _) ->
      true)

(* ------------------------------------------------------------------ *)
(* The dcheck exit-code contract.                                      *)
(* ------------------------------------------------------------------ *)

let dcheck = "../bin/dcheck.exe"

let run_dcheck args =
  Sys.command
    (Fmt.str "%s %s >/dev/null 2>/dev/null" dcheck (String.concat " " args))

let test_exit_codes () =
  if not (Sys.file_exists dcheck) then
    Alcotest.fail (Fmt.str "dcheck binary not found at %s" dcheck)
  else begin
    Alcotest.(check int) "verify holds -> 0" 0
      (run_dcheck [ "verify"; corpus_dir ^ "/memory.dc" ]);
    Alcotest.(check int) "verify fails -> 1" 1
      (run_dcheck [ "verify"; corpus_dir ^ "/memory_intolerant.dc" ]);
    Alcotest.(check int) "tiny --timeout -> 3" 3
      (run_dcheck [ "verify"; "--timeout"; "0.01"; corpus_dir ^ "/ring5.dc" ]);
    Alcotest.(check int) "info over --limit -> 3" 3
      (run_dcheck [ "info"; "--limit"; "10"; corpus_dir ^ "/ring5.dc" ]);
    Alcotest.(check int) "usage error -> 2" 2
      (run_dcheck [ "verify"; "--no-such-flag" ]);
    let tmp = Filename.temp_file "dcheck_fuzz" ".dc" in
    let oc = open_out tmp in
    output_string oc "program t\nvar x : 99999999999999999999..3\n";
    close_out oc;
    Alcotest.(check int) "parse error -> 2" 2 (run_dcheck [ "verify"; tmp ]);
    Sys.remove tmp
  end

let suite =
  ( "frontend fuzz (taxonomy totality, exit codes)",
    [
      Util.qtest ~count:fuzz_cases "random bytes never crash the front end"
        arb_bytes front_end_total;
      Util.qtest ~count:fuzz_cases "mutated corpus never crashes the front end"
        arb_mutants front_end_total;
      Alcotest.test_case "oversized int literal located" `Quick
        test_oversized_literal;
      Alcotest.test_case "deep nesting rejected" `Quick test_deep_nesting;
      Alcotest.test_case "huge range rejected" `Quick test_huge_range_rejected;
      Alcotest.test_case "dcheck exit-code contract" `Quick test_exit_codes;
    ] )
