(* Tests for the live-telemetry subsystem: Jsonx round-trips (the wire
   format under every sink, the ledger and the metrics snapshot), the
   Prometheus exposition encoder and its parser inverse, the run
   ledger's crash-safe append/load, the in-process HTTP listener, the
   owner-domain gating of progress heartbeats, and — end to end on the
   real binary — the guarantee that sinks, metrics and the ledger are
   flushed on every exit path (clean, located error, budget trip,
   SIGINT). *)

open Detcor_obs

let dcheck = "../bin/dcheck.exe"
let corpus = "../examples/dc"

let read_file path = In_channel.with_open_bin path In_channel.input_all

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_contains out needle =
  Alcotest.(check bool)
    (Fmt.str "output contains %S" needle)
    true (contains out needle)

let with_temp suffix k =
  let path = Filename.temp_file "detcor_telemetry" suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> k path)

(* ------------------------------------------------------------------ *)
(* Jsonx round-trips                                                   *)
(* ------------------------------------------------------------------ *)

let test_jsonx_escapes () =
  let cases =
    [
      "plain";
      "q\"uote";
      "back\\slash";
      "new\nline\ttab\rret";
      "ctrl\x01\x1f";
      "utf8 déjà vu";
      "";
    ]
  in
  List.iter
    (fun s ->
      let doc = Jsonx.Obj [ ("k", Jsonx.Str s) ] in
      match Jsonx.of_string (Jsonx.to_string doc) with
      | Error e -> Alcotest.failf "escape %S does not parse back: %s" s e
      | Ok v ->
        Alcotest.(check (option string))
          (Fmt.str "string %S survives" s)
          (Some s)
          (Option.bind (Jsonx.member "k" v) Jsonx.to_str))
    cases

let test_jsonx_nested () =
  let doc =
    Jsonx.Obj
      [
        ( "a",
          Jsonx.List
            [
              Jsonx.Int 1;
              Jsonx.Obj [ ("b", Jsonx.List [ Jsonx.Null; Jsonx.Bool true ]) ];
              Jsonx.Float 2.5;
            ] );
        ("c", Jsonx.Obj [ ("d", Jsonx.Str "x"); ("e", Jsonx.Int (-7)) ]);
      ]
  in
  match Jsonx.of_string (Jsonx.to_string doc) with
  | Error e -> Alcotest.failf "nested document does not parse back: %s" e
  | Ok v ->
    Alcotest.(check string) "nested round-trip is identity"
      (Jsonx.to_string doc) (Jsonx.to_string v)

let test_jsonx_nonfinite () =
  (* NaN and infinities are unrepresentable in JSON; the writer must
     never emit them (standard parsers reject nan/inf tokens). *)
  List.iter
    (fun f ->
      let s = Jsonx.to_string (Jsonx.Obj [ ("v", Jsonx.Float f) ]) in
      Alcotest.(check bool)
        (Fmt.str "%h prints with no nan/inf token" f)
        false
        (contains s "nan" || contains s "inf");
      match Jsonx.of_string s with
      | Error e -> Alcotest.failf "%h output does not parse back: %s" f e
      | Ok _ -> ())
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let test_jsonx_malformed () =
  let deep = String.make 400 '[' in
  List.iter
    (fun s ->
      match Jsonx.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "malformed input %S parsed" s)
    [
      "";
      "{";
      "[1,]";
      "{\"k\":}";
      "{\"k\" 1}";
      "tru";
      "\"unterminated";
      "1 2";
      "{\"a\":1,}";
      "nan";
      deep;
    ]

let jsonx_gen =
  (* Exactly-representable trees only: no floats (printing may round),
     keys and strings over printable ASCII. *)
  let open QCheck.Gen in
  let str = small_string ~gen:(char_range ' ' '~') in
  fix
    (fun self depth ->
      let leaf =
        oneof
          [
            return Jsonx.Null;
            map (fun b -> Jsonx.Bool b) bool;
            map (fun i -> Jsonx.Int i) small_signed_int;
            map (fun s -> Jsonx.Str s) str;
          ]
      in
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 1,
              map (fun xs -> Jsonx.List xs) (list_size (0 -- 4) (self (depth - 1)))
            );
            ( 1,
              map
                (fun kvs -> Jsonx.Obj kvs)
                (list_size (0 -- 4) (pair str (self (depth - 1)))) );
          ])
    3

let test_jsonx_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random trees round-trip" ~count:500
       (QCheck.make jsonx_gen ~print:Jsonx.to_string)
       (fun doc ->
         match Jsonx.of_string (Jsonx.to_string doc) with
         | Error _ -> false
         | Ok v -> Jsonx.to_string v = Jsonx.to_string doc))

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)
(* ------------------------------------------------------------------ *)

let test_exposition_lines_parse () =
  (* Populate one instrument of each kind (dots in names exercise the
     mangling) and require every rendered line to be a comment or a
     well-formed sample. *)
  Metrics.incr ~by:41 (Metrics.counter "test.expose.counter");
  Metrics.set_gauge (Metrics.gauge "test.expose.gauge") (-3);
  Metrics.set_callback "test.expose.callback" (fun () -> 2.5);
  let h = Metrics.histogram ~buckets:[| 10; 100 |] "test.expose.hist" in
  List.iter (Metrics.observe h) [ 5; 50; 500 ];
  let body = Expose.render () in
  let samples = ref 0 in
  List.iter
    (fun line ->
      if String.trim line <> "" then
        match Expose.parse_line line with
        | Error e -> Alcotest.failf "line %S does not parse: %s" line e
        | Ok None -> ()
        | Ok (Some _) -> incr samples)
    (String.split_on_char '\n' body);
  Alcotest.(check bool) "some samples rendered" true (!samples > 0);
  check_contains body "test_expose_counter_total 41";
  check_contains body "test_expose_gauge -3";
  check_contains body "test_expose_callback 2.5";
  check_contains body "test_expose_hist_bucket{le=\"10\"} 1";
  check_contains body "test_expose_hist_bucket{le=\"+Inf\"} 3";
  check_contains body "test_expose_hist_count 3"

let test_exposition_qcheck =
  (* Whatever the registry name, the rendered sample line must parse
     back with the mangled name and exact value. *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"mangled names render parseable lines" ~count:300
       QCheck.(string_of_size (Gen.int_range 1 30))
       (fun name ->
         QCheck.assume (name <> "");
         let metric = Expose.metric_name name in
         let ok_head c =
           (c >= 'a' && c <= 'z')
           || (c >= 'A' && c <= 'Z')
           || c = '_' || c = ':'
         in
         let ok_tail c = ok_head c || (c >= '0' && c <= '9') in
         metric <> ""
         && ok_head metric.[0]
         && String.for_all ok_tail metric
         &&
         let line = Fmt.str "%s 42" metric in
         match Expose.parse_line line with
         | Ok (Some s) -> s.Expose.metric = metric && s.Expose.value = 42.0
         | _ -> false))

let test_exposition_label_escaping () =
  match
    Expose.parse_line
      "m{path=\"a\\\\b\",msg=\"q\\\"uote\\nline\"} 1.5"
  with
  | Ok (Some s) ->
    Alcotest.(check string) "metric" "m" s.Expose.metric;
    Alcotest.(check (list (pair string string)))
      "escaped labels decode"
      [ ("path", "a\\b"); ("msg", "q\"uote\nline") ]
      s.Expose.labels;
    Alcotest.(check (float 0.0)) "value" 1.5 s.Expose.value
  | Ok None -> Alcotest.fail "sample line read as comment"
  | Error e -> Alcotest.failf "escaped labels do not parse: %s" e

(* ------------------------------------------------------------------ *)
(* Ledger                                                              *)
(* ------------------------------------------------------------------ *)

let sample_entry =
  {
    Ledger.timestamp = 1700000000.25;
    session = "deadbeef01234567";
    subcommand = "verify";
    file = "ring5.dc";
    verdict = "holds";
    exit_code = 0;
    duration_s = 1.5;
    peak_rss_bytes = 1 lsl 20;
    states = 4375;
    budget_trip = None;
    telemetry_port = None;
  }

let test_ledger_roundtrip () =
  let e2 =
    {
      sample_entry with
      Ledger.verdict = "exhausted";
      exit_code = 3;
      budget_trip = Some "time";
    }
  in
  List.iter
    (fun e ->
      match Ledger.of_json (Ledger.to_json e) with
      | None -> Alcotest.fail "entry does not decode"
      | Some e' ->
        Alcotest.(check string) "json round-trip is identity"
          (Jsonx.to_string (Ledger.to_json e))
          (Jsonx.to_string (Ledger.to_json e')))
    [ sample_entry; e2 ]

let test_ledger_append_load () =
  with_temp ".jsonl" @@ fun path ->
  Ledger.append ~path sample_entry;
  Ledger.append ~path { sample_entry with Ledger.subcommand = "monitor" };
  (* A torn or foreign line must be skipped, not fatal. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"torn\":tru\n";
  close_out oc;
  Ledger.append ~path { sample_entry with Ledger.exit_code = 1 };
  let entries, malformed = Ledger.load ~path in
  Alcotest.(check int) "well-formed entries survive" 3 (List.length entries);
  Alcotest.(check int) "malformed lines counted" 1 malformed;
  Alcotest.(check (list string))
    "file order preserved" [ "verify"; "monitor"; "verify" ]
    (List.map (fun e -> e.Ledger.subcommand) entries)

(* ------------------------------------------------------------------ *)
(* HTTP listener                                                       *)
(* ------------------------------------------------------------------ *)

let http_get port path =
  let sock = Unix.socket PF_INET SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Fmt.str "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
          path
      in
      ignore (Unix.write_substring sock req 0 (String.length req));
      let buf = Buffer.create 4096 and chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read sock chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      Buffer.contents buf)

let test_telemetry_scrape () =
  Metrics.incr ~by:7 (Metrics.counter "test.scrape.counter");
  match Telemetry.start "127.0.0.1:0" with
  | Error e -> Alcotest.failf "listener failed to start: %s" e
  | Ok t ->
    Fun.protect ~finally:(fun () -> Telemetry.stop t) @@ fun () ->
    let port = Telemetry.port t in
    Alcotest.(check bool) "kernel assigned a real port" true (port > 0);
    let resp = http_get port "/metrics" in
    check_contains resp "200 OK";
    check_contains resp "test_scrape_counter_total";
    (* Every body line must parse; scrape twice to cover the serial
       accept loop. *)
    (match
       let marker = "\r\n\r\n" in
       let rec find i =
         if i + 4 > String.length resp then None
         else if String.sub resp i 4 = marker then Some (i + 4)
         else find (i + 1)
       in
       find 0
     with
    | None -> Alcotest.fail "no header/body separator in response"
    | Some body_at ->
      String.split_on_char '\n'
        (String.sub resp body_at (String.length resp - body_at))
      |> List.iter (fun line ->
             if String.trim line <> "" then
               match Expose.parse_line line with
               | Error e -> Alcotest.failf "scrape line %S: %s" line e
               | Ok _ -> ()));
    let resp2 = http_get port "/nope" in
    check_contains resp2 "404"

(* ------------------------------------------------------------------ *)
(* Progress heartbeat gating                                           *)
(* ------------------------------------------------------------------ *)

let test_progress_owner_gating () =
  Progress.start ();
  Fun.protect ~finally:Progress.stop @@ fun () ->
  (* Owner-domain phases publish their final readings on leave. *)
  Progress.with_phase "test.owner"
    (fun () -> [ ("test.progress.items", 7) ])
    (fun () -> ());
  Alcotest.(check int) "owner phase published" 7
    (Metrics.gauge_value (Metrics.gauge "test.progress.items"));
  (* Worker-domain phases and pulses are inert. *)
  let d =
    Stdlib.Domain.spawn (fun () ->
        Progress.with_phase "test.worker"
          (fun () -> [ ("test.progress.items", 99) ])
          (fun () -> Progress.pulse ()))
  in
  Stdlib.Domain.join d;
  Alcotest.(check int) "worker phase gated out" 7
    (Metrics.gauge_value (Metrics.gauge "test.progress.items"))

let test_progress_disarmed () =
  (* Disarmed phases are inert tokens: nothing publishes. *)
  Metrics.set_gauge (Metrics.gauge "test.progress.items") 0;
  Alcotest.(check bool) "disarmed by default" false (Progress.armed ());
  Progress.with_phase "test.disarmed"
    (fun () -> [ ("test.progress.items", 123) ])
    (fun () -> Progress.pulse ());
  Alcotest.(check int) "no publication while disarmed" 0
    (Metrics.gauge_value (Metrics.gauge "test.progress.items"))

(* ------------------------------------------------------------------ *)
(* Exit-path flushing, end to end on the real binary                   *)
(* ------------------------------------------------------------------ *)

let run_dcheck ?(signal_after = -1.0) args ~out =
  let fd = Unix.openfile out [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let pid =
    Unix.create_process dcheck
      (Array.of_list (dcheck :: args))
      Unix.stdin fd fd
  in
  Unix.close fd;
  if signal_after >= 0.0 then begin
    Unix.sleepf signal_after;
    Unix.kill pid Sys.sigint
  end;
  let _, status = Unix.waitpid [] pid in
  match status with
  | Unix.WEXITED c -> c
  | Unix.WSIGNALED sg -> Alcotest.fail (Fmt.str "killed by signal %d" sg)
  | Unix.WSTOPPED sg -> Alcotest.fail (Fmt.str "stopped by signal %d" sg)

let check_metrics_parse path =
  match Jsonx.of_string (read_file path) with
  | Error e -> Alcotest.failf "--metrics snapshot unparseable: %s" e
  | Ok _ -> ()

let check_ledger path ~sub ~verdict ~exit_code =
  let entries, malformed = Ledger.load ~path in
  Alcotest.(check int) "no malformed ledger lines" 0 malformed;
  match entries with
  | [ e ] ->
    Alcotest.(check string) "ledger subcommand" sub e.Ledger.subcommand;
    Alcotest.(check string) "ledger verdict" verdict e.Ledger.verdict;
    Alcotest.(check int) "ledger exit code" exit_code e.Ledger.exit_code;
    Alcotest.(check bool) "ledger duration sane" true (e.Ledger.duration_s >= 0.)
  | es -> Alcotest.failf "expected 1 ledger entry, found %d" (List.length es)

let test_flush_located_error () =
  with_temp ".dc" @@ fun bad ->
  Out_channel.with_open_text bad (fun oc ->
      output_string oc "program broken !!! syntax\n");
  with_temp ".json" @@ fun metrics ->
  with_temp ".jsonl" @@ fun ledger ->
  with_temp ".out" @@ fun out ->
  let code =
    run_dcheck
      [ "verify"; bad; "--metrics"; metrics; "--ledger"; ledger ]
      ~out
  in
  Alcotest.(check int) "located error exits 2" 2 code;
  check_metrics_parse metrics;
  check_ledger ledger ~sub:"verify" ~verdict:"error" ~exit_code:2

let test_flush_budget_trip () =
  let dc = Filename.concat corpus "token_ring.dc" in
  with_temp ".stream" @@ fun stream ->
  with_temp ".out" @@ fun out ->
  let code =
    run_dcheck
      [ "simulate"; dc; "--runs"; "20"; "--steps"; "60"; "--fault-prob";
        "0.3"; "--record"; stream ]
      ~out
  in
  Alcotest.(check int) "simulate exits 0" 0 code;
  with_temp ".json" @@ fun metrics ->
  with_temp ".jsonl" @@ fun ledger ->
  let code =
    run_dcheck
      [ "monitor"; dc; "--stream"; stream; "--timeout"; "0"; "--metrics";
        metrics; "--ledger"; ledger ]
      ~out
  in
  Alcotest.(check int) "budget trip exits 3" 3 code;
  check_metrics_parse metrics;
  check_ledger ledger ~sub:"monitor" ~verdict:"exhausted" ~exit_code:3;
  let entries, _ = Ledger.load ~path:ledger in
  Alcotest.(check (option string))
    "exhausted dimension recorded" (Some "time")
    (List.hd entries).Ledger.budget_trip

let test_flush_sigint () =
  (* A simulate run sized to outlive the signal by a wide margin; the
     SIGINT handler must still flush metrics and append the ledger row
     on the way out (exit 130). *)
  let dc = Filename.concat corpus "ring5.dc" in
  with_temp ".json" @@ fun metrics ->
  with_temp ".jsonl" @@ fun ledger ->
  with_temp ".out" @@ fun out ->
  let code =
    run_dcheck ~signal_after:0.4
      [ "simulate"; dc; "--runs"; "10000000"; "--steps"; "100";
        "--fault-prob"; "0.3"; "--metrics"; metrics; "--ledger"; ledger ]
      ~out
  in
  Alcotest.(check int) "SIGINT exits 130" 130 code;
  check_metrics_parse metrics;
  check_ledger ledger ~sub:"simulate" ~verdict:"interrupted" ~exit_code:130

let test_telemetry_cli_clean () =
  with_temp ".jsonl" @@ fun ledger ->
  with_temp ".out" @@ fun out ->
  let code =
    run_dcheck
      [ "verify"; Filename.concat corpus "memory.dc"; "--telemetry";
        "127.0.0.1:0"; "--ledger"; ledger ]
      ~out
  in
  Alcotest.(check int) "verify with telemetry exits 0" 0 code;
  check_contains (read_file out) "telemetry on http://127.0.0.1:";
  check_ledger ledger ~sub:"verify" ~verdict:"holds" ~exit_code:0

let test_report_cli () =
  with_temp ".jsonl" @@ fun ledger ->
  with_temp ".out" @@ fun out ->
  let dc = Filename.concat corpus "memory.dc" in
  Alcotest.(check int) "first run exits 0" 0
    (run_dcheck [ "verify"; dc; "--ledger"; ledger ] ~out);
  Alcotest.(check int) "second run exits 0" 0
    (run_dcheck [ "components"; dc; "--ledger"; ledger ] ~out);
  let code = run_dcheck [ "report"; ledger ] ~out in
  Alcotest.(check int) "report exits 0" 0 code;
  let output = read_file out in
  check_contains output "2 runs";
  check_contains output "verify";
  check_contains output "components";
  check_contains output "memory.dc"

let suite =
  ( "telemetry",
    [
      Alcotest.test_case "jsonx escapes round-trip" `Quick test_jsonx_escapes;
      Alcotest.test_case "jsonx nested round-trip" `Quick test_jsonx_nested;
      Alcotest.test_case "jsonx non-finite floats" `Quick test_jsonx_nonfinite;
      Alcotest.test_case "jsonx malformed inputs rejected" `Quick
        test_jsonx_malformed;
      test_jsonx_qcheck;
      Alcotest.test_case "exposition lines parse back" `Quick
        test_exposition_lines_parse;
      test_exposition_qcheck;
      Alcotest.test_case "exposition label escaping" `Quick
        test_exposition_label_escaping;
      Alcotest.test_case "ledger json round-trip" `Quick test_ledger_roundtrip;
      Alcotest.test_case "ledger append/load tolerates torn lines" `Quick
        test_ledger_append_load;
      Alcotest.test_case "http listener serves the registry" `Quick
        test_telemetry_scrape;
      Alcotest.test_case "heartbeats are owner-gated" `Quick
        test_progress_owner_gating;
      Alcotest.test_case "heartbeats disarmed are inert" `Quick
        test_progress_disarmed;
      Alcotest.test_case "flush on located error (exit 2)" `Quick
        test_flush_located_error;
      Alcotest.test_case "flush on budget trip (exit 3)" `Quick
        test_flush_budget_trip;
      Alcotest.test_case "flush on SIGINT (exit 130)" `Quick test_flush_sigint;
      Alcotest.test_case "verify --telemetry end to end" `Quick
        test_telemetry_cli_clean;
      Alcotest.test_case "dcheck report summarizes the ledger" `Quick
        test_report_cli;
    ] )
