let () =
  Alcotest.run "detcor"
    [
      Test_kernel.suite;
      Test_semantics.suite;
      Test_engine.suite;
      Test_engine_diff.suite;
      Test_spec.suite;
      Test_core.suite;
      Test_systems.suite;
      Test_synthesis.suite;
      Test_synthesis_diff.suite;
      Test_lang.suite;
      Test_sim.suite;
      Test_monitor_diff.suite;
      Test_monitor_cli.suite;
      Test_obs.suite;
      Test_extensions.suite;
      Test_systems2.suite;
      Test_random.suite;
      Test_termination.suite;
      Test_reset.suite;
      Test_misc.suite;
      Test_frontend_fuzz.suite;
      Test_checkpoint.suite;
      Test_chaos.suite;
      Test_telemetry.suite;
    ]
