(* Tests for the serve stack: the Spool and Watchdog helpers as units,
   the protocol codec as a round-trip, and the daemon end to end —
   spawn the real [dcheck serve] on a temp spool, drive it with the
   real client, and pin down completion, result caching, admission
   control, retry-with-backoff under injected worker crashes, graceful
   shutdown, and crash adoption (kill -9 the daemon mid-synthesis,
   restart on the same spool, demand the adopted job resume to the
   undisturbed bytes and the repeat submission hit the cache). *)

module Spool = Detcor_robust.Spool
module Watchdog = Detcor_robust.Watchdog
module Proto = Detcor_serve.Proto
module Client = Detcor_serve.Client
module Jsonx = Detcor_obs.Jsonx

let dcheck = "../bin/dcheck.exe"
let corpus = "../examples/dc"
let read_file path = In_channel.with_open_bin path In_channel.input_all

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let with_temp_dir k =
  let path = Filename.temp_file "detcor_serve" ".d" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  let rec rm_rf p =
    if Sys.is_directory p then begin
      Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect
    ~finally:(fun () -> try rm_rf path with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> k path)

(* ------------------------------------------------------------------ *)
(* Spool.                                                              *)
(* ------------------------------------------------------------------ *)

let test_spool_roundtrip () =
  with_temp_dir @@ fun dir ->
  Spool.save ~dir ~name:"job-000002" "two";
  Spool.save ~dir ~name:"job-000001" "one";
  Spool.save ~dir ~name:"job-000001" "one'";
  let records, torn = Spool.load ~dir ~decode:Option.some in
  Alcotest.(check int) "no torn records" 0 torn;
  Alcotest.(check (list (pair string string)))
    "records in name order, last write wins"
    [ ("job-000001", "one'"); ("job-000002", "two") ]
    records;
  Alcotest.(check bool) "mem sees saved" true (Spool.mem ~dir ~name:"job-000002");
  Spool.remove ~dir ~name:"job-000002";
  Alcotest.(check bool) "removed" false (Spool.mem ~dir ~name:"job-000002");
  Alcotest.(check (option string))
    "load_one" (Some "one'")
    (Spool.load_one ~dir ~name:"job-000001")

let test_spool_torn () =
  with_temp_dir @@ fun dir ->
  Spool.save ~dir ~name:"good" "ok";
  Spool.save ~dir ~name:"bad" "garbage";
  (* A decoder that rejects (or blows up on) a record marks it torn,
     never fatal — the Ledger.load contract. *)
  let decode s = if s = "ok" then Some s else failwith "boom" in
  let records, torn = Spool.load ~dir ~decode in
  Alcotest.(check int) "torn counted" 1 torn;
  Alcotest.(check (list (pair string string)))
    "good record survives" [ ("good", "ok") ] records;
  (* Leftover temp files from a crashed writer are swept, records kept. *)
  Out_channel.with_open_bin
    (Filename.concat dir "good.rec.999.tmp")
    (fun oc -> Out_channel.output_string oc "partial");
  Spool.clean_tmp ~dir;
  Alcotest.(check bool) "record survives tmp sweep" true
    (Spool.mem ~dir ~name:"good");
  Alcotest.(check bool) "tmp swept" false
    (Sys.file_exists (Filename.concat dir "good.rec.999.tmp"))

(* ------------------------------------------------------------------ *)
(* Watchdog policy.                                                    *)
(* ------------------------------------------------------------------ *)

let test_watchdog_policy () =
  let p =
    {
      Watchdog.max_retries = 3;
      backoff_base_s = 0.2;
      backoff_factor = 2.0;
      backoff_max_s = 0.5;
      watchdog_s = Some 10.0;
    }
  in
  Alcotest.(check (option (float 1e-9)))
    "retry 1" (Some 0.2)
    (Watchdog.retry_delay p ~attempt:1);
  Alcotest.(check (option (float 1e-9)))
    "retry 2 doubles" (Some 0.4)
    (Watchdog.retry_delay p ~attempt:2);
  Alcotest.(check (option (float 1e-9)))
    "retry 3 capped" (Some 0.5)
    (Watchdog.retry_delay p ~attempt:3);
  Alcotest.(check (option (float 1e-9)))
    "out of retries" None
    (Watchdog.retry_delay p ~attempt:4);
  Alcotest.(check bool) "within watchdog" false
    (Watchdog.expired p ~started_s:100.0 ~now_s:109.9);
  Alcotest.(check bool) "past watchdog" true
    (Watchdog.expired p ~started_s:100.0 ~now_s:110.1);
  Alcotest.(check bool) "no watchdog never expires" false
    (Watchdog.expired Watchdog.default_policy ~started_s:0.0 ~now_s:1e9)

(* ------------------------------------------------------------------ *)
(* Protocol codec.                                                     *)
(* ------------------------------------------------------------------ *)

let test_proto_roundtrip () =
  let reqs =
    [
      Proto.Submit
        { tenant = "alice"; kind = Proto.Synthesize; file = "p.dc";
          argv = [ "--tolerance"; "masking" ] };
      Proto.Status 7;
      Proto.Result { id = 7; wait = true };
      Proto.Cancel 9;
      Proto.List_jobs;
      Proto.Metrics;
      Proto.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      match Proto.request_of_json (Proto.request_to_json req) with
      | Ok req' ->
        Alcotest.(check bool) "request round-trips" true (req = req')
      | Error m -> Alcotest.fail m)
    reqs;
  let job =
    {
      Proto.id = 3; tenant = "bob"; kind = Proto.Verify; file = "q.dc";
      argv = [ "--workers"; "2" ]; state = Proto.Preempting; attempts = 2;
      preemptions = 1; exit_code = None; cache = Some "miss";
    }
  in
  let replies =
    [
      Proto.Accepted job;
      Proto.Job job;
      Proto.Jobs [ job; { job with Proto.id = 4; state = Proto.Done } ];
      Proto.Outcome { job = { job with Proto.state = Proto.Done }; output = "v\n" };
      Proto.Text "metrics\n";
      Proto.Overloaded { retry_after_s = 0.5 };
      Proto.Bad "nope";
    ]
  in
  List.iter
    (fun reply ->
      match Proto.reply_of_json (Proto.reply_to_json reply) with
      | Ok reply' ->
        Alcotest.(check bool) "reply round-trips" true (reply = reply')
      | Error m -> Alcotest.fail m)
    replies

(* ------------------------------------------------------------------ *)
(* Daemon end to end.                                                  *)
(* ------------------------------------------------------------------ *)

(* Spawn [dcheck serve] and wait for its listen line.  Returns the pid
   and address. *)
let start_daemon ?(env = [||]) ~spool ~log args =
  let fd = Unix.openfile log [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let pid =
    Unix.create_process_env dcheck
      (Array.of_list ((dcheck :: [ "serve"; "--spool"; spool ]) @ args))
      (Array.append (Unix.environment ()) env)
      Unix.stdin fd fd
  in
  Unix.close fd;
  let deadline = Unix.gettimeofday () +. 10.0 in
  let prefix = "dcheck: serving on " in
  let rec wait_addr () =
    if Unix.gettimeofday () > deadline then begin
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      Alcotest.fail ("daemon never listened; log: " ^ read_file log)
    end;
    let listen_line =
      read_file log |> String.split_on_char '\n'
      |> List.find_opt (String.starts_with ~prefix)
    in
    match listen_line with
    | Some line ->
      String.sub line (String.length prefix)
        (String.length line - String.length prefix)
    | None ->
      Unix.sleepf 0.05;
      wait_addr ()
  in
  (pid, wait_addr ())

let stop_daemon pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let rpc_ok addr req =
  match Client.oneshot ~addr req with
  | Ok reply -> reply
  | Error m -> Alcotest.fail ("rpc failed: " ^ m)

let submit addr ?(tenant = "t") ?(argv = []) kind file =
  match rpc_ok addr (Proto.Submit { tenant; kind; file; argv }) with
  | Proto.Accepted j -> j
  | Proto.Overloaded _ -> Alcotest.fail "unexpected overloaded"
  | _ -> Alcotest.fail "unexpected submit reply"

let result_wait addr id =
  match rpc_ok addr (Proto.Result { id; wait = true }) with
  | Proto.Outcome { job; output } -> (job, output)
  | _ -> Alcotest.fail "result --wait did not return an outcome"

let memory_dc = Filename.concat corpus "memory.dc"
let ring5_dc = Filename.concat corpus "ring5.dc"

let test_daemon_basics () =
  with_temp_dir @@ fun spool ->
  with_temp_dir @@ fun logs ->
  let log = Filename.concat logs "serve.log" in
  let pid, addr =
    start_daemon ~spool ~log [ "--slots"; "2"; "--tenant-max"; "4" ]
  in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  (* Submit, wait, verdict. *)
  let j = submit addr Proto.Verify memory_dc in
  Alcotest.(check bool) "fresh submit is a miss" true (j.Proto.cache = Some "miss");
  let done_j, output = result_wait addr j.Proto.id in
  Alcotest.(check bool) "job done" true (done_j.Proto.state = Proto.Done);
  Alcotest.(check (option int)) "verdict holds" (Some 0) done_j.Proto.exit_code;
  Alcotest.(check bool) "output has the verdict" true
    (contains output "VERDICT");
  (* The identical submission is served from the result cache. *)
  let j2 = submit addr Proto.Verify memory_dc in
  Alcotest.(check bool) "repeat submit is a cache hit" true
    (j2.Proto.cache = Some "hit" && j2.Proto.state = Proto.Done);
  let _, output2 = result_wait addr j2.Proto.id in
  Alcotest.(check string) "cached bytes identical" output output2;
  (* A different argv is a different key. *)
  let j3 = submit addr ~argv:[ "--tolerance"; "failsafe" ] Proto.Verify memory_dc in
  Alcotest.(check bool) "changed argv misses" true (j3.Proto.cache = Some "miss");
  (* Tenant quota: live jobs beyond --tenant-max are refused typed.
     Submissions land within a scheduler tick, so all four fillers are
     still live when the fifth arrives. *)
  List.iter
    (fun i ->
      match
        rpc_ok addr
          (Proto.Submit
             { tenant = "greedy"; kind = Proto.Simulate; file = ring5_dc;
               argv = [ "--runs"; string_of_int (50 + i) ] })
      with
      | Proto.Accepted _ -> ()
      | _ -> Alcotest.fail "filler submit refused")
    [ 0; 1; 2; 3 ];
  (match
     rpc_ok addr
       (Proto.Submit
          { tenant = "greedy"; kind = Proto.Simulate; file = ring5_dc;
            argv = [ "--runs"; "42" ] })
   with
  | Proto.Overloaded { retry_after_s } ->
    Alcotest.(check bool) "retry hint positive" true (retry_after_s > 0.0)
  | _ -> Alcotest.fail "tenant quota not enforced");
  (* Status and list see every job; metrics is a Prometheus page. *)
  (match rpc_ok addr (Proto.Status j.Proto.id) with
  | Proto.Job _ -> ()
  | _ -> Alcotest.fail "status");
  (match rpc_ok addr Proto.List_jobs with
  | Proto.Jobs js ->
    Alcotest.(check bool) "list has all jobs" true (List.length js >= 7)
  | _ -> Alcotest.fail "list");
  (match rpc_ok addr Proto.Metrics with
  | Proto.Text t ->
    Alcotest.(check bool) "metrics exposition" true
      (contains t "serve_jobs_submitted_total")
  | _ -> Alcotest.fail "metrics");
  (* Graceful protocol shutdown: drain and exit 0. *)
  (match rpc_ok addr Proto.Shutdown with
  | Proto.Text _ -> ()
  | _ -> Alcotest.fail "shutdown");
  let _, status = Unix.waitpid [] pid in
  Alcotest.(check bool) "daemon drained to exit 0" true
    (status = Unix.WEXITED 0)

let test_daemon_chaos_retry () =
  with_temp_dir @@ fun spool ->
  with_temp_dir @@ fun logs ->
  let log = Filename.concat logs "serve.log" in
  (* Every worker attempt crashes at the injected dcheck.job site: the
     supervisor must retry with backoff, then mark the job failed. *)
  let pid, addr =
    start_daemon
      ~env:[| "DETCOR_FAILPOINTS=dcheck.job=1.0" |]
      ~spool ~log
      [ "--slots"; "1"; "--retries"; "2" ]
  in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  let j = submit addr Proto.Verify memory_dc in
  let done_j, output = result_wait addr j.Proto.id in
  Alcotest.(check bool) "retries exhausted -> failed" true
    (done_j.Proto.state = Proto.Failed);
  Alcotest.(check (option int)) "injected deaths exit 125" (Some 125)
    done_j.Proto.exit_code;
  Alcotest.(check int) "one attempt plus two retries" 3 done_j.Proto.attempts;
  Alcotest.(check bool) "output names the failpoint" true
    (contains output "dcheck.job")

(* The CI smoke scenario, in-process: kill -9 the daemon mid-synthesis,
   restart on the same spool, and demand the adopted job resume to the
   bytes an undisturbed run produces — then hit the cache on repeat. *)
let test_daemon_kill9_adoption () =
  with_temp_dir @@ fun spool ->
  with_temp_dir @@ fun logs ->
  (* The undisturbed reference bytes. *)
  let direct = Filename.concat logs "direct.out" in
  let fd = Unix.openfile direct [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let dpid =
    Unix.create_process dcheck
      [| dcheck; "synthesize"; ring5_dc; "--tolerance"; "nonmasking" |]
      Unix.stdin fd fd
  in
  Unix.close fd;
  let _, dstatus = Unix.waitpid [] dpid in
  Alcotest.(check bool) "direct run exits 0" true (dstatus = Unix.WEXITED 0);
  let expected = read_file direct in
  let log1 = Filename.concat logs "serve1.log" in
  let pid1, addr1 = start_daemon ~spool ~log:log1 [ "--slots"; "1" ] in
  let j =
    submit addr1 ~argv:[ "--tolerance"; "nonmasking" ] Proto.Synthesize
      ring5_dc
  in
  (* Let the worker make some checkpointed progress, then murder the
     daemon outright. *)
  Unix.sleepf 0.3;
  stop_daemon pid1;
  (* Restart on the same spool: the job must be re-adopted and finish. *)
  let log2 = Filename.concat logs "serve2.log" in
  let pid2, addr2 = start_daemon ~spool ~log:log2 [ "--slots"; "1" ] in
  Fun.protect ~finally:(fun () -> stop_daemon pid2) @@ fun () ->
  let done_j, output = result_wait addr2 j.Proto.id in
  Alcotest.(check bool) "adopted job completes" true
    (done_j.Proto.state = Proto.Done);
  Alcotest.(check (option int)) "verdict intact" (Some 0) done_j.Proto.exit_code;
  Alcotest.(check string) "resumed bytes identical to undisturbed run"
    expected output;
  let j2 =
    submit addr2 ~argv:[ "--tolerance"; "nonmasking" ] Proto.Synthesize
      ring5_dc
  in
  Alcotest.(check bool) "repeat submit after restart hits the cache" true
    (j2.Proto.cache = Some "hit")

(* An interactive verify arriving with every slot busy preempts the
   batch worker: SIGTERM, checkpoint, requeue at the front.  The
   preempted job's resumed verdict must match an undisturbed run
   byte for byte. *)
let test_daemon_preempt () =
  with_temp_dir @@ fun spool ->
  with_temp_dir @@ fun logs ->
  let sim_argv = [ "--runs"; "2000"; "--steps"; "200"; "--seed"; "7" ] in
  let direct = Filename.concat logs "direct.out" in
  let fd = Unix.openfile direct [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let dpid =
    Unix.create_process dcheck
      (Array.of_list ((dcheck :: [ "simulate"; ring5_dc ]) @ sim_argv))
      Unix.stdin fd fd
  in
  Unix.close fd;
  let _, dstatus = Unix.waitpid [] dpid in
  Alcotest.(check bool) "direct run exits 0" true (dstatus = Unix.WEXITED 0);
  let expected = read_file direct in
  let log = Filename.concat logs "serve.log" in
  let pid, addr = start_daemon ~spool ~log [ "--slots"; "1" ] in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  let batch = submit addr ~argv:sim_argv Proto.Simulate ring5_dc in
  (* Wait until the batch worker holds the only slot. *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec wait_running () =
    if Unix.gettimeofday () > deadline then
      Alcotest.fail "batch job never started";
    match rpc_ok addr (Proto.Status batch.Proto.id) with
    | Proto.Job j when j.Proto.state = Proto.Running -> ()
    | _ ->
      Unix.sleepf 0.02;
      wait_running ()
  in
  wait_running ();
  let iv = submit addr Proto.Verify memory_dc in
  let iv_done, iv_out = result_wait addr iv.Proto.id in
  Alcotest.(check bool) "interactive verify completes" true
    (iv_done.Proto.state = Proto.Done);
  Alcotest.(check bool) "interactive output has the verdict" true
    (contains iv_out "VERDICT");
  let batch_done, batch_out = result_wait addr batch.Proto.id in
  Alcotest.(check bool) "preempted batch job completes" true
    (batch_done.Proto.state = Proto.Done);
  Alcotest.(check bool) "batch job was preempted" true
    (batch_done.Proto.preemptions >= 1);
  Alcotest.(check string) "preempted bytes identical to undisturbed run"
    expected batch_out

let suite =
  ( "serve (daemon, spool, watchdog, protocol)",
    [
      Alcotest.test_case "spool round-trip" `Quick test_spool_roundtrip;
      Alcotest.test_case "spool tolerates torn records" `Quick test_spool_torn;
      Alcotest.test_case "watchdog retry/backoff policy" `Quick
        test_watchdog_policy;
      Alcotest.test_case "protocol round-trips" `Quick test_proto_roundtrip;
      Alcotest.test_case "daemon: submit/cache/quota/shutdown" `Slow
        test_daemon_basics;
      Alcotest.test_case "daemon: injected crashes retried then failed" `Slow
        test_daemon_chaos_retry;
      Alcotest.test_case "daemon: kill -9, restart, adopt, resume" `Slow
        test_daemon_kill9_adoption;
      Alcotest.test_case "daemon: interactive verify preempts batch" `Slow
        test_daemon_preempt;
    ] )
