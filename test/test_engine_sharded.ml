(* Differential and chaos tests for the out-of-core sharded engine.

   The sharded engine promises the packed engine's exact numbering and
   verdicts with a different residency story, so the tests are the same
   shape as the packed differential (reusing its random-program
   generators) plus the knobs unique to sharding:

   - reference = sharded on 200+ random programs, under a shard-count
     sweep (K = 1, 2, 8);
   - a spill-forced mode (zero arena budget into a temp directory) that
     must spill at least once and still agree byte-for-byte;
   - escape programs: the sharded engine, like the strict packed engine,
     refuses states outside the layout (Layout.Unrepresentable) exactly
     when the auto engine would have fallen back to the reference path;
   - SIGKILL chaos through the dcheck CLI while spilling, resumed to a
     byte-identical verdict (reusing the chaos harness);
   - word-parallel Bitset bulk operations against their bit-at-a-time
     specification. *)

open Detcor_semantics

let equal_system = Util.ts_equal

(* Install sharded-engine parameters for the duration of [f], restoring
   the process-wide defaults afterwards (they are global state). *)
let with_shards ?(shards = 4) ?spill_dir ?(arena_mb = 512) f =
  let k0, d0, m0 = Ts.shard_defaults () in
  Ts.set_shard_defaults ~shards ~spill_dir ~arena_budget_mb:arena_mb;
  Fun.protect
    ~finally:(fun () ->
      Ts.set_shard_defaults ~shards:k0 ~spill_dir:d0 ~arena_budget_mb:m0)
    f

let with_temp_dir k =
  let dir = Filename.temp_file "detcor_shard" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
           (Sys.readdir dir)
       with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> k dir)

(* The sharded engine on an escaping exploration must behave like the
   strict packed engine: raise [Layout.Unrepresentable] precisely when
   the auto engine downgraded to the reference path. *)
let sharded_build f ~auto =
  match f () with
  | ts -> Some ts
  | exception Layout.Unrepresentable ->
    if Ts.engine_of auto = Ts.Reference && Ts.fallback_reason auto <> None then
      None
    else Alcotest.fail "sharded raised Unrepresentable but auto did not fall back"

let shards_arb =
  QCheck.make
    ~print:(fun ((rp, inits), k) ->
      Fmt.str "%s from %d states, %d shards"
        (Test_engine_diff.print_program rp)
        (List.length inits) k)
    QCheck.Gen.(pair Test_engine_diff.with_inits_gen (oneofl [ 1; 2; 8 ]))

(* K-sweep identity on explicit initials: numbering, edges, initials and
   lookup all equal to the reference engine's, for 1, 2 and 8 shards. *)
let prop_build_identical =
  Util.qtest ~count:210 "sharded build = reference build (K=1,2,8)" shards_arb
    (fun ((rp, inits), k) ->
      let p = Test_engine_diff.build_program rp in
      let from = inits @ inits in
      let reference = Ts.build ~engine:Ts.Reference p ~from in
      let auto = Ts.build ~engine:Ts.Auto p ~from in
      with_shards ~shards:k (fun () ->
          match
            sharded_build ~auto (fun () -> Ts.build ~engine:Ts.Sharded p ~from)
          with
          | None -> true
          | Some sharded ->
            equal_system reference sharded
            && List.for_all
                 (fun i ->
                   Ts.index_of sharded (Ts.state reference i) = Some i)
                 (List.init (Ts.num_states reference) Fun.id)))

let pred_arb =
  QCheck.make
    ~print:(fun ((rp, s), k) ->
      Fmt.str "%s from P%d, %d shards"
        (Test_engine_diff.print_program rp)
        s k)
    QCheck.Gen.(
      pair
        (pair Test_engine_diff.program_gen (int_range 0 (1 lsl 20)))
        (oneofl [ 1; 2; 8 ]))

let prop_of_pred_identical =
  Util.qtest ~count:120 "sharded of_pred = reference of_pred" pred_arb
    (fun ((rp, seed), k) ->
      let p = Test_engine_diff.build_program rp in
      let from = Test_engine_diff.pred_of_seed seed in
      let reference = Ts.of_pred ~engine:Ts.Reference p ~from in
      let auto = Ts.of_pred ~engine:Ts.Auto p ~from in
      with_shards ~shards:k (fun () ->
          match
            sharded_build ~auto (fun () ->
                Ts.of_pred ~engine:Ts.Sharded p ~from)
          with
          | None -> true
          | Some sharded -> equal_system reference sharded))

(* Spill-forced identity: a zero arena budget into a temp directory makes
   every sealed segment spill; results must not change, and any run that
   interned states must have spilled at least once. *)
let prop_spill_forced =
  Util.qtest ~count:60 "spill-forced sharded build agrees and spills"
    shards_arb (fun ((rp, inits), k) ->
      let p = Test_engine_diff.build_program rp in
      let from = inits @ inits in
      let reference = Ts.build ~engine:Ts.Reference p ~from in
      let auto = Ts.build ~engine:Ts.Auto p ~from in
      with_temp_dir (fun dir ->
          with_shards ~shards:k ~spill_dir:dir ~arena_mb:0 (fun () ->
              match
                sharded_build ~auto (fun () ->
                    Ts.build ~engine:Ts.Sharded p ~from)
              with
              | None -> true
              | Some sharded -> (
                equal_system reference sharded
                &&
                match Ts.shard_stats sharded with
                | None -> false
                | Some (_, spills, bytes, _) ->
                  Ts.num_states sharded = 0 || (spills > 0 && bytes > 0)))))

(* Check procedures on a spilled system: predicates, reachability and
   safety answers must match the reference engine even when every
   segment access is a reload. *)
let prop_checks_on_spilled =
  let arb =
    QCheck.make
      ~print:(fun ((rp, s1), s2) ->
        Fmt.str "%s P%d P%d" (Test_engine_diff.print_program rp) s1 s2)
      QCheck.Gen.(
        pair
          (pair Test_engine_diff.program_gen (int_range 0 (1 lsl 20)))
          (int_range 0 (1 lsl 20)))
  in
  Util.qtest ~count:60 "Check outcomes agree on spilled sharded systems" arb
    (fun ((rp, s1), s2) ->
      let p = Test_engine_diff.build_program rp in
      let from = Test_engine_diff.pred_of_seed s1 in
      let reference = Ts.of_pred ~engine:Ts.Reference p ~from in
      let auto = Ts.of_pred ~engine:Ts.Auto p ~from in
      with_temp_dir (fun dir ->
          with_shards ~shards:2 ~spill_dir:dir ~arena_mb:0 (fun () ->
              match
                sharded_build ~auto (fun () ->
                    Ts.of_pred ~engine:Ts.Sharded p ~from)
              with
              | None -> true
              | Some sharded ->
                let p1 = Test_engine_diff.pred_of_seed s2
                and p2 = Test_engine_diff.pred_of_seed (s2 lxor 0x2a) in
                let same f =
                  Fmt.str "%a" Check.pp_outcome (f reference)
                  = Fmt.str "%a" Check.pp_outcome (f sharded)
                in
                same (fun ts -> Check.closed ts p1)
                && same (fun ts -> Check.leads_to ts p1 p2)
                && same (fun ts -> Check.implies ts p1 p2)
                && same (fun ts -> Check.hoare_triple ts ~pre:p1 ~post:p2)
                &&
                let reach ts = Graph.reachable ts ~from:(Ts.initials ts) in
                reach reference = reach sharded)))

(* ------------------------------------------------------------------ *)
(* Bitset bulk operations vs their bit-at-a-time specification.        *)
(* ------------------------------------------------------------------ *)

let bitset_arb =
  QCheck.make
    ~print:(fun (n, seeds) -> Fmt.str "n=%d seeds=%d" n (List.length seeds))
    QCheck.Gen.(pair (int_range 0 200) (list_size (int_range 0 50) (int_range 0 1000)))

let prop_union_into =
  Util.qtest ~count:200 "Bitset.union_into = per-bit union" bitset_arb
    (fun (n, seeds) ->
      let a = Bitset.create n and b = Bitset.create n in
      let expect = Bitset.create n in
      List.iteri
        (fun i s ->
          if n > 0 then begin
            let bit = s mod n in
            (if i mod 2 = 0 then Bitset.set a bit else Bitset.set b bit);
            Bitset.set expect bit
          end)
        seeds;
      let into = Bitset.copy a in
      Bitset.union_into ~into b;
      (* union = a | b, bit by bit *)
      List.for_all
        (fun i ->
          Bitset.get into i = (Bitset.get a i || Bitset.get b i)
          && (not (Bitset.get a i && Bitset.get b i))
             || Bitset.get into i)
        (List.init n Fun.id)
      && Bitset.cardinal into <= n
      && (n = 0 || Bitset.equal into expect
          || Bitset.cardinal into = Bitset.cardinal expect))

let prop_iter_words =
  Util.qtest ~count:200 "Bitset.iter_words reconstructs the set" bitset_arb
    (fun (n, seeds) ->
      let a = Bitset.create n in
      List.iter (fun s -> if n > 0 then Bitset.set a (s mod n)) seeds;
      let rebuilt = Bitset.create n in
      Bitset.iter_words a (fun w bits ->
          for i = 0 to 63 do
            if Int64.(logand (shift_right_logical bits i) 1L) = 1L then begin
              let idx = (w * 64) + i in
              if idx < n then Bitset.set rebuilt idx
            end
          done);
      Bitset.equal a rebuilt)

(* ------------------------------------------------------------------ *)
(* SIGKILL chaos while spilling, through the CLI.                      *)
(* ------------------------------------------------------------------ *)

(* A sharded verify with a zero arena budget spills continuously; the
   chaos harness SIGKILLs it mid-run and resumes until terminal, and the
   resumed run must reproduce the undisturbed run's bytes exactly.
   Spill files survive the kill (they are written atomically and their
   content is deterministic), so resume re-binds them instead of
   re-exploring. *)
let test_chaos_spill () =
  with_temp_dir @@ fun dir ->
  Test_chaos.chaos_workload "sharded spill verify"
    [
      "verify"; "../examples/dc/reset7.dc"; "--tolerance"; "failsafe";
      "--engine"; "sharded"; "--shards"; "3"; "--spill-dir"; dir;
      "--shard-arena-mb"; "0";
    ]
    ~max_delay:0.3 ()

(* The CLI must reject unknown engines and accept the sharded spelling. *)
let test_cli_engine_flag () =
  let run args =
    Test_chaos.with_temp ".out" @@ fun out ->
    Test_chaos.exit_code "engine flag" (Test_chaos.run_dcheck args ~out)
  in
  Alcotest.(check int)
    "sharded verify exits 0" 0
    (run
       [
         "verify"; "../examples/dc/ring5.dc"; "--tolerance"; "nonmasking";
         "--engine"; "sharded";
       ]);
  Alcotest.(check bool)
    "unknown engine rejected" true
    (run [ "verify"; "../examples/dc/ring5.dc"; "--engine"; "warp" ] <> 0)

let suite =
  ( "sharded engine",
    [
      prop_build_identical;
      prop_of_pred_identical;
      prop_spill_forced;
      prop_checks_on_spilled;
      prop_union_into;
      prop_iter_words;
      Alcotest.test_case "chaos: SIGKILL while spilling" `Slow test_chaos_spill;
      Alcotest.test_case "cli: --engine flag" `Quick test_cli_engine_flag;
    ] )
