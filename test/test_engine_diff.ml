(* Differential tests: the packed engine against the seed list-based path.

   A generator of random guarded-command programs (five variables with
   mixed boolean / integer / symbolic domains, random guards from seeded
   decision tables, deterministic and nondeterministic statements, and an
   optional action that escapes its declared domain to exercise the
   reference fallback) drives three properties:

   - both engines produce identical state arrays, edge relations and
     initial states, whether built from explicit states or from a predicate
     over the product space;
   - [Check] and [Graph] procedures report identical outcomes on both;
   - [index_of] on the packed system inverts the numbering.

   Together the properties run > 200 random programs per test execution. *)

open Detcor_kernel
open Detcor_semantics

let bool_dom = Domain.boolean
let n_dom = Domain.range 0 2
let m_dom = Domain.range 0 3
let s_dom = Domain.symbols [ "p"; "q"; "bot" ]

let vars =
  [ ("a", bool_dom); ("b", bool_dom); ("n", n_dom); ("m", m_dom); ("s", s_dom) ]

(* Random predicates: a seeded decision table over the packed value tuple.
   Total on any state binding the five variables, including states outside
   the declared domains (the escape action drives [n] up to 5). *)
let pred_of_seed seed =
  Pred.make (Fmt.str "P%d" seed) (fun st ->
      let a = Value.as_bool (State.get st "a") in
      let b = Value.as_bool (State.get st "b") in
      let n = Value.as_int (State.get st "n") in
      let m = Value.as_int (State.get st "m") in
      let s = Value.as_sym (State.get st "s") in
      let ix =
        (if a then 1 else 0)
        + (2 * if b then 1 else 0)
        + (4 * n)
        + (12 * m)
        + (48 * match s with "p" -> 0 | "q" -> 1 | _ -> 2)
      in
      (seed lsr (ix mod 61)) land 1 = 1)

type rand_assign =
  | Set_a of bool
  | Set_b of bool
  | Set_n of int
  | Set_m of int
  | Set_s of string
  | Flip_a
  | Inc_n_clamped
  | Inc_m_mod

let apply_assign st = function
  | Set_a v -> State.set st "a" (Value.bool v)
  | Set_b v -> State.set st "b" (Value.bool v)
  | Set_n v -> State.set st "n" (Value.int v)
  | Set_m v -> State.set st "m" (Value.int v)
  | Set_s v -> State.set st "s" (Value.sym v)
  | Flip_a ->
    State.set st "a" (Value.bool (not (Value.as_bool (State.get st "a"))))
  | Inc_n_clamped ->
    State.set st "n" (Value.int (min 2 (Value.as_int (State.get st "n") + 1)))
  | Inc_m_mod ->
    State.set st "m" (Value.int ((Value.as_int (State.get st "m") + 1) mod 4))

let assign_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun v -> Set_a v) bool;
        map (fun v -> Set_b v) bool;
        map (fun v -> Set_n v) (int_range 0 2);
        map (fun v -> Set_m v) (int_range 0 3);
        map (fun v -> Set_s v) (oneofl [ "p"; "q"; "bot" ]);
        return Flip_a;
        return Inc_n_clamped;
        return Inc_m_mod;
      ])

type rand_action =
  | Assign of int * rand_assign list (* guard seed, updates *)
  | Choose of int * rand_assign * rand_assign (* nondeterministic branch *)
  | Corrupt of int * int (* guard seed, variable index *)

let action_gen =
  QCheck.Gen.(
    let seed = int_range 0 (1 lsl 20) in
    oneof
      [
        map2
          (fun s assigns -> Assign (s, assigns))
          seed
          (list_size (int_range 1 2) assign_gen);
        map3 (fun s x y -> Choose (s, x, y)) seed assign_gen assign_gen;
        map2 (fun s v -> Corrupt (s, v)) seed (int_range 0 4);
      ])

type rand_program = {
  acts : rand_action list;
  escape : bool; (* include an action stepping n outside its domain *)
}

let program_gen =
  QCheck.Gen.(
    map2
      (fun acts escape -> { acts; escape })
      (list_size (int_range 1 4) action_gen)
      (map (fun k -> k = 0) (int_range 0 6)))

let print_program rp =
  Fmt.str "{actions=%d escape=%b}" (List.length rp.acts) rp.escape

let build_action i = function
  | Assign (seed, assigns) ->
    Action.deterministic (Fmt.str "a%d" i) (pred_of_seed seed) (fun st ->
        List.fold_left apply_assign st assigns)
  | Choose (seed, x, y) ->
    Action.choose (Fmt.str "a%d" i) (pred_of_seed seed)
      [ (fun st -> apply_assign st x); (fun st -> apply_assign st y) ]
  | Corrupt (seed, v) ->
    let x, d = List.nth vars v in
    Action.corrupt (Fmt.str "a%d" i) (pred_of_seed seed) x d

(* The escape action drives [n] beyond its declared domain (bounded at 5 so
   exploration terminates): the packed engine must detect it and fall back
   to the reference path with identical results. *)
let escape_action =
  Action.deterministic "escape"
    (Pred.make "n<5" (fun st -> Value.as_int (State.get st "n") < 5))
    (fun st -> State.set st "n" (Value.int (Value.as_int (State.get st "n") + 1)))

let build_program rp =
  let actions = List.mapi build_action rp.acts in
  let actions = if rp.escape then actions @ [ escape_action ] else actions in
  Program.make ~name:"diff" ~vars ~actions

let state_gen =
  QCheck.Gen.(
    map2
      (fun (a, b) (n, m, s) ->
        State.of_list
          [
            ("a", Value.bool a);
            ("b", Value.bool b);
            ("n", Value.int n);
            ("m", Value.int m);
            ("s", Value.sym s);
          ])
      (pair bool bool)
      (triple (int_range 0 2) (int_range 0 3) (oneofl [ "p"; "q"; "bot" ])))

let with_inits_gen =
  QCheck.Gen.(pair program_gen (list_size (int_range 1 5) state_gen))

let with_inits_arb =
  QCheck.make
    ~print:(fun (rp, inits) ->
      Fmt.str "%s from %d states" (print_program rp) (List.length inits))
    with_inits_gen

(* Structural equality of two built systems, including numbering. *)
let equal_system = Util.ts_equal

let outcome_str o = Fmt.str "%a" Check.pp_outcome o

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_build_identical =
  Util.qtest ~count:200 "packed build = reference build (explicit initials)"
    with_inits_arb (fun (rp, inits) ->
      let p = build_program rp in
      (* Duplicate initials exercise the sort-uniq path of both engines. *)
      let from = inits @ inits in
      let reference = Ts.build ~engine:Ts.Reference p ~from in
      let packed = Ts.build ~engine:Ts.Auto p ~from in
      equal_system reference packed
      && List.for_all
           (fun i -> Ts.index_of packed (Ts.state reference i) = Some i)
           (List.init (Ts.num_states reference) Fun.id))

let prop_of_pred_identical =
  let arb =
    QCheck.make
      ~print:(fun (rp, s) -> Fmt.str "%s from P%d" (print_program rp) s)
      QCheck.Gen.(pair program_gen (int_range 0 (1 lsl 20)))
  in
  Util.qtest ~count:120 "packed of_pred = reference of_pred" arb
    (fun (rp, seed) ->
      let p = build_program rp in
      let from = pred_of_seed seed in
      let reference = Ts.of_pred ~engine:Ts.Reference p ~from in
      let packed = Ts.of_pred ~engine:Ts.Auto p ~from in
      equal_system reference packed)

let prop_checks_identical =
  let arb =
    QCheck.make
      ~print:(fun ((rp, s1), s2) ->
        Fmt.str "%s P%d P%d" (print_program rp) s1 s2)
      QCheck.Gen.(
        pair
          (pair program_gen (int_range 0 (1 lsl 20)))
          (int_range 0 (1 lsl 20)))
  in
  Util.qtest ~count:120 "Check/Graph outcomes agree across engines" arb
    (fun ((rp, s1), s2) ->
      let p = build_program rp in
      let from = pred_of_seed s1 in
      let reference = Ts.of_pred ~engine:Ts.Reference p ~from in
      let packed = Ts.of_pred ~engine:Ts.Auto p ~from in
      let p1 = pred_of_seed s2 and p2 = pred_of_seed (s2 lxor 0x2a) in
      let same_outcome f = outcome_str (f reference) = outcome_str (f packed) in
      same_outcome (fun ts -> Check.closed ts p1)
      && same_outcome (fun ts -> Check.leads_to ts p1 p2)
      && same_outcome (fun ts -> Check.implies ts p1 p2)
      && same_outcome (fun ts -> Check.deadlock_free ts ~inside:p1)
      && same_outcome (fun ts -> Check.hoare_triple ts ~pre:p1 ~post:p2)
      && (let sccs ts = List.map (fun (c : Graph.scc) -> c.members) (Graph.sccs ts) in
          sccs reference = sccs packed)
      &&
      let reach ts = Graph.reachable ts ~from:(Ts.initials ts) in
      reach reference = reach packed)

let suite =
  ( "engine differential",
    [ prop_build_identical; prop_of_pred_identical; prop_checks_identical ] )
