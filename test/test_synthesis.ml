(* Tests for Detcor_synthesis: automated addition of fail-safe,
   nonmasking and masking tolerance, verified by the Detcor_core
   checkers (experiment E7). *)

open Detcor_kernel
open Detcor_spec
open Detcor_core
open Detcor_systems
open Detcor_synthesis

let get = function
  | Ok (r : Synthesize.result) -> r
  | Error f -> Alcotest.failf "synthesis failed: %a" Synthesize.pp_failure f

let test_mem_failsafe () =
  let r =
    get
      (Synthesize.add_failsafe Memory.intolerant ~spec:Memory.spec
         ~invariant:Memory.s ~faults:Memory.page_fault)
  in
  Alcotest.(check bool) "verified fail-safe" true (Tolerance.verdict r.report);
  Alcotest.(check int) "one detector added" 1 (List.length r.added_detectors);
  (* The added guard keeps reading whenever the page is present. *)
  let _, guard = List.hd r.added_detectors in
  Alcotest.(check bool) "guard allows present" true
    (Pred.holds guard
       (State.of_list [ ("present", Value.bool true); ("data", Value.bot) ]));
  Alcotest.(check bool) "guard blocks absent" false
    (Pred.holds guard
       (State.of_list [ ("present", Value.bool false); ("data", Value.bot) ]))

let test_mem_nonmasking () =
  let r =
    get
      (Synthesize.add_nonmasking Memory.intolerant ~spec:Memory.spec
         ~invariant:Memory.s ~faults:Memory.page_fault)
  in
  Alcotest.(check bool) "verified nonmasking" true (Tolerance.verdict r.report);
  Alcotest.(check bool) "recovery synthesized" true (r.recovery_states > 0)

let test_mem_masking () =
  let r =
    get
      (Synthesize.add_masking Memory.intolerant ~spec:Memory.spec
         ~invariant:Memory.s ~faults:Memory.page_fault)
  in
  Alcotest.(check bool) "verified masking" true (Tolerance.verdict r.report);
  Alcotest.(check bool) "detector and corrector both added" true
    (r.added_detectors <> [] && r.recovery_states > 0)

(* The synthesized fail-safe guard for TMR coincides with the paper's DR
   witness (x=y or x=z) wherever the action is enabled within the span —
   the synthesizer rediscovers the detector of Section 6.1. *)
let test_tmr_failsafe_rediscovers_dr () =
  let r =
    get
      (Synthesize.add_failsafe Tmr.intolerant ~spec:Tmr.spec
         ~invariant:Tmr.invariant ~faults:Tmr.one_corruption)
  in
  Alcotest.(check bool) "verified fail-safe" true (Tolerance.verdict r.report);
  let _, guard = List.hd r.added_detectors in
  let span =
    Tolerance.fault_span Tmr.intolerant ~faults:Tmr.one_corruption
      ~from:Tmr.invariant
  in
  List.iter
    (fun st ->
      if Pred.holds Tmr.out_bot st then
        Alcotest.(check bool)
          (Fmt.str "guard = DR witness at %a" State.pp st)
          (Pred.holds Tmr.dr_witness st)
          (Pred.holds guard st))
    span.states

let test_tmr_masking () =
  let r =
    get
      (Synthesize.add_masking ~target:Tmr.out_is_uncor Tmr.intolerant
         ~spec:Tmr.spec ~invariant:Tmr.invariant ~faults:Tmr.one_corruption)
  in
  Alcotest.(check bool) "verified masking" true (Tolerance.verdict r.report)

(* Idempotence: adding fail-safe tolerance to an already fail-safe program
   succeeds and preserves the verdict. *)
let test_idempotent () =
  let r =
    get
      (Synthesize.add_failsafe Memory.failsafe ~spec:Memory.spec
         ~invariant:Memory.s ~faults:Memory.page_fault)
  in
  Alcotest.(check bool) "still fail-safe" true (Tolerance.verdict r.report)

(* Unsynthesizable: a fault that directly violates the safety
   specification from inside the invariant leaves no invariant states
   ([ms] swallows S), so fail-safe addition must fail. *)
let test_unsynthesizable () =
  let bad_fault =
    Fault.make "poison"
      [
        Action.deterministic "F:poison" Pred.true_ (fun st ->
            State.set st "data" Memory.bad);
      ]
  in
  let spec =
    Spec.make ~name:"strict"
      ~safety:
        (Detcor_spec.Safety.never
           (Pred.make "data=bad" (fun st ->
                Value.equal (State.get st "data") Memory.bad)))
      ()
  in
  match
    Synthesize.add_failsafe Memory.intolerant ~spec ~invariant:Memory.s
      ~faults:bad_fault
  with
  | Error Synthesize.Empty_invariant -> ()
  | Error f -> Alcotest.failf "unexpected failure: %a" Synthesize.pp_failure f
  | Ok _ -> Alcotest.fail "expected Empty_invariant"

(* Unrecoverable: nonmasking synthesis with recovery restricted to zero
   moves... emulated by a target no 1-variable path can reach when the
   fault corrupts two variables at once. *)
let test_ring_nonmasking_synthesis () =
  (* Strip the ring of a process's move action; recovery synthesis must
     re-establish convergence. *)
  let cfg = Token_ring.make_config 3 in
  let crippled =
    Program.make ~name:"crippled-ring"
      ~vars:(Program.var_decls (Token_ring.program cfg))
      ~actions:
        (List.filter
           (fun ac -> Action.name ac <> "move_1")
           (Program.actions (Token_ring.program cfg)))
  in
  match
    Synthesize.add_nonmasking crippled ~spec:(Token_ring.spec cfg)
      ~invariant:(Token_ring.legitimate cfg)
      ~faults:(Token_ring.corruption cfg)
  with
  | Ok r -> Alcotest.(check bool) "verified" true (Tolerance.verdict r.report)
  | Error f ->
    (* Acceptable outcome: the checker explains why recovery is impossible
       (the crippled program keeps fighting the corrector). *)
    Alcotest.(check bool)
      (Fmt.str "explained failure: %a" Synthesize.pp_failure f)
      true
      (match f with
      | Synthesize.Verification_failed _ | Synthesize.Unrecoverable_state _ ->
        true
      | Synthesize.Empty_invariant | Synthesize.Exhausted _ -> false)

let outcome_tag = function
  | Ok _ -> "Ok"
  | Error f -> Fmt.str "%a" Synthesize.pp_failure f

(* The candidate-step generator: one-variable steps enumerate every other
   in-domain value; the two-variable composition is deduplicated (no
   origin, no re-emitted one-variable steps, no repeated states). *)
let test_neighbors_dedup () =
  let p =
    Program.make ~name:"nb"
      ~vars:[ ("x", Domain.range 0 2); ("y", Domain.range 0 1) ]
      ~actions:[ Action.deterministic "skip" Pred.false_ (fun st -> st) ]
  in
  let st = State.of_list [ ("x", Value.int 0); ("y", Value.int 0) ] in
  let one = Synthesize.neighbors ~step_vars:1 p st in
  Alcotest.(check int) "one-variable neighbors" 3 (List.length one);
  let two = Synthesize.neighbors ~step_vars:2 p st in
  (* 5 = the product space minus the origin *)
  Alcotest.(check int) "two-variable neighbors deduplicated" 5
    (List.length two);
  Alcotest.(check int) "no duplicates" (List.length two)
    (List.length (List.sort_uniq State.compare two));
  Alcotest.(check bool) "origin excluded" false
    (List.exists (State.equal st) two)

let bit = Domain.range 0 1

(* Fail-safe restriction can leave no invariant state: every invariant
   state is already bad, so ms swallows the invariant. *)
let test_failure_empty_invariant () =
  let x0 = Pred.make "x=0" (fun st -> Value.as_int (State.get st "x") = 0) in
  let p =
    Program.make ~name:"empty" ~vars:[ ("x", bit) ]
      ~actions:[ Action.deterministic "skip" Pred.false_ (fun st -> st) ]
  in
  let spec = Spec.make ~name:"bad0" ~safety:(Safety.never x0) () in
  let faults = Fault.corrupt_variable "x" bit in
  (match Synthesize.add_masking p ~spec ~invariant:x0 ~faults with
  | Error Synthesize.Empty_invariant -> ()
  | r -> Alcotest.failf "expected Empty_invariant, got %s" (outcome_tag r));
  (* nonmasking starting from an invariant with no states at all *)
  match Synthesize.add_nonmasking p ~spec ~invariant:Pred.false_ ~faults with
  | Error Synthesize.Empty_invariant -> ()
  | r -> Alcotest.failf "expected Empty_invariant, got %s" (outcome_tag r)

(* A fault jumps the program two variables away from the invariant; no
   one-variable step back stays inside the restricted span, but the
   attempt ladder escalates to two-variable moves on its own and heals
   the layering. *)
let test_step_vars_escalation_heals () =
  let getx st = Value.as_int (State.get st "x") in
  let gety st = Value.as_int (State.get st "y") in
  let inv = Pred.make "origin" (fun st -> getx st = 0 && gety st = 0) in
  let p =
    Program.make ~name:"diag-jump"
      ~vars:[ ("x", bit); ("y", bit) ]
      ~actions:[ Action.deterministic "skip" Pred.false_ (fun st -> st) ]
  in
  let spec =
    Spec.make ~name:"diag"
      ~safety:(Safety.make ~bad_state:(fun st -> getx st <> gety st) ())
      ()
  in
  let jump =
    Fault.make "jump"
      [
        Action.deterministic "F:jump" inv (fun st ->
            State.set (State.set st "x" (Value.int 1)) "y" (Value.int 1));
      ]
  in
  let r = get (Synthesize.add_masking p ~spec ~invariant:inv ~faults:jump) in
  Alcotest.(check bool) "verified masking" true (Tolerance.verdict r.report);
  Alcotest.(check int) "one recovery move (the diagonal)" 1 r.recovery_states

(* Truly unrecoverable: the fault jumps THREE variables at once, so even
   the two-variable escalation cannot re-enter the span — every ladder
   attempt leaves the jumped-to state unranked. *)
let test_failure_unrecoverable () =
  let v st n = Value.as_int (State.get st n) in
  let inv =
    Pred.make "origin" (fun st -> v st "x" = 0 && v st "y" = 0 && v st "z" = 0)
  in
  let p =
    Program.make ~name:"unrec"
      ~vars:[ ("x", bit); ("y", bit); ("z", bit) ]
      ~actions:[ Action.deterministic "skip" Pred.false_ (fun st -> st) ]
  in
  let spec =
    Spec.make ~name:"no-partial"
      ~safety:
        (Safety.make
           ~bad_state:(fun st ->
             let set = v st "x" + v st "y" + v st "z" in
             set = 1 || set = 2)
           ())
      ()
  in
  let jump =
    Fault.make "jump3"
      [
        Action.deterministic "F:jump3" inv (fun st ->
            State.update_many st
              [ ("x", Value.int 1); ("y", Value.int 1); ("z", Value.int 1) ]);
      ]
  in
  match Synthesize.add_masking p ~spec ~invariant:inv ~faults:jump with
  | Error (Synthesize.Unrecoverable_state st) ->
    Alcotest.(check int) "stuck at x=1" 1 (v st "x");
    Alcotest.(check int) "stuck at y=1" 1 (v st "y");
    Alcotest.(check int) "stuck at z=1" 1 (v st "z")
  | r -> Alcotest.failf "expected Unrecoverable_state, got %s" (outcome_tag r)

(* Invariant weakening: a fault poisons the original invariant (ms
   swallows it), but the restricted program is live in a different part
   of the ms-complement; the weakening search finds it instead of
   reporting Empty_invariant. *)
let test_invariant_weakening () =
  let getx st = Value.as_int (State.get st "x") in
  let x_is n = Pred.make (Fmt.str "x=%d" n) (fun st -> getx st = n) in
  let p =
    Program.make ~name:"weaken"
      ~vars:[ ("x", Domain.range 0 3) ]
      ~actions:
        [
          Action.deterministic "move" (x_is 1) (fun st ->
              State.set st "x" (Value.int 3));
        ]
  in
  let spec = Spec.make ~name:"never2" ~safety:(Safety.never (x_is 2)) () in
  let poison =
    Fault.make "poison"
      [
        Action.deterministic "F:poison" (x_is 0) (fun st ->
            State.set st "x" (Value.int 2));
      ]
  in
  let r =
    get (Synthesize.add_masking p ~spec ~invariant:(x_is 0) ~faults:poison)
  in
  Alcotest.(check bool) "verified masking" true (Tolerance.verdict r.report);
  Alcotest.(check string)
    "invariant marked as weakened" "S_masking_weakened"
    (Pred.name r.invariant);
  Alcotest.(check bool) "x=1 in weakened invariant" true
    (Pred.holds r.invariant (State.of_list [ ("x", Value.int 1) ]));
  Alcotest.(check bool) "x=3 in weakened invariant" true
    (Pred.holds r.invariant (State.of_list [ ("x", Value.int 3) ]));
  Alcotest.(check bool) "poisoned x=0 excluded" false
    (Pred.holds r.invariant (State.of_list [ ("x", Value.int 0) ]))

(* The corrector races the program: the first layering picks a recovery
   step the program immediately undoes (the anti-undo veto is relaxed
   because keeping it leaves the state unrecoverable), verification finds
   the fair cycle, and the repair loop bans the raced edge — forcing the
   two-variable escalation that jumps past the race. *)
let test_repair_breaks_cycle () =
  let getx st = Value.as_int (State.get st "x") in
  let gety st = Value.as_int (State.get st "y") in
  let inv = Pred.make "origin" (fun st -> getx st = 0 && gety st = 0) in
  let p =
    Program.make ~name:"racer"
      ~vars:[ ("x", bit); ("y", bit) ]
      ~actions:
        [
          Action.deterministic "push"
            (Pred.make "x=1,y=0" (fun st -> getx st = 1 && gety st = 0))
            (fun st -> State.set st "y" (Value.int 1));
        ]
  in
  let spec =
    Spec.make ~name:"come-home"
      ~liveness:(Liveness.eventually ~name:"eventually home" inv)
      ()
  in
  let jump =
    Fault.make "kick"
      [
        Action.deterministic "F:kick-corner" inv (fun st ->
            State.update_many st [ ("x", Value.int 1); ("y", Value.int 1) ]);
        Action.deterministic "F:kick-side" inv (fun st ->
            State.set st "x" (Value.int 1));
      ]
  in
  let r = get (Synthesize.add_nonmasking p ~spec ~invariant:inv ~faults:jump) in
  Alcotest.(check bool) "verified nonmasking" true (Tolerance.verdict r.report);
  Alcotest.(check bool)
    "counterexample-guided repair actually iterated" true
    (r.repair_iterations >= 1)

(* Recovery synthesis succeeds, but the synthesized program cannot meet
   the liveness obligation of the specification: the self-looping program
   never reaches x=1 from the invariant. *)
let test_failure_verification () =
  let x1 = Pred.make "x=1" (fun st -> Value.as_int (State.get st "x") = 1) in
  let p =
    Program.make ~name:"stuck" ~vars:[ ("x", bit) ]
      ~actions:[ Action.deterministic "stay" Pred.true_ (fun st -> st) ]
  in
  let spec =
    Spec.make ~name:"eventually-one"
      ~liveness:(Liveness.leads_to Pred.true_ x1)
      ()
  in
  let faults = Fault.corrupt_variable "x" bit in
  match
    Synthesize.add_nonmasking p ~spec ~invariant:(Pred.not_ x1) ~faults
  with
  | Error (Synthesize.Verification_failed report) ->
    Alcotest.(check bool) "verdict false" false (Tolerance.verdict report);
    Alcotest.(check bool)
      "a definite failure, not Unknown" true
      (Tolerance.failures report <> [])
  | r -> Alcotest.failf "expected Verification_failed, got %s" (outcome_tag r)

(* A state-count budget trips inside synthesis: the outcome is the
   undecided [Exhausted] failure, not a hang or an escaping exception. *)
let test_budget_trip () =
  let cfg = Token_ring.make_config 5 in
  let budget = Detcor_robust.Budget.make ~max_states:64 () in
  match
    Detcor_robust.Budget.with_budget budget (fun () ->
        Synthesize.add_nonmasking (Token_ring.program cfg)
          ~spec:(Token_ring.spec cfg)
          ~invariant:(Token_ring.legitimate cfg)
          ~faults:(Token_ring.corruption cfg))
  with
  | Error (Synthesize.Exhausted r) ->
    Alcotest.(check bool)
      "states dimension" true
      (r.Detcor_robust.Error.kind = Detcor_robust.Error.States)
  | r -> Alcotest.failf "expected Exhausted, got %s" (outcome_tag r)

let suite =
  ( "synthesis (E7)",
    [
      Alcotest.test_case "memory fail-safe" `Quick test_mem_failsafe;
      Alcotest.test_case "memory nonmasking" `Quick test_mem_nonmasking;
      Alcotest.test_case "memory masking" `Quick test_mem_masking;
      Alcotest.test_case "TMR rediscovers DR" `Quick test_tmr_failsafe_rediscovers_dr;
      Alcotest.test_case "TMR masking" `Quick test_tmr_masking;
      Alcotest.test_case "idempotent" `Quick test_idempotent;
      Alcotest.test_case "unsynthesizable" `Quick test_unsynthesizable;
      Alcotest.test_case "neighbors deduplicated" `Quick test_neighbors_dedup;
      Alcotest.test_case "empty invariant" `Quick test_failure_empty_invariant;
      Alcotest.test_case "step-vars escalation heals diagonal jump" `Quick
        test_step_vars_escalation_heals;
      Alcotest.test_case "unrecoverable state" `Quick
        test_failure_unrecoverable;
      Alcotest.test_case "invariant weakening" `Quick test_invariant_weakening;
      Alcotest.test_case "repair breaks recovery race" `Quick
        test_repair_breaks_cycle;
      Alcotest.test_case "verification failed" `Quick
        test_failure_verification;
      Alcotest.test_case "budget trip undecided" `Quick test_budget_trip;
      Alcotest.test_case "crippled ring" `Slow test_ring_nonmasking_synthesis;
    ] )
