(* Tests for the guarded-command language: lexer, parser, elaboration,
   and end-to-end verification of a .dc source. *)

open Detcor_kernel
open Detcor_lang

let memory_src =
  {|
# The memory-access example (Figures 1-3), in the surface language.
program memory_masking
var present : bool
var data : {bot, good, bad}
var z1 : bool

pred x1 = present

invariant (z1 => present) && present

action pm1: !present -> present := true
action pm2: x1 && !z1 -> z1 := true
action pm3: z1 -> data := if present then good else bad

fault page: present && !z1 -> present := false

spec safety pair data != bad -> data != bad
spec liveness eventually data = good
|}

let test_lexer_tokens () =
  let toks = Lexer.tokenize "x := y + 1 // comment\n<= <=> .." in
  let kinds = List.map (fun (t : Lexer.located) -> t.token) toks in
  Alcotest.(check bool) "token stream" true
    (kinds
    = Token.
        [
          IDENT "x"; ASSIGN; IDENT "y"; PLUS; INT 1; LE; IFF; DOTDOT; EOF;
        ])

let test_lexer_positions () =
  let toks = Lexer.tokenize "a\n  b" in
  match toks with
  | [ a; b; _eof ] ->
    Alcotest.(check int) "a line" 1 a.Lexer.line;
    Alcotest.(check int) "b line" 2 b.Lexer.line;
    Alcotest.(check int) "b column" 3 b.Lexer.column
  | _ -> Alcotest.fail "unexpected token count"

let test_lexer_error () =
  Alcotest.(check bool) "bad char rejected" true
    (try
       ignore (Lexer.tokenize "x @ y");
       false
     with
     | Detcor_robust.Error.Detcor_error (Detcor_robust.Error.Parse { msg; _ })
       ->
       String.length msg > 0)

let test_parser_program () =
  let ast = Parser.parse_string memory_src in
  Alcotest.(check string) "name" "memory_masking" ast.Ast.pname;
  let count pred = List.length (List.filter pred ast.Ast.decls) in
  Alcotest.(check int) "vars" 3 (count (function Ast.Var _ -> true | _ -> false));
  Alcotest.(check int) "actions+faults" 4
    (count (function Ast.Action _ -> true | _ -> false));
  Alcotest.(check int) "specs" 2 (count (function Ast.Spec _ -> true | _ -> false))

let test_parser_precedence () =
  (* a || b && c parses as a || (b && c); !a = b as (!a) = b is wrong — '!'
     binds tighter than '=' so !(a) = b; and 1 + 2 * 3 = 7. *)
  let e = Parser.parse_string "program t action a: x || y && z -> x := 1 + 2 * 3" in
  match e.Ast.decls with
  | [ Ast.Action { guard = Ast.Binop (Ast.Bor, _, Ast.Binop (Ast.Band, _, _)); assignments; _ } ]
    -> (
    match assignments with
    | [ { value = Some (Ast.Binop (Ast.Badd, Ast.Int 1, Ast.Binop (Ast.Bmul, Ast.Int 2, Ast.Int 3))); _ } ] ->
      ()
    | _ -> Alcotest.fail "assignment precedence wrong")
  | _ -> Alcotest.fail "guard precedence wrong"

let test_parser_error_location () =
  Alcotest.(check bool) "error carries location" true
    (try
       ignore (Parser.parse_string "program t action : true -> x := 1");
       false
     with
     | Detcor_robust.Error.Detcor_error (Detcor_robust.Error.Parse { line; _ })
       ->
       line = 1)

let test_parse_wildcard () =
  let ast = Parser.parse_string "program t fault f: true -> x := ?" in
  match ast.Ast.decls with
  | [ Ast.Action { is_fault = true; assignments = [ { value = None; _ } ]; _ } ] -> ()
  | _ -> Alcotest.fail "wildcard assignment not parsed"

let test_pp_roundtrip () =
  let ast = Parser.parse_string memory_src in
  let printed = Fmt.str "%a" Ast.pp ast in
  let reparsed = Parser.parse_string printed in
  Alcotest.(check string) "roundtrip name" ast.Ast.pname reparsed.Ast.pname;
  Alcotest.(check int) "roundtrip decl count"
    (List.length ast.Ast.decls)
    (List.length reparsed.Ast.decls);
  (* Printing the reparsed tree is a fixpoint. *)
  Alcotest.(check string) "pp fixpoint" printed (Fmt.str "%a" Ast.pp reparsed)

let test_elaborate_memory () =
  let e = Elaborate.load_string memory_src in
  Alcotest.(check int) "three program actions" 3
    (List.length (Program.actions e.program));
  Alcotest.(check int) "one fault" 1
    (List.length (Detcor_core.Fault.actions e.faults));
  (* The elaborated program is masking tolerant, matching the hand-built
     pm of Detcor_systems.Memory. *)
  let report =
    Detcor_core.Tolerance.is_masking e.program ~spec:e.spec
      ~invariant:e.invariant ~faults:e.faults
  in
  Alcotest.(check bool)
    (Fmt.str "masking: %a" Detcor_core.Tolerance.pp_report report)
    true
    (Detcor_core.Tolerance.verdict report)

let test_elaborate_wildcard_fanout () =
  let e =
    Elaborate.load_string
      "program t\nvar x : 0..2\naction a: true -> x := ?"
  in
  let a = Option.get (Program.find_action e.program "a") in
  Alcotest.(check int) "three successors" 3
    (List.length (Action.execute a (State.of_list [ ("x", Value.int 0) ])))

let test_elaborate_simultaneous () =
  (* Right-hand sides read the pre-state: swap works. *)
  let e =
    Elaborate.load_string
      "program t\nvar x : 0..1\nvar y : 0..1\naction swap: true -> x := y, y := x"
  in
  let a = Option.get (Program.find_action e.program "swap") in
  let st = State.of_list [ ("x", Value.int 0); ("y", Value.int 1) ] in
  match Action.execute a st with
  | [ st' ] ->
    Alcotest.check Util.value "x" (Value.int 1) (State.get st' "x");
    Alcotest.check Util.value "y" (Value.int 0) (State.get st' "y")
  | _ -> Alcotest.fail "expected one successor"

let test_elaborate_pred_inlining () =
  let e =
    Elaborate.load_string
      "program t\nvar x : 0..3\npred small = x <= 1\ninvariant small\naction a: small -> x := x"
  in
  Alcotest.(check bool) "pred inlined in invariant" true
    (Pred.holds e.invariant (State.of_list [ ("x", Value.int 1) ]));
  Alcotest.(check bool) "pred false above" false
    (Pred.holds e.invariant (State.of_list [ ("x", Value.int 2) ]))

let test_elaborate_pred_cycle () =
  Alcotest.(check bool) "self-referential pred rejected" true
    (try
       ignore (Elaborate.load_string "program t\npred a = a\ninvariant a");
       false
     with Detcor_robust.Error.Detcor_error (Detcor_robust.Error.Type_error _) ->
       true)

let test_elaborate_symbols () =
  let e =
    Elaborate.load_string
      "program t\nvar c : {red, green}\naction go: c = red -> c := green"
  in
  let a = Option.get (Program.find_action e.program "go") in
  let st = State.of_list [ ("c", Value.sym "red") ] in
  match Action.execute a st with
  | [ st' ] -> Alcotest.check Util.value "symbol" (Value.sym "green") (State.get st' "c")
  | _ -> Alcotest.fail "expected one successor"

let test_elaborate_undeclared_assignment () =
  Alcotest.(check bool) "assignment to undeclared var rejected" true
    (try
       ignore (Elaborate.load_string "program t\naction a: true -> q := 1");
       false
     with Detcor_robust.Error.Detcor_error (Detcor_robust.Error.Type_error _) ->
       true)

let test_based_on () =
  let e =
    Elaborate.load_string
      "program t\nvar x : bool\naction base: true -> x := true\naction derived based on base: x -> x := true"
  in
  let d = Option.get (Program.find_action e.program "derived") in
  Alcotest.(check (option string)) "provenance" (Some "base") (Action.based_on d)

(* Property: pretty-printing any parsed program is a parse fixpoint. *)
let prop_pp_fixpoint =
  let sources =
    [
      memory_src;
      "program a\nvar x : bool\naction f: !x -> x := true";
      "program b\nvar n : 0..5\nfault hit: n < 5 -> n := ?\nspec safety never n = 5";
      "program c\nvar n : -2..2\ninvariant n >= 0\naction dec: n > 0 -> n := n - 1";
    ]
  in
  Alcotest.test_case "pp fixpoint corpus" `Quick (fun () ->
      List.iter
        (fun src ->
          let ast = Parser.parse_string src in
          let printed = Fmt.str "%a" Ast.pp ast in
          let reparsed = Parser.parse_string printed in
          Alcotest.(check string) "fixpoint" printed (Fmt.str "%a" Ast.pp reparsed))
        sources)

(* The shipped .dc corpus: every file must lex, parse, typecheck,
   elaborate, and carry the tolerance class its header comment claims. *)
let corpus_dir = "../examples/dc"

let corpus_files () =
  if Sys.file_exists corpus_dir && Sys.is_directory corpus_dir then
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".dc")
    |> List.sort String.compare
    |> List.map (Filename.concat corpus_dir)
  else []

let test_corpus_elaborates () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus found" true (List.length files >= 6);
  List.iter
    (fun path ->
      let e = Elaborate.load_file path in
      Alcotest.(check bool)
        (Fmt.str "%s has actions" path)
        true
        (Program.actions e.Elaborate.program <> []);
      Alcotest.(check (list string))
        (Fmt.str "%s well-formed" path)
        []
        (Program.well_formed e.Elaborate.program))
    files

let test_corpus_verdicts () =
  let expect path tol verdict =
    let e = Elaborate.load_file (Filename.concat corpus_dir path) in
    let r =
      Detcor_core.Tolerance.check e.Elaborate.program ~spec:e.Elaborate.spec
        ~invariant:e.Elaborate.invariant ~faults:e.Elaborate.faults ~tol
    in
    Alcotest.(check bool)
      (Fmt.str "%s %a" path Detcor_spec.Spec.pp_tolerance tol)
      verdict
      (Detcor_core.Tolerance.verdict r)
  in
  expect "memory.dc" Detcor_spec.Spec.Masking true;
  expect "memory_intolerant.dc" Detcor_spec.Spec.Failsafe false;
  expect "tmr.dc" Detcor_spec.Spec.Masking true;
  expect "token_ring.dc" Detcor_spec.Spec.Nonmasking true;
  expect "barrier.dc" Detcor_spec.Spec.Masking true;
  expect "leader.dc" Detcor_spec.Spec.Nonmasking true

let suite =
  ( "lang (DSL)",
    [
      Alcotest.test_case "dc corpus elaborates" `Quick test_corpus_elaborates;
      Alcotest.test_case "dc corpus verdicts" `Slow test_corpus_verdicts;
      Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
      Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
      Alcotest.test_case "lexer error" `Quick test_lexer_error;
      Alcotest.test_case "parse program" `Quick test_parser_program;
      Alcotest.test_case "precedence" `Quick test_parser_precedence;
      Alcotest.test_case "parse error location" `Quick test_parser_error_location;
      Alcotest.test_case "wildcard assignment" `Quick test_parse_wildcard;
      Alcotest.test_case "pp roundtrip" `Quick test_pp_roundtrip;
      Alcotest.test_case "elaborate memory program" `Quick test_elaborate_memory;
      Alcotest.test_case "wildcard fanout" `Quick test_elaborate_wildcard_fanout;
      Alcotest.test_case "simultaneous assignment" `Quick test_elaborate_simultaneous;
      Alcotest.test_case "pred inlining" `Quick test_elaborate_pred_inlining;
      Alcotest.test_case "pred cycle" `Quick test_elaborate_pred_cycle;
      Alcotest.test_case "symbol domains" `Quick test_elaborate_symbols;
      Alcotest.test_case "undeclared assignment" `Quick
        test_elaborate_undeclared_assignment;
      Alcotest.test_case "based-on provenance" `Quick test_based_on;
      prop_pp_fixpoint;
    ] )
