(* Component composition and multitolerance — the framework the paper's
   concluding remarks announce (and its reference [4] develops).

   Shows: the detector-conjunction lemma checked at framework level, a
   sequenced detector hierarchy, pm's multitolerance (masking to page
   faults AND nonmasking to data corruption), and counterexample
   explanation for a failing requirement.

   Run with:  dune exec examples/composition_demo.exe *)

open Detcor_kernel
open Detcor_spec
open Detcor_core
open Detcor_systems

let header title = Fmt.pr "@.== %s ==@." title

let () =
  header "Detector composition on pm";
  let ts = Detcor_semantics.Ts.of_pred Memory.masking ~from:Memory.t in
  let populated =
    Pred.make "data#bot" (fun st ->
        not (Value.equal (State.get st "data") Value.bot))
  in
  let d_pop =
    Detector.make ~name:"populated" ~witness:populated ~detection:populated ()
  in
  let schema = Compose.conjunction_schema ts Memory.pm_detector d_pop in
  Fmt.pr "%a@." Compose.pp_schema schema;
  let seq = Compose.detector_seq Memory.pm_detector d_pop in
  Fmt.pr "@.sequenced hierarchy '%s': %a@." (Detector.name seq)
    Detcor_semantics.Check.pp_outcome
    (Detector.satisfies_ts ts seq);

  header "Multitolerance of pm";
  let report =
    Multitolerance.check Memory.masking ~spec:Memory.spec ~invariant:Memory.s
      ~requirements:
        [
          { Multitolerance.fault = Memory.page_fault; tol = Spec.Masking };
          { Multitolerance.fault = Memory.data_corruption; tol = Spec.Nonmasking };
        ]
  in
  Fmt.pr "%a@." Multitolerance.pp_report report;

  header "An over-ambitious requirement, with its counterexample";
  let too_much =
    Tolerance.is_masking Memory.masking ~spec:Memory.spec ~invariant:Memory.s
      ~faults:Memory.data_corruption
  in
  Fmt.pr "%a@." Tolerance.pp_report too_much;
  let span =
    Tolerance.fault_span Memory.masking ~faults:Memory.data_corruption
      ~from:Memory.s
  in
  List.iter
    (fun (item : Tolerance.item) ->
      match item.outcome with
      | Detcor_semantics.Check.Holds | Detcor_semantics.Check.Unknown _ -> ()
      | Detcor_semantics.Check.Fails v -> (
        match Detcor_semantics.Explain.violation span.ts_pf v with
        | Some w ->
          Fmt.pr "@.witness for %S:@.%a@." item.label
            Detcor_semantics.Explain.pp w
        | None -> ()))
    (Tolerance.failures too_much);
  Fmt.pr
    "@.No program can mask a fault that itself writes the incorrect value \
     — but pm recovers (nonmasking), which is exactly what the \
     multitolerance requirement above asked for.@."
