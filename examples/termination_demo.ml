(* Termination detection (Dijkstra-Feijen-van Gasteren) as a detector:
   the probe machinery refines 'declared detects quiescent'.  The demo
   verifies the detector, shows that conservative blackening faults are
   masked, and exhibits the false detection caused by a whitening fault.

   Run with:  dune exec examples/termination_demo.exe *)

open Detcor_spec
open Detcor_core
open Detcor_systems

let header title = Fmt.pr "@.== %s ==@." title

let () =
  let cfg = Termination.default in
  let p = Termination.program cfg in
  header
    (Fmt.str "DFG termination detection, %d processes (%d states)"
       cfg.Termination.processes
       (Detcor_kernel.Program.space_size p));

  header "'declared detects quiescent' from conservative starts";
  Fmt.pr "%a@." Detcor_semantics.Check.pp_outcome
    (Detector.satisfies p (Termination.detector cfg)
       ~from:(Termination.fresh cfg));

  header "Conservative (blackening) faults are masked";
  Fmt.pr "%a@." Detector.pp_report
    (Detector.tolerant p (Termination.detector cfg)
       ~faults:(Termination.blackening cfg) ~tol:Spec.Masking
       ~from:(Termination.fresh cfg));

  header "A whitening fault produces a false detection";
  let span =
    Tolerance.fault_span p ~faults:Termination.whitening
      ~from:(Termination.fresh cfg)
  in
  (match
     Spec.refines span.ts_pf (Detector.safety_spec (Termination.detector cfg))
   with
  | Detcor_semantics.Check.Holds | Detcor_semantics.Check.Unknown _ ->
    Fmt.pr "unexpectedly safe?@."
  | Detcor_semantics.Check.Fails v -> (
    Fmt.pr "violation: %a@." Detcor_semantics.Check.pp_violation v;
    match Detcor_semantics.Explain.violation span.ts_pf v with
    | Some w -> Fmt.pr "@.how it happens:@.%a@." Detcor_semantics.Explain.pp w
    | None -> ()));
  Fmt.pr
    "@.This is exactly why DFG colors err toward black: blackening only \
     delays the probe, whitening lets it lie.@."
