(* dcheck — command-line front end to the detectors-and-correctors
   toolkit.

     dcheck info FILE.dc         program summary and state-space size
     dcheck verify FILE.dc       tolerance checks against the declared spec
     dcheck components FILE.dc   extract detector/corrector components
     dcheck synthesize FILE.dc   add fail-safe/nonmasking/masking tolerance
     dcheck simulate FILE.dc     fault-injection simulation with monitors

   Programs are written in the guarded-command language of Detcor_lang;
   see examples/dc/. *)

open Cmdliner
open Detcor_kernel
open Detcor_spec
open Detcor_core
open Detcor_lang

let load path =
  try Ok (Elaborate.load_file path) with
  | Sys_error m -> Error m
  | Lexer.Error { line; column; message } ->
    Error (Fmt.str "%s:%d:%d: %s" path line column message)
  | Parser.Error { line; column; message } ->
    Error (Fmt.str "%s:%d:%d: %s" path line column message)
  | Elaborate.Error m -> Error (Fmt.str "%s: %s" path m)

let or_die = function
  | Ok v -> v
  | Error m ->
    Fmt.epr "dcheck: %s@." m;
    exit 2

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Guarded-command program (.dc).")

let limit_arg =
  Arg.(
    value
    & opt int Detcor_semantics.Ts.default_limit
    & info [ "limit" ] ~docv:"N" ~doc:"State-exploration limit.")

(* ------------------------------------------------------------------ *)
(* info                                                                *)
(* ------------------------------------------------------------------ *)

let info_cmd =
  let run path =
    let e = or_die (load path) in
    Fmt.pr "program %s@." (Program.name e.program);
    Fmt.pr "  variables:     %d@." (List.length (Program.variables e.program));
    List.iter
      (fun (x, d) -> Fmt.pr "    %-12s %a@." x Domain.pp d)
      (Program.var_decls e.program);
    Fmt.pr "  actions:       %d@." (List.length (Program.actions e.program));
    List.iter
      (fun ac -> Fmt.pr "    %s@." (Action.name ac))
      (Program.actions e.program);
    Fmt.pr "  fault actions: %d@." (List.length (Fault.actions e.faults));
    List.iter
      (fun ac -> Fmt.pr "    %s@." (Action.name ac))
      (Fault.actions e.faults);
    Fmt.pr "  state space:   %d states@." (Program.space_size e.program);
    Fmt.pr "  invariant:     %s@." (Pred.name e.invariant);
    Fmt.pr "  specification: %s@." (Spec.name e.spec);
    let issues = Program.well_formed e.program in
    if issues <> [] then begin
      Fmt.pr "  WARNING: ill-formed actions:@.";
      List.iter (fun m -> Fmt.pr "    %s@." m) issues
    end;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Summarize a guarded-command program.")
    Term.(ret (const run $ file_arg))

(* ------------------------------------------------------------------ *)
(* verify                                                              *)
(* ------------------------------------------------------------------ *)

let tolerance_conv =
  let parse s =
    match Spec.tolerance_of_string s with
    | Some t -> Ok (Some t)
    | None when s = "all" -> Ok None
    | None -> Error (`Msg (Fmt.str "unknown tolerance %S" s))
  in
  let print ppf = function
    | Some t -> Spec.pp_tolerance ppf t
    | None -> Fmt.string ppf "all"
  in
  Arg.conv (parse, print)

let tolerance_arg =
  Arg.(
    value
    & opt tolerance_conv None
    & info [ "t"; "tolerance" ] ~docv:"CLASS"
        ~doc:"Tolerance class: masking, failsafe, nonmasking, or all.")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:"On failure, print a witness trace for each failing obligation.")

let verify_cmd =
  let run path tol limit explain =
    let e = or_die (load path) in
    let classes =
      match tol with
      | Some t -> [ t ]
      | None -> [ Spec.Failsafe; Spec.Nonmasking; Spec.Masking ]
    in
    let explain_failures report =
      if explain then begin
        (* Witnesses are found on the composed p [] F system over the
           fault span: it contains every state either checker explored. *)
        let span =
          Tolerance.fault_span ~limit e.program ~faults:e.faults
            ~from:e.invariant
        in
        List.iter
          (fun (item : Tolerance.item) ->
            match item.outcome with
            | Detcor_semantics.Check.Holds -> ()
            | Detcor_semantics.Check.Fails v -> (
              match Detcor_semantics.Explain.violation span.ts_pf v with
              | Some w ->
                Fmt.pr "witness for %S:@.%a@.@." item.label
                  Detcor_semantics.Explain.pp w
              | None ->
                Fmt.pr "witness for %S: (violation site not reachable in \
                        p[]F from the invariant)@.@."
                  item.label))
          (Tolerance.failures report)
      end
    in
    let ok = ref true in
    List.iter
      (fun tol ->
        let report =
          Tolerance.check ~limit e.program ~spec:e.spec ~invariant:e.invariant
            ~faults:e.faults ~tol
        in
        Fmt.pr "%a@.@." Tolerance.pp_report report;
        if not (Tolerance.verdict report) then begin
          ok := false;
          explain_failures report
        end)
      classes;
    if !ok then `Ok () else `Error (false, "verification failed")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Check F-tolerance of the program against its specification.")
    Term.(ret (const run $ file_arg $ tolerance_arg $ limit_arg $ explain_arg))

(* ------------------------------------------------------------------ *)
(* components                                                          *)
(* ------------------------------------------------------------------ *)

let components_cmd =
  let run path limit =
    let e = or_die (load path) in
    let sspec = Spec.safety (Spec.smallest_safety_containing e.spec) in
    let span =
      Tolerance.fault_span ~limit e.program ~faults:e.faults ~from:e.invariant
    in
    let ts_p =
      Detcor_semantics.Ts.build ~limit e.program ~from:span.states
    in
    Fmt.pr "fault span: %d states@.@." (List.length span.states);
    Fmt.pr "Detectors (weakest detection predicate per action):@.";
    List.iter
      (fun ac ->
        let wdp = Detection_predicate.weakest ~sspec ac in
        let holding =
          List.length (List.filter (Pred.holds wdp) span.states)
        in
        Fmt.pr "  %-16s safe in %d/%d span states@." (Action.name ac) holding
          (List.length span.states))
      (Program.actions e.program);
    Fmt.pr "@.Corrector (invariant as correction predicate):@.";
    let extracted =
      Extraction.corrector_for_invariant ts_p ~invariant:e.invariant
    in
    Fmt.pr "  '%s corrects %s': %a@."
      (Pred.name (Corrector.witness extracted.corrector))
      (Pred.name (Corrector.correction extracted.corrector))
      Detcor_semantics.Check.pp_outcome extracted.outcome;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "components"
       ~doc:"Extract detector and corrector components from the program.")
    Term.(ret (const run $ file_arg $ limit_arg))

(* ------------------------------------------------------------------ *)
(* synthesize                                                          *)
(* ------------------------------------------------------------------ *)

let synthesize_cmd =
  let run path tol limit =
    let e = or_die (load path) in
    let tol = match tol with Some t -> t | None -> Spec.Masking in
    let result =
      match tol with
      | Spec.Failsafe ->
        Detcor_synthesis.Synthesize.add_failsafe ~limit e.program ~spec:e.spec
          ~invariant:e.invariant ~faults:e.faults
      | Spec.Nonmasking ->
        Detcor_synthesis.Synthesize.add_nonmasking ~limit e.program
          ~spec:e.spec ~invariant:e.invariant ~faults:e.faults
      | Spec.Masking ->
        Detcor_synthesis.Synthesize.add_masking ~limit e.program ~spec:e.spec
          ~invariant:e.invariant ~faults:e.faults
    in
    match result with
    | Error f ->
      Fmt.epr "synthesis failed: %a@." Detcor_synthesis.Synthesize.pp_failure f;
      `Error (false, "synthesis failed")
    | Ok r ->
      Fmt.pr "synthesized %s@." (Program.name r.program);
      List.iter
        (fun (ac, g) ->
          Fmt.pr "  detector added to %-12s (%s)@." ac (Pred.name g))
        r.added_detectors;
      if r.recovery_states > 0 then
        Fmt.pr "  corrector added: recovery from %d states@." r.recovery_states;
      Fmt.pr "@.%a@." Tolerance.pp_report r.report;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "synthesize"
       ~doc:
         "Add fail-safe, nonmasking or masking tolerance to the program \
          (default: masking).")
    Term.(ret (const run $ file_arg $ tolerance_arg $ limit_arg))

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let runs_arg =
    Arg.(value & opt int 100 & info [ "runs" ] ~docv:"N" ~doc:"Number of runs.")
  in
  let steps_arg =
    Arg.(value & opt int 200 & info [ "steps" ] ~docv:"N" ~doc:"Steps per run.")
  in
  let prob_arg =
    Arg.(
      value
      & opt float 0.1
      & info [ "fault-prob" ] ~docv:"P" ~doc:"Per-step fault probability.")
  in
  let max_faults_arg =
    Arg.(
      value
      & opt int 1
      & info [ "max-faults" ] ~docv:"K" ~doc:"Fault budget per run.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Random seed.")
  in
  let run path runs steps prob max_faults seed =
    let e = or_die (load path) in
    let inits =
      List.filter (Pred.holds e.invariant) (Program.states e.program)
    in
    match inits with
    | [] -> `Error (false, "no state satisfies the invariant")
    | init :: _ ->
      let sspec = Spec.safety (Spec.smallest_safety_containing e.spec) in
      let open Detcor_sim in
      let samples =
        Runner.sample
          ~config:{ Runner.default with seed; max_steps = steps }
          runs e.program ~faults:e.faults
          ~policy:(Injector.Random { probability = prob; max_faults })
          ~init
      in
      let violations =
        List.filter
          (fun r -> Monitor.first_safety_violation r sspec <> None)
          samples
      in
      let settled =
        List.filter_map
          (fun (r : Runner.run) ->
            let states = Detcor_semantics.Trace.states r.trace in
            let rec last_false i best = function
              | [] -> best
              | st :: rest ->
                last_false (i + 1)
                  (if Pred.holds e.invariant st then best else Some i)
                  rest
            in
            match last_false 0 None states with
            | None -> Some 0
            | Some i ->
              if i < List.length states - 1 then Some (i + 1) else None)
          samples
      in
      Fmt.pr "runs: %d (%d steps each, fault prob %.2f, budget %d)@." runs
        steps prob max_faults;
      Fmt.pr "safety violations: %d/%d@." (List.length violations) runs;
      Fmt.pr "runs ending inside the invariant: %d/%d@."
        (List.length settled) runs;
      Fmt.pr "steps to re-enter the invariant: %a@." Stats.pp_option
        (Stats.summarize settled);
      `Ok ()
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Fault-injection simulation with online safety monitoring.")
    Term.(
      ret
        (const run $ file_arg $ runs_arg $ steps_arg $ prob_arg
       $ max_faults_arg $ seed_arg))

(* ------------------------------------------------------------------ *)
(* graph                                                               *)
(* ------------------------------------------------------------------ *)

let graph_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write DOT to FILE (default stdout).")
  in
  let faults_arg =
    Arg.(
      value & flag
      & info [ "with-faults" ] ~doc:"Include fault transitions (dashed).")
  in
  let run path out with_faults limit =
    let e = or_die (load path) in
    let program =
      if with_faults then Fault.compose e.program e.faults else e.program
    in
    let ts =
      Detcor_semantics.Ts.of_pred ~limit program ~from:e.invariant
    in
    let style =
      {
        Detcor_semantics.Dot.highlight = [ (e.invariant, "palegreen") ];
        dashed_actions =
          (if with_faults then Fault.action_names e.faults else []);
        show_action_labels = true;
      }
    in
    (match out with
    | Some file ->
      Detcor_semantics.Dot.to_file ~style ts file;
      Fmt.pr "wrote %s (%d states)@." file (Detcor_semantics.Ts.num_states ts)
    | None -> print_string (Detcor_semantics.Dot.to_string ~style ts));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:
         "Export the reachable transition system (from the invariant) as \
          Graphviz DOT; invariant states are highlighted.")
    Term.(ret (const run $ file_arg $ out_arg $ faults_arg $ limit_arg))

let main =
  Cmd.group
    (Cmd.info "dcheck" ~version:"1.0.0"
       ~doc:
         "Detectors and correctors: verification, extraction, synthesis and \
          simulation of fault-tolerance components.")
    [ info_cmd; verify_cmd; components_cmd; synthesize_cmd; simulate_cmd;
      graph_cmd ]

let () = exit (Cmd.eval main)
