(* Tokens of the guarded-command language. *)

type t =
  | IDENT of string
  | INT of int
  | KW_PROGRAM
  | KW_VAR
  | KW_BOOL
  | KW_TRUE
  | KW_FALSE
  | KW_INVARIANT
  | KW_PRED
  | KW_ACTION
  | KW_FAULT
  | KW_BASED
  | KW_ON
  | KW_SPEC
  | KW_SAFETY
  | KW_LIVENESS
  | KW_NEVER
  | KW_ALWAYS
  | KW_PAIR
  | KW_EVENTUALLY
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | ASSIGN (* := *)
  | ARROW (* -> *)
  | LEADSTO (* ~> *)
  | AND (* && *)
  | OR (* || *)
  | NOT (* ! *)
  | IMPLIES (* => *)
  | IFF (* <=> *)
  | EQ (* = *)
  | NEQ (* != *)
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | PERCENT
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COLON
  | COMMA
  | DOTDOT (* .. *)
  | QUESTION (* ? *)
  | EOF

let keyword = function
  | "program" -> Some KW_PROGRAM
  | "var" -> Some KW_VAR
  | "bool" -> Some KW_BOOL
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | "invariant" -> Some KW_INVARIANT
  | "pred" -> Some KW_PRED
  | "action" -> Some KW_ACTION
  | "fault" -> Some KW_FAULT
  | "based" -> Some KW_BASED
  | "on" -> Some KW_ON
  | "spec" -> Some KW_SPEC
  | "safety" -> Some KW_SAFETY
  | "liveness" -> Some KW_LIVENESS
  | "never" -> Some KW_NEVER
  | "always" -> Some KW_ALWAYS
  | "pair" -> Some KW_PAIR
  | "eventually" -> Some KW_EVENTUALLY
  | "if" -> Some KW_IF
  | "then" -> Some KW_THEN
  | "else" -> Some KW_ELSE
  | _ -> None

let to_string = function
  | IDENT s -> Fmt.str "identifier %S" s
  | INT n -> Fmt.str "integer %d" n
  | KW_PROGRAM -> "'program'"
  | KW_VAR -> "'var'"
  | KW_BOOL -> "'bool'"
  | KW_TRUE -> "'true'"
  | KW_FALSE -> "'false'"
  | KW_INVARIANT -> "'invariant'"
  | KW_PRED -> "'pred'"
  | KW_ACTION -> "'action'"
  | KW_FAULT -> "'fault'"
  | KW_BASED -> "'based'"
  | KW_ON -> "'on'"
  | KW_SPEC -> "'spec'"
  | KW_SAFETY -> "'safety'"
  | KW_LIVENESS -> "'liveness'"
  | KW_NEVER -> "'never'"
  | KW_ALWAYS -> "'always'"
  | KW_PAIR -> "'pair'"
  | KW_EVENTUALLY -> "'eventually'"
  | KW_IF -> "'if'"
  | KW_THEN -> "'then'"
  | KW_ELSE -> "'else'"
  | ASSIGN -> "':='"
  | ARROW -> "'->'"
  | LEADSTO -> "'~>'"
  | AND -> "'&&'"
  | OR -> "'||'"
  | NOT -> "'!'"
  | IMPLIES -> "'=>'"
  | IFF -> "'<=>'"
  | EQ -> "'='"
  | NEQ -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | PERCENT -> "'%'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | COLON -> "':'"
  | COMMA -> "','"
  | DOTDOT -> "'..'"
  | QUESTION -> "'?'"
  | EOF -> "end of input"
