(** Static checking of surface programs: unknown identifiers, kind
    mismatches (bool / int / symbol), non-boolean guards and
    specifications, out-of-domain symbol assignments, duplicate
    declarations, dangling [based on] references.  Run by
    {!Elaborate.elaborate} before building the kernel program. *)

type kind =
  | Kbool
  | Kint
  | Ksym

val kind_to_string : kind -> string

type error = string

(** All problems found, in source order; empty means well-typed. *)
val check : Ast.program -> error list
