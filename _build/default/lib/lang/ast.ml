(* Abstract syntax of the guarded-command language.

   Example source:

     program memory
     var present : bool
     var data : {bot, good, bad}

     invariant present

     action read:
       true -> data := if present then good else bad

     fault page:
       present -> present := false

     spec safety pair data != bad -> data != bad
     spec liveness eventually data = good
*)

type expr =
  | Ident of string (* variable, predicate reference, or symbol *)
  | Int of int
  | Bool of bool
  | Not of expr
  | Binop of binop * expr * expr
  | If of expr * expr * expr

and binop =
  | Band
  | Bor
  | Bimplies
  | Biff
  | Beq
  | Bneq
  | Blt
  | Ble
  | Bgt
  | Bge
  | Badd
  | Bsub
  | Bmul
  | Bmod

type domain_decl =
  | Dbool
  | Drange of int * int
  | Dsymbols of string list (* {bot, good, bad}: symbolic constants *)

type assignment = {
  target : string;
  value : expr option; (* None is the '?' wildcard: any domain value *)
}

type action_decl = {
  aname : string;
  based_on : string option;
  guard : expr;
  assignments : assignment list;
  is_fault : bool;
}

type spec_decl =
  | Safety_never of expr
  | Safety_always of expr
  | Safety_pair of expr * expr (* generalized pair ({P},{Q}) *)
  | Liveness_leadsto of expr * expr
  | Liveness_eventually of expr

type decl =
  | Var of string * domain_decl
  | Invariant of expr
  | Pred_def of string * expr
  | Action of action_decl
  | Spec of spec_decl

type program = {
  pname : string;
  decls : decl list;
}

let rec pp_expr ppf = function
  | Ident s -> Fmt.string ppf s
  | Int n -> Fmt.int ppf n
  | Bool b -> Fmt.bool ppf b
  | Not e -> Fmt.pf ppf "!%a" pp_expr e
  | Binop (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_to_string op) pp_expr b
  | If (c, a, b) ->
    Fmt.pf ppf "(if %a then %a else %a)" pp_expr c pp_expr a pp_expr b

and binop_to_string = function
  | Band -> "&&"
  | Bor -> "||"
  | Bimplies -> "=>"
  | Biff -> "<=>"
  | Beq -> "="
  | Bneq -> "!="
  | Blt -> "<"
  | Ble -> "<="
  | Bgt -> ">"
  | Bge -> ">="
  | Badd -> "+"
  | Bsub -> "-"
  | Bmul -> "*"
  | Bmod -> "%"

let pp_domain ppf = function
  | Dbool -> Fmt.string ppf "bool"
  | Drange (lo, hi) -> Fmt.pf ppf "%d..%d" lo hi
  | Dsymbols names ->
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") string) names

let pp_assignment ppf a =
  match a.value with
  | None -> Fmt.pf ppf "%s := ?" a.target
  | Some e -> Fmt.pf ppf "%s := %a" a.target pp_expr e

let pp_decl ppf = function
  | Var (x, d) -> Fmt.pf ppf "var %s : %a" x pp_domain d
  | Invariant e -> Fmt.pf ppf "invariant %a" pp_expr e
  | Pred_def (x, e) -> Fmt.pf ppf "pred %s = %a" x pp_expr e
  | Action a ->
    Fmt.pf ppf "%s %s%a:@,  %a -> %a"
      (if a.is_fault then "fault" else "action")
      a.aname
      Fmt.(option (fun ppf b -> pf ppf " based on %s" b))
      a.based_on pp_expr a.guard
      Fmt.(list ~sep:(any ", ") pp_assignment)
      a.assignments
  | Spec (Safety_never e) -> Fmt.pf ppf "spec safety never %a" pp_expr e
  | Spec (Safety_always e) -> Fmt.pf ppf "spec safety always %a" pp_expr e
  | Spec (Safety_pair (p, q)) ->
    Fmt.pf ppf "spec safety pair %a -> %a" pp_expr p pp_expr q
  | Spec (Liveness_leadsto (p, q)) ->
    Fmt.pf ppf "spec liveness %a ~> %a" pp_expr p pp_expr q
  | Spec (Liveness_eventually e) ->
    Fmt.pf ppf "spec liveness eventually %a" pp_expr e

let pp ppf p =
  Fmt.pf ppf "@[<v>program %s@,%a@]" p.pname
    Fmt.(list ~sep:cut pp_decl)
    p.decls
