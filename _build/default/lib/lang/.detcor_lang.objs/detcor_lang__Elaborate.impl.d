lib/lang/elaborate.ml: Action Ast Detcor_core Detcor_kernel Detcor_spec Domain Expr Fault Fmt List Liveness Parser Pred Program Safety Spec State String Typecheck
