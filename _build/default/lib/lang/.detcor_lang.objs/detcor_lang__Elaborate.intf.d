lib/lang/elaborate.mli: Ast Detcor_core Detcor_kernel Detcor_spec Fault Pred Program Spec
