lib/lang/typecheck.ml: Ast Fmt List String
