(* Static checking of surface programs, run before elaboration.

   The evaluator raises runtime [Value.Type_error]s; this pass reports the
   same classes of mistakes statically and with better messages:
   unknown identifiers, kind mismatches (boolean vs integer vs symbolic),
   guards that are not boolean, assignments outside the target's domain,
   duplicate declarations, and self-referential predicate definitions. *)

type kind =
  | Kbool
  | Kint
  | Ksym (* a value from a symbolic domain *)

let kind_to_string = function
  | Kbool -> "bool"
  | Kint -> "int"
  | Ksym -> "symbol"

type env = {
  var_kinds : (string * kind) list;
  var_symbols : (string * string list) list; (* symbolic domains *)
  pred_names : string list;
  all_symbols : string list; (* every symbol of every domain *)
}

type error = string

let errf fmt = Fmt.kstr (fun s -> s) fmt

let build_env (src : Ast.program) =
  let vars =
    List.filter_map
      (function Ast.Var (x, d) -> Some (x, d) | _ -> None)
      src.Ast.decls
  in
  let kind_of_domain = function
    | Ast.Dbool -> Kbool
    | Ast.Drange _ -> Kint
    | Ast.Dsymbols _ -> Ksym
  in
  {
    var_kinds = List.map (fun (x, d) -> (x, kind_of_domain d)) vars;
    var_symbols =
      List.filter_map
        (function
          | x, Ast.Dsymbols names -> Some (x, names)
          | _, (Ast.Dbool | Ast.Drange _) -> None)
        vars;
    pred_names =
      List.filter_map
        (function Ast.Pred_def (x, _) -> Some x | _ -> None)
        src.Ast.decls;
    all_symbols =
      List.concat_map
        (function _, Ast.Dsymbols names -> names | _ -> [])
        (List.map (fun (x, d) -> (x, d)) vars);
  }

(* Infer the kind of an expression, accumulating errors.  Unknown kinds
   (after an error) are reported once and treated permissively. *)
let rec infer env errors = function
  | Ast.Int _ -> Some Kint
  | Ast.Bool _ -> Some Kbool
  | Ast.Ident x ->
    if List.mem_assoc x env.var_kinds then Some (List.assoc x env.var_kinds)
    else if List.mem x env.pred_names then Some Kbool
    else if List.mem x env.all_symbols then Some Ksym
    else begin
      errors :=
        errf
          "unknown identifier %s (not a variable, a predicate, or a symbol \
           of any declared domain)"
          x
        :: !errors;
      None
    end
  | Ast.Not e ->
    expect env errors Kbool e "operand of '!'";
    Some Kbool
  | Ast.If (c, a, b) -> (
    expect env errors Kbool c "condition of 'if'";
    let ka = infer env errors a and kb = infer env errors b in
    match (ka, kb) with
    | Some ka, Some kb when ka <> kb ->
      errors :=
        errf "branches of 'if' have different kinds (%s vs %s)"
          (kind_to_string ka) (kind_to_string kb)
        :: !errors;
      Some ka
    | Some k, _ | _, Some k -> Some k
    | None, None -> None)
  | Ast.Binop (op, a, b) -> (
    match op with
    | Ast.Band | Ast.Bor | Ast.Bimplies | Ast.Biff ->
      expect env errors Kbool a (operand_name op);
      expect env errors Kbool b (operand_name op);
      Some Kbool
    | Ast.Beq | Ast.Bneq -> (
      let ka = infer env errors a and kb = infer env errors b in
      (match (ka, kb) with
      | Some ka, Some kb when ka <> kb ->
        errors :=
          errf "comparison of %s with %s" (kind_to_string ka) (kind_to_string kb)
          :: !errors
      | _ -> ());
      check_symbol_membership env errors a b;
      Some Kbool)
    | Ast.Blt | Ast.Ble | Ast.Bgt | Ast.Bge ->
      expect env errors Kint a (operand_name op);
      expect env errors Kint b (operand_name op);
      Some Kbool
    | Ast.Badd | Ast.Bsub | Ast.Bmul | Ast.Bmod ->
      expect env errors Kint a (operand_name op);
      expect env errors Kint b (operand_name op);
      Some Kint)

and operand_name op = Fmt.str "operand of '%s'" (Ast.binop_to_string op)

and expect env errors kind e what =
  match infer env errors e with
  | Some k when k <> kind ->
    errors :=
      errf "%s must be %s, found %s" what (kind_to_string kind)
        (kind_to_string k)
      :: !errors
  | Some _ | None -> ()

(* For [x = sym] where x has a symbolic domain, the symbol must belong to
   that domain — otherwise the test is vacuously false, which is almost
   certainly a typo. *)
and check_symbol_membership env errors a b =
  let check x s =
    match List.assoc_opt x env.var_symbols with
    | Some names when not (List.mem s names) && List.mem s env.all_symbols ->
      errors :=
        errf "symbol %s is not in the domain of %s ({%s})" s x
          (String.concat ", " names)
        :: !errors
    | _ -> ()
  in
  match (a, b) with
  | Ast.Ident x, Ast.Ident s when List.mem_assoc x env.var_symbols ->
    check x s
  | Ast.Ident s, Ast.Ident x when List.mem_assoc x env.var_symbols ->
    check x s
  | _ -> ()

let check_assignment env errors (a : Ast.assignment) =
  match List.assoc_opt a.Ast.target env.var_kinds with
  | None ->
    errors :=
      errf "assignment to undeclared variable %s" a.Ast.target :: !errors
  | Some kind -> (
    match a.Ast.value with
    | None -> () (* wildcard: always in-domain *)
    | Some e -> (
      (match infer env errors e with
      | Some k when k <> kind ->
        errors :=
          errf "assignment of %s value to %s variable %s" (kind_to_string k)
            (kind_to_string kind) a.Ast.target
          :: !errors
      | Some _ | None -> ());
      (* Symbolic constant assignments must stay inside the domain. *)
      match (e, List.assoc_opt a.Ast.target env.var_symbols) with
      | Ast.Ident s, Some names
        when List.mem s env.all_symbols && not (List.mem s names) ->
        errors :=
          errf "symbol %s is not in the domain of %s ({%s})" s a.Ast.target
            (String.concat ", " names)
          :: !errors
      | _ -> ()))

let check_duplicates (src : Ast.program) errors =
  let dup what names =
    let sorted = List.sort String.compare names in
    let rec go = function
      | a :: (b :: _ as rest) ->
        if String.equal a b then
          errors := errf "duplicate %s %s" what a :: !errors;
        go rest
      | [ _ ] | [] -> ()
    in
    go sorted
  in
  dup "variable"
    (List.filter_map
       (function Ast.Var (x, _) -> Some x | _ -> None)
       src.Ast.decls);
  dup "action"
    (List.filter_map
       (function Ast.Action a -> Some a.Ast.aname | _ -> None)
       src.Ast.decls);
  dup "predicate"
    (List.filter_map
       (function Ast.Pred_def (x, _) -> Some x | _ -> None)
       src.Ast.decls)

let check_based_on (src : Ast.program) errors =
  let action_names =
    List.filter_map
      (function Ast.Action a -> Some a.Ast.aname | _ -> None)
      src.Ast.decls
  in
  List.iter
    (function
      | Ast.Action { aname; based_on = Some b; _ } ->
        if not (List.mem b action_names) then
          errors :=
            errf "action %s is based on unknown action %s" aname b :: !errors
      | _ -> ())
    src.Ast.decls

let check (src : Ast.program) : error list =
  let env = build_env src in
  let errors = ref [] in
  check_duplicates src errors;
  check_based_on src errors;
  let boolean what e = expect env errors Kbool e what in
  List.iter
    (function
      | Ast.Var _ -> ()
      | Ast.Invariant e -> boolean "invariant" e
      | Ast.Pred_def (x, e) -> boolean (Fmt.str "predicate %s" x) e
      | Ast.Action a ->
        boolean (Fmt.str "guard of %s" a.Ast.aname) a.Ast.guard;
        if a.Ast.assignments = [] then
          errors :=
            errf "action %s has no assignments" a.Ast.aname :: !errors;
        List.iter (check_assignment env errors) a.Ast.assignments
      | Ast.Spec (Ast.Safety_never e) | Ast.Spec (Ast.Safety_always e)
      | Ast.Spec (Ast.Liveness_eventually e) ->
        boolean "spec expression" e
      | Ast.Spec (Ast.Safety_pair (p, q))
      | Ast.Spec (Ast.Liveness_leadsto (p, q)) ->
        boolean "spec expression" p;
        boolean "spec expression" q)
    src.Ast.decls;
  List.rev !errors
