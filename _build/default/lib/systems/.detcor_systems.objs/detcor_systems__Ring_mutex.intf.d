lib/systems/ring_mutex.mli: Corrector Detcor_core Detcor_kernel Detcor_spec Domain Fault Pred Program Spec State Token_ring
