lib/systems/token_ring.mli: Corrector Detcor_core Detcor_kernel Detcor_spec Domain Fault Pred Program Spec State
