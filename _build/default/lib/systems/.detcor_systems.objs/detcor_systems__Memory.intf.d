lib/systems/memory.mli: Corrector Detcor_core Detcor_kernel Detcor_spec Detector Domain Fault Pred Program Spec Value
