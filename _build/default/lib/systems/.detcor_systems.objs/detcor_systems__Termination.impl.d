lib/systems/termination.ml: Action Detcor_core Detcor_kernel Detcor_spec Detector Domain Fault Fmt Fun List Pred Program Spec State Value
