lib/systems/barrier.ml: Action Detcor_core Detcor_kernel Detcor_spec Domain Fault Fmt Fun List Liveness Pred Program Safety Spec State Value
