lib/systems/memory.ml: Action Corrector Detcor_core Detcor_kernel Detcor_spec Detector Domain Fault Fmt Liveness Pred Program Safety Spec State Value
