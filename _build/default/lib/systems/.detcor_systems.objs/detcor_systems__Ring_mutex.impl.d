lib/systems/ring_mutex.ml: Action Corrector Detcor_core Detcor_kernel Detcor_spec Domain Fault Fmt Fun List Liveness Pred Program Safety Spec State String Token_ring Value
