lib/systems/byzantine.ml: Action Corrector Detcor_core Detcor_kernel Detcor_spec Detector Domain Fault Fmt List Liveness Pred Program Safety Spec State Value
