lib/systems/termination.mli: Detcor_core Detcor_kernel Detcor_spec Detector Domain Fault Pred Program Spec
