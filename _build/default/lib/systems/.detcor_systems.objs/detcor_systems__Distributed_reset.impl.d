lib/systems/distributed_reset.ml: Action Corrector Detcor_core Detcor_kernel Detcor_spec Domain Fault Fmt Fun List Liveness Pred Program Safety Spec State Value
