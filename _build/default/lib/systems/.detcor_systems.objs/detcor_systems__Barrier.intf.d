lib/systems/barrier.mli: Detcor_core Detcor_kernel Detcor_spec Domain Fault Pred Program Spec State
