lib/systems/byzantine.mli: Corrector Detcor_core Detcor_kernel Detcor_spec Detector Domain Fault Pred Program Spec State Value
