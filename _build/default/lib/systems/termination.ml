(* Termination detection — the Dijkstra–Feijen–van Gasteren probe
   algorithm, the paper's introduction's "termination detection" case
   study, and the purest example of the paper's notion of a detector: the
   probe machinery refines

       'probe succeeded' detects 'all processes are passive'.

   n processes on a ring.  Each process is active or passive; an active
   process may activate a peer (the shared-memory analogue of sending a
   message), marking itself black, or spontaneously become passive.  A
   token circulates from the initiator (process 0) downward; a black
   process blackens the token and whitens itself as the token passes.
   When the token returns to a passive, white initiator and the token is
   white, the initiator declares termination; otherwise it launches a
   fresh white probe.

   Machine-checked claims (tests and bench):
   - Safeness:   declared ⇒ all passive (the classic DFG safety theorem);
   - Progress:   once all passive, the probe eventually declares;
   - Stability:  a declaration is never retracted while quiescence holds
     (quiescence is closed: only active processes activate peers);
   - the whole 'Z detects X' specification from the fresh-probe states;
   - a *conservative* fault (spuriously blackening processes or the
     token) is masked: it can only delay detection, never falsify it —
     the detector is masking tolerant to blackening.  A fault that
     whitens is NOT tolerated fail-safe: the checker exhibits a false
     detection, reproducing why DFG's colors must err toward black. *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

type config = { processes : int }

let make_config n =
  if n < 2 then invalid_arg "Termination.make_config: need >= 2 processes";
  { processes = n }

let default = make_config 3

let activevar i = Fmt.str "act%d" i
let colorvar i = Fmt.str "col%d" i (* true = black *)

let vars cfg =
  [
    ("tok", Domain.range 0 (cfg.processes - 1)); (* token position *)
    ("tokblack", Domain.boolean);
    ("declared", Domain.boolean);
  ]
  @ List.concat_map
      (fun i -> [ (activevar i, Domain.boolean); (colorvar i, Domain.boolean) ])
      (List.init cfg.processes Fun.id)

let procs cfg = List.init cfg.processes Fun.id

let active st i = Value.as_bool (State.get st (activevar i))
let black st i = Value.as_bool (State.get st (colorvar i))
let token_at st = Value.as_int (State.get st "tok")
let token_black st = Value.as_bool (State.get st "tokblack")
let declared_in st = Value.as_bool (State.get st "declared")

(* X: global quiescence. *)
let quiescent cfg =
  Pred.make "all passive" (fun st ->
      List.for_all (fun i -> not (active st i)) (procs cfg))

(* Z: the initiator has declared termination. *)
let declared = Pred.make "declared" declared_in

let actions cfg =
  let n = cfg.processes in
  (* An active process hands work to a peer and blackens itself. *)
  let activate i j =
    Action.deterministic
      (Fmt.str "activate_%d_%d" i j)
      (Pred.make
         (Fmt.str "act%d /\\ !act%d" i j)
         (fun st -> active st i && not (active st j)))
      (fun st ->
        State.update_many st
          [ (activevar j, Value.bool true); (colorvar i, Value.bool true) ])
  in
  (* Spontaneous passivation. *)
  let passivate i =
    Action.deterministic
      (Fmt.str "passivate_%d" i)
      (Pred.make (Fmt.str "act%d" i) (fun st -> active st i))
      (fun st -> State.set st (activevar i) (Value.bool false))
  in
  (* A passive non-initiator forwards the token toward the initiator,
     blackening it if the process is black, and whitening itself. *)
  let forward i =
    Action.deterministic
      (Fmt.str "forward_%d" i)
      (Pred.make
         (Fmt.str "token at passive %d" i)
         (fun st -> token_at st = i && (not (active st i)) && not (declared_in st)))
      (fun st ->
        State.update_many st
          [
            ("tok", Value.int (i - 1));
            ("tokblack", Value.bool (token_black st || black st i));
            (colorvar i, Value.bool false);
          ])
  in
  (* The initiator concludes a probe: declare on a clean probe, or launch
     a fresh white one. *)
  let conclude_clean =
    Action.deterministic "declare"
      (Pred.make "clean probe at initiator" (fun st ->
           token_at st = 0
           && (not (active st 0))
           && (not (token_black st))
           && (not (black st 0))
           && not (declared_in st)))
      (fun st -> State.set st "declared" (Value.bool true))
  in
  let relaunch =
    Action.deterministic "relaunch"
      (Pred.make "dirty probe at initiator" (fun st ->
           token_at st = 0
           && (not (active st 0))
           && (token_black st || black st 0)
           && not (declared_in st)))
      (fun st ->
        State.update_many st
          [
            ("tok", Value.int (n - 1));
            ("tokblack", Value.bool false);
            (colorvar 0, Value.bool false);
          ])
  in
  List.concat_map
    (fun i ->
      [ passivate i ]
      @ List.filter_map
          (fun j -> if i = j then None else Some (activate i j))
          (procs cfg))
    (procs cfg)
  @ List.filter_map (fun i -> if i = 0 then None else Some (forward i)) (procs cfg)
  @ [ conclude_clean; relaunch ]

let program cfg =
  Program.make ~name:"termination-detection" ~vars:(vars cfg)
    ~actions:(actions cfg)

(* U: fresh-probe states — the token was just (re)launched black-free at
   the tail... we take the canonical initial condition of DFG: the token
   is anywhere, everything may be active, but the bookkeeping is
   conservative: every process is black and so is the token, and nothing
   is declared.  From these states no probe can lie. *)
let fresh cfg =
  Pred.make "conservative start" (fun st ->
      (not (declared_in st))
      && token_black st
      && List.for_all (fun i -> black st i) (procs cfg))

let detector cfg =
  Detector.make ~name:"probe detects quiescence" ~witness:declared
    ~detection:(quiescent cfg) ()

(* SPEC: never a false declaration (Safeness as a state property), a
   declaration once quiescent (Progress), declarations irrevocable. *)
let spec cfg =
  Spec.detects ~witness:declared ~detection:(quiescent cfg)

(* Conservative corruption: processes and token may be spuriously
   blackened — finitely often.  Blackening can only delay detection. *)
let blackening cfg =
  Fault.make "blackening"
    (Action.deterministic "F:blacken-token" Pred.true_ (fun st ->
         State.set st "tokblack" (Value.bool true))
    :: List.map
         (fun i ->
           Action.deterministic
             (Fmt.str "F:blacken-%d" i)
             Pred.true_
             (fun st -> State.set st (colorvar i) (Value.bool true)))
         (procs cfg))

(* The unsound counterpart: spuriously *whitening* the token — the fault
   the algorithm cannot tolerate. *)
let whitening =
  Fault.make "whitening"
    [
      Action.deterministic "F:whiten-token" Pred.true_ (fun st ->
          State.set st "tokblack" (Value.bool false));
    ]
