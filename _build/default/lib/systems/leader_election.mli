(** Self-stabilizing leader election on a ring (maximum-identifier
    flooding) — a case study from the paper's introduction; like the
    token ring, the protocol is its own corrector of the leadership
    predicate. *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

type config = { processes : int }

val make_config : int -> config
val default : config
val ldrvar : int -> string
val max_id : config -> int
val vars : config -> (string * Domain.t) list
val candidate : State.t -> int -> int

(** Every candidate equals the maximum identifier. *)
val elected : config -> Pred.t

val program : config -> Program.t

(** Transient corruption of any candidate variable. *)
val corruption : config -> Fault.t

(** Leadership stable once established; eventually established. *)
val spec : config -> Spec.t

val invariant : config -> Pred.t
val corrector : config -> Corrector.t
