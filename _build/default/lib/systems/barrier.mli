(** Barrier computation — a case study from the paper's introduction.

    The intolerant variant caches the barrier check into a flag (a
    witness that goes stale when a fault restarts a peer); the tolerant
    variant evaluates the detector witness "I am a minimum" at the
    advance itself and is masking tolerant to phase loss. *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

type config = {
  processes : int;
  phases : int;
}

val make_config : ?phases:int -> int -> config
val default : config
val phvar : int -> string
val vars : config -> (string * Domain.t) list
val phase : State.t -> int -> int

(** No two processes more than one phase apart. *)
val window : config -> Pred.t

val all_done : config -> Pred.t

(** The detector witness of process [i]: nobody is behind it. *)
val is_minimum : config -> int -> Pred.t

(** Cached-witness variant: detect into [done.i], advance on the flag. *)
val intolerant : config -> Program.t

(** Its invariant: the window plus witness freshness. *)
val intolerant_invariant : config -> Pred.t

(** Fresh-witness variant — masking tolerant to phase loss. *)
val tolerant : config -> Program.t

(** Phase loss: a process restarts at phase 0 (at most [max_losses]
    times). *)
val phase_loss : ?max_losses:int -> config -> Fault.t

(** No barrier overtaking (safety); everyone completes (liveness). *)
val spec : config -> Spec.t

val invariant : config -> Pred.t

(** The unguarded base program the tolerant barrier refines; the
    tolerant actions are [based_on] its advances, enabling Theorem 3.4
    extraction of the detection predicates. *)
val unguarded : config -> Program.t
