(** Termination detection — the Dijkstra–Feijen–van Gasteren probe
    algorithm as the purest instance of the paper's detectors: the probe
    machinery refines ['declared' detects 'all passive'].  Conservative
    blackening faults are masked; whitening faults are exhibited as
    unsound by the checker. *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

type config = { processes : int }

val make_config : int -> config
val default : config
val activevar : int -> string
val colorvar : int -> string
val vars : config -> (string * Domain.t) list

(** X: every process is passive (closed: only active processes activate
    peers). *)
val quiescent : config -> Pred.t

(** Z: the initiator has declared termination. *)
val declared : Pred.t

val program : config -> Program.t

(** U: conservative start — everything black, nothing declared. *)
val fresh : config -> Pred.t

val detector : config -> Detector.t

(** The full ['declared' detects 'quiescent'] specification. *)
val spec : config -> Spec.t

(** Spurious blackening of processes or the token (conservative — only
    delays detection). *)
val blackening : config -> Fault.t

(** Spurious whitening of the token — the fault DFG cannot tolerate. *)
val whitening : Fault.t
