(** Token-based mutual exclusion layered on the Dijkstra ring: a
    privileged process may enter its critical section and passes the
    privilege on exit; a local corrector forces non-privileged processes
    out.  Nonmasking tolerant to corruption of counters and flags. *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

type config = Token_ring.config

val make_config : ?k:int -> int -> config
val default : config
val csvar : int -> string
val vars : config -> (string * Domain.t) list
val in_cs : int -> Pred.t

(** Number of processes currently in their critical section. *)
val cs_count : config -> State.t -> int

(** Ring legitimate and critical sections only under privilege. *)
val invariant : config -> Pred.t

(** The tolerant program (with the local corrector). *)
val program : config -> Program.t

(** Without the local corrector: recovery of corrupted flags then relies
    on the circulating privilege alone. *)
val intolerant : config -> Program.t

(** Negative control: exit forgets to leave the critical section, so the
    invariant is not closed and no tolerance class holds. *)
val broken : config -> Program.t

(** Corrupt any counter or critical-section flag. *)
val corruption : config -> Fault.t

(** At most one process in its critical section; everyone enters
    infinitely often. *)
val spec : config -> Spec.t

val corrector : config -> Corrector.t
