(** Triple modular redundancy (Section 6.1): the intolerant program [IR],
    the detector-restricted [DR;IR] (fail-safe), and the full TMR program
    [DR;IR [] CR] (masking), under corruption of at most one input. *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

val input_domain : Domain.t
val out_domain : Domain.t
val vars : (string * Domain.t) list

(** The majority value of the three inputs, when at least two agree. *)
val majority : State.t -> Value.t option

val out_bot : Pred.t

(** out = uncor: the output equals the uncorrupted (majority) input. *)
val out_is_uncor : Pred.t

(** SPEC_io: the output is only assigned the value of an uncorrupted
    input, and is eventually assigned. *)
val spec : Spec.t

(** S: all inputs agree; output unassigned or correct. *)
val invariant : Pred.t

(** T: at most one input corrupted; output unassigned or correct. *)
val span_pred : Pred.t

(** IR: out := x. *)
val intolerant : Program.t

(** The fault class: corrupts at most one of the three inputs. *)
val one_corruption : Fault.t

(** The witness predicate of DR: (x=y ∨ x=z). *)
val dr_witness : Pred.t

(** The detection predicate of DR: x = uncor. *)
val dr_detection : Pred.t

val detector : Detector.t

(** DR;IR — fail-safe tolerant. *)
val failsafe : Program.t

(** CR with witness and correction predicate out = uncor. *)
val corrector : Corrector.t

(** DR;IR [] CR — the TMR program, masking tolerant. *)
val masking : Program.t
