(* Triple modular redundancy (Section 6.1).

   Three inputs x, y, z and one output [out].  In the absence of faults all
   inputs are identical; a fault corrupts at most one input.  SPEC_io
   requires the output to be assigned the value of an uncorrupted input.

   The paper constructs the TMR program by adding to the intolerant
   program IR (out := x) a detector DR with witness (x=y ∨ x=z) and
   detection predicate (x = uncor), then a corrector CR that copies y or z
   when they are sound.  With at most one corruption, the uncorrupted
   value is the majority of the three inputs. *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

let input_domain = Domain.range 0 1
let out_domain = Domain.with_bot (Domain.range 0 1)

let vars =
  [
    ("x", input_domain);
    ("y", input_domain);
    ("z", input_domain);
    ("out", out_domain);
  ]

let v st name = State.get st name
let out_bot = Pred.make "out=bot" (fun st -> Value.equal (v st "out") Value.bot)

(* The majority of the three inputs — defined whenever at least two agree,
   which the "at most one corruption" fault class guarantees. *)
let majority st =
  let x = v st "x" and y = v st "y" and z = v st "z" in
  if Value.equal x y || Value.equal x z then Some x
  else if Value.equal y z then Some y
  else None

(* uncor: the value of an uncorrupted input (the majority under at most one
   corruption). *)
let out_is_uncor =
  Pred.make "out=uncor" (fun st ->
      match majority st with
      | Some m -> Value.equal (v st "out") m
      | None -> false)

(* SPEC_io: the output is only ever assigned the value of an uncorrupted
   input, and it is eventually assigned. *)
let spec =
  Spec.make ~name:"SPEC_io"
    ~safety:
      (Safety.make ~name:"output only from uncorrupted input"
         ~bad_transition:(fun st st' ->
           Value.equal (v st "out") Value.bot
           && (not (Value.equal (v st' "out") Value.bot))
           && not
                (match majority st with
                | Some m -> Value.equal (v st' "out") m
                | None -> false))
         ())
    ~liveness:
      (Liveness.eventually ~name:"eventually out=uncor" out_is_uncor)
    ()

(* S: no input corrupted, output unassigned or already correct. *)
let invariant =
  Pred.make "S_tmr" (fun st ->
      Value.equal (v st "x") (v st "y")
      && Value.equal (v st "y") (v st "z")
      && (Value.equal (v st "out") Value.bot || Value.equal (v st "out") (v st "x")))

(* T: at most one input corrupted, output unassigned or correct. *)
let span_pred =
  Pred.make "T_tmr" (fun st ->
      match majority st with
      | None -> false
      | Some m ->
        Value.equal (v st "out") Value.bot || Value.equal (v st "out") m)

(* ------------------------------------------------------------------ *)
(* Fault-intolerant program IR: copy x into out.                       *)
(* ------------------------------------------------------------------ *)

let copy_action ?based_on ~guard name src =
  Action.deterministic ?based_on name guard (fun st ->
      State.set st "out" (v st src))

let intolerant =
  Program.make ~name:"IR" ~vars
    ~actions:[ copy_action ~guard:out_bot "IR1" "x" ]

(* ------------------------------------------------------------------ *)
(* Fault: corrupts at most one of the three inputs.                    *)
(* ------------------------------------------------------------------ *)

let no_input_faulted =
  Pred.make "no-input-faulted" (fun st ->
      match State.find_opt st "faulted" with
      | Some (Value.Bool b) -> not b
      | Some _ | None -> true)

let corrupt_input name =
  Action.make
    (Fmt.str "F:corrupt-%s" name)
    no_input_faulted
    (fun st ->
      List.map
        (fun value ->
          State.set (State.set st name value) "faulted" (Value.bool true))
        (Domain.values input_domain))

let one_corruption =
  Fault.make "one-input-corruption"
    ~aux_vars:[ ("faulted", Domain.boolean) ]
    [ corrupt_input "x"; corrupt_input "y"; corrupt_input "z" ]

(* ------------------------------------------------------------------ *)
(* DR ; IR — the detector-restricted program (fail-safe).              *)
(* The witness predicate of DR is (x=y ∨ x=z); its detection predicate  *)
(* is (x = uncor).                                                      *)
(* ------------------------------------------------------------------ *)

let dr_witness =
  Pred.make "x=y \\/ x=z" (fun st ->
      Value.equal (v st "x") (v st "y") || Value.equal (v st "x") (v st "z"))

let dr_detection =
  Pred.make "x=uncor" (fun st ->
      match majority st with
      | Some m -> Value.equal (v st "x") m
      | None -> false)

let detector = Detector.make ~name:"DR" ~witness:dr_witness ~detection:dr_detection ()

let failsafe =
  Program.make ~name:"DR;IR" ~vars
    ~actions:
      [ copy_action ~based_on:"IR1" ~guard:(Pred.and_ out_bot dr_witness) "DR1" "x" ]

(* ------------------------------------------------------------------ *)
(* CR — the corrector, with correction and witness predicate           *)
(* out = uncor.                                                        *)
(* ------------------------------------------------------------------ *)

let cr_guard src other1 other2 =
  Pred.make
    (Fmt.str "out=bot /\\ (%s sound)" src)
    (fun st ->
      Value.equal (v st "out") Value.bot
      && (Value.equal (v st src) (v st other1)
         || Value.equal (v st src) (v st other2)))

let corrector_actions =
  [
    copy_action ~guard:(cr_guard "y" "z" "x") "CR1" "y";
    copy_action ~guard:(cr_guard "z" "x" "y") "CR2" "z";
  ]

let corrector = Corrector.of_invariant out_is_uncor

(* DR;IR [] CR — the full TMR program (masking). *)
let masking =
  Program.add_actions failsafe corrector_actions
  |> Program.with_name "DR;IR[]CR"
