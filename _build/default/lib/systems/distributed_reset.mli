(** Distributed reset — a diffusing reset wave over a line of processes,
    structured exactly as the paper prescribes: a detector raises the
    request on local corruption, a corrector (the wave) re-establishes
    the global predicate.  Nonmasking tolerant to application-state
    corruption. *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

type config = { processes : int }

val make_config : int -> config
val default : config
val xvar : int -> string
val wvar : int -> string
val vars : config -> (string * Domain.t) list

(** Application zeroed, machinery idle, no pending request. *)
val settled : config -> Pred.t

(** Some application cell is corrupted. *)
val corrupted : config -> Pred.t

val program : config -> Program.t

(** The refuted first design (the root restarts over a draining release
    wave): the fair-cycle checker exhibits an overlapping-waves livelock
    in which a corrupted tail cell is never reset. *)
val buggy : config -> Program.t

(** Transient corruption of any application cell. *)
val corruption : config -> Fault.t

(** [settled] stable and eventually re-established. *)
val spec : config -> Spec.t

val invariant : config -> Pred.t
val corrector : config -> Corrector.t
