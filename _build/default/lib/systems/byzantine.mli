(** Byzantine agreement (Section 6.2): the intolerant program [IB], the
    detector-restricted [IB [] DB] (fail-safe), and the full
    [IB [] DB [] CB] (masking), under at-most-one Byzantine process.
    Parameterized by the number of non-general processes (the paper's
    configuration is 3, i.e. n = 4). *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

type config = { non_generals : int }

(** The paper's configuration: 3 non-generals (n = 4, f = 1). *)
val default : config

val vars : config -> (string * Domain.t) list
val procs : config -> int list

(** Variable names: [dvar 0] is the general's decision, [bvar j] the
    Byzantine mode bit, [ovar j] the output of non-general [j]. *)
val dvar : int -> string

val ovar : int -> string
val bvar : int -> string

(** Majority of the non-general decisions, when defined. *)
val majority : config -> State.t -> Value.t option

(** corrdecn (Section 6.2): d.g if the general is honest, else the
    majority of the non-general decisions. *)
val corrdecn : config -> State.t -> Value.t option

(** Every non-Byzantine non-general has produced an output. *)
val all_output : config -> Pred.t

(** Agreement + validity (safety), termination (liveness). *)
val spec : config -> Spec.t

(** S (weak): no Byzantine process; decisions/outputs consistent with
    d.g.  Closed in the intolerant IB. *)
val invariant_weak : config -> Pred.t

(** S (strong): additionally, outputs exist only once every decision is in
    — the fault-free reachable states of the DB/CB-equipped programs. *)
val invariant : config -> Pred.t

val none_byz : config -> Pred.t

(** The fault class: at most one process becomes Byzantine and then
    changes its decision/output arbitrarily (finitely often). *)
val byzantine_faults : config -> Fault.t

(** IB — fault-intolerant. *)
val intolerant : config -> Program.t

(** Witness of DB.j: all non-general decisions assigned and d.j equals
    their majority. *)
val db_witness : config -> int -> Pred.t

(** Detection predicate of DB.j: d.j = corrdecn. *)
val db_detection : config -> int -> Pred.t

val detector : config -> int -> Detector.t

(** IB [] DB — fail-safe tolerant. *)
val failsafe : config -> Program.t

val corrector : config -> int -> Corrector.t

(** IB [] DB [] CB — masking tolerant. *)
val masking : config -> Program.t
