(* The memory-access example of Sections 3.3, 4.3 and 5.1 (Figures 1-3).

   A program obtains the value stored at address [addr] in memory.  We
   model the single-address memory by:
   - [present]: whether <addr, val> is in MEM;
   - [data]: the output — [bot] (unassigned), [good] (the correct value
     val), or [bad] (any incorrect value, the arbitrary result of reading
     an absent address);
   - [z1]: the witness variable of the detector (programs pf, pm).

   The fault class is a page fault that removes <addr, val> from memory
   "initially" — before the detector has witnessed the address (guard
   ¬Z1), as in the paper's scenario where the fault precedes the access.

   SPEC_mem: the data is never set to an incorrect value (safety), and it
   is eventually set to the correct value (liveness). *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

let good = Value.sym "good"
let bad = Value.sym "bad"

let data_domain = Domain.of_values [ Value.bot; good; bad ]

(* X1: <addr, val> is currently in the memory. *)
let x1 =
  Pred.make "X1" (fun st ->
      match State.find_opt st "present" with
      | Some (Value.Bool b) -> b
      | Some _ | None -> false)

(* Z1: the detector's witness variable (false when the program has no such
   variable, as in p and pn). *)
let z1 =
  Pred.make "Z1" (fun st ->
      match State.find_opt st "z1" with
      | Some (Value.Bool b) -> b
      | Some _ | None -> false)

(* U1: Z1 is truthified only when X1 holds — the fault span T. *)
let u1 = Pred.make "U1" (fun st -> (not (Pred.holds z1 st)) || Pred.holds x1 st)

(* S = U1 ∧ X1, the invariant (Sections 3.3, 4.3, 5.1). *)
let s = Pred.make "S" (fun st -> Pred.holds u1 st && Pred.holds x1 st)

let t = u1

let data_is v = Pred.make (Fmt.str "data=%s" (Value.to_string v))
    (fun st -> Value.equal (State.get st "data") v)

(* Reading MEM at addr: the stored value when present, an arbitrary value
   otherwise (the paper's "(val | <addr,val> in MEM)" returning an
   arbitrary value when no tuple exists). *)
let read_mem st =
  if Pred.holds x1 st then [ State.set st "data" good ]
  else [ State.set st "data" good; State.set st "data" bad ]

(* SPEC_mem: never set data to an incorrect value; eventually set it to the
   correct one. *)
let spec =
  Spec.make ~name:"SPEC_mem"
    ~safety:
      (Safety.make ~name:"never write incorrect data"
         ~bad_transition:(fun st st' ->
           (not (Value.equal (State.get st "data") bad))
           && Value.equal (State.get st' "data") bad)
         ())
    ~liveness:(Liveness.eventually ~name:"eventually data=good" (data_is good))
    ()

(* ------------------------------------------------------------------ *)
(* The fault-intolerant program p (Section 3.3).                       *)
(* ------------------------------------------------------------------ *)

let base_vars = [ ("present", Domain.boolean); ("data", data_domain) ]

let read_action ?based_on ~guard name =
  Action.make ?based_on name guard read_mem

let intolerant =
  Program.make ~name:"p"
    ~vars:base_vars
    ~actions:[ read_action ~guard:Pred.true_ "p_read" ]

(* ------------------------------------------------------------------ *)
(* The page fault (Section 3.3): <addr, val> is initially removed.     *)
(* ------------------------------------------------------------------ *)

let page_fault =
  Fault.make "page-fault"
    [
      Action.deterministic "F:page-fault"
        (Pred.and_ x1 (Pred.not_ z1))
        (fun st -> State.set st "present" (Value.bool false));
    ]

(* A second fault class, for the multitolerance showcase: transient
   corruption of the output cell itself.  No program can mask it (the
   corrupting write is the safety violation), but pn and pm recover from
   it — they are nonmasking tolerant to data corruption while being
   (respectively) nonmasking and masking tolerant to page faults. *)
let data_corruption =
  Fault.make "data-corruption"
    [
      Action.deterministic "F:corrupt-data"
        (Pred.make "data#bot" (fun st ->
             not (Value.equal (State.get st "data") Value.bot)))
        (fun st -> State.set st "data" bad);
    ]

(* SPEC_mem weakened for corrupting faults: the *program* never writes
   incorrect data (fault writes are exempt), and the data is eventually
   correct.  With bad transitions attributed to any step, the corrupting
   fault itself violates SSPEC, so for the data-corruption class only the
   nonmasking obligations are satisfiable; this is the specification used
   for that class. *)
let spec_recovery =
  Spec.make ~name:"SPEC_mem_recovery"
    ~liveness:(Liveness.eventually ~name:"eventually data=good" (data_is good))
    ()

(* ------------------------------------------------------------------ *)
(* pf: fail-safe page-fault tolerance (Figure 1).                      *)
(* pf1 detects X1 and truthifies Z1; the access runs only under Z1.    *)
(* ------------------------------------------------------------------ *)

let with_z1 = base_vars @ [ ("z1", Domain.boolean) ]

let failsafe =
  Program.make ~name:"pf"
    ~vars:with_z1
    ~actions:
      [
        Action.deterministic "pf1"
          (Pred.and_ x1 (Pred.not_ z1))
          (fun st -> State.set st "z1" (Value.bool true));
        read_action ~based_on:"p_read" ~guard:z1 "pf2";
      ]

(* The detector of pf: Z1 detects X1, implemented by action pf1. *)
let pf_detector = Detector.make ~name:"Z1 detects X1" ~witness:z1 ~detection:x1 ()

(* ------------------------------------------------------------------ *)
(* pn: nonmasking page-fault tolerance (Figure 2).                     *)
(* pn1 restores the missing tuple; pn2 is the intolerant access.       *)
(* ------------------------------------------------------------------ *)

let nonmasking =
  Program.make ~name:"pn"
    ~vars:base_vars
    ~actions:
      [
        Action.deterministic "pn1" (Pred.not_ x1) (fun st ->
            State.set st "present" (Value.bool true));
        read_action ~based_on:"p_read" ~guard:Pred.true_ "pn2";
      ]

(* The corrector of pn: X1 corrects X1 (witness = correction predicate),
   implemented by action pn1. *)
let pn_corrector = Corrector.of_invariant x1

(* ------------------------------------------------------------------ *)
(* pm: masking page-fault tolerance (Section 5.1, Figure 3).           *)
(* pm1 restores the tuple, pm2 detects it, pm3 accesses under Z1.      *)
(* ------------------------------------------------------------------ *)

let masking =
  Program.make ~name:"pm"
    ~vars:with_z1
    ~actions:
      [
        Action.deterministic "pm1" ~based_on:"pn1" (Pred.not_ x1) (fun st ->
            State.set st "present" (Value.bool true));
        Action.deterministic "pm2"
          (Pred.and_ x1 (Pred.not_ z1))
          (fun st -> State.set st "z1" (Value.bool true));
        read_action ~based_on:"pn2" ~guard:z1 "pm3";
      ]

let pm_detector = pf_detector
let pm_corrector = pn_corrector
