(** The memory-access example of Sections 3.3, 4.3 and 5.1 (Figures 1-3):
    the fault-intolerant program [p], the fail-safe [pf], the nonmasking
    [pn] and the masking [pm] page-fault-tolerant programs, together with
    the page-fault class, SPEC_mem, and the paper's predicates X1, Z1, U1,
    S, T. *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

(** The correct and incorrect data values; [Value.bot] means unassigned. *)
val good : Value.t

val bad : Value.t
val data_domain : Domain.t

(** X1: <addr, val> is currently in the memory. *)
val x1 : Pred.t

(** Z1: the detector's witness. *)
val z1 : Pred.t

(** U1 = (Z1 ⇒ X1): the fault span T. *)
val u1 : Pred.t

(** S = U1 ∧ X1: the invariant. *)
val s : Pred.t

val t : Pred.t
val data_is : Value.t -> Pred.t

(** SPEC_mem: never write incorrect data; eventually write the correct
    data. *)
val spec : Spec.t

(** The fault-intolerant program [p]. *)
val intolerant : Program.t

(** The page fault: <addr, val> is removed before the access begins. *)
val page_fault : Fault.t

(** Transient corruption of the output cell — the second fault class of
    the multitolerance showcase. *)
val data_corruption : Fault.t

(** SPEC_mem without the never-write-bad safety part: the specification
    against which data corruption can (only) be tolerated nonmasking. *)
val spec_recovery : Spec.t

(** [pf] — fail-safe tolerant (Figure 1). *)
val failsafe : Program.t

(** [Z1 detects X1], implemented by action pf1. *)
val pf_detector : Detector.t

(** [pn] — nonmasking tolerant (Figure 2). *)
val nonmasking : Program.t

(** [X1 corrects X1], implemented by action pn1. *)
val pn_corrector : Corrector.t

(** [pm] — masking tolerant (Figure 3). *)
val masking : Program.t

val pm_detector : Detector.t
val pm_corrector : Corrector.t
