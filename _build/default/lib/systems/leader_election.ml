(* Self-stabilizing leader election on a ring — another case study from
   the paper's introduction.

   Each process i has a fixed identifier (its index) and a candidate
   variable ldr.i.  The protocol floods the maximum identifier:

     elect.i :: ldr.i <> max(ldr.(i-1), id.i) -> ldr.i := max(ldr.(i-1), id.i)

   The legitimate states are "every candidate equals the maximum
   identifier"; from any state — in particular after arbitrary corruption
   of the candidates — the ring converges back to it in at most two
   rounds, so the protocol is its own corrector of the leadership
   predicate (witness = correction predicate, like the token ring). *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

type config = { processes : int }

let make_config n =
  if n < 2 then invalid_arg "Leader_election.make_config: need >= 2 processes";
  { processes = n }

let default = make_config 4

let ldrvar i = Fmt.str "ldr%d" i

let id_of i = i (* fixed identifiers: process index *)

let max_id cfg = cfg.processes - 1

let vars cfg =
  List.init cfg.processes (fun i -> (ldrvar i, Domain.range 0 (max_id cfg)))

let candidate st i = Value.as_int (State.get st (ldrvar i))

let procs cfg = List.init cfg.processes Fun.id

(* The intended value at process i given its predecessor's candidate. *)
let intended cfg st i =
  let pred_ix = (i - 1 + cfg.processes) mod cfg.processes in
  max (candidate st pred_ix) (id_of i)

let elected cfg =
  Pred.make "all elect the maximum id" (fun st ->
      List.for_all (fun i -> candidate st i = max_id cfg) (procs cfg))

let actions cfg =
  List.map
    (fun i ->
      Action.deterministic
        (Fmt.str "elect%d" i)
        (Pred.make
           (Fmt.str "ldr%d stale" i)
           (fun st -> candidate st i <> intended cfg st i))
        (fun st -> State.set st (ldrvar i) (Value.int (intended cfg st i))))
    (procs cfg)

let program cfg =
  Program.make ~name:"leader-election" ~vars:(vars cfg) ~actions:(actions cfg)

(* Transient corruption of any candidate variable. *)
let corruption cfg =
  List.fold_left
    (fun acc (x, d) -> Fault.union acc (Fault.corrupt_variable x d))
    Fault.none (vars cfg)

(* SPEC_leader: leadership, once established, is stable; and it is
   eventually established. *)
let spec cfg =
  Spec.make ~name:"SPEC_leader"
    ~safety:(Safety.closure_of (elected cfg))
    ~liveness:(Liveness.eventually ~name:"a leader emerges" (elected cfg))
    ()

let invariant = elected

(* The protocol as a corrector of its own leadership predicate. *)
let corrector cfg = Corrector.of_invariant (elected cfg)
