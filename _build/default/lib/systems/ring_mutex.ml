(* Token-based mutual exclusion on a ring — one of the classic problems the
   paper's introduction lists among its design-method applications.

   Built as a layered system on the Dijkstra ring of [Token_ring]: process
   i may be in its critical section only while it holds the ring
   privilege; it enters, then exits by making its ring move (passing the
   privilege).  The fault class corrupts both the counters and the
   critical-section flags; the local corrector "leave the critical section
   when not privileged" together with the ring's own stabilization makes
   the system nonmasking tolerant.

   SPEC_mutex: at most one process in its critical section (safety);
   every process enters its critical section infinitely often
   (liveness). *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

type config = Token_ring.config

let make_config = Token_ring.make_config
let default = Token_ring.default

let csvar i = Fmt.str "cs%d" i

let vars cfg =
  Token_ring.vars cfg
  @ List.init cfg.Token_ring.processes (fun i -> (csvar i, Domain.boolean))

let in_cs i =
  Pred.make (Fmt.str "cs%d" i) (fun st ->
      Value.equal (State.get st (csvar i)) (Value.bool true))

let cs_count cfg st =
  List.length
    (List.filter
       (fun i -> Pred.holds (in_cs i) st)
       (List.init cfg.Token_ring.processes Fun.id))

(* The mutual-exclusion invariant: the ring is legitimate and only a
   privileged process is in its critical section. *)
let invariant cfg =
  Pred.make "S_mutex" (fun st ->
      Pred.holds (Token_ring.legitimate cfg) st
      && List.for_all
           (fun i ->
             (not (Pred.holds (in_cs i) st)) || Token_ring.privileged cfg i st)
           (List.init cfg.Token_ring.processes Fun.id))

let actions cfg =
  let n = cfg.Token_ring.processes in
  let priv = Token_ring.has_privilege cfg in
  let enter i =
    Action.deterministic (Fmt.str "enter_%d" i)
      (Pred.and_ (priv i) (Pred.not_ (in_cs i)))
      (fun st -> State.set st (csvar i) (Value.bool true))
  in
  (* Exit performs the ring move, passing the privilege on. *)
  let exit_ i =
    let ring_move st =
      if i = 0 then
        State.set st (Token_ring.xvar 0)
          (Value.int
             ((Value.as_int (State.get st (Token_ring.xvar 0)) + 1)
             mod cfg.Token_ring.counter_values))
      else
        State.set st (Token_ring.xvar i)
          (State.get st (Token_ring.xvar (i - 1)))
    in
    Action.deterministic (Fmt.str "exit_%d" i)
      (Pred.and_ (priv i) (in_cs i))
      (fun st -> ring_move (State.set st (csvar i) (Value.bool false)))
  in
  (* The local corrector: a process outside the privilege must not claim
     the critical section. *)
  let correct i =
    Action.deterministic (Fmt.str "correct_%d" i)
      (Pred.and_ (Pred.not_ (priv i)) (in_cs i))
      (fun st -> State.set st (csvar i) (Value.bool false))
  in
  List.concat_map
    (fun i -> [ enter i; exit_ i; correct i ])
    (List.init n Fun.id)

let program cfg = Program.make ~name:"ring-mutex" ~vars:(vars cfg) ~actions:(actions cfg)

(* The intolerant variant: no local corrector. *)
let intolerant cfg =
  Program.make ~name:"ring-mutex-intolerant" ~vars:(vars cfg)
    ~actions:
      (List.filter
         (fun ac ->
           not
             (String.length (Action.name ac) >= 7
             && String.equal (String.sub (Action.name ac) 0 7) "correct"))
         (actions cfg))

(* A negative-control variant whose exit action forgets to leave the
   critical section: the invariant is not even closed under the program,
   so no tolerance class holds. *)
let broken cfg =
  let n = cfg.Token_ring.processes in
  let priv = Token_ring.has_privilege cfg in
  let enter i =
    Action.deterministic (Fmt.str "enter_%d" i)
      (Pred.and_ (priv i) (Pred.not_ (in_cs i)))
      (fun st -> State.set st (csvar i) (Value.bool true))
  in
  let exit_ i =
    Action.deterministic (Fmt.str "exit_%d" i)
      (Pred.and_ (priv i) (in_cs i))
      (fun st ->
        (* forgets [cs.i := false] *)
        if i = 0 then
          State.set st (Token_ring.xvar 0)
            (Value.int
               ((Value.as_int (State.get st (Token_ring.xvar 0)) + 1)
               mod cfg.Token_ring.counter_values))
        else State.set st (Token_ring.xvar i) (State.get st (Token_ring.xvar (i - 1))))
  in
  Program.make ~name:"ring-mutex-broken" ~vars:(vars cfg)
    ~actions:
      (List.concat_map (fun i -> [ enter i; exit_ i ]) (List.init n Fun.id))

(* Faults: corrupt any counter or any critical-section flag. *)
let corruption cfg =
  List.fold_left
    (fun acc (x, d) -> Fault.union acc (Fault.corrupt_variable x d))
    (Token_ring.corruption cfg)
    (List.init cfg.Token_ring.processes (fun i -> (csvar i, Domain.boolean)))

let spec cfg =
  Spec.make ~name:"SPEC_mutex"
    ~safety:
      (Safety.conj
         (Safety.never
            (Pred.make "two-in-cs" (fun st -> cs_count cfg st > 1)))
         (Safety.closure_of (invariant cfg)))
    ~liveness:
      (Liveness.conj_list
         (List.init cfg.Token_ring.processes (fun i ->
              Liveness.leads_to
                ~name:(Fmt.str "process %d eventually enters" i)
                Pred.true_ (in_cs i))))
    ()

let corrector cfg = Corrector.of_invariant (invariant cfg)
