lib/sim/stats.ml: Fmt Int List Stdlib
