lib/sim/runner.ml: Action Detcor_kernel Detcor_semantics Injector List Random Scheduler Trace
