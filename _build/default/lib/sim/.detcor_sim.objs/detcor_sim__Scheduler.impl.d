lib/sim/scheduler.ml: Action Detcor_kernel Fmt Int List Program Random
