lib/sim/monitor.ml: Corrector Detcor_core Detcor_kernel Detcor_semantics Detcor_spec Detector Fmt List Pred Runner Safety Stats Trace
