lib/sim/injector.ml: Action Detcor_core Detcor_kernel Fault List Random
