(* Schedulers for the simulation environment (the SIEFAST role sketched in
   the paper's concluding remarks).

   A scheduler picks the next program action among the enabled ones.  Both
   provided schedulers are weakly fair in the long run: the uniform random
   scheduler almost surely executes every continuously enabled action, and
   the round-robin scheduler does so deterministically. *)

open Detcor_kernel

type t =
  | Uniform_random
  | Round_robin

(* [pick sched ~rng ~step enabled]: choose one of the enabled actions
   (indices paired with actions); [step] drives round-robin rotation. *)
let pick sched ~rng ~step enabled =
  match enabled with
  | [] -> None
  | _ :: _ -> (
    match sched with
    | Uniform_random ->
      Some (List.nth enabled (Random.State.int rng (List.length enabled)))
    | Round_robin ->
      (* Rotate by the step counter over the action indices so each
         continuously enabled action is served within one rotation. *)
      let sorted =
        List.sort (fun (i, _) (j, _) -> Int.compare i j) enabled
      in
      let k = step mod List.length sorted in
      Some (List.nth sorted k))

(* [choose_successor ~rng succs]: nondeterministic statements yield several
   successor states; pick one uniformly. *)
let choose_successor ~rng = function
  | [] -> None
  | succs -> Some (List.nth succs (Random.State.int rng (List.length succs)))

let pp ppf = function
  | Uniform_random -> Fmt.string ppf "uniform-random"
  | Round_robin -> Fmt.string ppf "round-robin"

let enabled_with_index program st =
  List.mapi (fun i ac -> (i, ac)) (Program.actions program)
  |> List.filter (fun (_, ac) -> Action.enabled ac st)
