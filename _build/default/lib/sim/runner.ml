(* The simulation loop: interleave scheduled program actions with injected
   faults, recording the executed trace. *)

open Detcor_kernel
open Detcor_semantics

type config = {
  scheduler : Scheduler.t;
  seed : int;
  max_steps : int;
}

let default = { scheduler = Scheduler.Uniform_random; seed = 1; max_steps = 200 }

type run = {
  trace : Trace.t;
  fault_steps : int list; (* indices (into the trace) of fault steps *)
  faults_injected : int;
}

let run ?(config = default) program ~injector ~init =
  let rng = Random.State.make [| config.seed |] in
  let rec loop st steps_rev fault_steps step =
    if step >= config.max_steps then
      (List.rev steps_rev, List.rev fault_steps, Trace.Truncated)
    else begin
      match Injector.try_inject injector ~rng ~step st with
      | Some (fname, st') ->
        loop st'
          ({ Trace.action = fname; target = st' } :: steps_rev)
          (step :: fault_steps) (step + 1)
      | None -> (
        let enabled = Scheduler.enabled_with_index program st in
        match Scheduler.pick config.scheduler ~rng ~step enabled with
        | None -> (List.rev steps_rev, List.rev fault_steps, Trace.Maximal)
        | Some (_, ac) -> (
          match Scheduler.choose_successor ~rng (Action.execute ac st) with
          | None -> (List.rev steps_rev, List.rev fault_steps, Trace.Maximal)
          | Some st' ->
            loop st'
              ({ Trace.action = Action.name ac; target = st' } :: steps_rev)
              fault_steps (step + 1)))
    end
  in
  let steps, fault_steps, ending = loop init [] [] 0 in
  {
    trace = Trace.make ~ending init steps;
    fault_steps;
    faults_injected = Injector.injected injector;
  }

(* [sample ?config n program ~faults ~policy ~init]: n independent runs
   with fresh injectors and distinct seeds. *)
let sample ?(config = default) n program ~faults ~policy ~init =
  List.init n (fun i ->
      let injector = Injector.make policy faults in
      run ~config:{ config with seed = config.seed + i } program ~injector ~init)
