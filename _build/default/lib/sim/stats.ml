(* Small descriptive statistics for simulation results. *)

type summary = {
  count : int;
  mean : float;
  min : int;
  max : int;
  p50 : int;
  p95 : int;
}

let percentile sorted p =
  match sorted with
  | [] -> 0
  | _ ->
    let n = List.length sorted in
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    List.nth sorted (Stdlib.max 0 (Stdlib.min (n - 1) idx))

let summarize = function
  | [] -> None
  | samples ->
    let sorted = List.sort Int.compare samples in
    let n = List.length sorted in
    let total = List.fold_left ( + ) 0 sorted in
    Some
      {
        count = n;
        mean = float_of_int total /. float_of_int n;
        min = List.hd sorted;
        max = List.nth sorted (n - 1);
        p50 = percentile sorted 0.50;
        p95 = percentile sorted 0.95;
      }

let pp ppf s =
  Fmt.pf ppf "n=%d mean=%.2f min=%d p50=%d p95=%d max=%d" s.count s.mean s.min
    s.p50 s.p95 s.max

let pp_option ppf = function
  | None -> Fmt.string ppf "n=0"
  | Some s -> pp ppf s
