(* Fault-injection policies.

   Faults occur finitely often (the paper's Assumption 2); every policy
   bounds the number of injected fault actions. *)

open Detcor_kernel
open Detcor_core

type policy =
  | At_steps of int list (* inject at these step numbers (one fault each) *)
  | Random of {
      probability : float; (* per-step injection probability *)
      max_faults : int;
    }
  | None_

type t = {
  policy : policy;
  faults : Fault.t;
  mutable injected : int;
}

let make policy faults = { policy; faults; injected = 0 }

let injected t = t.injected

(* [try_inject t ~rng ~step st]: if the policy fires at this step and some
   fault action is enabled, execute one (uniformly chosen) and return the
   successor. *)
let try_inject t ~rng ~step st =
  let should_fire =
    match t.policy with
    | None_ -> false
    | At_steps steps -> List.mem step steps
    | Random { probability; max_faults } ->
      t.injected < max_faults && Random.State.float rng 1.0 < probability
  in
  if not should_fire then None
  else begin
    let enabled =
      List.filter (fun ac -> Action.enabled ac st) (Fault.actions t.faults)
    in
    match enabled with
    | [] -> None
    | _ :: _ -> (
      let ac = List.nth enabled (Random.State.int rng (List.length enabled)) in
      match Action.execute ac st with
      | [] -> None
      | succs ->
        let st' = List.nth succs (Random.State.int rng (List.length succs)) in
        t.injected <- t.injected + 1;
        Some (Action.name ac, st'))
  end
