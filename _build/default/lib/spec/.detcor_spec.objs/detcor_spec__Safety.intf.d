lib/spec/safety.mli: Check Detcor_kernel Detcor_semantics Fmt Pred State Trace Ts
