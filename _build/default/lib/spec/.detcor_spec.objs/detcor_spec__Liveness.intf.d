lib/spec/liveness.mli: Check Detcor_kernel Detcor_semantics Fmt Pred Trace Ts
