lib/spec/safety.ml: Check Detcor_kernel Detcor_semantics Fmt List Pred State Trace
