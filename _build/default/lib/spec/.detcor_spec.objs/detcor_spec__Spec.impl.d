lib/spec/spec.ml: Check Detcor_kernel Detcor_semantics Fmt Liveness Pred Safety
