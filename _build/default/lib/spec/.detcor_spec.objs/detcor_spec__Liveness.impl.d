lib/spec/liveness.ml: Check Detcor_kernel Detcor_semantics Fmt List Option Pred Trace
