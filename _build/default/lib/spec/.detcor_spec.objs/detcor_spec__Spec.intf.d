lib/spec/spec.mli: Check Detcor_kernel Detcor_semantics Fmt Liveness Pred Safety Trace Ts
