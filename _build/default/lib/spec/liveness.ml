(* Liveness specifications, as conjunctions of leads-to properties.

   Alpern–Schneider decompose any specification into a safety and a
   liveness part; for the fusion-closed class the paper works with, the
   liveness obligations that arise (Progress of detectors, Convergence of
   correctors, "converges to") are all of leads-to shape, so a list of
   leads-to pairs suffices as the liveness language of this library. *)

open Detcor_kernel
open Detcor_semantics

type obligation = {
  oname : string;
  from_ : Pred.t;
  to_ : Pred.t;
}

type t = obligation list

let leads_to ?name from_ to_ =
  let oname =
    match name with
    | Some s -> s
    | None -> Fmt.str "%s ~> %s" (Pred.name from_) (Pred.name to_)
  in
  [ { oname; from_; to_ } ]

(* [eventually p]: every computation reaches [p]. *)
let eventually ?name p =
  leads_to ?name Pred.true_ p

let top : t = []

let conj a b = a @ b

let conj_list specs = List.concat specs

let obligations l = l

(* Every obligation holds on the system under weak fairness. *)
let check ts l =
  Check.all (List.map (fun o -> Check.leads_to ts o.from_ o.to_) l)

(* Trace satisfaction (for monitors): every [from_]-position is followed by
   a [to_]-position.  Meaningful only for maximal traces; truncated traces
   report [None] (unknown) when an obligation is still pending. *)
let check_trace tr l =
  let states = Trace.states tr in
  let satisfied o =
    let rec pending i = function
      | [] -> None
      | st :: rest ->
        if Pred.holds o.from_ st then
          let rec search j = function
            | [] -> Some i
            | st' :: rest' ->
              if Pred.holds o.to_ st' then pending j rest'
              else search (j + 1) rest'
          in
          search i (st :: rest)
        else pending (i + 1) rest
    in
    pending 0 states
  in
  let pending_obligations =
    List.filter_map
      (fun o -> Option.map (fun i -> (o.oname, i)) (satisfied o))
      l
  in
  match (pending_obligations, Trace.ending tr) with
  | [], _ -> Some true
  | _ :: _, Trace.Maximal -> Some false
  | _ :: _, Trace.Truncated -> None

let pp ppf l =
  Fmt.pf ppf "%a" Fmt.(list ~sep:(any " & ") (fun ppf o -> string ppf o.oname)) l
