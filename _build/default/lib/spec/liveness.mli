(** Liveness specifications as conjunctions of leads-to obligations —
    sufficient for every liveness shape the paper's theory uses (Progress,
    Convergence, converges-to). *)

open Detcor_kernel
open Detcor_semantics

type obligation = {
  oname : string;
  from_ : Pred.t;
  to_ : Pred.t;
}

type t

(** [leads_to p q]: every [p]-state is eventually followed by a [q]-state. *)
val leads_to : ?name:string -> Pred.t -> Pred.t -> t

(** [eventually p] = [leads_to true p]. *)
val eventually : ?name:string -> Pred.t -> t

(** No obligation. *)
val top : t

val conj : t -> t -> t
val conj_list : t list -> t
val obligations : t -> obligation list

(** Every obligation holds under weak fairness. *)
val check : Ts.t -> t -> Check.outcome

(** Trace satisfaction: [Some true]/[Some false] for decided maximal traces,
    [None] when a truncated trace leaves an obligation pending. *)
val check_trace : Trace.t -> t -> bool option

val pp : t Fmt.t
