(* Problem specifications (Section 2.2) and tolerance specifications
   (Section 2.4).

   A problem specification is the intersection of a safety part (bad
   states + bad transitions; exact for the suffix- and fusion-closed class
   of Assumption 1) and a liveness part (leads-to obligations).

   The three tolerance specifications of Section 2.4 act on this
   representation as:
   - masking: the specification itself;
   - fail-safe: the smallest safety specification containing it — exactly
     the safety part;
   - nonmasking: (true)* SPEC — "some suffix is in SPEC"; decided by the
     tolerance checkers in [Detcor_core] via convergence to the invariant,
     the way the paper's proofs use it. *)

type t = {
  name : string;
  safety : Safety.t;
  liveness : Liveness.t;
}

let make ?(name = "spec") ?(safety = Safety.top) ?(liveness = Liveness.top) () =
  { name; safety; liveness }

let name s = s.name
let safety s = s.safety
let liveness s = s.liveness

let conj a b =
  {
    name = Fmt.str "(%s & %s)" a.name b.name;
    safety = Safety.conj a.safety b.safety;
    liveness = Liveness.conj a.liveness b.liveness;
  }

(* The smallest safety specification containing SPEC: its safety part. *)
let smallest_safety_containing s =
  { s with name = Fmt.str "SS(%s)" s.name; liveness = Liveness.top }

type tolerance =
  | Masking
  | Failsafe
  | Nonmasking

let pp_tolerance ppf = function
  | Masking -> Fmt.string ppf "masking"
  | Failsafe -> Fmt.string ppf "fail-safe"
  | Nonmasking -> Fmt.string ppf "nonmasking"

let tolerance_of_string = function
  | "masking" -> Some Masking
  | "failsafe" | "fail-safe" -> Some Failsafe
  | "nonmasking" -> Some Nonmasking
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Named specifications from the paper.                                *)
(* ------------------------------------------------------------------ *)

open Detcor_kernel

(* cl(S) (Section 2.2). *)
let closure s =
  make
    ~name:(Fmt.str "cl(%s)" (Pred.name s))
    ~safety:(Safety.closure_of s) ()

(* Generalized pair ({S},{R}) (Section 2.2). *)
let generalized_pair s r =
  make
    ~name:(Fmt.str "({%s},{%s})" (Pred.name s) (Pred.name r))
    ~safety:(Safety.generalized_pair s r)
    ()

(* S converges to R (Section 2.2): cl(S) ∩ cl(R) ∩ (S implies eventually
   R). *)
let converges_to s r =
  make
    ~name:(Fmt.str "%s converges to %s" (Pred.name s) (Pred.name r))
    ~safety:(Safety.conj (Safety.closure_of s) (Safety.closure_of r))
    ~liveness:(Liveness.leads_to s r)
    ()

(* 'Z detects X' (Section 3.1):
   Safeness:  Z ⇒ X at every state            — bad state  Z ∧ ¬X;
   Stability: ({Z},{Z ∨ ¬X})                  — bad transition Z ∧ ¬(Z'∨¬X');
   Progress:  X at s_i implies ∃ k≥i. Z∨¬X    — leads-to X ~> (Z ∨ ¬X). *)
let detects ~witness:z ~detection:x =
  let zx = Fmt.str "%s detects %s" (Pred.name z) (Pred.name x) in
  make ~name:zx
    ~safety:
      (Safety.conj
         (Safety.never (Pred.and_ z (Pred.not_ x)))
         (Safety.generalized_pair z (Pred.or_ z (Pred.not_ x))))
    ~liveness:
      (Liveness.leads_to
         ~name:(Fmt.str "progress of %s" zx)
         x
         (Pred.or_ z (Pred.not_ x)))
    ()

(* 'Z corrects X' (Section 4.1): the detects conditions plus Convergence —
   X is eventually reached, and X is preserved once true. *)
let corrects ~witness:z ~detection:x =
  let d = detects ~witness:z ~detection:x in
  let conv =
    make
      ~name:(Fmt.str "convergence to %s" (Pred.name x))
      ~safety:(Safety.closure_of x)
      ~liveness:(Liveness.eventually ~name:(Fmt.str "eventually %s" (Pred.name x)) x)
      ()
  in
  { (conj d conv) with name = Fmt.str "%s corrects %s" (Pred.name z) (Pred.name x) }

(* ------------------------------------------------------------------ *)
(* Checking.                                                           *)
(* ------------------------------------------------------------------ *)

open Detcor_semantics

(* [refines ts spec]: every computation of the system is in the
   specification — its safety part has no reachable violation and its
   liveness obligations hold under weak fairness.  (This is "p refines SPEC
   from S" when [ts] was built from the S-states; closure of S is checked
   separately by the tolerance layer.) *)
let refines ts spec =
  Check.all [ Safety.check ts spec.safety; Liveness.check ts spec.liveness ]

(* Trace-level satisfaction for the monitors: safety decided on any trace,
   liveness only on maximal ones. *)
let check_trace tr spec =
  if not (Safety.trace_satisfies tr spec.safety) then Some false
  else Liveness.check_trace tr spec.liveness

let pp ppf s = Fmt.string ppf s.name
