(** Problem specifications (Section 2.2) and tolerance specifications
    (Section 2.4): a safety part (bad states + bad transitions) intersected
    with a liveness part (leads-to obligations). *)

open Detcor_kernel
open Detcor_semantics

type t

val make : ?name:string -> ?safety:Safety.t -> ?liveness:Liveness.t -> unit -> t
val name : t -> string
val safety : t -> Safety.t
val liveness : t -> Liveness.t
val conj : t -> t -> t

(** The fail-safe tolerance specification: the smallest safety
    specification containing SPEC — its safety part (Section 2.4). *)
val smallest_safety_containing : t -> t

type tolerance =
  | Masking
  | Failsafe
  | Nonmasking

val pp_tolerance : tolerance Fmt.t
val tolerance_of_string : string -> tolerance option

(** {1 Named specifications from the paper} *)

(** [closure s] is [cl(s)] (Section 2.2). *)
val closure : Pred.t -> t

(** [generalized_pair s r] is [({s},{r})]. *)
val generalized_pair : Pred.t -> Pred.t -> t

(** [converges_to s r] is "[s] converges to [r]" (Section 2.2). *)
val converges_to : Pred.t -> Pred.t -> t

(** ['Z detects X'] (Section 3.1): Safeness, Stability (safety part) and
    Progress (liveness part). *)
val detects : witness:Pred.t -> detection:Pred.t -> t

(** ['Z corrects X'] (Section 4.1): detects plus Convergence. *)
val corrects : witness:Pred.t -> detection:Pred.t -> t

(** {1 Checking} *)

(** [refines ts spec]: every computation of the system satisfies the
    specification (safety over the reachable graph, liveness under weak
    fairness). *)
val refines : Ts.t -> t -> Check.outcome

(** Trace-level satisfaction for monitors: [Some false] on a safety
    violation or a decided-failed maximal trace, [None] when truncation
    leaves liveness pending. *)
val check_trace : Trace.t -> t -> bool option

val pp : t Fmt.t
