(** Explicit-state transition systems.

    The semantic graph of a program: nodes are states (indexed by dense
    integers), edges are (action id, successor id) pairs.  All decision
    procedures (closure, convergence, leads-to, fairness, safety) run on
    this structure. *)

open Detcor_kernel

type t

exception Too_large of int

val default_limit : int

(** [build program ~from] explores forward from the given initial states.
    Every recorded state is reachable from [from].
    @raise Too_large if more than [limit] states are encountered. *)
val build : ?limit:int -> Program.t -> from:State.t list -> t

(** [full program] builds the system over the whole product state space. *)
val full : ?limit:int -> Program.t -> t

(** [of_pred program ~from] explores from all product-space states
    satisfying [from]. *)
val of_pred : ?limit:int -> Program.t -> from:Pred.t -> t

val program : t -> Program.t
val num_states : t -> int
val state : t -> int -> State.t
val states : t -> State.t list
val initials : t -> int list
val actions : t -> Action.t array
val num_actions : t -> int
val action : t -> int -> Action.t

(** Outgoing edges of a state: [(action id, target id)] list. *)
val edges_of : t -> int -> (int * int) list

val index_of : t -> State.t -> int option
val action_id : t -> string -> int option

(** Ids of the actions named in the list — used to separate fault actions
    from program actions in a composed [p [] F] system. *)
val action_ids_of_names : t -> string list -> int list

val iter_edges : t -> (int -> int -> int -> unit) -> unit
val fold_edges : t -> ('a -> int -> int -> int -> 'a) -> 'a -> 'a

(** [enabled ts i aid]: guard of action [aid] true at state [i]. *)
val enabled : t -> int -> int -> bool

(** No action enabled at state [i]. *)
val deadlocked : t -> int -> bool

(** Indices of states satisfying the predicate. *)
val satisfying : t -> Pred.t -> int list

val holds_at : t -> Pred.t -> int -> bool
val pp_stats : t Fmt.t
