(** Reachability and strongly-connected components over transition systems,
    with an optional node mask to restrict to the subgraph induced by a
    region of states. *)

(** Forward reachability: [reachable ts ~from].(i) iff state [i] is
    reachable from [from] inside the masked subgraph. *)
val reachable : ?mask:(int -> bool) -> Ts.t -> from:int list -> bool array

(** Backward reachability: states from which [target] is reachable inside
    the masked subgraph. *)
val co_reachable : ?mask:(int -> bool) -> Ts.t -> target:int list -> bool array

(** Shortest action-labeled path from [from] to a state satisfying
    [target] inside the masked subgraph: the start index plus
    [(action id, state id)] steps. *)
val shortest_path :
  ?mask:(int -> bool) ->
  Ts.t ->
  from:int list ->
  target:(int -> bool) ->
  (int * (int * int) list) option

type scc = {
  id : int;
  members : int list;
  trivial : bool;
      (** single state with no self-loop — cannot host an infinite run *)
}

(** Tarjan's algorithm on the masked subgraph. *)
val sccs : ?mask:(int -> bool) -> Ts.t -> scc list

(** Component id per node ([-1] outside the mask), plus the components. *)
val scc_ids : ?mask:(int -> bool) -> Ts.t -> int array * scc list
