(* Finite computation prefixes (traces).

   Used by the simulator, the online monitors, and the tests that
   cross-validate the graph-based checkers against direct trace semantics.
   A trace records the start state and each executed action with its
   resulting state; [Truncated] distinguishes a bounded-exploration cut from
   a genuinely maximal (deadlocked) computation. *)

open Detcor_kernel

type step = {
  action : string;
  target : State.t;
}

type ending =
  | Maximal (* no action enabled in the final state *)
  | Truncated (* exploration bound reached *)

type t = {
  start : State.t;
  steps : step list; (* in execution order *)
  ending : ending;
}

let make ?(ending = Truncated) start steps = { start; steps; ending }

let start tr = tr.start
let steps tr = tr.steps
let ending tr = tr.ending

let states tr = tr.start :: List.map (fun s -> s.target) tr.steps

let length tr = List.length tr.steps

let final tr =
  match List.rev tr.steps with
  | [] -> tr.start
  | last :: _ -> last.target

let append tr ~action ~target =
  { tr with steps = tr.steps @ [ { action; target } ] }

(* Index of the first state satisfying [p], if any. *)
let first_index tr p =
  let rec go i = function
    | [] -> None
    | st :: rest -> if Pred.holds p st then Some i else go (i + 1) rest
  in
  go 0 (states tr)

let exists tr p = first_index tr p <> None
let for_all tr p = List.for_all (Pred.holds p) (states tr)

(* Check a transition invariant over consecutive state pairs. *)
let pairs tr =
  let sts = states tr in
  let rec go = function
    | a :: (b :: _ as rest) -> (a, b) :: go rest
    | [ _ ] | [] -> []
  in
  go sts

(* [suffix_from tr i] drops the first [i] states. *)
let suffix_from tr i =
  let rec drop_steps n start = function
    | steps when n = 0 -> { start; steps; ending = tr.ending }
    | [] -> { start; steps = []; ending = tr.ending }
    | s :: rest -> drop_steps (n - 1) s.target rest
  in
  drop_steps i tr.start tr.steps

(* ------------------------------------------------------------------ *)
(* Bounded enumeration of computations of a transition system.         *)
(* ------------------------------------------------------------------ *)

(* All computations from the initial states of [ts], each followed until it
   deadlocks or reaches [depth] steps.  Exponential; intended for small
   systems in tests. *)
let enumerate ts ~depth =
  let rec extend i acc_rev n =
    if n = 0 then [ (List.rev acc_rev, Truncated) ]
    else
      match Ts.edges_of ts i with
      | [] -> [ (List.rev acc_rev, Maximal) ]
      | edges ->
        List.concat_map
          (fun (aid, j) ->
            let step =
              { action = Action.name (Ts.action ts aid); target = Ts.state ts j }
            in
            extend j (step :: acc_rev) (n - 1))
          edges
  in
  List.concat_map
    (fun i ->
      List.map
        (fun (steps, ending) -> { start = Ts.state ts i; steps; ending })
        (extend i [] depth))
    (Ts.initials ts)

let pp ppf tr =
  let pp_step ppf s = Fmt.pf ppf "-[%s]-> %a" s.action State.pp s.target in
  Fmt.pf ppf "@[<v>%a@,%a%s@]" State.pp tr.start
    Fmt.(list ~sep:cut pp_step)
    tr.steps
    (match tr.ending with Maximal -> " (maximal)" | Truncated -> " ...")
