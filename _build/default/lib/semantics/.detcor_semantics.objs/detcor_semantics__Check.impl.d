lib/semantics/check.ml: Action Array Detcor_kernel Fairness Fmt Fun Graph List Pred State Ts
