lib/semantics/fairness.ml: Array Graph Hashtbl List Ts
