lib/semantics/graph.mli: Ts
