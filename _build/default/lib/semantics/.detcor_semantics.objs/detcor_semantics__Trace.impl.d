lib/semantics/trace.ml: Action Detcor_kernel Fmt List Pred State Ts
