lib/semantics/dot.mli: Detcor_kernel Pred Ts
