lib/semantics/ts.mli: Action Detcor_kernel Fmt Pred Program State
