lib/semantics/explain.mli: Check Detcor_kernel Fmt State Trace Ts
