lib/semantics/dot.ml: Action Buffer Detcor_kernel Fmt List Pred State String Ts
