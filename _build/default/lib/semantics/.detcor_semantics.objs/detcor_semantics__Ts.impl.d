lib/semantics/ts.ml: Action Array Detcor_kernel Fmt Hashtbl List Pred Program Queue Set State String
