lib/semantics/graph.ml: Array List Queue Ts
