lib/semantics/fairness.mli: Graph Ts
