lib/semantics/explain.ml: Action Check Detcor_kernel Fmt Graph List Option State Trace Ts
