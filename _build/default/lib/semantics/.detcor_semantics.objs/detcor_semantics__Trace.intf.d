lib/semantics/trace.mli: Detcor_kernel Fmt Pred State Ts
