lib/semantics/check.mli: Action Detcor_kernel Fmt Pred State Ts
