(* Explicit-state transition systems.

   A transition system is the semantic graph of a program: nodes are states,
   edges are (action, successor) pairs.  It is built either from a set of
   initial states (forward reachability) or over the full product space.
   All decision procedures of the library (closure, convergence, leads-to,
   fairness, safety) run on this structure. *)

open Detcor_kernel

module State_table = Hashtbl.Make (struct
  type t = State.t

  let equal = State.equal
  let hash = State.hash
end)

type t = {
  program : Program.t;
  states : State.t array;
  index : int State_table.t;
  actions : Action.t array;
  edges : (int * int) list array;
      (* per source state: (action id, target state id) *)
  initials : int list;
}

exception Too_large of int

let default_limit = 2_000_000

(* Forward exploration from [from].  All recorded states are reachable. *)
let build ?(limit = default_limit) program ~from =
  let actions = Array.of_list (Program.actions program) in
  let index = State_table.create 1024 in
  let dyn_states = ref (Array.make 1024 State.empty) in
  let dyn_edges = ref (Array.make 1024 []) in
  let count = ref 0 in
  let ensure_capacity n =
    let cap = Array.length !dyn_states in
    if n >= cap then begin
      let cap' = max (2 * cap) (n + 1) in
      let states' = Array.make cap' State.empty in
      Array.blit !dyn_states 0 states' 0 cap;
      dyn_states := states';
      let edges' = Array.make cap' [] in
      Array.blit !dyn_edges 0 edges' 0 cap;
      dyn_edges := edges'
    end
  in
  let intern st =
    match State_table.find_opt index st with
    | Some i -> i
    | None ->
      let i = !count in
      if i >= limit then raise (Too_large limit);
      ensure_capacity i;
      State_table.add index st i;
      !dyn_states.(i) <- st;
      incr count;
      i
  in
  let initials = List.map intern (List.sort_uniq State.compare from) in
  let queue = Queue.create () in
  List.iter (fun i -> Queue.add i queue) initials;
  let expanded = Hashtbl.create 1024 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    if not (Hashtbl.mem expanded i) then begin
      Hashtbl.add expanded i ();
      let st = !dyn_states.(i) in
      let out = ref [] in
      Array.iteri
        (fun aid ac ->
          List.iter
            (fun st' ->
              let j = intern st' in
              out := (aid, j) :: !out;
              if not (Hashtbl.mem expanded j) then Queue.add j queue)
            (Action.execute ac st))
        actions;
      !dyn_edges.(i) <- List.rev !out
    end
  done;
  let states = Array.sub !dyn_states 0 !count in
  let edges = Array.sub !dyn_edges 0 !count in
  { program; states; index; actions; edges; initials }

(* Build over the full product space of the program's variables. *)
let full ?(limit = default_limit) program =
  if Program.space_size program > limit then
    raise (Too_large limit);
  build ~limit program ~from:(Program.states program)

let of_pred ?(limit = default_limit) program ~from =
  let initials =
    List.filter (Pred.holds from) (Program.states program)
  in
  build ~limit program ~from:initials

let program ts = ts.program
let num_states ts = Array.length ts.states
let state ts i = ts.states.(i)
let states ts = Array.to_list ts.states
let initials ts = ts.initials
let actions ts = ts.actions
let num_actions ts = Array.length ts.actions
let action ts i = ts.actions.(i)
let edges_of ts i = ts.edges.(i)

let index_of ts st = State_table.find_opt ts.index st

let action_id ts name =
  let found = ref None in
  Array.iteri
    (fun i ac -> if String.equal (Action.name ac) name then found := Some i)
    ts.actions;
  !found

(* Ids of actions whose names are in [names]; used to separate fault actions
   from program actions in a composed system. *)
let action_ids_of_names ts names =
  let module S = Set.Make (String) in
  let set = S.of_list names in
  let ids = ref [] in
  Array.iteri
    (fun i ac -> if S.mem (Action.name ac) set then ids := i :: !ids)
    ts.actions;
  List.rev !ids

let iter_edges ts f =
  Array.iteri
    (fun i out -> List.iter (fun (aid, j) -> f i aid j) out)
    ts.edges

let fold_edges ts f init =
  let acc = ref init in
  iter_edges ts (fun i aid j -> acc := f !acc i aid j);
  !acc

(* [enabled ts i aid]: is action [aid] enabled at state [i]?  Computed from
   the guard, not from edges: an enabled action always yields at least one
   successor in this framework, but checking the guard is cheaper than
   scanning edges and also correct for actions with empty statements. *)
let enabled ts i aid = Action.enabled ts.actions.(aid) ts.states.(i)

let deadlocked ts i =
  let n = Array.length ts.actions in
  let rec go aid = if aid >= n then true else (not (enabled ts i aid)) && go (aid + 1) in
  go 0

let satisfying ts pred =
  let result = ref [] in
  Array.iteri
    (fun i st -> if Pred.holds pred st then result := i :: !result)
    ts.states;
  List.rev !result

let holds_at ts pred i = Pred.holds pred ts.states.(i)

let pp_stats ppf ts =
  let num_edges = fold_edges ts (fun n _ _ _ -> n + 1) 0 in
  Fmt.pf ppf "%d states, %d transitions, %d actions" (num_states ts) num_edges
    (num_actions ts)
