(** Weak fairness (Section 2.1): each action continuously enabled along a
    computation is eventually executed.

    The central decision procedure asks whether a region admits an infinite
    weakly-fair computation confined to it — exact for finite systems via
    SCC analysis: a non-trivial SCC hosts a fair run iff every action
    enabled at all of its states has an edge internal to it. *)

(** [fair_scc ts scc] returns [Some scc] iff the SCC can host an infinite
    weakly-fair run. *)
val fair_scc : Ts.t -> Graph.scc -> Graph.scc option

(** All fair SCCs of the masked subgraph. *)
val fair_sccs : ?mask:(int -> bool) -> Ts.t -> Graph.scc list

(** [fair_run_exists ts ~region ~from] returns a witness SCC if some
    weakly-fair infinite computation starts in [from] and remains in
    [region] forever. *)
val fair_run_exists :
  Ts.t -> region:(int -> bool) -> from:int list -> Graph.scc option
