(** Graphviz export of transition systems. *)

open Detcor_kernel

type style = {
  highlight : (Pred.t * string) list;
      (** first matching predicate colors the node *)
  dashed_actions : string list;  (** e.g. fault actions *)
  show_action_labels : bool;
}

val default_style : style
val to_string : ?style:style -> Ts.t -> string
val to_file : ?style:style -> Ts.t -> string -> unit
