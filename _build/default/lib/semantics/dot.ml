(* Graphviz export of transition systems, for inspecting small examples
   and illustrating counterexamples. *)

open Detcor_kernel

type style = {
  (* Nodes satisfying the predicate get the fill color. *)
  highlight : (Pred.t * string) list;
  (* Edges of these actions are drawn dashed (e.g. fault actions). *)
  dashed_actions : string list;
  show_action_labels : bool;
}

let default_style =
  { highlight = []; dashed_actions = []; show_action_labels = true }

let escape s =
  String.concat "\\\""
    (String.split_on_char '"' s)

let node_label st = escape (State.to_string st)

let to_buffer ?(style = default_style) ts buf =
  let add fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  add "digraph ts {\n";
  add "  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  for i = 0 to Ts.num_states ts - 1 do
    let st = Ts.state ts i in
    let fill =
      List.find_map
        (fun (p, color) -> if Pred.holds p st then Some color else None)
        style.highlight
    in
    let attrs =
      match fill with
      | Some color -> Fmt.str " style=filled fillcolor=\"%s\"" color
      | None -> ""
    in
    add "  s%d [label=\"%s\"%s];\n" i (node_label st) attrs
  done;
  List.iter
    (fun i -> add "  init%d [shape=point]; init%d -> s%d;\n" i i i)
    (Ts.initials ts);
  Ts.iter_edges ts (fun i aid j ->
      let name = Action.name (Ts.action ts aid) in
      let label =
        if style.show_action_labels then Fmt.str " label=\"%s\"" (escape name)
        else ""
      in
      let dash =
        if List.mem name style.dashed_actions then " style=dashed" else ""
      in
      add "  s%d -> s%d [%s%s];\n" i j label dash);
  add "}\n"

let to_string ?style ts =
  let buf = Buffer.create 4096 in
  to_buffer ?style ts buf;
  Buffer.contents buf

let to_file ?style ts path =
  let oc = open_out path in
  (try output_string oc (to_string ?style ts)
   with e ->
     close_out oc;
     raise e);
  close_out oc
