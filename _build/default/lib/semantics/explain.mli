(** Counterexample explanation: turn a checker violation into an
    executable witness trace from the system's initial states. *)

open Detcor_kernel

type t = {
  prefix : Trace.t;  (** from an initial state to the violation site *)
  cycle : State.t list;  (** nonempty for fair-cycle violations *)
  description : string;
}

(** Shortest trace from the initials to the given state, if reachable. *)
val to_state : Ts.t -> State.t -> Trace.t option

(** Witness for a violation found on this system. *)
val violation : Ts.t -> Check.violation -> t option

val of_outcome : Ts.t -> Check.outcome -> t option
val pp : t Fmt.t
