(** Finite computation prefixes (traces), for the simulator, the online
    monitors, and trace-semantics cross-validation in tests. *)

open Detcor_kernel

type step = {
  action : string;
  target : State.t;
}

type ending =
  | Maximal (** no action enabled in the final state *)
  | Truncated (** exploration or simulation bound reached *)

type t

val make : ?ending:ending -> State.t -> step list -> t
val start : t -> State.t
val steps : t -> step list
val ending : t -> ending

(** All states in order, starting state first. *)
val states : t -> State.t list

(** Number of steps (states - 1). *)
val length : t -> int

val final : t -> State.t
val append : t -> action:string -> target:State.t -> t

(** Index (into {!states}) of the first state satisfying the predicate. *)
val first_index : t -> Pred.t -> int option

val exists : t -> Pred.t -> bool
val for_all : t -> Pred.t -> bool

(** Consecutive state pairs, for transition invariants. *)
val pairs : t -> (State.t * State.t) list

(** [suffix_from tr i] drops the first [i] states. *)
val suffix_from : t -> int -> t

(** All computations from the initial states, each followed until deadlock
    or [depth] steps.  Exponential; for small systems in tests. *)
val enumerate : Ts.t -> depth:int -> t list

val pp : t Fmt.t
