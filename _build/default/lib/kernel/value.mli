(** Values of program variables.

    The theory allows arbitrary nonempty domains; for decidable checking we
    restrict to finite domains of scalars: integers, booleans, and symbolic
    constants (e.g. the paper's [⊥] for "not yet assigned"). *)

type t =
  | Int of int
  | Bool of bool
  | Sym of string

val int : int -> t
val bool : bool -> t
val sym : string -> t

(** [bot] is the distinguished "unassigned" symbol [Sym "bot"], the paper's
    [⊥]. *)
val bot : t

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : t Fmt.t
val to_string : t -> string

val to_int : t -> int option
val to_bool : t -> bool option

exception Type_error of string

(** [type_error fmt ...] raises {!Type_error} with a formatted message. *)
val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [as_int], [as_bool], [as_sym] project a value, raising {!Type_error} on
    a kind mismatch.  Used by expression evaluation. *)

val as_int : t -> int
val as_bool : t -> bool
val as_sym : t -> string
