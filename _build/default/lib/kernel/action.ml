(* Guarded actions (Section 2.1).

   An action is [name :: guard -> statement]; executing the statement
   atomically updates zero or more variables.  Statements are
   nondeterministic ([State.t -> State.t list]) so that Byzantine behavior
   and corruption faults are expressible as ordinary actions (Section 2.3).

   [based_on] records provenance when an action of a refined program [p'] is
   of the form [g ∧ g' -> st || st'] for an action [g -> st] of the base
   program [p]; the encapsulation checks in [Program] use it. *)

type t = {
  name : string;
  guard : Pred.t;
  stmt : State.t -> State.t list;
  based_on : string option;
}

let make ?based_on name guard stmt = { name; guard; stmt; based_on }

let deterministic ?based_on name guard f =
  make ?based_on name guard (fun st -> [ f st ])

let assign ?based_on name guard updates =
  deterministic ?based_on name guard (fun st ->
      let bindings = List.map (fun (x, e) -> (x, Expr.eval st e)) updates in
      State.update_many st bindings)

let assign_pred ?based_on name guard updates =
  deterministic ?based_on name guard (fun st ->
      let bindings = List.map (fun (x, f) -> (x, f st)) updates in
      State.update_many st bindings)

let choose ?based_on name guard alternatives =
  make ?based_on name guard (fun st ->
      List.map (fun f -> f st) alternatives)

(* [corrupt name guard x domain] nondeterministically sets [x] to any value
   of [domain]; the archetypal fault action. *)
let corrupt ?based_on name guard x domain =
  make ?based_on name guard (fun st ->
      List.map (fun v -> State.set st x v) (Domain.values domain))

let skip name = deterministic name Pred.true_ (fun st -> st)

let name ac = ac.name
let guard ac = ac.guard
let based_on ac = ac.based_on

let enabled ac st = Pred.holds ac.guard st

(* Successors of [st] under [ac]; empty when the guard is false. *)
let execute ac st = if enabled ac st then ac.stmt st else []

(* Restriction of an action by a state predicate:  Z ∧ (g -> st)  is
   (Z ∧ g -> st)  (Section 2.1.1, ∧-composition). *)
let restrict z ac = { ac with guard = Pred.and_ z ac.guard }

let rename name ac = { ac with name }

(* [preserves ac t ~universe]: execution of [ac] in any state where [t] is
   true results in a state where [t] is true (Section 2.3, Preserves). *)
let preserves ac t ~universe =
  List.for_all
    (fun st ->
      (not (Pred.holds t st))
      || List.for_all (Pred.holds t) (execute ac st))
    universe

let pp ppf ac =
  Fmt.pf ppf "%s :: %a -> <stmt>%a" ac.name Pred.pp ac.guard
    Fmt.(option (fun ppf b -> Fmt.pf ppf " (based on %s)" b))
    ac.based_on
