(* Values taken by program variables.

   The paper's programs range over arbitrary nonempty domains; for decidable
   checking we restrict attention to finite domains of scalar values.  [Sym]
   covers symbolic constants such as the paper's [bot] (the unassigned output
   in TMR and Byzantine agreement). *)

type t =
  | Int of int
  | Bool of bool
  | Sym of string

let int n = Int n
let bool b = Bool b
let sym s = Sym s

let bot = Sym "bot"

let compare a b =
  match a, b with
  | Int x, Int y -> Stdlib.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Bool x, Bool y -> Stdlib.compare x y
  | Bool _, _ -> -1
  | _, Bool _ -> 1
  | Sym x, Sym y -> String.compare x y

let equal a b = compare a b = 0

let hash = function
  | Int n -> n * 7919
  | Bool b -> if b then 3 else 5
  | Sym s -> Hashtbl.hash s

let pp ppf = function
  | Int n -> Fmt.int ppf n
  | Bool b -> Fmt.bool ppf b
  | Sym s -> Fmt.string ppf s

let to_string v = Fmt.str "%a" pp v

let to_int = function
  | Int n -> Some n
  | Bool _ | Sym _ -> None

let to_bool = function
  | Bool b -> Some b
  | Int _ | Sym _ -> None

exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

let as_int = function
  | Int n -> n
  | v -> type_error "expected int, got %a" pp v

let as_bool = function
  | Bool b -> b
  | v -> type_error "expected bool, got %a" pp v

let as_sym = function
  | Sym s -> s
  | v -> type_error "expected symbol, got %a" pp v
