(** Guarded actions (Section 2.1).

    An action is [name :: guard -> statement], executed atomically.
    Statements are nondeterministic so Byzantine behavior and corruption
    faults are ordinary actions. *)

type t

(** [make name guard stmt] builds an action with a nondeterministic
    statement.  [based_on] records, for an action of a refined program of the
    form [g ∧ g' -> st || st'], the name of the underlying base-program
    action [g -> st]; encapsulation checks use it. *)
val make :
  ?based_on:string -> string -> Pred.t -> (State.t -> State.t list) -> t

val deterministic :
  ?based_on:string -> string -> Pred.t -> (State.t -> State.t) -> t

(** [assign name guard [(x, e); ...]] is the simultaneous assignment
    [x, ... := e, ...]. *)
val assign :
  ?based_on:string -> string -> Pred.t -> (string * Expr.t) list -> t

(** Like {!assign} but with semantic right-hand sides. *)
val assign_pred :
  ?based_on:string ->
  string ->
  Pred.t ->
  (string * (State.t -> Value.t)) list ->
  t

(** [choose name guard fs] nondeterministically applies one of [fs]. *)
val choose :
  ?based_on:string -> string -> Pred.t -> (State.t -> State.t) list -> t

(** [corrupt name guard x d] nondeterministically sets [x] to any value of
    [d] — the archetypal fault action (Section 2.3). *)
val corrupt : ?based_on:string -> string -> Pred.t -> string -> Domain.t -> t

val skip : string -> t

val name : t -> string
val guard : t -> Pred.t
val based_on : t -> string option

(** [enabled ac st]: the guard of [ac] is true in [st]. *)
val enabled : t -> State.t -> bool

(** [execute ac st] is the list of successor states, empty if disabled. *)
val execute : t -> State.t -> State.t list

(** [restrict z ac] is the ∧-composition [z ∧ ac] (Section 2.1.1). *)
val restrict : Pred.t -> t -> t

val rename : string -> t -> t

(** [preserves ac t ~universe]: executing [ac] anywhere [t] holds yields a
    state where [t] holds (Section 2.3). *)
val preserves : t -> Pred.t -> universe:State.t list -> bool

val pp : t Fmt.t
