(** Finite domains of values.

    Every program variable is declared with a finite domain so that the full
    state space can be enumerated and every notion of the theory becomes
    decidable. *)

type t

(** [of_values vs] builds a domain from a nonempty list of values (duplicates
    removed).  @raise Invalid_argument on an empty list. *)
val of_values : Value.t list -> t

(** [range lo hi] is the integer domain [{lo, ..., hi}] (inclusive). *)
val range : int -> int -> t

val boolean : t

(** [symbols names] is a domain of symbolic constants. *)
val symbols : string list -> t

(** [with_bot d] adds the distinguished {!Value.bot} to [d]. *)
val with_bot : t -> t

val mem : Value.t -> t -> bool
val size : t -> int
val values : t -> Value.t list
val pp : t Fmt.t
