lib/kernel/state.ml: Fmt Hashtbl List Map String Value
