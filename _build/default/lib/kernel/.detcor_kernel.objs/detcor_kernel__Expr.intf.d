lib/kernel/expr.mli: Fmt State Value
