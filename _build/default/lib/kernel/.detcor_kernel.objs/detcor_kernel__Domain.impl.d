lib/kernel/domain.ml: Fmt List Value
