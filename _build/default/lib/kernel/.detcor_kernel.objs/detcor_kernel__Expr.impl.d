lib/kernel/expr.ml: Fmt List State String Value
