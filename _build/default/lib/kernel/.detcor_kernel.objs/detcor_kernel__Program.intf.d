lib/kernel/program.mli: Action Domain Fmt Pred State
