lib/kernel/state.mli: Fmt Value
