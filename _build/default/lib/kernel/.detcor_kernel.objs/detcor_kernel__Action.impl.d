lib/kernel/action.ml: Domain Expr Fmt List Pred State
