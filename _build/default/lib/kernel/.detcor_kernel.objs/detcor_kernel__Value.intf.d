lib/kernel/value.mli: Fmt Format
