lib/kernel/pred.mli: Expr Fmt State
