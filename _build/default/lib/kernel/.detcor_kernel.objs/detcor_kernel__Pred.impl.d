lib/kernel/pred.ml: Expr Fmt Hashtbl List State
