lib/kernel/program.ml: Action Domain Fmt List Pred State String
