lib/kernel/action.mli: Domain Expr Fmt Pred State Value
