lib/kernel/domain.mli: Fmt Value
