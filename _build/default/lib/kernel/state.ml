(* Program states: total maps from variable names to values.

   A state of program [p] assigns each variable of [p] a value from its
   domain (Section 2.1 of the paper).  States are persistent maps so that
   actions build successor states cheaply and states can be used as keys in
   hash tables during state-space exploration. *)

module Var_map = Map.Make (String)

type t = Value.t Var_map.t

let empty = Var_map.empty

let of_list bindings =
  List.fold_left (fun st (x, v) -> Var_map.add x v st) empty bindings

let get st x =
  match Var_map.find_opt x st with
  | Some v -> v
  | None -> Value.type_error "unbound variable %s" x

let find_opt st x = Var_map.find_opt x st

let set st x v = Var_map.add x v st

let mem st x = Var_map.mem x st

let bindings st = Var_map.bindings st

let variables st = List.map fst (Var_map.bindings st)

let compare = Var_map.compare Value.compare

let equal = Var_map.equal Value.equal

let hash st =
  Var_map.fold (fun x v acc -> (acc * 31) + Hashtbl.hash x + Value.hash v) st 0

(* Projection of a state on a set of variables (Section 2.2.1). *)
let project st vars =
  let keep = List.sort_uniq String.compare vars in
  Var_map.filter (fun x _ -> List.mem x keep) st

let update_many st bindings =
  List.fold_left (fun acc (x, v) -> Var_map.add x v acc) st bindings

(* [agree_on st st' vars]: do the two states coincide on [vars]? *)
let agree_on st st' vars =
  List.for_all (fun x -> Value.equal (get st x) (get st' x)) vars

let pp ppf st =
  let pp_binding ppf (x, v) = Fmt.pf ppf "%s=%a" x Value.pp v in
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any " ") pp_binding) (bindings st)

let to_string st = Fmt.str "%a" pp st
