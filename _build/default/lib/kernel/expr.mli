(** Syntactic expressions over program variables.

    Guards and state predicates are boolean expressions over the program
    variables (Section 2.1).  The DSL front end elaborates to this AST. *)

type t =
  | Var of string
  | Const of Value.t
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | Eq of t * t
  | Neq of t * t
  | Lt of t * t
  | Le of t * t
  | Gt of t * t
  | Ge of t * t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Mod of t * t
  | Ite of t * t * t

(** {1 Constructors} *)

val var : string -> t
val const : Value.t -> t
val int : int -> t
val bool : bool -> t
val sym : string -> t
val true_ : t
val false_ : t
val not_ : t -> t
val and_ : t list -> t
val or_ : t list -> t
val implies : t -> t -> t
val iff : t -> t -> t
val eq : t -> t -> t
val neq : t -> t -> t
val lt : t -> t -> t
val le : t -> t -> t
val gt : t -> t -> t
val ge : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [mod_ a b] is the mathematical (always nonnegative) modulus. *)
val mod_ : t -> t -> t

val ite : t -> t -> t -> t

(** {1 Evaluation} *)

(** [eval st e] evaluates [e] in state [st].
    @raise Value.Type_error on kind mismatches or unbound variables. *)
val eval : State.t -> t -> Value.t

val eval_bool : State.t -> t -> bool
val eval_int : State.t -> t -> int

(** [variables e] is the sorted list of variables occurring in [e]. *)
val variables : t -> string list

val pp : t Fmt.t
val to_string : t -> string
