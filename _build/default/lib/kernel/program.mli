(** Programs (Section 2.1) and the paper's program compositions
    (Section 2.1.1): parallel ([[]]), restriction ([Z ∧ p]), and
    sequential ([p ;_Z q = p [] (Z ∧ q)]). *)

type t

(** [make ~name ~vars ~actions] builds a program from variable declarations
    (variable, finite domain) and actions.
    @raise Invalid_argument on duplicate variable or action names. *)
val make : name:string -> vars:(string * Domain.t) list -> actions:Action.t list -> t

val name : t -> string
val actions : t -> Action.t list
val variables : t -> string list
val var_decls : t -> (string * Domain.t) list
val domain_of : t -> string -> Domain.t option
val find_action : t -> string -> Action.t option
val with_name : string -> t -> t
val add_actions : t -> Action.t list -> t

(** Parallel composition [p [] q]: union of the actions
    (Section 2.1.1).  Shared variables must be declared with equal
    domains. *)
val parallel : t -> t -> t

val parallel_list : t list -> t

(** Restriction [Z ∧ p]: every action [g -> st] becomes [Z ∧ g -> st]. *)
val restrict : Pred.t -> t -> t

(** Sequential composition [p ;_Z q = p [] (Z ∧ q)]. *)
val sequential : t -> Pred.t -> t -> t

(** Size of the full product state space. *)
val space_size : t -> int

(** The full product state space — the universe for semantic checks. *)
val states : t -> State.t list

val fold_states : ('a -> State.t -> 'a) -> 'a -> t -> 'a

(** [successors p st]: successor states under every enabled action. *)
val successors : t -> State.t -> (Action.t * State.t) list

val enabled_actions : t -> State.t -> Action.t list

(** No action enabled: a maximal computation may stop here
    (Section 2.1, Maximality). *)
val deadlocked : t -> State.t -> bool

(** Checks all actions stay within declared domains; returns violations. *)
val well_formed : t -> string list

type encapsulation_violation = {
  offending_action : string;
  at_state : State.t;
  reason : string;
}

(** Semantic check of the paper's [encapsulates] relation (Section 2.1):
    each action of [p'] updating variables of [base] must execute only when
    the corresponding base action's guard holds and must have the base
    action's effect on the base variables. *)
val encapsulation_violations :
  base:t -> t -> universe:State.t list -> encapsulation_violation list

val encapsulates : base:t -> t -> universe:State.t list -> bool

val pp : t Fmt.t
