(** Program states.

    A state assigns a value to each variable of the program (Section 2.1).
    States are persistent string-keyed maps. *)

type t

val empty : t
val of_list : (string * Value.t) list -> t

(** [get st x] returns the value of [x].
    @raise Value.Type_error if [x] is unbound. *)
val get : t -> string -> Value.t

val find_opt : t -> string -> Value.t option
val set : t -> string -> Value.t -> t
val mem : t -> string -> bool
val bindings : t -> (string * Value.t) list
val variables : t -> string list
val update_many : t -> (string * Value.t) list -> t

(** [project st vars] is the projection of [st] on [vars]
    (Section 2.2.1 of the paper). *)
val project : t -> string list -> t

(** [agree_on st st' vars] holds iff [st] and [st'] assign equal values to
    every variable in [vars]. *)
val agree_on : t -> t -> string list -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : t Fmt.t
val to_string : t -> string
