(* Syntactic expressions over program variables.

   Guards and state predicates in the paper are boolean expressions over the
   program variables (Section 2.1).  We provide a small expression AST with
   an evaluator; the DSL front end elaborates to this AST, and [Pred.of_expr]
   converts boolean expressions into semantic predicates. *)

type t =
  | Var of string
  | Const of Value.t
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | Eq of t * t
  | Neq of t * t
  | Lt of t * t
  | Le of t * t
  | Gt of t * t
  | Ge of t * t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Mod of t * t
  | Ite of t * t * t

let var x = Var x
let const v = Const v
let int n = Const (Value.Int n)
let bool b = Const (Value.Bool b)
let sym s = Const (Value.Sym s)
let true_ = bool true
let false_ = bool false

let not_ e = Not e
let and_ es = And es
let or_ es = Or es
let implies a b = Implies (a, b)
let iff a b = Iff (a, b)
let eq a b = Eq (a, b)
let neq a b = Neq (a, b)
let lt a b = Lt (a, b)
let le a b = Le (a, b)
let gt a b = Gt (a, b)
let ge a b = Ge (a, b)
let add a b = Add (a, b)
let sub a b = Sub (a, b)
let mul a b = Mul (a, b)
let mod_ a b = Mod (a, b)
let ite c a b = Ite (c, a, b)

let rec eval st e =
  match e with
  | Var x -> State.get st x
  | Const v -> v
  | Not e -> Value.Bool (not (Value.as_bool (eval st e)))
  | And es -> Value.Bool (List.for_all (fun e -> Value.as_bool (eval st e)) es)
  | Or es -> Value.Bool (List.exists (fun e -> Value.as_bool (eval st e)) es)
  | Implies (a, b) ->
    Value.Bool ((not (Value.as_bool (eval st a))) || Value.as_bool (eval st b))
  | Iff (a, b) ->
    Value.Bool (Value.as_bool (eval st a) = Value.as_bool (eval st b))
  | Eq (a, b) -> Value.Bool (Value.equal (eval st a) (eval st b))
  | Neq (a, b) -> Value.Bool (not (Value.equal (eval st a) (eval st b)))
  | Lt (a, b) -> Value.Bool (Value.compare (eval st a) (eval st b) < 0)
  | Le (a, b) -> Value.Bool (Value.compare (eval st a) (eval st b) <= 0)
  | Gt (a, b) -> Value.Bool (Value.compare (eval st a) (eval st b) > 0)
  | Ge (a, b) -> Value.Bool (Value.compare (eval st a) (eval st b) >= 0)
  | Add (a, b) -> Value.Int (Value.as_int (eval st a) + Value.as_int (eval st b))
  | Sub (a, b) -> Value.Int (Value.as_int (eval st a) - Value.as_int (eval st b))
  | Mul (a, b) -> Value.Int (Value.as_int (eval st a) * Value.as_int (eval st b))
  | Mod (a, b) ->
    let m = Value.as_int (eval st b) in
    if m = 0 then Value.type_error "modulo by zero"
    else Value.Int (((Value.as_int (eval st a) mod m) + m) mod m)
  | Ite (c, a, b) -> if Value.as_bool (eval st c) then eval st a else eval st b

let eval_bool st e = Value.as_bool (eval st e)
let eval_int st e = Value.as_int (eval st e)

let rec free_vars = function
  | Var x -> [ x ]
  | Const _ -> []
  | Not e -> free_vars e
  | And es | Or es -> List.concat_map free_vars es
  | Implies (a, b) | Iff (a, b) | Eq (a, b) | Neq (a, b)
  | Lt (a, b) | Le (a, b) | Gt (a, b) | Ge (a, b)
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Mod (a, b) ->
    free_vars a @ free_vars b
  | Ite (c, a, b) -> free_vars c @ free_vars a @ free_vars b

let variables e = List.sort_uniq String.compare (free_vars e)

let rec pp ppf e =
  let binop ppf op a b = Fmt.pf ppf "(%a %s %a)" pp a op pp b in
  match e with
  | Var x -> Fmt.string ppf x
  | Const v -> Value.pp ppf v
  | Not e -> Fmt.pf ppf "!%a" pp e
  | And [] -> Fmt.string ppf "true"
  | And es -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " && ") pp) es
  | Or [] -> Fmt.string ppf "false"
  | Or es -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " || ") pp) es
  | Implies (a, b) -> binop ppf "=>" a b
  | Iff (a, b) -> binop ppf "<=>" a b
  | Eq (a, b) -> binop ppf "=" a b
  | Neq (a, b) -> binop ppf "!=" a b
  | Lt (a, b) -> binop ppf "<" a b
  | Le (a, b) -> binop ppf "<=" a b
  | Gt (a, b) -> binop ppf ">" a b
  | Ge (a, b) -> binop ppf ">=" a b
  | Add (a, b) -> binop ppf "+" a b
  | Sub (a, b) -> binop ppf "-" a b
  | Mul (a, b) -> binop ppf "*" a b
  | Mod (a, b) -> binop ppf "%" a b
  | Ite (c, a, b) -> Fmt.pf ppf "(if %a then %a else %a)" pp c pp a pp b

let to_string e = Fmt.str "%a" pp e
