(** Detectors (Section 3): ['Z detects X in d from U'] iff [d] refines the
    ['Z detects X'] specification from [U]. *)

open Detcor_kernel
open Detcor_semantics
open Detcor_spec

type t

val make : ?name:string -> witness:Pred.t -> detection:Pred.t -> unit -> t
val name : t -> string

(** The witness predicate Z. *)
val witness : t -> Pred.t

(** The detection predicate X. *)
val detection : t -> Pred.t

(** The full ['Z detects X'] specification (Safeness, Stability,
    Progress). *)
val spec : t -> Spec.t

(** Safeness + Stability only — the fail-safe tolerance specification of
    ['Z detects X']. *)
val safety_spec : t -> Spec.t

(** The Progress obligation alone, on a given system. *)
val progress : Ts.t -> t -> Check.outcome

(** [satisfies_ts ts d]: the system refines ['Z detects X']. *)
val satisfies_ts : Ts.t -> t -> Check.outcome

(** [satisfies program d ~from]: [Z detects X in program from [from]]. *)
val satisfies : ?limit:int -> Program.t -> t -> from:Pred.t -> Check.outcome

type tolerant_report = {
  tol : Spec.tolerance;
  span : Pred.t;
  items : (string * Check.outcome) list;
}

val verdict : tolerant_report -> bool
val pp_report : tolerant_report Fmt.t

(** [tolerant program d ~faults ~tol ~from] checks that [program] is a
    [tol]-tolerant detector for ['Z detects X'] from [from] in the presence
    of [faults]; obligations follow the paper's proofs (safety on
    [p [] F] over the F-span, liveness on [p] alone — Assumption 2).
    [recover] (default [from]) is the predicate from which nonmasking
    recovery re-establishes the specification. *)
val tolerant :
  ?limit:int ->
  ?recover:Pred.t ->
  Program.t ->
  t ->
  faults:Fault.t ->
  tol:Spec.tolerance ->
  from:Pred.t ->
  tolerant_report

val pp : t Fmt.t
