(** The paper's theorems as machine-checkable schemas: every premise is
    decided on the finite system, the proof's witness components are
    constructed, and every conclusion is decided.  [validates] expresses
    the soundness contract (premises ⇒ conclusions); the test suite checks
    it on the paper's systems and on perturbed/negative variants. *)

open Detcor_kernel
open Detcor_spec

type schema = {
  theorem : string;
  premises : (string * Detcor_semantics.Check.outcome) list;
  conclusions : (string * Detcor_semantics.Check.outcome) list;
}

val premises_hold : schema -> bool
val conclusions_hold : schema -> bool
val holds : schema -> bool

(** Premises hold ⇒ conclusions hold. *)
val validates : schema -> bool

val pp_schema : schema Fmt.t

(** Theorem 3.4: programs refining a safety specification contain
    detectors — one per action of the base program. *)
val theorem_3_4 :
  ?limit:int ->
  base:Program.t ->
  refined:Program.t ->
  sspec:Safety.t ->
  invariant:Pred.t ->
  unit ->
  schema

(** Lemma 3.5: encapsulation + safety refinement give fail-safe tolerant
    detectors. *)
val lemma_3_5 :
  ?limit:int ->
  base:Program.t ->
  refined:Program.t ->
  sspec:Safety.t ->
  invariant:Pred.t ->
  unit ->
  schema

(** Theorem 3.6: fail-safe F-tolerant programs contain fail-safe
    F-tolerant detectors. *)
val theorem_3_6 :
  ?limit:int ->
  base:Program.t ->
  refined:Program.t ->
  spec:Spec.t ->
  faults:Fault.t ->
  invariant_s:Pred.t ->
  invariant_r:Pred.t ->
  unit ->
  schema

(** Theorem 4.1: programs that eventually refine a specification contain
    correctors. *)
val theorem_4_1 :
  ?limit:int ->
  base:Program.t ->
  refined:Program.t ->
  spec:Spec.t ->
  invariant_s:Pred.t ->
  from_t:Pred.t ->
  unit ->
  schema

(** Lemma 4.2: recovery through R ⊆ S gives a nonmasking corrector. *)
val lemma_4_2 :
  ?limit:int ->
  base:Program.t ->
  refined:Program.t ->
  spec:Spec.t ->
  invariant_s:Pred.t ->
  invariant_r:Pred.t ->
  from_t:Pred.t ->
  unit ->
  schema

(** Theorem 4.3: nonmasking F-tolerant programs contain nonmasking
    F-tolerant correctors. *)
val theorem_4_3 :
  ?limit:int ->
  base:Program.t ->
  refined:Program.t ->
  spec:Spec.t ->
  faults:Fault.t ->
  invariant_s:Pred.t ->
  invariant_r:Pred.t ->
  unit ->
  schema

(** Theorem 5.2: safety from T + convergence to S + correctness from S
    imply the masking tolerance specification from T. *)
val theorem_5_2 :
  ?limit:int ->
  program:Program.t ->
  spec:Spec.t ->
  invariant_s:Pred.t ->
  from_t:Pred.t ->
  unit ->
  schema

(** Theorem 5.5: masking F-tolerant programs contain masking tolerant
    detectors and correctors (the latter nonmasking F-tolerant). *)
val theorem_5_5 :
  ?limit:int ->
  base:Program.t ->
  refined:Program.t ->
  spec:Spec.t ->
  faults:Fault.t ->
  invariant_s:Pred.t ->
  invariant_r:Pred.t ->
  unit ->
  schema
