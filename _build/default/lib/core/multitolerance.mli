(** Multitolerance: different tolerance levels to different fault classes
    in one program — the design goal of the paper's companion method
    (its reference [4]). *)

open Detcor_kernel
open Detcor_spec

type requirement = {
  fault : Fault.t;
  tol : Spec.tolerance;
}

type report = {
  subject : string;
  per_class : (string * Spec.tolerance * Tolerance.report) list;
  combined : Tolerance.report option;
      (** union of the classes, at the weakest requested tolerance *)
}

(** Masking if all masking; nonmasking if any nonmasking; else
    fail-safe. *)
val weakest : Spec.tolerance list -> Spec.tolerance

val verdict : report -> bool

(** Check each requirement separately, plus (by default) the combined
    fault class at the weakest requested tolerance. *)
val check :
  ?limit:int ->
  ?combined:bool ->
  Program.t ->
  spec:Spec.t ->
  invariant:Pred.t ->
  requirements:requirement list ->
  report

val pp_report : report Fmt.t
