(** Fault classes (Section 2.3): sets of actions over the program's
    variables, possibly with auxiliary variables (e.g. Byzantine mode
    bits). *)

open Detcor_kernel

type t

val make : ?aux_vars:(string * Domain.t) list -> string -> Action.t list -> t
val name : t -> string
val actions : t -> Action.t list
val aux_vars : t -> (string * Domain.t) list
val action_names : t -> string list

(** The empty fault class. *)
val none : t

val union : t -> t -> t

(** Transient corruption: sets [x] to an arbitrary value of [d]. *)
val corrupt_variable : ?guard:Pred.t -> string -> Domain.t -> t

(** [compose p f] is [p [] F] — the union of actions; its computations are
    only p-fair and p-maximal, which the tolerance checkers respect. *)
val compose : Program.t -> t -> Program.t

val composed_vars : Program.t -> t -> (string * Domain.t) list
val pp : t Fmt.t
