(* Extraction of detector and corrector components from fault-tolerant
   programs — the constructive content of Theorems 3.4 and 4.1.

   Theorem 3.4 proves that a program p' refining a safety specification
   contains, for each action ac of the underlying intolerant program p, a
   detector of a detection predicate of ac.  Its proof constructs a witness
   predicate Z (the guard of the refined action) and a detection predicate
   X obtained from the weakest detection predicate of ac by removing the
   states that would break Stability or Progress.  [detector_for_action]
   computes exactly that: it starts from X₀ = g ∧ sf and iteratively
   removes
   - Stability violators: X-states that are targets of transitions from a
     Z-state to a ¬Z-state (so that "Z ∨ ¬X" holds after the step), and
   - Progress violators: X∧¬Z-states from which some fair maximal
     computation stays in X∧¬Z forever (removing them turns the escape
     into "¬X").
   Both removals shrink X monotonically, so the fixpoint exists; Safeness
   (Z ⇒ X) is then checked — it holds exactly when p' really does refine
   the safety specification, which is the theorem's premise.

   Theorem 4.1's corrector extraction is direct: X = S (an invariant
   predicate of p) and Z = S ∧ (reachable from T in p'). *)

open Detcor_kernel
open Detcor_semantics
open Detcor_spec

type extracted_detector = {
  for_action : string; (* the base-program action *)
  refined_action : string; (* the corresponding action of p' *)
  detector : Detector.t;
  outcome : Check.outcome; (* p' refines 'Z detects X' from the init states *)
}

type extracted_corrector = {
  corrector : Corrector.t;
  outcome : Check.outcome;
}

(* Find the action of [refined] that encapsulates [ac]: an action tagged
   [based_on ac], or the action with the same name. *)
let refined_action_for ~refined ac =
  let name = Action.name ac in
  match
    List.find_opt
      (fun ac' -> Action.based_on ac' = Some name)
      (Program.actions refined)
  with
  | Some ac' -> Some ac'
  | None -> Program.find_action refined name

(* The fixpoint described above, over an explored system [ts] of p'.

   [extra_transitions] are additional state pairs that X must be stable
   against — the fault transitions when extracting a *tolerant* detector,
   whose Stability must also hold across fault steps (the Progress side
   ignores them: faults are finitely many, Assumption 2). *)
let shrink_to_detects ?(extra_transitions = []) ts ~witness:z ~x0 =
  let n = Ts.num_states ts in
  let x = Array.make n false in
  for i = 0 to n - 1 do
    x.(i) <- Pred.holds x0 (Ts.state ts i)
  done;
  let z_at = Array.make n false in
  for i = 0 to n - 1 do
    z_at.(i) <- Pred.holds z (Ts.state ts i)
  done;
  let extra_indexed =
    List.filter_map
      (fun (s, s') ->
        match (Ts.index_of ts s, Ts.index_of ts s') with
        | Some i, Some j -> Some (i, j)
        | _ -> None)
      extra_transitions
  in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Stability: remove targets of Z -> ¬Z transitions from X. *)
    let stability_step i j =
      if z_at.(i) && (not z_at.(j)) && x.(j) then begin
        x.(j) <- false;
        changed := true
      end
    in
    Ts.iter_edges ts (fun i _aid j -> stability_step i j);
    List.iter (fun (i, j) -> stability_step i j) extra_indexed;
    (* Progress: remove X∧¬Z states that can stay in X∧¬Z forever (via a
       fair cycle) or deadlock inside it. *)
    let region i = x.(i) && not z_at.(i) in
    let starts = List.filter region (List.init n Fun.id) in
    if starts <> [] then begin
      (* States inside the region that are "stuck": deadlocked, or members
         of a fair SCC of the region. *)
      let stuck = Array.make n false in
      List.iter (fun i -> if Ts.deadlocked ts i then stuck.(i) <- true) starts;
      List.iter
        (fun (scc : Graph.scc) ->
          List.iter (fun v -> stuck.(v) <- true) scc.members)
        (Fairness.fair_sccs ~mask:region ts);
      let stuck_list = List.filter (fun i -> stuck.(i)) starts in
      if stuck_list <> [] then begin
        let doomed = Graph.co_reachable ~mask:region ts ~target:stuck_list in
        for i = 0 to n - 1 do
          if doomed.(i) && x.(i) then begin
            x.(i) <- false;
            changed := true
          end
        done
      end
    end
  done;
  let members = ref [] in
  for i = n - 1 downto 0 do
    if x.(i) then members := Ts.state ts i :: !members
  done;
  !members

(* [detector_for_action ~base ~sspec ts ac]: extract the detector that p'
   (explored as [ts]) contains for action [ac] of [base], following the
   proof of Theorem 3.4. *)
let detector_for_action ?(extra_transitions = []) ~base:_ ~sspec ts ac =
  let refined = Ts.program ts in
  match refined_action_for ~refined ac with
  | None ->
    let d =
      Detector.make
        ~name:(Fmt.str "missing refinement of %s" (Action.name ac))
        ~witness:Pred.false_ ~detection:Pred.false_ ()
    in
    {
      for_action = Action.name ac;
      refined_action = "<none>";
      detector = d;
      outcome =
        Check.Fails
          (Check.Not_implied
             (match Ts.states ts with s :: _ -> s | [] -> State.empty));
    }
  | Some ac' ->
    let z = Action.guard ac' in
    let sf = Detection_predicate.weakest ~sspec ac in
    let x0 = Pred.and_ (Action.guard ac) sf in
    let x_states = shrink_to_detects ~extra_transitions ts ~witness:z ~x0 in
    let x =
      Pred.of_states
        ~name:(Fmt.str "X(%s)" (Action.name ac))
        x_states
    in
    let detector =
      Detector.make
        ~name:(Fmt.str "detector for %s" (Action.name ac))
        ~witness:z ~detection:x ()
    in
    let outcome = Detector.satisfies_ts ts detector in
    {
      for_action = Action.name ac;
      refined_action = Action.name ac';
      detector;
      outcome;
    }

(* All detectors of p' for the actions of the base program
   (Theorem 3.4's universally quantified conclusion). *)
let detectors ?extra_transitions ~base ~sspec ts =
  List.map
    (detector_for_action ?extra_transitions ~base ~sspec ts)
    (Program.actions base)

(* The fault transitions of an explored [p [] F] system, for the Stability
   side of tolerant-detector extraction. *)
let fault_transitions ts_pf ~faults =
  let fault_ids = Ts.action_ids_of_names ts_pf (Fault.action_names faults) in
  let is_fault = Array.make (Ts.num_actions ts_pf) false in
  List.iter (fun i -> is_fault.(i) <- true) fault_ids;
  Ts.fold_edges ts_pf
    (fun acc i aid j ->
      if is_fault.(aid) then (Ts.state ts_pf i, Ts.state ts_pf j) :: acc
      else acc)
    []

(* The fail-safe variant (Lemma 3.5): only Safeness and Stability are
   required of the extracted component. *)
let failsafe_detectors ~base ~sspec ts =
  List.map
    (fun ac ->
      let e = detector_for_action ~base ~sspec ts ac in
      let safety_only = Detector.safety_spec e.detector in
      { e with outcome = Spec.refines ts safety_only })
    (Program.actions base)

(* Corrector extraction (Theorem 4.1): X = S, Z = S ∧ reachable. *)
let corrector_for_invariant ts ~invariant:s =
  let reach =
    Pred.of_states ~name:"reach" (Ts.states ts)
  in
  let z = Pred.and_ s reach in
  let corrector =
    Corrector.make
      ~name:(Fmt.str "corrector of %s" (Pred.name s))
      ~witness:z ~correction:s ()
  in
  { corrector; outcome = Corrector.satisfies_ts ts corrector }

(* Nonmasking corrector extraction (Lemma 4.2): X = S, Z = R. *)
let nonmasking_corrector ts ~invariant:s ~recovery:r =
  let corrector =
    Corrector.make
      ~name:
        (Fmt.str "nonmasking corrector of %s via %s" (Pred.name s)
           (Pred.name r))
      ~witness:r ~correction:s ()
  in
  (* Obligations of Lemma 4.2: convergence to R, then 'Z corrects X'
     from R. *)
  let convergence = Check.eventually ts r in
  let from_r =
    Ts.build (Ts.program ts)
      ~from:(List.filter (Pred.holds r) (Ts.states ts))
  in
  let corrects = Corrector.satisfies_ts from_r corrector in
  { corrector; outcome = Check.all [ convergence; corrects ] }

(* S_p of Lemma 5.4: the projection of S on the base variables — the states
   of p' whose base-variable projection agrees with some S-state. *)
let project_invariant ~base ts ~invariant:s =
  let base_vars = Program.variables base in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun st ->
      if Pred.holds s st then
        Hashtbl.replace tbl (State.to_string (State.project st base_vars)) ())
    (Ts.states ts);
  Pred.make
    (Fmt.str "%s_p" (Pred.name s))
    (fun st -> Hashtbl.mem tbl (State.to_string (State.project st base_vars)))
