(** Correctors (Section 4): ['Z corrects X in c from U'] iff [c] refines
    the ['Z corrects X'] specification from [U] — the detector conditions
    plus Convergence. *)

open Detcor_kernel
open Detcor_semantics
open Detcor_spec

type t

val make : ?name:string -> witness:Pred.t -> correction:Pred.t -> unit -> t
val name : t -> string
val witness : t -> Pred.t
val correction : t -> Pred.t

(** Corrector with witness = correction predicate: the Arora–Gouda
    closure-and-convergence special case (remark in Section 4.1). *)
val of_invariant : Pred.t -> t

val spec : t -> Spec.t

(** The underlying detector [Z detects X]. *)
val as_detector : t -> Detector.t

(** Safeness + Stability + closure of X — the fail-safe tolerance
    specification of ['Z corrects X']. *)
val safety_spec : t -> Spec.t

(** Convergence alone: X closed and eventually reached. *)
val convergence : Ts.t -> t -> Check.outcome

val satisfies_ts : Ts.t -> t -> Check.outcome
val satisfies : ?limit:int -> Program.t -> t -> from:Pred.t -> Check.outcome

type tolerant_report = {
  tol : Spec.tolerance;
  span : Pred.t;
  items : (string * Check.outcome) list;
}

val verdict : tolerant_report -> bool
val pp_report : tolerant_report Fmt.t

(** Tolerant-corrector check in the presence of faults; obligations follow
    the paper's proofs (Lemma 4.2 / Theorem 4.3 for nonmasking). *)
val tolerant :
  ?limit:int ->
  ?recover:Pred.t ->
  Program.t ->
  t ->
  faults:Fault.t ->
  tol:Spec.tolerance ->
  from:Pred.t ->
  tolerant_report

val pp : t Fmt.t
