(** The refines relation between programs (Section 2.2.1): [p'] refines
    [p] from [S] iff [S] is closed in [p'] and every computation of [p']
    from [S] projects on the variables of [p] to a computation of [p]
    (stuttering steps of the added machinery admitted). *)

open Detcor_kernel
open Detcor_semantics

type step_violation = {
  source : State.t;
  action : string;
  target : State.t;
}

type result = {
  closure : Check.outcome;
  bad_steps : step_violation list;
  divergence : Check.outcome;
      (** a fair infinite run stuttering on the base variables forever *)
}

val ok : result -> bool

(** Classify one transition of the refined program with respect to the
    base. *)
val project_step :
  Program.t -> State.t -> State.t -> [ `Stutter | `Step | `Bad ]

(** Check over an already-explored system of the refined program. *)
val check_ts : base:Program.t -> Ts.t -> from:Pred.t -> result

(** [check ~base super ~from] explores [super] from the [from]-states and
    checks the relation. *)
val check : ?limit:int -> base:Program.t -> Program.t -> from:Pred.t -> result

(** First failing obligation as a checker outcome. *)
val outcome : result -> Check.outcome

val pp : result Fmt.t
