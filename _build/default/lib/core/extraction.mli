(** Extraction of detector and corrector components from fault-tolerant
    programs — the constructive content of Theorems 3.4 and 4.1.

    Given the refined program's explored system, the extractor computes
    the witness predicate Z (the refined action's guard) and the largest
    detection predicate X ⊆ (g ∧ weakest-detection-predicate) for which
    ['Z detects X'] holds, following the proof of Theorem 3.4. *)

open Detcor_kernel
open Detcor_semantics
open Detcor_spec

type extracted_detector = {
  for_action : string;
  refined_action : string;
  detector : Detector.t;
  outcome : Check.outcome;
}

type extracted_corrector = {
  corrector : Corrector.t;
  outcome : Check.outcome;
}

(** The action of the refined program encapsulating [ac] (by [based_on]
    tag, or by name). *)
val refined_action_for : refined:Program.t -> Action.t -> Action.t option

(** The Stability/Progress shrinking fixpoint on an explored system:
    returns the states of the largest X ⊆ x0 making ['Z detects X'] stable
    and progressive.  [extra_transitions] (e.g. fault steps) participate in
    the Stability side only. *)
val shrink_to_detects :
  ?extra_transitions:(State.t * State.t) list ->
  Ts.t ->
  witness:Pred.t ->
  x0:Pred.t ->
  State.t list

(** Extract p''s detector for one action of the base program
    (Theorem 3.4). *)
val detector_for_action :
  ?extra_transitions:(State.t * State.t) list ->
  base:Program.t ->
  sspec:Safety.t ->
  Ts.t ->
  Action.t ->
  extracted_detector

(** Extract detectors for every action of the base program. *)
val detectors :
  ?extra_transitions:(State.t * State.t) list ->
  base:Program.t ->
  sspec:Safety.t ->
  Ts.t ->
  extracted_detector list

(** The fault transitions of an explored [p [] F] system, for tolerant
    extraction. *)
val fault_transitions :
  Ts.t -> faults:Fault.t -> (State.t * State.t) list

(** Lemma 3.5: only Safeness and Stability required. *)
val failsafe_detectors :
  base:Program.t -> sspec:Safety.t -> Ts.t -> extracted_detector list

(** Theorem 4.1: X = S, Z = S ∧ reachable. *)
val corrector_for_invariant :
  Ts.t -> invariant:Pred.t -> extracted_corrector

(** Lemma 4.2: X = S, Z = R; convergence to R then ['Z corrects X'] from
    R. *)
val nonmasking_corrector :
  Ts.t -> invariant:Pred.t -> recovery:Pred.t -> extracted_corrector

(** S_p of Lemma 5.4: states whose base-variable projection agrees with
    some S-state. *)
val project_invariant :
  base:Program.t -> Ts.t -> invariant:Pred.t -> Pred.t
