(** Composition of tolerance components — the "framework of components"
    announced in the paper's concluding remarks.  Conjunction of detectors
    is unconditionally sound (the hierarchical AND-construction);
    disjunction and corrector conjunction carry interference-freedom side
    conditions decided per instance by the schemas. *)

open Detcor_semantics

(** [Z1 ∧ Z2 detects X1 ∧ X2]. *)
val detector_and : Detector.t -> Detector.t -> Detector.t

(** [Z1 ∨ Z2 detects X1 ∨ X2] — not unconditionally sound. *)
val detector_or : Detector.t -> Detector.t -> Detector.t

val detector_list_and : Detector.t list -> Detector.t

(** Sequenced detectors: the second stage observes the first witness. *)
val detector_seq : Detector.t -> Detector.t -> Detector.t

val corrector_and : Corrector.t -> Corrector.t -> Corrector.t

type schema = {
  name : string;
  premises : (string * Check.outcome) list;
  conclusion : string * Check.outcome;
}

val holds : schema -> bool

(** Premises hold ⇒ conclusion holds. *)
val validates : schema -> bool

val pp_schema : schema Fmt.t

(** Sound unconditionally: if both detectors hold on the system, so does
    their conjunction. *)
val conjunction_schema : Ts.t -> Detector.t -> Detector.t -> schema

(** Instance-checked. *)
val disjunction_schema : Ts.t -> Detector.t -> Detector.t -> schema

(** Instance-checked interference freedom. *)
val corrector_conjunction_schema : Ts.t -> Corrector.t -> Corrector.t -> schema
