(* The paper's theorems as machine-checkable schemas.

   Each function takes the ingredients of a theorem's premises, decides
   every premise on the finite system, builds the witness components the
   proof constructs, and decides the conclusions.  A schema instance
   therefore both *validates the theory* on a concrete system (premises
   hold ⇒ conclusions hold) and *extracts* the detector/corrector
   components whose existence the theorem asserts.

   Premises marked "(premise)" must hold for the theorem to apply;
   conclusions marked "(conclusion)" are what the theorem promises.  On
   any instance where all premises hold but a conclusion fails, the
   implementation (or the theory) would be refuted — the test suite checks
   this never happens on the paper's systems and on randomized ones. *)

open Detcor_kernel
open Detcor_semantics
open Detcor_spec

type schema = {
  theorem : string;
  premises : (string * Check.outcome) list;
  conclusions : (string * Check.outcome) list;
}

let premises_hold s = List.for_all (fun (_, o) -> Check.holds o) s.premises
let conclusions_hold s = List.for_all (fun (_, o) -> Check.holds o) s.conclusions
let holds s = premises_hold s && conclusions_hold s

(* The soundness contract: premises hold ⇒ conclusions hold. *)
let validates s = (not (premises_hold s)) || conclusions_hold s

let pp_schema ppf s =
  let pp_items ppf items =
    Fmt.(
      list ~sep:cut (fun ppf (l, o) ->
          Fmt.pf ppf "  %-56s %a" l Check.pp_outcome o))
      ppf items
  in
  Fmt.pf ppf "@[<v>%s@,premises:@,%a@,conclusions:@,%a@,=> %s@]" s.theorem
    pp_items s.premises pp_items s.conclusions
    (if holds s then "holds"
     else if not (premises_hold s) then "not applicable (premise fails)"
     else "REFUTED")

let outcome_of_bool b witness_state =
  if b then Check.Holds else Check.Fails (Check.Not_implied witness_state)

let some_state ts =
  match Ts.states ts with s :: _ -> s | [] -> State.empty

(* ------------------------------------------------------------------ *)
(* Theorem 3.4: programs that refine a safety specification contain     *)
(* detectors.                                                           *)
(* ------------------------------------------------------------------ *)

let theorem_3_4 ?limit ~base ~refined ~sspec ~invariant () =
  let ts = Ts.of_pred ?limit refined ~from:invariant in
  let refinement = Refinement.check_ts ~base ts ~from:invariant in
  let universe = Ts.states ts in
  let encapsulation =
    outcome_of_bool
      (Program.encapsulates ~base refined ~universe)
      (some_state ts)
  in
  let safety =
    Spec.refines ts (Spec.make ~name:(Safety.name sspec) ~safety:sspec ())
  in
  let extracted = Extraction.detectors ~base ~sspec ts in
  {
    theorem = "Theorem 3.4 (safety refinement contains detectors)";
    premises =
      [
        ("p' refines p from S (premise)", Refinement.outcome refinement);
        ("p' encapsulates p (premise)", encapsulation);
        ("p' refines SSPEC from S (premise)", safety);
      ];
    conclusions =
      List.map
        (fun (e : Extraction.extracted_detector) ->
          ( Fmt.str "p' is a detector for %s (conclusion)" e.for_action,
            e.outcome ))
        extracted;
  }

(* Lemma 3.5: encapsulation + safety refinement give fail-safe tolerant
   detectors (Safeness and Stability only). *)
let lemma_3_5 ?limit ~base ~refined ~sspec ~invariant () =
  let ts = Ts.of_pred ?limit refined ~from:invariant in
  let universe = Ts.states ts in
  let encapsulation =
    outcome_of_bool
      (Program.encapsulates ~base refined ~universe)
      (some_state ts)
  in
  let safety =
    Spec.refines ts (Spec.make ~name:(Safety.name sspec) ~safety:sspec ())
  in
  let extracted = Extraction.failsafe_detectors ~base ~sspec ts in
  {
    theorem = "Lemma 3.5 (fail-safe tolerant detectors)";
    premises =
      [
        ("p' encapsulates p (premise)", encapsulation);
        ("p' refines SSPEC from S (premise)", safety);
      ];
    conclusions =
      List.map
        (fun (e : Extraction.extracted_detector) ->
          ( Fmt.str "p' is a fail-safe tolerant detector for %s (conclusion)"
              e.for_action,
            e.outcome ))
        extracted;
  }

(* ------------------------------------------------------------------ *)
(* Theorem 3.6: fail-safe F-tolerant programs contain fail-safe         *)
(* F-tolerant detectors.                                                *)
(* ------------------------------------------------------------------ *)

let theorem_3_6 ?limit ~base ~refined ~spec ~faults ~invariant_s ~invariant_r
    () =
  let sspec = Spec.safety (Spec.smallest_safety_containing spec) in
  (* Premise: p refines SPEC from S. *)
  let _, base_refines =
    Tolerance.refines_from ?limit base ~spec ~invariant:invariant_s
  in
  (* Premise: p' refines p from R with R ⇒ S. *)
  let ts_r = Ts.of_pred ?limit refined ~from:invariant_r in
  let r_implies_s = Check.implies ts_r invariant_r invariant_s in
  let refinement = Refinement.check_ts ~base ts_r ~from:invariant_r in
  let universe = Ts.states ts_r in
  let encapsulation =
    outcome_of_bool
      (Program.encapsulates ~base refined ~universe)
      (some_state ts_r)
  in
  (* Premise: p' [] F refines SSPEC from T (the span of R). *)
  let span =
    Tolerance.fault_span_from_states ?limit refined ~faults ~init:universe
  in
  let span_safety =
    Spec.refines span.ts_pf (Spec.make ~name:"SSPEC" ~safety:sspec ())
  in
  (* Conclusion 1: p' is fail-safe F-tolerant for SPEC from R. *)
  let failsafe =
    Tolerance.check_with ?limit refined ~spec ~invariant:invariant_r
      ~init:universe ~faults ~tol:Spec.Failsafe
  in
  let failsafe_outcome =
    match Tolerance.failures failsafe with
    | [] -> Check.Holds
    | i :: _ -> i.outcome
  in
  (* Conclusion 2: for each base action, a fail-safe F-tolerant detector.
     The detection predicate is extracted over the whole span (where the
     component must keep operating), with fault steps on the Stability
     side; Safeness/Stability must then hold over the span under
     p' [] F. *)
  let ts_p_span = Ts.build ?limit refined ~from:(Ts.states span.ts_pf) in
  let extra_transitions = Extraction.fault_transitions span.ts_pf ~faults in
  let detector_conclusions =
    List.map
      (fun ac ->
        let e =
          Extraction.detector_for_action ~extra_transitions ~base ~sspec
            ts_p_span ac
        in
        let tolerant_safety =
          Spec.refines span.ts_pf (Detector.safety_spec e.detector)
        in
        ( Fmt.str
            "p' is a fail-safe F-tolerant detector for %s (conclusion)"
            e.for_action,
          Check.all [ e.outcome; tolerant_safety ] ))
      (Program.actions base)
  in
  {
    theorem = "Theorem 3.6 (fail-safe tolerance contains tolerant detectors)";
    premises =
      [
        ("p refines SPEC from S (premise)", base_refines);
        ("R => S (premise)", r_implies_s);
        ("p' refines p from R (premise)", Refinement.outcome refinement);
        ("p' encapsulates p (premise)", encapsulation);
        ("p'[]F refines SSPEC from T (premise)", span_safety);
      ];
    conclusions =
      ("p' is fail-safe F-tolerant for SPEC from R (conclusion)",
       failsafe_outcome)
      :: detector_conclusions;
  }

(* ------------------------------------------------------------------ *)
(* Theorem 4.1: programs that eventually refine a specification         *)
(* contain correctors.                                                  *)
(* ------------------------------------------------------------------ *)

let theorem_4_1 ?limit ~base ~refined ~spec ~invariant_s ~from_t () =
  let _, base_refines =
    Tolerance.refines_from ?limit base ~spec ~invariant:invariant_s
  in
  let ts_t = Ts.of_pred ?limit refined ~from:from_t in
  let ts_s = Ts.of_pred ?limit refined ~from:invariant_s in
  let refinement = Refinement.check_ts ~base ts_s ~from:invariant_s in
  (* Premise: p' refines (true)*(p'|S) from T — every computation from T
     reaches S. *)
  let eventually_s = Check.eventually ts_t invariant_s in
  let extracted = Extraction.corrector_for_invariant ts_t ~invariant:invariant_s in
  {
    theorem = "Theorem 4.1 (eventual refinement contains correctors)";
    premises =
      [
        ("p refines SPEC from S (premise)", base_refines);
        ("p' refines p from S (premise)", Refinement.outcome refinement);
        ("p' refines (true)*(p'|S) from T (premise)", eventually_s);
      ];
    conclusions =
      [
        ( "p' is a corrector of an invariant predicate of p (conclusion)",
          extracted.outcome );
      ];
  }

(* Lemma 4.2: p' behaves like p only from R ⊆ S: nonmasking corrector. *)
let lemma_4_2 ?limit ~base ~refined ~spec ~invariant_s ~invariant_r ~from_t ()
    =
  let _, base_refines =
    Tolerance.refines_from ?limit base ~spec ~invariant:invariant_s
  in
  let ts_r = Ts.of_pred ?limit refined ~from:invariant_r in
  let r_implies_s = Check.implies ts_r invariant_r invariant_s in
  let refinement = Refinement.check_ts ~base ts_r ~from:invariant_r in
  let ts_t = Ts.of_pred ?limit refined ~from:from_t in
  let eventually_r = Check.eventually ts_t invariant_r in
  let extracted =
    Extraction.nonmasking_corrector ts_t ~invariant:invariant_s
      ~recovery:invariant_r
  in
  {
    theorem = "Lemma 4.2 (nonmasking corrector)";
    premises =
      [
        ("p refines SPEC from S (premise)", base_refines);
        ("R => S (premise)", r_implies_s);
        ("p' refines p from R (premise)", Refinement.outcome refinement);
        ("p' refines (true)*(p'|R) from T (premise)", eventually_r);
      ];
    conclusions =
      [
        ( "p' is a nonmasking corrector of an invariant of p (conclusion)",
          extracted.outcome );
      ];
  }

(* ------------------------------------------------------------------ *)
(* Theorem 4.3: nonmasking F-tolerant programs contain nonmasking       *)
(* tolerant correctors.                                                 *)
(* ------------------------------------------------------------------ *)

let theorem_4_3 ?limit ~base ~refined ~spec ~faults ~invariant_s ~invariant_r
    () =
  let _, base_refines =
    Tolerance.refines_from ?limit base ~spec ~invariant:invariant_s
  in
  let ts_r = Ts.of_pred ?limit refined ~from:invariant_r in
  let r_implies_s = Check.implies ts_r invariant_r invariant_s in
  let refinement = Refinement.check_ts ~base ts_r ~from:invariant_r in
  let universe = Ts.states ts_r in
  let span =
    Tolerance.fault_span_from_states ?limit refined ~faults ~init:universe
  in
  (* Premise: p' [] F refines (true)*(p'|R) from T — with finitely many
     faults, p' alone converges from the span to R. *)
  let ts_p_span = Ts.build ?limit refined ~from:span.states in
  let converges_to_r = Check.eventually ts_p_span invariant_r in
  (* Conclusion 1: p' is nonmasking F-tolerant for SPEC from R. *)
  let nonmasking =
    Tolerance.check_with ?limit refined ~spec ~invariant:invariant_r
      ~init:universe ~faults ~tol:Spec.Nonmasking
  in
  let nonmasking_outcome =
    match Tolerance.failures nonmasking with
    | [] -> Check.Holds
    | i :: _ -> i.outcome
  in
  (* Conclusion 2: nonmasking F-tolerant corrector (Z = R, X = S). *)
  let extracted =
    Extraction.nonmasking_corrector ts_p_span ~invariant:invariant_s
      ~recovery:invariant_r
  in
  {
    theorem =
      "Theorem 4.3 (nonmasking tolerance contains tolerant correctors)";
    premises =
      [
        ("p refines SPEC from S (premise)", base_refines);
        ("R => S (premise)", r_implies_s);
        ("p' refines p from R (premise)", Refinement.outcome refinement);
        ("p'[]F refines (true)*(p'|R) from T (premise)", converges_to_r);
      ];
    conclusions =
      [
        ( "p' is nonmasking F-tolerant for SPEC from R (conclusion)",
          nonmasking_outcome );
        ( "p' is a nonmasking F-tolerant corrector (conclusion)",
          extracted.outcome );
      ];
  }

(* ------------------------------------------------------------------ *)
(* Theorem 5.2: safety from T + convergence to S + correctness from S   *)
(* = masking from T.                                                    *)
(* ------------------------------------------------------------------ *)

let theorem_5_2 ?limit ~program ~spec ~invariant_s ~from_t () =
  let sspec = Spec.smallest_safety_containing spec in
  let _, refines_s =
    Tolerance.refines_from ?limit program ~spec ~invariant:invariant_s
  in
  let ts_t = Ts.of_pred ?limit program ~from:from_t in
  let t_safety = Spec.refines ts_t sspec in
  let eventually_s = Check.eventually ts_t invariant_s in
  (* Conclusion, checked directly: p refines SPEC (the masking tolerance
     specification of SPEC) from T. *)
  let masking = Spec.refines ts_t spec in
  {
    theorem = "Theorem 5.2 (fail-safe + nonmasking = masking)";
    premises =
      [
        ("p refines SPEC from S (premise)", refines_s);
        ("p refines SSPEC from T (premise)", t_safety);
        ("p refines (true)*(p|S) from T (premise)", eventually_s);
      ];
    conclusions =
      [ ("p refines masking spec of SPEC from T (conclusion)", masking) ];
  }

(* ------------------------------------------------------------------ *)
(* Theorem 5.5: masking F-tolerant programs contain masking tolerant    *)
(* detectors and correctors.                                            *)
(* ------------------------------------------------------------------ *)

let theorem_5_5 ?limit ~base ~refined ~spec ~faults ~invariant_s ~invariant_r
    () =
  let sspec = Spec.safety (Spec.smallest_safety_containing spec) in
  let _, base_refines =
    Tolerance.refines_from ?limit base ~spec ~invariant:invariant_s
  in
  let ts_r = Ts.of_pred ?limit refined ~from:invariant_r in
  let r_implies_s = Check.implies ts_r invariant_r invariant_s in
  let refinement = Refinement.check_ts ~base ts_r ~from:invariant_r in
  let universe = Ts.states ts_r in
  let encapsulation =
    outcome_of_bool
      (Program.encapsulates ~base refined ~universe)
      (some_state ts_r)
  in
  let span =
    Tolerance.fault_span_from_states ?limit refined ~faults ~init:universe
  in
  let ts_p_span = Ts.build ?limit refined ~from:span.states in
  let converges_to_r = Check.eventually ts_p_span invariant_r in
  let span_safety =
    Spec.refines span.ts_pf (Spec.make ~name:"SSPEC" ~safety:sspec ())
  in
  (* Conclusion 1: masking F-tolerance from T. *)
  let masking =
    Tolerance.check_with ?limit refined ~spec ~invariant:invariant_r
      ~init:universe ~faults ~tol:Spec.Masking
  in
  let masking_outcome =
    match Tolerance.failures masking with
    | [] -> Check.Holds
    | i :: _ -> i.outcome
  in
  (* Conclusion 2: masking F-tolerant detectors — safety obligations over
     the span under p' [] F, progress on p' alone from the span. *)
  let extra_transitions = Extraction.fault_transitions span.ts_pf ~faults in
  let detector_conclusions =
    List.map
      (fun ac ->
        let e =
          Extraction.detector_for_action ~extra_transitions ~base ~sspec
            ts_p_span ac
        in
        let tolerant_safety =
          Spec.refines span.ts_pf (Detector.safety_spec e.detector)
        in
        let tolerant_progress =
          Detector.progress ts_p_span e.detector
        in
        ( Fmt.str "p' is a masking F-tolerant detector for %s (conclusion)"
            e.for_action,
          Check.all [ e.outcome; tolerant_safety; tolerant_progress ] ))
      (Program.actions base)
  in
  (* Conclusion 3: masking tolerant corrector with X = S_p, Z = R
     (Lemma 5.4, Part 2). *)
  let s_p =
    Extraction.project_invariant ~base ts_p_span ~invariant:invariant_s
  in
  let corrector =
    Corrector.make ~name:"masking corrector (Lemma 5.4)" ~witness:invariant_r
      ~correction:s_p ()
  in
  let corrector_outcome = Corrector.satisfies_ts ts_p_span corrector in
  (* Conclusion 4: the corrector is nonmasking F-tolerant — after faults
     stop, a suffix satisfies 'Z corrects X' (checked as convergence of p'
     alone from the span plus the corrector specification from R). *)
  let ts_from_r =
    Ts.build ?limit refined
      ~from:(List.filter (Pred.holds invariant_r) span.states)
  in
  let nonmasking_corrector_outcome =
    Check.all
      [ converges_to_r; Corrector.satisfies_ts ts_from_r corrector ]
  in
  {
    theorem =
      "Theorem 5.5 (masking tolerance contains tolerant detectors and \
       correctors)";
    premises =
      [
        ("p refines SPEC from S (premise)", base_refines);
        ("R => S (premise)", r_implies_s);
        ("p' refines p from R (premise)", Refinement.outcome refinement);
        ("p' encapsulates p (premise)", encapsulation);
        ("p'[]F refines (true)*(p'|R) from T (premise)", converges_to_r);
        ("p'[]F refines SSPEC from T (premise)", span_safety);
      ];
    conclusions =
      [
        ("p' is masking F-tolerant for SPEC from T (conclusion)",
         masking_outcome);
      ]
      @ detector_conclusions
      @ [
          ("p' is a masking tolerant corrector (conclusion)",
           corrector_outcome);
          ("the corrector is nonmasking F-tolerant (conclusion)",
           nonmasking_corrector_outcome);
        ];
  }
