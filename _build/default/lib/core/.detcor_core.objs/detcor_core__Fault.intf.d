lib/core/fault.mli: Action Detcor_kernel Domain Fmt Pred Program
