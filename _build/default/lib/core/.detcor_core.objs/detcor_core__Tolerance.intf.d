lib/core/tolerance.mli: Check Detcor_kernel Detcor_semantics Detcor_spec Fault Fmt Liveness Pred Program Spec State Ts
