lib/core/tolerance.ml: Array Check Detcor_kernel Detcor_semantics Detcor_spec Fairness Fault Fmt Fun Graph List Liveness Pred Program Spec State Ts
