lib/core/detector.mli: Check Detcor_kernel Detcor_semantics Detcor_spec Fault Fmt Pred Program Spec Ts
