lib/core/refinement.mli: Check Detcor_kernel Detcor_semantics Fmt Pred Program State Ts
