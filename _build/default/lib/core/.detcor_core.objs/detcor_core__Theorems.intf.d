lib/core/theorems.mli: Detcor_kernel Detcor_semantics Detcor_spec Fault Fmt Pred Program Safety Spec
