lib/core/corrector.mli: Check Detcor_kernel Detcor_semantics Detcor_spec Detector Fault Fmt Pred Program Spec Ts
