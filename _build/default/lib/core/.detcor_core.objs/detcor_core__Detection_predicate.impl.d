lib/core/detection_predicate.ml: Action Detcor_kernel Detcor_spec Fmt List Pred Safety
