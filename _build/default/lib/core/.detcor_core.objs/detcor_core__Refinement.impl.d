lib/core/refinement.ml: Action Check Detcor_kernel Detcor_semantics Fairness Fmt Graph List Program State Ts
