lib/core/extraction.mli: Action Check Corrector Detcor_kernel Detcor_semantics Detcor_spec Detector Fault Pred Program Safety State Ts
