lib/core/fault.ml: Action Detcor_kernel Domain Fmt List Pred Program
