lib/core/corrector.ml: Check Detcor_kernel Detcor_semantics Detcor_spec Detector Fault Fmt List Pred Spec Ts
