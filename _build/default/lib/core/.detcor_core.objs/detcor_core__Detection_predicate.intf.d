lib/core/detection_predicate.mli: Action Detcor_kernel Detcor_spec Pred Safety State
