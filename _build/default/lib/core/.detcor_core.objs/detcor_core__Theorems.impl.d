lib/core/theorems.ml: Check Corrector Detcor_kernel Detcor_semantics Detcor_spec Detector Extraction Fmt List Pred Program Refinement Safety Spec State Tolerance Ts
