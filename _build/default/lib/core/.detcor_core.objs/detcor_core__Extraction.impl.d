lib/core/extraction.ml: Action Array Check Corrector Detcor_kernel Detcor_semantics Detcor_spec Detection_predicate Detector Fairness Fault Fmt Fun Graph Hashtbl List Pred Program Spec State Ts
