lib/core/detector.ml: Check Detcor_kernel Detcor_semantics Detcor_spec Fault Fmt List Pred Spec Ts
