lib/core/compose.mli: Check Corrector Detcor_semantics Detector Fmt Ts
