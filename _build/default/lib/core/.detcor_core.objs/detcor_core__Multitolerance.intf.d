lib/core/multitolerance.mli: Detcor_kernel Detcor_spec Fault Fmt Pred Program Spec Tolerance
