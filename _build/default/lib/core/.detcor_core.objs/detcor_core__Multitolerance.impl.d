lib/core/multitolerance.ml: Detcor_kernel Detcor_spec Fault Fmt List Program Spec Tolerance
