lib/core/compose.ml: Check Corrector Detcor_kernel Detcor_semantics Detector Fmt List Pred
