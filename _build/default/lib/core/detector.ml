(* Detectors (Section 3).

   'Z detects X in d from U' iff d refines the 'Z detects X' specification
   from U.  A tolerant detector refines the corresponding tolerance
   specification of 'Z detects X' (Section 3.1). *)

open Detcor_kernel
open Detcor_semantics
open Detcor_spec

type t = {
  dname : string;
  witness : Pred.t; (* Z *)
  detection : Pred.t; (* X *)
}

let make ?name ~witness ~detection () =
  let dname =
    match name with
    | Some n -> n
    | None ->
      Fmt.str "%s detects %s" (Pred.name witness) (Pred.name detection)
  in
  { dname; witness; detection }

let name d = d.dname
let witness d = d.witness
let detection d = d.detection

let spec d = Spec.detects ~witness:d.witness ~detection:d.detection

(* The safety part (Safeness + Stability) and the liveness part
   (Progress) of the detects specification, as separate specifications —
   the tolerance-specific checks need them separately. *)
let safety_spec d = Spec.smallest_safety_containing (spec d)

let progress ts d =
  Check.leads_to ts d.detection (Pred.or_ d.witness (Pred.not_ d.detection))

(* [satisfies_ts ts d]: d (the program underlying ts) refines
   'Z detects X' from the states ts was built from. *)
let satisfies_ts ts d = Spec.refines ts (spec d)

let satisfies ?limit program d ~from =
  satisfies_ts (Ts.of_pred ?limit program ~from) d

(* ------------------------------------------------------------------ *)
(* Tolerant detectors (Section 3.1).                                   *)
(* ------------------------------------------------------------------ *)

(* d is a fail-safe (resp. nonmasking, masking) tolerant detector for
   'Z detects X' from U iff d refines the corresponding tolerance
   specification of 'Z detects X' from U.

   In the presence of a fault class F the check follows the structure of
   the paper's proofs (finitely many faults, Assumption 2):
   - the safety obligations (Safeness, Stability) are checked on the full
     [p [] F] system over the F-span of U;
   - the liveness obligation (Progress) is checked on p alone from the
     F-span, because after faults stop the computation is a computation of
     p (Theorem 5.5, Part 2);
   - nonmasking requires a suffix in the specification: p alone converges
     from the F-span to a recovery predicate [recover] (default U) from
     which the whole detects specification holds (Lemma 4.2's shape). *)

type tolerant_report = {
  tol : Spec.tolerance;
  span : Pred.t; (* the F-span used *)
  items : (string * Check.outcome) list;
}

let verdict r = List.for_all (fun (_, o) -> Check.holds o) r.items

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%a-tolerant detector check (span %s):@,%a@]"
    Spec.pp_tolerance r.tol (Pred.name r.span)
    Fmt.(
      list ~sep:cut (fun ppf (l, o) ->
          Fmt.pf ppf "  %-40s %a" l Check.pp_outcome o))
    r.items

let tolerant ?limit ?recover program d ~faults ~tol ~from =
  let composed = Fault.compose program faults in
  let ts_pf = Ts.of_pred ?limit composed ~from in
  let span_states = Ts.states ts_pf in
  let span = Pred.of_states ~name:(Fmt.str "span(%s)" (Pred.name from)) span_states in
  let ts_p = Ts.build ?limit program ~from:span_states in
  let recover = match recover with Some r -> r | None -> from in
  let safety_items () =
    [ (Fmt.str "safety of '%s' on p[]F from span" d.dname,
       Spec.refines ts_pf (safety_spec d)) ]
  in
  let progress_item () =
    [ (Fmt.str "progress of '%s' on p from span" d.dname, progress ts_p d) ]
  in
  let nonmasking_items () =
    let ts_rec = Ts.of_pred ?limit program ~from:recover in
    [
      (Fmt.str "p converges from span to %s" (Pred.name recover),
       Check.eventually ts_p recover);
      (Fmt.str "'%s' holds from %s" d.dname (Pred.name recover),
       satisfies_ts ts_rec d);
    ]
  in
  let items =
    match tol with
    | Spec.Failsafe -> safety_items ()
    | Spec.Masking -> safety_items () @ progress_item ()
    | Spec.Nonmasking -> nonmasking_items ()
  in
  { tol; span; items }

let pp ppf d = Fmt.string ppf d.dname
