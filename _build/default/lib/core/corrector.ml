(* Correctors (Section 4).

   'Z corrects X in c from U' iff c refines the 'Z corrects X'
   specification from U: the detector conditions (Safeness, Progress,
   Stability) plus Convergence — X is eventually reached and preserved. *)

open Detcor_kernel
open Detcor_semantics
open Detcor_spec

type t = {
  cname : string;
  witness : Pred.t; (* Z *)
  correction : Pred.t; (* X *)
}

let make ?name ~witness ~correction () =
  let cname =
    match name with
    | Some n -> n
    | None ->
      Fmt.str "%s corrects %s" (Pred.name witness) (Pred.name correction)
  in
  { cname; witness; correction }

let name c = c.cname
let witness c = c.witness
let correction c = c.correction

(* A corrector whose witness equals its correction predicate — the
   Arora–Gouda closure-and-convergence special case noted in Section 4.1. *)
let of_invariant x = make ~witness:x ~correction:x ()

let spec c = Spec.corrects ~witness:c.witness ~detection:c.correction

let as_detector c =
  Detector.make ~name:(Fmt.str "detector of %s" c.cname) ~witness:c.witness
    ~detection:c.correction ()

let safety_spec c = Spec.smallest_safety_containing (spec c)

let convergence ts c =
  Check.all
    [ Check.closed ts c.correction; Check.eventually ts c.correction ]

let satisfies_ts ts c = Spec.refines ts (spec c)

let satisfies ?limit program c ~from =
  satisfies_ts (Ts.of_pred ?limit program ~from) c

(* ------------------------------------------------------------------ *)
(* Tolerant correctors (Section 4.1).                                  *)
(* ------------------------------------------------------------------ *)

(* Same proof structure as tolerant detectors; see Detector.tolerant.  For
   nonmasking — the paper's main use (Theorem 4.3) — the obligations follow
   Lemma 4.2: the program converges from the F-span to [recover], and from
   [recover] it refines 'Z corrects X'. *)

type tolerant_report = {
  tol : Spec.tolerance;
  span : Pred.t;
  items : (string * Check.outcome) list;
}

let verdict r = List.for_all (fun (_, o) -> Check.holds o) r.items

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%a-tolerant corrector check (span %s):@,%a@]"
    Spec.pp_tolerance r.tol (Pred.name r.span)
    Fmt.(
      list ~sep:cut (fun ppf (l, o) ->
          Fmt.pf ppf "  %-40s %a" l Check.pp_outcome o))
    r.items

let tolerant ?limit ?recover program c ~faults ~tol ~from =
  let composed = Fault.compose program faults in
  let ts_pf = Ts.of_pred ?limit composed ~from in
  let span_states = Ts.states ts_pf in
  let span =
    Pred.of_states ~name:(Fmt.str "span(%s)" (Pred.name from)) span_states
  in
  let ts_p = Ts.build ?limit program ~from:span_states in
  let recover = match recover with Some r -> r | None -> from in
  let safety_items () =
    [ (Fmt.str "safety of '%s' on p[]F from span" c.cname,
       Spec.refines ts_pf (safety_spec c)) ]
  in
  let liveness_items () =
    [
      (Fmt.str "progress of '%s' on p from span" c.cname,
       Detector.progress ts_p (as_detector c));
      (Fmt.str "convergence of '%s' on p from span" c.cname,
       Check.eventually ts_p c.correction);
    ]
  in
  let nonmasking_items () =
    let ts_rec = Ts.of_pred ?limit program ~from:recover in
    [
      (Fmt.str "p converges from span to %s" (Pred.name recover),
       Check.eventually ts_p recover);
      (Fmt.str "'%s' holds from %s" c.cname (Pred.name recover),
       satisfies_ts ts_rec c);
    ]
  in
  let items =
    match tol with
    | Spec.Failsafe -> safety_items ()
    | Spec.Masking -> safety_items () @ liveness_items ()
    | Spec.Nonmasking -> nonmasking_items ()
  in
  { tol; span; items }

let pp ppf c = Fmt.string ppf c.cname
