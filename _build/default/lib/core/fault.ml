(* Fault classes (Section 2.3).

   A fault class for a program [p] is a set of actions over the variables of
   [p] (possibly extended with auxiliary variables, as with the Byzantine
   flags [b.j]).  Composing [p [] F] yields the system whose computations
   are the computations of [p] in the presence of [F]; such computations
   are only p-fair and p-maximal, which the checkers respect by running
   liveness obligations on [p] alone (faults are finitely many,
   Assumption 2). *)

open Detcor_kernel

type t = {
  name : string;
  actions : Action.t list;
  (* Auxiliary variables introduced by the fault class (e.g. the Byzantine
     mode bits), with their domains. *)
  aux_vars : (string * Domain.t) list;
}

let make ?(aux_vars = []) name actions = { name; actions; aux_vars }

let name f = f.name
let actions f = f.actions
let aux_vars f = f.aux_vars
let action_names f = List.map Action.name f.actions

let none = make "no-fault" []

let union a b =
  make
    ~aux_vars:(a.aux_vars @ b.aux_vars)
    (Fmt.str "(%s + %s)" a.name b.name)
    (a.actions @ b.actions)

(* [corrupt_variable x d]: a transient fault that sets [x] to any value of
   its domain. *)
let corrupt_variable ?(guard = Pred.true_) x d =
  make (Fmt.str "corrupt-%s" x) [ Action.corrupt (Fmt.str "F:corrupt-%s" x) guard x d ]

(* [p [] F] (the paper's overloaded [] for programs and faults). *)
let compose p f =
  let fault_prog =
    Program.make ~name:(Fmt.str "F:%s" f.name) ~vars:f.aux_vars
      ~actions:f.actions
  in
  Program.with_name
    (Fmt.str "(%s [] %s)" (Program.name p) f.name)
    (Program.parallel p fault_prog)

(* Variables of [p [] F]: program variables plus aux fault variables. *)
let composed_vars p f = Program.var_decls (compose p f)

let pp ppf f =
  Fmt.pf ppf "fault-class %s (%d actions)" f.name (List.length f.actions)
