(* Multitolerance: different tolerance levels to different fault classes
   in one program — the design goal of the paper's companion work
   ("Component based design of multitolerance", its reference [4]) and
   the headline property of the case studies listed in the introduction.

   A multitolerance requirement assigns a tolerance class to each fault
   class; the program must provide each class's tolerance when faults of
   (only) that class occur, all from the same invariant.  The checker
   runs the single-class checker per requirement and additionally reports
   the combined fault class at the weakest requested level, which is the
   guarantee that holds when fault classes mix. *)

open Detcor_kernel
open Detcor_spec

type requirement = {
  fault : Fault.t;
  tol : Spec.tolerance;
}

type report = {
  subject : string;
  per_class : (string * Spec.tolerance * Tolerance.report) list;
  combined : Tolerance.report option;
      (* union of the fault classes at the weakest requested tolerance *)
}

(* Nonmasking < Failsafe and Nonmasking < Masking; Failsafe and Masking
   are incomparable except Masking is strongest.  For the combined class
   we use: Masking if all masking, otherwise Nonmasking if any
   nonmasking requested, otherwise Failsafe. *)
let weakest tols =
  if List.for_all (fun t -> t = Spec.Masking) tols then Spec.Masking
  else if List.mem Spec.Nonmasking tols then Spec.Nonmasking
  else Spec.Failsafe

let verdict r =
  List.for_all (fun (_, _, rep) -> Tolerance.verdict rep) r.per_class
  && match r.combined with
     | None -> true
     | Some rep -> Tolerance.verdict rep

let check ?limit ?(combined = true) p ~spec ~invariant ~requirements =
  let per_class =
    List.map
      (fun { fault; tol } ->
        ( Fault.name fault,
          tol,
          Tolerance.check ?limit p ~spec ~invariant ~faults:fault ~tol ))
      requirements
  in
  let combined =
    if (not combined) || List.length requirements < 2 then None
    else begin
      let union =
        List.fold_left
          (fun acc { fault; _ } -> Fault.union acc fault)
          Fault.none requirements
      in
      let tol = weakest (List.map (fun r -> r.tol) requirements) in
      Some (Tolerance.check ?limit p ~spec ~invariant ~faults:union ~tol)
    end
  in
  { subject = Program.name p; per_class; combined }

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%s: multitolerance@,%a@,%a=> %s@]" r.subject
    Fmt.(
      list ~sep:cut (fun ppf (name, tol, rep) ->
          pf ppf "  vs %-24s %-10s %s"
            name
            (Fmt.str "%a" Spec.pp_tolerance tol)
            (if Tolerance.verdict rep then "holds" else "FAILS")))
    r.per_class
    Fmt.(
      option (fun ppf rep ->
          pf ppf "  combined fault classes      %-10s %s@,"
            (Fmt.str "%a" Spec.pp_tolerance rep.Tolerance.tol)
            (if Tolerance.verdict rep then "holds" else "FAILS")))
    r.combined
    (if verdict r then "VERDICT: holds" else "VERDICT: FAILS")
