lib/synthesis/synthesize.ml: Action Array Detcor_core Detcor_kernel Detcor_semantics Detcor_spec Domain Fault Fmt Hashtbl List Map Pred Program Queue Safety Set Spec State Tolerance Ts Value
