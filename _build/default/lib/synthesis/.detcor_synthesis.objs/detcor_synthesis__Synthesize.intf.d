lib/synthesis/synthesize.mli: Detcor_core Detcor_kernel Detcor_spec Fault Fmt Pred Program Spec State Tolerance
