(** Automated addition of fault tolerance — the companion transformation
    method the paper builds on (its ref. [4]): add detectors (guard
    strengthening to weakest detection predicates) for fail-safe, add a
    corrector (ranked recovery) for nonmasking, and both for masking.
    Every synthesized program is re-verified with {!Detcor_core.Tolerance}
    before being returned. *)

open Detcor_kernel
open Detcor_spec
open Detcor_core

type failure =
  | Empty_invariant
  | Unrecoverable_state of State.t
  | Verification_failed of Tolerance.report

type 'a outcome = ('a, failure) result

val pp_failure : failure Fmt.t

type result = {
  program : Program.t;
  invariant : Pred.t;  (** the recomputed invariant *)
  report : Tolerance.report;  (** verification of the synthesized program *)
  added_detectors : (string * Pred.t) list;
      (** per action: the detection guard that was conjoined *)
  recovery_states : int;  (** states given a recovery transition *)
}

(** Strengthen every action with its weakest detection predicate for the
    [ms/mt]-extended safety specification; recompute the invariant. *)
val add_failsafe :
  ?limit:int ->
  Program.t ->
  spec:Spec.t ->
  invariant:Pred.t ->
  faults:Fault.t ->
  result outcome

(** Add a ranked recovery corrector converging from the fault span back to
    the invariant.  [step_vars] bounds how many variables one recovery
    step may write (default 1 — local corrections). *)
val add_nonmasking :
  ?limit:int ->
  ?step_vars:int ->
  Program.t ->
  spec:Spec.t ->
  invariant:Pred.t ->
  faults:Fault.t ->
  result outcome

(** Fail-safe restriction followed by safety-respecting recovery to
    [target] (default: the recomputed invariant). *)
val add_masking :
  ?limit:int ->
  ?step_vars:int ->
  ?target:Pred.t ->
  Program.t ->
  spec:Spec.t ->
  invariant:Pred.t ->
  faults:Fault.t ->
  result outcome
